// Package repro's benchmark harness: one benchmark per table and figure of
// the paper's evaluation, plus ablations for the design choices DESIGN.md
// calls out. Each benchmark regenerates its figure at a reduced repetition
// count and reports the figure's headline quantities as benchmark metrics;
// run `go test -bench . -benchmem` to regenerate everything, or the cmd/
// tools for full-fidelity tables.
package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/expt"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/quarantine"
	"repro/internal/revoke"
	"repro/internal/workload/pgbench"
	"repro/internal/workload/qps"
	"repro/internal/workload/spec"
)

// benchScale shrinks SPEC footprints further than the cmd tools (1/128
// instead of 1/64) so the full benchmark suite stays tractable.
const benchScale = 128

func specCfg() harness.Config {
	cfg := harness.SpecConfig()
	cfg.Scale = benchScale
	return cfg
}

// benchOpts is the reduced-fidelity grid the figure benchmarks run: one rep,
// SPEC at 1/128 scale, and shorter pgbench/QPS windows than the cmd tools.
func benchOpts() expt.Options {
	o := expt.DefaultOptions()
	o.Reps = 1
	o.SpecCfg.Scale = benchScale
	o.Txs = 2500
	o.Measure = 750_000_000
	o.Warmup = 75_000_000
	return o
}

// genFig regenerates one figure through the expt orchestrator.
func genFig(b *testing.B, id string, o expt.Options) *harness.Table {
	b.Helper()
	t, err := expt.Generate(id, o, nil)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// cell parses a "+12.3%" or "1.234" table cell back into a float. An
// unparsable cell fails the benchmark: a formatting change must surface as
// a failure, not as a silently-zero reported metric.
func cell(b *testing.B, s string) float64 {
	b.Helper()
	trimmed := strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%")
	trimmed = strings.TrimSuffix(trimmed, "x")
	trimmed = strings.TrimSuffix(trimmed, "ms")
	trimmed = strings.TrimSuffix(trimmed, "MiB")
	v, err := strconv.ParseFloat(trimmed, 64)
	if err != nil {
		b.Fatalf("unparsable table cell %q: %v", s, err)
	}
	return v
}

// findRow returns the row whose first cell equals name.
func findRow(t *harness.Table, name string) []string {
	for _, r := range t.Rows {
		if r[0] == name {
			return r
		}
	}
	return nil
}

func BenchmarkFig1WallClock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := genFig(b, "fig1", benchOpts())
		b.Logf("\n%s", t)
		if r := findRow(t, "xalancbmk"); r != nil {
			b.ReportMetric(cell(b, r[1]), "xalancbmk_reloaded_wall_ov_%")
		}
		if r := findRow(t, "omnetpp"); r != nil {
			b.ReportMetric(cell(b, r[1]), "omnetpp_reloaded_wall_ov_%")
		}
	}
}

func BenchmarkFig2CPUTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := genFig(b, "fig2", benchOpts())
		b.Logf("\n%s", t)
		if r := findRow(t, "omnetpp"); r != nil {
			b.ReportMetric(cell(b, r[1]), "omnetpp_reloaded_cpu_ov_%")
			b.ReportMetric(cell(b, r[2]), "omnetpp_cornucopia_cpu_ov_%")
		}
	}
}

func BenchmarkFig3RSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := genFig(b, "fig3", benchOpts())
		b.Logf("\n%s", t)
		if r := findRow(t, "xalancbmk"); r != nil {
			b.ReportMetric(cell(b, r[2]), "xalancbmk_reloaded_rss_ratio")
		}
	}
}

func BenchmarkFig4BusTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := genFig(b, "fig4", benchOpts())
		b.Logf("\n%s", t)
		if r := findRow(t, "omnetpp"); r != nil {
			b.ReportMetric(cell(b, r[2]), "omnetpp_reloaded_dram_ov_%")
			b.ReportMetric(cell(b, r[5]), "omnetpp_rel_vs_cor_%")
		}
	}
}

func BenchmarkFig5PgbenchTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := genFig(b, "fig5", benchOpts())
		b.Logf("\n%s", t)
		if r := findRow(t, "Reloaded"); r != nil {
			b.ReportMetric(cell(b, r[1]), "reloaded_wall_ov_%")
		}
	}
}

func BenchmarkFig6PgbenchBus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := genFig(b, "fig6", benchOpts())
		b.Logf("\n%s", t)
		rel, cor := findRow(t, "Reloaded"), findRow(t, "Cornucopia")
		if rel != nil && cor != nil && cell(b, cor[1]) != 0 {
			b.ReportMetric(100*cell(b, rel[1])/cell(b, cor[1]), "rel_traffic_ov_vs_cor_%")
		}
	}
}

func BenchmarkFig7PgbenchCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := genFig(b, "fig7", benchOpts())
		b.Logf("\n%s", t)
		rel, chv := findRow(t, "Reloaded"), findRow(t, "CHERIvoke")
		if rel != nil && chv != nil {
			b.ReportMetric(cell(b, rel[5]), "reloaded_p99_ms")
			b.ReportMetric(cell(b, chv[5]), "cherivoke_p99_ms")
		}
	}
}

func BenchmarkTable1RateSchedules(b *testing.B) {
	o := benchOpts()
	o.Txs = 2000
	for i := 0; i < b.N; i++ {
		t := genFig(b, "table1", o)
		b.Logf("\n%s", t)
		if r := findRow(t, "unscheduled"); r != nil {
			b.ReportMetric(cell(b, r[5]), "unscheduled_p99.9_ms")
		}
	}
}

func BenchmarkFig8QPSLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := genFig(b, "fig8", benchOpts())
		b.Logf("\n%s", t)
		rel, cor := findRow(t, "Reloaded"), findRow(t, "Cornucopia")
		if rel != nil && cor != nil {
			b.ReportMetric(cell(b, rel[4]), "reloaded_p99_x")
			b.ReportMetric(cell(b, cor[4]), "cornucopia_p99_x")
			b.ReportMetric(cell(b, rel[6]), "reloaded_qps_delta_%")
		}
	}
}

func BenchmarkFig9Phases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := genFig(b, "fig9", benchOpts())
		b.Logf("\n%s", t)
		// Headline: Reloaded's stop-the-world vs Cornucopia's on the
		// largest-heap benchmark.
		var relSTW, corSTW float64
		for _, r := range t.Rows {
			if r[0] == "xalancbmk" && r[2] == "stop-the-world" {
				med := cell(b, strings.Split(r[3], "/")[2])
				switch r[1] {
				case "Reloaded":
					relSTW = med
				case "Cornucopia":
					corSTW = med
				}
			}
		}
		b.ReportMetric(relSTW, "xalancbmk_reloaded_stw_ms")
		b.ReportMetric(corSTW, "xalancbmk_cornucopia_stw_ms")
	}
}

func BenchmarkTable2RevRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := genFig(b, "table2", benchOpts())
		b.Logf("\n%s", t)
		if r := findRow(t, "pgbench"); r != nil {
			b.ReportMetric(cell(b, r[3]), "pgbench_freed_to_alloc_ratio")
		}
	}
}

// --- ablations ----------------------------------------------------------------

// BenchmarkAblationMultiRevokers measures §7.1: splitting the background
// sweep across worker threads shortens the concurrent phase.
func BenchmarkAblationMultiRevokers(b *testing.B) {
	p := spec.ByName("omnetpp")[0]
	for i := 0; i < b.N; i++ {
		conc := map[int]float64{}
		for _, workers := range []int{1, 2} {
			cond := harness.Condition{
				Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded,
				RevokerCores: []int{1, 2}, Workers: workers,
			}
			r, err := harness.Run(p, cond, specCfg())
			if err != nil {
				b.Fatal(err)
			}
			s := &metrics.Samples{}
			for _, e := range r.Epochs {
				s.AddU(e.ConcurrentCycles)
			}
			conc[workers] = s.Median() / (r.HzGHz * 1e6)
		}
		b.ReportMetric(conc[1], "concurrent_med_ms_1worker")
		b.ReportMetric(conc[2], "concurrent_med_ms_2workers")
		b.ReportMetric(conc[1]/conc[2], "speedup")
	}
}

// BenchmarkAblationColoring measures §7.3: the coloring composition's
// reduction in quarantine pressure and epochs on a churn-heavy workload.
func BenchmarkAblationColoring(b *testing.B) {
	p := spec.ByName("omnetpp")[0]
	for i := 0; i < b.N; i++ {
		plain, err := harness.Run(p, harness.StandardConditions()[0], specCfg())
		if err != nil {
			b.Fatal(err)
		}
		colored, err := harness.Run(p, harness.ColoringCondition(revoke.Reloaded), specCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(plain.Epochs)), "epochs_plain")
		b.ReportMetric(float64(len(colored.Epochs)), "epochs_colored")
		b.ReportMetric(float64(plain.Quar.TotalQuarantined)/float64(max64(colored.Quar.TotalQuarantined, 1)),
			"quarantine_pressure_reduction_x")
	}
}

// BenchmarkAblationQuarantinePolicy sweeps §7.2: the quarantine fraction
// trades memory overhead against revocation frequency.
func BenchmarkAblationQuarantinePolicy(b *testing.B) {
	p := spec.ByName("hmmer")[0]
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0.125, 0.25, 0.5} {
			cond := harness.Condition{
				Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded,
				RevokerCores: []int{2},
				Policy: quarantine.Policy{
					HeapFraction: frac, MinBytes: (8 << 20) / benchScale, BlockFactor: 2,
				},
			}
			r, err := harness.Run(p, cond, specCfg())
			if err != nil {
				b.Fatal(err)
			}
			tag := strconv.FormatFloat(frac, 'g', -1, 64)
			b.ReportMetric(float64(len(r.Epochs)), "epochs_frac"+tag)
			b.ReportMetric(float64(r.PeakRSSPages)*4096/(1<<20), "rss_mib_frac"+tag)
		}
	}
}

// BenchmarkAblationTwoPass reproduces the §3.1 observation that iterating
// Cornucopia's concurrent pass barely shrinks the stop-the-world phase
// while increasing total work.
func BenchmarkAblationTwoPass(b *testing.B) {
	p := spec.ByName("xalancbmk")[0]
	for i := 0; i < b.N; i++ {
		stw := map[string]float64{}
		work := map[string]float64{}
		for _, strat := range []revoke.Strategy{revoke.Cornucopia, revoke.CornucopiaTwoPass} {
			cond := harness.Condition{Name: strat.String(), Shimmed: true,
				Strategy: strat, RevokerCores: []int{2}}
			r, err := harness.Run(p, cond, specCfg())
			if err != nil {
				b.Fatal(err)
			}
			s := &metrics.Samples{}
			var pages uint64
			for _, e := range r.Epochs {
				s.AddU(e.STWCycles)
				pages += e.PagesVisited
			}
			stw[strat.String()] = s.Median() / (r.HzGHz * 1e6)
			work[strat.String()] = float64(pages)
		}
		b.ReportMetric(stw["Cornucopia"], "stw_med_ms_1pass")
		b.ReportMetric(stw["Cornucopia-2pass"], "stw_med_ms_2pass")
		b.ReportMetric(work["Cornucopia-2pass"]/work["Cornucopia"], "work_ratio_2pass")
	}
}

// BenchmarkAblationAlwaysTrap measures the §7.6 PTE disposition: background
// page visits avoided on workloads with many capability-clean pages.
func BenchmarkAblationAlwaysTrap(b *testing.B) {
	p := spec.ByName("hmmer")[0] // data-heavy: most pages never hold caps
	for i := 0; i < b.N; i++ {
		visits := map[bool]float64{}
		wall := map[bool]float64{}
		for _, at := range []bool{false, true} {
			cond := harness.Condition{Name: "Reloaded", Shimmed: true,
				Strategy: revoke.Reloaded, RevokerCores: []int{2}, AlwaysTrap: at}
			r, err := harness.Run(p, cond, specCfg())
			if err != nil {
				b.Fatal(err)
			}
			var pages float64
			for _, e := range r.Epochs {
				pages += float64(e.PagesVisited)
			}
			visits[at] = pages
			wall[at] = r.Millis(r.WallCycles)
		}
		b.ReportMetric(visits[false], "pages_visited_plain")
		b.ReportMetric(visits[true], "pages_visited_alwaystrap")
		b.ReportMetric(wall[true]/wall[false], "wall_ratio")
	}
}

// BenchmarkWorkloads runs each surrogate once under Reloaded (throughput of
// the simulator itself, cycles simulated per host second).
func BenchmarkWorkloads(b *testing.B) {
	cases := []struct {
		name string
		run  func() (uint64, error)
	}{
		{"xalancbmk", func() (uint64, error) {
			r, err := harness.Run(spec.ByName("xalancbmk")[0], harness.StandardConditions()[0], specCfg())
			if err != nil {
				return 0, err
			}
			return r.WallCycles, nil
		}},
		{"pgbench", func() (uint64, error) {
			r, err := harness.Run(pgbench.New(2000), harness.StandardConditions()[0], harness.PgbenchConfig())
			if err != nil {
				return 0, err
			}
			return r.WallCycles, nil
		}},
		{"qps", func() (uint64, error) {
			w := qps.New(500_000_000, 50_000_000)
			r, err := harness.Run(w, harness.QPSConditions()[0], harness.QPSConfig())
			if err != nil {
				return 0, err
			}
			return r.WallCycles, nil
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				var err error
				cycles, err = c.run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cycles), "virtual_cycles")
		})
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
