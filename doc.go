// Package repro is a from-scratch, simulation-based reproduction of
// "Cornucopia Reloaded: Load Barriers for CHERI Heap Temporal Safety"
// (Filardo et al., ASPLOS 2024).
//
// The root package holds only the benchmark harness (bench_test.go), with
// one benchmark per table and figure of the paper's evaluation. The
// library lives under internal/ — see README.md for the map, DESIGN.md for
// the substitution argument (there is no CHERI hardware to run Go on, so
// the entire stack is a deterministic software model), and EXPERIMENTS.md
// for paper-versus-measured results.
//
// Entry points:
//
//   - cmd/spec2006, cmd/pgbench, cmd/qps, cmd/phases regenerate the
//     evaluation's figures and tables;
//   - cmd/cornucopia runs one workload under one strategy;
//   - examples/ holds five runnable walkthroughs of the public API.
package repro
