// forkserver demonstrates fork in the revocation world (§4.3): a pre-fork
// worker model where the parent builds shared state, forks a worker, and
// each process revokes independently — the parent's stop-the-world pauses
// never touch the child, and capabilities revoked in one address space
// survive in the other. Fork itself is excluded while a revocation pass is
// in flight, so the example also shows a fork waiting out an epoch.
//
//	go run ./examples/forkserver
package main

import (
	"fmt"
	"log"

	"repro/internal/alloc"
	"repro/internal/kernel"
	"repro/internal/quarantine"
	"repro/internal/revoke"
)

func main() {
	machine := kernel.NewMachine(kernel.DefaultMachineConfig())
	parent := machine.NewProcess(1)
	heap := alloc.NewHeap(parent)
	svc := revoke.NewService(parent, revoke.Config{Strategy: revoke.Reloaded, RevokerCores: []int{2}})
	mrs := quarantine.New(heap, svc, quarantine.Policy{HeapFraction: 0.25, MinBytes: 32 << 10, BlockFactor: 2})
	svc.Start()

	parent.Spawn("parent", []int{3}, func(th *kernel.Thread) {
		// Build state the worker will inherit: a config block holding a
		// capability to a sessions table.
		config, err := mrs.Malloc(th, 128)
		check(err)
		sessions, err := mrs.Malloc(th, 4096)
		check(err)
		check(th.StoreCap(config, 0, sessions))
		fmt.Println("parent: built config + sessions")

		// Fork the worker. (If an epoch were in flight, Fork would wait:
		// bulk address-space operations are excluded during sweeps.)
		child, err := parent.Fork(th)
		check(err)
		fmt.Println("parent: forked worker (eager copy: tags, caps, shadow, hoards)")

		childDone := machine.Eng.NewEvent()
		done := false
		child.Spawn("worker", []int{1}, func(wth *kernel.Thread) {
			// The worker sees the inherited capability graph.
			s, err := wth.LoadCap(config, 0)
			check(err)
			fmt.Printf("worker: inherited sessions capability %v\n", s)
			// It keeps using its copy while the parent frees & revokes its
			// own; the worker's copy must keep working throughout.
			for i := 0; i < 2000; i++ {
				if err := wth.Load(s, 0, 256); err != nil {
					log.Fatalf("worker: inherited capability died: %v", err)
				}
				wth.Work(5_000)
			}
			done = true
			childDone.Broadcast(wth.Sim)
		})

		// Meanwhile, the parent frees its sessions table and revokes.
		check(mrs.Free(th, sessions))
		mrs.Flush(th)
		got, err := th.LoadCap(config, 0)
		check(err)
		fmt.Printf("parent: after its revocation, its sessions capability -> %v\n", got)
		if got.Tag() {
			log.Fatal("BUG: parent's stale capability survived")
		}

		th.WaitOn(childDone, func() bool { return done })
		fmt.Println("worker: finished with its (independent) copy intact")
		fmt.Println("\nisolation holds: the parent revoked its capability; the worker's copy,")
		fmt.Println("in its own address space with its own revocation state, was untouched.")
		svc.Shutdown(th)
	})

	if err := machine.Run(); err != nil {
		log.Fatal(err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
