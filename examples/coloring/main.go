// coloring demonstrates the paper's §7.3 proposal: composing CHERI
// revocation with MTE-style memory coloring. Frees recolor memory and
// recycle it instantly — closing the gap between use-after-free and
// use-after-reallocation — while sweeping revocation runs only when a span
// exhausts its 16 colors, cutting quarantine pressure by an order of
// magnitude.
//
//	go run ./examples/coloring
package main

import (
	"fmt"
	"log"

	"repro/internal/alloc"
	"repro/internal/color"
	"repro/internal/kernel"
	"repro/internal/quarantine"
	"repro/internal/revoke"
)

func main() {
	machine := kernel.NewMachine(kernel.DefaultMachineConfig())
	proc := machine.NewProcess(1)
	proc.SetColorMode(true)
	heap := alloc.NewHeap(proc)
	heap.SetColoring(true)
	svc := revoke.NewService(proc, revoke.Config{Strategy: revoke.Reloaded, RevokerCores: []int{2}})
	mrs := quarantine.New(heap, svc, quarantine.Policy{HeapFraction: 0.25, MinBytes: 16 << 10, BlockFactor: 2})
	shim := color.New(heap, mrs)
	svc.Start()

	proc.Spawn("app", []int{3}, func(th *kernel.Thread) {
		// A free immediately invalidates stale capabilities: no UAF window
		// at all, unlike plain revocation's quarantine period.
		obj, err := shim.Malloc(th, 64)
		check(err)
		fmt.Printf("allocated %v\n", obj)
		check(shim.Free(th, obj))
		if err := th.Load(obj, 0, 16); err != nil {
			fmt.Printf("use-after-free traps IMMEDIATELY: %v\n", err)
		} else {
			log.Fatal("BUG: UAF succeeded under coloring")
		}

		// And the storage is reusable at once — no revocation epoch, no
		// quarantine: the new allocation simply wears the next color.
		reuse, err := shim.Malloc(th, 64)
		check(err)
		fmt.Printf("instant reuse: %v (color %d; stale capability wears color %d)\n",
			reuse, reuse.Color(), obj.Color())

		// Churn the same storage through all 16 colors: only the
		// exhausting free pays for revocation.
		for i := 0; i < 40; i++ {
			c, err := shim.Malloc(th, 64)
			check(err)
			check(shim.Free(th, c))
		}
		st := shim.Stats()
		fmt.Printf("\nafter 42 frees: %d recycled instantly, %d went to quarantine+revocation\n",
			st.FastFrees, st.ExhaustedFrees)
		fmt.Printf("quarantine pressure: %d bytes (plain mrs would have quarantined %d)\n",
			mrs.Stats().TotalQuarantined, 42*64)
		svc.Shutdown(th)
	})
	if err := machine.Run(); err != nil {
		log.Fatal(err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
