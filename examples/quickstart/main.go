// Quickstart: boot a simulated CHERI machine, run a process with the mrs
// quarantine shim and the Cornucopia Reloaded revoker, and watch a
// use-after-free pointer die at the first revocation epoch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/alloc"
	"repro/internal/kernel"
	"repro/internal/quarantine"
	"repro/internal/revoke"
)

func main() {
	// 1. Boot a four-core Morello-like machine and create a process.
	machine := kernel.NewMachine(kernel.DefaultMachineConfig())
	proc := machine.NewProcess(1)

	// 2. Give it a heap, the Reloaded revocation service, and the mrs
	//    quarantine shim with the paper's policy (scaled floor).
	heap := alloc.NewHeap(proc)
	svc := revoke.NewService(proc, revoke.Config{
		Strategy:     revoke.Reloaded,
		RevokerCores: []int{2},
	})
	mrs := quarantine.New(heap, svc, quarantine.Policy{
		HeapFraction: 0.25, MinBytes: 64 << 10, BlockFactor: 2,
	})
	svc.Start()

	// 3. Run application code on core 3.
	proc.Spawn("app", []int{3}, func(th *kernel.Thread) {
		// Allocate two objects; keep a capability to the second stored
		// inside the first (so it lives in simulated memory, where the
		// revoker can see it) and in a register.
		holder, err := mrs.Malloc(th, 64)
		check(err)
		secret, err := mrs.Malloc(th, 128)
		check(err)
		fmt.Printf("allocated %v\n", secret)

		check(th.StoreCap(holder, 0, secret))
		th.SetReg(0, secret)
		check(th.Store(secret, 0, 128)) // write through it: fine

		// Free it. The paper's design quarantines the address space: the
		// pointer still works (use-after-free reads the OLD object, never
		// a reallocated one)...
		check(mrs.Free(th, secret))
		fmt.Println("freed; quarantined until a revocation epoch completes")
		if err := th.Load(secret, 0, 16); err != nil {
			log.Fatalf("UAF inside the quarantine window should still reach the old object: %v", err)
		}
		fmt.Println("use-after-free inside the window: still the old object (no aliasing possible)")

		// ...until a revocation epoch completes. Force one through the
		// shim (production code just keeps allocating; policy triggers).
		mrs.Flush(th)

		// Every copy of the stale capability is now architecturally dead.
		fromMem, err := th.LoadCap(holder, 0)
		check(err)
		fmt.Printf("after revocation: capability in memory   -> %v\n", fromMem)
		fmt.Printf("after revocation: capability in register -> %v\n", th.Reg(0))
		if fromMem.Tag() || th.Reg(0).Tag() {
			log.Fatal("BUG: stale capability survived revocation")
		}

		// The address space is reusable, and reuse cannot alias the old
		// pointer: use-after-reallocation is ruled out.
		reuse, err := mrs.Malloc(th, 128)
		check(err)
		fmt.Printf("storage reused by new allocation %v\n", reuse)
		if reuse.Base() != 0x100020000 {
			fmt.Println("(note: allocator picked different storage this run)")
		}
		if err := th.Load(fromMem, 0, 16); err == nil {
			log.Fatal("BUG: dead capability dereferenced")
		}
		fmt.Println("dereference through the dead capability faults: UAR impossible")

		svc.Shutdown(th)
	})

	if err := machine.Run(); err != nil {
		log.Fatal(err)
	}
	rec := svc.Records()[0]
	fmt.Printf("\nepoch stats: stop-the-world %.1f µs, background %.1f µs, %d capabilities revoked\n",
		float64(rec.STWCycles)/2500, float64(rec.ConcurrentCycles)/2500, rec.CapsRevoked)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
