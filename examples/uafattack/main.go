// uafattack demonstrates the security property end-to-end by playing the
// attacker: a dangling pointer is refreshed into a reallocated object that
// now holds another tenant's data (the classic use-after-reallocation
// primitive behind heap exploits).
//
// Without revocation, the attack succeeds: the dangling capability aliases
// the victim's new object. Under every CHERIvoke-family strategy the
// attacker's capability is revoked before the storage is reused, so the
// read faults deterministically.
//
//	go run ./examples/uafattack
package main

import (
	"fmt"
	"log"

	"repro/internal/alloc"
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/quarantine"
	"repro/internal/revoke"
)

// attack runs the UAR scenario. strategy < 0 means no temporal safety.
// It reports whether the attacker's stale capability could read the
// victim's reallocated object.
func attack(strategy revoke.Strategy, protected bool) bool {
	machine := kernel.NewMachine(kernel.DefaultMachineConfig())
	proc := machine.NewProcess(99)
	heap := alloc.NewHeap(proc)

	var mem alloc.API = heap
	var svc *revoke.Service
	var mrs *quarantine.Shim
	if protected {
		svc = revoke.NewService(proc, revoke.Config{Strategy: strategy, RevokerCores: []int{2}})
		mrs = quarantine.New(heap, svc, quarantine.Policy{
			HeapFraction: 0.25, MinBytes: 16 << 10, BlockFactor: 2,
		})
		mem = mrs
		svc.Start()
	}

	leaked := false
	proc.Spawn("app", []int{3}, func(th *kernel.Thread) {
		// The application allocates a session buffer and hands the
		// attacker a (legitimate, bounded) capability to it...
		session, err := mem.Malloc(th, 256)
		check(err)
		attackerStash, err := mem.Malloc(th, 64)
		check(err)
		check(th.StoreCap(attackerStash, 0, session)) // attacker keeps a copy

		// ...then frees the session.
		check(mem.Free(th, session))

		// Time passes; the allocator recycles storage. Under mrs this
		// means a revocation epoch must complete first; without it, the
		// very next allocation may alias.
		if protected {
			mrs.Flush(th)
		}
		var victim ca.Capability
		for i := 0; i < 64; i++ {
			v, err := mem.Malloc(th, 256)
			check(err)
			check(th.Store(v, 0, 256)) // victim writes secrets
			if v.Base() == session.Base() {
				victim = v
				break
			}
		}
		if !victim.Tag() {
			// Storage never recycled (would defeat the attack trivially).
			svcShutdown(svc, th)
			return
		}

		// The attack: reload the dangling capability and read through it.
		stale, err := th.LoadCap(attackerStash, 0)
		check(err)
		if stale.Tag() {
			if err := th.Load(stale, 0, 64); err == nil {
				leaked = true // read the victim's data through the alias
			}
		}
		svcShutdown(svc, th)
	})
	if err := machine.Run(); err != nil {
		log.Fatal(err)
	}
	return leaked
}

func svcShutdown(svc *revoke.Service, th *kernel.Thread) {
	if svc != nil {
		svc.Shutdown(th)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	fmt.Println("use-after-reallocation attack against a recycling allocator")
	fmt.Println()
	if attack(0, false) {
		fmt.Println("  no temporal safety : ATTACK SUCCEEDED — stale pointer read the victim's object")
	} else {
		fmt.Println("  no temporal safety : attack failed (unexpected!)")
	}
	for _, s := range []revoke.Strategy{revoke.CHERIvoke, revoke.Cornucopia, revoke.Reloaded} {
		if attack(s, true) {
			fmt.Printf("  %-19s: ATTACK SUCCEEDED (BUG!)\n", s)
		} else {
			fmt.Printf("  %-19s: attack defeated — capability revoked before reuse\n", s)
		}
	}
}
