// txserver runs a latency-sensitive transaction server (a miniature of the
// paper's pgbench experiment) under each temporal-safety strategy and
// prints the per-transaction latency distribution — the shape of Figure 7:
// the strategies are indistinguishable at the median, and separate
// dramatically in the tail, with Reloaded's near-elimination of
// stop-the-world pauses cutting the 99th percentile.
//
//	go run ./examples/txserver
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/workload/pgbench"
)

func main() {
	const txs = 3000
	cfg := harness.PgbenchConfig()
	fmt.Printf("transaction server, %d transactions per condition (virtual time)\n\n", txs)
	fmt.Printf("%-12s %8s %8s %8s %8s %8s %9s\n",
		"condition", "p50(ms)", "p90(ms)", "p99(ms)", "p99.9", "max(ms)", "pauses")
	for _, cond := range append([]harness.Condition{harness.Baseline()}, harness.StandardConditions()...) {
		r, err := harness.Run(pgbench.New(txs), cond, cfg)
		if err != nil {
			log.Fatal(err)
		}
		hz := r.HzGHz * 1e6
		var stwMax float64
		for _, e := range r.Epochs {
			if v := float64(e.STWCycles) / hz; v > stwMax {
				stwMax = v
			}
		}
		fmt.Printf("%-12s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3fms\n",
			cond.Name,
			r.Lat.Percentile(50)/hz, r.Lat.Percentile(90)/hz,
			r.Lat.Percentile(99)/hz, r.Lat.Percentile(99.9)/hz,
			r.Lat.Max()/hz, stwMax)
	}
	fmt.Println("\n(pauses = longest stop-the-world; Reloaded's is microseconds, so its tail")
	fmt.Println(" tracks the quarantine machinery rather than revocation pauses)")
}
