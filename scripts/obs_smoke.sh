#!/bin/sh
# obs_smoke.sh: end-to-end fleet-observability check (make obs-smoke).
#
# Runs the same small sweep grid twice — once on a local 2-worker pool,
# once through a cmd/sweep coordinator with two cmd/worker processes —
# with the campaign journal, trace rings and canonical timeline armed on
# both. Asserts:
#
#   * both journals validate against cornucopia-journal/v1 (obs validate),
#   * their canonical forms (obs canon) are byte-identical,
#   * the canonical merged timelines are byte-identical,
#   * the coordinator's /fleet endpoint and fleet_* metric families are
#     non-empty while the distributed campaign runs,
#   * obs report renders a postmortem from the journal + manifest,
#   * obs diff accepts the committed BENCH_host.json against itself.
#
# Artifacts land under the output directory (default obs-smoke/).
set -eu

OUT=${1:-obs-smoke}
mkdir -p "$OUT"

GRID="-figures fig5 -reps 1 -scale 16 -txs 400"
OBSFLAGS="-trace-events 32 -timeline-canonical"
go build -o "$OUT/sweep" ./cmd/sweep
go build -o "$OUT/worker" ./cmd/worker
go build -o "$OUT/obs" ./cmd/obs

fail() {
    echo "obs-smoke: $1" >&2
    for f in "$OUT"/*.log; do
        [ -f "$f" ] && sed "s#^#  $(basename "$f"): #" "$f" >&2
    done
    exit 1
}

# wait_addr FILE: block until the coordinator publishes its bound address.
wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        [ -f "$1" ] && return 0
        sleep 0.1
        i=$((i + 1))
    done
    return 1
}

echo "obs-smoke: local reference run (journal + canonical timeline)"
# shellcheck disable=SC2086  # GRID/OBSFLAGS are flag lists
"$OUT/sweep" $GRID $OBSFLAGS -workers 2 \
    -journal "$OUT/local.jsonl" -timeline "$OUT/local-timeline.json" \
    >/dev/null 2>"$OUT/local.log" || fail "local run failed"

echo "obs-smoke: coordinator + 2 workers (journal, timeline, live /fleet)"
rm -f "$OUT/addr.txt"
# shellcheck disable=SC2086
"$OUT/sweep" $GRID $OBSFLAGS -workers 2 \
    -journal "$OUT/dist.jsonl" -timeline "$OUT/dist-timeline.json" \
    -resume "$OUT/dist-manifest.jsonl" \
    -exec=net -listen 127.0.0.1:0 -addr-file "$OUT/addr.txt" \
    -http 127.0.0.1:0 -http-linger 5s \
    >/dev/null 2>"$OUT/coord.log" &
COORD=$!
wait_addr "$OUT/addr.txt" || fail "coordinator never published its address"
ADDR=$(cat "$OUT/addr.txt")
"$OUT/worker" -connect "$ADDR" -name obs-w1 -parallel 2 2>"$OUT/w1.log" &
W1=$!
"$OUT/worker" -connect "$ADDR" -name obs-w2 -parallel 2 2>"$OUT/w2.log" &
W2=$!

# The live server address appears in the coordinator log; scrape /fleet
# until the merged aggregate is non-empty (retry: the fleet fills in as
# workers report; the -http-linger window keeps the server up if the
# campaign finishes first).
HTTP=
i=0
while [ $i -lt 100 ]; do
    HTTP=$(sed -n 's#.*live introspection on http://\([^/]*\)/.*#\1#p' "$OUT/coord.log" | head -n 1)
    [ -n "$HTTP" ] && break
    kill -0 "$COORD" 2>/dev/null || fail "coordinator exited before serving"
    sleep 0.1
    i=$((i + 1))
done
[ -n "$HTTP" ] || fail "live server address never appeared in the coordinator log"
ok=0
i=0
while [ $i -lt 100 ]; do
    if curl -fsS "http://$HTTP/fleet" -o "$OUT/fleet.json" 2>/dev/null &&
        grep -q '"id"' "$OUT/fleet.json" &&
        ! grep -q '"jobs": 0,' "$OUT/fleet.json"; then
        ok=1
        break
    fi
    sleep 0.2
    i=$((i + 1))
done
[ "$ok" = 1 ] || fail "/fleet never served a non-empty aggregate"
curl -fsS "http://$HTTP/metrics" -o "$OUT/scrape.om" 2>/dev/null ||
    fail "/metrics scrape failed"
grep -q '^sweep_fleet_jobs_total ' "$OUT/scrape.om" ||
    fail "/metrics carries no fleet_* families"

wait "$COORD" || fail "coordinator exited non-zero"
wait "$W1" || fail "worker 1 exited non-zero"
wait "$W2" || fail "worker 2 exited non-zero"

echo "obs-smoke: validating journals"
"$OUT/obs" validate -journal "$OUT/local.jsonl" || fail "local journal invalid"
"$OUT/obs" validate -journal "$OUT/dist.jsonl" || fail "dist journal invalid"

echo "obs-smoke: canonical byte-identity (journal + timeline)"
"$OUT/obs" canon -journal "$OUT/local.jsonl" -out "$OUT/local-canon.jsonl"
"$OUT/obs" canon -journal "$OUT/dist.jsonl" -out "$OUT/dist-canon.jsonl"
cmp "$OUT/local-canon.jsonl" "$OUT/dist-canon.jsonl" ||
    fail "canonical journal differs between local and distributed runs"
cmp "$OUT/local-timeline.json" "$OUT/dist-timeline.json" ||
    fail "canonical timeline differs between local and distributed runs"
[ -s "$OUT/dist-timeline.json" ] || fail "merged timeline is empty"

echo "obs-smoke: postmortem report"
"$OUT/obs" report -journal "$OUT/dist.jsonl" \
    -manifest "$OUT/dist-manifest.jsonl" -out "$OUT/report.txt" ||
    fail "obs report failed"
grep -q 'obs-w1' "$OUT/report.txt" || fail "report missing per-worker rows"
grep -q 'p99' "$OUT/report.txt" || fail "report missing latency percentiles"

echo "obs-smoke: obs diff against the committed BENCH_host.json"
"$OUT/obs" diff BENCH_host.json BENCH_host.json >"$OUT/diff.txt" ||
    fail "obs diff flagged the committed document against itself"

echo "obs-smoke: OK (journal + timeline byte-identical, fleet live, report rendered)"
