#!/bin/sh
# telemetry_smoke.sh: end-to-end observability check (make telemetry-smoke).
#
# Runs a small telemetry-armed sweep with the live introspection server on
# an ephemeral port, scrapes /metrics while the server is up, and asserts
# every export (folded stacks, pprof, OpenMetrics, series CSV) lands
# non-empty. Artifacts are left under the output directory (default
# telemetry-smoke/) so CI can upload the folded stacks.
set -eu

OUT=${1:-telemetry-smoke}
mkdir -p "$OUT"
LOG=$OUT/sweep.log
: >"$LOG"

go run ./cmd/sweep -figures fig5 -workers 2 -reps 1 \
    -txs 300 -measure-ms 100 -warmup-ms 10 \
    -http 127.0.0.1:0 -http-linger 10s \
    -prof-folded "$OUT/profile.folded" \
    -prof-pprof "$OUT/profile.pb.gz" \
    -metrics-out "$OUT/metrics.om" \
    -series-csv "$OUT/series.csv" \
    -sample-every 200000 \
    -progress 2>"$LOG" &
SWEEP_PID=$!

fail() {
    echo "telemetry-smoke: $1" >&2
    sed 's/^/  sweep: /' "$LOG" >&2 || true
    kill "$SWEEP_PID" 2>/dev/null || true
    exit 1
}

# The sweep prints the bound address once the server is listening.
ADDR=
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's#.*live introspection on http://\([^/]*\)/.*#\1#p' "$LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    kill -0 "$SWEEP_PID" 2>/dev/null || fail "sweep exited before serving"
    sleep 0.2
    i=$((i + 1))
done
[ -n "$ADDR" ] || fail "live server address never appeared in the log"
echo "telemetry-smoke: scraping http://$ADDR/metrics"

# Scrape while the campaign runs (or lingers). Retry: the first jobs may
# still be warming up when the listener comes up.
SCRAPE=$OUT/scrape.om
ok=0
i=0
while [ $i -lt 50 ]; do
    if curl -fsS "http://$ADDR/metrics" -o "$SCRAPE" 2>/dev/null &&
        grep -q '^sweep_jobs_total ' "$SCRAPE" &&
        grep -q '^# EOF$' "$SCRAPE"; then
        ok=1
        break
    fi
    sleep 0.2
    i=$((i + 1))
done
[ "$ok" = 1 ] || fail "/metrics never served a valid OpenMetrics body"

curl -fsS "http://$ADDR/healthz" >/dev/null || fail "/healthz failed"
curl -fsS "http://$ADDR/jobs" >"$OUT/jobs.json" || fail "/jobs failed"

wait "$SWEEP_PID" || fail "sweep exited non-zero"

for f in profile.folded profile.pb.gz metrics.om series.csv; do
    [ -s "$OUT/$f" ] || fail "export $f is missing or empty"
done
grep -q ';app ' "$OUT/profile.folded" || fail "folded stacks carry no app frames"
grep -q '^# EOF$' "$OUT/metrics.om" || fail "metrics.om is not EOF-terminated"
head -n 1 "$OUT/series.csv" | grep -q '^job,cycle,' || fail "series.csv header malformed"

echo "telemetry-smoke: OK ($(wc -l <"$OUT/profile.folded") folded stacks, $(wc -l <"$OUT/series.csv") series rows)"
