#!/bin/sh
# dist_chaos_smoke.sh: network-chaos + degraded-mode end-to-end check
# (make dist-chaos-smoke).
#
# Runs the same small sweep grid three ways and asserts every canonical
# document is byte-identical:
#
#   1. a local 2-worker pool (the reference document);
#   2. a chaos pass: coordinator with -netfault drop armed on its HTTP
#      handler plus exponential-backoff retries and a per-worker circuit
#      breaker, serving one worker that crashes mid-lease (exit 2) and two
#      workers injecting drop/delay/reset/duplicate/reorder/throttle
#      faults into their own client transports;
#   3. a rejoin-cache pass: one campaign warms a worker-side result cache,
#      then a fresh coordinator re-runs the grid and the rejoining worker
#      replays every key from the cache instead of re-executing.
#
# A cornucopia-netchaos/v1 report summarising the scenarios lands in the
# output directory (default dist-chaos-smoke/) alongside the documents
# and per-process logs.
set -eu

OUT=${1:-dist-chaos-smoke}
mkdir -p "$OUT"

GRID="-figures fig5 -reps 1 -scale 16 -txs 400"
go build -o "$OUT/sweep" ./cmd/sweep
go build -o "$OUT/worker" ./cmd/worker

fail() {
    echo "dist-chaos-smoke: $1" >&2
    for f in "$OUT"/*.log; do
        [ -f "$f" ] && sed "s#^#  $(basename "$f"): #" "$f" >&2
    done
    exit 1
}

# wait_addr FILE: block until the coordinator publishes its bound address.
wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        [ -f "$1" ] && return 0
        sleep 0.1
        i=$((i + 1))
    done
    return 1
}

echo "dist-chaos-smoke: local reference run"
# shellcheck disable=SC2086  # GRID is a flag list
"$OUT/sweep" $GRID -workers 2 -canonical -out "$OUT/local.json" \
    >/dev/null 2>"$OUT/local.log" || fail "local run failed"

echo "dist-chaos-smoke: chaos pass (drop faults both sides + worker crash)"
rm -f "$OUT/addr.txt"
# Coordinator-side drops are capped (-netfault-max) so the campaign heals;
# the breaker quarantines the crasher after its reclaims, and the unified
# exponential backoff paces both job retries and the workers' reconnects.
# shellcheck disable=SC2086
"$OUT/sweep" $GRID -workers 2 -canonical -out "$OUT/chaos.json" \
    -exec=net -listen 127.0.0.1:0 -addr-file "$OUT/addr.txt" \
    -heartbeat 100ms -retries 3 \
    -retry-backoff 50ms -retry-backoff-max 400ms -retry-jitter 0.25 \
    -netfault drop -netfault-seed 7 -netfault-rate 0.3 -netfault-max 4 \
    -breaker-failures 3 -breaker-cooldown 200ms -progress \
    >/dev/null 2>"$OUT/chaos-coord.log" &
COORD=$!
wait_addr "$OUT/addr.txt" || fail "chaos coordinator never published its address"
ADDR=$(cat "$OUT/addr.txt")
# The crasher joins alone and dies on its first lease without reporting
# (exit 2 is the crash hook's signature), so the reclaim + breaker paths
# are exercised before the faulty-but-honest workers join.
"$OUT/worker" -connect "$ADDR" -name chaos-crasher -crash-after-lease 1 \
    2>"$OUT/chaos-crasher.log" &
CRASHER=$!
set +e
wait "$CRASHER"
CRASH_CODE=$?
set -e
[ "$CRASH_CODE" = 2 ] || fail "crasher exited $CRASH_CODE, want 2 (crash hook)"
"$OUT/worker" -connect "$ADDR" -name chaos-w1 -parallel 2 \
    -netfault drop,delay,reset -netfault-seed 11 -netfault-rate 0.2 -netfault-max 6 \
    2>"$OUT/chaos-w1.log" &
W1=$!
"$OUT/worker" -connect "$ADDR" -name chaos-w2 -parallel 2 \
    -netfault duplicate,reorder,throttle -netfault-seed 13 -netfault-rate 0.2 -netfault-max 6 \
    2>"$OUT/chaos-w2.log" &
W2=$!
wait "$COORD" || fail "chaos coordinator exited non-zero"
wait "$W1" || fail "chaos worker 1 exited non-zero"
wait "$W2" || fail "chaos worker 2 exited non-zero"
cmp "$OUT/local.json" "$OUT/chaos.json" ||
    fail "document under network chaos differs from local run"
grep -q 'netfault armed' "$OUT/chaos-coord.log" ||
    fail "coordinator never armed its netfault handler"
echo "dist-chaos-smoke: chaos document is byte-identical to the local run"

echo "dist-chaos-smoke: rejoin-cache pass (warm the worker result cache)"
rm -f "$OUT/addr.txt" "$OUT/cache.jsonl"
# shellcheck disable=SC2086
"$OUT/sweep" $GRID -workers 2 -canonical -out "$OUT/warm.json" \
    -exec=net -listen 127.0.0.1:0 -addr-file "$OUT/addr.txt" \
    >/dev/null 2>"$OUT/warm-coord.log" &
COORD=$!
wait_addr "$OUT/addr.txt" || fail "warm coordinator never published its address"
ADDR=$(cat "$OUT/addr.txt")
"$OUT/worker" -connect "$ADDR" -name cache-w1 -parallel 2 \
    -cache "$OUT/cache.jsonl" 2>"$OUT/warm-worker.log" &
W1=$!
wait "$COORD" || fail "warm coordinator exited non-zero"
wait "$W1" || fail "warm worker exited non-zero"
cmp "$OUT/local.json" "$OUT/warm.json" ||
    fail "cache-warming document differs from local run"
[ -s "$OUT/cache.jsonl" ] || fail "worker result cache is empty after the warm run"

echo "dist-chaos-smoke: rejoin-cache pass (replay every key from the cache)"
rm -f "$OUT/addr.txt"
# shellcheck disable=SC2086
"$OUT/sweep" $GRID -workers 2 -canonical -out "$OUT/replay.json" \
    -exec=net -listen 127.0.0.1:0 -addr-file "$OUT/addr.txt" \
    >/dev/null 2>"$OUT/replay-coord.log" &
COORD=$!
wait_addr "$OUT/addr.txt" || fail "replay coordinator never published its address"
ADDR=$(cat "$OUT/addr.txt")
"$OUT/worker" -connect "$ADDR" -name cache-w1 -parallel 2 \
    -cache "$OUT/cache.jsonl" 2>"$OUT/replay-worker.log" &
W1=$!
wait "$COORD" || fail "replay coordinator exited non-zero"
wait "$W1" || fail "replay worker exited non-zero"
cmp "$OUT/local.json" "$OUT/replay.json" ||
    fail "cache-replay document differs from local run"
grep -q 'served from cache' "$OUT/replay-worker.log" ||
    fail "rejoined worker never replayed a cached result"
grep -q 'from cache)' "$OUT/replay-worker.log" ||
    fail "rejoined worker's drain line reports no cache hits"
echo "dist-chaos-smoke: rejoined worker replayed cached results, document unchanged"

REPLAYED=$(grep -c 'served from cache' "$OUT/replay-worker.log" || true)
cat >"$OUT/netchaos-report.json" <<EOF
{
  "schema": "cornucopia-netchaos/v1",
  "grid": "$GRID",
  "scenarios": [
    {
      "name": "drop+crash",
      "coordinator_faults": {"classes": "drop", "seed": 7, "rate": 0.3, "max_per_class": 4},
      "worker_faults": [
        {"worker": "chaos-w1", "classes": "drop,delay,reset", "seed": 11, "rate": 0.2, "max_per_class": 6},
        {"worker": "chaos-w2", "classes": "duplicate,reorder,throttle", "seed": 13, "rate": 0.2, "max_per_class": 6}
      ],
      "crashed_workers": 1,
      "document_identical": true
    },
    {
      "name": "rejoin-cache",
      "cache_replayed_jobs": $REPLAYED,
      "document_identical": true
    }
  ]
}
EOF
echo "dist-chaos-smoke: OK (report in $OUT/netchaos-report.json)"
