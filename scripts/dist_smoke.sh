#!/bin/sh
# dist_smoke.sh: end-to-end distributed-execution check (make dist-smoke).
#
# Runs the same small sweep grid twice — once on a local 2-worker pool,
# once through a cmd/sweep coordinator (-exec=net) with two cmd/worker
# processes on localhost — and diffs the canonical documents, which must
# be byte-identical. A second distributed pass kills one worker mid-lease
# (-crash-after-lease) and asserts the campaign still completes with the
# same document: the coordinator reclaims the dead worker's lease by
# heartbeat timeout and re-issues the job to the survivor.
#
# Artifacts land under the output directory (default dist-smoke/).
set -eu

OUT=${1:-dist-smoke}
mkdir -p "$OUT"

GRID="-figures fig5 -reps 1 -scale 16 -txs 400"
go build -o "$OUT/sweep" ./cmd/sweep
go build -o "$OUT/worker" ./cmd/worker

fail() {
    echo "dist-smoke: $1" >&2
    for f in "$OUT"/*.log; do
        [ -f "$f" ] && sed "s#^#  $(basename "$f"): #" "$f" >&2
    done
    exit 1
}

# wait_addr FILE: block until the coordinator publishes its bound address.
wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        [ -f "$1" ] && return 0
        sleep 0.1
        i=$((i + 1))
    done
    return 1
}

echo "dist-smoke: local reference run"
# shellcheck disable=SC2086  # GRID is a flag list
"$OUT/sweep" $GRID -workers 2 -canonical -out "$OUT/local.json" \
    >/dev/null 2>"$OUT/local.log" || fail "local run failed"

echo "dist-smoke: coordinator + 2 workers"
rm -f "$OUT/addr.txt"
# shellcheck disable=SC2086
"$OUT/sweep" $GRID -workers 2 -canonical -out "$OUT/dist.json" \
    -exec=net -listen 127.0.0.1:0 -addr-file "$OUT/addr.txt" \
    >/dev/null 2>"$OUT/coord.log" &
COORD=$!
wait_addr "$OUT/addr.txt" || fail "coordinator never published its address"
ADDR=$(cat "$OUT/addr.txt")
"$OUT/worker" -connect "$ADDR" -name smoke-w1 -parallel 2 2>"$OUT/w1.log" &
W1=$!
"$OUT/worker" -connect "$ADDR" -name smoke-w2 -parallel 2 2>"$OUT/w2.log" &
W2=$!
wait "$COORD" || fail "coordinator exited non-zero"
wait "$W1" || fail "worker 1 exited non-zero"
wait "$W2" || fail "worker 2 exited non-zero"
cmp "$OUT/local.json" "$OUT/dist.json" ||
    fail "distributed document differs from local run"
echo "dist-smoke: distributed document is byte-identical to the local run"

echo "dist-smoke: kill-one-worker-mid-run variant"
rm -f "$OUT/addr.txt"
# A short heartbeat so the crashed worker's lease is reclaimed quickly;
# -retry-backoff spaces the re-issue like a real fleet would, and
# -progress makes the reclaim observable as a retry [timeout] line.
# shellcheck disable=SC2086
"$OUT/sweep" $GRID -workers 2 -canonical -out "$OUT/crash.json" \
    -exec=net -listen 127.0.0.1:0 -addr-file "$OUT/addr.txt" \
    -heartbeat 100ms -retries 2 -retry-backoff 100ms -progress \
    >/dev/null 2>"$OUT/crash-coord.log" &
COORD=$!
wait_addr "$OUT/addr.txt" || fail "crash-variant coordinator never published its address"
ADDR=$(cat "$OUT/addr.txt")
# The crasher joins alone, takes the first lease, and dies without
# reporting (exit 2 is the crash hook's signature) — only then does the
# survivor join, so the reclaim path is guaranteed to be exercised.
"$OUT/worker" -connect "$ADDR" -name smoke-crasher -crash-after-lease 1 \
    2>"$OUT/crasher.log" &
CRASHER=$!
set +e
wait "$CRASHER"
CRASH_CODE=$?
set -e
[ "$CRASH_CODE" = 2 ] || fail "crasher exited $CRASH_CODE, want 2 (crash hook)"
"$OUT/worker" -connect "$ADDR" -name smoke-survivor -parallel 2 \
    2>"$OUT/survivor.log" &
SURVIVOR=$!
wait "$COORD" || fail "crash-variant coordinator exited non-zero"
wait "$SURVIVOR" || fail "survivor exited non-zero"
cmp "$OUT/local.json" "$OUT/crash.json" ||
    fail "document after worker crash differs from local run"
grep -q 'retry.*\[timeout\]' "$OUT/crash-coord.log" ||
    fail "no reclaimed-lease retry in coordinator progress log"
echo "dist-smoke: OK (campaign survived a worker killed mid-lease, document unchanged)"
