// Package journal is the campaign event journal: a versioned,
// append-only JSONL stream (cornucopia-journal/v1) of everything that
// happened to a campaign at the orchestration level — job submission,
// attempts, retries and results from the local pool, plus leases, worker
// membership, breaker trips, fault injections and recovery actions from
// the distributed coordinator.
//
// Two timestamps ride on every event: a strictly-increasing sequence
// number and a monotonic host-nanosecond offset from journal open, so a
// postmortem can reconstruct both causal order and real elapsed time.
// Simulated time appears where it exists (job results carry the job's
// virtual wall cycles).
//
// The journal is host-side observability, so most of it is inherently
// nondeterministic (interleaving, host costs, worker identity). The
// deterministic core is recovered by Canonical(): the projection of
// completed work onto simulated content, which is byte-identical for a
// given grid and seed regardless of worker count, scheduling, retries or
// cache replays — pinned by tests the same way the result documents are.
//
// A nil *Writer is a valid disabled journal, so emit sites need no
// guards; Writer is internally locked and safe for concurrent use (pool
// workers and coordinator handlers share one).
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Schema versions the journal header line.
const Schema = "cornucopia-journal/v1"

// Meta is the journal's first line: which tool wrote it and the
// canonical description of the grid it records. A resumed campaign
// appends to an existing journal only when the header matches.
type Meta struct {
	Schema string `json:"schema"`
	Tool   string `json:"tool"`
	Grid   string `json:"grid"`
}

// Event kinds. The pool emits the job-* lifecycle; the coordinator adds
// fleet membership and degraded-mode events.
const (
	// KindJobSubmit records a job entering the campaign (pool submit).
	KindJobSubmit = "job-submit"
	// KindJobStart records one execution attempt beginning.
	KindJobStart = "job-start"
	// KindJobRetry records a failed attempt being retried; Err carries
	// the classified error, Attempt the attempt that failed.
	KindJobRetry = "job-retry"
	// KindJobResult records a job finishing (Status ran/cached/failed).
	// VCycles is the job's simulated wall-cycle count on success.
	KindJobResult = "job-result"
	// KindJobLease records the coordinator granting a lease; Detail is
	// the lease id, Worker the grantee.
	KindJobLease = "job-lease"
	// KindJobReport records a worker's result report landing at the
	// coordinator (Status ran/cached/failed/discarded).
	KindJobReport = "job-report"
	// KindLeaseReclaim records the coordinator reclaiming a lease; Err
	// says why (heartbeat silence or lease age).
	KindLeaseReclaim = "lease-reclaim"
	// KindWorkerJoin records a worker passing hello validation.
	KindWorkerJoin = "worker-join"
	// KindWorkerEvict records a silent worker being folded into the
	// departed aggregate.
	KindWorkerEvict = "worker-evict"
	// KindBreakerTrip records a per-worker circuit breaker opening.
	KindBreakerTrip = "breaker-trip"
	// KindLocalFallback records the coordinator running queued jobs
	// locally because the fleet went silent; Count is the batch size.
	KindLocalFallback = "local-fallback"
	// KindNetFault summarizes injected network faults per class at
	// drain; Detail is the class, Count the injection count.
	KindNetFault = "netfault"
)

// Event is one journal line. Fields are omitted when they do not apply
// to the kind; Seq and HostNS are stamped by the Writer.
type Event struct {
	Seq       int     `json:"seq,omitempty"`
	HostNS    int64   `json:"host_ns,omitempty"`
	Kind      string  `json:"kind,omitempty"`
	Key       string  `json:"key,omitempty"`
	Workload  string  `json:"workload,omitempty"`
	Condition string  `json:"condition,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Status    string  `json:"status,omitempty"`
	Worker    string  `json:"worker,omitempty"`
	Attempt   int     `json:"attempt,omitempty"`
	Err       string  `json:"err,omitempty"`
	HostMS    float64 `json:"host_ms,omitempty"`
	VCycles   uint64  `json:"vcycles,omitempty"`
	Detail    string  `json:"detail,omitempty"`
	Count     uint64  `json:"count,omitempty"`
}

// journalLine is the on-disk union of header and event lines, mirroring
// the manifest's layout.
type journalLine struct {
	Meta *Meta `json:"meta,omitempty"`
	Event
}

// maxLine bounds one journal line when reading.
const maxLine = 16 << 20

// Writer appends events to a journal file. All methods are safe on a
// nil receiver (disabled journal) and safe for concurrent use.
type Writer struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	start time.Time
	base  int64 // host_ns offset adopted from a resumed journal
	seq   int
	err   error // sticky first write error
}

// Create opens the journal at path for the given tool/grid, creating it
// if absent. A torn final line (writer crashed mid-append) is truncated
// first, mirroring the manifest. A fresh journal adopts the header; an
// existing one must carry a matching header — its sequence and
// host-time counters are adopted so appended events stay monotonic.
func Create(path, tool, grid string) (*Writer, error) {
	meta := Meta{Schema: Schema, Tool: tool, Grid: grid}
	if err := repairTornTail(path); err != nil {
		return nil, fmt.Errorf("journal: repairing %s: %w", path, err)
	}
	var got *Meta
	lastSeq, lastNS := 0, int64(0)
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), maxLine)
		for sc.Scan() {
			var line journalLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				continue
			}
			if line.Meta != nil && got == nil {
				got = line.Meta
				continue
			}
			if line.Seq > lastSeq {
				lastSeq = line.Seq
			}
			if line.HostNS > lastNS {
				lastNS = line.HostNS
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("journal: reading %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, path: path, start: time.Now(), base: lastNS, seq: lastSeq}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	switch {
	case st.Size() == 0:
		b, err := json.Marshal(journalLine{Meta: &meta})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(append(b, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: writing header %s: %w", path, err)
		}
	case got == nil:
		f.Close()
		return nil, fmt.Errorf(
			"journal: %s has no metadata header and cannot be validated against this request; use a fresh -journal path",
			path)
	case got.Schema != meta.Schema || got.Tool != meta.Tool || got.Grid != meta.Grid:
		f.Close()
		return nil, fmt.Errorf(
			"journal: %s was written for a different run (tool %q grid %q, want tool %q grid %q); rerun with matching flags or use a fresh -journal path",
			path, got.Tool, got.Grid, meta.Tool, meta.Grid)
	}
	return w, nil
}

// Enabled reports whether events are being recorded.
func (w *Writer) Enabled() bool { return w != nil }

// Emit stamps the event with the next sequence number and the monotonic
// host-nanosecond offset and appends it. Write errors are sticky: the
// first is kept (see Err) and later emissions become no-ops, so a full
// disk cannot wedge a campaign.
func (w *Writer) Emit(ev Event) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	w.seq++
	ev.Seq = w.seq
	ns := w.base + time.Since(w.start).Nanoseconds()
	if ns <= w.base {
		ns = w.base + 1
	}
	ev.HostNS = ns
	b, err := json.Marshal(journalLine{Event: ev})
	if err != nil {
		w.err = err
		return
	}
	if _, err := w.f.Write(append(b, '\n')); err != nil {
		w.err = fmt.Errorf("journal: appending to %s: %w", w.path, err)
	}
}

// Err returns the sticky write error, if any.
func (w *Writer) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes and closes the journal file, returning the sticky write
// error if one occurred.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
		w.f = nil
	}
	return w.err
}

// repairTornTail truncates a trailing partial line left by a writer
// that crashed mid-append, exactly as the manifest does: O_APPEND would
// otherwise glue the next line onto the torn tail, making both
// unparsable.
func repairTornTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	buf := make([]byte, 64<<10)
	end := size // offset just past the last '\n'
	for off := size; off > 0; {
		n := int64(len(buf))
		if n > off {
			n = off
		}
		off -= n
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return err
		}
		if i := bytes.LastIndexByte(buf[:n], '\n'); i >= 0 {
			end = off + int64(i) + 1
			break
		}
		end = 0 // no newline anywhere (yet): whole file is one torn line
	}
	if end == size {
		return nil
	}
	return f.Truncate(end)
}

// Journal is a loaded journal: the header plus every parsable event in
// file order.
type Journal struct {
	Meta   Meta
	Events []Event
}

// Read loads the journal at path. A torn final line is tolerated (it is
// skipped, as repair would), but the header must parse and carry the
// journal schema.
func Read(path string) (*Journal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	j, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	return j, nil
}

// Parse reads a journal document from r.
func Parse(r io.Reader) (*Journal, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), maxLine)
	j := &Journal{}
	seenMeta := false
	for sc.Scan() {
		var line journalLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			continue // torn tail from an interrupted write
		}
		if line.Meta != nil && !seenMeta {
			j.Meta = *line.Meta
			seenMeta = true
			continue
		}
		if line.Kind == "" {
			continue
		}
		j.Events = append(j.Events, line.Event)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenMeta {
		return nil, fmt.Errorf("missing metadata header")
	}
	if j.Meta.Schema != Schema {
		return nil, fmt.Errorf("schema %q, want %q", j.Meta.Schema, Schema)
	}
	return j, nil
}

// knownKinds indexes every event kind Validate accepts.
var knownKinds = map[string]bool{
	KindJobSubmit: true, KindJobStart: true, KindJobRetry: true,
	KindJobResult: true, KindJobLease: true, KindJobReport: true,
	KindLeaseReclaim: true, KindWorkerJoin: true, KindWorkerEvict: true,
	KindBreakerTrip: true, KindLocalFallback: true, KindNetFault: true,
}

// Validate checks the journal's structural invariants: schema, strictly
// increasing sequence numbers, non-decreasing host time, known kinds,
// and job-result events that carry a key and were preceded by the
// matching job-submit.
func (j *Journal) Validate() error {
	if j.Meta.Schema != Schema {
		return fmt.Errorf("journal: schema %q, want %q", j.Meta.Schema, Schema)
	}
	lastSeq, lastNS := 0, int64(0)
	submitted := map[string]bool{}
	for i, ev := range j.Events {
		if ev.Seq <= lastSeq {
			return fmt.Errorf("journal: event %d: seq %d not increasing (prev %d)", i, ev.Seq, lastSeq)
		}
		if ev.HostNS < lastNS {
			return fmt.Errorf("journal: event %d: host_ns %d went backwards (prev %d)", i, ev.HostNS, lastNS)
		}
		lastSeq, lastNS = ev.Seq, ev.HostNS
		if !knownKinds[ev.Kind] {
			return fmt.Errorf("journal: event %d: unknown kind %q", i, ev.Kind)
		}
		switch ev.Kind {
		case KindJobSubmit:
			submitted[ev.Key] = true
		case KindJobResult:
			if ev.Key == "" {
				return fmt.Errorf("journal: event %d: job-result without key", i)
			}
			if !submitted[ev.Key] {
				return fmt.Errorf("journal: event %d: job-result for %s before job-submit", i, ev.Key)
			}
		}
	}
	return nil
}

// Canonical projects the journal onto its deterministic core: the
// successfully completed jobs, stripped of every host-side artifact
// (timestamps, attempts, worker identity, host cost) and of the
// ran-vs-cached distinction — a cached job completed with identical
// simulated content — sorted by job key with the last result per key
// winning. Two campaigns over the same grid and seeds produce identical
// canonical journals no matter how the work was scheduled.
func (j *Journal) Canonical() []Event {
	byKey := map[string]Event{}
	for _, ev := range j.Events {
		if ev.Kind != KindJobResult {
			continue
		}
		if ev.Status != "ran" && ev.Status != "cached" {
			continue
		}
		byKey[ev.Key] = Event{
			Kind:      KindJobResult,
			Key:       ev.Key,
			Workload:  ev.Workload,
			Condition: ev.Condition,
			Seed:      ev.Seed,
			Status:    "done",
			VCycles:   ev.VCycles,
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Event, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}

// WriteCanonical writes the canonical projection as a journal document:
// the header followed by the canonical events, one JSONL line each.
func (j *Journal) WriteCanonical(w io.Writer) error {
	meta := Meta{Schema: Schema, Tool: j.Meta.Tool, Grid: j.Meta.Grid}
	b, err := json.Marshal(journalLine{Meta: &meta})
	if err != nil {
		return err
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return err
	}
	for _, ev := range j.Canonical() {
		b, err := json.Marshal(journalLine{Event: ev})
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}
