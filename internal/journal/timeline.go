// The merged campaign timeline: every job of a campaign rendered into
// one Chrome trace_event / Perfetto document, with each worker a named
// process track and each job's shipped trace-ring samples re-based onto
// the campaign timeline.
//
// Two modes:
//
//   - live: jobs are grouped by the worker that ran them (process per
//     worker, "local" for pool runs), with host-side detail (host_ms,
//     worker) in the span args. Useful for seeing fleet utilization.
//   - canonical: every host-side artifact is stripped — one "campaign"
//     process, jobs sorted by key and laid head-to-tail in simulated
//     time — so the timeline is byte-identical for a given grid and
//     seed no matter how many workers ran it. This is the document the
//     byte-identity tests and obs-smoke pin.
package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/telemetry"
)

// TimelineJob is one completed job's contribution to the merged
// timeline. Trace holds the job's shipped trace-ring export (may be
// empty when the campaign ran without -trace-events).
type TimelineJob struct {
	Key       string
	Workload  string
	Condition string
	Seed      int64
	// Worker names the process track in live mode ("" renders as
	// "local"); ignored in canonical mode.
	Worker string
	HostMS float64
	// WallCycles and HzGHz place the job in simulated time.
	WallCycles   uint64
	HzGHz        float64
	Trace        []telemetry.TraceSample
	TraceDropped uint64
}

// TimelineSchema names the merged-timeline document in otherData.
const TimelineSchema = "cornucopia-timeline/v1"

// machineTID mirrors trace's thread id for machine-wide events,
// offset like the per-core tids to keep tid 0 for the jobs track.
const machineTID = 1001

// timelineEvent is one trace_event record (times in microseconds).
type timelineEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// sampleTID maps a trace sample's core to its thread track: tid 0 is
// the per-process jobs track, cores take 1+core, machine-wide events
// (core -1) land on machineTID.
func sampleTID(core int) int {
	if core < 0 {
		return machineTID
	}
	return 1 + core
}

// WriteTimeline renders the jobs as one merged Chrome trace_event JSON
// document. See the file comment for the live/canonical split.
func WriteTimeline(w io.Writer, jobs []TimelineJob, canonical bool) error {
	sorted := append([]TimelineJob(nil), jobs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })

	// Partition into process tracks.
	type track struct {
		name string
		jobs []TimelineJob
	}
	var tracks []track
	if canonical {
		tracks = []track{{name: "campaign", jobs: sorted}}
	} else {
		byWorker := map[string][]TimelineJob{}
		var names []string
		for _, j := range sorted {
			name := j.Worker
			if name == "" {
				name = "local"
			}
			if _, ok := byWorker[name]; !ok {
				names = append(names, name)
			}
			byWorker[name] = append(byWorker[name], j)
		}
		sort.Strings(names)
		for _, n := range names {
			tracks = append(tracks, track{name: n, jobs: byWorker[n]})
		}
	}

	var out []timelineEvent
	for pi, tr := range tracks {
		pid := pi + 1
		out = append(out, timelineEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": tr.name},
		})
		// Thread metadata: the jobs track plus every tid the shipped
		// samples touch, in deterministic (sorted) order.
		tids := map[int]string{0: "jobs"}
		for _, j := range tr.jobs {
			for _, s := range j.Trace {
				tid := sampleTID(s.Core)
				if _, ok := tids[tid]; !ok {
					if tid == machineTID {
						tids[tid] = "machine"
					} else {
						tids[tid] = fmt.Sprintf("core %d", tid-1)
					}
				}
			}
		}
		order := make([]int, 0, len(tids))
		for tid := range tids {
			order = append(order, tid)
		}
		sort.Ints(order)
		for _, tid := range order {
			out = append(out, timelineEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": tids[tid]},
			})
		}

		// Jobs laid head-to-tail in simulated time.
		var cursor float64
		for _, j := range tr.jobs {
			hz := j.HzGHz
			if hz <= 0 {
				hz = 1
			}
			toUS := func(cycle uint64) float64 { return float64(cycle) / (hz * 1e3) }
			args := map[string]any{"key": j.Key}
			if !canonical {
				args["host_ms"] = j.HostMS
				args["worker"] = tr.name
				if j.TraceDropped > 0 {
					args["trace_dropped"] = j.TraceDropped
				}
			}
			out = append(out, timelineEvent{
				Name: fmt.Sprintf("%s/%s seed=%d", j.Workload, j.Condition, j.Seed),
				Cat:  "job", Ph: "X", Ts: cursor, Dur: toUS(j.WallCycles),
				Pid: pid, Tid: 0, Args: args,
			})
			out = appendSamples(out, j.Trace, pid, cursor, toUS)
			cursor += toUS(j.WallCycles)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ns",
		"otherData": map[string]any{
			"schema": TimelineSchema,
			"source": "repro/internal/journal",
		},
	})
}

// appendSamples renders one job's trace samples at the given campaign
// offset, pairing Begin/End per (tid, kind) into complete spans exactly
// as trace.WriteChrome does (orphans from ring wrap are dropped).
func appendSamples(out []timelineEvent, samples []telemetry.TraceSample, pid int, offset float64, toUS func(uint64) float64) []timelineEvent {
	type skey struct {
		tid  int
		kind string
	}
	type open struct {
		s   telemetry.TraceSample
		idx int // reserved slot, filled when the End arrives
	}
	stacks := map[skey][]open{}
	sampleArgs := func(s telemetry.TraceSample) map[string]any {
		args := map[string]any{"agent": s.Agent, "epoch": s.Epoch}
		if s.Arg != 0 {
			args["arg"] = s.Arg
		}
		if s.Arg2 != 0 {
			args["arg2"] = s.Arg2
		}
		return args
	}
	for _, s := range samples {
		key := skey{sampleTID(s.Core), s.Kind}
		switch s.Phase {
		case "B":
			out = append(out, timelineEvent{}) // placeholder keeps nesting order
			stacks[key] = append(stacks[key], open{s: s, idx: len(out) - 1})
		case "E":
			st := stacks[key]
			if len(st) == 0 {
				continue // Begin lost to ring wrap
			}
			o := st[len(st)-1]
			stacks[key] = st[:len(st)-1]
			args := sampleArgs(o.s)
			// End-side args carry the totals.
			for k, v := range sampleArgs(s) {
				args[k] = v
			}
			out[o.idx] = timelineEvent{
				Name: s.Kind, Cat: s.Kind, Ph: "X",
				Ts: offset + toUS(o.s.Cycle), Dur: toUS(s.Cycle) - toUS(o.s.Cycle),
				Pid: pid, Tid: key.tid, Args: args,
			}
		default:
			out = append(out, timelineEvent{
				Name: s.Kind, Cat: s.Kind, Ph: "i",
				Ts: offset + toUS(s.Cycle), Pid: pid, Tid: key.tid, S: "t",
				Args: sampleArgs(s),
			})
		}
	}
	// Drop placeholders whose End never arrived (still-open spans).
	final := out[:0]
	for _, ev := range out {
		if ev.Ph != "" {
			final = append(final, ev)
		}
	}
	return final
}
