package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

func testWriter(t *testing.T) (*Writer, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.journal")
	w, err := Create(path, "sweep", "grid-A")
	if err != nil {
		t.Fatal(err)
	}
	return w, path
}

func TestNilWriterIsDisabled(t *testing.T) {
	var w *Writer
	if w.Enabled() {
		t.Fatal("nil writer reports enabled")
	}
	w.Emit(Event{Kind: KindJobSubmit, Key: "k"}) // must not panic
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	w, path := testWriter(t)
	w.Emit(Event{Kind: KindJobSubmit, Key: "k1", Workload: "wl", Condition: "cond", Seed: 42})
	w.Emit(Event{Kind: KindJobStart, Key: "k1", Attempt: 1})
	w.Emit(Event{Kind: KindJobRetry, Key: "k1", Attempt: 1, Err: "timeout"})
	w.Emit(Event{Kind: KindJobResult, Key: "k1", Workload: "wl", Condition: "cond", Seed: 42,
		Status: "ran", Attempt: 2, HostMS: 12.5, VCycles: 9000})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Meta.Schema != Schema || j.Meta.Tool != "sweep" || j.Meta.Grid != "grid-A" {
		t.Fatalf("meta = %+v", j.Meta)
	}
	if len(j.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(j.Events))
	}
	for i, ev := range j.Events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d: seq %d", i, ev.Seq)
		}
	}
	if got := j.Events[3]; got.VCycles != 9000 || got.Status != "ran" || got.HostMS != 12.5 {
		t.Fatalf("result event = %+v", got)
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	for _, tc := range []struct {
		name string
		j    Journal
		want string
	}{
		{"wrong schema", Journal{Meta: Meta{Schema: "bogus/v9"}}, "schema"},
		{"seq regression", Journal{Meta: Meta{Schema: Schema}, Events: []Event{
			{Seq: 2, Kind: KindWorkerJoin}, {Seq: 2, Kind: KindWorkerJoin},
		}}, "seq"},
		{"host time backwards", Journal{Meta: Meta{Schema: Schema}, Events: []Event{
			{Seq: 1, HostNS: 50, Kind: KindWorkerJoin}, {Seq: 2, HostNS: 10, Kind: KindWorkerJoin},
		}}, "host_ns"},
		{"unknown kind", Journal{Meta: Meta{Schema: Schema}, Events: []Event{
			{Seq: 1, Kind: "job-teleport"},
		}}, "unknown kind"},
		{"result without submit", Journal{Meta: Meta{Schema: Schema}, Events: []Event{
			{Seq: 1, Kind: KindJobResult, Key: "k", Status: "ran"},
		}}, "before job-submit"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.j.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestTornTailRepair mirrors the manifest test: a writer that died
// mid-append leaves a torn final line; Create must truncate it so the
// next append does not glue onto it, and Read must tolerate it.
func TestTornTailRepair(t *testing.T) {
	w, path := testWriter(t)
	w.Emit(Event{Kind: KindJobSubmit, Key: "k1"})
	w.Emit(Event{Kind: KindJobResult, Key: "k1", Status: "ran", VCycles: 7})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a JSON line, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"kind":"job-res`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Read tolerates the torn tail as-is.
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(j.Events))
	}

	// Create repairs it and resumes seq/host_ns monotonically.
	w2, err := Create(path, "sweep", "grid-A")
	if err != nil {
		t.Fatal(err)
	}
	w2.Emit(Event{Kind: KindWorkerJoin, Worker: "w001"})
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	j, err = Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(j.Events) != 3 {
		t.Fatalf("after repair+append: %d events, want 3", len(j.Events))
	}
	if j.Events[2].Seq != 3 || j.Events[2].Kind != KindWorkerJoin {
		t.Fatalf("appended event = %+v", j.Events[2])
	}
}

func TestCreateRefusesForeignGrid(t *testing.T) {
	w, path := testWriter(t)
	w.Emit(Event{Kind: KindJobSubmit, Key: "k"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(path, "sweep", "grid-B"); err == nil {
		t.Fatal("foreign grid accepted")
	}
	if _, err := Create(path, "chaos", "grid-A"); err == nil {
		t.Fatal("foreign tool accepted")
	}
	// Matching header resumes fine.
	w2, err := Create(path, "sweep", "grid-A")
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
}

// TestCanonicalDeterminism feeds the same completed work through two
// journals with wildly different host-side histories (ordering,
// retries, workers, cache replays, fleet events) and requires identical
// canonical bytes.
func TestCanonicalDeterminism(t *testing.T) {
	result := func(key string, cycles uint64) Event {
		return Event{Kind: KindJobResult, Key: key, Workload: "wl", Condition: "cond",
			Seed: 1, VCycles: cycles}
	}
	run := func(seq []Event) []byte {
		path := filepath.Join(t.TempDir(), "j")
		w, err := Create(path, "sweep", "g")
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range seq {
			w.Emit(ev)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		j, err := Read(path)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := j.WriteCanonical(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	a := run([]Event{
		{Kind: KindJobSubmit, Key: "k1"}, {Kind: KindJobSubmit, Key: "k2"},
		func() Event { e := result("k1", 100); e.Status = "ran"; e.HostMS = 5; e.Attempt = 1; return e }(),
		func() Event { e := result("k2", 200); e.Status = "ran"; e.HostMS = 9; e.Attempt = 1; return e }(),
	})
	b := run([]Event{
		{Kind: KindWorkerJoin, Worker: "w001"},
		{Kind: KindJobSubmit, Key: "k2"}, {Kind: KindJobSubmit, Key: "k1"},
		{Kind: KindJobLease, Key: "k2", Worker: "w001", Detail: "lease-000001"},
		{Kind: KindJobRetry, Key: "k2", Attempt: 1, Err: "timeout"},
		func() Event { e := result("k2", 200); e.Status = "cached"; e.HostMS = 2; e.Attempt = 2; e.Worker = "w001"; return e }(),
		{Kind: KindBreakerTrip, Worker: "w001"},
		func() Event { e := result("k1", 100); e.Status = "ran"; e.HostMS = 55; e.Attempt = 1; e.Worker = "w001"; return e }(),
		{Kind: KindWorkerEvict, Worker: "w001"},
	})
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical journals differ:\n--- a\n%s\n--- b\n%s", a, b)
	}
	// Failed results must not appear in the canonical view.
	c := run([]Event{
		{Kind: KindJobSubmit, Key: "k3"},
		{Kind: KindJobResult, Key: "k3", Status: "failed", Err: "panic: boom"},
	})
	if strings.Contains(string(c), "k3") {
		t.Fatalf("failed job leaked into canonical view:\n%s", c)
	}
}

// TestConcurrentEmit exercises the Writer under the race detector: many
// goroutines emitting while another polls Err, as pool workers and
// coordinator handlers do.
func TestConcurrentEmit(t *testing.T) {
	w, path := testWriter(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w.Emit(Event{Kind: KindJobStart, Key: fmt.Sprintf("g%d-%d", g, i)})
				_ = w.Err()
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	j, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(j.Events) != 400 {
		t.Fatalf("got %d events, want 400", len(j.Events))
	}
}

// TestTimelineCanonicalIdentity renders the same jobs in different
// orders with different host-side attributes; canonical timelines must
// be byte-identical while live ones reflect the worker split.
func TestTimelineCanonicalIdentity(t *testing.T) {
	mkJob := func(key, worker string, hostMS float64) TimelineJob {
		return TimelineJob{
			Key: key, Workload: "wl", Condition: "cond", Seed: 7,
			Worker: worker, HostMS: hostMS, WallCycles: 5000, HzGHz: 2.5,
			Trace: []telemetry.TraceSample{
				{Cycle: 100, Core: 0, Agent: "revoker", Kind: "epoch", Phase: "B", Epoch: 1},
				{Cycle: 900, Core: 0, Agent: "revoker", Kind: "epoch", Phase: "E", Epoch: 1, Arg: 3},
				{Cycle: 400, Core: -1, Agent: "kernel", Kind: "tlb-shootdown", Phase: "i", Epoch: 1},
			},
		}
	}
	render := func(jobs []TimelineJob, canonical bool) []byte {
		var b bytes.Buffer
		if err := WriteTimeline(&b, jobs, canonical); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	local := []TimelineJob{mkJob("k1", "", 5), mkJob("k2", "", 6)}
	dist := []TimelineJob{mkJob("k2", "w002", 31), mkJob("k1", "w001", 17)}

	if got, want := render(dist, true), render(local, true); !bytes.Equal(got, want) {
		t.Fatalf("canonical timelines differ:\n--- dist\n%s\n--- local\n%s", got, want)
	}
	live := string(render(dist, false))
	for _, want := range []string{`"w001"`, `"w002"`, "process_name", "host_ms"} {
		if !strings.Contains(live, want) {
			t.Fatalf("live timeline missing %s:\n%s", want, live)
		}
	}
	canon := string(render(dist, true))
	for _, forbidden := range []string{"host_ms", "w001", "worker"} {
		if strings.Contains(canon, forbidden) {
			t.Fatalf("canonical timeline leaks host detail %q:\n%s", forbidden, canon)
		}
	}
	// Span pairing: the B/E pair must appear as one complete event.
	if !strings.Contains(canon, `"ph":"X"`) || !strings.Contains(canon, `"epoch"`) {
		t.Fatalf("canonical timeline missing paired spans:\n%s", canon)
	}
}
