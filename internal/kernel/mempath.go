package kernel

import "fmt"

// MemPath selects the memory-model host representation: the sparse fast
// path or the flat differential path.
//
// Both paths compute identical simulated results — the same tag state,
// the same bitmap state, the same page tables, the same cost accounting —
// so, like SweepKernel, the selection never changes what a run computes,
// only what it costs the host. The fast path is the default; the flat
// path is retained as a differential oracle (see the mem-path equivalence
// tests) and as the perf baseline hostbench's heap-scale and fleet-setup
// floors are measured against.
//
// The seam fans out to three representations:
//
//   - tmem.Phys.FlatAlloc — flat allocates fresh zeroed capability arrays
//     per frame and clears data-store tag spans granule by granule; fast
//     recycles freed frames' arrays (reads are tag-guarded, so recycled
//     contents are unobservable) and clears word-masked spans.
//   - shadow.Bitmap.FlatSet — flat paints granule by granule with fresh
//     chunk allocation; fast applies whole word-masks and recycles
//     emptied chunks (freed chunks are all-zero by construction).
//   - vm.AddressSpace.FlatVPNs — flat keeps the sorted vpn list with a
//     copy-shift insert per page (O(pages²) for a growing heap); fast
//     appends in O(1) when mappings arrive in ascending order, which a
//     bump-pointer reservation layout makes the overwhelmingly common
//     case.
type MemPath int

const (
	// MemPathFast is the sparse hierarchical representation with
	// recycling allocation paths.
	MemPathFast MemPath = iota
	// MemPathFlat is the flat differential path.
	MemPathFlat
)

func (m MemPath) String() string {
	switch m {
	case MemPathFast:
		return "fast"
	case MemPathFlat:
		return "flat"
	}
	return fmt.Sprintf("mempath(%d)", int(m))
}

// ParseMemPath parses a -mempath flag value.
func ParseMemPath(s string) (MemPath, error) {
	switch s {
	case "", "fast":
		return MemPathFast, nil
	case "flat":
		return MemPathFlat, nil
	}
	return 0, fmt.Errorf("kernel: unknown mem path %q (want fast or flat)", s)
}
