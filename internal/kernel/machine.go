// Package kernel glues the simulated hardware together and exposes the
// operating-system services the paper's revokers are built on: processes
// and threads with cost-charged, fault-handling memory operations;
// stop-the-world rendezvous over all of a process's threads (§4.4);
// kernel capability hoards; the public revocation epoch counter (§2.2.3);
// and the page-sweep primitive every revocation strategy shares.
package kernel

import (
	"repro/internal/bus"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tmem"
	"repro/internal/trace"
)

// Costs is the cycle cost table for kernel-visible events. Memory access
// latency is charged by the bus model; these are everything else.
type Costs struct {
	// Op is the base cost of executing one simple instruction.
	Op uint64
	// TLBHit is the address translation cost on a TLB hit.
	TLBHit uint64
	// TLBMiss is the page-table walk cost on a TLB miss.
	TLBMiss uint64
	// SoftFault is the demand-zero page materialization cost.
	SoftFault uint64
	// TrapEntry is the entry+exit overhead of a synchronous exception
	// (capability load generation fault).
	TrapEntry uint64
	// TLBRefill is the cost of detecting a stale TLB generation whose PTE
	// is already current and reloading the entry (the cheap path of a
	// Reloaded load fault, §4.3).
	TLBRefill uint64
	// PTEUpdate is the amortized cost of a locked page-table update; bulk
	// passes batch many updates under one pmap lock acquisition.
	PTEUpdate uint64
	// IPI is the cost of an inter-processor interrupt, per target core.
	IPI uint64
	// StopThread is the per-thread cost of thread_single-style quiescence.
	StopThread uint64
	// ResumeThread is the per-thread cost of releasing a stopped thread.
	ResumeThread uint64
	// SyscallDrain is the typical cost of completing or aborting one
	// in-flight system call during stop-the-world (§4.4).
	SyscallDrain uint64
	// SyscallDrainTail is the pathological drain cost, charged with
	// probability 1/SyscallDrainTailOdds (the long tails of §5.4.1).
	SyscallDrainTail     uint64
	SyscallDrainTailOdds uint64
	// Syscall is the base user→kernel→user crossing cost.
	Syscall uint64
	// CapScan is the per-capability cost of testing a register or hoard
	// slot against the revocation bitmap.
	CapScan uint64
	// Mmap and Munmap are the base costs of the mapping system calls.
	Mmap, Munmap uint64
	// ForkPageCopy is the per-resident-page cost of an eager fork copy.
	ForkPageCopy uint64
	// COWFault is the cost of a copy-on-write resolution: write fault,
	// frame allocation and 4 KiB copy.
	COWFault uint64
}

// DefaultCosts returns cycle costs loosely calibrated to a 2.5 GHz
// out-of-order core: traps in the microsecond range, IPIs a few
// microseconds, page-table work tens to hundreds of nanoseconds.
func DefaultCosts() Costs {
	return Costs{
		Op:                   1,
		TLBHit:               1,
		TLBMiss:              40,
		SoftFault:            1_800,
		TrapEntry:            1_200,
		TLBRefill:            300,
		PTEUpdate:            70,
		IPI:                  2_500,
		StopThread:           3_000,
		ResumeThread:         800,
		SyscallDrain:         1_500,
		SyscallDrainTail:     12_000_000, // ~5 ms: a stuck syscall (§5.4.1)
		SyscallDrainTailOdds: 2_000,
		Syscall:              700,
		CapScan:              6,
		Mmap:                 2_000,
		Munmap:               1_500,
		ForkPageCopy:         1_500,
		COWFault:             3_500,
	}
}

// Machine is one simulated computer: cores, tagged memory, and the bus.
type Machine struct {
	Eng   *sim.Engine
	Phys  *tmem.Phys
	Bus   *bus.Bus
	Costs Costs

	// Trace, when non-nil, records structured events from every layer
	// (epochs, stop-the-world windows, sweeps, load-barrier faults,
	// shootdowns, quarantine and allocator activity). A nil Trace is a
	// valid no-op tracer, so hot paths need no guards. Set it before
	// creating processes so the MMU shootdown hook is wired.
	Trace *trace.Tracer

	// Telem, when non-nil, is the cycle profiler and metrics registry
	// fed by kernel emit sites. Like Trace, nil is a valid disabled
	// recorder; set it (and Bind it to Eng) before creating processes.
	Telem *telemetry.Telemetry

	// Sweep selects the page-sweep implementation (see SweepKernel). The
	// zero value is the word-wise kernel; both kernels produce identical
	// simulated results, so the selection — like Trace and Telem — never
	// changes what a run computes, only what it costs the host.
	Sweep SweepKernel

	// Mem selects the memory-model host representation (see MemPath). The
	// zero value is the sparse fast path; like Sweep, the flat path
	// produces identical simulated results and exists as a differential
	// oracle and perf baseline. Set it before creating processes: it is
	// consulted (and fanned out to the frame bank, address space and
	// shadow bitmap) when NewProcess runs.
	Mem MemPath

	procs []*Process
}

// MachineConfig aggregates the machine's constituent configurations.
type MachineConfig struct {
	Sim   sim.Config
	Bus   bus.Config
	Costs Costs
	// MaxFrames bounds physical memory, in 4 KiB frames.
	MaxFrames int
}

// DefaultMachineConfig models a Morello-like four-core 2.5 GHz board with
// 1 GiB of tagged memory.
func DefaultMachineConfig() MachineConfig {
	return MachineConfig{
		Sim:       sim.DefaultConfig(),
		Bus:       bus.DefaultConfig(),
		Costs:     DefaultCosts(),
		MaxFrames: 1 << 18,
	}
}

// NewMachine boots a machine.
func NewMachine(cfg MachineConfig) *Machine {
	return &Machine{
		Eng:   sim.New(cfg.Sim),
		Phys:  tmem.NewPhys(cfg.MaxFrames),
		Bus:   bus.New(cfg.Sim.Cores, cfg.Bus),
		Costs: cfg.Costs,
	}
}

// Processes returns the machine's processes in creation order.
func (m *Machine) Processes() []*Process { return m.procs }

// Run executes the machine until all threads complete.
func (m *Machine) Run() error { return m.Eng.Run() }
