package kernel

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/ca"
	"repro/internal/shadow"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tmem"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Thread is one simulated user thread. All user-visible work — computation,
// memory access, system calls — flows through its methods, which charge
// virtual time and honor stop-the-world requests at operation boundaries.
//
// Capability roots held by the program (the architectural register file,
// spilled registers, thread stacks) are modelled by the thread's register
// slots: long-lived capabilities must live in registers or in simulated
// memory, where revocation can find them. Holding a capability only in a Go
// local across blocking operations would hide it from the revoker, which
// the real architecture makes impossible.
type Thread struct {
	Sim   *sim.Thread
	P     *Process
	Agent bus.Agent

	regs      []ca.Capability
	inSyscall bool
	parked    bool
}

// pre is the prologue of every kernel operation: honor a pending
// stop-the-world, then charge the base cost.
func (t *Thread) pre(cycles uint64) {
	if t.P.stwActive && t.P.stwInitiator != t {
		t.park()
	}
	t.Sim.Tick(cycles)
}

// park blocks the thread for the duration of a stop-the-world pause.
func (t *Thread) park() {
	for t.P.stwActive && t.P.stwInitiator != t {
		t.parked = true
		t.P.stwEv.Broadcast(t.Sim)
		t.P.resumeEv.Wait(t.Sim)
		t.parked = false
	}
}

// quiesceNotify tells a stop-the-world initiator to re-examine the world:
// called just before this thread transitions to a blocked or sleeping
// state, which counts as stopped.
func (t *Thread) quiesceNotify() {
	if t.P.stwActive && t.P.stwInitiator != t {
		t.P.stwEv.Broadcast(t.Sim)
	}
}

// WaitOn blocks the thread until cond() holds, re-testing after each
// broadcast of ev. It is stop-the-world aware: blocking counts as reaching
// a safepoint (the initiator is notified), and a pause still in progress
// when the thread wakes parks it before it can touch anything. All
// simulated code must block through this (or Idle/Syscall), never through
// a raw sim.Event, or stop-the-world can stall.
func (t *Thread) WaitOn(ev *sim.Event, cond func() bool) {
	for !cond() {
		t.quiesceNotify()
		ev.Wait(t.Sim)
	}
	t.pre(0)
}

// Work charges cycles of pure computation.
func (t *Thread) Work(cycles uint64) { t.pre(cycles) }

// Idle blocks the thread for the given cycles without consuming CPU
// (inter-transaction think time, network waits).
func (t *Thread) Idle(cycles uint64) {
	t.pre(0)
	t.quiesceNotify()
	t.Sim.Sleep(cycles)
	t.pre(0) // honor a pause that began while idle
}

// Syscall models a system call of the given kernel-side cost. The thread is
// marked in-syscall for its duration, which stop-the-world must drain
// (§4.4).
func (t *Thread) Syscall(cycles uint64) {
	t.P.M.Telem.Enter(t.Sim, telemetry.CompKernel)
	t.pre(t.P.M.Costs.Syscall)
	t.inSyscall = true
	t.Sim.Tick(cycles)
	t.inSyscall = false
	t.pre(0)
	t.P.M.Telem.Exit(t.Sim)
}

// SyscallCaps models a blocking system call that carries capabilities into
// the kernel (write, kevent, aio_read, ...). For its duration the
// capabilities are an ephemeral kernel hoard: a revocation stop-the-world
// scans (and possibly revokes) them, and the kernel never divulges an
// unchecked capability (§4.4) — the returned slice is the post-scan view.
func (t *Thread) SyscallCaps(cycles uint64, caps []ca.Capability) []ca.Capability {
	t.P.M.Telem.Enter(t.Sim, telemetry.CompKernel)
	t.pre(t.P.M.Costs.Syscall)
	t.P.setEphemeral(t, caps)
	t.inSyscall = true
	t.quiesceNotify()
	t.Sim.Sleep(cycles)
	t.inSyscall = false
	out := t.P.takeEphemeral(t)
	t.pre(0)
	t.P.M.Telem.Exit(t.Sim)
	return out
}

// CopyRange copies n bytes from src to dst (both at their cursors),
// preserving capability tags granule by granule as a CHERI memcpy does:
// each aligned capability-width transfer goes through the full load path —
// including the load barrier — so a copy can never launder an unchecked
// capability.
func (t *Thread) CopyRange(dst, src ca.Capability, n uint64) error {
	aligned := src.Addr()%ca.GranuleSize == 0 && dst.Addr()%ca.GranuleSize == 0
	var off uint64
	for off+ca.GranuleSize <= n && aligned {
		v, err := t.LoadCap(src, off)
		if err != nil {
			return err
		}
		if err := t.StoreCap(dst, off, v); err != nil {
			return err
		}
		off += ca.GranuleSize
	}
	if off < n {
		if err := t.Load(src, off, n-off); err != nil {
			return err
		}
		if err := t.Store(dst, off, n-off); err != nil {
			return err
		}
	}
	return nil
}

// InSyscall reports whether the thread is inside a simulated system call.
func (t *Thread) InSyscall() bool { return t.inSyscall }

// Reg returns register i's capability.
func (t *Thread) Reg(i int) ca.Capability {
	if i >= len(t.regs) {
		return ca.Capability{}
	}
	return t.regs[i]
}

// SetReg stores a capability into register i, growing the file as needed
// (the file models registers plus the spilled stack the kernel scans).
func (t *Thread) SetReg(i int, c ca.Capability) {
	for len(t.regs) <= i {
		t.regs = append(t.regs, ca.Capability{})
	}
	t.regs[i] = c
}

// RegCount returns the size of the register file.
func (t *Thread) RegCount() int { return len(t.regs) }

// --- address translation ---------------------------------------------------

// translate resolves va on this thread's core, charging TLB and fault
// costs and materializing demand-zero pages. It returns the live PTE and
// the generation bit the core's TLB holds for the page — which may be stale
// if the revoker updated the PTE after the entry was cached; capability
// loads use that staleness to decide between the TLB-refill fast path and a
// genuine load-generation fault (§4.3).
func (t *Thread) translate(va uint64) (pte *vm.PTE, tlbGen uint8, err error) {
	core := t.Sim.CoreID()
	costs := t.P.M.Costs
	if cached, ok := t.P.AS.TLBLookup(core, va); ok {
		t.Sim.Tick(costs.TLBHit)
		live, lok := t.P.AS.Lookup(va)
		if !lok {
			// TLB entry for a page unmapped meanwhile; fall through to the
			// slow path, which will fault.
			t.P.AS.TLBInvalidate(core, va)
		} else {
			return live, cached.Gen, nil
		}
	}
	t.Sim.Tick(costs.TLBMiss)
	pte, faulted, err := t.P.AS.EnsureMapped(va)
	if err != nil {
		return nil, 0, err
	}
	if faulted {
		t.Sim.Tick(costs.SoftFault)
	}
	t.P.AS.TLBFill(core, va, pte)
	return pte, pte.Gen, nil
}

// checkColor enforces the §7.3 coloring composition on an access through c
// to the granule at (frame, g).
func (t *Thread) checkColor(c ca.Capability, frame tmem.FrameID, g int, va uint64) error {
	if !t.P.colorMode {
		return nil
	}
	if c.HasPerms(ca.PermRecolor) {
		// Elevated authority (the allocator's heap capabilities, §7.3):
		// recoloring authority subsumes access at any color.
		return nil
	}
	if mc := t.P.M.Phys.ColorOf(frame, g); mc != c.Color() {
		t.P.stats.ColorTraps++
		return fmt.Errorf("kernel: color mismatch at 0x%x: capability c%d, memory c%d", va, c.Color(), mc)
	}
	return nil
}

// resolveCOW breaks copy-on-write sharing before a mutation of the page
// (a store, a capability store, or a revocation write). Charged as a write
// fault plus a page copy.
func (t *Thread) resolveCOW(va uint64, pte *vm.PTE) error {
	if pte.Bits&vm.PTECOW == 0 {
		return nil
	}
	copied, err := t.P.AS.ResolveCOW(pte)
	if err != nil {
		return err
	}
	if copied {
		t.Sim.Tick(t.P.M.Costs.COWFault)
		t.P.stats.COWFaults++
	} else {
		t.Sim.Tick(t.P.M.Costs.PTEUpdate)
	}
	t.P.AS.TLBFill(t.Sim.CoreID(), va, pte)
	return nil
}

// busAccess charges a memory access at va.
func (t *Thread) busAccess(va uint64, write bool) {
	t.Sim.Tick(t.P.M.Bus.Access(t.Sim.CoreID(), va, t.Agent, write))
}

// --- data access -----------------------------------------------------------

// Load models a data load of size bytes at c.Addr()+off.
func (t *Thread) Load(c ca.Capability, off, size uint64) error {
	t.pre(t.P.M.Costs.Op)
	d := c.AddAddr(off)
	if err := d.CheckAccess(size, ca.PermLoad); err != nil {
		return err
	}
	pte, _, err := t.translate(d.Addr())
	if err != nil {
		return err
	}
	if size > 0 && t.P.colorMode {
		_, g := vm.GranuleOf(d.Addr())
		if err := t.checkColor(d, pte.Frame, g, d.Addr()); err != nil {
			return err
		}
	}
	t.Sim.Tick(t.P.M.Bus.AccessRange(t.Sim.CoreID(), d.Addr(), size, t.Agent, false))
	t.P.stats.Loads++
	return nil
}

// Store models a data store of size bytes at c.Addr()+off. Tags of all
// granules it covers are cleared.
func (t *Thread) Store(c ca.Capability, off, size uint64) error {
	t.pre(t.P.M.Costs.Op)
	d := c.AddAddr(off)
	if err := d.CheckAccess(size, ca.PermStore); err != nil {
		return err
	}
	va := d.Addr()
	end := va + size
	for va < end {
		pte, _, err := t.translate(va)
		if err != nil {
			return err
		}
		pageEnd := (va &^ (vm.PageSize - 1)) + vm.PageSize
		n := end
		if n > pageEnd {
			n = pageEnd
		}
		if err := t.resolveCOW(va, pte); err != nil {
			return err
		}
		_, g := vm.GranuleOf(va)
		if err := t.checkColor(d, pte.Frame, g, va); err != nil {
			return err
		}
		gFirst := int(va%vm.PageSize) / ca.GranuleSize
		gLast := int((n-1)%vm.PageSize) / ca.GranuleSize
		t.P.M.Phys.StoreData(pte.Frame, gFirst, gLast-gFirst+1)
		t.Sim.Tick(t.P.M.Bus.AccessRange(t.Sim.CoreID(), va, n-va, t.Agent, true))
		va = n
	}
	t.P.stats.Stores++
	return nil
}

// --- capability access (§3.2, §4.1) ----------------------------------------

// LoadCap models a capability-width load at c.Addr()+off, which must be
// granule-aligned. If the loaded value is tagged, the per-page capability
// load barrier applies: a generation mismatch between the core and the
// page's TLB entry is resolved by re-reading the PTE (TLB refill if the
// revoker already swept the page) or by taking a load fault handled by the
// armed revoker, which sweeps the page and self-heals the access.
func (t *Thread) LoadCap(c ca.Capability, off uint64) (ca.Capability, error) {
	t.pre(t.P.M.Costs.Op)
	d := c.AddAddr(off)
	if err := d.CheckAccess(ca.GranuleSize, ca.PermLoad); err != nil {
		return ca.Capability{}, err
	}
	va := d.Addr()
	if va%ca.GranuleSize != 0 {
		return ca.Capability{}, fmt.Errorf("kernel: misaligned capability load at 0x%x", va)
	}
	pte, tlbGen, err := t.translate(va)
	if err != nil {
		return ca.Capability{}, err
	}
	_, g := vm.GranuleOf(va)
	if err := t.checkColor(d, pte.Frame, g, va); err != nil {
		return ca.Capability{}, err
	}
	t.busAccess(va, false)
	v := t.P.M.Phys.LoadCap(pte.Frame, g)
	t.P.stats.CapLoads++
	if !v.Tag() {
		return v, nil
	}
	if !d.HasPerms(ca.PermLoadCap) {
		// Loads without LoadCap authority strip tags.
		return v.ClearTag(), nil
	}
	core := t.Sim.CoreID()
	if pte.Bits&vm.PTECapLoadTrap != 0 && t.P.barrierArmed {
		if h := t.P.Inject.SuppressGenFault; h != nil && h(va, v) {
			// Injected fault: the always-trap disposition fails to fire and
			// the load completes with the unchecked value.
			return t.filterColor(v), nil
		}
		// §7.6 always-trap disposition: every tagged load from this page
		// traps; the handler installs a current-generation PTE (and sweeps
		// if the page has become dirty during an epoch).
		t.P.stats.GenFaults++
		t.P.M.Trace.Instant(t.Sim.Now(), core, bus.AgentKernel,
			trace.KindFault, t.P.epoch, va, 0)
		start := t.Sim.CPU()
		t.P.M.Telem.Enter(t.Sim, telemetry.CompBarrierFault)
		t.Sim.Tick(t.P.M.Costs.TrapEntry)
		t.P.barrier.HandleLoadGenFault(t, va, pte)
		t.P.M.Telem.Exit(t.Sim)
		t.P.stats.GenFaultCycles += t.Sim.CPU() - start
		t.P.AS.TLBFill(core, va, pte)
		return t.reloadCap(pte, g, va)
	}
	if tlbGen != t.P.AS.CoreGen(core) {
		// The TLB's generation does not match the core's: trap.
		if pte.Gen == t.P.AS.CoreGen(core) {
			// The revoker already swept this page and updated the PTE; the
			// TLB was merely out of date. Refill and continue (§4.3's
			// cheap path).
			t.Sim.Tick(t.P.M.Costs.TLBRefill)
			t.P.AS.TLBFill(core, va, pte)
			t.P.stats.TLBRefills++
		} else if t.P.barrierArmed {
			if h := t.P.Inject.SuppressGenFault; h != nil && h(va, v) {
				// Injected fault: the load barrier fails to fire and the
				// load completes with the stale-generation value.
				return t.filterColor(v), nil
			}
			// Genuine load-generation fault: the armed revoker sweeps the
			// page in our context and self-heals the load (§3.2).
			t.P.stats.GenFaults++
			t.P.M.Trace.Instant(t.Sim.Now(), core, bus.AgentKernel,
				trace.KindFault, t.P.epoch, va, 1)
			start := t.Sim.CPU()
			t.P.M.Telem.Enter(t.Sim, telemetry.CompBarrierFault)
			t.Sim.Tick(t.P.M.Costs.TrapEntry)
			t.P.barrier.HandleLoadGenFault(t, va, pte)
			t.P.M.Telem.Exit(t.Sim)
			t.P.stats.GenFaultCycles += t.Sim.CPU() - start
			t.P.AS.TLBFill(core, va, pte)
			return t.reloadCap(pte, g, va)
		} else {
			// No barrier armed: generations must always match.
			panic(fmt.Sprintf("kernel: generation mismatch at 0x%x without armed barrier", va))
		}
	}
	return t.filterColor(v), nil
}

// reloadCap re-executes the capability load after a self-healing fault.
func (t *Thread) reloadCap(pte *vm.PTE, g int, va uint64) (ca.Capability, error) {
	t.busAccess(va, false)
	return t.filterColor(t.P.M.Phys.LoadCap(pte.Frame, g)), nil
}

// filterColor applies the §7.3 load filter: a capability whose color no
// longer matches its memory's is revoked on its way into the register file
// (CHERIoT-style, §6.3). Every load path — including the self-healing
// reload after a generation fault — must pass through it.
func (t *Thread) filterColor(v ca.Capability) ca.Capability {
	if !t.P.colorMode || !v.Tag() {
		return v
	}
	if vc := v.Color(); vc != t.colorOfTarget(v) {
		t.P.stats.ColorTraps++
		return v.ClearTag()
	}
	return v
}

// colorOfTarget returns the memory color at a capability's base, or the
// capability's own color if the base is unmapped (nothing to compare).
func (t *Thread) colorOfTarget(v ca.Capability) uint8 {
	pte, ok := t.P.AS.Lookup(v.Base())
	if !ok {
		return v.Color()
	}
	_, g := vm.GranuleOf(v.Base())
	return t.P.M.Phys.ColorOf(pte.Frame, g)
}

// StoreCap models a capability-width store of v at c.Addr()+off. Tagged
// stores require PermStoreCap and a PTECapWrite mapping, and set the page's
// capability-dirty bits (§4.2).
func (t *Thread) StoreCap(c ca.Capability, off uint64, v ca.Capability) error {
	t.pre(t.P.M.Costs.Op)
	d := c.AddAddr(off)
	need := ca.PermStore
	if v.Tag() {
		need |= ca.PermStoreCap
	}
	if err := d.CheckAccess(ca.GranuleSize, need); err != nil {
		return err
	}
	va := d.Addr()
	if va%ca.GranuleSize != 0 {
		return fmt.Errorf("kernel: misaligned capability store at 0x%x", va)
	}
	pte, _, err := t.translate(va)
	if err != nil {
		return err
	}
	_, g := vm.GranuleOf(va)
	if err := t.checkColor(d, pte.Frame, g, va); err != nil {
		return err
	}
	if v.Tag() && pte.Bits&vm.PTECapWrite == 0 {
		return &vm.Fault{Kind: vm.FaultCapStore, VA: va}
	}
	if err := t.resolveCOW(va, pte); err != nil {
		return err
	}
	if v.Tag() && pte.Bits&vm.PTECapDirty == 0 {
		if h := t.P.Inject.DropCapDirty; h != nil && h(va) {
			// Injected fault: the hardware dirty-bit update is lost; the
			// store itself still lands below.
		} else {
			pte.Bits |= vm.PTECapDirty | vm.PTEEverCapDirty
			t.P.stats.CDBitSets++
			t.Sim.Tick(t.P.M.Costs.PTEUpdate)
		}
	}
	t.busAccess(va, true)
	t.P.M.Phys.StoreCap(pte.Frame, g, v)
	t.P.stats.CapStores++
	return nil
}

// --- mapping system calls ---------------------------------------------------

// Mmap reserves address space and returns the reservation and its root
// capability (§6.2).
func (t *Thread) Mmap(length uint64, perms ca.Perms) (*vm.Reservation, error) {
	t.Syscall(t.P.M.Costs.Mmap)
	return t.P.AS.Reserve(length, perms)
}

// MmapShared reserves address space for an inter-process shared mapping
// (a shared file mapping, say). Capabilities are architecturally
// meaningless outside their address space, so such pages are prohibited
// from carrying tags (footnote 13): their PTEs lack PTECapWrite and any
// tagged store faults.
func (t *Thread) MmapShared(length uint64) (*vm.Reservation, error) {
	t.Syscall(t.P.M.Costs.Mmap)
	r, err := t.P.AS.Reserve(length, ca.PermLoad|ca.PermStore|ca.PermGlobal)
	if err != nil {
		return nil, err
	}
	t.P.AS.MarkNoCaps(r)
	return r, nil
}

// Munmap unmaps [va, va+length). If this kills the whole reservation, the
// reservation is returned with dead=true; the caller must quarantine it
// until a revocation pass completes before the span can be recycled.
func (t *Thread) Munmap(va, length uint64) (r *vm.Reservation, dead bool, err error) {
	t.Syscall(t.P.M.Costs.Munmap + uint64(length/vm.PageSize)*t.P.M.Costs.PTEUpdate)
	return t.P.AS.UnmapRange(va, length)
}

// --- shadow bitmap access ----------------------------------------------------

// PaintShadow paints the revocation bitmap for [addr, addr+length) under
// auth, charging user-space bitmap write traffic.
func (t *Thread) PaintShadow(auth ca.Capability, addr, length uint64) error {
	t.pre(t.P.M.Costs.Op)
	t.Sim.Tick(t.P.M.Bus.AccessRange(t.Sim.CoreID(), shadow.VAOf(addr),
		maxU64(1, length/ca.GranuleSize/8), t.Agent, true))
	t.P.M.Trace.Instant(t.Sim.Now(), t.Sim.CoreID(), t.Agent,
		trace.KindPaint, t.P.epoch, addr, length)
	return t.P.Shadow.Paint(auth, addr, length)
}

// UnpaintShadow clears the bitmap for [addr, addr+length) under auth.
func (t *Thread) UnpaintShadow(auth ca.Capability, addr, length uint64) error {
	t.pre(t.P.M.Costs.Op)
	t.Sim.Tick(t.P.M.Bus.AccessRange(t.Sim.CoreID(), shadow.VAOf(addr),
		maxU64(1, length/ca.GranuleSize/8), t.Agent, true))
	t.P.M.Trace.Instant(t.Sim.Now(), t.Sim.CoreID(), t.Agent,
		trace.KindUnpaint, t.P.epoch, addr, length)
	return t.P.Shadow.Unpaint(auth, addr, length)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// --- the sweep primitive -----------------------------------------------------

// tagTableBase is the virtual alias of the memory-controller tag table
// used for cost attribution of CLoadTags-style tag reads.
const tagTableBase = 0x7000_0000_0000

// tagBytesPerPage is the tag metadata volume per 4 KiB page (256 granules
// × 1 bit ⇒ 32 bytes).
const tagBytesPerPage = 32

// SweepPage scans one resident page for revoked capabilities: every tagged
// granule's base is probed in the revocation bitmap and matching tags are
// cleared. Reading the page and probing the bitmap are charged to this
// thread at its agent attribution. Returns (capabilities inspected,
// capabilities revoked). The page's capability-dirty bit is cleared.
//
// The scan dispatches on the machine's sweep-kernel selection: the default
// word-wise kernel (sweep.go) and the per-granule kernel below produce
// identical simulated behavior — same bus accesses, same tick boundaries,
// same visit order and revocations — and differ only in host cost. The
// granule kernel survives as the word kernel's differential oracle.
func (t *Thread) SweepPage(vpn uint64, pte *vm.PTE) (visited, revoked int) {
	if t.P.M.Sweep == SweepKernelGranule {
		return t.sweepPageGranule(vpn, pte)
	}
	return t.sweepPageWords(vpn, pte)
}

// sweepPageGranule is the original one-callback-per-granule sweep.
func (t *Thread) sweepPageGranule(vpn uint64, pte *vm.PTE) (visited, revoked int) {
	core := t.Sim.CoreID()
	b := t.P.M.Bus
	if pte.Bits&vm.PTECOW != 0 {
		// The frame may be shared copy-on-write with another address
		// space; a revocation write through this mapping would destroy the
		// other sharer's (independently quarantined) capabilities — the
		// aliasing disaster of footnote 20. Apply §4.3's heuristic: scan
		// read-only first, and only if something must actually be revoked
		// upgrade the page (break the sharing) and scan again.
		needsWrite := false
		t.Sim.Tick(b.AccessRange(core, tagTableBase+vpn*tagBytesPerPage, tagBytesPerPage, t.Agent, false))
		t.P.M.Phys.SweepTags(pte.Frame, func(g int, c ca.Capability) bool {
			visited++
			t.Sim.Tick(b.Access(core, vpn<<vm.PageShift+uint64(g)*ca.GranuleSize, t.Agent, false))
			t.Sim.Tick(t.P.M.Costs.Op + b.Access(core, shadow.VAOf(c.Base()), t.Agent, false))
			if t.P.Shadow.Test(c.Base()) {
				needsWrite = true
			}
			return false
		})
		pte.Bits &^= vm.PTECapDirty
		if !needsWrite {
			// No writes necessary: the page goes back into service as-is.
			return visited, 0
		}
		visited = 0
		if err := t.resolveCOW(vpn<<vm.PageShift, pte); err != nil {
			panic(fmt.Sprintf("kernel: sweep COW upgrade: %v", err))
		}
	}
	// Clear the capability-dirty bit before reading a single granule: any
	// capability store that lands while the scan is in progress re-marks
	// the page, so Cornucopia's stop-the-world phase will re-visit it. If
	// the bit were cleared after the scan, a store racing the sweep could
	// be lost.
	pte.Bits &^= vm.PTECapDirty
	// Read the page's tag metadata (CLoadTags): 2 tag bits per granule →
	// one tag-table line covers two pages. Untagged lines of the page are
	// never touched; only granules that actually hold capabilities cost
	// data reads below. This is what makes sweeping sparse pages cheap on
	// Morello.
	t.Sim.Tick(b.AccessRange(core, tagTableBase+vpn*tagBytesPerPage, tagBytesPerPage, t.Agent, false))
	_, rev := t.P.M.Phys.SweepTags(pte.Frame, func(g int, c ca.Capability) bool {
		visited++
		// Read the tagged granule's data line (repeats within a line hit
		// in cache) and probe the revocation bitmap at the base address.
		t.Sim.Tick(b.Access(core, vpn<<vm.PageShift+uint64(g)*ca.GranuleSize, t.Agent, false))
		t.Sim.Tick(t.P.M.Costs.Op + b.Access(core, shadow.VAOf(c.Base()), t.Agent, false))
		if t.P.Shadow.Test(c.Base()) {
			// Clearing the tag dirties the line we already hold.
			t.Sim.Tick(b.Access(core, vpn<<vm.PageShift+uint64(g)*ca.GranuleSize, t.Agent, true))
			return true
		}
		return false
	})
	return visited, rev
}
