package kernel

import (
	"fmt"
	"math/rand"

	"repro/internal/bus"

	"repro/internal/ca"
	"repro/internal/shadow"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// InjectHooks are optional fault-injection points consulted on the
// capability load/store fast paths (internal/fault). All nil in normal
// operation; a non-nil hook returning true suppresses the corresponding
// mechanism for that one access.
type InjectHooks struct {
	// SuppressGenFault makes a tagged capability load that would trap on
	// the load barrier (generation mismatch, or the §7.6 always-trap
	// disposition) proceed unchecked with the possibly-stale value.
	SuppressGenFault func(va uint64, v ca.Capability) bool
	// DropCapDirty loses the PTE capability-dirty update of one tagged
	// capability store (§4.2's store barrier never sees the page).
	DropCapDirty func(va uint64) bool
}

// LoadBarrierHandler is implemented by a revoker that arms the per-page
// capability load barrier (§3.2). HandleLoadGenFault runs in the faulting
// thread's context: it must sweep the page, update its PTE generation, and
// charge its costs to th. The load is then re-executed (the barrier is
// self-healing, footnote 14).
type LoadBarrierHandler interface {
	HandleLoadGenFault(th *Thread, va uint64, pte *vm.PTE)
}

// Hoard is a kernel-held stash of user capabilities (saved register files,
// kqueue/aio registrations, ...). Hoards must be scanned during revocation
// (§4.4): the kernel may never divulge a capability the revoker has not
// checked.
type Hoard struct {
	Name string
	caps []ca.Capability
}

// Put stores a capability in slot i, growing the hoard as needed.
func (h *Hoard) Put(i int, c ca.Capability) {
	for len(h.caps) <= i {
		h.caps = append(h.caps, ca.Capability{})
	}
	h.caps[i] = c
}

// Get returns the capability in slot i.
func (h *Hoard) Get(i int) ca.Capability {
	if i >= len(h.caps) {
		return ca.Capability{}
	}
	return h.caps[i]
}

// Len returns the hoard's slot count.
func (h *Hoard) Len() int { return len(h.caps) }

// ProcStats counts per-process memory-system events.
type ProcStats struct {
	Loads, Stores       uint64
	CapLoads, CapStores uint64
	GenFaults           uint64
	GenFaultCycles      uint64
	COWFaults           uint64
	TLBRefills          uint64
	ColorTraps          uint64
	StopTheWorlds       uint64
	// CDBitSets counts capability-dirty PTE bit transitions (§4.2): the
	// store-barrier signal Cornucopia's page filter is built on.
	CDBitSets uint64
}

// Process is one simulated CheriABI process.
type Process struct {
	M      *Machine
	AS     *vm.AddressSpace
	Shadow *shadow.Bitmap

	threads []*Thread

	// epoch is the public revocation epoch counter (§2.2.3): odd while a
	// revocation pass is in flight, even otherwise.
	epoch   uint64
	epochEv *sim.Event

	stwActive    bool
	stwInitiator *Thread
	stwEv        *sim.Event // broadcast by threads as they park
	resumeEv     *sim.Event // broadcast by the initiator to release the world

	barrier      LoadBarrierHandler
	barrierArmed bool
	colorMode    bool

	// Inject holds this process's fault-injection hook points; the zero
	// value injects nothing.
	Inject InjectHooks

	hoards []*Hoard
	// ephemeral holds capabilities carried into in-flight system calls,
	// keyed by thread; scanned like any hoard (§4.4).
	ephemeral map[*Thread][]ca.Capability
	rng       *rand.Rand
	stats     ProcStats
}

// NewProcess creates a process on the machine.
func (m *Machine) NewProcess(seed int64) *Process {
	flat := m.Mem == MemPathFlat
	m.Phys.FlatAlloc = flat
	as := vm.NewAddressSpace(m.Phys, m.Eng.Config().Cores)
	as.FlatVPNs = flat
	sh := shadow.New()
	sh.FlatSet = flat
	p := &Process{
		M:      m,
		AS:     as,
		Shadow: sh,
		rng:    rand.New(rand.NewSource(seed)),
	}
	p.epochEv = m.Eng.NewEvent()
	p.stwEv = m.Eng.NewEvent()
	p.resumeEv = m.Eng.NewEvent()
	if m.Trace != nil || m.Telem != nil {
		// The MMU has no clock; timestamp shootdowns with the machine's
		// wall clock (the initiating core already charged the IPI costs).
		p.AS.OnShootdown = func() {
			m.Trace.Instant(m.Eng.WallClock(), -1, bus.AgentKernel,
				trace.KindShootdown, p.epoch, 0, 0)
			m.Telem.Add(telemetry.StdShootdownsTotal, 1)
		}
	}
	m.procs = append(m.procs, p)
	return p
}

// Spawn creates a thread of this process on the given cores, running fn.
func (p *Process) Spawn(name string, affinity []int, fn func(*Thread)) *Thread {
	th := &Thread{P: p}
	th.Sim = p.M.Eng.Spawn(name, affinity, func(st *sim.Thread) {
		fn(th)
		// A finishing thread is quiescent forever; let any pause initiator
		// re-examine the world.
		th.parked = true
		th.quiesceNotify()
	})
	p.threads = append(p.threads, th)
	return th
}

// Fork clones the process, as the CheriBSD implementation must support
// (§4.3). Bulk address-space operations are excluded while a revocation
// sweep is in flight, so Fork first waits for any odd epoch to complete.
// The clone is an eager copy — every resident page's tags, capabilities
// and colors are duplicated into fresh frames — which sidesteps the
// copy-on-write aliasing defects the paper acknowledges (footnote 20).
// The revocation bitmap and kernel hoards are duplicated; threads are not
// (spawn the child's threads explicitly). The child starts at epoch zero
// with its own revocation state and a steady-state generation view.
func (p *Process) Fork(th *Thread) (*Process, error) {
	if p.epoch%2 == 1 {
		p.WaitEpochAtLeast(th, p.epoch+1)
	}
	th.Syscall(p.M.Costs.Syscall)
	as, err := p.AS.Clone()
	if err != nil {
		return nil, err
	}
	th.Sim.Tick(uint64(as.MappedPageCount()) * p.M.Costs.ForkPageCopy)
	child := &Process{
		M:      p.M,
		AS:     as,
		Shadow: p.Shadow.Clone(),
		rng:    rand.New(rand.NewSource(int64(p.rng.Uint64()))),
	}
	child.epochEv = p.M.Eng.NewEvent()
	child.stwEv = p.M.Eng.NewEvent()
	child.resumeEv = p.M.Eng.NewEvent()
	for _, h := range p.hoards {
		nh := child.NewHoard(h.Name)
		nh.caps = append([]ca.Capability(nil), h.caps...)
	}
	child.colorMode = p.colorMode
	p.M.procs = append(p.M.procs, child)
	return child, nil
}

// ForkCOW clones the process with copy-on-write frame sharing instead of
// an eager copy: fork is cheap (one PTE walk) and pages are copied only
// when either side writes. Revocation sweeps handle shared frames with the
// read-only heuristic of §4.3. Like Fork, it is excluded while a
// revocation pass is in flight.
func (p *Process) ForkCOW(th *Thread) *Process {
	if p.epoch%2 == 1 {
		p.WaitEpochAtLeast(th, p.epoch+1)
	}
	th.Syscall(p.M.Costs.Syscall)
	as := p.AS.CloneCOW()
	th.Sim.Tick(uint64(as.MappedPageCount()) * p.M.Costs.PTEUpdate)
	child := &Process{
		M:      p.M,
		AS:     as,
		Shadow: p.Shadow.Clone(),
		rng:    rand.New(rand.NewSource(int64(p.rng.Uint64()))),
	}
	child.epochEv = p.M.Eng.NewEvent()
	child.stwEv = p.M.Eng.NewEvent()
	child.resumeEv = p.M.Eng.NewEvent()
	for _, h := range p.hoards {
		nh := child.NewHoard(h.Name)
		nh.caps = append([]ca.Capability(nil), h.caps...)
	}
	child.colorMode = p.colorMode
	p.M.procs = append(p.M.procs, child)
	return child
}

// AdoptKernelThread wraps an existing simulated thread as an in-kernel
// thread of this process: it charges costs and initiates stop-the-world
// against this process, but is not itself subject to the process's pauses
// (in-kernel revocation workers are not user threads, §7.1). Pair with
// ReleaseKernelThread.
func (p *Process) AdoptKernelThread(st *sim.Thread, agent bus.Agent) *Thread {
	return &Thread{Sim: st, P: p, Agent: agent}
}

// ReleaseKernelThread ends an AdoptKernelThread borrow. (The wrapper holds
// no process state; this exists for symmetry and future accounting.)
func (p *Process) ReleaseKernelThread(t *Thread) {}

// Threads returns the process's threads.
func (p *Process) Threads() []*Thread { return p.threads }

// Stats returns a snapshot of process counters.
func (p *Process) Stats() ProcStats { return p.stats }

// setEphemeral records the capabilities an in-flight system call carries.
func (p *Process) setEphemeral(t *Thread, caps []ca.Capability) {
	if p.ephemeral == nil {
		p.ephemeral = make(map[*Thread][]ca.Capability)
	}
	p.ephemeral[t] = append([]ca.Capability(nil), caps...)
}

// takeEphemeral removes and returns a thread's in-flight capabilities.
func (p *Process) takeEphemeral(t *Thread) []ca.Capability {
	caps := p.ephemeral[t]
	delete(p.ephemeral, t)
	return caps
}

// NewHoard registers a kernel hoard for this process.
func (p *Process) NewHoard(name string) *Hoard {
	h := &Hoard{Name: name}
	p.hoards = append(p.hoards, h)
	return h
}

// SetLoadBarrier installs the Reloaded revoker's fault handler and arms
// generation checking on capability loads.
func (p *Process) SetLoadBarrier(h LoadBarrierHandler) {
	p.barrier = h
	p.barrierArmed = h != nil
}

// SetColorMode enables the §7.3 memory-coloring composition: every access
// compares the capability's color with the memory's color and fails on
// mismatch.
func (p *Process) SetColorMode(on bool) { p.colorMode = on }

// ColorMode reports whether the coloring composition is active.
func (p *Process) ColorMode() bool { return p.colorMode }

// --- epoch counter (§2.2.3) ----------------------------------------------

// Epoch returns the public revocation epoch counter.
func (p *Process) Epoch() uint64 { return p.epoch }

// AdvanceEpoch increments the epoch counter (before a revocation begins and
// again after it ends) and wakes epoch waiters.
func (p *Process) AdvanceEpoch(th *Thread) {
	p.epoch++
	p.epochEv.Broadcast(th.Sim)
}

// WaitEpochAtLeast blocks th until the epoch counter reaches target. This
// is the allocator's synchronization primitive: after painting, wait for
// the counter to advance twice (if even) or thrice (if odd) to be certain a
// full revocation pass began and ended after the paint.
func (p *Process) WaitEpochAtLeast(th *Thread, target uint64) {
	th.WaitOn(p.epochEv, func() bool { return p.epoch >= target })
}

// EpochClearTarget returns the epoch value that must be reached before
// memory painted at epoch e may be reused (§2.2.3).
func EpochClearTarget(e uint64) uint64 {
	if e%2 == 0 {
		return e + 2
	}
	return e + 3
}

// --- stop-the-world (§4.4) -------------------------------------------------

// StopTheWorld quiesces every other thread of the process. Threads stop at
// their next kernel operation; threads blocked or sleeping (e.g. awaiting a
// transaction or in think-time) count as stopped and will park if they wake
// before ResumeTheWorld. The initiator is charged IPI, per-thread stop and
// in-flight-syscall drain costs.
func (p *Process) StopTheWorld(initiator *Thread) {
	if p.stwActive {
		panic("kernel: nested StopTheWorld")
	}
	p.M.Trace.Begin(initiator.Sim.Now(), initiator.Sim.CoreID(),
		bus.AgentKernel, trace.KindSTW, p.epoch, 0, 0)
	p.M.Telem.Enter(initiator.Sim, telemetry.CompKernel)
	defer p.M.Telem.Exit(initiator.Sim)
	p.stwActive = true
	p.stwInitiator = initiator
	p.stats.StopTheWorlds++
	cores := map[int]bool{}
	for _, th := range p.threads {
		if th == initiator || th.Sim.State() == sim.Finished {
			continue
		}
		cores[th.Sim.CoreID()] = true
		initiator.Sim.Tick(p.M.Costs.StopThread)
		if th.inSyscall {
			drain := p.M.Costs.SyscallDrain
			if p.M.Costs.SyscallDrainTailOdds > 0 &&
				p.rng.Uint64()%p.M.Costs.SyscallDrainTailOdds == 0 {
				drain = p.M.Costs.SyscallDrainTail
			}
			initiator.Sim.Tick(drain)
		}
	}
	for range cores {
		initiator.Sim.Tick(p.M.Costs.IPI)
	}
	p.stwEv.WaitUntil(initiator.Sim, func() bool { return p.worldStopped(initiator) })
}

// worldStopped reports whether every other thread is parked, blocked,
// sleeping or finished.
func (p *Process) worldStopped(initiator *Thread) bool {
	for _, th := range p.threads {
		if th == initiator || th.parked {
			continue
		}
		switch th.Sim.State() {
		case sim.Blocked, sim.Sleeping, sim.Finished:
			// Quiescent at an operation boundary; if it wakes during the
			// pause it will park at its first kernel operation.
		default:
			return false
		}
	}
	return true
}

// ResumeTheWorld releases a stopped world.
func (p *Process) ResumeTheWorld(initiator *Thread) {
	if !p.stwActive || p.stwInitiator != initiator {
		panic("kernel: ResumeTheWorld without matching stop")
	}
	p.M.Telem.Enter(initiator.Sim, telemetry.CompKernel)
	defer p.M.Telem.Exit(initiator.Sim)
	for _, th := range p.threads {
		if th != initiator && th.Sim.State() != sim.Finished {
			initiator.Sim.Tick(p.M.Costs.ResumeThread)
		}
	}
	p.stwActive = false
	p.stwInitiator = nil
	p.resumeEv.Broadcast(initiator.Sim)
	p.M.Trace.End(initiator.Sim.Now(), initiator.Sim.CoreID(),
		bus.AgentKernel, trace.KindSTW, p.epoch, 0, 0)
}

// ScanRoots visits every capability root the kernel holds for this process
// — all thread register files and all kernel hoards — testing each against
// the revocation bitmap and clearing the tags of revoked capabilities. It
// must only be called with the world stopped. It returns (scanned, revoked)
// counts; costs are charged to the scanning thread.
func (p *Process) ScanRoots(scanner *Thread) (scanned, revoked int) {
	p.M.Telem.Enter(scanner.Sim, telemetry.CompKernel)
	defer p.M.Telem.Exit(scanner.Sim)
	costs := p.M.Costs
	scanOne := func(c ca.Capability) (ca.Capability, bool) {
		scanner.Sim.Tick(costs.CapScan)
		if !c.Tag() {
			return c, false
		}
		scanner.Sim.Tick(p.M.Bus.Access(scanner.Sim.CoreID(), shadow.VAOf(c.Base()), scanner.Agent, false))
		scanned++
		if p.Shadow.Test(c.Base()) {
			revoked++
			return c.ClearTag(), true
		}
		return c, false
	}
	for _, th := range p.threads {
		for i, c := range th.regs {
			if nc, changed := scanOne(c); changed {
				th.regs[i] = nc
			}
		}
	}
	for _, h := range p.hoards {
		for i, c := range h.caps {
			if nc, changed := scanOne(c); changed {
				h.caps[i] = nc
			}
		}
	}
	// Ephemeral syscall hoards, in deterministic thread order.
	for _, th := range p.threads {
		caps, ok := p.ephemeral[th]
		if !ok {
			continue
		}
		for i, c := range caps {
			if nc, changed := scanOne(c); changed {
				caps[i] = nc
			}
		}
	}
	return scanned, revoked
}

// ForEachRootCap visits every capability root the kernel can see for this
// process — all thread register files, kernel hoards, and in-flight
// syscall (ephemeral) capabilities — in the same deterministic order
// ScanRoots uses, but read-only and without charging any cycles. This is
// the audit view (internal/oracle).
func (p *Process) ForEachRootCap(fn func(where string, c ca.Capability)) {
	for ti, th := range p.threads {
		for i, c := range th.regs {
			fn(fmt.Sprintf("thread %d reg %d", ti, i), c)
		}
	}
	for _, h := range p.hoards {
		for i, c := range h.caps {
			fn(fmt.Sprintf("hoard %s slot %d", h.Name, i), c)
		}
	}
	for ti, th := range p.threads {
		for i, c := range p.ephemeral[th] {
			fn(fmt.Sprintf("thread %d syscall cap %d", ti, i), c)
		}
	}
}

// BumpGenerations toggles the in-core capability load generation on every
// core and invalidates all TLBs (§4.1). Must be called with the world
// stopped; PTEs are not touched. The cores were already interrupted by the
// stop-the-world rendezvous, so the toggle and shootdown ride those IPIs —
// only a small per-core register write and TLB-invalidate cost remains.
func (p *Process) BumpGenerations(initiator *Thread) {
	p.M.Telem.Enter(initiator.Sim, telemetry.CompShootdown)
	defer p.M.Telem.Exit(initiator.Sim)
	ncores := p.M.Eng.Config().Cores
	for c := 0; c < ncores; c++ {
		p.AS.BumpCoreGen(c)
		initiator.Sim.Tick(p.M.Costs.PTEUpdate)
	}
	p.AS.ShootdownAll()
	initiator.Sim.Tick(p.M.Costs.PTEUpdate)
}
