package kernel

import (
	"errors"
	"testing"

	"repro/internal/ca"
	"repro/internal/vm"
)

func TestSharedMappingRefusesCapabilities(t *testing.T) {
	runProc(t, func(th *Thread) {
		r, err := th.MmapShared(1 << 14)
		if err != nil {
			t.Fatal(err)
		}
		root := r.Root
		// Data works fine.
		if err := th.Store(root, 0, 64); err != nil {
			t.Fatal(err)
		}
		// The mmap-returned capability itself lacks PermStoreCap, so the
		// architectural check already refuses tagged stores.
		_, heapRoot := mustMmap(t, th, 1<<14)
		if err := th.StoreCap(root, 0, heapRoot); err == nil {
			t.Fatal("tagged store through shared-mapping capability allowed")
		}
		// Even a (kernel-conjured) capability with full permissions hits
		// the PTE-level prohibition: the page lacks PTECapWrite.
		forged := ca.NewRoot(root.Base(), root.Len(), ca.PermsAll)
		err = th.StoreCap(forged, 0, heapRoot)
		var f *vm.Fault
		if !errors.As(err, &f) || f.Kind != vm.FaultCapStore {
			t.Fatalf("err = %v, want cap-store fault", err)
		}
		// Untagged capability-width stores are permitted.
		if err := th.StoreCap(forged, 0, ca.Null(42)); err != nil {
			t.Fatalf("untagged store to shared mapping: %v", err)
		}
	})
}

func TestStoreSpanningPagesClearsAllTags(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 4*vm.PageSize)
		// Place capabilities just before and after a page boundary.
		th.StoreCap(root, vm.PageSize-16, root)
		th.StoreCap(root, vm.PageSize, root)
		// A data store straddling the boundary clears both.
		if err := th.Store(root, vm.PageSize-16, 32); err != nil {
			t.Fatal(err)
		}
		a, _ := th.LoadCap(root, vm.PageSize-16)
		b, _ := th.LoadCap(root, vm.PageSize)
		if a.Tag() || b.Tag() {
			t.Fatal("straddling store left a tag")
		}
	})
}

func TestLoadCapWithoutLoadCapPermStripsTag(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<14)
		th.StoreCap(root, 0, root)
		noLC := root.ClearPerms(ca.PermLoadCap)
		got, err := th.LoadCap(noLC, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag() {
			t.Fatal("tag survived a load without PermLoadCap")
		}
		// With the permission the tag flows through.
		got, _ = th.LoadCap(root, 0)
		if !got.Tag() {
			t.Fatal("tag lost on permitted load")
		}
	})
}

func TestStoreCapWithoutStoreCapPermRejected(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<14)
		noSC := root.ClearPerms(ca.PermStoreCap)
		if err := th.StoreCap(noSC, 0, root); err == nil {
			t.Fatal("tagged store without PermStoreCap allowed")
		}
		// Untagged store through the same capability is fine.
		if err := th.StoreCap(noSC, 0, ca.Null(1)); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSyscallDrainTailDeterministic(t *testing.T) {
	// The same seed must produce the same STW costs (the drain tail draw
	// comes from the process RNG).
	run := func() uint64 {
		m := testMachine()
		p := m.NewProcess(123)
		p.Spawn("app", []int{3}, func(th *Thread) {
			for i := 0; i < 300; i++ {
				th.Syscall(50_000)
			}
		})
		var cost uint64
		p.Spawn("revoker", []int{2}, func(th *Thread) {
			for i := 0; i < 50; i++ {
				th.Work(200_000)
				before := th.Sim.CPU()
				p.StopTheWorld(th)
				p.ResumeTheWorld(th)
				cost += th.Sim.CPU() - before
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return cost
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("drain costs nondeterministic: %d vs %d", a, b)
	}
}

func TestHoardGrowsAndReads(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	h := p.NewHoard("x")
	if h.Len() != 0 || h.Get(5).Tag() {
		t.Fatal("empty hoard misbehaves")
	}
	h.Put(3, ca.NewRoot(0, 16, ca.PermsData))
	if h.Len() != 4 {
		t.Fatalf("len = %d", h.Len())
	}
	if !h.Get(3).Tag() || h.Get(2).Tag() {
		t.Fatal("hoard slots wrong")
	}
}

func TestRegFileGrowth(t *testing.T) {
	runProc(t, func(th *Thread) {
		if th.Reg(100).Tag() {
			t.Fatal("unset register tagged")
		}
		th.SetReg(100, ca.NewRoot(0, 16, ca.PermsData))
		if th.RegCount() != 101 {
			t.Fatalf("reg count = %d", th.RegCount())
		}
		if !th.Reg(100).Tag() {
			t.Fatal("register lost value")
		}
	})
}

func TestLoadZeroSize(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<14)
		if err := th.Load(root, 0, 0); err != nil {
			t.Fatalf("zero-size load: %v", err)
		}
	})
}
