package kernel

import (
	"testing"

	"repro/internal/vm"
)

func TestForkCOWSharesFramesUntilWrite(t *testing.T) {
	m := testMachine()
	parent := m.NewProcess(1)
	parent.Spawn("parent", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, 8*vm.PageSize)
		for i := uint64(0); i < 8; i++ {
			th.Store(root, i*vm.PageSize, 64)
		}
		framesBefore := m.Phys.Allocated()
		child := parent.ForkCOW(th)
		if got := m.Phys.Allocated(); got != framesBefore {
			t.Fatalf("COW fork allocated %d frames", got-framesBefore)
		}
		// The child writes one page: exactly one frame is copied.
		child.Spawn("child", []int{2}, func(cth *Thread) {
			if err := cth.Store(root, 2*vm.PageSize, 64); err != nil {
				t.Error(err)
			}
			if got := m.Phys.Allocated(); got != framesBefore+1 {
				t.Errorf("after one COW write: %d new frames, want 1", got-framesBefore)
			}
			if child.Stats().COWFaults != 1 {
				t.Errorf("COW faults = %d, want 1", child.Stats().COWFaults)
			}
		})
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCOWWriteIsolation(t *testing.T) {
	m := testMachine()
	parent := m.NewProcess(1)
	parent.Spawn("parent", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, vm.PageSize)
		obj, _ := root.WithAddr(root.Base() + 512).SetBoundsExact(64)
		th.StoreCap(root, 0, obj)
		child := parent.ForkCOW(th)
		// The child overwrites the capability slot with data.
		done := false
		child.Spawn("child", []int{2}, func(cth *Thread) {
			if err := cth.Store(root, 0, 16); err != nil {
				t.Error(err)
			}
			got, _ := cth.LoadCap(root, 0)
			if got.Tag() {
				t.Error("child still sees the capability after its own overwrite")
			}
			done = true
		})
		th.Idle(10_000_000)
		if !done {
			t.Fatal("child did not run")
		}
		// The parent's view is intact.
		got, err := th.LoadCap(root, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Tag() {
			t.Fatal("parent's capability destroyed by child's COW write")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCOWRevocationDoesNotDestroyAliases is the footnote-20 scenario: the
// child quarantines and revokes an object whose page is still shared
// copy-on-write with the parent. The revocation write must break the
// sharing, leaving the parent's (not quarantined there) capability alive.
func TestCOWRevocationDoesNotDestroyAliases(t *testing.T) {
	m := testMachine()
	parent := m.NewProcess(1)
	parent.Spawn("parent", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, vm.PageSize)
		obj, _ := root.WithAddr(root.Base() + 512).SetBoundsExact(64)
		th.StoreCap(root, 0, obj)
		child := parent.ForkCOW(th)
		done := false
		child.Spawn("child-revoker", []int{2}, func(cth *Thread) {
			// The child quarantines the object in ITS shadow and sweeps.
			auth := root // root carries PermPaint from mustMmap
			if err := cth.PaintShadow(auth, obj.Base(), obj.Len()); err != nil {
				t.Error(err)
			}
			pte, ok := child.AS.Lookup(root.Base())
			if !ok {
				t.Error("child page missing")
				return
			}
			if pte.Bits&vm.PTECOW == 0 {
				t.Error("page not COW before sweep")
			}
			_, revoked := cth.SweepPage(root.Base()>>vm.PageShift, pte)
			if revoked != 1 {
				t.Errorf("child revoked %d capabilities, want 1", revoked)
			}
			got, _ := cth.LoadCap(root, 0)
			if got.Tag() {
				t.Error("child's revoked capability still alive")
			}
			done = true
		})
		th.Idle(10_000_000)
		if !done {
			t.Fatal("child did not run")
		}
		// The parent never quarantined the object; its capability must
		// have survived the child's sweep.
		got, err := th.LoadCap(root, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Tag() {
			t.Fatal("FOOTNOTE-20 BUG: child's revocation destroyed the parent's capability through the shared frame")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCOWSweepReadOnlyHeuristic: sweeping a shared page with nothing to
// revoke must not break the sharing (§4.3: "the page is put back into
// service as-is").
func TestCOWSweepReadOnlyHeuristic(t *testing.T) {
	m := testMachine()
	parent := m.NewProcess(1)
	parent.Spawn("parent", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, vm.PageSize)
		obj, _ := root.WithAddr(root.Base() + 512).SetBoundsExact(64)
		th.StoreCap(root, 0, obj)
		child := parent.ForkCOW(th)
		frames := m.Phys.Allocated()
		child.Spawn("child", []int{2}, func(cth *Thread) {
			pte, _ := child.AS.Lookup(root.Base())
			visited, revoked := cth.SweepPage(root.Base()>>vm.PageShift, pte)
			if visited == 0 || revoked != 0 {
				t.Errorf("visited=%d revoked=%d", visited, revoked)
			}
			if pte.Bits&vm.PTECOW == 0 {
				t.Error("read-only sweep broke the COW sharing")
			}
			if m.Phys.Allocated() != frames {
				t.Error("read-only sweep copied the frame")
			}
		})
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
