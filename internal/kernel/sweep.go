package kernel

import (
	"fmt"
	"math/bits"

	"repro/internal/ca"
	"repro/internal/shadow"
	"repro/internal/tmem"
	"repro/internal/vm"
)

// SweepKernel selects the implementation of the page-sweep primitive.
//
// Both kernels execute the same simulated recipe — the same sequence of
// bus accesses and ticks, the same visit order, the same revocations — so
// every simulated-cycle count and report byte is identical between them.
// The word kernel is the default; the granule kernel is retained as a
// differential oracle (see the kernel-equivalence tests) and as the
// -sweepkernel=granule escape hatch on cmd/sweep.
type SweepKernel int

const (
	// SweepKernelWord batches work by 64-granule tag word: tmem hands the
	// sweep whole nonzero tag words (frame summaries skip empty words and
	// frames in O(1)) and shadow probes go through PaintedWord's chunk
	// cache instead of a map lookup per capability.
	SweepKernelWord SweepKernel = iota
	// SweepKernelGranule is the original per-granule callback path.
	SweepKernelGranule
)

func (k SweepKernel) String() string {
	switch k {
	case SweepKernelWord:
		return "word"
	case SweepKernelGranule:
		return "granule"
	}
	return fmt.Sprintf("sweepkernel(%d)", int(k))
}

// ParseSweepKernel parses a -sweepkernel flag value.
func ParseSweepKernel(s string) (SweepKernel, error) {
	switch s {
	case "", "word":
		return SweepKernelWord, nil
	case "granule":
		return SweepKernelGranule, nil
	}
	return 0, fmt.Errorf("kernel: unknown sweep kernel %q (want word or granule)", s)
}

// sweepPageWords is the word-wise sweep: it mirrors sweepPageGranule's
// cost recipe exactly (the bus cache is stateful, so even the order of
// accesses matters) while removing the per-granule host overheads — the
// closure call per tagged granule and the chunk-map lookup per shadow
// probe.
func (t *Thread) sweepPageWords(vpn uint64, pte *vm.PTE) (visited, revoked int) {
	core := t.Sim.CoreID()
	b := t.P.M.Bus
	sh := t.P.Shadow
	opCost := t.P.M.Costs.Op
	if pte.Bits&vm.PTECOW != 0 {
		// Read-only pre-scan before breaking copy-on-write sharing; see
		// sweepPageGranule for the footnote-20 rationale.
		needsWrite := false
		t.Sim.Tick(b.AccessRange(core, tagTableBase+vpn*tagBytesPerPage, tagBytesPerPage, t.Agent, false))
		v, _ := t.P.M.Phys.SweepTagsWords(pte.Frame, func(_ *tmem.SweepCursor, w int, mask uint64, caps *[tmem.GranulesPerPage]ca.Capability) {
			wordVA := vm.TagWordVA(vpn, w)
			for m := mask; m != 0; {
				bit := bits.TrailingZeros64(m)
				m &^= 1 << uint(bit)
				c := caps[w*64+bit]
				t.Sim.Tick(b.Access(core, wordVA+uint64(bit)*ca.GranuleSize, t.Agent, false))
				t.Sim.Tick(opCost + b.Access(core, shadow.VAOf(c.Base()), t.Agent, false))
				if sh.PaintedWord(c.Base())&(1<<(c.Base()/ca.GranuleSize%64)) != 0 {
					needsWrite = true
				}
			}
		})
		visited = v
		pte.Bits &^= vm.PTECapDirty
		if !needsWrite {
			return visited, 0
		}
		visited = 0
		if err := t.resolveCOW(vpn<<vm.PageShift, pte); err != nil {
			panic(fmt.Sprintf("kernel: sweep COW upgrade: %v", err))
		}
	}
	// Capability-dirty must drop before the first granule is read, exactly
	// as in the granule kernel: a store landing mid-scan re-marks the page.
	pte.Bits &^= vm.PTECapDirty
	t.Sim.Tick(b.AccessRange(core, tagTableBase+vpn*tagBytesPerPage, tagBytesPerPage, t.Agent, false))
	v, rev := t.P.M.Phys.SweepTagsWords(pte.Frame, func(cur *tmem.SweepCursor, w int, mask uint64, caps *[tmem.GranulesPerPage]ca.Capability) {
		wordVA := vm.TagWordVA(vpn, w)
		for m := mask; m != 0; {
			bit := bits.TrailingZeros64(m)
			m &^= 1 << uint(bit)
			g := w*64 + bit
			c := caps[g]
			t.Sim.Tick(b.Access(core, wordVA+uint64(bit)*ca.GranuleSize, t.Agent, false))
			t.Sim.Tick(opCost + b.Access(core, shadow.VAOf(c.Base()), t.Agent, false))
			if sh.PaintedWord(c.Base())&(1<<(c.Base()/ca.GranuleSize%64)) != 0 {
				// Clearing the tag dirties the line we already hold.
				t.Sim.Tick(b.Access(core, wordVA+uint64(bit)*ca.GranuleSize, t.Agent, true))
				cur.Revoke(g)
			}
		}
	})
	visited += v
	return visited, rev
}
