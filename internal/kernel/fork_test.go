package kernel

import (
	"testing"

	"repro/internal/ca"
	"repro/internal/vm"
)

func TestForkCopiesMemoryAndCapabilities(t *testing.T) {
	m := testMachine()
	parent := m.NewProcess(1)
	parent.Spawn("parent", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		obj, _ := root.WithAddr(root.Base() + 4096).SetBoundsExact(64)
		if err := th.StoreCap(root, 0, obj); err != nil {
			t.Fatal(err)
		}
		child, err := parent.Fork(th)
		if err != nil {
			t.Fatal(err)
		}
		// Parent's subsequent writes must not be visible in the child.
		if err := th.Store(root, 0, 16); err != nil {
			t.Fatal(err)
		}
		child.Spawn("child", []int{2}, func(cth *Thread) {
			got, err := cth.LoadCap(root, 0)
			if err != nil {
				t.Error(err)
			}
			if !got.Tag() || got.Base() != obj.Base() {
				t.Errorf("child lost the capability: %v", got)
			}
		})
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m.Processes()) != 2 {
		t.Fatalf("processes = %d", len(m.Processes()))
	}
}

func TestForkIsolatesAddressSpaces(t *testing.T) {
	m := testMachine()
	parent := m.NewProcess(1)
	parent.Spawn("parent", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		th.StoreCap(root, 0, root)
		child, err := parent.Fork(th)
		if err != nil {
			t.Fatal(err)
		}
		// Child overwrites; parent's view is untouched.
		child.Spawn("child", []int{2}, func(cth *Thread) {
			if err := cth.Store(root, 0, 16); err != nil {
				t.Error(err)
			}
			got, _ := cth.LoadCap(root, 0)
			if got.Tag() {
				t.Error("child's overwrite did not clear its tag")
			}
		})
		th.Idle(5_000_000) // let the child run
		got, err := th.LoadCap(root, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Tag() {
			t.Fatal("child's write leaked into the parent")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestForkWaitsForRevocationEpoch(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	var forkedAt, epochEndAt uint64
	p.Spawn("app", []int{3}, func(th *Thread) {
		// Wait until the revocation pass is in flight (odd counter), then
		// fork: the bulk-operation exclusion must hold it until the epoch
		// completes.
		p.WaitEpochAtLeast(th, 1)
		child, err := p.Fork(th)
		if err != nil {
			t.Error(err)
		}
		forkedAt = th.Sim.Now()
		_ = child
	})
	p.Spawn("revoker", []int{2}, func(th *Thread) {
		p.AdvanceEpoch(th) // odd: pass in flight
		th.Work(3_000_000)
		epochEndAt = th.Sim.Now()
		p.AdvanceEpoch(th) // even: complete
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if forkedAt < epochEndAt {
		t.Fatalf("fork completed at %d, before the epoch ended at %d", forkedAt, epochEndAt)
	}
}

func TestForkCopiesHoardsAndShadow(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	h := p.NewHoard("sessions")
	p.Spawn("app", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		h.Put(0, root)
		if err := th.PaintShadow(root, root.Base(), 64); err != nil {
			t.Fatal(err)
		}
		child, err := p.Fork(th)
		if err != nil {
			t.Fatal(err)
		}
		if len(child.hoards) != 1 || !child.hoards[0].Get(0).Tag() {
			t.Error("hoard not copied")
		}
		if !child.Shadow.Test(root.Base()) {
			t.Error("shadow bitmap not copied")
		}
		// The copies are independent.
		child.Shadow.Unpaint(ca.NewRoot(root.Base(), 64, ca.PermPaint), root.Base(), 64)
		if !p.Shadow.Test(root.Base()) {
			t.Error("child unpaint affected parent shadow")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestForkChildStartsAtSteadyGenerations(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	p.Spawn("app", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		th.StoreCap(root, 0, root)
		// Skew the parent's generations as a mid-life process would have.
		p.BumpGenerations(th)
		p.BumpGenerations(th)
		child, err := p.Fork(th)
		if err != nil {
			t.Fatal(err)
		}
		child.Spawn("child", []int{2}, func(cth *Thread) {
			// A capability load in the child must not trap: its PTEs are
			// stamped with the inherited current generation.
			got, err := cth.LoadCap(root, 0)
			if err != nil {
				t.Error(err)
			}
			if !got.Tag() {
				t.Error("capability lost across fork")
			}
			pte, ok := child.AS.Lookup(root.Base())
			if !ok {
				t.Error("child page missing")
			} else if child.AS.GenMismatch(cth.Sim.CoreID(), pte) {
				t.Error("child PTE generation stale at birth")
			}
		})
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiProcessIsolationAndIndependentEpochs(t *testing.T) {
	// Two processes on one machine, each with its own heap-like region and
	// epoch counter: advancing one's epoch or revoking in one must not
	// disturb the other.
	m := testMachine()
	p1 := m.NewProcess(1)
	p2 := m.NewProcess(2)
	p1.Spawn("p1", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		stale, _ := root.WithAddr(root.Base()).SetBoundsExact(64)
		th.StoreCap(root, 0, stale)
		th.PaintShadow(root, stale.Base(), 64)
		p1.StopTheWorld(th)
		p1.ScanRoots(th)
		pte, _ := p1.AS.Lookup(root.Base())
		th.SweepPage(root.Base()>>vm.PageShift, pte)
		p1.ResumeTheWorld(th)
		p1.AdvanceEpoch(th)
		p1.AdvanceEpoch(th)
		got, _ := th.LoadCap(root, 0)
		if got.Tag() {
			t.Error("p1 sweep failed")
		}
	})
	p2.Spawn("p2", []int{2}, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		keep, _ := root.WithAddr(root.Base()).SetBoundsExact(64)
		th.StoreCap(root, 0, keep)
		th.Work(20_000_000)
		got, err := th.LoadCap(root, 0)
		if err != nil {
			t.Error(err)
		}
		if !got.Tag() {
			t.Error("p2's capability revoked by p1's sweep")
		}
		if p2.Epoch() != 0 {
			t.Errorf("p2 epoch = %d; p1's advances leaked", p2.Epoch())
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if p1.Epoch() != 2 {
		t.Fatalf("p1 epoch = %d", p1.Epoch())
	}
}
