package kernel

import (
	"testing"

	"repro/internal/ca"
)

// TestSyscallCapsScannedDuringSTW: a capability carried into a blocking
// system call is an ephemeral kernel hoard (§4.4): if a revocation pass
// stops the world while the call is in flight, the capability is checked,
// and the kernel never returns a stale one to user space.
func TestSyscallCapsScannedDuringSTW(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	var returned []ca.Capability
	p.Spawn("app", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<14)
		stale, _ := root.WithAddr(root.Base()).SetBoundsExact(64)
		live, _ := root.WithAddr(root.Base() + 4096).SetBoundsExact(64)
		if err := th.PaintShadow(root, stale.Base(), 64); err != nil {
			t.Error(err)
		}
		// Enter a long blocking syscall carrying both capabilities.
		returned = th.SyscallCaps(5_000_000, []ca.Capability{stale, live})
	})
	p.Spawn("revoker", []int{2}, func(th *Thread) {
		th.Work(500_000) // the app is now inside the syscall
		p.StopTheWorld(th)
		scanned, revoked := p.ScanRoots(th)
		p.ResumeTheWorld(th)
		if scanned < 2 || revoked != 1 {
			t.Errorf("scanned=%d revoked=%d, want ≥2 and 1", scanned, revoked)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(returned) != 2 {
		t.Fatalf("returned %d capabilities", len(returned))
	}
	if returned[0].Tag() {
		t.Fatal("kernel divulged a stale capability from a syscall (§4.4 violated)")
	}
	if !returned[1].Tag() {
		t.Fatal("live capability revoked in syscall hoard")
	}
}

// TestSyscallCapsNoSTWPassThrough: without a pause, the capabilities come
// back untouched.
func TestSyscallCapsNoSTWPassThrough(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<14)
		out := th.SyscallCaps(10_000, []ca.Capability{root})
		if len(out) != 1 || !out[0].Tag() || out[0].Base() != root.Base() {
			t.Fatalf("pass-through mangled: %v", out)
		}
	})
}

// TestCopyRangePreservesBarrierChecks: copying memory with CopyRange runs
// the loaded capabilities through the load barrier, so a revoked
// capability cannot be laundered through memcpy.
func TestCopyRangeUnderColorFilter(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	p.SetColorMode(true)
	p.Spawn("app", []int{3}, func(th *Thread) {
		r, err := th.Mmap(1<<14, ca.PermsData|ca.PermRecolor|ca.PermPaint)
		if err != nil {
			t.Fatal(err)
		}
		root := r.Root
		victim, _ := root.WithAddr(root.Base() + 8192).SetBoundsExact(64)
		if err := th.StoreCap(root, 0, victim); err != nil {
			t.Fatal(err)
		}
		// Recolor the victim's memory: the stored capability is now stale.
		pte, _, _ := p.AS.EnsureMapped(victim.Base())
		m.Phys.SetColor(pte.Frame, int(victim.Base()%4096)/16, 4, 5)
		// memcpy the holder region elsewhere: the stale capability must
		// arrive tag-cleared (filtered on load), not laundered.
		dst := root.WithAddr(root.Base() + 256)
		if err := th.CopyRange(dst, root, 64); err != nil {
			t.Fatal(err)
		}
		got, err := th.LoadCap(root, 256)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag() {
			t.Fatal("stale-colored capability laundered through CopyRange")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
