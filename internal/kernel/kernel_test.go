package kernel

import (
	"errors"
	"testing"

	"repro/internal/bus"
	"repro/internal/ca"
	"repro/internal/sim"
	"repro/internal/vm"
)

func testMachine() *Machine {
	cfg := DefaultMachineConfig()
	cfg.Sim.Cores = 4
	return NewMachine(cfg)
}

// runProc runs fn as a single app thread of a fresh process and returns
// the process.
func runProc(t *testing.T, fn func(*Thread)) *Process {
	t.Helper()
	m := testMachine()
	p := m.NewProcess(1)
	p.Spawn("app", []int{3}, fn)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return p
}

func mustMmap(t *testing.T, th *Thread, size uint64) (*vm.Reservation, ca.Capability) {
	t.Helper()
	r, err := th.Mmap(size, ca.PermsData|ca.PermPaint)
	if err != nil {
		t.Fatal(err)
	}
	return r, r.Root
}

func TestDataRoundTripAndCosts(t *testing.T) {
	var before, after uint64
	p := runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		before = th.Sim.CPU()
		if err := th.Store(root, 0, 64); err != nil {
			t.Error(err)
		}
		if err := th.Load(root, 0, 64); err != nil {
			t.Error(err)
		}
		after = th.Sim.CPU()
	})
	if after <= before {
		t.Fatal("memory ops charged no cycles")
	}
	s := p.Stats()
	if s.Loads != 1 || s.Stores != 1 {
		t.Fatalf("loads=%d stores=%d", s.Loads, s.Stores)
	}
}

func TestCapStoreLoadRoundTrip(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		obj, err := root.WithAddr(root.Base() + 256).SetBoundsExact(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.StoreCap(root, 16, obj); err != nil {
			t.Fatal(err)
		}
		got, err := th.LoadCap(root, 16)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Tag() || got.Base() != obj.Base() {
			t.Fatalf("loaded %v, want %v", got, obj)
		}
	})
}

func TestCapStoreSetsDirtyBits(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		if err := th.StoreCap(root, 0, root); err != nil {
			t.Fatal(err)
		}
		pte, ok := th.P.AS.Lookup(root.Base())
		if !ok {
			t.Fatal("page not mapped")
		}
		if pte.Bits&vm.PTECapDirty == 0 || pte.Bits&vm.PTEEverCapDirty == 0 {
			t.Fatal("capability store did not set dirty bits")
		}
	})
}

func TestDataStoreDoesNotSetCapDirty(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		if err := th.Store(root, 0, 128); err != nil {
			t.Fatal(err)
		}
		pte, _ := th.P.AS.Lookup(root.Base())
		if pte.Bits&vm.PTECapDirty != 0 {
			t.Fatal("data store set capability-dirty")
		}
	})
}

func TestDataStoreOverwritesCapability(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		th.StoreCap(root, 32, root)
		th.Store(root, 32, 8)
		got, err := th.LoadCap(root, 32)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag() {
			t.Fatal("capability survived partial data overwrite")
		}
	})
}

func TestLoadOutsideBoundsFails(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		small, _ := root.WithAddr(root.Base()).SetBoundsExact(32)
		if err := th.Load(small, 16, 32); err == nil {
			t.Fatal("out-of-bounds load allowed")
		}
	})
}

func TestMisalignedCapAccessFails(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		if _, err := th.LoadCap(root, 8); err == nil {
			t.Fatal("misaligned cap load allowed")
		}
		if err := th.StoreCap(root, 8, root); err == nil {
			t.Fatal("misaligned cap store allowed")
		}
	})
}

func TestGuardPageFaults(t *testing.T) {
	runProc(t, func(th *Thread) {
		r, root := mustMmap(t, th, 4*vm.PageSize)
		if _, _, err := th.Munmap(r.Base+vm.PageSize, vm.PageSize); err != nil {
			t.Fatal(err)
		}
		err := th.Load(root, vm.PageSize, 8)
		var f *vm.Fault
		if !errors.As(err, &f) || f.Kind != vm.FaultUnmapped {
			t.Fatalf("err = %v, want unmapped fault", err)
		}
	})
}

func TestEpochProtocol(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	var observed uint64
	p.Spawn("waiter", []int{3}, func(th *Thread) {
		e := p.Epoch()
		p.WaitEpochAtLeast(th, EpochClearTarget(e))
		observed = p.Epoch()
	})
	p.Spawn("revoker", []int{2}, func(th *Thread) {
		th.Work(1000)
		p.AdvanceEpoch(th) // begin (odd)
		th.Work(5000)
		p.AdvanceEpoch(th) // end (even)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if observed != 2 {
		t.Fatalf("waiter observed epoch %d, want 2", observed)
	}
}

func TestEpochClearTarget(t *testing.T) {
	if got := EpochClearTarget(4); got != 6 {
		t.Fatalf("even target = %d, want 6", got)
	}
	if got := EpochClearTarget(5); got != 8 {
		t.Fatalf("odd target = %d, want 8", got)
	}
}

func TestStopTheWorldQuiescesRunningThread(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	var appProgressDuringSTW bool
	var stwStart, stwEnd uint64
	appOps := 0
	stopped := false
	p.Spawn("app", []int{3}, func(th *Thread) {
		for i := 0; i < 100_000; i++ {
			th.Work(50)
			appOps++
			if stopped && th.Sim.Now() > stwStart && th.Sim.Now() < stwEnd {
				appProgressDuringSTW = true
			}
		}
	})
	p.Spawn("revoker", []int{2}, func(th *Thread) {
		th.Work(500_000)
		stwStart = th.Sim.Now()
		p.StopTheWorld(th)
		stopped = true
		th.Work(1_000_000) // pretend to scan
		p.ResumeTheWorld(th)
		stwEnd = th.Sim.Now()
		stopped = false
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if appProgressDuringSTW {
		t.Fatal("app thread made progress during stop-the-world")
	}
	if p.Stats().StopTheWorlds != 1 {
		t.Fatalf("STW count = %d", p.Stats().StopTheWorlds)
	}
}

func TestStopTheWorldCountsSleepersAsStopped(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	var stwDone uint64
	p.Spawn("sleeper", []int{3}, func(th *Thread) {
		th.Idle(50_000_000) // long think time
	})
	p.Spawn("revoker", []int{2}, func(th *Thread) {
		th.Work(1000)
		p.StopTheWorld(th)
		p.ResumeTheWorld(th)
		stwDone = th.Sim.Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if stwDone == 0 || stwDone > 10_000_000 {
		t.Fatalf("STW over a sleeping thread completed at %d; should not wait for it", stwDone)
	}
}

func TestScanRootsRevokesRegistersAndHoards(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	h := p.NewHoard("kqueue")
	var appTh *Thread
	appTh = p.Spawn("app", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		stale, _ := root.WithAddr(root.Base()).SetBoundsExact(64)
		live, _ := root.WithAddr(root.Base() + 4096).SetBoundsExact(64)
		th.SetReg(0, stale)
		th.SetReg(1, live)
		h.Put(0, stale)
		h.Put(1, live)
		// Quarantine the stale object.
		if err := th.PaintShadow(root, stale.Base(), 64); err != nil {
			t.Error(err)
		}
		th.Idle(1 << 30)
	})
	p.Spawn("revoker", []int{2}, func(th *Thread) {
		th.Work(100_000) // let the app set up
		p.StopTheWorld(th)
		scanned, revoked := p.ScanRoots(th)
		p.ResumeTheWorld(th)
		if scanned < 4 || revoked != 2 {
			t.Errorf("scanned=%d revoked=%d, want ≥4 and 2", scanned, revoked)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if appTh.Reg(0).Tag() {
		t.Fatal("stale register capability survived root scan")
	}
	if !appTh.Reg(1).Tag() {
		t.Fatal("live register capability was revoked")
	}
	if h.Get(0).Tag() || !h.Get(1).Tag() {
		t.Fatal("hoard scan wrong")
	}
}

func TestSweepPageRevokesPaintedCaps(t *testing.T) {
	runProc(t, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		stale, _ := root.WithAddr(root.Base() + 1024).SetBoundsExact(64)
		live, _ := root.WithAddr(root.Base() + 2048).SetBoundsExact(64)
		th.StoreCap(root, 0, stale)
		th.StoreCap(root, 16, live)
		th.PaintShadow(root, stale.Base(), 64)
		pte, _ := th.P.AS.Lookup(root.Base())
		visited, revoked := th.SweepPage(root.Base()>>vm.PageShift, pte)
		if visited != 2 || revoked != 1 {
			t.Fatalf("visited=%d revoked=%d", visited, revoked)
		}
		got, _ := th.LoadCap(root, 0)
		if got.Tag() {
			t.Fatal("painted capability survived sweep")
		}
		got, _ = th.LoadCap(root, 16)
		if !got.Tag() {
			t.Fatal("live capability revoked by sweep")
		}
		if pte.Bits&vm.PTECapDirty != 0 {
			t.Fatal("sweep left capability-dirty set")
		}
	})
}

// fakeBarrier sweeps the page and updates its generation, standing in for
// the Reloaded revoker.
type fakeBarrier struct{ faults int }

func (f *fakeBarrier) HandleLoadGenFault(th *Thread, va uint64, pte *vm.PTE) {
	f.faults++
	th.SweepPage(va>>vm.PageShift, pte)
	pte.Gen = th.P.AS.CoreGen(th.Sim.CoreID())
}

func TestLoadBarrierFaultPath(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	fb := &fakeBarrier{}
	p.SetLoadBarrier(fb)
	p.Spawn("app", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		stale, _ := root.WithAddr(root.Base() + 1024).SetBoundsExact(64)
		th.StoreCap(root, 0, stale)
		th.PaintShadow(root, stale.Base(), 64)

		// Epoch start: bump generations (we play the revoker's STW here).
		p.BumpGenerations(th)

		// The next tagged load must fault, sweep, and return the revoked
		// (untagged) value.
		got, err := th.LoadCap(root, 0)
		if err != nil {
			t.Error(err)
		}
		if got.Tag() {
			t.Error("stale capability loaded through armed barrier")
		}
		if fb.faults != 1 {
			t.Errorf("faults = %d, want 1", fb.faults)
		}
		// A second load from the same page must not fault again.
		if _, err := th.LoadCap(root, 0); err != nil {
			t.Error(err)
		}
		if fb.faults != 1 {
			t.Errorf("faults after healed load = %d, want 1", fb.faults)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().GenFaults != 1 {
		t.Fatalf("GenFaults = %d, want 1", p.Stats().GenFaults)
	}
	if p.Stats().GenFaultCycles == 0 {
		t.Fatal("no fault cycles recorded")
	}
}

func TestTLBRefillPathAfterRemoteSweep(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	fb := &fakeBarrier{}
	p.SetLoadBarrier(fb)
	p.Spawn("app", []int{3}, func(th *Thread) {
		_, root := mustMmap(t, th, 1<<16)
		live, _ := root.WithAddr(root.Base() + 2048).SetBoundsExact(64)
		th.StoreCap(root, 0, live)
		// Load once so the TLB caches the current generation.
		if _, err := th.LoadCap(root, 0); err != nil {
			t.Error(err)
		}
		// Epoch: bump generations. BumpGenerations shoots down TLBs, so to
		// model the stale-TLB case we refill the TLB with the old PTE
		// before the (simulated remote) revoker updates it.
		pte, _ := th.P.AS.Lookup(root.Base())
		p.BumpGenerations(th)
		th.P.AS.TLBFill(th.Sim.CoreID(), root.Base(), pte)
		// "Remote revoker" sweeps the page and updates the PTE.
		th.SweepPage(root.Base()>>vm.PageShift, pte)
		pte.Gen = th.P.AS.CoreGen(0)
		// Now our TLB is stale but the PTE is current: the load must take
		// the refill path, not the fault path.
		if _, err := th.LoadCap(root, 0); err != nil {
			t.Error(err)
		}
		if fb.faults != 0 {
			t.Errorf("faults = %d, want 0 (refill path)", fb.faults)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().TLBRefills != 1 {
		t.Fatalf("TLBRefills = %d, want 1", p.Stats().TLBRefills)
	}
}

func TestSyscallMarksThread(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(7)
	drainCharged := false
	p.Spawn("app", []int{3}, func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.Syscall(200_000)
			th.Work(1000)
		}
	})
	p.Spawn("revoker", []int{2}, func(th *Thread) {
		th.Work(500_000)
		before := th.Sim.CPU()
		p.StopTheWorld(th)
		p.ResumeTheWorld(th)
		// Either drain cost or plain stop cost was charged; at minimum the
		// stop cost.
		drainCharged = th.Sim.CPU()-before >= m.Costs.StopThread
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !drainCharged {
		t.Fatal("STW charged less than the per-thread stop cost")
	}
}

func TestAgentAttribution(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	p.Spawn("app", []int{3}, func(th *Thread) {
		th.Agent = bus.AgentRevoker
		_, root := mustMmap(t, th, 1<<16)
		th.Load(root, 0, 64)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := m.Bus.Stats()
	if s.DRAMByAgent[bus.AgentRevoker] == 0 {
		t.Fatal("revoker traffic not attributed")
	}
	if s.DRAMByAgent[bus.AgentApp] != 0 {
		t.Fatal("app traffic attributed without app accesses")
	}
}

func TestColorModeBlocksMismatchedAccess(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	p.SetColorMode(true)
	p.Spawn("app", []int{3}, func(th *Thread) {
		r, err := th.Mmap(1<<16, ca.PermsData|ca.PermPaint|ca.PermRecolor)
		if err != nil {
			t.Fatal(err)
		}
		root := r.Root
		// Color granule 0 with color 3. An unprivileged capability (no
		// PermRecolor) of the wrong color must trap; the right color must
		// succeed; and the allocator's elevated (PermRecolor) authority
		// bypasses the check entirely.
		pte, _, _ := th.P.AS.EnsureMapped(root.Base())
		m.Phys.SetColor(pte.Frame, 0, 1, 3)
		plain := root.ClearPerms(ca.PermRecolor)
		if err := th.Load(plain, 0, 8); err == nil {
			t.Error("mis-colored load allowed")
		}
		c3, err := root.WithColor(3)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.Load(c3.ClearPerms(ca.PermRecolor), 0, 8); err != nil {
			t.Errorf("matching-color load failed: %v", err)
		}
		if err := th.Load(root, 0, 8); err != nil {
			t.Errorf("elevated-authority load failed: %v", err)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Stats().ColorTraps != 1 {
		t.Fatalf("ColorTraps = %d, want 1", p.Stats().ColorTraps)
	}
}

func TestWorkAndIdleAccounting(t *testing.T) {
	m := testMachine()
	p := m.NewProcess(1)
	var th0 *Thread
	th0 = p.Spawn("app", []int{3}, func(th *Thread) {
		th.Work(10_000)
		th.Idle(90_000)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if th0.Sim.CPU() != 10_000 {
		t.Fatalf("cpu = %d, want 10000", th0.Sim.CPU())
	}
	if m.Eng.WallClock() < 100_000 {
		t.Fatalf("wall = %d, want ≥ 100000", m.Eng.WallClock())
	}
	_ = sim.Ready // keep sim import for clarity of states used above
}
