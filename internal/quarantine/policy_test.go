package quarantine

import (
	"testing"

	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/revoke"
)

func TestDefaultPolicyMatchesPaper(t *testing.T) {
	p := DefaultPolicy()
	if p.HeapFraction != 0.25 {
		t.Fatalf("fraction = %v, want 1/4 of total heap", p.HeapFraction)
	}
	if p.MinBytes != 8<<20 {
		t.Fatalf("min = %d, want 8 MiB", p.MinBytes)
	}
	if p.BlockFactor != 2 {
		t.Fatalf("block factor = %v", p.BlockFactor)
	}
}

func TestNoTriggerBelowFloor(t *testing.T) {
	// Churn volume below MinBytes must never trigger revocation, no matter
	// the fraction.
	r := newRig(revoke.Reloaded, Policy{HeapFraction: 0.01, MinBytes: 1 << 20, BlockFactor: 2})
	r.runApp(t, func(th *kernel.Thread) {
		for i := 0; i < 200; i++ {
			c, err := r.q.Malloc(th, 256)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.q.Free(th, c); err != nil {
				t.Fatal(err)
			}
		}
	})
	if r.q.Stats().Triggers != 0 {
		t.Fatalf("triggered %d times below the floor", r.q.Stats().Triggers)
	}
	if len(r.s.Records()) != 0 {
		t.Fatal("epochs ran below the floor")
	}
}

func TestFractionControlsTriggerPoint(t *testing.T) {
	// With a tiny floor, the trigger point tracks the fraction: a 1/2
	// fraction policy triggers about half as often as a 1/4 policy for
	// the same churn.
	run := func(frac float64) uint64 {
		r := newRig(revoke.Reloaded, Policy{HeapFraction: frac, MinBytes: 1 << 10, BlockFactor: 2})
		r.runApp(t, func(th *kernel.Thread) {
			var keep []ca.Capability
			for i := 0; i < 16; i++ {
				c, _ := r.q.Malloc(th, 2048)
				keep = append(keep, c)
			}
			for i := 0; i < 2000; i++ {
				c, err := r.q.Malloc(th, 512)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.q.Free(th, c); err != nil {
					t.Fatal(err)
				}
			}
			_ = keep
		})
		return r.q.Stats().Triggers
	}
	quarterTriggers := run(0.25)
	halfTriggers := run(0.5)
	if quarterTriggers == 0 || halfTriggers == 0 {
		t.Fatalf("policies never triggered: %d %d", quarterTriggers, halfTriggers)
	}
	if halfTriggers >= quarterTriggers {
		t.Fatalf("1/2 policy triggered %d ≥ 1/4 policy's %d", halfTriggers, quarterTriggers)
	}
}

func TestFlushIdempotentWhenEmpty(t *testing.T) {
	r := newRig(revoke.Reloaded, smallPolicy())
	r.runApp(t, func(th *kernel.Thread) {
		r.q.Flush(th) // nothing quarantined: must return immediately
		c, _ := r.q.Malloc(th, 64)
		r.q.Free(th, c)
		r.q.Flush(th)
		r.q.Flush(th) // second flush is a no-op
	})
	if got := r.q.Stats().QuarantinedBytes; got != 0 {
		t.Fatalf("quarantine = %d after double flush", got)
	}
}

func TestStatsSnapshotIncludesBothBuffers(t *testing.T) {
	r := newRig(revoke.PaintSync, Policy{HeapFraction: 0.25, MinBytes: 1 << 10, BlockFactor: 100})
	r.runApp(t, func(th *kernel.Thread) {
		var keep []ca.Capability
		for i := 0; i < 8; i++ {
			c, _ := r.q.Malloc(th, 4096)
			keep = append(keep, c)
		}
		// Fill quarantine past a trigger so one buffer is in flight, then
		// keep freeing into the fresh buffer.
		for i := 0; i < 60; i++ {
			c, _ := r.q.Malloc(th, 512)
			if err := r.q.Free(th, c); err != nil {
				t.Fatal(err)
			}
		}
		st := r.q.Stats()
		if st.QuarantinedBytes == 0 {
			t.Fatal("snapshot lost quarantined bytes")
		}
		_ = keep
	})
}
