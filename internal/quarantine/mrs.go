// Package quarantine implements the mrs malloc-revocation shim (§5): it
// interposes on free, painting the revocation bitmap and holding freed
// address space in quarantine until a revocation epoch proves no stale
// capabilities remain, then returns the storage to the allocator.
//
// Policy follows the paper's configuration: an allocation request made
// while quarantine exceeds one quarter of the total heap (equivalently one
// third of the allocated heap) triggers revocation, unless quarantine is
// under the minimum (8 MiB at full scale; experiments scale it with their
// heaps). The quarantine list is double-buffered so frees proceed during
// revocation; if the second buffer also exceeds policy, allocation blocks
// until the in-flight epoch completes (§5.3, §7.2).
package quarantine

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/bus"
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/revoke"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrQuarantinedDoubleFree is returned when an object already in
// quarantine is freed again.
var ErrQuarantinedDoubleFree = errors.New("quarantine: double free of quarantined object")

// Policy is the revocation trigger policy.
type Policy struct {
	// HeapFraction is the quarantine share of the total heap that triggers
	// revocation (the paper uses 1/4).
	HeapFraction float64
	// MinBytes suppresses revocation while quarantine is small (the paper
	// uses 8 MiB; scaled experiments scale it).
	MinBytes uint64
	// BlockFactor blocks allocation outright when quarantine exceeds
	// BlockFactor times the trigger limit (mrs blocks at 2×).
	BlockFactor float64
}

// DefaultPolicy returns the paper's policy at full scale.
func DefaultPolicy() Policy {
	return Policy{HeapFraction: 0.25, MinBytes: 8 << 20, BlockFactor: 2}
}

// Stats aggregates shim activity.
type Stats struct {
	// QuarantinedBytes is the current quarantine volume (both buffers).
	QuarantinedBytes uint64
	// PeakQuarantinedBytes is its high-water mark.
	PeakQuarantinedBytes uint64
	// TotalQuarantined accumulates all bytes ever quarantined ("Sum
	// Freed" in Table 2).
	TotalQuarantined uint64
	// Triggers counts revocations requested by policy.
	Triggers uint64
	// Blocks counts allocations that had to wait for an epoch; BlockCycles
	// is the total virtual time spent blocked.
	Blocks      uint64
	BlockCycles uint64
	// LiveAtTriggerSum/Count sample the allocated heap at each trigger
	// (Table 2's "Mean Alloc").
	LiveAtTriggerSum   uint64
	LiveAtTriggerCount uint64
	// QuarantineAtTriggerSum samples quarantine volume at each trigger.
	QuarantineAtTriggerSum uint64
}

type entry struct{ base, size uint64 }

type buffer struct {
	entries []entry
	bytes   uint64
	// target is the epoch counter value at which the buffer may drain.
	target uint64
}

// Shim is one process's mrs instance.
type Shim struct {
	H   *alloc.Heap
	S   *revoke.Service
	pol Policy

	cur      buffer  // accumulating frees
	inflight *buffer // awaiting the in-flight (or a future) epoch

	// drainObs, when non-nil, observes the start of every quarantine
	// drain with the draining buffer's clearance target and the spans
	// about to be released (internal/oracle asserts the §2.2.3
	// epoch-parity reuse rule there and retires the spans from its
	// paint snapshot).
	drainObs func(th *kernel.Thread, target uint64, spans []Span)

	stats Stats
}

// New creates a shim over heap h using revocation service s.
func New(h *alloc.Heap, s *revoke.Service, pol Policy) *Shim {
	return &Shim{H: h, S: s, pol: pol}
}

// Stats returns a snapshot of shim counters.
func (q *Shim) Stats() Stats {
	st := q.stats
	st.QuarantinedBytes = q.cur.bytes
	if q.inflight != nil {
		st.QuarantinedBytes += q.inflight.bytes
	}
	return st
}

// Policy returns the shim's policy.
func (q *Shim) Policy() Policy { return q.pol }

// Malloc allocates through the shim: it opportunistically drains cleared
// quarantine, applies the trigger policy, and blocks if quarantine has run
// far past it.
func (q *Shim) Malloc(th *kernel.Thread, size uint64) (ca.Capability, error) {
	tl := th.P.M.Telem
	tl.Enter(th.Sim, telemetry.CompQuarantine)
	q.drainIfClear(th)
	limit := q.limit()
	if q.cur.bytes >= q.pol.MinBytes && float64(q.cur.bytes) > limit {
		if q.inflight == nil {
			q.trigger(th)
		} else if float64(q.cur.bytes) > limit*q.pol.BlockFactor {
			// Both buffers over policy: block until the in-flight epoch
			// clears, drain it, and trigger for our buffer.
			q.stats.Blocks++
			t0 := th.Sim.Now()
			tr := th.P.M.Trace
			target := q.inflight.target
			tr.Begin(t0, th.Sim.CoreID(), bus.AgentAlloc,
				trace.KindQuarBlock, th.P.Epoch(), target, 0)
			th.P.WaitEpochAtLeast(th, target)
			tr.End(th.Sim.Now(), th.Sim.CoreID(), bus.AgentAlloc,
				trace.KindQuarBlock, th.P.Epoch(), target, 0)
			q.stats.BlockCycles += th.Sim.Now() - t0
			tl.Observe(telemetry.StdQuarBlockCycles, float64(th.Sim.Now()-t0))
			q.drainIfClear(th)
			if q.inflight == nil {
				q.trigger(th)
			}
		}
	}
	tl.Exit(th.Sim)
	return q.H.Alloc(th, size)
}

// limit returns the trigger threshold in bytes: HeapFraction of the total
// heap (allocated + quarantined; quarantined objects are still counted as
// allocated by the heap, so LiveBytes is the total).
func (q *Shim) limit() float64 {
	return q.pol.HeapFraction * float64(q.H.LiveBytes())
}

// trigger hands the accumulating buffer to a new revocation request.
func (q *Shim) trigger(th *kernel.Thread) {
	e := q.S.RequestRevocation(th)
	buf := q.cur
	buf.target = kernel.EpochClearTarget(e)
	th.P.M.Trace.Instant(th.Sim.Now(), th.Sim.CoreID(), bus.AgentAlloc,
		trace.KindQuarTrigger, e, buf.bytes, buf.target)
	q.inflight = &buf
	q.cur = buffer{}
	q.stats.Triggers++
	q.stats.LiveAtTriggerSum += q.H.LiveBytes()
	q.stats.LiveAtTriggerCount++
	q.stats.QuarantineAtTriggerSum += buf.bytes
}

// Span is one quarantined object's address range, as reported to the
// drain observer.
type Span struct{ Base, Size uint64 }

// SetDrainObserver installs a callback invoked at the start of every
// quarantine drain, before any storage is returned to the allocator.
func (q *Shim) SetDrainObserver(fn func(th *kernel.Thread, target uint64, spans []Span)) {
	q.drainObs = fn
}

// drainIfClear releases the in-flight buffer if its epoch has passed.
func (q *Shim) drainIfClear(th *kernel.Thread) {
	if q.inflight == nil || th.P.Epoch() < q.inflight.target {
		return
	}
	if q.drainObs != nil {
		spans := make([]Span, len(q.inflight.entries))
		for i, e := range q.inflight.entries {
			spans[i] = Span{e.base, e.size}
		}
		q.drainObs(th, q.inflight.target, spans)
	}
	buf := q.inflight
	q.inflight = nil
	th.P.M.Trace.Instant(th.Sim.Now(), th.Sim.CoreID(), bus.AgentAlloc,
		trace.KindQuarFlush, th.P.Epoch(), buf.bytes, uint64(len(buf.entries)))
	for _, e := range buf.entries {
		auth, ok := q.H.PaintAuth(e.base)
		if !ok {
			panic(fmt.Sprintf("quarantine: lost paint authority for %#x", e.base))
		}
		if err := th.UnpaintShadow(auth, e.base, e.size); err != nil {
			panic(fmt.Sprintf("quarantine: unpaint: %v", err))
		}
		if err := q.H.Release(th, e.base, e.size); err != nil {
			panic(fmt.Sprintf("quarantine: release: %v", err))
		}
	}
}

// Free validates the capability against the heap, paints its span in the
// revocation bitmap, and quarantines the address space. The object remains
// readable and writable through stale capabilities until a revocation
// epoch completes — use-after-free inside the quarantine window accesses
// the old object, never a reallocated one (§2.2.2).
func (q *Shim) Free(th *kernel.Thread, c ca.Capability) error {
	th.P.M.Telem.Enter(th.Sim, telemetry.CompQuarantine)
	defer th.P.M.Telem.Exit(th.Sim)
	if !c.Tag() {
		return fmt.Errorf("%w: untagged capability", alloc.ErrBadFree)
	}
	base, size, ok := q.H.Lookup(c.Base())
	if !ok {
		return alloc.ErrDoubleFree
	}
	if base != c.Base() {
		return alloc.ErrWildFree
	}
	if th.P.Shadow.Test(base) {
		return ErrQuarantinedDoubleFree
	}
	auth, ok := q.H.PaintAuth(base)
	if !ok {
		return alloc.ErrBadFree
	}
	if err := th.PaintShadow(auth, base, size); err != nil {
		return err
	}
	th.Work(20) // quarantine list append (out-of-band)
	q.cur.entries = append(q.cur.entries, entry{base, size})
	q.cur.bytes += size
	q.stats.TotalQuarantined += size
	if tot := q.cur.bytes + q.inflightBytes(); tot > q.stats.PeakQuarantinedBytes {
		q.stats.PeakQuarantinedBytes = tot
	}
	return nil
}

func (q *Shim) inflightBytes() uint64 {
	if q.inflight == nil {
		return 0
	}
	return q.inflight.bytes
}

// Flush forces revocation until all quarantine drains. Used at orderly
// shutdown and by tests.
func (q *Shim) Flush(th *kernel.Thread) {
	th.P.M.Telem.Enter(th.Sim, telemetry.CompQuarantine)
	defer th.P.M.Telem.Exit(th.Sim)
	for q.inflight != nil || q.cur.bytes > 0 {
		if q.inflight == nil {
			q.trigger(th)
		}
		th.P.WaitEpochAtLeast(th, q.inflight.target)
		q.drainIfClear(th)
	}
}
