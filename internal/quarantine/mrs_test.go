package quarantine

import (
	"errors"
	"testing"

	"repro/internal/alloc"
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/revoke"
)

type rig struct {
	m *kernel.Machine
	p *kernel.Process
	h *alloc.Heap
	s *revoke.Service
	q *Shim
}

func newRig(strategy revoke.Strategy, pol Policy) *rig {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(7)
	h := alloc.NewHeap(p)
	s := revoke.NewService(p, revoke.Config{Strategy: strategy, RevokerCores: []int{2}})
	return &rig{m: m, p: p, h: h, s: s, q: New(h, s, pol)}
}

func (r *rig) runApp(t *testing.T, fn func(th *kernel.Thread)) {
	t.Helper()
	r.s.Start()
	r.p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		fn(th)
		r.s.Shutdown(th)
	})
	if err := r.m.Run(); err != nil {
		t.Fatal(err)
	}
}

func smallPolicy() Policy {
	return Policy{HeapFraction: 0.25, MinBytes: 4 << 10, BlockFactor: 2}
}

func TestFreeQuarantinesNotReuses(t *testing.T) {
	r := newRig(revoke.Reloaded, smallPolicy())
	r.runApp(t, func(th *kernel.Thread) {
		c, err := r.q.Malloc(th, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.q.Free(th, c); err != nil {
			t.Fatal(err)
		}
		// The address space must NOT be reused before revocation.
		c2, err := r.q.Malloc(th, 64)
		if err != nil {
			t.Fatal(err)
		}
		if c2.Base() == c.Base() {
			t.Fatal("quarantined address space reused before revocation")
		}
		// The stale capability still works (UAF window, §2.2.2): the old
		// object is accessible until the epoch completes.
		if err := th.Load(c, 0, 16); err != nil {
			t.Fatalf("access to quarantined object failed: %v", err)
		}
	})
	if r.q.Stats().TotalQuarantined == 0 {
		t.Fatal("nothing quarantined")
	}
}

func TestDoubleFreeOfQuarantinedObject(t *testing.T) {
	r := newRig(revoke.Reloaded, smallPolicy())
	r.runApp(t, func(th *kernel.Thread) {
		c, _ := r.q.Malloc(th, 64)
		if err := r.q.Free(th, c); err != nil {
			t.Fatal(err)
		}
		if err := r.q.Free(th, c); !errors.Is(err, ErrQuarantinedDoubleFree) {
			t.Fatalf("double free err = %v", err)
		}
	})
}

func TestPolicyTriggersRevocation(t *testing.T) {
	r := newRig(revoke.Reloaded, smallPolicy())
	r.runApp(t, func(th *kernel.Thread) {
		// Keep 64 KiB live so the fraction has a base, then churn enough
		// frees to cross MinBytes and the fraction.
		var keep []ca.Capability
		for i := 0; i < 16; i++ {
			c, _ := r.q.Malloc(th, 4096)
			keep = append(keep, c)
			th.SetReg(i, c)
		}
		for i := 0; i < 2000; i++ {
			c, err := r.q.Malloc(th, 256)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.q.Free(th, c); err != nil {
				t.Fatal(err)
			}
		}
		_ = keep
	})
	st := r.q.Stats()
	if st.Triggers == 0 {
		t.Fatal("policy never triggered revocation")
	}
	if len(r.s.Records()) == 0 {
		t.Fatal("no revocation epochs ran")
	}
}

func TestQuarantineDrainsAndReuses(t *testing.T) {
	r := newRig(revoke.Reloaded, smallPolicy())
	r.runApp(t, func(th *kernel.Thread) {
		c, _ := r.q.Malloc(th, 64)
		base := c.Base()
		r.q.Free(th, c)
		r.q.Flush(th)
		if st := r.q.Stats(); st.QuarantinedBytes != 0 {
			t.Fatalf("quarantine = %d after flush", st.QuarantinedBytes)
		}
		// Shadow must be unpainted and the address reusable now.
		if th.P.Shadow.Test(base) {
			t.Fatal("shadow still painted after drain")
		}
		c2, _ := r.q.Malloc(th, 64)
		if c2.Base() != base {
			t.Fatalf("drained storage not reused: got %#x want %#x", c2.Base(), base)
		}
	})
}

// TestUAFBecomesHarmlessAfterRevocation is the paper's core security story
// end-to-end: free, revoke, and the dangling pointer (held in memory and
// register) is architecturally dead, while the reused storage is intact.
func TestUAFBecomesHarmlessAfterRevocation(t *testing.T) {
	for _, strat := range []revoke.Strategy{revoke.CHERIvoke, revoke.Cornucopia, revoke.Reloaded} {
		t.Run(strat.String(), func(t *testing.T) {
			r := newRig(strat, smallPolicy())
			r.runApp(t, func(th *kernel.Thread) {
				holder, _ := r.q.Malloc(th, 64)
				victim, _ := r.q.Malloc(th, 128)
				th.StoreCap(holder, 0, victim) // dangling alias in memory
				th.SetReg(0, victim)           // and in a register
				if err := r.q.Free(th, victim); err != nil {
					t.Fatal(err)
				}
				r.q.Flush(th)
				// Storage is reusable; a new object may now alias it.
				reuse, _ := r.q.Malloc(th, 128)
				if reuse.Base() != victim.Base() {
					t.Fatalf("expected reuse of %#x, got %#x", victim.Base(), reuse.Base())
				}
				// Both stale references must be dead.
				fromMem, err := th.LoadCap(holder, 0)
				if err != nil {
					t.Fatal(err)
				}
				if fromMem.Tag() {
					t.Error("stale capability in memory alive after reuse (UAR!)")
				}
				if th.Reg(0).Tag() {
					t.Error("stale capability in register alive after reuse (UAR!)")
				}
				// And the new object is fully usable.
				if err := th.Store(reuse, 0, 128); err != nil {
					t.Error(err)
				}
			})
		})
	}
}

func TestBlocksWhenQuarantineDoubleFull(t *testing.T) {
	// Use CHERIvoke with a tiny policy and lots of frees racing the epoch.
	pol := Policy{HeapFraction: 0.25, MinBytes: 2 << 10, BlockFactor: 2}
	r := newRig(revoke.CHERIvoke, pol)
	r.runApp(t, func(th *kernel.Thread) {
		var keep []ca.Capability
		for i := 0; i < 8; i++ {
			c, _ := r.q.Malloc(th, 4096)
			keep = append(keep, c)
			th.SetReg(i, c)
		}
		for i := 0; i < 5000; i++ {
			c, err := r.q.Malloc(th, 512)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.q.Free(th, c); err != nil {
				t.Fatal(err)
			}
		}
		_ = keep
	})
	st := r.q.Stats()
	if st.Blocks == 0 {
		t.Skip("no allocation blocked; policy race did not occur at this scale")
	}
	if st.BlockCycles == 0 {
		t.Fatal("blocks counted but no blocked cycles")
	}
}

func TestStatsSamples(t *testing.T) {
	r := newRig(revoke.PaintSync, smallPolicy())
	r.runApp(t, func(th *kernel.Thread) {
		var keep []ca.Capability
		for i := 0; i < 16; i++ {
			c, _ := r.q.Malloc(th, 4096)
			keep = append(keep, c)
		}
		for i := 0; i < 500; i++ {
			c, _ := r.q.Malloc(th, 1024)
			r.q.Free(th, c)
		}
		_ = keep
	})
	st := r.q.Stats()
	if st.Triggers > 0 && st.LiveAtTriggerCount != st.Triggers {
		t.Fatalf("trigger samples %d != triggers %d", st.LiveAtTriggerCount, st.Triggers)
	}
	if st.PeakQuarantinedBytes == 0 {
		t.Fatal("no quarantine peak recorded")
	}
}

// TestEpochParityBoundary pins the §2.2.3 parity rule at its boundaries by
// driving the epoch counter by hand (the service is never started, so no
// pass runs behind our back): memory painted at an even epoch e may drain
// exactly when the counter reaches e+2 — not at e (trigger time) and not at
// e+1 (the pass is still in flight) — and memory painted while the counter
// is odd (a pass already running that may have swept the span before the
// paint) must wait a full extra pass, draining exactly at e+3.
func TestEpochParityBoundary(t *testing.T) {
	r := newRig(revoke.PaintSync, smallPolicy())
	r.p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		// --- painted at even e=0: clear target 2 -----------------------
		c, err := r.q.Malloc(th, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.q.Free(th, c); err != nil {
			t.Fatal(err)
		}
		if e := r.p.Epoch(); e != 0 {
			t.Fatalf("initial epoch = %d", e)
		}
		r.q.trigger(th)
		if r.q.inflight == nil || r.q.inflight.target != 2 {
			t.Fatalf("even-e trigger target = %+v, want 2", r.q.inflight)
		}
		r.q.drainIfClear(th)
		if r.q.inflight == nil {
			t.Fatal("drained at the trigger epoch itself (0 < target 2)")
		}
		r.p.AdvanceEpoch(th) // 1: pass in flight
		r.q.drainIfClear(th)
		if r.q.inflight == nil {
			t.Fatal("drained mid-pass at epoch 1 (off-by-one: 1 < target 2)")
		}
		r.p.AdvanceEpoch(th) // 2: pass complete
		r.q.drainIfClear(th)
		if r.q.inflight != nil {
			t.Fatal("not drained at the even-e clear target 2")
		}

		// --- painted at odd e=3 (mid-epoch): clear target 6 ------------
		r.p.AdvanceEpoch(th) // 3: a new pass is in flight
		c2, err := r.q.Malloc(th, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.q.Free(th, c2); err != nil {
			t.Fatal(err)
		}
		r.q.trigger(th)
		if r.q.inflight == nil || r.q.inflight.target != 6 {
			t.Fatalf("odd-e trigger target = %+v, want 6 (= 3+3)", r.q.inflight)
		}
		for e := uint64(4); e <= 5; e++ {
			r.p.AdvanceEpoch(th)
			r.q.drainIfClear(th)
			if r.q.inflight == nil {
				t.Fatalf("drained at epoch %d; the in-flight pass at paint time must not count", e)
			}
		}
		r.p.AdvanceEpoch(th) // 6: the first full pass after the paint ended
		r.q.drainIfClear(th)
		if r.q.inflight != nil {
			t.Fatal("not drained at the odd-e clear target 6")
		}
		// Both objects' storage is reusable only now.
		if th.P.Shadow.Test(c.Base()) || th.P.Shadow.Test(c2.Base()) {
			t.Fatal("shadow still painted after both drains")
		}
	})
	if err := r.m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeInvalidCapabilities(t *testing.T) {
	r := newRig(revoke.Reloaded, smallPolicy())
	r.runApp(t, func(th *kernel.Thread) {
		c, _ := r.q.Malloc(th, 64)
		if err := r.q.Free(th, c.ClearTag()); err == nil {
			t.Error("free of untagged capability accepted")
		}
		interior := c.AddAddr(16)
		sub, _ := interior.SetBounds(16)
		if err := r.q.Free(th, sub); !errors.Is(err, alloc.ErrWildFree) {
			t.Errorf("interior free err = %v", err)
		}
	})
}
