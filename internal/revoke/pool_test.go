package revoke_test

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/kernel"
	"repro/internal/quarantine"
	"repro/internal/revoke"
)

// TestPoolServesMultipleProcesses runs two processes whose revocation
// requests are served by one shared two-worker pool: both get the epoch
// guarantee, neither owns a revoker thread, and the pool's workers appear
// on the configured cores.
func TestPoolServesMultipleProcesses(t *testing.T) {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	host := m.NewProcess(99) // in-kernel entity owning the workers
	pool := revoke.NewPool(m, host, 2, []int{1, 2})
	pool.Start()

	type proc struct {
		p   *kernel.Process
		h   *alloc.Heap
		s   *revoke.Service
		mrs *quarantine.Shim
	}
	mk := func(seed int64) *proc {
		p := m.NewProcess(seed)
		h := alloc.NewHeap(p)
		s := pool.Attach(p, revoke.Config{Strategy: revoke.Reloaded})
		mrs := quarantine.New(h, s, quarantine.Policy{HeapFraction: 0.25, MinBytes: 4 << 10, BlockFactor: 2})
		return &proc{p: p, h: h, s: s, mrs: mrs}
	}
	a, b := mk(1), mk(2)

	finished := 0
	body := func(pr *proc, core int) func(th *kernel.Thread) {
		return func(th *kernel.Thread) {
			holder, err := pr.mrs.Malloc(th, 64)
			if err != nil {
				t.Errorf("malloc: %v", err)
				return
			}
			victim, _ := pr.mrs.Malloc(th, 128)
			th.StoreCap(holder, 0, victim)
			if err := pr.mrs.Free(th, victim); err != nil {
				t.Errorf("free: %v", err)
				return
			}
			pr.mrs.Flush(th)
			got, err := th.LoadCap(holder, 0)
			if err != nil {
				t.Errorf("load: %v", err)
				return
			}
			if got.Tag() {
				t.Error("stale capability survived a pool-served epoch")
			}
			// Churn enough to trigger policy-driven epochs through the
			// pool as well.
			for i := 0; i < 400; i++ {
				c, err := pr.mrs.Malloc(th, 512)
				if err != nil {
					t.Errorf("churn malloc: %v", err)
					return
				}
				if err := pr.mrs.Free(th, c); err != nil {
					t.Errorf("churn free: %v", err)
					return
				}
			}
			pr.mrs.Flush(th)
			finished++
			if finished == 2 {
				pool.Shutdown(th)
			}
		}
	}
	a.p.Spawn("app-a", []int{3}, body(a, 3))
	b.p.Spawn("app-b", []int{0}, body(b, 0))

	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(a.s.Records()) == 0 || len(b.s.Records()) == 0 {
		t.Fatalf("pool ran %d/%d epochs for the two processes",
			len(a.s.Records()), len(b.s.Records()))
	}
	// Neither process spawned its own revoker thread: each has exactly its
	// app thread.
	if len(a.p.Threads()) != 1 || len(b.p.Threads()) != 1 {
		t.Fatalf("processes own %d and %d threads; the pool should own the workers",
			len(a.p.Threads()), len(b.p.Threads()))
	}
}

func TestPoolAttachedServiceRefusesStart(t *testing.T) {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	host := m.NewProcess(1)
	pool := revoke.NewPool(m, host, 1, nil)
	p := m.NewProcess(2)
	s := pool.Attach(p, revoke.Config{Strategy: revoke.Reloaded})
	defer func() {
		if recover() == nil {
			t.Fatal("Start on pool-attached service did not panic")
		}
	}()
	s.Start()
}

// TestPoolShutdownUnderLoad shuts the pool down while its queue is still
// non-empty: a single worker, three services with pending requests, and a
// Shutdown issued immediately after the last submit. The drain contract
// (see Pool.work) says every request accepted before Shutdown still runs
// its epoch — none of the reqPending flags may be dropped, and the run must
// not deadlock.
func TestPoolShutdownUnderLoad(t *testing.T) {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	host := m.NewProcess(1)
	pool := revoke.NewPool(m, host, 1, []int{2})
	pool.Start()
	p := m.NewProcess(2)
	h := alloc.NewHeap(p)
	svcs := []*revoke.Service{
		pool.Attach(p, revoke.Config{Strategy: revoke.CHERIvoke}),
		pool.Attach(p, revoke.Config{Strategy: revoke.CHERIvoke}),
		pool.Attach(p, revoke.Config{Strategy: revoke.CHERIvoke}),
	}
	p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		if _, err := h.Alloc(th, 64); err != nil {
			t.Error(err)
			return
		}
		for _, s := range svcs {
			s.RequestRevocation(th)
		}
		pool.Shutdown(th) // queue still holds all three requests
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, s := range svcs {
		if n := len(s.Records()); n != 1 {
			t.Errorf("service %d ran %d epochs after shutdown-under-load, want 1", i, n)
		}
	}
}

// TestPoolSubmitAfterShutdownPanics pins the other half of the drain
// contract: a request submitted after Shutdown has no worker to serve it
// and must panic rather than be dropped silently.
func TestPoolSubmitAfterShutdownPanics(t *testing.T) {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	host := m.NewProcess(1)
	pool := revoke.NewPool(m, host, 1, []int{2})
	pool.Start()
	p := m.NewProcess(2)
	s := pool.Attach(p, revoke.Config{Strategy: revoke.CHERIvoke})
	p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		pool.Shutdown(th)
		defer func() {
			if recover() == nil {
				t.Error("RequestRevocation on a shut-down pool did not panic")
			}
		}()
		s.RequestRevocation(th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolAttachedMultiWorkerService attaches a service configured with
// Workers > 1 to a pool. Pool-attached services never spawn worker
// threads, so the borrowed pool thread must claim and sweep every slice
// itself; under the old fixed-assignment scheme this deadlocked waiting
// for workers that did not exist.
func TestPoolAttachedMultiWorkerService(t *testing.T) {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	host := m.NewProcess(1)
	pool := revoke.NewPool(m, host, 1, []int{2})
	pool.Start()
	p := m.NewProcess(2)
	h := alloc.NewHeap(p)
	s := pool.Attach(p, revoke.Config{Strategy: revoke.Reloaded, Workers: 4})
	p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		if _, err := h.Alloc(th, 64); err != nil {
			t.Error(err)
			return
		}
		e := s.RequestRevocation(th)
		p.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
		pool.Shutdown(th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.Records()) == 0 {
		t.Fatal("pool-attached multi-worker service ran no epoch")
	}
}

func TestPoolCoalescesDuplicateRequests(t *testing.T) {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	host := m.NewProcess(1)
	pool := revoke.NewPool(m, host, 1, []int{2})
	pool.Start()
	p := m.NewProcess(2)
	h := alloc.NewHeap(p)
	s := pool.Attach(p, revoke.Config{Strategy: revoke.CHERIvoke})
	p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		if _, err := h.Alloc(th, 64); err != nil {
			t.Error(err)
		}
		e := s.RequestRevocation(th)
		s.RequestRevocation(th)
		s.RequestRevocation(th)
		p.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
		pool.Shutdown(th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Records()); n > 2 {
		t.Fatalf("%d epochs for coalesced requests, want ≤ 2", n)
	}
}
