package revoke

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/kernel"
	"repro/internal/vm"
)

func newRigCfg(cfg Config) *rig {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(42)
	h := alloc.NewHeap(p)
	s := NewService(p, cfg)
	return &rig{m: m, p: p, h: h, s: s}
}

func TestCornucopiaTwoPassGuarantee(t *testing.T) {
	epochGuarantee(t, CornucopiaTwoPass, 0)
}

func TestCornucopiaTwoPassDoesMoreWork(t *testing.T) {
	// The ablation's claim (§3.1): the second concurrent pass increases
	// total pages visited relative to plain Cornucopia under an active
	// mutator.
	visited := map[Strategy]uint64{}
	for _, strat := range []Strategy{Cornucopia, CornucopiaTwoPass} {
		r := newRig(strat, 0)
		r.runApp(t, func(th *kernel.Thread) {
			arr, err := r.h.Alloc(th, 512<<10)
			if err != nil {
				t.Fatal(err)
			}
			obj, _ := r.h.Alloc(th, 64)
			for off := uint64(0); off < arr.Len(); off += 64 {
				th.StoreCap(arr, off, obj)
			}
			auth, _ := r.h.PaintAuth(obj.Base())
			th.PaintShadow(auth, obj.Base(), obj.Len())
			e := r.s.RequestRevocation(th)
			live, _ := r.h.Alloc(th, 64)
			for i := 0; th.P.Epoch() <= e+1 && i < 500_000; i++ {
				off := (uint64(i) * 13 % (arr.Len() / 16)) * 16
				th.StoreCap(arr, off, live)
			}
			th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
		})
		for _, rec := range r.s.Records() {
			visited[strat] += rec.PagesVisited
		}
	}
	if visited[CornucopiaTwoPass] <= visited[Cornucopia] {
		t.Errorf("two-pass visited %d pages, plain %d; expected more total work",
			visited[CornucopiaTwoPass], visited[Cornucopia])
	}
}

func TestAlwaysTrapSkipsCleanPages(t *testing.T) {
	r := newRigCfg(Config{Strategy: Reloaded, RevokerCores: []int{2}, AlwaysTrapCleanPages: true})
	r.runApp(t, func(th *kernel.Thread) {
		// A heap with many clean (data-only) pages and one dirty page.
		data, err := r.h.Alloc(th, 512<<10)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.Store(data, 0, data.Len()); err != nil {
			t.Fatal(err)
		}
		holder, _ := r.h.Alloc(th, 64)
		victim, _ := r.h.Alloc(th, 64)
		th.StoreCap(holder, 0, victim)
		auth, _ := r.h.PaintAuth(victim.Base())
		th.PaintShadow(auth, victim.Base(), victim.Len())

		// First epoch: clean pages are armed and skipped.
		e := r.s.RequestRevocation(th)
		th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
		got, err := th.LoadCap(holder, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag() {
			t.Fatal("revocation guarantee violated under always-trap")
		}
		rec1 := r.s.Records()[0]
		if rec1.PagesSkippedClean == 0 {
			t.Fatal("no clean pages skipped")
		}

		// Second epoch: the armed pages cost nothing again, and the
		// guarantee still holds for a fresh quarantined object.
		victim2, _ := r.h.Alloc(th, 64)
		th.StoreCap(holder, 0, victim2)
		auth2, _ := r.h.PaintAuth(victim2.Base())
		th.PaintShadow(auth2, victim2.Base(), victim2.Len())
		e2 := r.s.RequestRevocation(th)
		th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e2))
		got2, err := th.LoadCap(holder, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got2.Tag() {
			t.Fatal("second-epoch guarantee violated under always-trap")
		}

		// Storing a capability to an armed page and loading it back must
		// work: the trap resolves by installing the current generation.
		pte, ok := th.P.AS.Lookup(data.Base())
		if !ok {
			t.Fatal("data page unmapped")
		}
		if pte.Bits&vm.PTECapLoadTrap == 0 {
			t.Fatal("clean data page not armed with always-trap")
		}
		if err := th.StoreCap(data, 0, holder); err != nil {
			t.Fatal(err)
		}
		back, err := th.LoadCap(data, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Tag() {
			t.Fatal("capability lost through always-trap page")
		}
		if pte.Bits&vm.PTECapLoadTrap != 0 {
			t.Fatal("trap disposition not cleared by resolution")
		}
	})
}

func TestAlwaysTrapReducesBackgroundWork(t *testing.T) {
	// Many clean pages: the second epoch under always-trap should visit
	// far fewer pages than without it.
	run := func(alwaysTrap bool) (visited2 uint64) {
		r := newRigCfg(Config{Strategy: Reloaded, RevokerCores: []int{2}, AlwaysTrapCleanPages: alwaysTrap})
		r.runApp(t, func(th *kernel.Thread) {
			data, _ := r.h.Alloc(th, 1<<20)
			th.Store(data, 0, data.Len())
			holder, _ := r.h.Alloc(th, 64)
			for round := 0; round < 2; round++ {
				v, _ := r.h.Alloc(th, 64)
				th.StoreCap(holder, 0, v)
				auth, _ := r.h.PaintAuth(v.Base())
				th.PaintShadow(auth, v.Base(), v.Len())
				e := r.s.RequestRevocation(th)
				th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
			}
		})
		recs := r.s.Records()
		last := recs[len(recs)-1]
		return last.PagesVisited
	}
	plain := run(false)
	trapped := run(true)
	if trapped*4 > plain {
		t.Errorf("always-trap visited %d pages in the steady epoch, plain %d; expected a large reduction",
			trapped, plain)
	}
}
