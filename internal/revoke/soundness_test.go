package revoke_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/quarantine"
	"repro/internal/revoke"
	"repro/internal/vm"
)

// TestRandomizedEpochSoundness drives a random allocate/store/free workload
// through the full mrs + revoker stack under every strategy, then audits
// the entire machine: after the final quarantine flush, no tagged
// capability anywhere in simulated memory, any register file, or any
// kernel hoard may point into address space that was ever left painted,
// and the shadow bitmap must be empty.
func TestRandomizedEpochSoundness(t *testing.T) {
	for _, strat := range []revoke.Strategy{revoke.CHERIvoke, revoke.Cornucopia, revoke.CornucopiaTwoPass, revoke.Reloaded} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%v/seed%d", strat, seed), func(t *testing.T) {
				runSoundness(t, strat, seed, 0)
			})
		}
	}
	t.Run("revoke.Reloaded/workers", func(t *testing.T) { runSoundness(t, revoke.Reloaded, 7, 3) })
}

func runSoundness(t *testing.T, strat revoke.Strategy, seed int64, workers int) {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(seed)
	h := alloc.NewHeap(p)
	svc := revoke.NewService(p, revoke.Config{Strategy: strat, RevokerCores: []int{2}, Workers: workers})
	mrs := quarantine.New(h, svc, quarantine.Policy{
		HeapFraction: 0.25, MinBytes: 8 << 10, BlockFactor: 2,
	})
	svc.Start()
	hoard := p.NewHoard("random")

	p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		rng := rand.New(rand.NewSource(seed))
		var live []ca.Capability // tracked app state; also mirrored in regs
		slotOf := func(i int) int { return i % 48 }
		for op := 0; op < 3000; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // allocate
				size := uint64(16 + rng.Intn(1200))
				c, err := mrs.Malloc(th, size)
				if err != nil {
					t.Errorf("malloc: %v", err)
					return
				}
				live = append(live, c)
				th.SetReg(slotOf(len(live)-1), c)
			case 4, 5, 6: // free a random live object
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				if err := mrs.Free(th, live[i]); err != nil {
					t.Errorf("free: %v", err)
					return
				}
				live = append(live[:i], live[i+1:]...)
			case 7: // store a capability into another live object
				if len(live) < 2 {
					continue
				}
				src := live[rng.Intn(len(live))]
				dst := live[rng.Intn(len(live))]
				if dst.Len() >= 2*ca.GranuleSize {
					if err := th.StoreCap(dst, ca.GranuleSize, src); err != nil {
						t.Errorf("storecap: %v", err)
						return
					}
				}
			case 8: // stash a capability in the kernel hoard
				if len(live) == 0 {
					continue
				}
				hoard.Put(rng.Intn(16), live[rng.Intn(len(live))])
			case 9: // load a capability back (exercises the barrier)
				if len(live) == 0 {
					continue
				}
				src := live[rng.Intn(len(live))]
				if src.Len() >= 2*ca.GranuleSize {
					if _, err := th.LoadCap(src, ca.GranuleSize); err != nil {
						t.Errorf("loadcap: %v", err)
						return
					}
				}
			}
		}
		// Free everything and force all quarantine to drain.
		for _, c := range live {
			if err := mrs.Free(th, c); err != nil {
				t.Errorf("teardown free: %v", err)
			}
		}
		mrs.Flush(th)

		// One more epoch so capabilities painted in the final batch are
		// certainly processed.
		e := svc.RequestRevocation(th)
		p.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))

		svc.Shutdown(th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	// Audit: the shadow bitmap is empty and no tagged capability anywhere
	// points at a painted granule (trivially true if the bitmap is empty —
	// so also audit that every surviving tagged capability's target is
	// still a live allocation in the heap).
	if got := p.Shadow.PaintedGranules(); got != 0 {
		t.Fatalf("%d granules still painted after flush", got)
	}
	audit := func(c ca.Capability, where string) {
		if !c.Tag() {
			return
		}
		if _, _, ok := h.Lookup(c.Base()); !ok {
			t.Errorf("%s: tagged capability %v survives but its target is not a live allocation", where, c)
		}
	}
	p.AS.ForEachMappedPage(func(vpn uint64, pte *vm.PTE) bool {
		m.Phys.SweepTags(pte.Frame, func(g int, c ca.Capability) bool {
			// Skip the allocator's own chunk-root style caps: workload
			// capabilities all live inside chunk data, which Lookup covers.
			audit(c, fmt.Sprintf("page %#x granule %d", vpn<<vm.PageShift, g))
			return false
		})
		return true
	})
	for _, th := range p.Threads() {
		for i := 0; i < th.RegCount(); i++ {
			audit(th.Reg(i), fmt.Sprintf("register %d", i))
		}
	}
	for i := 0; i < hoard.Len(); i++ {
		audit(hoard.Get(i), fmt.Sprintf("hoard slot %d", i))
	}
}
