package revoke

import (
	"strings"
	"testing"
)

func TestStrategyStringUnknown(t *testing.T) {
	if got := Strategy(99).String(); got != "Strategy(99)" {
		t.Fatalf("Strategy(99).String() = %q", got)
	}
	if got := Strategy(-1).String(); got != "Strategy(-1)" {
		t.Fatalf("Strategy(-1).String() = %q", got)
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("ParseStrategy(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if _, err := ParseStrategy("laser-sweep"); err == nil {
		t.Fatal("ParseStrategy accepted an unknown name")
	}
}

func TestConfigValidateRejectsOutOfRange(t *testing.T) {
	for _, bad := range []Strategy{-1, Strategy(5), Strategy(99)} {
		err := Config{Strategy: bad}.Validate()
		if err == nil {
			t.Fatalf("Validate accepted strategy %d", int(bad))
		}
		if !strings.Contains(err.Error(), "invalid strategy") {
			t.Fatalf("unexpected error for strategy %d: %v", int(bad), err)
		}
	}
	if err := (Config{Strategy: Reloaded, Workers: -1}).Validate(); err == nil {
		t.Fatal("Validate accepted a negative worker count")
	}
	for _, s := range Strategies() {
		if err := (Config{Strategy: s}).Validate(); err != nil {
			t.Fatalf("Validate rejected %s: %v", s, err)
		}
	}
}

func TestNewServicePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewService accepted an invalid config")
		}
	}()
	NewService(nil, Config{Strategy: Strategy(42)})
}
