// Package revoke implements global subset capability revocation (§2.2) in
// four strategies:
//
//   - CHERIvoke: a single stop-the-world sweep of all capability-carrying
//     pages, the baseline of Xia et al.
//   - Cornucopia: a concurrent sweep of capability-dirty pages followed by
//     a stop-the-world re-sweep of pages re-dirtied meanwhile (§2.2.5).
//   - Reloaded: the paper's contribution — a near-instant stop-the-world
//     phase (bump per-core capability load generations, scan register files
//     and kernel hoards), then a fully concurrent background sweep racing
//     self-healing per-page load-barrier faults (§3.2, §4.3).
//   - PaintSync: no sweeping at all; epochs complete immediately. This
//     measures quarantine machinery costs in isolation (§5's "Paint+sync").
//
// All strategies share the epoch protocol of §2.2.3: the public counter is
// odd while an epoch is in flight, and memory painted at epoch e may be
// reused once the counter reaches e+2 (e even) or e+3 (e odd).
package revoke

import (
	"fmt"
	"strings"

	"repro/internal/bus"
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Strategy selects the revocation algorithm.
type Strategy int

// The implemented strategies.
const (
	// PaintSync quarantines and synchronizes epochs but never sweeps.
	PaintSync Strategy = iota
	// CHERIvoke sweeps everything with the world stopped.
	CHERIvoke
	// Cornucopia sweeps concurrently, then re-sweeps re-dirtied pages with
	// the world stopped.
	Cornucopia
	// Reloaded arms the per-page capability load barrier and sweeps in the
	// background.
	Reloaded
	// CornucopiaTwoPass is the §3.1 ablation: Cornucopia with a second
	// concurrent pass over re-dirtied pages before stopping the world. The
	// paper (citing Cornucopia's fig. 15) reports it reduces pause times
	// very little while increasing total work and DRAM traffic.
	CornucopiaTwoPass
)

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case PaintSync:
		return "Paint+sync"
	case CHERIvoke:
		return "CHERIvoke"
	case Cornucopia:
		return "Cornucopia"
	case Reloaded:
		return "Reloaded"
	case CornucopiaTwoPass:
		return "Cornucopia-2pass"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Valid reports whether s names an implemented strategy.
func (s Strategy) Valid() bool { return s >= PaintSync && s <= CornucopiaTwoPass }

// Strategies lists every implemented strategy in declaration order.
func Strategies() []Strategy {
	return []Strategy{PaintSync, CHERIvoke, Cornucopia, Reloaded, CornucopiaTwoPass}
}

// ParseStrategy resolves a strategy from its display name or a common
// lower-case alias, rejecting anything it does not implement.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "paintsync", "paint+sync", "paint-sync":
		return PaintSync, nil
	case "cherivoke":
		return CHERIvoke, nil
	case "cornucopia":
		return Cornucopia, nil
	case "reloaded", "cornucopia-reloaded":
		return Reloaded, nil
	case "cornucopia-2pass", "cornucopia2pass", "twopass", "2pass":
		return CornucopiaTwoPass, nil
	}
	return 0, fmt.Errorf("revoke: unknown strategy %q", name)
}

// Config parameterizes a revocation Service.
type Config struct {
	Strategy Strategy
	// RevokerCores pins the background revoker thread (nil = unpinned, as
	// in the gRPC experiment; the SPEC and pgbench experiments pin to core
	// 2).
	RevokerCores []int
	// Workers is the number of background sweep threads (§7.1). Zero or
	// one means the classic single-threaded revoker.
	Workers int
	// AlwaysTrapCleanPages enables the §7.6 PTE disposition for Reloaded:
	// capability-clean pages are armed with an always-trap bit once and
	// then skipped entirely by later background passes, instead of having
	// their generation refreshed every epoch.
	AlwaysTrapCleanPages bool
}

// Validate rejects malformed configurations; construction goes through it.
func (c Config) Validate() error {
	if !c.Strategy.Valid() {
		return fmt.Errorf("revoke: invalid strategy %s", c.Strategy)
	}
	if c.Workers < 0 {
		return fmt.Errorf("revoke: negative worker count %d", c.Workers)
	}
	return nil
}

// EpochObserver watches epoch boundaries. The soundness oracle
// (internal/oracle) implements it to audit machine-wide invariants at the
// instants the protocol promises them; both calls run with no intervening
// virtual-time yield, so observers see a consistent machine.
type EpochObserver interface {
	// EpochBegin fires right after the opening counter advance (epoch is
	// the new, odd value).
	EpochBegin(th *kernel.Thread, epoch uint64)
	// EpochEnd fires right after the closing counter advance, with the
	// completed record.
	EpochEnd(th *kernel.Thread, rec *EpochRecord)
}

// FaultHooks are optional injection points inside the revoker
// (internal/fault). Each is consulted at its site when non-nil; all nil
// means no faults.
type FaultHooks struct {
	// WorkerCrash is consulted by a background sweep worker before each
	// page; true kills the worker mid-slice. The service thread reclaims
	// the abandoned remainder and respawns a replacement.
	WorkerCrash func() bool
	// CrashStallCycles is how long a crashing worker hangs before its
	// slice is abandoned (the stall half of "stalls and crashes").
	CrashStallCycles uint64
	// PublishDelay returns extra cycles the service idles between
	// finishing an epoch's work and publishing the closing counter
	// advance (0 = none). Allocators keep blocking on the stale counter
	// for the duration.
	PublishDelay func() uint64
}

// RecoveryStats counts the revoker's abort-and-retry actions over the
// service's lifetime. All zero in normal operation.
type RecoveryStats struct {
	// SlicesReclaimed counts crashed workers' sweep slices re-swept by
	// the service thread.
	SlicesReclaimed uint64 `json:"slices_reclaimed,omitempty"`
	// WorkersRespawned counts replacement sweep workers spawned after a
	// crash.
	WorkersRespawned uint64 `json:"workers_respawned,omitempty"`
	// ShootdownRetries counts TLB shootdown broadcasts re-issued after an
	// incomplete-delivery verify.
	ShootdownRetries uint64 `json:"shootdown_retries,omitempty"`
	// EpochRetries counts end-of-epoch verify failures that re-swept
	// stale pages.
	EpochRetries uint64 `json:"epoch_retries,omitempty"`
	// PublishDelays counts absorbed epoch-counter publication delays.
	PublishDelays uint64 `json:"publish_delays,omitempty"`
}

// Total sums all recovery actions.
func (r RecoveryStats) Total() uint64 {
	return r.SlicesReclaimed + r.WorkersRespawned + r.ShootdownRetries + r.EpochRetries + r.PublishDelays
}

// KindRecovery trace Arg values: which recovery action fired.
const (
	RecoverySliceReclaim uint64 = iota + 1
	RecoveryWorkerRespawn
	RecoveryShootdownReissue
	RecoveryEpochResweep
	RecoveryPublishDelay
)

// Abort-and-retry bounds: retries per verify failure, and the base
// simulated-time backoff (doubled per attempt) charged before each retry.
const (
	maxShootdownRetries   = 3
	maxEpochRetries       = 3
	recoveryBackoffCycles = 2_000
)

// EpochRecord captures one revocation epoch's phase timing and work.
type EpochRecord struct {
	// Epoch is the (odd) counter value during this pass.
	Epoch uint64
	// StartCycle and EndCycle bracket the whole pass.
	StartCycle, EndCycle uint64
	// STWCycles is the stop-the-world phase duration.
	STWCycles uint64
	// ConcurrentCycles is the concurrent/background phase duration.
	ConcurrentCycles uint64
	// FaultCount and FaultCycles accumulate Reloaded's application-side
	// load-barrier faults during this epoch.
	FaultCount, FaultCycles uint64
	// PagesVisited, CapsVisited and CapsRevoked count sweep work; for
	// Cornucopia, PagesResweptSTW counts the re-dirtied pages swept with
	// the world stopped.
	PagesVisited, PagesResweptSTW uint64
	CapsVisited, CapsRevoked      uint64
	// PagesSkippedClean counts pages the §7.6 always-trap disposition let
	// the background pass skip outright.
	PagesSkippedClean uint64
	// SlicesReclaimed, WorkersRespawned, ShootdownRetries and EpochRetries
	// count this epoch's abort-and-retry recovery actions (fault-injection
	// campaigns; all zero in normal operation). PublishDelayCycles is the
	// absorbed epoch-counter publication delay.
	SlicesReclaimed    uint64 `json:",omitempty"`
	WorkersRespawned   uint64 `json:",omitempty"`
	ShootdownRetries   uint64 `json:",omitempty"`
	EpochRetries       uint64 `json:",omitempty"`
	PublishDelayCycles uint64 `json:",omitempty"`
}

// Service runs revocation for one process. It owns the background revoker
// thread(s) and implements the load-barrier fault handler when the strategy
// is Reloaded.
type Service struct {
	P   *kernel.Process
	cfg Config

	reqEv    *sim.Event
	workEv   *sim.Event
	workDone *sim.Event

	reqPending bool
	shutdown   bool

	records []EpochRecord
	cur     *EpochRecord

	// faultBase tracks kernel GenFault counters at epoch start so the
	// record holds per-epoch deltas.
	faultBase       uint64
	faultCyclesBase uint64

	// pool, when non-nil, serves this service's requests from the shared
	// in-kernel worker pool (§7.1) instead of a dedicated thread.
	pool *Pool

	// deadResv holds mmap-level quarantined reservations (§6.2) with the
	// epoch counter value they may be released at.
	deadResv []deadReservation

	// worker coordination (§7.1). Slices are claimed dynamically: whoever
	// is free — a worker thread or the service thread itself — takes the
	// next unclaimed slice, so the epoch converges even if some (or all)
	// workers are absent: never spawned for a pool-attached service, or
	// already exited at shutdown.
	workSlices [][]pageRef
	workSeq    int
	workNext   int // next unclaimed slice index
	workLeft   int // slices not yet fully swept
	workGen    uint8

	// abort-and-retry recovery state. abandoned holds the unswept
	// remainders of crashed workers' slices until the service thread
	// reclaims them; respawned counts replacement workers (for naming).
	abandoned [][]pageRef
	respawned int

	obs   EpochObserver
	hooks FaultHooks
	recov RecoveryStats
}

type deadReservation struct {
	r      *vm.Reservation
	auth   ca.Capability
	target uint64
}

type pageRef struct {
	vpn uint64
	pte *vm.PTE
}

// NewService creates (but does not start) a revocation service. It panics
// on a configuration Validate rejects; callers taking strategy names from
// user input should validate first.
func NewService(p *kernel.Process, cfg Config) *Service {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Service{
		P:        p,
		cfg:      cfg,
		reqEv:    p.M.Eng.NewEvent(),
		workEv:   p.M.Eng.NewEvent(),
		workDone: p.M.Eng.NewEvent(),
	}
	if cfg.Strategy == Reloaded {
		p.SetLoadBarrier(s)
	}
	return s
}

// Start spawns the revoker thread (and §7.1 worker threads), which run
// until Shutdown. Services attached to a shared Pool must not be started:
// the pool's workers serve them.
func (s *Service) Start() {
	if s.pool != nil {
		panic("revoke: Start on a pool-attached service")
	}
	s.P.Spawn("revoker", s.cfg.RevokerCores, func(th *kernel.Thread) {
		th.Agent = bus.AgentRevoker
		s.P.M.Telem.SetBase(th.Sim, telemetry.CompRevoker)
		s.run(th)
	})
	for i := 1; i < s.cfg.Workers; i++ {
		i := i
		s.P.Spawn(fmt.Sprintf("revoker-w%d", i), s.cfg.RevokerCores, func(th *kernel.Thread) {
			th.Agent = bus.AgentRevoker
			s.P.M.Telem.SetBase(th.Sim, telemetry.CompRevoker)
			s.worker(th, i)
		})
	}
}

// RequestRevocation asks the service to run an epoch; it returns
// immediately with the epoch counter at the time of the request. Redundant
// requests coalesce.
func (s *Service) RequestRevocation(th *kernel.Thread) uint64 {
	e := s.P.Epoch()
	s.reqPending = true
	if s.pool != nil {
		s.pool.submit(th, s)
	} else {
		s.reqEv.Broadcast(th.Sim)
	}
	return e
}

// Shutdown stops the revoker thread(s) after any in-flight work.
func (s *Service) Shutdown(th *kernel.Thread) {
	s.shutdown = true
	s.reqEv.Broadcast(th.Sim)
	s.workEv.Broadcast(th.Sim)
}

// Records returns the per-epoch phase records.
func (s *Service) Records() []EpochRecord { return s.records }

// Strategy returns the configured strategy.
func (s *Service) Strategy() Strategy { return s.cfg.Strategy }

// SetObserver installs an epoch-boundary observer (nil removes it).
func (s *Service) SetObserver(o EpochObserver) { s.obs = o }

// SetFaultHooks installs the revoker-side fault-injection hooks.
func (s *Service) SetFaultHooks(h FaultHooks) { s.hooks = h }

// Recovery returns the service's lifetime abort-and-retry counters.
func (s *Service) Recovery() RecoveryStats { return s.recov }

// QuarantinedReservation reports whether addr lies inside a dead mmap-level
// reservation (§6.2) still held in quarantine, returning its span. The
// soundness oracle uses it to attribute painted granules outside the heap.
func (s *Service) QuarantinedReservation(addr uint64) (base, length uint64, ok bool) {
	for _, d := range s.deadResv {
		if addr >= d.r.Base && addr < d.r.Base+d.r.Length {
			return d.r.Base, d.r.Length, true
		}
	}
	return 0, 0, false
}

// QuarantineReservation paints and holds a fully-unmapped reservation
// (§6.2) until a future epoch completes, then releases its address space.
func (s *Service) QuarantineReservation(th *kernel.Thread, r *vm.Reservation) {
	// The kernel conjures paint authority over the dead span.
	auth := ca.NewRoot(r.Base, r.Length, ca.PermPaint)
	if err := s.P.Shadow.Paint(auth, r.Base, r.Length); err != nil {
		panic(fmt.Sprintf("revoke: reservation paint: %v", err))
	}
	s.deadResv = append(s.deadResv, deadReservation{
		r: r, auth: auth, target: kernel.EpochClearTarget(s.P.Epoch()),
	})
}

// run is the revoker thread's main loop.
func (s *Service) run(th *kernel.Thread) {
	for {
		th.WaitOn(s.reqEv, func() bool { return s.reqPending || s.shutdown })
		if !s.reqPending {
			if s.shutdown {
				return
			}
			continue
		}
		s.reqPending = false
		s.RevokeEpoch(th)
	}
}

// RevokeEpoch performs one full revocation epoch synchronously on th.
// (The Service's own thread calls this; tests and custom policies may too.)
func (s *Service) RevokeEpoch(th *kernel.Thread) EpochRecord {
	p := s.P
	rec := EpochRecord{StartCycle: th.Sim.Now()}
	stats := p.Stats()
	s.faultBase = stats.GenFaults
	s.faultCyclesBase = stats.GenFaultCycles

	p.AdvanceEpoch(th) // counter becomes odd: pass in flight
	rec.Epoch = p.Epoch()
	s.cur = &rec
	p.M.Trace.Begin(th.Sim.Now(), th.Sim.CoreID(), bus.AgentRevoker,
		trace.KindEpoch, rec.Epoch, 0, 0)
	if s.obs != nil {
		s.obs.EpochBegin(th, rec.Epoch)
	}

	switch s.cfg.Strategy {
	case PaintSync:
		// No sweeping: the epoch completes immediately.
		th.Work(p.M.Costs.Syscall)
	case CHERIvoke:
		s.epochCHERIvoke(th, &rec)
	case Cornucopia:
		s.epochCornucopia(th, &rec)
	case CornucopiaTwoPass:
		s.epochCornucopiaTwoPass(th, &rec)
	case Reloaded:
		s.epochReloaded(th, &rec)
	}

	if s.hooks.PublishDelay != nil {
		// Injected fault: the closing counter advance is held back.
		// Absorption is safe — the sweep is complete, so no new violations
		// can appear while allocators block on the stale counter — but the
		// delay is visible as quarantine back-pressure and is recorded.
		if d := s.hooks.PublishDelay(); d > 0 {
			rec.PublishDelayCycles += d
			s.recov.PublishDelays++
			s.traceRecovery(th, RecoveryPublishDelay, d)
			th.Idle(d)
		}
	}
	stats = p.Stats()
	rec.FaultCount = stats.GenFaults - s.faultBase
	rec.FaultCycles = stats.GenFaultCycles - s.faultCyclesBase
	p.AdvanceEpoch(th) // counter even: pass complete
	rec.EndCycle = th.Sim.Now()
	p.M.Trace.End(rec.EndCycle, th.Sim.CoreID(), bus.AgentRevoker,
		trace.KindEpoch, rec.Epoch, rec.CapsRevoked, rec.PagesVisited)
	if s.obs != nil {
		s.obs.EpochEnd(th, &rec)
	}
	s.cur = nil
	s.records = append(s.records, rec)
	if tl := p.M.Telem; tl.Enabled() {
		tl.Add(telemetry.StdEpochsTotal, 1)
		tl.Add(telemetry.StdSweptPagesTotal, float64(rec.PagesVisited))
		tl.Add(telemetry.StdRevokedCapsTotal, float64(rec.CapsRevoked))
		tl.Observe(telemetry.StdSTWCycles, float64(rec.STWCycles))
		tl.Observe(telemetry.StdEpochCycles, float64(rec.EndCycle-rec.StartCycle))
	}
	s.releaseDeadReservations(th)
	return rec
}

// releaseDeadReservations recycles mmap-quarantined address space whose
// clearance epoch has arrived.
func (s *Service) releaseDeadReservations(th *kernel.Thread) {
	kept := s.deadResv[:0]
	for _, d := range s.deadResv {
		if s.P.Epoch() >= d.target {
			if err := s.P.Shadow.Unpaint(d.auth, d.r.Base, d.r.Length); err != nil {
				panic(fmt.Sprintf("revoke: reservation unpaint: %v", err))
			}
			s.P.AS.ReleaseReservation(d.r)
			th.Work(s.P.M.Costs.Munmap)
		} else {
			kept = append(kept, d)
		}
	}
	s.deadResv = kept
}

// snapshotPages collects the resident pages to sweep, in VA order. If
// dirtyOnly is set, only pages that have ever carried a capability are
// returned (clean pages need no visit under CHERIvoke/Cornucopia, whose
// correctness rests on the store barrier, §2.2.4).
func (s *Service) snapshotPages(dirtyOnly bool) []pageRef {
	var pages []pageRef
	s.P.AS.ForEachMappedPage(func(vpn uint64, pte *vm.PTE) bool {
		if !dirtyOnly || pte.Bits&vm.PTEEverCapDirty != 0 {
			pages = append(pages, pageRef{vpn, pte})
		}
		return true
	})
	return pages
}

// sweepPages sweeps the given pages on th, accumulating into rec.
func (s *Service) sweepPages(th *kernel.Thread, pages []pageRef, rec *EpochRecord) {
	s.P.M.Telem.Enter(th.Sim, telemetry.CompSweep)
	defer s.P.M.Telem.Exit(th.Sim)
	for _, pr := range pages {
		v, r := th.SweepPage(pr.vpn, pr.pte)
		rec.PagesVisited++
		rec.CapsVisited += uint64(v)
		rec.CapsRevoked += uint64(r)
	}
}

// --- CHERIvoke --------------------------------------------------------------

func (s *Service) epochCHERIvoke(th *kernel.Thread, rec *EpochRecord) {
	p := s.P
	t0 := th.Sim.Now()
	p.StopTheWorld(th)
	sc, rv := p.ScanRoots(th)
	rec.CapsVisited += uint64(sc)
	rec.CapsRevoked += uint64(rv)
	s.sweepPages(th, s.snapshotPages(true), rec)
	p.ResumeTheWorld(th)
	rec.STWCycles = th.Sim.Now() - t0
}

// --- Cornucopia (§2.2.5) -----------------------------------------------------

func (s *Service) epochCornucopia(th *kernel.Thread, rec *EpochRecord) {
	p := s.P
	// Phase 1, concurrent: sweep every capability-carrying page while the
	// application runs. SweepPage clears the dirty bit before scanning, so
	// pages the application stores capabilities to afterwards are re-marked.
	t0 := th.Sim.Now()
	s.sweepShared(th, s.snapshotPages(true), rec, 0)
	rec.ConcurrentCycles = th.Sim.Now() - t0

	// Phase 2, stop-the-world: scan thread registers and kernel hoards,
	// then re-sweep the pages re-dirtied during phase 1.
	t1 := th.Sim.Now()
	p.StopTheWorld(th)
	sc, rv := p.ScanRoots(th)
	rec.CapsVisited += uint64(sc)
	rec.CapsRevoked += uint64(rv)
	var redirtied []pageRef
	p.AS.ForEachMappedPage(func(vpn uint64, pte *vm.PTE) bool {
		if pte.Bits&vm.PTECapDirty != 0 {
			redirtied = append(redirtied, pageRef{vpn, pte})
		}
		return true
	})
	before := rec.PagesVisited
	s.sweepPages(th, redirtied, rec)
	rec.PagesResweptSTW = rec.PagesVisited - before
	p.ResumeTheWorld(th)
	rec.STWCycles = th.Sim.Now() - t1
}

// epochCornucopiaTwoPass is the §3.1 ablation: iterate the concurrent
// strategy with a second pass over pages re-dirtied during the first,
// hoping to shrink the stop-the-world re-sweep. The application keeps
// dirtying pages during the second pass too, so the reduction is marginal
// while the total work grows.
func (s *Service) epochCornucopiaTwoPass(th *kernel.Thread, rec *EpochRecord) {
	p := s.P
	t0 := th.Sim.Now()
	s.sweepShared(th, s.snapshotPages(true), rec, 0)
	// Second concurrent pass: whatever got re-dirtied meanwhile.
	var redirtied []pageRef
	p.AS.ForEachMappedPage(func(vpn uint64, pte *vm.PTE) bool {
		if pte.Bits&vm.PTECapDirty != 0 {
			redirtied = append(redirtied, pageRef{vpn, pte})
		}
		return true
	})
	s.sweepShared(th, redirtied, rec, 0)
	rec.ConcurrentCycles = th.Sim.Now() - t0

	t1 := th.Sim.Now()
	p.StopTheWorld(th)
	sc, rv := p.ScanRoots(th)
	rec.CapsVisited += uint64(sc)
	rec.CapsRevoked += uint64(rv)
	redirtied = redirtied[:0]
	p.AS.ForEachMappedPage(func(vpn uint64, pte *vm.PTE) bool {
		if pte.Bits&vm.PTECapDirty != 0 {
			redirtied = append(redirtied, pageRef{vpn, pte})
		}
		return true
	})
	before := rec.PagesVisited
	s.sweepPages(th, redirtied, rec)
	rec.PagesResweptSTW = rec.PagesVisited - before
	p.ResumeTheWorld(th)
	rec.STWCycles = th.Sim.Now() - t1
}

// --- Cornucopia Reloaded (§3.2, §4.3) -----------------------------------------

func (s *Service) epochReloaded(th *kernel.Thread, rec *EpochRecord) {
	p := s.P
	// Phase 1, stop-the-world — brief: toggle the in-core capability load
	// generations (PTEs untouched), shoot down TLBs, and scan register
	// files and kernel hoards. From here on, the application cannot load an
	// unchecked capability: the load barrier is armed.
	t0 := th.Sim.Now()
	p.StopTheWorld(th)
	p.BumpGenerations(th)
	s.verifyShootdown(th, rec)
	p.M.Telem.Observe(telemetry.StdShootdownLatencyCycles, float64(th.Sim.Now()-t0))
	sc, rv := p.ScanRoots(th)
	rec.CapsVisited += uint64(sc)
	rec.CapsRevoked += uint64(rv)
	p.ResumeTheWorld(th)
	rec.STWCycles = th.Sim.Now() - t0

	// Phase 2, background: visit every page whose generation is stale.
	// Application load faults perform the same visit in the foreground,
	// concurrently; visits are idempotent and the PTE generation records
	// who got there first.
	t1 := th.Sim.Now()
	newGen := p.AS.CoreGen(th.Sim.CoreID())
	pages := s.snapshotPages(false)
	s.sweepShared(th, pages, rec, newGen)

	// End-of-epoch verify: every mapped page must now be at the new
	// generation (§7.6 always-trap pages intentionally stay stale). A
	// failed verify — only reachable under fault injection — aborts and
	// re-sweeps the stale remainder with simulated-time backoff.
	for retry := 0; retry < maxEpochRetries; retry++ {
		stale := s.stalePages(newGen)
		if len(stale) == 0 {
			break
		}
		rec.EpochRetries++
		s.recov.EpochRetries++
		s.traceRecovery(th, RecoveryEpochResweep, uint64(len(stale)))
		th.Idle(recoveryBackoffCycles << uint(retry))
		s.sweepShared(th, stale, rec, newGen)
	}
	rec.ConcurrentCycles = th.Sim.Now() - t1
}

// verifyShootdown checks that the BumpGenerations TLB shootdown reached
// every core and re-issues the broadcast (bounded, with backoff) if
// delivery was incomplete. Runs under stop-the-world.
func (s *Service) verifyShootdown(th *kernel.Thread, rec *EpochRecord) {
	p := s.P
	p.M.Telem.Enter(th.Sim, telemetry.CompShootdown)
	defer p.M.Telem.Exit(th.Sim)
	for try := 0; p.AS.ShootdownIncomplete() && try < maxShootdownRetries; try++ {
		rec.ShootdownRetries++
		s.recov.ShootdownRetries++
		s.traceRecovery(th, RecoveryShootdownReissue, uint64(try+1))
		th.Sim.Tick(recoveryBackoffCycles << uint(try))
		th.Sim.Tick(uint64(p.M.Eng.Config().Cores) * p.M.Costs.IPI)
		p.AS.ShootdownAll()
	}
}

// stalePages lists mapped pages still behind newGen, excluding §7.6
// always-trap pages whose staleness is the design.
func (s *Service) stalePages(newGen uint8) []pageRef {
	var stale []pageRef
	s.P.AS.ForEachMappedPage(func(vpn uint64, pte *vm.PTE) bool {
		if pte.Gen != newGen && pte.Bits&vm.PTECapLoadTrap == 0 {
			stale = append(stale, pageRef{vpn, pte})
		}
		return true
	})
	return stale
}

// traceRecovery emits one KindRecovery instant for an abort-and-retry
// action (Arg = Recovery* ordinal, Arg2 = action-specific detail).
func (s *Service) traceRecovery(th *kernel.Thread, action, detail uint64) {
	epoch := uint64(0)
	if s.cur != nil {
		epoch = s.cur.Epoch
	}
	s.P.M.Trace.Instant(th.Sim.Now(), th.Sim.CoreID(), bus.AgentRevoker,
		trace.KindRecovery, epoch, action, detail)
}

// visitReloaded brings one page to the current generation: a content sweep
// if the page may carry capabilities, otherwise just the PTE update
// (§7.6's "unnecessarily taking the pmap lock" cost). Idempotent.
func (s *Service) visitReloaded(th *kernel.Thread, pr pageRef, rec *EpochRecord, newGen uint8) {
	pte := pr.pte
	if pte.Gen == newGen {
		return // foreground fault (or another worker) got here first
	}
	if s.cfg.AlwaysTrapCleanPages && pte.Bits&vm.PTEEverCapDirty == 0 {
		// §7.6: leave the clean page's generation stale behind an
		// always-trap disposition. Arming costs one PTE update the first
		// time; afterwards the page costs the revoker nothing per epoch.
		if pte.Bits&vm.PTECapLoadTrap == 0 {
			pte.Bits |= vm.PTECapLoadTrap
			th.Sim.Tick(s.P.M.Costs.PTEUpdate)
		}
		rec.PagesSkippedClean++
		return
	}
	pte.Bits &^= vm.PTECapLoadTrap
	if pte.Bits&vm.PTEEverCapDirty != 0 {
		v, r := th.SweepPage(pr.vpn, pte)
		rec.PagesVisited++
		rec.CapsVisited += uint64(v)
		rec.CapsRevoked += uint64(r)
		if v == 0 {
			// The page holds no capabilities: note that, so future epochs
			// skip its content (§4.5's clean-page detection).
			pte.Bits &^= vm.PTEEverCapDirty
		}
	} else {
		rec.PagesVisited++
	}
	th.Sim.Tick(s.P.M.Costs.PTEUpdate)
	pte.Gen = newGen
}

// HandleLoadGenFault implements kernel.LoadBarrierHandler: the application
// thread that tripped the barrier sweeps the target page itself and heals
// the PTE (§4.3's foreground work).
func (s *Service) HandleLoadGenFault(th *kernel.Thread, va uint64, pte *vm.PTE) {
	prev := th.Agent
	th.Agent = bus.AgentRevoker
	newGen := th.P.AS.CoreGen(th.Sim.CoreID())
	if pte.Bits&vm.PTECapLoadTrap != 0 && (s.cur == nil || pte.Bits&vm.PTEEverCapDirty == 0) {
		// §7.6 trap resolution: install a PTE with the current generation
		// and drop the always-trap disposition. No sweep is needed — the
		// page was capability-clean when armed, and any capability stored
		// to it since was already checked by the load barrier.
		pte.Bits &^= vm.PTECapLoadTrap
		pte.Gen = newGen
		th.Sim.Tick(th.P.M.Costs.PTEUpdate)
		th.Agent = prev
		return
	}
	rec := s.cur
	if rec == nil {
		// Between this trap being raised and the handler running, the
		// background revoker healed the page AND completed the epoch (the
		// "another visitor got there first" case of §4.3). Nothing to do:
		// the re-executed load sees the current generation. A genuinely
		// stale page with no epoch in flight would be a broken invariant.
		if pte.Gen != newGen {
			panic(fmt.Sprintf("revoke: stale page %#x (gen %d vs %d) outside a revocation epoch",
				va, pte.Gen, newGen))
		}
		th.Agent = prev
		return
	}
	th.P.M.Telem.Enter(th.Sim, telemetry.CompSweep)
	s.visitReloaded(th, pageRef{va >> vm.PageShift, pte}, rec, newGen)
	th.P.M.Telem.Exit(th.Sim)
	th.Agent = prev
}

// --- shared/background sweeping (§7.1) ----------------------------------------

// sweepShared distributes the page list over the worker pool (if any) or
// sweeps inline. newGen selects Reloaded's visit (non-zero semantics: pass
// the generation) versus Cornucopia's plain sweep (gen handling off, pass
// 0 and use plain SweepPage); we disambiguate with the strategy.
//
// With Workers > 1 the page list is partitioned into Workers slices which
// are claimed dynamically: the broadcast wakes the worker threads, and the
// service thread drains alongside them. When Workers exceeds the page
// count the tail slices are empty — each is still claimed and counted, so
// workLeft converges. If no worker thread ever claims (the service is
// pool-attached, or workers already exited at shutdown) the service
// thread drains every slice itself; the epoch never deadlocks.
func (s *Service) sweepShared(th *kernel.Thread, pages []pageRef, rec *EpochRecord, newGen uint8) {
	if s.cfg.Workers <= 1 {
		s.sweepSlice(th, pages, rec, newGen, 0, false)
		return
	}
	n := s.cfg.Workers
	s.workSlices = make([][]pageRef, n)
	for i := range s.workSlices {
		lo := len(pages) * i / n
		hi := len(pages) * (i + 1) / n
		s.workSlices[i] = pages[lo:hi]
	}
	s.workNext = 0
	s.workLeft = n
	s.workGen = newGen
	s.workSeq++
	s.workEv.Broadcast(th.Sim)
	// Let the woken workers reach their run queues before claiming slices
	// ourselves: the engine runs a thread up to its skew quantum, so
	// without this wakeup-latency idle a short sweep would be fully
	// drained by the service thread before any worker is scheduled.
	th.Idle(s.P.M.Costs.IPI)
	s.drainSlices(th, rec, newGen, false)
	for {
		th.WaitOn(s.workDone, func() bool {
			return s.workLeft == 0 || len(s.abandoned) > 0
		})
		if len(s.abandoned) == 0 {
			break
		}
		s.reclaimAbandoned(th, rec, newGen)
	}
	s.workSlices = nil
}

// reclaimAbandoned is the abort-and-retry path for crashed sweep workers:
// the service thread re-sweeps each abandoned remainder itself (its own
// visits cannot crash) after a simulated-time backoff, then spawns a
// replacement worker for the casualty.
func (s *Service) reclaimAbandoned(th *kernel.Thread, rec *EpochRecord, newGen uint8) {
	for len(s.abandoned) > 0 {
		rest := s.abandoned[0]
		s.abandoned = s.abandoned[1:]
		rec.SlicesReclaimed++
		s.recov.SlicesReclaimed++
		s.traceRecovery(th, RecoverySliceReclaim, uint64(len(rest)))
		th.Idle(recoveryBackoffCycles)
		s.sweepSlice(th, rest, rec, newGen, s.cfg.Workers+s.respawned, false)
		s.workLeft--
		if s.workLeft == 0 {
			s.workDone.Broadcast(th.Sim)
		}
		s.respawnWorker(th, rec)
	}
}

// respawnWorker starts a replacement background sweep worker after a
// crash. The replacement joins the current epoch's pool immediately and
// serves later epochs like an original worker.
func (s *Service) respawnWorker(th *kernel.Thread, rec *EpochRecord) {
	s.respawned++
	idx := s.cfg.Workers - 1 + s.respawned
	rec.WorkersRespawned++
	s.recov.WorkersRespawned++
	s.traceRecovery(th, RecoveryWorkerRespawn, uint64(idx))
	s.P.Spawn(fmt.Sprintf("revoker-w%d", idx), s.cfg.RevokerCores, func(wth *kernel.Thread) {
		wth.Agent = bus.AgentRevoker
		s.P.M.Telem.SetBase(wth.Sim, telemetry.CompRevoker)
		s.worker(wth, idx)
	})
}

// sweepSlice sweeps one slice with the strategy's visit, bracketed by a
// per-worker trace span (arg = slice/worker index, arg2 = pages). When
// canCrash is set, the injected WorkerCrash hook is consulted before each
// page; on a hit the worker stalls, then dies, returning the unswept
// remainder for the service thread to reclaim.
func (s *Service) sweepSlice(th *kernel.Thread, slice []pageRef, rec *EpochRecord, newGen uint8, idx int, canCrash bool) (rest []pageRef, crashed bool) {
	tr := s.P.M.Trace
	tr.Begin(th.Sim.Now(), th.Sim.CoreID(), bus.AgentRevoker,
		trace.KindSweep, rec.Epoch, uint64(idx), uint64(len(slice)))
	s.P.M.Telem.Enter(th.Sim, telemetry.CompSweep)
	defer s.P.M.Telem.Exit(th.Sim)
	for j, pr := range slice {
		if canCrash && s.hooks.WorkerCrash != nil && s.hooks.WorkerCrash() {
			if s.hooks.CrashStallCycles > 0 {
				th.Idle(s.hooks.CrashStallCycles)
			}
			tr.End(th.Sim.Now(), th.Sim.CoreID(), bus.AgentRevoker,
				trace.KindSweep, rec.Epoch, uint64(idx), uint64(j))
			return slice[j:], true
		}
		if s.cfg.Strategy == Reloaded {
			s.visitReloaded(th, pr, rec, newGen)
		} else {
			v, r := th.SweepPage(pr.vpn, pr.pte)
			rec.PagesVisited++
			rec.CapsVisited += uint64(v)
			rec.CapsRevoked += uint64(r)
		}
	}
	tr.End(th.Sim.Now(), th.Sim.CoreID(), bus.AgentRevoker,
		trace.KindSweep, rec.Epoch, uint64(idx), uint64(len(slice)))
	return nil, false
}

// drainSlices claims and sweeps unclaimed slices until none remain. The
// claim (read + increment, no intervening virtual-time yield) is atomic
// under the simulator's one-thread-at-a-time execution, so each slice is
// swept exactly once and workLeft is decremented exactly once per slice.
// A crashed slice is NOT decremented here: its remainder moves to
// abandoned (workDone wakes the service thread, whose reclaim decrements
// after the re-sweep) and drainSlices reports the crash to its caller.
func (s *Service) drainSlices(th *kernel.Thread, rec *EpochRecord, newGen uint8, canCrash bool) bool {
	for s.workNext < len(s.workSlices) {
		i := s.workNext
		s.workNext++
		rest, crashed := s.sweepSlice(th, s.workSlices[i], rec, newGen, i, canCrash)
		if crashed {
			s.abandoned = append(s.abandoned, rest)
			s.workDone.Broadcast(th.Sim)
			return true
		}
		s.workLeft--
		if s.workLeft == 0 {
			s.workDone.Broadcast(th.Sim)
		}
	}
	return false
}

// worker is the §7.1 background sweep worker loop. In-flight work is
// drained before shutdown is honored: a Shutdown racing an epoch must not
// strand unclaimed slices, or the service thread would wait on workDone
// forever. An injected crash exits the loop for good; the service thread
// reclaims the abandoned slice and respawns a replacement.
func (s *Service) worker(th *kernel.Thread, idx int) {
	seen := 0
	for {
		th.WaitOn(s.workEv, func() bool {
			return s.shutdown || s.workSeq > seen
		})
		if s.workSeq > seen {
			seen = s.workSeq
			if s.drainSlices(th, s.cur, s.workGen, true) {
				return
			}
			continue
		}
		if s.shutdown {
			return
		}
	}
}
