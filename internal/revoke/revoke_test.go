package revoke

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/vm"
)

// rig wires a machine, process, heap and revocation service together.
type rig struct {
	m *kernel.Machine
	p *kernel.Process
	h *alloc.Heap
	s *Service
}

func newRig(strategy Strategy, workers int) *rig {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(42)
	h := alloc.NewHeap(p)
	s := NewService(p, Config{Strategy: strategy, RevokerCores: []int{2}, Workers: workers})
	return &rig{m: m, p: p, h: h, s: s}
}

// runApp runs fn as the app thread on core 3 with the service started, and
// shuts the service down when fn returns.
func (r *rig) runApp(t *testing.T, fn func(th *kernel.Thread)) {
	t.Helper()
	r.s.Start()
	r.p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		fn(th)
		r.s.Shutdown(th)
	})
	if err := r.m.Run(); err != nil {
		t.Fatal(err)
	}
}

// quarantineObject allocates an object, stores a capability to it in
// simulated memory and a register, paints it, and returns the holder
// location. Returns (holder capability, object).
func quarantineObject(t *testing.T, th *kernel.Thread, h *alloc.Heap) (holder, obj ca.Capability) {
	t.Helper()
	var err error
	holder, err = h.Alloc(th, 64)
	if err != nil {
		t.Fatal(err)
	}
	obj, err = h.Alloc(th, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.StoreCap(holder, 0, obj); err != nil {
		t.Fatal(err)
	}
	th.SetReg(0, obj)
	auth, ok := h.PaintAuth(obj.Base())
	if !ok {
		t.Fatal("no paint authority")
	}
	if err := th.PaintShadow(auth, obj.Base(), obj.Len()); err != nil {
		t.Fatal(err)
	}
	return holder, obj
}

// epochGuarantee verifies the central guarantee for a strategy: after one
// full epoch, capabilities to painted memory are gone from memory and
// registers.
func epochGuarantee(t *testing.T, strategy Strategy, workers int) {
	r := newRig(strategy, workers)
	r.runApp(t, func(th *kernel.Thread) {
		holder, obj := quarantineObject(t, th, r.h)
		e := r.s.RequestRevocation(th)
		th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))

		got, err := th.LoadCap(holder, 0)
		if err != nil {
			t.Errorf("%v: load after epoch: %v", strategy, err)
		}
		if got.Tag() {
			t.Errorf("%v: stale capability in memory survived the epoch", strategy)
		}
		if th.Reg(0).Tag() {
			t.Errorf("%v: stale capability in register survived the epoch", strategy)
		}
		_ = obj
	})
	if strategy != PaintSync {
		recs := r.s.Records()
		if len(recs) == 0 {
			t.Fatalf("%v: no epoch records", strategy)
		}
		var revoked uint64
		for _, rec := range recs {
			revoked += rec.CapsRevoked
		}
		if revoked < 2 {
			t.Errorf("%v: revoked %d capabilities, want ≥ 2 (memory + register)", strategy, revoked)
		}
	}
}

func TestCHERIvokeGuarantee(t *testing.T)  { epochGuarantee(t, CHERIvoke, 0) }
func TestCornucopiaGuarantee(t *testing.T) { epochGuarantee(t, Cornucopia, 0) }
func TestReloadedGuarantee(t *testing.T)   { epochGuarantee(t, Reloaded, 0) }
func TestReloadedGuaranteeMultiWorker(t *testing.T) {
	// §7.1: parallel background revocation preserves the guarantee.
	epochGuarantee(t, Reloaded, 3)
}
func TestCornucopiaGuaranteeMultiWorker(t *testing.T) {
	epochGuarantee(t, Cornucopia, 2)
}

func TestPaintSyncDoesNotRevoke(t *testing.T) {
	r := newRig(PaintSync, 0)
	r.runApp(t, func(th *kernel.Thread) {
		holder, _ := quarantineObject(t, th, r.h)
		e := r.s.RequestRevocation(th)
		th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
		got, err := th.LoadCap(holder, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Tag() {
			t.Fatal("Paint+sync revoked a capability; it must not sweep")
		}
	})
}

func TestEpochCounterOddDuringPass(t *testing.T) {
	r := newRig(CHERIvoke, 0)
	r.runApp(t, func(th *kernel.Thread) {
		if e := r.p.Epoch(); e != 0 {
			t.Fatalf("initial epoch = %d", e)
		}
		e := r.s.RequestRevocation(th)
		th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
		if e := r.p.Epoch(); e%2 != 0 {
			t.Fatalf("epoch %d odd after completion", e)
		}
		recs := r.s.Records()
		if len(recs) != 1 || recs[0].Epoch%2 != 1 {
			t.Fatalf("in-flight epoch number %d not odd", recs[0].Epoch)
		}
	})
}

func TestReloadedSTWMuchShorterThanCornucopia(t *testing.T) {
	// Identical pointer-dense heaps with an ACTIVE mutator during the
	// epoch (the paper's scenario) and compare stop-the-world durations:
	// Reloaded ≪ Cornucopia < CHERIvoke.
	stw := map[Strategy]uint64{}
	for _, strat := range []Strategy{CHERIvoke, Cornucopia, Reloaded} {
		r := newRig(strat, 0)
		r.runApp(t, func(th *kernel.Thread) {
			// 512 KiB of pointer-dense heap.
			arr, err := r.h.Alloc(th, 512<<10)
			if err != nil {
				t.Fatal(err)
			}
			obj, _ := r.h.Alloc(th, 64)
			for off := uint64(0); off < arr.Len(); off += 64 {
				if err := th.StoreCap(arr, off, obj); err != nil {
					t.Fatal(err)
				}
			}
			auth, _ := r.h.PaintAuth(obj.Base())
			th.PaintShadow(auth, obj.Base(), obj.Len())
			e := r.s.RequestRevocation(th)
			// Keep mutating (stores and loads) until the epoch finishes,
			// re-dirtying pages under Cornucopia and faulting under
			// Reloaded.
			live, _ := r.h.Alloc(th, 64)
			for i := 0; th.P.Epoch() <= e+1 && i < 500_000; i++ {
				off := (uint64(i) * 13 % (arr.Len() / 16)) * 16
				if i%2 == 0 {
					th.StoreCap(arr, off, live)
				} else if _, err := th.LoadCap(arr, off); err != nil {
					t.Fatal(err)
				}
			}
			th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
		})
		recs := r.s.Records()
		if len(recs) == 0 {
			t.Fatalf("%v: no records", strat)
		}
		stw[strat] = recs[0].STWCycles
	}
	if stw[Reloaded]*5 > stw[Cornucopia] {
		t.Errorf("Reloaded STW %d not ≪ Cornucopia STW %d", stw[Reloaded], stw[Cornucopia])
	}
	if stw[Cornucopia] >= stw[CHERIvoke] {
		t.Errorf("Cornucopia STW %d not < CHERIvoke STW %d", stw[Cornucopia], stw[CHERIvoke])
	}
}

func TestReloadedLoadFaultDuringEpoch(t *testing.T) {
	// An application load racing the background sweep must fault, sweep
	// the page in the app's context, and return the healed (revoked)
	// value.
	r := newRig(Reloaded, 0)
	var faultsSeen uint64
	r.runApp(t, func(th *kernel.Thread) {
		// Enough pages that the background sweep takes many scheduler
		// slices, so application loads race it.
		var holders []ca.Capability
		for i := 0; i < 2000; i++ {
			h, err := r.h.Alloc(th, 4096)
			if err != nil {
				t.Fatal(err)
			}
			obj, _ := r.h.Alloc(th, 64)
			th.StoreCap(h, 0, obj)
			holders = append(holders, h)
		}
		victim, _ := r.h.Alloc(th, 64)
		th.StoreCap(holders[len(holders)-1], 16, victim)
		auth, _ := r.h.PaintAuth(victim.Base())
		th.PaintShadow(auth, victim.Base(), victim.Len())

		e := r.s.RequestRevocation(th)
		// Hammer loads until the epoch finishes: loads racing the
		// background sweep must fault against the barrier.
		for i := 0; th.P.Epoch() <= e+1 && i < 500_000; i++ {
			if _, err := th.LoadCap(holders[i%len(holders)], 0); err != nil {
				t.Fatal(err)
			}
		}
		got, err := th.LoadCap(holders[len(holders)-1], 16)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag() {
			t.Error("revoked capability observable through load barrier")
		}
		faultsSeen = th.P.Stats().GenFaults
	})
	if faultsSeen == 0 {
		t.Fatal("no load-generation faults were taken")
	}
	recs := r.s.Records()
	if recs[0].FaultCount == 0 {
		t.Fatal("epoch record has no faults")
	}
}

func TestCornucopiaResweepsRedirtiedPages(t *testing.T) {
	r := newRig(Cornucopia, 0)
	r.runApp(t, func(th *kernel.Thread) {
		// A big pointer-dense heap so the concurrent phase is long.
		arr, err := r.h.Alloc(th, 512<<10)
		if err != nil {
			t.Fatal(err)
		}
		obj, _ := r.h.Alloc(th, 64)
		for off := uint64(0); off < arr.Len(); off += 256 {
			th.StoreCap(arr, off, obj)
		}
		auth, _ := r.h.PaintAuth(obj.Base())
		th.PaintShadow(auth, obj.Base(), obj.Len())
		e := r.s.RequestRevocation(th)
		// Keep storing capabilities while the concurrent phase runs: these
		// pages must be re-swept in the stop-the-world phase.
		live, _ := r.h.Alloc(th, 64)
		for i := 0; th.P.Epoch() <= e+1 && i < 200_000; i++ {
			off := (uint64(i) * 7 % (arr.Len() / 16)) * 16
			th.StoreCap(arr, off, live)
		}
		th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
	})
	recs := r.s.Records()
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	if recs[0].PagesResweptSTW == 0 {
		t.Fatal("no pages re-swept in stop-the-world despite concurrent stores")
	}
}

func TestReservationQuarantine(t *testing.T) {
	// §6.2: a fully-unmapped reservation is quarantined; capabilities to
	// it are revoked by the next epoch, and its address space is only
	// recycled afterwards.
	r := newRig(Reloaded, 0)
	r.runApp(t, func(th *kernel.Thread) {
		res, err := th.Mmap(4*vm.PageSize, ca.PermsData)
		if err != nil {
			t.Fatal(err)
		}
		keeper, _ := r.h.Alloc(th, 64)
		th.StoreCap(keeper, 0, res.Root)
		_, dead, err := th.Munmap(res.Base, res.Length)
		if err != nil {
			t.Fatal(err)
		}
		if !dead {
			t.Fatal("full unmap did not kill reservation")
		}
		r.s.QuarantineReservation(th, res)
		e := r.s.RequestRevocation(th)
		th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
		got, err := th.LoadCap(keeper, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag() {
			t.Fatal("capability to unmapped reservation survived revocation")
		}
	})
}

func TestCoalescedRequests(t *testing.T) {
	r := newRig(CHERIvoke, 0)
	r.runApp(t, func(th *kernel.Thread) {
		e := r.s.RequestRevocation(th)
		r.s.RequestRevocation(th)
		r.s.RequestRevocation(th)
		th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
	})
	// Requests made before the first epoch started coalesce into it; at
	// most one trailing epoch runs for requests racing the first pass.
	if n := len(r.s.Records()); n > 2 {
		t.Fatalf("%d epochs for coalesced requests, want ≤ 2", n)
	}
}

func TestRecordsTiming(t *testing.T) {
	r := newRig(Reloaded, 0)
	r.runApp(t, func(th *kernel.Thread) {
		c, _ := r.h.Alloc(th, 4096)
		th.StoreCap(c, 0, c)
		auth, _ := r.h.PaintAuth(c.Base())
		th.PaintShadow(auth, c.Base(), 16)
		e := r.s.RequestRevocation(th)
		th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
	})
	rec := r.s.Records()[0]
	if rec.EndCycle <= rec.StartCycle {
		t.Fatal("record has no duration")
	}
	if rec.STWCycles == 0 || rec.ConcurrentCycles == 0 {
		t.Fatalf("phase cycles missing: stw=%d conc=%d", rec.STWCycles, rec.ConcurrentCycles)
	}
	if rec.STWCycles+rec.ConcurrentCycles > rec.EndCycle-rec.StartCycle {
		t.Fatal("phases exceed total duration")
	}
	if rec.PagesVisited == 0 {
		t.Fatal("no pages visited")
	}
}
