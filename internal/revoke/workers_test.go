package revoke

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/kernel"
)

// TestSweepSharedWorkersExceedPages drives sweepShared directly with more
// configured workers than pages — and with no worker threads running at
// all. Every slice (including the empty tails the partition produces for a
// 0- or 1-page list) must be claimed and counted exactly once, so the call
// converges with workLeft at zero and no page double-counted. The old
// fixed-assignment scheme handed slices to worker threads that were never
// spawned and waited on them forever.
func TestSweepSharedWorkersExceedPages(t *testing.T) {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(1)
	h := alloc.NewHeap(p)
	s := NewService(p, Config{Strategy: Cornucopia, Workers: 3})
	p.Spawn("driver", []int{3}, func(th *kernel.Thread) {
		holder, err := h.Alloc(th, 64)
		if err != nil {
			t.Fatal(err)
		}
		// Touch the page so it is resident: pages fault in on demand.
		if err := th.StoreCap(holder, 0, holder); err != nil {
			t.Fatal(err)
		}
		pages := s.snapshotPages(false)
		if len(pages) == 0 {
			t.Fatal("no resident pages to sweep")
		}

		// 0 pages: all three slices are empty.
		var rec EpochRecord
		s.sweepShared(th, nil, &rec, 0)
		if rec.PagesVisited != 0 {
			t.Errorf("0-page sweep visited %d pages", rec.PagesVisited)
		}
		if s.workLeft != 0 {
			t.Errorf("0-page sweep left workLeft=%d, want 0", s.workLeft)
		}

		// 1 page split over 3 workers: two empty slices, one singleton.
		rec = EpochRecord{}
		s.sweepShared(th, pages[:1], &rec, 0)
		if rec.PagesVisited != 1 {
			t.Errorf("1-page sweep visited %d pages, want exactly 1 (no double count)", rec.PagesVisited)
		}
		if s.workLeft != 0 {
			t.Errorf("1-page sweep left workLeft=%d, want 0", s.workLeft)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiWorkerEpochFewPages runs full epochs through Start()ed worker
// threads with fewer resident pages than workers: first an epoch with no
// heap allocations at all, then one with a single small object. Both must
// converge (the empty tail slices are claimed like any other) and report a
// consistent record.
func TestMultiWorkerEpochFewPages(t *testing.T) {
	for _, allocs := range []int{0, 1} {
		r := newRig(Reloaded, 3)
		r.runApp(t, func(th *kernel.Thread) {
			for i := 0; i < allocs; i++ {
				if _, err := r.h.Alloc(th, 64); err != nil {
					t.Fatal(err)
				}
			}
			e := r.s.RequestRevocation(th)
			th.P.WaitEpochAtLeast(th, kernel.EpochClearTarget(e))
		})
		recs := r.s.Records()
		if len(recs) == 0 {
			t.Fatalf("allocs=%d: no epoch record", allocs)
		}
		if r.s.workLeft != 0 {
			t.Fatalf("allocs=%d: workLeft=%d after epoch, want 0", allocs, r.s.workLeft)
		}
	}
}

// TestShutdownRacingMultiWorkerEpoch requests an epoch and shuts the
// service down immediately, without waiting for it. The workers observe
// shutdown and the work broadcast together; they must drain the in-flight
// slices before exiting, or the service thread waits on workDone forever
// and the simulator reports a deadlock. (Before the dynamic-claim fix the
// workers honored shutdown first and this test deadlocked.)
func TestShutdownRacingMultiWorkerEpoch(t *testing.T) {
	r := newRig(Reloaded, 3)
	r.s.Start()
	r.p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		for i := 0; i < 8; i++ {
			if _, err := r.h.Alloc(th, 4096); err != nil {
				t.Fatal(err)
			}
		}
		r.s.RequestRevocation(th)
		r.s.Shutdown(th) // do NOT wait for the epoch
	})
	if err := r.m.Run(); err != nil {
		t.Fatal(err)
	}
	recs := r.s.Records()
	if len(recs) != 1 {
		t.Fatalf("%d epoch records after shutdown race, want 1", len(recs))
	}
	if recs[0].EndCycle <= recs[0].StartCycle {
		t.Fatal("racing epoch has no duration")
	}
	if r.s.workLeft != 0 {
		t.Fatalf("workLeft=%d after shutdown race, want 0", r.s.workLeft)
	}
}
