// Engine-equivalence tests: the fast sim engine must make bit-identical
// scheduling decisions to the classic channel-per-slice engine. Every
// campaign here executes twice — once per -simengine setting — and
// requires identical results: virtual clocks, DRAM traffic, per-epoch
// sweep counters, recovery actions, fault and oracle reports, and the
// full structured trace, byte for byte. The comparisons reuse
// requireIdentical from the kernel-equivalence suite: the invariant is
// the same, only the seam under test differs.
package revoke_test

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/revoke"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/workload/chaos"
	"repro/internal/workload/pgbench"
)

// runEngine executes one campaign under the named sim engine with
// tracing armed.
func runEngine(t *testing.T, w workload.Workload, cond harness.Condition,
	cfg harness.Config, ek sim.EngineKind) *harness.Result {
	t.Helper()
	cfg.SimEngine = ek
	cfg.Trace = trace.New(1 << 18)
	r, err := harness.Run(w, cond, cfg)
	if err != nil {
		t.Fatalf("%s under %s (%v engine): %v", w.Name(), cond.Name, ek, err)
	}
	return r
}

// TestFastEngineMatchesClassic is the headline differential: every
// sweeping strategy — including parallel workers and the §7.6 always-trap
// disposition — runs a seeded pgbench campaign under both engines and
// must agree on every measured quantity and every trace event.
func TestFastEngineMatchesClassic(t *testing.T) {
	conds := harness.SweepConditions()
	conds = append(conds,
		harness.Condition{Name: "Reloaded-w2", Shimmed: true, Strategy: revoke.Reloaded,
			RevokerCores: []int{2}, Workers: 2},
		harness.Condition{Name: "Reloaded-AT", Shimmed: true, Strategy: revoke.Reloaded,
			RevokerCores: []int{2}, AlwaysTrap: true},
	)
	for _, cond := range conds {
		cond := cond
		t.Run(cond.Name, func(t *testing.T) {
			cfg := harness.DefaultConfig()
			cfg.Scale = 256
			fr := runEngine(t, pgbench.New(400), cond, cfg, sim.EngineFast)
			cr := runEngine(t, pgbench.New(400), cond, cfg, sim.EngineClassic)
			if len(fr.Epochs) == 0 {
				t.Fatal("campaign produced no revocation epochs — nothing swept")
			}
			requireIdentical(t, cond.Name, fr, cr)
		})
	}
}

// TestFastEngineMatchesClassicUnderFaults stresses the scheduling-
// sensitive paths: fault injections hash the simulated cycle at which
// work happens, recovery aborts epochs mid-slice, and the oracle audits
// the final machine — any divergence in dispatch order between the
// engines would change which injections fire and how recovery unwinds.
// A tight SkewQuantum maximizes slice expiries, the exact point the fast
// engine's inline continuation replaces the classic channel round-trip.
func TestFastEngineMatchesClassicUnderFaults(t *testing.T) {
	cond := harness.Condition{Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded, Workers: 3}
	cases := []struct {
		name string
		spec *fault.Spec
	}{
		{"tag-stale-read", &fault.Spec{Seed: 7, Classes: []string{"tag-stale-read"}, MaxPerClass: 8}},
		{"all-classes", &fault.Spec{Seed: 11, Rate: 0.5, DelayCycles: 50_000}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := harness.DefaultConfig()
			cfg.Machine.Sim.SkewQuantum = 2_000
			cfg.QuarantineMin = 8 << 10
			cfg.Oracle = true
			cfg.Fault = tc.spec
			fr := runEngine(t, chaos.New(3000), cond, cfg, sim.EngineFast)
			cr := runEngine(t, chaos.New(3000), cond, cfg, sim.EngineClassic)
			if fr.Fault.Injections == 0 {
				t.Fatalf("%s: no injections fired — campaign does not stress recovery", tc.name)
			}
			requireIdentical(t, tc.name, fr, cr)
		})
	}
}
