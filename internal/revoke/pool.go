package revoke

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Pool implements the second half of the paper's §7.1 proposal:
// "eliminating the current per-process background thread in favor of
// making the revocation system call asynchronous, backed by a shared pool
// of background, in-kernel worker threads."
//
// A Pool owns a fixed set of in-kernel worker threads serving revocation
// requests from any number of processes on the machine. Each process still
// has its own Service (epoch state, strategy, records); the pool merely
// replaces the Service's dedicated thread. Requests queue FIFO; one worker
// runs one process's epoch at a time, so two processes' epochs proceed in
// parallel when two workers are free.
type Pool struct {
	m       *kernel.Machine
	workers int
	cores   []int

	queue    []*Service
	queued   map[*Service]bool
	reqEv    *sim.Event
	shutdown bool

	// host is the process that owns the worker threads (an in-kernel
	// entity; it needs a Process for thread spawning only).
	host *kernel.Process
}

// NewPool creates a revocation worker pool with the given parallelism.
// cores pins the workers (nil = any core).
func NewPool(m *kernel.Machine, host *kernel.Process, workers int, cores []int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{
		m:       m,
		workers: workers,
		cores:   cores,
		queued:  make(map[*Service]bool),
		reqEv:   m.Eng.NewEvent(),
		host:    host,
	}
}

// Start spawns the worker threads.
func (p *Pool) Start() {
	for i := 0; i < p.workers; i++ {
		name := fmt.Sprintf("revpool-%d", i)
		p.host.Spawn(name, p.cores, func(th *kernel.Thread) {
			th.Agent = bus.AgentRevoker
			p.m.Telem.SetBase(th.Sim, telemetry.CompRevoker)
			p.work(th)
		})
	}
}

// Shutdown stops the workers. The queue is drained first: every request
// accepted before Shutdown still runs its epoch; workers exit only once
// the queue is empty. Requests submitted after Shutdown panic (see submit).
func (p *Pool) Shutdown(th *kernel.Thread) {
	p.shutdown = true
	p.reqEv.Broadcast(th.Sim)
}

// Attach creates a Service for proc that submits its revocation requests
// to this pool instead of owning a thread. Do not call Service.Start on
// the returned service.
func (p *Pool) Attach(proc *kernel.Process, cfg Config) *Service {
	s := NewService(proc, cfg)
	s.pool = p
	return s
}

// submit enqueues a service's pending revocation request. Submitting to a
// shut-down pool is a caller bug — the workers are gone, so the request
// (and the epoch the caller's quarantined memory waits on) would be
// dropped silently; panic instead of hanging the caller later.
func (p *Pool) submit(th *kernel.Thread, s *Service) {
	if p.shutdown {
		panic("revoke: revocation request submitted to a shut-down pool")
	}
	if p.queued[s] {
		return
	}
	p.queued[s] = true
	p.queue = append(p.queue, s)
	p.reqEv.Broadcast(th.Sim)
}

// work is one pool worker's loop. Workers run epochs for whichever process
// asked; the epoch executes on the worker's thread, but all process-scoped
// state (stop-the-world, epoch counter, page tables) is the target
// process's. Because kernel.Thread carries its process affiliation, the
// worker borrows a thread bound to the target process for the duration.
//
// Shutdown ordering: queued work is popped before the shutdown flag is
// honored, so a Shutdown racing a non-empty queue drains it — each queued
// service's reqPending epoch still runs — and workers exit only when the
// queue is empty.
func (p *Pool) work(th *kernel.Thread) {
	for {
		th.WaitOn(p.reqEv, func() bool { return p.shutdown || len(p.queue) > 0 })
		if len(p.queue) == 0 {
			if p.shutdown {
				return
			}
			continue
		}
		s := p.queue[0]
		p.queue = p.queue[1:]
		delete(p.queued, s)
		if !s.reqPending {
			continue
		}
		s.reqPending = false
		// Run the epoch on a kernel thread affiliated with the target
		// process so stop-the-world and cost accounting land there. The
		// borrowed thread shares our scheduling context (same sim thread).
		borrowed := s.P.AdoptKernelThread(th.Sim, bus.AgentRevoker)
		s.RevokeEpoch(borrowed)
		s.P.ReleaseKernelThread(borrowed)
	}
}
