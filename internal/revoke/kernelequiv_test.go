// Kernel-equivalence tests: the word-wise sweep kernel must be
// simulation-invisible. Every run here executes twice — once per
// -sweepkernel setting — and requires bit-identical results: virtual
// clocks, DRAM traffic, per-epoch sweep counters, recovery actions, fault
// and oracle reports, and the full structured trace, byte for byte. The
// package is revoke_test (not revoke) because the campaigns run through
// the harness, which imports revoke.
package revoke_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/kernel"
	"repro/internal/revoke"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/workload/chaos"
	"repro/internal/workload/pgbench"
)

// runKernel executes one campaign under the named sweep kernel with
// tracing armed.
func runKernel(t *testing.T, w workload.Workload, cond harness.Condition,
	cfg harness.Config, sk kernel.SweepKernel) *harness.Result {
	t.Helper()
	cfg.SweepKernel = sk
	cfg.Trace = trace.New(1 << 18)
	r, err := harness.Run(w, cond, cfg)
	if err != nil {
		t.Fatalf("%s under %s (%v kernel): %v", w.Name(), cond.Name, sk, err)
	}
	return r
}

// requireIdentical compares everything a run measures. wr is the word-
// kernel result, gr the granule oracle's.
func requireIdentical(t *testing.T, name string, wr, gr *harness.Result) {
	t.Helper()
	if wr.WallCycles != gr.WallCycles || wr.CPUCycles != gr.CPUCycles || wr.AppCPUCycles != gr.AppCPUCycles {
		t.Errorf("%s: clocks diverged: wall %d vs %d, cpu %d vs %d, app %d vs %d",
			name, wr.WallCycles, gr.WallCycles, wr.CPUCycles, gr.CPUCycles,
			wr.AppCPUCycles, gr.AppCPUCycles)
	}
	if wr.DRAMTotal != gr.DRAMTotal || !reflect.DeepEqual(wr.DRAMByAgent, gr.DRAMByAgent) ||
		!reflect.DeepEqual(wr.DRAMByCore, gr.DRAMByCore) {
		t.Errorf("%s: DRAM traffic diverged: total %d vs %d, by agent %v vs %v",
			name, wr.DRAMTotal, gr.DRAMTotal, wr.DRAMByAgent, gr.DRAMByAgent)
	}
	if wr.PeakRSSPages != gr.PeakRSSPages {
		t.Errorf("%s: peak RSS %d vs %d pages", name, wr.PeakRSSPages, gr.PeakRSSPages)
	}
	if wr.Proc != gr.Proc {
		t.Errorf("%s: process stats diverged:\n%+v\n%+v", name, wr.Proc, gr.Proc)
	}
	if wr.Heap != gr.Heap || wr.Quar != gr.Quar {
		t.Errorf("%s: heap/quarantine stats diverged", name)
	}
	if len(wr.Epochs) != len(gr.Epochs) {
		t.Fatalf("%s: epoch counts diverged: %d vs %d", name, len(wr.Epochs), len(gr.Epochs))
	}
	for i := range wr.Epochs {
		if wr.Epochs[i] != gr.Epochs[i] {
			t.Errorf("%s: epoch %d diverged (visited/revoked/phase timings):\n%+v\n%+v",
				name, i, wr.Epochs[i], gr.Epochs[i])
		}
	}
	if wr.Recovery != gr.Recovery {
		t.Errorf("%s: recovery stats diverged: %+v vs %+v", name, wr.Recovery, gr.Recovery)
	}
	if !reflect.DeepEqual(wr.Fault, gr.Fault) {
		t.Errorf("%s: fault reports diverged:\n%+v\n%+v", name, wr.Fault, gr.Fault)
	}
	if !reflect.DeepEqual(wr.Oracle, gr.Oracle) {
		t.Errorf("%s: oracle reports diverged:\n%+v\n%+v", name, wr.Oracle, gr.Oracle)
	}
	var wb, gb bytes.Buffer
	if err := wr.Trace.WriteCSV(&wb); err != nil {
		t.Fatal(err)
	}
	if err := gr.Trace.WriteCSV(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Errorf("%s: structured traces diverged (%d vs %d bytes of CSV)",
			name, wb.Len(), gb.Len())
	}
}

// TestWordKernelMatchesGranule is the headline differential: every
// sweeping strategy — including parallel workers and the §7.6 always-trap
// disposition — runs a seeded pgbench campaign under both kernels and
// must agree on every measured quantity and every trace event.
func TestWordKernelMatchesGranule(t *testing.T) {
	conds := harness.SweepConditions()
	conds = append(conds,
		harness.Condition{Name: "Reloaded-w2", Shimmed: true, Strategy: revoke.Reloaded,
			RevokerCores: []int{2}, Workers: 2},
		harness.Condition{Name: "Reloaded-AT", Shimmed: true, Strategy: revoke.Reloaded,
			RevokerCores: []int{2}, AlwaysTrap: true},
	)
	for _, cond := range conds {
		cond := cond
		t.Run(cond.Name, func(t *testing.T) {
			cfg := harness.DefaultConfig()
			cfg.Scale = 256
			wr := runKernel(t, pgbench.New(400), cond, cfg, kernel.SweepKernelWord)
			gr := runKernel(t, pgbench.New(400), cond, cfg, kernel.SweepKernelGranule)
			if len(wr.Epochs) == 0 {
				t.Fatal("campaign produced no revocation epochs — nothing swept")
			}
			var visited, revoked uint64
			for _, e := range wr.Epochs {
				visited += e.CapsVisited
				revoked += e.CapsRevoked
			}
			if visited == 0 || revoked == 0 {
				t.Fatalf("word kernel visited %d / revoked %d capabilities — campaign too idle to differentiate kernels",
					visited, revoked)
			}
			requireIdentical(t, cond.Name, wr, gr)
		})
	}
}

// TestWordKernelMatchesGranuleUnderFaults pins the SweepFilter fallback
// end to end: a tag-stale-read campaign arms Phys.SweepFilter, whose
// decisions hash the simulated cycle each granule is reached at, so any
// batching difference between the kernels would change which injections
// fire. The oracle and fault reports — and everything else — must still
// be identical. A second all-classes campaign stresses the recovery paths
// (worker crashes mid-slice, epoch retries) on top.
func TestWordKernelMatchesGranuleUnderFaults(t *testing.T) {
	cond := harness.Condition{Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded, Workers: 3}
	cases := []struct {
		name string
		spec *fault.Spec
	}{
		{"tag-stale-read", &fault.Spec{Seed: 7, Classes: []string{"tag-stale-read"}, MaxPerClass: 8}},
		{"all-classes", &fault.Spec{Seed: 11, Rate: 0.5, DelayCycles: 50_000}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := harness.DefaultConfig()
			cfg.Machine.Sim.SkewQuantum = 2_000
			cfg.QuarantineMin = 8 << 10
			cfg.Oracle = true
			cfg.Fault = tc.spec
			wr := runKernel(t, chaos.New(3000), cond, cfg, kernel.SweepKernelWord)
			gr := runKernel(t, chaos.New(3000), cond, cfg, kernel.SweepKernelGranule)
			if wr.Fault.Injections == 0 {
				t.Fatalf("%s: no injections fired — campaign does not exercise the fallback", tc.name)
			}
			requireIdentical(t, tc.name, wr, gr)
		})
	}
}
