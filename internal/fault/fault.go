// Package fault implements deterministic, seed-driven fault injection for
// soundness campaigns (cmd/chaos). An Injector owns its own PRNG stream —
// a splitmix64-style hash over (seed, class, opportunity counter, cycle) —
// so decisions depend only on the injection Spec and the simulation's
// virtual time, never on host scheduling: the same Spec replays the same
// faults at any host parallelism.
//
// Six classes cover the failure surface the paper's protocol must either
// tolerate or have caught by the soundness oracle (internal/oracle):
// dropped TLB shootdowns, lost capability-dirty PTE bits, suppressed load
// barriers, stale tag reads hidden from the sweep, crashing sweep workers,
// and delayed epoch-counter publication.
package fault

import (
	"fmt"
	"strings"
)

// Class enumerates the injectable fault classes.
type Class int

const (
	// ShootdownDrop drops the BumpGenerations TLB-shootdown IPI to one
	// core, leaving its cached translations (and cached load generation)
	// stale.
	ShootdownDrop Class = iota
	// CapDirtyLoss loses the hardware capability-dirty PTE update on a
	// capability store; the store itself still lands.
	CapDirtyLoss
	// BarrierSuppress skips the §4.1 load-barrier generation check on a
	// capability load whose target is painted, handing the application an
	// unchecked (revocable) capability.
	BarrierSuppress
	// TagStaleRead hides a painted capability's granule from the revoker's
	// tag sweep, as if the tag read returned stale data.
	TagStaleRead
	// WorkerCrash stalls a background sweep worker and then kills it
	// mid-slice.
	WorkerCrash
	// EpochPublishDelay delays the closing epoch-counter advance after the
	// sweep completes.
	EpochPublishDelay
	// NumClasses bounds the enum.
	NumClasses
)

// String returns the class's kebab-case campaign name.
func (c Class) String() string {
	switch c {
	case ShootdownDrop:
		return "shootdown-drop"
	case CapDirtyLoss:
		return "cap-dirty-loss"
	case BarrierSuppress:
		return "barrier-suppress"
	case TagStaleRead:
		return "tag-stale-read"
	case WorkerCrash:
		return "worker-crash"
	case EpochPublishDelay:
		return "epoch-publish-delay"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass resolves a campaign name back to its class.
func ParseClass(name string) (Class, error) {
	for c := Class(0); c < NumClasses; c++ {
		if strings.ToLower(strings.TrimSpace(name)) == c.String() {
			return c, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown class %q", name)
}

// Classes lists every class in declaration order.
func Classes() []Class {
	out := make([]Class, NumClasses)
	for c := Class(0); c < NumClasses; c++ {
		out[c] = c
	}
	return out
}

// ClassNames lists every class's campaign name in declaration order.
func ClassNames() []string {
	out := make([]string, NumClasses)
	for c := Class(0); c < NumClasses; c++ {
		out[c] = c.String()
	}
	return out
}

// Spec configures one run's injection plan. It is part of the experiment
// job key, so campaigns cache and resume like any other sweep.
type Spec struct {
	// Seed keys the injector's PRNG stream (independent of the workload
	// seed).
	Seed int64 `json:"seed"`
	// Classes arms the named fault classes; empty arms all of them.
	Classes []string `json:"classes,omitempty"`
	// Rate is the per-opportunity injection probability in (0, 1]; zero
	// means 1 (every opportunity fires).
	Rate float64 `json:"rate,omitempty"`
	// MaxPerClass caps injections per class (0 = unbounded).
	MaxPerClass uint64 `json:"max_per_class,omitempty"`
	// DelayCycles sizes the time-shaped faults: the crashing worker's
	// stall and the publication delay. Zero means 100_000 cycles.
	DelayCycles uint64 `json:"delay_cycles,omitempty"`
}

// Injection records one injected fault for the report.
type Injection struct {
	Class string `json:"class"`
	Cycle uint64 `json:"cycle"`
	Arg   uint64 `json:"arg"`
}

// maxReportEvents bounds the per-run event log; counts are always exact.
const maxReportEvents = 64

// Report summarizes one run's injections.
type Report struct {
	Seed       int64             `json:"seed"`
	Rate       float64           `json:"rate"`
	Injections uint64            `json:"injections"`
	ByClass    map[string]uint64 `json:"by_class,omitempty"`
	// Events holds the first maxReportEvents injections; Truncated marks
	// an overflow.
	Events    []Injection `json:"events,omitempty"`
	Truncated bool        `json:"truncated,omitempty"`
}

// Injector makes the per-opportunity injection decisions for one run.
type Injector struct {
	spec   Spec
	rate   float64
	delay  uint64
	armed  [NumClasses]bool
	opps   [NumClasses]uint64
	counts [NumClasses]uint64
	total  uint64
	events []Injection
	trunc  bool
}

// New validates spec and builds an injector.
func New(spec Spec) (*Injector, error) {
	in := &Injector{spec: spec, rate: spec.Rate, delay: spec.DelayCycles}
	if in.rate == 0 {
		in.rate = 1
	}
	if in.rate < 0 || in.rate > 1 {
		return nil, fmt.Errorf("fault: rate %v outside (0, 1]", spec.Rate)
	}
	if in.delay == 0 {
		in.delay = 100_000
	}
	if len(spec.Classes) == 0 {
		for c := range in.armed {
			in.armed[c] = true
		}
	} else {
		for _, name := range spec.Classes {
			c, err := ParseClass(name)
			if err != nil {
				return nil, err
			}
			in.armed[c] = true
		}
	}
	return in, nil
}

// mix is a splitmix64-style avalanche over its inputs.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Armed reports whether class c can fire at all.
func (in *Injector) Armed(c Class) bool { return in.armed[c] }

// Delay returns the configured fault duration in cycles.
func (in *Injector) Delay() uint64 { return in.delay }

// Should decides one injection opportunity for class c at the given
// simulation cycle (arg is a class-specific detail recorded on a hit). The
// decision hashes (seed, class, per-class opportunity counter, cycle), so
// it is a pure function of the run so far.
func (in *Injector) Should(c Class, cycle, arg uint64) bool {
	if !in.armed[c] {
		return false
	}
	if in.spec.MaxPerClass > 0 && in.counts[c] >= in.spec.MaxPerClass {
		return false
	}
	n := in.opps[c]
	in.opps[c]++
	if in.rate < 1 {
		h := mix(uint64(in.spec.Seed), uint64(c), n, cycle)
		if float64(h>>11)/float64(1<<53) >= in.rate {
			return false
		}
	}
	in.counts[c]++
	in.total++
	if len(in.events) < maxReportEvents {
		in.events = append(in.events, Injection{Class: c.String(), Cycle: cycle, Arg: arg})
	} else {
		in.trunc = true
	}
	return true
}

// Count returns the number of injections of class c so far.
func (in *Injector) Count(c Class) uint64 { return in.counts[c] }

// Report snapshots the injector's activity.
func (in *Injector) Report() Report {
	rep := Report{
		Seed:       in.spec.Seed,
		Rate:       in.rate,
		Injections: in.total,
		Events:     append([]Injection(nil), in.events...),
		Truncated:  in.trunc,
	}
	for c := Class(0); c < NumClasses; c++ {
		if in.counts[c] > 0 {
			if rep.ByClass == nil {
				rep.ByClass = make(map[string]uint64)
			}
			rep.ByClass[c.String()] = in.counts[c]
		}
	}
	return rep
}
