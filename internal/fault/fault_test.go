package fault

import (
	"reflect"
	"testing"
)

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("ParseClass(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if _, err := ParseClass("meteor-strike"); err == nil {
		t.Fatal("ParseClass accepted an unknown class")
	}
	if len(ClassNames()) != int(NumClasses) {
		t.Fatalf("ClassNames() has %d entries, want %d", len(ClassNames()), NumClasses)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := New(Spec{Seed: 1, Rate: 1.5}); err == nil {
		t.Fatal("New accepted rate > 1")
	}
	if _, err := New(Spec{Seed: 1, Rate: -0.1}); err == nil {
		t.Fatal("New accepted a negative rate")
	}
	if _, err := New(Spec{Seed: 1, Classes: []string{"no-such-fault"}}); err == nil {
		t.Fatal("New accepted an unknown class name")
	}
	in, err := New(Spec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Classes() {
		if !in.Armed(c) {
			t.Fatalf("empty Classes should arm everything; %v is off", c)
		}
	}
	if in.Delay() != 100_000 {
		t.Fatalf("default delay = %d, want 100000", in.Delay())
	}
}

func TestArmedSubset(t *testing.T) {
	in, err := New(Spec{Seed: 1, Classes: []string{"worker-crash", "Tag-Stale-Read "}})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Armed(WorkerCrash) || !in.Armed(TagStaleRead) {
		t.Fatal("named classes not armed")
	}
	if in.Armed(ShootdownDrop) || in.Armed(BarrierSuppress) {
		t.Fatal("unnamed classes armed")
	}
	if in.Should(ShootdownDrop, 100, 0) {
		t.Fatal("disarmed class fired")
	}
}

// TestDeterminism drives two injectors with the same spec through the same
// opportunity stream and requires identical decisions and reports.
func TestDeterminism(t *testing.T) {
	spec := Spec{Seed: 42, Rate: 0.3}
	a, _ := New(spec)
	b, _ := New(spec)
	for i := uint64(0); i < 2000; i++ {
		c := Class(i % uint64(NumClasses))
		cycle := i * 137
		if a.Should(c, cycle, i) != b.Should(c, cycle, i) {
			t.Fatalf("decision diverged at opportunity %d", i)
		}
	}
	ra, rb := a.Report(), b.Report()
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("reports diverged:\n%+v\n%+v", ra, rb)
	}
	if ra.Injections == 0 {
		t.Fatal("rate 0.3 over 2000 opportunities injected nothing")
	}
	if ra.Injections == 2000 {
		t.Fatal("rate 0.3 fired on every opportunity")
	}
}

func TestMaxPerClass(t *testing.T) {
	in, _ := New(Spec{Seed: 7, MaxPerClass: 3})
	fired := 0
	for i := uint64(0); i < 100; i++ {
		if in.Should(WorkerCrash, i, 0) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("MaxPerClass 3 allowed %d injections", fired)
	}
	if in.Count(WorkerCrash) != 3 {
		t.Fatalf("Count = %d, want 3", in.Count(WorkerCrash))
	}
	rep := in.Report()
	if rep.ByClass["worker-crash"] != 3 {
		t.Fatalf("ByClass = %v", rep.ByClass)
	}
}
