package fault

import (
	"repro/internal/bus"
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/revoke"
	"repro/internal/tmem"
	"repro/internal/trace"
)

// Wire installs the injector's armed classes into their hook points: the
// address space's shootdown filter, the kernel's load/store injection
// hooks, physical memory's sweep filter, and the revocation service's
// fault hooks. Every injected fault also emits a KindInject trace instant.
// svc may be nil (no revoker-side classes are wired then).
//
// The targeted classes (BarrierSuppress, TagStaleRead) only consider
// opportunities whose capability points into painted (quarantined) memory:
// suppressing a check that would have passed anyway injects nothing
// observable, and would make campaign outcomes depend on the rate of
// harmless opportunities.
func Wire(in *Injector, p *kernel.Process, svc *revoke.Service) {
	m := p.M
	now := m.Eng.WallClock
	emit := func(c Class, arg uint64) {
		m.Trace.Instant(now(), -1, bus.AgentKernel, trace.KindInject,
			p.Epoch(), uint64(c), arg)
	}
	if in.Armed(ShootdownDrop) {
		p.AS.ShootdownFilter = func(core int) bool {
			if in.Should(ShootdownDrop, now(), uint64(core)) {
				emit(ShootdownDrop, uint64(core))
				return true
			}
			return false
		}
	}
	if in.Armed(CapDirtyLoss) {
		p.Inject.DropCapDirty = func(va uint64) bool {
			if in.Should(CapDirtyLoss, now(), va) {
				emit(CapDirtyLoss, va)
				return true
			}
			return false
		}
	}
	if in.Armed(BarrierSuppress) {
		p.Inject.SuppressGenFault = func(va uint64, v ca.Capability) bool {
			if !v.Tag() || !p.Shadow.Test(v.Base()) {
				return false
			}
			if in.Should(BarrierSuppress, now(), va) {
				emit(BarrierSuppress, va)
				return true
			}
			return false
		}
	}
	if in.Armed(TagStaleRead) {
		m.Phys.SweepFilter = func(id tmem.FrameID, g int, c ca.Capability) bool {
			if !c.Tag() || !p.Shadow.Test(c.Base()) {
				return false
			}
			if in.Should(TagStaleRead, now(), c.Base()) {
				emit(TagStaleRead, c.Base())
				return true
			}
			return false
		}
	}
	if svc == nil {
		return
	}
	var hooks revoke.FaultHooks
	wired := false
	if in.Armed(WorkerCrash) {
		hooks.WorkerCrash = func() bool {
			if in.Should(WorkerCrash, now(), in.delay) {
				emit(WorkerCrash, in.delay)
				return true
			}
			return false
		}
		hooks.CrashStallCycles = in.Delay()
		wired = true
	}
	if in.Armed(EpochPublishDelay) {
		hooks.PublishDelay = func() uint64 {
			if in.Should(EpochPublishDelay, now(), in.delay) {
				emit(EpochPublishDelay, in.delay)
				return in.Delay()
			}
			return 0
		}
		wired = true
	}
	if wired {
		svc.SetFaultHooks(hooks)
	}
}
