package oracle

import (
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/kernel"
	"repro/internal/revoke"
)

// plant runs body on a fresh machine with an oracle installed over a
// (never-started) Reloaded service, and returns the audit report.
func plant(t *testing.T, body func(th *kernel.Thread, o *Oracle, h *alloc.Heap)) Report {
	t.Helper()
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(1)
	h := alloc.NewHeap(p)
	svc := revoke.NewService(p, revoke.Config{Strategy: revoke.Reloaded})
	o := New(p, h, svc)
	p.Spawn("planter", nil, func(th *kernel.Thread) { body(th, o, h) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return o.Report()
}

func hasInvariant(rep Report, inv string) bool {
	for _, v := range rep.Violations {
		if v.Invariant == inv {
			return true
		}
	}
	return false
}

// TestSurvivorDetected plants the core unsoundness: a tagged capability to
// a painted (quarantined) object survives in a register past the epoch
// boundary. The oracle must flag it.
func TestSurvivorDetected(t *testing.T) {
	rep := plant(t, func(th *kernel.Thread, o *Oracle, h *alloc.Heap) {
		c, err := h.Malloc(th, 64)
		if err != nil {
			t.Error(err)
			return
		}
		base, size, ok := h.Lookup(c.Base())
		if !ok {
			t.Error("lookup of fresh allocation failed")
			return
		}
		auth, _ := h.PaintAuth(base)
		if err := th.PaintShadow(auth, base, size); err != nil {
			t.Error(err)
			return
		}
		th.SetReg(0, c) // the stale capability the sweep should have cleared
		o.EpochBegin(th, 1)
		o.EpochEnd(th, &revoke.EpochRecord{Epoch: 1})
	})
	if !hasInvariant(rep, "revoked-cap-survives") {
		t.Fatalf("surviving capability not flagged: %+v", rep)
	}
	if rep.CapsChecked == 0 || rep.EpochsChecked != 1 {
		t.Fatalf("walk counters wrong: %+v", rep)
	}
	for _, v := range rep.Violations {
		if v.Invariant == "revoked-cap-survives" && !strings.Contains(v.Where, "reg") &&
			!strings.Contains(v.Where, "page") {
			t.Fatalf("violation site unattributed: %+v", v)
		}
	}
}

// TestParityViolations plants both epoch-counter parity breaches.
func TestParityViolations(t *testing.T) {
	rep := plant(t, func(th *kernel.Thread, o *Oracle, h *alloc.Heap) {
		o.EpochBegin(th, 2)   // in-flight counter must be odd
		th.P.AdvanceEpoch(th) // counter now 1 (odd) at the "completed" boundary
		o.EpochEnd(th, &revoke.EpochRecord{Epoch: 1})
	})
	if !hasInvariant(rep, "epoch-parity") {
		t.Fatalf("parity breaches not flagged: %+v", rep)
	}
	if rep.ViolationCount != 2 {
		t.Fatalf("want 2 parity violations (begin even, end odd), got %+v", rep)
	}
}

// TestEarlyDrainDetected plants a quarantine drain before its clearance
// target has passed.
func TestEarlyDrainDetected(t *testing.T) {
	rep := plant(t, func(th *kernel.Thread, o *Oracle, h *alloc.Heap) {
		o.ObserveDrain(th, th.P.Epoch()+2, nil)
	})
	if !hasInvariant(rep, "reuse-before-clear") {
		t.Fatalf("early drain not flagged: %+v", rep)
	}
	if rep.DrainsChecked != 1 {
		t.Fatalf("DrainsChecked = %d, want 1", rep.DrainsChecked)
	}
}

// TestCleanBoundaryPasses checks a consistent boundary yields no
// violations: painted object, no surviving capability, snapshot retired.
func TestCleanBoundaryPasses(t *testing.T) {
	rep := plant(t, func(th *kernel.Thread, o *Oracle, h *alloc.Heap) {
		c, err := h.Malloc(th, 64)
		if err != nil {
			t.Error(err)
			return
		}
		base, size, _ := h.Lookup(c.Base())
		auth, _ := h.PaintAuth(base)
		if err := th.PaintShadow(auth, base, size); err != nil {
			t.Error(err)
			return
		}
		// No register copy parked: the machine holds no capability into the
		// painted span.
		o.EpochBegin(th, 1)
		o.EpochEnd(th, &revoke.EpochRecord{Epoch: 1})
	})
	if rep.ViolationCount != 0 {
		t.Fatalf("clean boundary flagged: %+v", rep)
	}
	if rep.GranulesChecked == 0 {
		t.Fatal("agreement walk never ran")
	}
}
