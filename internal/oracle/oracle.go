// Package oracle implements the end-to-end soundness oracle for fault
// campaigns (cmd/chaos). It observes every revocation epoch boundary
// (revoke.EpochObserver) and every quarantine drain, and asserts the
// paper's §2.2.3/§3.2 invariants over the whole machine:
//
//   - No capability — in a register, a kernel hoard, a syscall buffer, or
//     any tagged granule of physical memory — survives a completed epoch
//     if its base was quarantined (painted) when the epoch began.
//   - The epoch counter is odd exactly while a pass is in flight, and
//     quarantined memory is only reused once its clearance target has
//     passed (paint at epoch e, reuse at EpochClearTarget(e)).
//   - The revocation bitmap and the heap agree: every painted granule
//     lies inside a fully-painted heap object or an mmap-level dead
//     reservation.
//
// The strict survivor check is skipped for Paint+sync, which never sweeps
// by design; the parity and agreement invariants hold for every strategy.
//
// The walk runs at the epoch boundary itself, which the simulator executes
// atomically (no virtual-time yield between the closing counter advance
// and the observer), so the oracle sees a consistent machine. Mid-epoch
// drains are exact, not a race: the drain observer retires released spans
// from the epoch-begin snapshot, so memory legitimately reused during a
// long epoch is never misflagged.
package oracle

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/quarantine"
	"repro/internal/revoke"
	"repro/internal/shadow"
	"repro/internal/vm"
)

// maxReportViolations bounds the per-run violation log; the count is
// always exact.
const maxReportViolations = 64

// Violation records one invariant breach.
type Violation struct {
	Epoch     uint64 `json:"epoch"`
	Cycle     uint64 `json:"cycle"`
	Invariant string `json:"invariant"`
	Where     string `json:"where"`
	Addr      uint64 `json:"addr"`
	Detail    string `json:"detail,omitempty"`
}

// Report summarizes one run's audit.
type Report struct {
	EpochsChecked   uint64 `json:"epochs_checked"`
	CapsChecked     uint64 `json:"caps_checked"`
	GranulesChecked uint64 `json:"granules_checked"`
	DrainsChecked   uint64 `json:"drains_checked"`
	ViolationCount  uint64 `json:"violation_count"`
	// Violations holds the first maxReportViolations breaches; Truncated
	// marks an overflow.
	Violations []Violation `json:"violations,omitempty"`
	Truncated  bool        `json:"truncated,omitempty"`
}

// Oracle audits one process's revocation protocol. Install it with
// Service.SetObserver and Shim.SetDrainObserver.
type Oracle struct {
	p      *kernel.Process
	h      *alloc.Heap
	svc    *revoke.Service
	strict bool
	// snap is the revocation bitmap as of the in-flight epoch's begin;
	// granules drained mid-epoch are retired from it.
	snap *shadow.Bitmap
	rep  Report
}

// New builds an oracle for the process/heap/service triple. The strict
// survivor check is enabled for every strategy that sweeps.
func New(p *kernel.Process, h *alloc.Heap, svc *revoke.Service) *Oracle {
	return &Oracle{p: p, h: h, svc: svc, strict: svc.Strategy() != revoke.PaintSync}
}

func (o *Oracle) violate(cycle uint64, invariant, where string, addr uint64, detail string) {
	o.rep.ViolationCount++
	if len(o.rep.Violations) >= maxReportViolations {
		o.rep.Truncated = true
		return
	}
	o.rep.Violations = append(o.rep.Violations, Violation{
		Epoch: o.p.Epoch(), Cycle: cycle,
		Invariant: invariant, Where: where, Addr: addr, Detail: detail,
	})
}

// EpochBegin implements revoke.EpochObserver: check the counter turned
// odd and snapshot the paint set the pass is responsible for.
func (o *Oracle) EpochBegin(th *kernel.Thread, epoch uint64) {
	if epoch%2 != 1 {
		o.violate(th.Sim.Now(), "epoch-parity", "epoch begin", 0,
			fmt.Sprintf("in-flight counter %d is even", epoch))
	}
	o.snap = o.p.Shadow.Clone()
}

// EpochEnd implements revoke.EpochObserver: the full machine walk.
func (o *Oracle) EpochEnd(th *kernel.Thread, rec *revoke.EpochRecord) {
	now := th.Sim.Now()
	o.rep.EpochsChecked++
	if e := o.p.Epoch(); e%2 != 0 {
		o.violate(now, "epoch-parity", "epoch end", 0,
			fmt.Sprintf("completed counter %d is odd", e))
	}
	if o.strict && o.snap != nil {
		check := func(where string, c ca.Capability) {
			o.rep.CapsChecked++
			if c.Tag() && o.snap.Test(c.Base()) {
				o.violate(now, "revoked-cap-survives", where, c.Base(),
					fmt.Sprintf("capability [0x%x,+%d) into epoch-%d quarantine survived the pass",
						c.Base(), c.Top()-c.Base(), rec.Epoch))
			}
		}
		o.p.ForEachRootCap(check)
		phys := o.p.M.Phys
		o.p.AS.ForEachMappedPage(func(vpn uint64, pte *vm.PTE) bool {
			phys.ForEachTag(pte.Frame, func(g int, c ca.Capability) {
				check(fmt.Sprintf("page 0x%x granule %d (gen %d bits %#x)",
					vpn, g, pte.Gen, pte.Bits), c)
			})
			return true
		})
	}
	o.checkAgreement(now)
	o.snap = nil
}

// checkAgreement asserts the bitmap/heap invariant: every painted granule
// belongs to a fully-painted live heap object (an object in quarantine)
// or to a dead mmap reservation.
func (o *Oracle) checkAgreement(now uint64) {
	coveredEnd := uint64(0) // end of the last verified span (ascending walk)
	o.p.Shadow.ForEachPainted(func(addr uint64) bool {
		o.rep.GranulesChecked++
		if addr < coveredEnd {
			return true
		}
		if base, size, ok := o.h.Lookup(addr); ok {
			want := int(size / ca.GranuleSize)
			if got := o.p.Shadow.CountPaintedInRange(base, size); got != want {
				o.violate(now, "paint-heap-mismatch",
					fmt.Sprintf("object [0x%x,+%d)", base, size), addr,
					fmt.Sprintf("%d of %d granules painted", got, want))
			}
			coveredEnd = base + size
			return true
		}
		if base, length, ok := o.svc.QuarantinedReservation(addr); ok {
			coveredEnd = base + length
			return true
		}
		o.violate(now, "paint-heap-mismatch", "unattributed granule", addr,
			"painted granule outside any heap object or dead reservation")
		coveredEnd = addr + ca.GranuleSize
		return true
	})
}

// ObserveDrain audits one quarantine drain (install with
// Shim.SetDrainObserver): reuse must wait for the clearance target, and
// the released spans retire from the in-flight snapshot so their reuse
// during the rest of the epoch is not misflagged.
func (o *Oracle) ObserveDrain(th *kernel.Thread, target uint64, spans []quarantine.Span) {
	o.rep.DrainsChecked++
	if e := th.P.Epoch(); e < target {
		o.violate(th.Sim.Now(), "reuse-before-clear", "quarantine drain", 0,
			fmt.Sprintf("drain at epoch %d before clearance target %d", e, target))
	}
	if o.snap == nil {
		return
	}
	for _, s := range spans {
		auth := ca.NewRoot(s.Base, s.Size, ca.PermPaint)
		if err := o.snap.Unpaint(auth, s.Base, s.Size); err != nil {
			panic(fmt.Sprintf("oracle: snapshot unpaint: %v", err))
		}
	}
}

// Report snapshots the audit counters.
func (o *Oracle) Report() Report {
	rep := o.rep
	rep.Violations = append([]Violation(nil), o.rep.Violations...)
	return rep
}
