package shadow

import (
	"errors"
	"testing"

	"repro/internal/ca"
)

// TestPaintPermErrorTyped pins the error identity: painting without
// PermPaint is a permission escalation, and Unpaint enforces the same
// authority checks as Paint.
func TestPaintPermErrorTyped(t *testing.T) {
	b := New()
	noPaint := ca.NewRoot(0x10000, 1<<20, ca.PermsData)
	if err := b.Paint(noPaint, 0x10000, 16); !errors.Is(err, ca.ErrPermEscalation) {
		t.Fatalf("Paint without PermPaint: got %v, want ErrPermEscalation", err)
	}
	if err := b.Unpaint(noPaint, 0x10000, 16); !errors.Is(err, ca.ErrPermEscalation) {
		t.Fatalf("Unpaint without PermPaint: got %v, want ErrPermEscalation", err)
	}
	if err := b.Paint(noPaint.ClearTag(), 0x10000, 16); !errors.Is(err, ca.ErrTagCleared) {
		t.Fatalf("Paint with untagged authority: got %v, want ErrTagCleared", err)
	}
}

// TestPaintBoundsViolations covers both ends of the authority range,
// including a length that runs exactly one granule past the top.
func TestPaintBoundsViolations(t *testing.T) {
	b := New()
	a := ca.NewRoot(0x10000, 1<<10, ca.PermPaint) // [0x10000, 0x10400)
	if err := b.Paint(a, 0x10000-ca.GranuleSize, ca.GranuleSize); err == nil {
		t.Fatal("paint one granule below base allowed")
	}
	if err := b.Paint(a, 0x10400, ca.GranuleSize); err == nil {
		t.Fatal("paint starting at top allowed")
	}
	if err := b.Paint(a, 0x10400-ca.GranuleSize, 2*ca.GranuleSize); err == nil {
		t.Fatal("paint straddling top allowed")
	}
	if err := b.Paint(a, 0x10000, 1<<10); err != nil {
		t.Fatalf("full-range paint rejected: %v", err)
	}
	if got := b.CountPaintedInRange(0x10000, 1<<10); got != (1<<10)/int(ca.GranuleSize) {
		t.Fatalf("full-range paint set %d granules", got)
	}
}

// TestChunkEdgeStraddle paints a span straddling the 512 KiB chunk
// boundary and probes granules on both sides of the edge.
func TestChunkEdgeStraddle(t *testing.T) {
	b := New()
	a := ca.NewRoot(0, 1<<32, ca.PermPaint)
	edge := uint64(chunkGranules) * ca.GranuleSize // 512 KiB: first addr of chunk 1
	start := edge - 2*ca.GranuleSize
	if err := b.Paint(a, start, 4*ca.GranuleSize); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 4; off++ {
		if !b.Test(start + off*ca.GranuleSize) {
			t.Fatalf("granule %d of the straddle not painted", off)
		}
	}
	if b.Test(start-ca.GranuleSize) || b.Test(edge+2*ca.GranuleSize) {
		t.Fatal("paint leaked outside the straddle")
	}
	if got := b.CountPaintedInRange(start-ca.GranuleSize, 6*ca.GranuleSize); got != 4 {
		t.Fatalf("count across the edge = %d, want 4", got)
	}
	if err := b.Unpaint(a, start, 4*ca.GranuleSize); err != nil {
		t.Fatal(err)
	}
	if b.PaintedGranules() != 0 {
		t.Fatalf("straddle unpaint left %d granules", b.PaintedGranules())
	}
}

// TestNeverPaintedChunkProbe probes a chunk that has never had a bit set:
// no chunk storage exists and every query must report clean.
func TestNeverPaintedChunkProbe(t *testing.T) {
	b := New()
	a := ca.NewRoot(0, 1<<32, ca.PermPaint)
	if err := b.Paint(a, 0x1000, 64); err != nil { // chunk 0 only
		t.Fatal(err)
	}
	far := uint64(3) * uint64(chunkGranules) * ca.GranuleSize // chunk 3: untouched
	if b.Test(far) || b.Test(far+ca.GranuleSize) {
		t.Fatal("probe of a never-painted chunk returned painted")
	}
	if b.AnyPaintedInRange(far, 512<<10) {
		t.Fatal("AnyPaintedInRange true over a never-painted chunk")
	}
	if got := b.CountPaintedInRange(far, 512<<10); got != 0 {
		t.Fatalf("CountPaintedInRange over a never-painted chunk = %d", got)
	}
	visited := 0
	b.ForEachPainted(func(addr uint64) bool {
		if addr >= far {
			t.Fatalf("ForEachPainted visited never-painted chunk at %#x", addr)
		}
		visited++
		return true
	})
	if visited != 4 {
		t.Fatalf("ForEachPainted visited %d granules, want 4", visited)
	}
}
