package shadow

import (
	"math/rand"
	"testing"

	"repro/internal/ca"
)

// hugeAuth spans several chunk groups (one group word covers 64 chunks =
// 32 MiB of address space), so tests can paint across group boundaries.
func hugeAuth() ca.Capability {
	return ca.NewRoot(0, 1<<28, ca.PermsData|ca.PermPaint)
}

const chunkSpan = chunkGranules * ca.GranuleSize

// TestChunkCacheInvalidatedByFree is the satellite regression for the
// single-entry chunk cache: freeing a chunk (last painted bit cleared)
// while the cache points at it, then recycling that chunk's storage for a
// different address range, must not let PaintedWord serve the recycled
// chunk's contents through the stale cache entry.
func TestChunkCacheInvalidatedByFree(t *testing.T) {
	for _, flat := range []bool{false, true} {
		b := New()
		b.FlatSet = flat
		a := hugeAuth()
		addrA := uint64(3 * chunkSpan)       // chunk 3
		addrB := uint64(7*chunkSpan + 0x400) // chunk 7, same word offset pattern
		if err := b.Paint(a, addrA, ca.GranuleSize); err != nil {
			t.Fatal(err)
		}
		if b.PaintedWord(addrA) == 0 { // primes the cache on chunk 3
			t.Fatalf("flat=%v: painted word reads zero", flat)
		}
		// Unpainting the only bit frees chunk 3; the fast path recycles its
		// storage, so the next paint below reuses the same *chunk.
		if err := b.Unpaint(a, addrA, ca.GranuleSize); err != nil {
			t.Fatal(err)
		}
		if err := b.Paint(a, addrB, ca.GranuleSize); err != nil {
			t.Fatal(err)
		}
		if got := b.PaintedWord(addrA); got != 0 {
			t.Fatalf("flat=%v: PaintedWord of freed chunk = %#x via stale cache, want 0", flat, got)
		}
		if b.Test(addrA) {
			t.Fatalf("flat=%v: Test of freed chunk reads painted", flat)
		}
		if b.PaintedWord(addrB) == 0 || !b.Test(addrB) {
			t.Fatalf("flat=%v: repainted chunk lost its bit", flat)
		}
		if b.ChunkCount() != 1 {
			t.Fatalf("flat=%v: %d chunks live, want 1", flat, b.ChunkCount())
		}
	}
}

// TestForEachPaintedAscendingAcrossGroups pins the iteration order of the
// group→chunk→word descent at its seams: granules painted (in scrambled
// order) around chunk boundaries and chunk-group boundaries must come back
// strictly ascending and complete.
func TestForEachPaintedAscendingAcrossGroups(t *testing.T) {
	b := New()
	a := hugeAuth()
	addrs := []uint64{
		0,                          // chunk 0, group 0
		63*chunkSpan + 0x1000,      // last chunk of group 0
		64 * chunkSpan,             // first chunk of group 1
		64*chunkSpan + chunkSpan/2, // mid-chunk
		127*chunkSpan + 0x40,       // last chunk of group 1
		128 * chunkSpan,            // group 2
		130*chunkSpan + 0x7f0,
	}
	perm := rand.New(rand.NewSource(9)).Perm(len(addrs))
	for _, i := range perm {
		if err := b.Paint(a, addrs[i], ca.GranuleSize); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	b.ForEachPainted(func(addr uint64) bool {
		got = append(got, addr)
		return true
	})
	if len(got) != len(addrs) {
		t.Fatalf("visited %d granules, want %d", len(got), len(addrs))
	}
	for i, addr := range got {
		want := addrs[i] &^ (ca.GranuleSize - 1)
		if addr != want {
			t.Fatalf("position %d: got %#x, want %#x", i, addr, want)
		}
		if i > 0 && addr <= got[i-1] {
			t.Fatalf("not ascending: %#x after %#x", addr, got[i-1])
		}
	}
}

// TestFlatFastSetEquivalence is the flat-vs-fast differential suite: the
// word-masked fast path and the granule-by-granule flat path must leave
// bit-identical bitmaps — same Test answers, same painted counts, same
// chunk population, same ForEachPaintedWord stream — after any randomized
// paint/unpaint history.
func TestFlatFastSetEquivalence(t *testing.T) {
	a := hugeAuth()
	fast, flat := New(), New()
	flat.FlatSet = true
	rng := rand.New(rand.NewSource(77))
	span := uint64(140 * chunkSpan) // ~3 chunk groups
	for i := 0; i < 3000; i++ {
		addr := uint64(rng.Int63n(int64(span/ca.GranuleSize))) * ca.GranuleSize
		n := uint64(1+rng.Intn(3*chunkGranules/2)) * ca.GranuleSize
		if addr+n > span {
			n = span - addr
		}
		if rng.Intn(3) > 0 {
			if err := fast.Paint(a, addr, n); err != nil {
				t.Fatal(err)
			}
			if err := flat.Paint(a, addr, n); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := fast.Unpaint(a, addr, n); err != nil {
				t.Fatal(err)
			}
			if err := flat.Unpaint(a, addr, n); err != nil {
				t.Fatal(err)
			}
		}
	}
	if fast.PaintedGranules() != flat.PaintedGranules() {
		t.Fatalf("painted granules: fast %d, flat %d", fast.PaintedGranules(), flat.PaintedGranules())
	}
	if fast.ChunkCount() != flat.ChunkCount() {
		t.Fatalf("chunk count: fast %d, flat %d", fast.ChunkCount(), flat.ChunkCount())
	}
	type wm struct{ base, mask uint64 }
	collect := func(b *Bitmap) []wm {
		var out []wm
		b.ForEachPaintedWord(func(base, mask uint64) bool {
			out = append(out, wm{base, mask})
			return true
		})
		return out
	}
	fw, lw := collect(fast), collect(flat)
	if len(fw) != len(lw) {
		t.Fatalf("painted-word stream length: fast %d, flat %d", len(fw), len(lw))
	}
	for i := range fw {
		if fw[i] != lw[i] {
			t.Fatalf("word %d: fast {%#x %#x}, flat {%#x %#x}",
				i, fw[i].base, fw[i].mask, lw[i].base, lw[i].mask)
		}
	}
	// Spot-probe Test agreement over a deterministic sample.
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Int63n(int64(span/ca.GranuleSize))) * ca.GranuleSize
		if fast.Test(addr) != flat.Test(addr) {
			t.Fatalf("Test(%#x): fast %v, flat %v", addr, fast.Test(addr), flat.Test(addr))
		}
	}
}
