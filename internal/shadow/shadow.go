// Package shadow implements the revocation bitmap (§2.2.2): one bit per
// capability-sized granule of address space. A set bit marks the granule's
// address as quarantined; any valid capability whose base falls on a marked
// granule is subject to revocation.
//
// The bitmap is a kernel-provided object painted by user-space allocators
// and read by the kernel's revoker. Access is capability-gated as in
// Cornucopia's appendix A: painting requires a capability with PermPaint
// whose bounds cover the painted range, so allocators can only quarantine
// their own heaps.
//
// Storage is chunked, sparse and hierarchical: each 512 KiB chunk carries a
// nonzero-word summary (one bit per 64-granule word), and a chunk-group
// index (one bit per present chunk, 64 chunks — 32 MiB — per group word)
// sits above the chunk map. Whole-bitmap iteration therefore skips empty
// spans at every level and costs O(painted words), not O(address-space
// size); chunks whose last bit is cleared are freed back to a pool, so the
// bitmap's footprint tracks the quarantine, not the heap's high-water
// mark. VAOf exposes the virtual address of the bitmap word covering a
// heap address so callers can charge memory-system costs for paints and
// probes at the right locations.
package shadow

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/ca"
)

// chunkGranules is the number of granule bits per storage chunk; each chunk
// covers chunkGranules*16 bytes = 512 KiB of address space.
const chunkGranules = 32768
const chunkWords = chunkGranules / 64

// chunkSumWords is the size of a chunk's nonzero-word summary: one bit per
// 64-bit word of the chunk.
const chunkSumWords = chunkWords / 64

// Base is the virtual address at which the revocation bitmap is mapped in
// simulated processes. Only used for cost attribution.
const Base = 0x4000_0000_0000

// chunk is one 512 KiB span's worth of bitmap. sum is the nonzero-word
// summary (bit w set iff words[w] != 0) and painted counts the chunk's set
// bits, so an emptied chunk is detected in O(1) and iteration descends
// only to nonzero words.
type chunk struct {
	words   [chunkWords]uint64
	sum     [chunkSumWords]uint64
	painted int
}

// Bitmap is a process's revocation bitmap.
//
// A single-entry chunk cache accelerates the sweep's probe sequence: a
// revocation sweep probes capability bases in allocation-address order, so
// consecutive probes overwhelmingly land in the same 512 KiB chunk and the
// chunk-map lookup amortizes away. The cache also remembers misses (a nil
// chunk), since huge unpainted spans are the common case. Every mutation
// path (set, and chunk freeing inside it) invalidates the cache — a freed
// chunk must never be readable through a stale positive entry. Reads
// populate the cache, so Bitmap methods — like the rest of the simulated
// machine — are not safe for concurrent host access; the engine's
// one-thread-at-a-time execution provides the exclusion.
type Bitmap struct {
	chunks  map[uint64]*chunk
	groups  map[uint64]uint64 // group index → present-chunk mask
	painted uint64            // currently-set bits

	// chunkFree recycles freed chunks. A chunk is freed only when its
	// last bit clears, so a recycled chunk is all-zero by construction
	// and needs no re-zeroing. Disabled under FlatSet.
	chunkFree []*chunk

	// FlatSet selects the flat differential paint path (the kernel's
	// MemPathFlat): Paint/Unpaint walk granule by granule and chunks are
	// freshly allocated instead of recycled, reproducing the pre-sparse
	// storage behaviour. Both paths produce identical bitmap state; the
	// flat one is kept as the perf baseline and correctness oracle.
	FlatSet bool

	cacheKey   uint64
	cacheChunk *chunk // nil = chunk absent (negative entry)
	cacheOK    bool
}

// New creates an empty bitmap.
func New() *Bitmap {
	return &Bitmap{
		chunks: make(map[uint64]*chunk),
		groups: make(map[uint64]uint64),
	}
}

// coords converts a heap address to chunk/word/bit coordinates.
func coords(addr uint64) (ck uint64, word int, bit uint) {
	g := addr / ca.GranuleSize
	return g / chunkGranules, int(g%chunkGranules) / 64, uint(g % 64)
}

// VAOf returns the simulated virtual address of the bitmap byte holding
// addr's bit, for memory-cost attribution.
func VAOf(addr uint64) uint64 {
	return Base + addr/ca.GranuleSize/8
}

// checkAuth validates that auth may paint [addr, addr+length).
func checkAuth(auth ca.Capability, addr, length uint64) error {
	if !auth.Tag() {
		return ca.ErrTagCleared
	}
	if !auth.HasPerms(ca.PermPaint) {
		return fmt.Errorf("shadow: %w: need PermPaint", ca.ErrPermEscalation)
	}
	if addr < auth.Base() || addr+length > auth.Top() {
		return fmt.Errorf("shadow: paint [0x%x,+%d) outside authority [0x%x,0x%x)",
			addr, length, auth.Base(), auth.Top())
	}
	return nil
}

func checkAligned(addr, length uint64) error {
	if addr%ca.GranuleSize != 0 || length%ca.GranuleSize != 0 {
		return fmt.Errorf("shadow: range [0x%x,+%d) not granule-aligned", addr, length)
	}
	return nil
}

// Paint sets the bits for [addr, addr+length), authorized by auth. This is
// what an allocator does to place an allocation in quarantine.
func (b *Bitmap) Paint(auth ca.Capability, addr, length uint64) error {
	if err := checkAuth(auth, addr, length); err != nil {
		return err
	}
	if err := checkAligned(addr, length); err != nil {
		return err
	}
	b.set(addr, length, true)
	return nil
}

// Unpaint clears the bits for [addr, addr+length), done when quarantined
// address space is released for reuse after revocation.
func (b *Bitmap) Unpaint(auth ca.Capability, addr, length uint64) error {
	if err := checkAuth(auth, addr, length); err != nil {
		return err
	}
	if err := checkAligned(addr, length); err != nil {
		return err
	}
	b.set(addr, length, false)
	return nil
}

// addChunk materializes chunk ck, registering it in the group index.
func (b *Bitmap) addChunk(ck uint64) *chunk {
	var c *chunk
	if n := len(b.chunkFree); n > 0 && !b.FlatSet {
		c = b.chunkFree[n-1]
		b.chunkFree[n-1] = nil
		b.chunkFree = b.chunkFree[:n-1]
	} else {
		c = new(chunk)
	}
	b.chunks[ck] = c
	b.groups[ck>>6] |= 1 << uint(ck&63)
	return c
}

// freeChunk releases an emptied chunk: it leaves the map and group index
// and (on the fast path) joins the recycle pool. The single-entry cache
// may hold a positive entry for exactly this chunk, so it is dropped here
// — set already invalidates on entry, but freeing must be safe on its own.
func (b *Bitmap) freeChunk(ck uint64, c *chunk) {
	delete(b.chunks, ck)
	g := ck >> 6
	b.groups[g] &^= 1 << uint(ck&63)
	if b.groups[g] == 0 {
		delete(b.groups, g)
	}
	if !b.FlatSet {
		b.chunkFree = append(b.chunkFree, c)
	}
	b.cacheOK = false
}

// set writes [addr, addr+length)'s bits. The fast path applies whole
// word-masks — a 256-byte quarantine paint is one masked OR instead of 16
// bit loops — and skips absent chunks in O(1) when clearing.
func (b *Bitmap) set(addr, length uint64, v bool) {
	// Mutations can materialize or free chunks, invalidating positive and
	// negative cache entries alike; drop the cache rather than track which
	// case applies.
	b.cacheOK = false
	if b.FlatSet {
		b.setFlat(addr, length, v)
		return
	}
	g := addr / ca.GranuleSize
	end := (addr + length) / ca.GranuleSize
	for g < end {
		ck := g / chunkGranules
		c := b.chunks[ck]
		if c == nil {
			if !v {
				g = (ck + 1) * chunkGranules // nothing to clear here
				continue
			}
			c = b.addChunk(ck)
		}
		stop := (ck + 1) * chunkGranules
		if stop > end {
			stop = end
		}
		for g < stop {
			word, bit := int(g%chunkGranules)/64, uint64(g%64)
			n := 64 - bit
			if g+n > stop {
				n = stop - g
			}
			mask := ^uint64(0)
			if n < 64 {
				mask = 1<<n - 1
			}
			mask <<= bit
			old := c.words[word]
			if v {
				if nw := old | mask; nw != old {
					delta := bits.OnesCount64(nw &^ old)
					b.painted += uint64(delta)
					c.painted += delta
					c.words[word] = nw
					if old == 0 {
						c.sum[word>>6] |= 1 << uint(word&63)
					}
				}
			} else {
				if nw := old &^ mask; nw != old {
					delta := bits.OnesCount64(old &^ nw)
					b.painted -= uint64(delta)
					c.painted -= delta
					c.words[word] = nw
					if nw == 0 {
						c.sum[word>>6] &^= 1 << uint(word&63)
					}
				}
			}
			g += n
		}
		if !v && c.painted == 0 {
			b.freeChunk(ck, c)
		}
	}
}

// setFlat is the granule-by-granule differential oracle for set. It
// maintains exactly the same chunk, summary and group state, so the two
// paths are interchangeable at any point.
func (b *Bitmap) setFlat(addr, length uint64, v bool) {
	for g := addr / ca.GranuleSize; g < (addr+length)/ca.GranuleSize; g++ {
		ck, word, bit := g/chunkGranules, int(g%chunkGranules)/64, uint(g%64)
		c := b.chunks[ck]
		if c == nil {
			if !v {
				continue
			}
			c = b.addChunk(ck)
		}
		old := c.words[word]
		if v {
			c.words[word] |= 1 << bit
			if c.words[word] != old {
				b.painted++
				c.painted++
				if old == 0 {
					c.sum[word>>6] |= 1 << uint(word&63)
				}
			}
		} else {
			c.words[word] &^= 1 << bit
			if c.words[word] != old {
				b.painted--
				c.painted--
				if c.words[word] == 0 {
					c.sum[word>>6] &^= 1 << uint(word&63)
				}
				if c.painted == 0 {
					b.freeChunk(ck, c)
				}
			}
		}
	}
}

// Clone returns a deep copy of the bitmap (fork copies the revocation
// state along with the heap it describes).
func (b *Bitmap) Clone() *Bitmap {
	c := New()
	c.painted = b.painted
	c.FlatSet = b.FlatSet
	for k, v := range b.chunks {
		w := *v
		c.chunks[k] = &w
	}
	for k, v := range b.groups {
		c.groups[k] = v
	}
	return c
}

// Test reports whether addr's granule is painted. Revocation's per-granule
// sweep kernel probes this for the base of every capability it inspects;
// each call pays a chunk-map lookup, which is exactly the host cost
// PaintedWord amortizes for the word-wise kernel.
func (b *Bitmap) Test(addr uint64) bool {
	ck, word, bit := coords(addr)
	c := b.chunks[ck]
	if c == nil {
		return false
	}
	return c.words[word]&(1<<bit) != 0
}

// PaintedWord returns the 64-granule painted mask containing addr: bit i
// covers the granule at (addr &^ wordSpan-1) + i*GranuleSize, where
// wordSpan = 64*GranuleSize = 1 KiB. The alignment matches tmem's tag
// words — word w of a page's tag bitmap corresponds to PaintedWord of the
// page address + w KiB — so a word-wise sweep can intersect tag and shadow
// words directly. Lookups go through the single-entry chunk cache; a
// 64-granule word never spans chunks (chunkGranules is a multiple of 64).
func (b *Bitmap) PaintedWord(addr uint64) uint64 {
	g := addr / ca.GranuleSize
	ck, word := g/chunkGranules, int(g%chunkGranules)/64
	if !b.cacheOK || b.cacheKey != ck {
		b.cacheKey = ck
		b.cacheChunk = b.chunks[ck]
		b.cacheOK = true
	}
	if b.cacheChunk == nil {
		return 0
	}
	return b.cacheChunk.words[word]
}

// PaintedGranules returns the number of currently painted granules.
func (b *Bitmap) PaintedGranules() uint64 { return b.painted }

// PaintedBytes returns the quarantined address-space volume implied by the
// painted bits.
func (b *Bitmap) PaintedBytes() uint64 { return b.painted * ca.GranuleSize }

// ChunkCount returns the number of materialized chunks (the bitmap's
// sparse footprint, in 4 KiB units).
func (b *Bitmap) ChunkCount() int { return len(b.chunks) }

// AnyPaintedInRange reports whether any granule in [addr, addr+length) is
// painted; used by sweep heuristics and tests.
func (b *Bitmap) AnyPaintedInRange(addr, length uint64) bool {
	for g := addr / ca.GranuleSize; g < (addr+length+ca.GranuleSize-1)/ca.GranuleSize; g++ {
		ck, word, bit := g/chunkGranules, int(g%chunkGranules)/64, uint(g%64)
		if c := b.chunks[ck]; c != nil && c.words[word]&(1<<bit) != 0 {
			return true
		}
	}
	return false
}

// ForEachPaintedWord visits every nonzero 64-granule word of the bitmap in
// ascending address order: base is the VA of the word's first granule and
// mask its painted bits, snapshotted at visit time. It descends the
// chunk-group → chunk → word-summary hierarchy, so the walk costs
// O(painted words) plus a sort of the (64× coarser than chunks) group
// index. Returns false if fn stopped the iteration early.
func (b *Bitmap) ForEachPaintedWord(fn func(base uint64, mask uint64) bool) bool {
	keys := make([]uint64, 0, len(b.groups))
	for k := range b.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, gk := range keys {
		gw := b.groups[gk]
		for gw != 0 {
			ck := gk<<6 + uint64(bits.TrailingZeros64(gw))
			gw &= gw - 1
			c := b.chunks[ck]
			for si := 0; si < chunkSumWords; si++ {
				sw := c.sum[si]
				for sw != 0 {
					w := si<<6 + bits.TrailingZeros64(sw)
					sw &= sw - 1
					base := (ck*chunkGranules + uint64(w)*64) * ca.GranuleSize
					if !fn(base, c.words[w]) {
						return false
					}
				}
			}
		}
	}
	return true
}

// ForEachPainted visits every painted granule's base address in ascending
// order, stopping early if fn returns false. Built on ForEachPaintedWord,
// so audits (internal/oracle) cost O(painted granules) rather than a scan
// and sort of every chunk.
func (b *Bitmap) ForEachPainted(fn func(addr uint64) bool) {
	b.ForEachPaintedWord(func(base uint64, mask uint64) bool {
		for m := mask; m != 0; m &= m - 1 {
			if !fn(base + uint64(bits.TrailingZeros64(m))*ca.GranuleSize) {
				return false
			}
		}
		return true
	})
}

// CountPaintedInRange returns the painted granule count within the range.
func (b *Bitmap) CountPaintedInRange(addr, length uint64) int {
	n := 0
	for g := addr / ca.GranuleSize; g < (addr+length)/ca.GranuleSize; {
		ck, word, bit := g/chunkGranules, int(g%chunkGranules)/64, uint(g%64)
		c := b.chunks[ck]
		if c == nil {
			// Skip to next chunk boundary.
			g = (g/chunkGranules + 1) * chunkGranules
			continue
		}
		if bit == 0 && g+64 <= (addr+length)/ca.GranuleSize {
			n += bits.OnesCount64(c.words[word])
			g += 64
			continue
		}
		if c.words[word]&(1<<bit) != 0 {
			n++
		}
		g++
	}
	return n
}
