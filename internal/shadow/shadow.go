// Package shadow implements the revocation bitmap (§2.2.2): one bit per
// capability-sized granule of address space. A set bit marks the granule's
// address as quarantined; any valid capability whose base falls on a marked
// granule is subject to revocation.
//
// The bitmap is a kernel-provided object painted by user-space allocators
// and read by the kernel's revoker. Access is capability-gated as in
// Cornucopia's appendix A: painting requires a capability with PermPaint
// whose bounds cover the painted range, so allocators can only quarantine
// their own heaps.
//
// Storage is chunked and sparse. VAOf exposes the virtual address of the
// bitmap word covering a heap address so callers can charge memory-system
// costs for paints and probes at the right locations.
package shadow

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/ca"
)

// chunkGranules is the number of granule bits per storage chunk; each chunk
// covers chunkGranules*16 bytes = 512 KiB of address space.
const chunkGranules = 32768
const chunkWords = chunkGranules / 64

// Base is the virtual address at which the revocation bitmap is mapped in
// simulated processes. Only used for cost attribution.
const Base = 0x4000_0000_0000

// Bitmap is a process's revocation bitmap.
//
// A single-entry chunk cache accelerates the sweep's probe sequence: a
// revocation sweep probes capability bases in allocation-address order, so
// consecutive probes overwhelmingly land in the same 512 KiB chunk and the
// chunk-map lookup amortizes away. The cache also remembers misses (a nil
// chunk), since huge unpainted spans are the common case. Reads populate
// the cache, so Bitmap methods — like the rest of the simulated machine —
// are not safe for concurrent host access; the engine's
// one-thread-at-a-time execution provides the exclusion.
type Bitmap struct {
	chunks  map[uint64]*[chunkWords]uint64
	painted uint64 // currently-set bits

	cacheKey   uint64
	cacheChunk *[chunkWords]uint64 // nil = chunk absent (negative entry)
	cacheOK    bool
}

// New creates an empty bitmap.
func New() *Bitmap {
	return &Bitmap{chunks: make(map[uint64]*[chunkWords]uint64)}
}

// coords converts a heap address to chunk/word/bit coordinates.
func coords(addr uint64) (chunk uint64, word int, bit uint) {
	g := addr / ca.GranuleSize
	return g / chunkGranules, int(g%chunkGranules) / 64, uint(g % 64)
}

// VAOf returns the simulated virtual address of the bitmap byte holding
// addr's bit, for memory-cost attribution.
func VAOf(addr uint64) uint64 {
	return Base + addr/ca.GranuleSize/8
}

// checkAuth validates that auth may paint [addr, addr+length).
func checkAuth(auth ca.Capability, addr, length uint64) error {
	if !auth.Tag() {
		return ca.ErrTagCleared
	}
	if !auth.HasPerms(ca.PermPaint) {
		return fmt.Errorf("shadow: %w: need PermPaint", ca.ErrPermEscalation)
	}
	if addr < auth.Base() || addr+length > auth.Top() {
		return fmt.Errorf("shadow: paint [0x%x,+%d) outside authority [0x%x,0x%x)",
			addr, length, auth.Base(), auth.Top())
	}
	return nil
}

func checkAligned(addr, length uint64) error {
	if addr%ca.GranuleSize != 0 || length%ca.GranuleSize != 0 {
		return fmt.Errorf("shadow: range [0x%x,+%d) not granule-aligned", addr, length)
	}
	return nil
}

// Paint sets the bits for [addr, addr+length), authorized by auth. This is
// what an allocator does to place an allocation in quarantine.
func (b *Bitmap) Paint(auth ca.Capability, addr, length uint64) error {
	if err := checkAuth(auth, addr, length); err != nil {
		return err
	}
	if err := checkAligned(addr, length); err != nil {
		return err
	}
	b.set(addr, length, true)
	return nil
}

// Unpaint clears the bits for [addr, addr+length), done when quarantined
// address space is released for reuse after revocation.
func (b *Bitmap) Unpaint(auth ca.Capability, addr, length uint64) error {
	if err := checkAuth(auth, addr, length); err != nil {
		return err
	}
	if err := checkAligned(addr, length); err != nil {
		return err
	}
	b.set(addr, length, false)
	return nil
}

func (b *Bitmap) set(addr, length uint64, v bool) {
	// Paints can materialize chunks, invalidating a negative cache entry;
	// drop the cache rather than track which case applies.
	b.cacheOK = false
	for g := addr / ca.GranuleSize; g < (addr+length)/ca.GranuleSize; g++ {
		chunk, word, bit := g/chunkGranules, int(g%chunkGranules)/64, uint(g%64)
		c := b.chunks[chunk]
		if c == nil {
			if !v {
				continue
			}
			c = new([chunkWords]uint64)
			b.chunks[chunk] = c
		}
		old := c[word]
		if v {
			c[word] |= 1 << bit
			if c[word] != old {
				b.painted++
			}
		} else {
			c[word] &^= 1 << bit
			if c[word] != old {
				b.painted--
			}
		}
	}
}

// Clone returns a deep copy of the bitmap (fork copies the revocation
// state along with the heap it describes).
func (b *Bitmap) Clone() *Bitmap {
	c := New()
	c.painted = b.painted
	for k, v := range b.chunks {
		w := *v
		c.chunks[k] = &w
	}
	return c
}

// Test reports whether addr's granule is painted. Revocation's per-granule
// sweep kernel probes this for the base of every capability it inspects;
// each call pays a chunk-map lookup, which is exactly the host cost
// PaintedWord amortizes for the word-wise kernel.
func (b *Bitmap) Test(addr uint64) bool {
	chunk, word, bit := coords(addr)
	c := b.chunks[chunk]
	if c == nil {
		return false
	}
	return c[word]&(1<<bit) != 0
}

// PaintedWord returns the 64-granule painted mask containing addr: bit i
// covers the granule at (addr &^ wordSpan-1) + i*GranuleSize, where
// wordSpan = 64*GranuleSize = 1 KiB. The alignment matches tmem's tag
// words — word w of a page's tag bitmap corresponds to PaintedWord of the
// page address + w KiB — so a word-wise sweep can intersect tag and shadow
// words directly. Lookups go through the single-entry chunk cache; a
// 64-granule word never spans chunks (chunkGranules is a multiple of 64).
func (b *Bitmap) PaintedWord(addr uint64) uint64 {
	g := addr / ca.GranuleSize
	chunk, word := g/chunkGranules, int(g%chunkGranules)/64
	if !b.cacheOK || b.cacheKey != chunk {
		b.cacheKey = chunk
		b.cacheChunk = b.chunks[chunk]
		b.cacheOK = true
	}
	if b.cacheChunk == nil {
		return 0
	}
	return b.cacheChunk[word]
}

// PaintedGranules returns the number of currently painted granules.
func (b *Bitmap) PaintedGranules() uint64 { return b.painted }

// PaintedBytes returns the quarantined address-space volume implied by the
// painted bits.
func (b *Bitmap) PaintedBytes() uint64 { return b.painted * ca.GranuleSize }

// AnyPaintedInRange reports whether any granule in [addr, addr+length) is
// painted; used by sweep heuristics and tests.
func (b *Bitmap) AnyPaintedInRange(addr, length uint64) bool {
	for g := addr / ca.GranuleSize; g < (addr+length+ca.GranuleSize-1)/ca.GranuleSize; g++ {
		chunk, word, bit := g/chunkGranules, int(g%chunkGranules)/64, uint(g%64)
		if c := b.chunks[chunk]; c != nil && c[word]&(1<<bit) != 0 {
			return true
		}
	}
	return false
}

// ForEachPainted visits every painted granule's base address in ascending
// order, stopping early if fn returns false. Iteration sorts the sparse
// chunk index, so this is for audits (internal/oracle), not hot paths.
func (b *Bitmap) ForEachPainted(fn func(addr uint64) bool) {
	keys := make([]uint64, 0, len(b.chunks))
	for k := range b.chunks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		c := b.chunks[k]
		for w := 0; w < chunkWords; w++ {
			word := c[w]
			for word != 0 {
				bit := bits.TrailingZeros64(word)
				word &^= 1 << uint(bit)
				g := k*chunkGranules + uint64(w)*64 + uint64(bit)
				if !fn(g * ca.GranuleSize) {
					return
				}
			}
		}
	}
}

// CountPaintedInRange returns the painted granule count within the range.
func (b *Bitmap) CountPaintedInRange(addr, length uint64) int {
	n := 0
	for g := addr / ca.GranuleSize; g < (addr+length)/ca.GranuleSize; {
		chunk, word, bit := g/chunkGranules, int(g%chunkGranules)/64, uint(g%64)
		c := b.chunks[chunk]
		if c == nil {
			// Skip to next chunk boundary.
			g = (g/chunkGranules + 1) * chunkGranules
			continue
		}
		if bit == 0 && g+64 <= (addr+length)/ca.GranuleSize {
			n += bits.OnesCount64(c[word])
			g += 64
			continue
		}
		if c[word]&(1<<bit) != 0 {
			n++
		}
		g++
	}
	return n
}
