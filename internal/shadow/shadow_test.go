package shadow

import (
	"testing"
	"testing/quick"

	"repro/internal/ca"
)

func auth() ca.Capability {
	return ca.NewRoot(0x10000, 1<<20, ca.PermsData|ca.PermPaint)
}

func TestPaintTestUnpaint(t *testing.T) {
	b := New()
	a := auth()
	if err := b.Paint(a, 0x10000, 64); err != nil {
		t.Fatal(err)
	}
	if !b.Test(0x10000) || !b.Test(0x10030) {
		t.Fatal("painted granules not set")
	}
	if b.Test(0x10040) {
		t.Fatal("bit beyond painted range set")
	}
	if b.PaintedBytes() != 64 {
		t.Fatalf("painted bytes = %d, want 64", b.PaintedBytes())
	}
	if err := b.Unpaint(a, 0x10000, 64); err != nil {
		t.Fatal(err)
	}
	if b.Test(0x10000) || b.PaintedGranules() != 0 {
		t.Fatal("unpaint incomplete")
	}
}

func TestPaintRequiresAuthority(t *testing.T) {
	b := New()
	noPaint := ca.NewRoot(0x10000, 1<<20, ca.PermsData)
	if err := b.Paint(noPaint, 0x10000, 16); err == nil {
		t.Fatal("paint without PermPaint allowed")
	}
	a := auth()
	if err := b.Paint(a, 0x8000, 16); err == nil {
		t.Fatal("paint below authority bounds allowed")
	}
	if err := b.Paint(a.ClearTag(), 0x10000, 16); err == nil {
		t.Fatal("paint with untagged authority allowed")
	}
	if b.PaintedGranules() != 0 {
		t.Fatal("unauthorized paint took effect")
	}
}

func TestPaintRejectsMisaligned(t *testing.T) {
	b := New()
	if err := b.Paint(auth(), 0x10008, 16); err == nil {
		t.Fatal("misaligned paint allowed")
	}
	if err := b.Paint(auth(), 0x10000, 24); err == nil {
		t.Fatal("misaligned length allowed")
	}
}

func TestDoublePaintIdempotent(t *testing.T) {
	b := New()
	a := auth()
	b.Paint(a, 0x10000, 32)
	b.Paint(a, 0x10000, 32)
	if b.PaintedGranules() != 2 {
		t.Fatalf("painted = %d, want 2", b.PaintedGranules())
	}
}

func TestRangeQueries(t *testing.T) {
	b := New()
	a := auth()
	b.Paint(a, 0x20000, 16)
	b.Paint(a, 0x20040, 32)
	if !b.AnyPaintedInRange(0x20000, 0x100) {
		t.Fatal("AnyPaintedInRange missed bits")
	}
	if b.AnyPaintedInRange(0x20010, 0x30) {
		t.Fatal("AnyPaintedInRange false positive")
	}
	if got := b.CountPaintedInRange(0x20000, 0x100); got != 3 {
		t.Fatalf("CountPaintedInRange = %d, want 3", got)
	}
}

func TestCountAcrossChunks(t *testing.T) {
	b := New()
	a := ca.NewRoot(0, 1<<32, ca.PermPaint)
	// Paint a run spanning a chunk boundary (chunk covers 512 KiB).
	start := uint64(512<<10) - 64
	if err := b.Paint(a, start, 128); err != nil {
		t.Fatal(err)
	}
	if got := b.CountPaintedInRange(0, 1<<21); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
}

func TestVAOfMonotone(t *testing.T) {
	if VAOf(0x10000) >= VAOf(0x20000) {
		t.Fatal("VAOf not monotone")
	}
	if VAOf(0)+1 != VAOf(128) {
		t.Fatalf("VAOf density wrong: %#x %#x", VAOf(0), VAOf(128))
	}
}

// Property: paint/unpaint round-trips leave the bitmap empty, and Test
// agrees with a reference model.
func TestQuickPaintModel(t *testing.T) {
	a := ca.NewRoot(0, 1<<30, ca.PermPaint)
	f := func(ops []uint32) bool {
		b := New()
		ref := map[uint64]bool{}
		for _, op := range ops {
			addr := uint64(op&0xffff) * ca.GranuleSize
			n := uint64(op>>16)%8 + 1
			if op&0x80000000 != 0 {
				b.Paint(a, addr, n*ca.GranuleSize)
				for i := uint64(0); i < n; i++ {
					ref[addr+i*ca.GranuleSize] = true
				}
			} else {
				b.Unpaint(a, addr, n*ca.GranuleSize)
				for i := uint64(0); i < n; i++ {
					delete(ref, addr+i*ca.GranuleSize)
				}
			}
		}
		count := uint64(0)
		for addr, v := range ref {
			if v {
				count++
				if !b.Test(addr) {
					return false
				}
			}
		}
		return b.PaintedGranules() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTest(b *testing.B) {
	bm := New()
	bm.Paint(auth(), 0x10000, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Test(0x10000 + uint64(i%4096)*16)
	}
}
