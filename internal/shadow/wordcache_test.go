package shadow

import (
	"math/rand"
	"testing"

	"repro/internal/ca"
)

// wideAuth covers several chunks so tests can paint across chunk
// boundaries (one chunk spans 512 KiB of address space).
func wideAuth() ca.Capability {
	return ca.NewRoot(0, 1<<24, ca.PermsData|ca.PermPaint)
}

const wordSpan = 64 * ca.GranuleSize

// TestPaintedWordMatchesTest is the word/bit equivalence property: for any
// painted pattern, every bit of PaintedWord must agree with the
// per-granule Test the granule kernel uses.
func TestPaintedWordMatchesTest(t *testing.T) {
	b := New()
	a := wideAuth()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		addr := uint64(rng.Intn(1<<19)) * ca.GranuleSize
		n := uint64(1+rng.Intn(100)) * ca.GranuleSize
		if err := b.Paint(a, addr, n); err != nil {
			t.Fatal(err)
		}
	}
	for base := uint64(0); base < (1<<19+256)*ca.GranuleSize; base += wordSpan {
		word := b.PaintedWord(base)
		for bit := uint64(0); bit < 64; bit++ {
			gaddr := base + bit*ca.GranuleSize
			if got, want := word&(1<<bit) != 0, b.Test(gaddr); got != want {
				t.Fatalf("PaintedWord(0x%x) bit %d = %v, Test(0x%x) = %v", base, bit, got, gaddr, want)
			}
		}
	}
}

// TestPaintedWordUnaligned pins that any address inside a word returns the
// same mask as its aligned base — the kernel probes with capability bases,
// not word-aligned addresses.
func TestPaintedWordUnaligned(t *testing.T) {
	b := New()
	if err := b.Paint(wideAuth(), 0x2000, 3*ca.GranuleSize); err != nil {
		t.Fatal(err)
	}
	base := uint64(0x2000) &^ (wordSpan - 1)
	want := b.PaintedWord(base)
	if want == 0 {
		t.Fatal("painted word reads zero")
	}
	for off := uint64(0); off < wordSpan; off += ca.GranuleSize {
		if got := b.PaintedWord(base + off); got != want {
			t.Fatalf("PaintedWord(base+0x%x) = %#x, want %#x", off, got, want)
		}
	}
}

// TestPaintedWordCacheInvalidation exercises the single-entry chunk cache:
// positive and negative entries must both be dropped by paints and
// unpaints, including the trap case of a negative entry for a chunk that a
// later paint materializes.
func TestPaintedWordCacheInvalidation(t *testing.T) {
	b := New()
	a := wideAuth()

	// Negative entry first: the chunk for this address does not exist yet.
	if got := b.PaintedWord(0x100000); got != 0 {
		t.Fatalf("empty bitmap PaintedWord = %#x", got)
	}
	// Materialize that very chunk; the stale nil entry must not mask it.
	if err := b.Paint(a, 0x100000, ca.GranuleSize); err != nil {
		t.Fatal(err)
	}
	if got := b.PaintedWord(0x100000); got == 0 {
		t.Fatal("paint invisible through stale negative cache entry")
	}

	// Positive entry, then unpaint: the cached chunk pointer stays valid
	// but the word content changed; the read must see the clear.
	if err := b.Unpaint(a, 0x100000, ca.GranuleSize); err != nil {
		t.Fatal(err)
	}
	if got := b.PaintedWord(0x100000); got != 0 {
		t.Fatalf("unpaint invisible: PaintedWord = %#x", got)
	}

	// Cache follows chunk switches: alternate between two chunks.
	if err := b.Paint(a, 0, ca.GranuleSize); err != nil { // chunk 0
		t.Fatal(err)
	}
	const otherChunk = chunkGranules * ca.GranuleSize // chunk 1 start
	if err := b.Paint(a, otherChunk, 2*ca.GranuleSize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := b.PaintedWord(0); got != 1 {
			t.Fatalf("chunk 0 word = %#x, want 1", got)
		}
		if got := b.PaintedWord(otherChunk); got != 3 {
			t.Fatalf("chunk 1 word = %#x, want 3", got)
		}
	}

	// Clone must not share cache state observable through mutation.
	c := b.Clone()
	if err := b.Unpaint(a, 0, ca.GranuleSize); err != nil {
		t.Fatal(err)
	}
	if got := c.PaintedWord(0); got != 1 {
		t.Fatalf("clone lost its painted bit: %#x", got)
	}
}

// TestForEachPaintedAscendingAcrossChunks pins ForEachPainted's ordering
// contract: granules painted across several chunks, in shuffled order,
// come back as one strictly ascending address stream with nothing missing;
// returning false stops the walk immediately.
func TestForEachPaintedAscendingAcrossChunks(t *testing.T) {
	b := New()
	a := wideAuth()
	var want []uint64
	for chunk := 0; chunk < 3; chunk++ {
		for _, g := range []uint64{0, 1, 63, 64, 65, chunkGranules - 1} {
			want = append(want, (uint64(chunk)*chunkGranules+g)*ca.GranuleSize)
		}
	}
	shuffled := append([]uint64(nil), want...)
	rand.New(rand.NewSource(9)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	for _, addr := range shuffled {
		if err := b.Paint(a, addr, ca.GranuleSize); err != nil {
			t.Fatal(err)
		}
	}

	var got []uint64
	b.ForEachPainted(func(addr uint64) bool {
		got = append(got, addr)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d granules, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("visit %d = 0x%x, want 0x%x (ascending across chunks)", i, got[i], want[i])
		}
		if i > 0 && got[i] <= got[i-1] {
			t.Fatalf("iteration not strictly ascending at %d: 0x%x after 0x%x", i, got[i], got[i-1])
		}
	}

	// Early stop: the walk must end at the first false.
	calls := 0
	b.ForEachPainted(func(addr uint64) bool {
		calls++
		return calls < 4
	})
	if calls != 4 {
		t.Fatalf("early-stop walk made %d calls, want 4", calls)
	}
}
