package tmem

import (
	"testing"
	"testing/quick"

	"repro/internal/ca"
)

func mustAlloc(t *testing.T, p *Phys) FrameID {
	t.Helper()
	id, err := p.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestAllocFreeReuse(t *testing.T) {
	p := NewPhys(2)
	a := mustAlloc(t, p)
	b := mustAlloc(t, p)
	if _, err := p.AllocFrame(); err == nil {
		t.Fatal("allocation beyond maxFrames succeeded")
	}
	if p.Allocated() != 2 || p.PeakAllocated() != 2 {
		t.Fatalf("allocated = %d peak = %d", p.Allocated(), p.PeakAllocated())
	}
	p.FreeFrame(a)
	c := mustAlloc(t, p)
	if c != a {
		t.Fatalf("freed frame not reused: got %d want %d", c, a)
	}
	if p.PeakAllocated() != 2 {
		t.Fatalf("peak = %d, want 2", p.PeakAllocated())
	}
	_ = b
}

func TestFreedFrameTagsCleared(t *testing.T) {
	p := NewPhys(4)
	a := mustAlloc(t, p)
	p.StoreCap(a, 7, ca.NewRoot(0x1000, 64, ca.PermsData))
	p.FreeFrame(a)
	b := mustAlloc(t, p)
	if b != a {
		t.Fatalf("expected frame reuse, got %d want %d", b, a)
	}
	if p.TagSet(b, 7) {
		t.Fatal("capability leaked through frame reuse")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := NewPhys(1)
	a := mustAlloc(t, p)
	p.FreeFrame(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	p.FreeFrame(a)
}

func TestStoreLoadCapRoundTrip(t *testing.T) {
	p := NewPhys(4)
	f := mustAlloc(t, p)
	c := ca.NewRoot(0xdead0, 128, ca.PermsData)
	p.StoreCap(f, 3, c)
	if !p.TagSet(f, 3) {
		t.Fatal("tag not set after capability store")
	}
	got := p.LoadCap(f, 3)
	if !got.Tag() || got.Base() != c.Base() || got.Top() != c.Top() {
		t.Fatalf("loaded %v, want %v", got, c)
	}
	if p.LoadCap(f, 4).Tag() {
		t.Fatal("adjacent granule reads tagged")
	}
}

func TestDataStoreClearsTags(t *testing.T) {
	p := NewPhys(4)
	f := mustAlloc(t, p)
	for g := 0; g < 4; g++ {
		p.StoreCap(f, g, ca.NewRoot(uint64(g)*16, 16, ca.PermsData))
	}
	p.StoreData(f, 1, 2)
	want := []bool{true, false, false, true}
	for g, w := range want {
		if p.TagSet(f, g) != w {
			t.Fatalf("granule %d tag = %v, want %v", g, p.TagSet(f, g), w)
		}
	}
}

func TestStoreUntaggedClearsTag(t *testing.T) {
	p := NewPhys(4)
	f := mustAlloc(t, p)
	p.StoreCap(f, 0, ca.NewRoot(0, 16, ca.PermsData))
	p.StoreCap(f, 0, ca.Null(99))
	if p.TagSet(f, 0) {
		t.Fatal("untagged store left tag set")
	}
	if p.LoadCap(f, 0).Tag() {
		t.Fatal("load after untagged store returned tagged value")
	}
}

func TestSweepTags(t *testing.T) {
	p := NewPhys(4)
	f := mustAlloc(t, p)
	for _, g := range []int{0, 5, 63, 64, 200, 255} {
		p.StoreCap(f, g, ca.NewRoot(uint64(g)*ca.GranuleSize, 16, ca.PermsData))
	}
	// Revoke capabilities whose base is below granule 100.
	visited, revoked := p.SweepTags(f, func(g int, c ca.Capability) bool {
		return c.Base() < 100*ca.GranuleSize
	})
	if visited != 6 || revoked != 4 {
		t.Fatalf("visited %d revoked %d, want 6 and 4", visited, revoked)
	}
	if p.TagSet(f, 5) {
		t.Fatal("revoked granule still tagged")
	}
	if !p.TagSet(f, 200) || !p.TagSet(f, 255) {
		t.Fatal("surviving granules lost tags")
	}
	if p.TagCount(f) != 2 {
		t.Fatalf("TagCount = %d, want 2", p.TagCount(f))
	}
}

func TestSweepEmptyFrame(t *testing.T) {
	p := NewPhys(1)
	f := mustAlloc(t, p)
	v, r := p.SweepTags(f, func(int, ca.Capability) bool { return true })
	if v != 0 || r != 0 {
		t.Fatalf("sweep of clean frame visited %d revoked %d", v, r)
	}
	if p.HasTags(f) {
		t.Fatal("clean frame HasTags")
	}
}

func TestColors(t *testing.T) {
	p := NewPhys(1)
	f := mustAlloc(t, p)
	if p.ColorOf(f, 10) != 0 {
		t.Fatal("fresh frame has nonzero color")
	}
	p.SetColor(f, 8, 4, 3)
	if p.ColorOf(f, 7) != 0 || p.ColorOf(f, 8) != 3 || p.ColorOf(f, 11) != 3 || p.ColorOf(f, 12) != 0 {
		t.Fatal("color range wrong")
	}
	// Colors survive data stores.
	p.StoreData(f, 8, 4)
	if p.ColorOf(f, 9) != 3 {
		t.Fatal("data store erased color")
	}
}

// Property: after any sequence of stores, SweepTags visits exactly the
// granules whose most recent write was a tagged capability.
func TestQuickSweepMatchesHistory(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewPhys(1)
		fr, _ := p.AllocFrame()
		expect := map[int]bool{}
		for _, op := range ops {
			g := int(op) % GranulesPerPage
			switch (op >> 8) % 3 {
			case 0:
				p.StoreCap(fr, g, ca.NewRoot(uint64(g)*ca.GranuleSize, 16, ca.PermsData))
				expect[g] = true
			case 1:
				p.StoreCap(fr, g, ca.Null(uint64(op)))
				delete(expect, g)
			case 2:
				p.StoreData(fr, g, 1)
				delete(expect, g)
			}
		}
		seen := map[int]bool{}
		p.SweepTags(fr, func(g int, c ca.Capability) bool {
			seen[g] = true
			return false
		})
		if len(seen) != len(expect) {
			return false
		}
		for g := range expect {
			if !seen[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSweepDensePage(b *testing.B) {
	p := NewPhys(1)
	f, _ := p.AllocFrame()
	for g := 0; g < GranulesPerPage; g++ {
		p.StoreCap(f, g, ca.NewRoot(uint64(g)*16, 16, ca.PermsData))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SweepTags(f, func(int, ca.Capability) bool { return false })
	}
}

// TestSweepSurvivesFrameTableGrowth pins the stable-frame-pointer
// guarantee: a sweep caught mid-page by frame-table growth (an app-thread
// demand map during a virtual-time yield) must not lose its tag clears to
// a relocated backing array. With value-typed frame storage this test
// leaks every tag cleared after the growth.
func TestSweepSurvivesFrameTableGrowth(t *testing.T) {
	p := NewPhys(1 << 12)
	id := mustAlloc(t, p)
	for g := 0; g < 100; g++ {
		p.StoreCap(id, g, ca.NewRoot(uint64(g)*ca.GranuleSize, 16, ca.PermsData))
	}
	grown := false
	visited, revoked := p.SweepTags(id, func(g int, c ca.Capability) bool {
		if !grown {
			// Grow the frame table well past any append capacity step
			// while the sweep holds its view of frame id.
			for i := 0; i < 1000; i++ {
				mustAlloc(t, p)
			}
			grown = true
		}
		return true
	})
	if visited != 100 || revoked != 100 {
		t.Fatalf("visited %d revoked %d, want 100/100", visited, revoked)
	}
	if p.TagCount(id) != 0 {
		t.Fatalf("%d tags survived a full revoking sweep across frame-table growth", p.TagCount(id))
	}
}
