package tmem

import (
	"math/rand"
	"testing"

	"repro/internal/ca"
)

// collectTagged walks the bank with the given iterator and returns the
// visited frame ids in visit order.
func collectTagged(iter func(func(FrameID) bool) bool) []FrameID {
	var out []FrameID
	iter(func(id FrameID) bool {
		out = append(out, id)
		return true
	})
	return out
}

// TestTaggedFrameIterationMatchesFlat is the sparse-vs-flat differential
// suite for the bank summaries: after a randomized mix of every tag
// mutation the package offers (cap stores, data stores, granule clears,
// frame frees and reuse, fork-style copies), the region→group descent and
// the linear flat scan must report exactly the same tagged-frame set, in
// the same ascending order, and TaggedFrames must agree with both.
func TestTaggedFrameIterationMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewPhys(1 << 14)
	var live []FrameID
	// A spread-out bank: allocate well past one frame-group (64 frames)
	// and one region word (4096 frames) so the descent crosses summary
	// word boundaries.
	for i := 0; i < 5000; i++ {
		id, err := p.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}
	cap0 := ca.NewRoot(0, 16, ca.PermsData)
	for step := 0; step < 20000; step++ {
		id := live[rng.Intn(len(live))]
		switch rng.Intn(6) {
		case 0, 1:
			p.StoreCap(id, rng.Intn(GranulesPerPage), cap0)
		case 2:
			g := rng.Intn(GranulesPerPage)
			p.StoreData(id, g, 1+rng.Intn(GranulesPerPage-g))
		case 3:
			p.ClearTag(id, rng.Intn(GranulesPerPage))
		case 4:
			p.CopyFrame(id, live[rng.Intn(len(live))])
		case 5:
			p.FreeFrame(id)
			nid, err := p.AllocFrame()
			if err != nil {
				t.Fatal(err)
			}
			for i := range live {
				if live[i] == id {
					live[i] = nid
				}
			}
		}
	}
	sparse := collectTagged(p.ForEachTaggedFrame)
	flat := collectTagged(p.ForEachTaggedFrameFlat)
	if len(sparse) != len(flat) {
		t.Fatalf("sparse walk found %d tagged frames, flat scan %d", len(sparse), len(flat))
	}
	for i := range sparse {
		if sparse[i] != flat[i] {
			t.Fatalf("position %d: sparse %d vs flat %d", i, sparse[i], flat[i])
		}
		if i > 0 && sparse[i] <= sparse[i-1] {
			t.Fatalf("sparse walk not ascending: %d after %d", sparse[i], sparse[i-1])
		}
	}
	if p.TaggedFrames() != len(flat) {
		t.Fatalf("TaggedFrames() = %d, flat scan found %d", p.TaggedFrames(), len(flat))
	}
	// Per-frame agreement: the summary-driven ForEachTag and HasTags must
	// match a brute-force TagSet probe on every tagged frame.
	for _, id := range flat {
		if !p.HasTags(id) {
			t.Fatalf("flat-tagged frame %d reports HasTags=false", id)
		}
		want := 0
		for g := 0; g < GranulesPerPage; g++ {
			if p.TagSet(id, g) {
				want++
			}
		}
		got, prev := 0, -1
		p.ForEachTag(id, func(g int, _ ca.Capability) {
			if g <= prev {
				t.Fatalf("frame %d: ForEachTag not ascending (%d after %d)", id, g, prev)
			}
			prev = g
			got++
		})
		if got != want || p.TagCount(id) != want {
			t.Fatalf("frame %d: ForEachTag=%d TagCount=%d, probe=%d", id, got, p.TagCount(id), want)
		}
	}
}

// TestForEachTagAllAscending pins the bank-wide audit order: (frame,
// granule) pairs arrive strictly ascending, across frame-group and region
// boundaries.
func TestForEachTagAllAscending(t *testing.T) {
	p := NewPhys(1 << 13)
	// Frames straddling group (64) and region-word (4096) boundaries.
	targets := map[int][]int{63: {5, 200}, 64: {0}, 4095: {255}, 4096: {1, 64}, 4100: {17}}
	maxFrame := 4100
	ids := make([]FrameID, maxFrame+1)
	for i := 0; i <= maxFrame; i++ {
		id, err := p.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	want := 0
	for f, gs := range targets {
		for _, g := range gs {
			p.StoreCap(ids[f], g, ca.NewRoot(uint64(g), 16, ca.PermsData))
			want++
		}
	}
	lastF, lastG, n := -1, -1, 0
	p.ForEachTagAll(func(id FrameID, g int, c ca.Capability) {
		if int(id) < lastF || (int(id) == lastF && g <= lastG) {
			t.Fatalf("not ascending: (%d,%d) after (%d,%d)", id, g, lastF, lastG)
		}
		if !c.Tag() {
			t.Fatalf("untagged capability delivered at (%d,%d)", id, g)
		}
		lastF, lastG = int(id), g
		n++
	})
	if n != want {
		t.Fatalf("visited %d tagged granules, want %d", n, want)
	}
}

// TestTaggedFrameWalkSurvivesFrameTableGrowth extends the stable-pointer
// guarantee of TestSweepSurvivesFrameTableGrowth to the bank-level walk: a
// ForEachTaggedFrame iteration caught mid-walk by frame-table growth (an
// app-thread demand map during a virtual-time yield) must keep visiting
// the frames that were tagged when it started — the summary slices are
// indexed positionally, so append reallocation must not orphan the walk.
func TestTaggedFrameWalkSurvivesFrameTableGrowth(t *testing.T) {
	p := NewPhys(1 << 14)
	var tagged []FrameID
	for i := 0; i < 200; i++ {
		id, err := p.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			p.StoreCap(id, i%GranulesPerPage, ca.NewRoot(uint64(i), 16, ca.PermsData))
			tagged = append(tagged, id)
		}
	}
	grown := false
	var visited []FrameID
	p.ForEachTaggedFrame(func(id FrameID) bool {
		if !grown {
			// Grow well past any append capacity step of frames, groupSum
			// and regionSum while the walk is in flight (4097 frames forces
			// regionSum past one word too).
			for i := 0; i < 8000; i++ {
				if _, err := p.AllocFrame(); err != nil {
					t.Fatal(err)
				}
			}
			grown = true
		}
		visited = append(visited, id)
		return true
	})
	if len(visited) != len(tagged) {
		t.Fatalf("visited %d frames across growth, want %d", len(visited), len(tagged))
	}
	for i := range visited {
		if visited[i] != tagged[i] {
			t.Fatalf("position %d: visited %d, want %d", i, visited[i], tagged[i])
		}
	}
}

// TestCapsRecyclingInvisible pins the tag-guard argument that makes dirty
// capability-array recycling safe: a frame that inherits a freed frame's
// array must read as entirely untagged data until it stores its own
// capabilities, under both allocation paths.
func TestCapsRecyclingInvisible(t *testing.T) {
	for _, flat := range []bool{false, true} {
		p := NewPhys(64)
		p.FlatAlloc = flat
		a := mustAlloc(t, p)
		secret := ca.NewRoot(0xdead0, 16, ca.PermsData)
		for g := 0; g < GranulesPerPage; g++ {
			p.StoreCap(a, g, secret)
		}
		p.FreeFrame(a)
		b := mustAlloc(t, p)
		if p.HasTags(b) || p.TagCount(b) != 0 {
			t.Fatalf("flat=%v: fresh frame reports tags", flat)
		}
		for g := 0; g < GranulesPerPage; g++ {
			if c := p.LoadCap(b, g); c.Tag() {
				t.Fatalf("flat=%v: granule %d of a fresh frame loads a tagged capability", flat, g)
			}
		}
		n := 0
		p.ForEachTag(b, func(int, ca.Capability) { n++ })
		if n != 0 {
			t.Fatalf("flat=%v: ForEachTag visited %d granules of a fresh frame", flat, n)
		}
	}
}
