package tmem

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/ca"
)

// fillRandom stores capabilities at a random subset of granules and
// returns the set, so word- and granule-kernel runs start from identical
// frames.
func fillRandom(p *Phys, f FrameID, rng *rand.Rand, density float64) map[int]bool {
	tagged := map[int]bool{}
	for g := 0; g < GranulesPerPage; g++ {
		if rng.Float64() < density {
			p.StoreCap(f, g, ca.NewRoot(uint64(g)*ca.GranuleSize, 16, ca.PermsData))
			tagged[g] = true
		}
	}
	return tagged
}

// TestSweepTagsWordsMatchesSweepTags is the kernel-equivalence property at
// the tag-controller level: over random tag patterns and a revocation
// predicate, the word-wise kernel must visit the same granules in the same
// order, revoke the same set, and leave the identical final tag state as
// the per-granule kernel.
func TestSweepTagsWordsMatchesSweepTags(t *testing.T) {
	for _, density := range []float64{0, 0.02, 0.3, 1} {
		rng := rand.New(rand.NewSource(42))
		pg := NewPhys(1)
		pw := NewPhys(1)
		fg, _ := pg.AllocFrame()
		fw, _ := pw.AllocFrame()
		fillRandom(pg, fg, rand.New(rand.NewSource(7)), density)
		fillRandom(pw, fw, rand.New(rand.NewSource(7)), density)

		revoke := map[int]bool{}
		for g := 0; g < GranulesPerPage; g++ {
			revoke[g] = rng.Float64() < 0.5
		}

		var orderG []int
		vg, rg := pg.SweepTags(fg, func(g int, c ca.Capability) bool {
			orderG = append(orderG, g)
			return revoke[g]
		})

		var orderW []int
		vw, rw := pw.SweepTagsWords(fw, func(cur *SweepCursor, w int, mask uint64, caps *[GranulesPerPage]ca.Capability) {
			for m := mask; m != 0; {
				b := bits.TrailingZeros64(m)
				m &^= 1 << uint(b)
				g := w*64 + b
				orderW = append(orderW, g)
				if caps[g].Base() != uint64(g)*ca.GranuleSize {
					t.Fatalf("caps[%d] does not hold the stored capability", g)
				}
				if revoke[g] {
					cur.Revoke(g)
				}
			}
		})

		if vg != vw || rg != rw {
			t.Fatalf("density %v: granule kernel (v=%d r=%d) vs word kernel (v=%d r=%d)",
				density, vg, rg, vw, rw)
		}
		if len(orderG) != len(orderW) {
			t.Fatalf("density %v: visit counts differ: %d vs %d", density, len(orderG), len(orderW))
		}
		for i := range orderG {
			if orderG[i] != orderW[i] {
				t.Fatalf("density %v: visit order diverges at %d: %d vs %d",
					density, i, orderG[i], orderW[i])
			}
		}
		for g := 0; g < GranulesPerPage; g++ {
			if pg.TagSet(fg, g) != pw.TagSet(fw, g) {
				t.Fatalf("density %v: final tag state differs at granule %d", density, g)
			}
		}
		if pg.TagCount(fg) != pw.TagCount(fw) || pg.HasTags(fg) != pw.HasTags(fw) {
			t.Fatalf("density %v: summary-backed counts differ", density)
		}
	}
}

// TestSweepTagsWordsFilterFallback pins the SweepFilter bridge (the fault
// class TagStaleRead arms one): with a filter hiding granules, the word
// kernel must fall back to per-granule dispatch — single-bit masks, one
// callback per surviving granule — and report exactly the granule kernel's
// visited/revoked counts. The filter here rejects granules that sit inside
// the would-be word intersection, so a kernel that pre-masked whole words
// would overcount visits.
func TestSweepTagsWordsFilterFallback(t *testing.T) {
	build := func() *Phys {
		p := NewPhys(1)
		f, _ := p.AllocFrame()
		_ = f
		fillRandom(p, f, rand.New(rand.NewSource(11)), 0.6)
		p.SweepFilter = func(id FrameID, g int, c ca.Capability) bool {
			return g%3 == 0 // hide a third of the tagged granules
		}
		return p
	}

	pg, pw := build(), build()
	vg, rg := pg.SweepTags(0, func(g int, c ca.Capability) bool { return g%2 == 0 })
	vw, rw := pw.SweepTagsWords(0, func(cur *SweepCursor, w int, mask uint64, caps *[GranulesPerPage]ca.Capability) {
		if bits.OnesCount64(mask) != 1 {
			t.Fatalf("filtered sweep passed a multi-bit mask %#x", mask)
		}
		g := w*64 + bits.TrailingZeros64(mask)
		if g%3 == 0 {
			t.Fatalf("filtered granule %d leaked through", g)
		}
		if g%2 == 0 {
			cur.Revoke(g)
		}
	})
	if vg != vw || rg != rw {
		t.Fatalf("filtered kernels diverge: granule (v=%d r=%d) vs word (v=%d r=%d)", vg, rg, vw, rw)
	}
	for g := 0; g < GranulesPerPage; g++ {
		if pg.TagSet(0, g) != pw.TagSet(0, g) {
			t.Fatalf("final tag state differs at granule %d", g)
		}
	}
}

// TestSweepCursorClearsImmediately pins the no-deferred-clears contract:
// a Revoke must be visible to tag reads before the callback returns, not
// batched to the end of the word — mid-word virtual-time yields let other
// threads observe tag state.
func TestSweepCursorClearsImmediately(t *testing.T) {
	p := NewPhys(1)
	f, _ := p.AllocFrame()
	p.StoreCap(f, 3, ca.NewRoot(3*ca.GranuleSize, 16, ca.PermsData))
	p.StoreCap(f, 9, ca.NewRoot(9*ca.GranuleSize, 16, ca.PermsData))
	p.SweepTagsWords(f, func(cur *SweepCursor, w int, mask uint64, caps *[GranulesPerPage]ca.Capability) {
		cur.Revoke(3)
		if p.TagSet(f, 3) {
			t.Fatal("Revoke(3) not visible inside the word callback")
		}
		if !p.TagSet(f, 9) {
			t.Fatal("unrevoked granule lost its tag mid-word")
		}
	})
	if p.TagCount(f) != 1 {
		t.Fatalf("TagCount = %d after revoking 1 of 2", p.TagCount(f))
	}
}

// TestFrameSummaryTracksTags is the summary invariant: after an arbitrary
// mix of capability stores, data stores and tag clears, the per-frame
// nonzero-word summary must agree with the brute-force scan that HasTags
// and TagCount used to do.
func TestFrameSummaryTracksTags(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewPhys(1)
	f, _ := p.AllocFrame()
	live := map[int]bool{}
	for i := 0; i < 5000; i++ {
		g := rng.Intn(GranulesPerPage)
		switch rng.Intn(4) {
		case 0:
			p.StoreCap(f, g, ca.NewRoot(uint64(g)*ca.GranuleSize, 16, ca.PermsData))
			live[g] = true
		case 1:
			p.StoreCap(f, g, ca.Null(0))
			delete(live, g)
		case 2:
			n := 1 + rng.Intn(8)
			if g+n > GranulesPerPage {
				n = GranulesPerPage - g
			}
			p.StoreData(f, g, n)
			for j := g; j < g+n; j++ {
				delete(live, j)
			}
		case 3:
			p.ClearTag(f, g)
			delete(live, g)
		}
	}
	if p.TagCount(f) != len(live) {
		t.Fatalf("TagCount = %d, brute force = %d", p.TagCount(f), len(live))
	}
	if p.HasTags(f) != (len(live) > 0) {
		t.Fatal("HasTags disagrees with brute force")
	}
	seen := 0
	p.ForEachTag(f, func(g int, c ca.Capability) {
		if !live[g] {
			t.Fatalf("ForEachTag visited dead granule %d", g)
		}
		seen++
	})
	if seen != len(live) {
		t.Fatalf("ForEachTag visited %d granules, want %d", seen, len(live))
	}
}
