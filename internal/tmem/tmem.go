// Package tmem models tagged physical memory.
//
// Memory is organized as 4 KiB frames. Each capability-sized (16 B) granule
// of a frame carries a tag bit distinguishing a valid capability from plain
// data, exactly as CHERI's tag controller does. The simulation stores only
// what revocation semantics depend on: the tag bitmap, the capability value
// held by each tagged granule, and (for the §7.3 memory-coloring
// composition) a per-granule version color. Plain data bytes are not
// stored; data accesses are accounted for by the cost model, and their
// values never influence revocation.
package tmem

import (
	"fmt"
	"math/bits"

	"repro/internal/ca"
)

const (
	// PageSize is the frame and virtual page size in bytes.
	PageSize = 4096
	// GranulesPerPage is the number of capability granules per frame.
	GranulesPerPage = PageSize / ca.GranuleSize
	// tagWords is the number of 64-bit words in a frame's tag bitmap.
	tagWords = GranulesPerPage / 64
)

// FrameID names a physical frame.
type FrameID uint32

// NoFrame is the sentinel for "no frame".
const NoFrame FrameID = ^FrameID(0)

// frame is the per-frame storage. Capability and color arrays are allocated
// lazily: most frames never hold a capability. refs counts the address
// spaces sharing the frame (copy-on-write fork); it is 1 for private
// frames.
//
// summary is a one-bit-per-tag-word digest of tags: bit w is set iff
// tags[w] != 0. Every tag mutation maintains it (via setTag/clearTag), so
// HasTags and sweep scans skip empty words and empty frames in O(1). The
// bank back-pointer lets those same mutators maintain the bank-level
// frame-group and region summaries (see Phys) on the frame's 0↔nonzero
// transitions.
type frame struct {
	tags    [tagWords]uint64
	summary uint8
	caps    *[GranulesPerPage]ca.Capability
	colors  *[GranulesPerPage]uint8
	refs    int32
	inUse   bool
	bank    *Phys
	id      FrameID
}

// setTag and clearTag are the only writers of the tag bitmap: they keep the
// nonzero-word summary in lockstep with tags, which every fast path
// (HasTags, TagCount, the word-wise sweep kernel) relies on, and propagate
// the frame's empty↔tagged transitions up the bank hierarchy.
func (f *frame) setTag(w int, m uint64) {
	if f.summary == 0 {
		f.bank.markTagged(f.id)
	}
	f.tags[w] |= m
	f.summary |= 1 << uint(w)
}

func (f *frame) clearTag(w int, m uint64) {
	old := f.tags[w]
	f.tags[w] = old &^ m
	if f.tags[w] == 0 && old != 0 {
		f.summary &^= 1 << uint(w)
		if f.summary == 0 {
			f.bank.unmarkTagged(f.id)
		}
	}
}

// Phys is a bank of tagged physical memory frames. Frames are stored by
// pointer so their storage never moves: a sweeper holds a *frame across
// virtual-time yields, and growing the frame table under it (an app-thread
// demand map mid-sweep) must not orphan the sweeper's view — a relocated
// backing array would silently discard its tag clears.
//
// Above each frame's nonzero-word summary sits a two-level bank summary:
// bit f%64 of groupSum[f/64] is set iff frame f holds at least one tag, and
// bit g%64 of regionSum[g/64] is set iff frame-group g is nonzero. One
// region word therefore digests 4096 frames (16 MiB), so bank-wide
// iteration (ForEachTaggedFrame, ForEachTagAll) skips empty regions in
// O(1) and costs O(live-tagged frames), not O(bank size) — the property
// that keeps million-allocation heaps sweepable.
type Phys struct {
	frames    []*frame
	free      []FrameID
	maxFrames int
	allocated int
	peakAlloc int

	groupSum     []uint64 // bit f%64 set iff frames[f] has tags
	regionSum    []uint64 // bit g%64 set iff groupSum[g] != 0
	taggedFrames int

	// capsFree recycles capability arrays of freed frames. A recycled
	// array is handed out without zeroing: every read of caps is guarded
	// by the granule's tag bit (LoadCap, SweepTags, ForEachTag), and a
	// fresh frame starts with all tags clear, so stale values are
	// unobservable. Disabled under FlatAlloc.
	capsFree []*[GranulesPerPage]ca.Capability

	// FlatAlloc selects the flat differential allocation path (the
	// kernel's MemPathFlat): capability arrays are freshly allocated and
	// zeroed instead of recycled, and StoreData clears tags granule by
	// granule instead of word-masked. Both paths produce identical tag
	// state; the flat one is kept as the perf baseline and correctness
	// oracle.
	FlatAlloc bool

	// SweepFilter, when non-nil, is consulted for every tagged granule a
	// SweepTags scan visits; returning true hides the granule from that
	// scan entirely (not visited, never revoked) — a stale tag-controller
	// read, injected by internal/fault. ForEachTag ignores the filter, so
	// audits always see ground truth.
	SweepFilter func(id FrameID, g int, c ca.Capability) bool
}

// NewPhys creates a memory bank capable of holding up to maxFrames frames.
// Frames are materialized lazily.
func NewPhys(maxFrames int) *Phys {
	return &Phys{maxFrames: maxFrames}
}

// markTagged records frame id's empty→tagged transition in the bank
// summaries.
func (p *Phys) markTagged(id FrameID) {
	g := int(id) >> 6
	if p.groupSum[g] == 0 {
		p.regionSum[g>>6] |= 1 << (uint(g) & 63)
	}
	p.groupSum[g] |= 1 << (uint(id) & 63)
	p.taggedFrames++
}

// unmarkTagged records frame id's tagged→empty transition.
func (p *Phys) unmarkTagged(id FrameID) {
	g := int(id) >> 6
	p.groupSum[g] &^= 1 << (uint(id) & 63)
	if p.groupSum[g] == 0 {
		p.regionSum[g>>6] &^= 1 << (uint(g) & 63)
	}
	p.taggedFrames--
}

// newCaps returns a capability array for a frame, recycling a freed
// frame's array when the fast allocation path is enabled (see capsFree).
func (p *Phys) newCaps() *[GranulesPerPage]ca.Capability {
	if n := len(p.capsFree); n > 0 && !p.FlatAlloc {
		c := p.capsFree[n-1]
		p.capsFree[n-1] = nil
		p.capsFree = p.capsFree[:n-1]
		return c
	}
	return new([GranulesPerPage]ca.Capability)
}

// recycleCaps returns a no-longer-referenced capability array to the pool.
func (p *Phys) recycleCaps(c *[GranulesPerPage]ca.Capability) {
	if c != nil && !p.FlatAlloc {
		p.capsFree = append(p.capsFree, c)
	}
}

// AllocFrame allocates a zeroed (all tags clear) frame.
func (p *Phys) AllocFrame() (FrameID, error) {
	var id FrameID
	if n := len(p.free); n > 0 {
		id = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		if len(p.frames) >= p.maxFrames {
			return NoFrame, fmt.Errorf("tmem: out of physical memory (%d frames)", p.maxFrames)
		}
		id = FrameID(len(p.frames))
		p.frames = append(p.frames, &frame{bank: p, id: id})
		// Grow the bank summaries alongside the frame table. A fresh frame
		// has no tags, so only capacity changes — never summary bits.
		if int(id)>>6 >= len(p.groupSum) {
			p.groupSum = append(p.groupSum, 0)
			if (len(p.groupSum)-1)>>6 >= len(p.regionSum) {
				p.regionSum = append(p.regionSum, 0)
			}
		}
	}
	f := p.frames[id]
	f.tags = [tagWords]uint64{}
	f.summary = 0
	f.caps = nil
	f.colors = nil
	f.refs = 1
	f.inUse = true
	p.allocated++
	if p.allocated > p.peakAlloc {
		p.peakAlloc = p.allocated
	}
	return id, nil
}

// FreeFrame drops one reference to the frame, returning it to the free
// pool when the last sharer releases it. Tags are cleared so a later reuse
// cannot leak capabilities between owners.
func (p *Phys) FreeFrame(id FrameID) {
	f := p.frame(id)
	if !f.inUse {
		panic(fmt.Sprintf("tmem: double free of frame %d", id))
	}
	if f.refs > 1 {
		f.refs--
		return
	}
	if f.summary != 0 {
		p.unmarkTagged(id)
	}
	f.inUse = false
	f.tags = [tagWords]uint64{}
	f.summary = 0
	p.recycleCaps(f.caps)
	f.caps = nil
	f.colors = nil
	f.refs = 0
	p.allocated--
	p.free = append(p.free, id)
}

// Ref adds a sharer to the frame (copy-on-write fork).
func (p *Phys) Ref(id FrameID) {
	p.frame(id).refs++
}

// Refs returns the frame's sharer count.
func (p *Phys) Refs(id FrameID) int { return int(p.frame(id).refs) }

// Shared reports whether more than one address space references the frame.
func (p *Phys) Shared(id FrameID) bool { return p.frame(id).refs > 1 }

// Allocated returns the number of frames currently in use.
func (p *Phys) Allocated() int { return p.allocated }

// PeakAllocated returns the high-water mark of in-use frames.
func (p *Phys) PeakAllocated() int { return p.peakAlloc }

func (p *Phys) frame(id FrameID) *frame {
	if int(id) >= len(p.frames) {
		panic(fmt.Sprintf("tmem: frame %d out of range", id))
	}
	f := p.frames[id]
	if !f.inUse {
		panic(fmt.Sprintf("tmem: access to free frame %d", id))
	}
	return f
}

// checkGranule panics on an out-of-range granule index; callers translate
// virtual offsets before reaching physical memory, so this is an internal
// invariant, not a user-facing fault.
func checkGranule(g int) {
	if g < 0 || g >= GranulesPerPage {
		panic(fmt.Sprintf("tmem: granule %d out of range", g))
	}
}

// loc is the shared coordinate computation of every per-granule tag
// accessor: bounds check, frame lookup, and the granule's tag-word index
// and bit mask. Kept small so it inlines into LoadCap/StoreCap/TagSet/
// ClearTag and costs no more than the computation it replaced.
func (p *Phys) loc(id FrameID, g int) (f *frame, w int, m uint64) {
	checkGranule(g)
	return p.frame(id), g >> 6, 1 << (uint(g) & 63)
}

// StoreCap stores a capability-width value to granule g of frame id. If c
// is tagged the granule's tag is set; storing untagged data clears it, as
// any overwrite does in hardware.
func (p *Phys) StoreCap(id FrameID, g int, c ca.Capability) {
	f, w, m := p.loc(id, g)
	if c.Tag() {
		if f.caps == nil {
			f.caps = p.newCaps()
		}
		f.caps[g] = c
		f.setTag(w, m)
	} else {
		f.clearTag(w, m)
	}
}

// StoreData records a plain-data store covering granules [g, g+n): their
// tags are cleared. The data value itself is not retained. The fast path
// clears whole word-masked spans (and frames with no tags at all cost
// O(1)); under FlatAlloc the original granule-by-granule loop is kept as
// the differential oracle.
func (p *Phys) StoreData(id FrameID, g, n int) {
	checkGranule(g)
	if n <= 0 {
		return
	}
	checkGranule(g + n - 1)
	f := p.frame(id)
	if p.FlatAlloc {
		for i := g; i < g+n; i++ {
			f.clearTag(i>>6, 1<<(uint(i)&63))
		}
		return
	}
	if f.summary == 0 {
		return
	}
	last := g + n - 1
	for w := g >> 6; w <= last>>6; w++ {
		lo := w << 6
		start, end := uint(0), uint(63)
		if g > lo {
			start = uint(g - lo)
		}
		if last < lo+63 {
			end = uint(last - lo)
		}
		f.clearTag(w, ^uint64(0)>>(63-end)&(^uint64(0)<<start))
	}
}

// LoadCap loads a capability-width value from granule g. Untagged granules
// read as untagged (null-derived) data.
func (p *Phys) LoadCap(id FrameID, g int) ca.Capability {
	f, w, m := p.loc(id, g)
	if f.tags[w]&m == 0 || f.caps == nil {
		return ca.Null(0)
	}
	return f.caps[g]
}

// TagSet reports whether granule g holds a valid capability.
func (p *Phys) TagSet(id FrameID, g int) bool {
	f, w, m := p.loc(id, g)
	return f.tags[w]&m != 0
}

// ClearTag invalidates the capability at granule g, leaving its bits as
// untagged data. This is revocation's fundamental write.
func (p *Phys) ClearTag(id FrameID, g int) {
	f, w, m := p.loc(id, g)
	f.clearTag(w, m)
}

// HasTags reports whether any granule of the frame holds a capability.
// O(1): it reads the frame's nonzero-word summary.
func (p *Phys) HasTags(id FrameID) bool {
	return p.frame(id).summary != 0
}

// TagCount returns the number of tagged granules in the frame, popcounting
// only the words the summary marks nonzero.
func (p *Phys) TagCount(id FrameID) int {
	f := p.frame(id)
	n := 0
	for s := f.summary; s != 0; {
		w := bits.TrailingZeros8(s)
		s &^= 1 << uint(w)
		n += bits.OnesCount64(f.tags[w])
	}
	return n
}

// SweepTags visits every tagged granule of the frame in ascending order and
// invokes fn with its index and capability. If fn returns true the tag is
// cleared (the capability is revoked). It returns the number of granules
// visited and the number revoked. This is the inner loop of every
// revocation sweep.
func (p *Phys) SweepTags(id FrameID, fn func(g int, c ca.Capability) bool) (visited, revoked int) {
	f := p.frame(id)
	if f.caps == nil || f.summary == 0 {
		return 0, 0
	}
	for w := 0; w < tagWords; w++ {
		if f.summary&(1<<uint(w)) == 0 {
			continue
		}
		word := f.tags[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			g := w*64 + b
			if p.SweepFilter != nil && p.SweepFilter(id, g, f.caps[g]) {
				continue
			}
			visited++
			if fn(g, f.caps[g]) {
				f.clearTag(w, 1<<uint(b))
				revoked++
			}
		}
	}
	return visited, revoked
}

// SweepCursor is the revocation handle passed to a SweepTagsWords callback.
// Revoke applies a tag clear immediately, granule by granule: mid-word
// virtual-time yields let application threads observe tag state, so clears
// deferred to the end of a word would open a divergence window against the
// per-granule kernel.
type SweepCursor struct {
	f       *frame
	revoked int
}

// Revoke clears granule g's tag — revocation's fundamental write — and
// counts it against the sweep's revoked total.
func (cur *SweepCursor) Revoke(g int) {
	cur.f.clearTag(g>>6, 1<<(uint(g)&63))
	cur.revoked++
}

// SweepWordFn processes one nonzero tag word of a word-wise sweep: w is
// the word index within the frame, mask the tag bits snapshotted when the
// word was reached, and caps the frame's capability array (granule index
// w*64+bit). The callback must handle every set bit of mask, in ascending
// bit order, revoking through cur.
type SweepWordFn func(cur *SweepCursor, w int, mask uint64, caps *[GranulesPerPage]ca.Capability)

// SweepTagsWords is the batch sweep kernel: instead of one callback per
// tagged granule it hands fn whole nonzero tag words (guided by the frame
// summary, so empty words and empty frames cost O(1)), letting the caller
// intersect each word against the revocation bitmap's matching word
// (shadow.PaintedWord) and descend only to set bits. Semantics are
// identical to SweepTags — same ascending visit order, same
// snapshot-at-word-arrival view, same immediate tag clears — only the
// callback granularity differs.
//
// When a SweepFilter is armed the sweep falls back to the per-granule path
// and invokes fn with single-bit masks: filter decisions may depend on the
// simulated cycle at which each granule is reached, so pre-masking a whole
// word would change what the filter observes.
func (p *Phys) SweepTagsWords(id FrameID, fn SweepWordFn) (visited, revoked int) {
	f := p.frame(id)
	if f.caps == nil || f.summary == 0 {
		return 0, 0
	}
	cur := SweepCursor{f: f}
	if p.SweepFilter != nil {
		v, _ := p.SweepTags(id, func(g int, _ ca.Capability) bool {
			fn(&cur, g>>6, 1<<(uint(g)&63), f.caps)
			return false // revocations land through cur.Revoke
		})
		return v, cur.revoked
	}
	for w := 0; w < tagWords; w++ {
		if f.summary&(1<<uint(w)) == 0 {
			continue
		}
		mask := f.tags[w]
		visited += bits.OnesCount64(mask)
		fn(&cur, w, mask, f.caps)
	}
	return visited, cur.revoked
}

// ForEachTag visits every tagged granule of the frame in ascending order,
// read-only: tags are never cleared and SweepFilter does not apply. This
// is the audit view (internal/oracle) of the tag controller's ground
// truth.
func (p *Phys) ForEachTag(id FrameID, fn func(g int, c ca.Capability)) {
	f := p.frame(id)
	if f.caps == nil || f.summary == 0 {
		return
	}
	for w := 0; w < tagWords; w++ {
		if f.summary&(1<<uint(w)) == 0 {
			continue
		}
		word := f.tags[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			g := w*64 + b
			fn(g, f.caps[g])
		}
	}
}

// CopyFrame copies src's tags, capabilities and colors into dst, as a
// fork-style address-space clone does.
func (p *Phys) CopyFrame(dst, src FrameID) {
	d, sf := p.frame(dst), p.frame(src)
	had := d.summary != 0
	d.tags = sf.tags
	d.summary = sf.summary
	if has := d.summary != 0; has != had {
		if has {
			p.markTagged(dst)
		} else {
			p.unmarkTagged(dst)
		}
	}
	if sf.caps != nil {
		if d.caps == nil {
			d.caps = p.newCaps()
		}
		*d.caps = *sf.caps
	} else {
		p.recycleCaps(d.caps)
		d.caps = nil
	}
	if sf.colors != nil {
		colors := *sf.colors
		d.colors = &colors
	} else {
		d.colors = nil
	}
}

// TaggedFrames returns the number of frames currently holding at least one
// tagged granule. O(1): maintained by the bank summaries.
func (p *Phys) TaggedFrames() int { return p.taggedFrames }

// FrameCount returns the number of frames ever materialized (the frame
// table's length, including freed frames awaiting reuse).
func (p *Phys) FrameCount() int { return len(p.frames) }

// ForEachTaggedFrame visits, in ascending frame order, every frame holding
// at least one tagged granule, descending the region → frame-group summary
// tree so empty spans of the bank cost O(1). It returns false if fn
// stopped the iteration early.
//
// The iteration is weakly consistent: each region and group word is
// snapshotted when the walk reaches it, so frames tagged for the whole
// iteration are visited exactly once in ascending order, while frames
// whose first tag arrives or last tag is cleared concurrently (by fn) may
// or may not be visited. Growing the frame table from fn is safe: the
// summary slices are indexed positionally, so a reallocation never
// invalidates the walk (the same guarantee the by-pointer frame table
// gives SweepTags).
func (p *Phys) ForEachTaggedFrame(fn func(id FrameID) bool) bool {
	for r := 0; r < len(p.regionSum); r++ {
		rw := p.regionSum[r]
		for rw != 0 {
			g := r<<6 + bits.TrailingZeros64(rw)
			rw &= rw - 1
			gw := p.groupSum[g]
			for gw != 0 {
				id := FrameID(g<<6 + bits.TrailingZeros64(gw))
				gw &= gw - 1
				if !fn(id) {
					return false
				}
			}
		}
	}
	return true
}

// ForEachTaggedFrameFlat is the flat differential oracle for
// ForEachTaggedFrame: a linear scan of the whole frame table checking each
// frame's summary. O(bank size); kept for the equivalence suite and as the
// perf baseline the sparse walk is measured against.
func (p *Phys) ForEachTaggedFrameFlat(fn func(id FrameID) bool) bool {
	for i := 0; i < len(p.frames); i++ {
		f := p.frames[i]
		if f.inUse && f.summary != 0 {
			if !fn(FrameID(i)) {
				return false
			}
		}
	}
	return true
}

// ForEachTagAll visits every tagged granule of the whole bank in ascending
// (frame, granule) order — the bank-wide audit sweep. O(live tags): empty
// regions, groups, frames and words are all skipped via their summaries.
func (p *Phys) ForEachTagAll(fn func(id FrameID, g int, c ca.Capability)) {
	p.ForEachTaggedFrame(func(id FrameID) bool {
		p.ForEachTag(id, func(g int, c ca.Capability) { fn(id, g, c) })
		return true
	})
}

// SetColor paints the version color of granules [g, g+n) (§7.3). Colors
// survive data stores: they are a property of the memory, not the value.
func (p *Phys) SetColor(id FrameID, g, n int, color uint8) {
	checkGranule(g)
	if n <= 0 {
		return
	}
	checkGranule(g + n - 1)
	f := p.frame(id)
	if f.colors == nil {
		if color == 0 {
			return
		}
		f.colors = new([GranulesPerPage]uint8)
	}
	for i := g; i < g+n; i++ {
		f.colors[i] = color
	}
}

// ColorOf returns the version color of granule g.
func (p *Phys) ColorOf(id FrameID, g int) uint8 {
	checkGranule(g)
	f := p.frame(id)
	if f.colors == nil {
		return 0
	}
	return f.colors[g]
}
