// Package hostbench holds the host-performance benchmark bodies behind
// `make hostbench`: microbenchmarks of the two sweep kernels' inner loops
// (tmem.SweepTags vs SweepTagsWords, shadow.Test vs shadow.PaintedWord),
// the per-granule tag accessors, and an end-to-end sweep-heavy campaign
// timed under each -sweepkernel setting.
//
// The bodies are ordinary func(*testing.B) values listed in Benchmarks,
// so the same code runs two ways: hostbench_test.go wraps each as a
// standard Benchmark* for `go test -bench` (CI's hostbench-smoke), and
// cmd/hostbench drives them through testing.Benchmark to emit the
// committed BENCH_host.json without parsing test output.
//
// These benchmarks measure host wall time — where the simulator itself
// spends real CPU — and are the complement of the simulated-cycle
// telemetry: the word kernel's whole point is that simulated results are
// bit-identical while host cost drops.
package hostbench

import (
	"math/bits"
	"testing"

	"repro/internal/ca"
	"repro/internal/harness"
	"repro/internal/kernel"
	"repro/internal/quarantine"
	"repro/internal/revoke"
	"repro/internal/shadow"
	"repro/internal/sim"
	"repro/internal/tmem"
	"repro/internal/workload"
	"repro/internal/workload/fleet"
)

// Benchmark names the ratio computations in cmd/hostbench key on.
const (
	NameSweepTags          = "SweepTags"
	NameSweepTagsWords     = "SweepTagsWords"
	NameShadowTest         = "ShadowTest"
	NameShadowPainted      = "ShadowPaintedWord"
	NameTmemLoadCap        = "TmemLoadCap"
	NameTmemTagSet         = "TmemTagSet"
	NameTmemClearTag       = "TmemClearTagStoreCap"
	NameCampaignWord       = "CampaignWord"
	NameCampaignGranule    = "CampaignGranule"
	NameSimCampaignWord    = "SimCampaignWord"
	NameSimCampaignGranule = "SimCampaignGranule"
	NameSimCampaignFast    = "SimCampaignFast"
	NameSimCampaignClassic = "SimCampaignClassic"
	NameHeapSweepSparse    = "HeapSweepSparse"
	NameHeapSweepFlat      = "HeapSweepFlat"
	NameFleetSetupFast     = "FleetSetupFast"
	NameFleetSetupFlat     = "FleetSetupFlat"
	NameCampaignOpsField   = "sweepstorm" // workload name inside the sim campaign
)

// Benchmarks is the full rig in display order.
var Benchmarks = []struct {
	Name string
	F    func(*testing.B)
}{
	{NameSweepTags, SweepTags},
	{NameSweepTagsWords, SweepTagsWords},
	{NameShadowTest, ShadowTest},
	{NameShadowPainted, ShadowPaintedWord},
	{NameTmemLoadCap, TmemLoadCap},
	{NameTmemTagSet, TmemTagSet},
	{NameTmemClearTag, TmemClearTagStoreCap},
	{NameCampaignWord, CampaignWord},
	{NameCampaignGranule, CampaignGranule},
	{NameSimCampaignWord, SimCampaignWord},
	{NameSimCampaignGranule, SimCampaignGranule},
	{NameSimCampaignFast, SimCampaignFast},
	{NameSimCampaignClassic, SimCampaignClassic},
	{NameHeapSweepSparse, HeapSweepSparse},
	{NameHeapSweepFlat, HeapSweepFlat},
	{NameFleetSetupFast, FleetSetupFast},
	{NameFleetSetupFlat, FleetSetupFlat},
}

// heapBase places the microbenchmark "heap" away from zero, like real
// allocations.
const heapBase = 0x2000_0000

// sink defeats dead-code elimination of the benchmark loops.
var sink int

// densePage builds the microbenchmark fixture: one frame with every
// granule tagged — the dense-tag page the acceptance ratio is defined on
// — whose capabilities point at a contiguous heap span, of which every
// eighth granule is painted. Dense tags with a sparse intersection is the
// sweep's steady state: most of the heap is live, a fraction is in
// quarantine.
func densePage() (*tmem.Phys, tmem.FrameID, *shadow.Bitmap) {
	p := tmem.NewPhys(1)
	f, err := p.AllocFrame()
	if err != nil {
		panic(err)
	}
	sh := shadow.New()
	auth := ca.NewRoot(heapBase, tmem.PageSize, ca.PermsData|ca.PermPaint)
	for g := 0; g < tmem.GranulesPerPage; g++ {
		base := uint64(heapBase + g*ca.GranuleSize)
		p.StoreCap(f, g, ca.NewRoot(base, ca.GranuleSize, ca.PermsData))
		if g%8 == 0 {
			if err := sh.Paint(auth, base, ca.GranuleSize); err != nil {
				panic(err)
			}
		}
	}
	return p, f, sh
}

// SweepTags is the per-granule kernel's inner loop: one callback per
// tagged granule, one shadow chunk-map lookup per probe.
func SweepTags(b *testing.B) {
	p, f, sh := densePage()
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SweepTags(f, func(g int, c ca.Capability) bool {
			if sh.Test(c.Base()) {
				hits++
			}
			return false
		})
	}
	sink = hits
}

// SweepTagsWords is the word-wise kernel's inner loop over the same page:
// one callback per nonzero tag word, intersected against the matching
// 64-granule shadow word, descending only to intersection bits.
func SweepTagsWords(b *testing.B) {
	p, f, sh := densePage()
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SweepTagsWords(f, func(cur *tmem.SweepCursor, w int, mask uint64, caps *[tmem.GranulesPerPage]ca.Capability) {
			wordBase := uint64(heapBase + w*64*ca.GranuleSize)
			for m := mask & sh.PaintedWord(wordBase); m != 0; m &= m - 1 {
				hits++
			}
		})
	}
	sink = hits
}

// ShadowTest probes one address per granule of a painted span through the
// per-granule entry point.
func ShadowTest(b *testing.B) {
	_, _, sh := densePage()
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := 0; g < tmem.GranulesPerPage; g++ {
			if sh.Test(uint64(heapBase + g*ca.GranuleSize)) {
				hits++
			}
		}
	}
	sink = hits
}

// ShadowPaintedWord covers the same span in 64-granule strides through
// the word entry point and its chunk cache.
func ShadowPaintedWord(b *testing.B) {
	_, _, sh := densePage()
	hits := 0
	wordSpan := 64 * ca.GranuleSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a := uint64(heapBase); a < heapBase+tmem.PageSize; a += uint64(wordSpan) {
			for m := sh.PaintedWord(a); m != 0; m &= m - 1 {
				hits++
			}
		}
	}
	sink = hits
}

// TmemLoadCap, TmemTagSet and TmemClearTagStoreCap time the per-granule
// tag accessors whose index computation the shared loc helper hoists; the
// recorded trajectories guard against regressions on revocation's most
// frequent operations.
func TmemLoadCap(b *testing.B) {
	p, f, _ := densePage()
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := 0; g < tmem.GranulesPerPage; g++ {
			if p.LoadCap(f, g).Tag() {
				hits++
			}
		}
	}
	sink = hits
}

func TmemTagSet(b *testing.B) {
	p, f, _ := densePage()
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := 0; g < tmem.GranulesPerPage; g++ {
			if p.TagSet(f, g) {
				hits++
			}
		}
	}
	sink = hits
}

func TmemClearTagStoreCap(b *testing.B) {
	p, f, _ := densePage()
	c := ca.NewRoot(heapBase, ca.GranuleSize, ca.PermsData)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := 0; g < tmem.GranulesPerPage; g++ {
			p.ClearTag(f, g)
			p.StoreCap(f, g, c)
		}
	}
}

// The heap-scale campaign: a multi-megabyte tagged heap swept epoch after
// epoch, with a rotating stripe of frames in quarantine. Unlike the
// SimCampaign benchmarks below, this path runs the two kernels at their
// own natural host recipes — the granule kernel probing shadow.Test per
// tagged granule, the word kernel intersecting tag words against
// PaintedWord — so it measures the kernels' end-to-end sweep throughput
// over realistic heap geometry (many frames, many shadow chunks, sparse
// quarantine) rather than the simulator's fixed per-granule cost model.
const (
	campFrames      = 2048 // 8 MiB heap
	campTagStride   = 4    // every 4th granule holds a capability
	campPaintStride = 8    // 1/8 of the frames quarantined per epoch
)

type campaignHeap struct {
	p    *tmem.Phys
	ids  []tmem.FrameID
	sh   *shadow.Bitmap
	auth ca.Capability
}

func (h *campaignHeap) frameVA(i int) uint64 {
	return heapBase + uint64(i)*tmem.PageSize
}

// newCampaignHeap builds the resident heap: campFrames frames whose tagged
// granules hold self-pointing capabilities, the pointer locality a real
// allocator produces and the regime the shadow chunk cache targets.
func newCampaignHeap() *campaignHeap {
	h := &campaignHeap{
		p:    tmem.NewPhys(campFrames),
		sh:   shadow.New(),
		auth: ca.NewRoot(heapBase, campFrames*tmem.PageSize, ca.PermsData|ca.PermPaint),
	}
	for i := 0; i < campFrames; i++ {
		f, err := h.p.AllocFrame()
		if err != nil {
			panic(err)
		}
		h.ids = append(h.ids, f)
		for g := 0; g < tmem.GranulesPerPage; g += campTagStride {
			base := h.frameVA(i) + uint64(g*ca.GranuleSize)
			h.p.StoreCap(f, g, ca.NewRoot(base, ca.GranuleSize, ca.PermsData))
		}
	}
	return h
}

// paintEpoch quarantines epoch e's stripe of frames.
func (h *campaignHeap) paintEpoch(e int) {
	for i := e % campPaintStride; i < campFrames; i += campPaintStride {
		if err := h.sh.Paint(h.auth, h.frameVA(i), tmem.PageSize); err != nil {
			panic(err)
		}
	}
}

// restoreEpoch releases the stripe and re-tags the revoked granules, so
// every epoch sweeps an identical heap.
func (h *campaignHeap) restoreEpoch(e int) {
	for i := e % campPaintStride; i < campFrames; i += campPaintStride {
		if err := h.sh.Unpaint(h.auth, h.frameVA(i), tmem.PageSize); err != nil {
			panic(err)
		}
		for g := 0; g < tmem.GranulesPerPage; g += campTagStride {
			base := h.frameVA(i) + uint64(g*ca.GranuleSize)
			h.p.StoreCap(h.ids[i], g, ca.NewRoot(base, ca.GranuleSize, ca.PermsData))
		}
	}
}

// sweepGranule is one whole-heap revocation pass through the per-granule
// kernel: callback dispatch and a shadow chunk-map lookup per tagged
// granule.
func (h *campaignHeap) sweepGranule() (visited, revoked int) {
	for _, id := range h.ids {
		v, r := h.p.SweepTags(id, func(g int, c ca.Capability) bool {
			return h.sh.Test(c.Base())
		})
		visited += v
		revoked += r
	}
	return visited, revoked
}

// sweepWord is the same pass through the word-wise kernel: tag words
// intersected against shadow words, descending only to intersection bits.
func (h *campaignHeap) sweepWord() (visited, revoked int) {
	for i, id := range h.ids {
		base := h.frameVA(i)
		v, r := h.p.SweepTagsWords(id, func(cur *tmem.SweepCursor, w int, mask uint64, _ *[tmem.GranulesPerPage]ca.Capability) {
			for m := mask & h.sh.PaintedWord(base+uint64(w*64*ca.GranuleSize)); m != 0; m &= m - 1 {
				cur.Revoke(w*64 + bits.TrailingZeros64(m))
			}
		})
		visited += v
		revoked += r
	}
	return visited, revoked
}

// campaignEpochs times quarantine paint → whole-heap sweep → release and
// refill, the full revocation epoch loop, under the chosen kernel.
func campaignEpochs(b *testing.B, word bool) {
	h := newCampaignHeap()
	var visited, revoked int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := i % campPaintStride
		h.paintEpoch(e)
		if word {
			visited, revoked = h.sweepWord()
		} else {
			visited, revoked = h.sweepGranule()
		}
		h.restoreEpoch(e)
	}
	if revoked == 0 {
		b.Fatal("campaign revoked nothing — not a sweep benchmark")
	}
	b.ReportMetric(float64(visited), "caps-visited")
	b.ReportMetric(float64(revoked), "caps-revoked")
}

// CampaignWord times the heap-scale campaign under the word-wise kernel.
func CampaignWord(b *testing.B) { campaignEpochs(b, true) }

// CampaignGranule times the identical campaign under the per-granule
// kernel.
func CampaignGranule(b *testing.B) { campaignEpochs(b, false) }

// storm is the simulated campaign workload: a large resident pool of
// pointer-dense objects (one self-capability per object, so every object
// contributes a tagged granule) churned just hard enough to keep epochs
// coming. Nearly all simulated work is the revoker's sweep over the
// resident tags, which is the regime the word kernel exists for — and the
// regime where a host-time difference between kernels is measurable
// rather than drowned in application simulation.
type storm struct {
	objs  int
	churn int
	size  uint64
}

func (s storm) Name() string { return NameCampaignOpsField }

func (s storm) Body(rig *workload.Rig, th *kernel.Thread) {
	alloc := func() ca.Capability {
		c, err := rig.Mem.Malloc(th, s.size)
		if err != nil {
			panic(err)
		}
		if err := th.StoreCap(c, 0, c); err != nil {
			panic(err)
		}
		return c
	}
	caps := make([]ca.Capability, s.objs)
	for i := range caps {
		caps[i] = alloc()
	}
	k := 0
	for i := 0; i < s.churn; i++ {
		if err := rig.Mem.Free(th, caps[k]); err != nil {
			panic(err)
		}
		caps[k] = alloc()
		k = (k + 1) % len(caps)
	}
	for _, c := range caps {
		if err := rig.Mem.Free(th, c); err != nil {
			panic(err)
		}
	}
	if shim, ok := rig.Mem.(*quarantine.Shim); ok {
		shim.Flush(th)
	}
	rig.Join(th)
}

// simCampaignRun is the sweep-heavy harness setup both SimCampaign
// benchmarks share: CHERIvoke (every epoch sweeps the whole heap, no
// dirty-page filtering) with a small quarantine floor, so the resident
// pool is re-swept constantly.
//
// Because the word kernel is required to be simulation-invisible, it must
// replay the granule kernel's exact bus-access and tick sequence for every
// visited granule; that shared accounting dominates host time, so the two
// SimCampaign timings are expected to sit near 1×. They are kept as the
// full-stack timer — a regression in either kernel's plumbing shows up
// here — while the Campaign benchmarks above carry the kernels' actual
// throughput difference.
func simCampaignRun(b *testing.B, sk kernel.SweepKernel) {
	cond := harness.Condition{
		Name: "CHERIvoke", Shimmed: true, Strategy: revoke.CHERIvoke,
		RevokerCores: []int{2},
		// An explicit policy with a tiny floor and no blocking backoff:
		// the default scaled policy triggers off live-heap fraction, which
		// a large resident pool satisfies after only a couple of epochs.
		Policy: quarantine.Policy{HeapFraction: 0.001, MinBytes: 8 << 10, BlockFactor: 1000},
	}
	cfg := harness.DefaultConfig()
	cfg.SweepKernel = sk
	w := storm{objs: 1 << 15, churn: 4096, size: 64}
	visited := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(w, cond, cfg)
		if err != nil {
			b.Fatal(err)
		}
		visited = 0
		for _, e := range r.Epochs {
			visited += e.CapsVisited
		}
		if visited == 0 {
			b.Fatal("campaign swept nothing — not a sweep benchmark")
		}
	}
	b.ReportMetric(float64(visited), "caps-visited")
}

// SimCampaignWord times the simulated campaign under the word-wise kernel.
func SimCampaignWord(b *testing.B) { simCampaignRun(b, kernel.SweepKernelWord) }

// SimCampaignGranule times the identical simulated campaign under the
// per-granule differential oracle.
func SimCampaignGranule(b *testing.B) { simCampaignRun(b, kernel.SweepKernelGranule) }

// simFleetRun is the scheduler-heavy campaign both sim-engine benchmarks
// share: a Reloaded revocation campaign over an open-loop connection
// fleet (internal/workload/fleet) in which almost every thread is asleep
// at any instant. Per-request compute is tiny, so host time concentrates
// in the simulator's dispatch machinery — the classic engine's two
// channel crossings per slice and O(threads) sleeper scan per dispatch
// against the fast engine's inline scheduling and sleeper heap. This is
// the pair `make hostbench` enforces the sim_campaign ≥3× floor on; both
// engines compute bit-identical campaigns (TestSimFleetEnginesAgree).
func simFleetRun(b *testing.B, ek sim.EngineKind) {
	cond := harness.Condition{
		Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded,
		RevokerCores: []int{2},
		// A small quarantine floor keeps epochs coming even though the
		// fleet's live session state is deliberately tiny.
		Policy: quarantine.Policy{HeapFraction: 0.001, MinBytes: 1 << 20, BlockFactor: 1000},
	}
	cfg := harness.DefaultConfig()
	cfg.SimEngine = ek
	cfg.AppCores = []int{0, 1, 3}
	w := fleet.New(8192, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(w, cond, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Epochs) == 0 || w.Messages == 0 {
			b.Fatalf("campaign degenerate: %d epochs, %d messages", len(r.Epochs), w.Messages)
		}
	}
	b.ReportMetric(float64(w.Messages), "messages")
}

// SimCampaignFast times the connection-fleet campaign under the fast
// (inline-scheduling) engine.
func SimCampaignFast(b *testing.B) { simFleetRun(b, sim.EngineFast) }

// SimCampaignClassic times the identical campaign under the classic
// channel-per-slice engine, the differential oracle.
func SimCampaignClassic(b *testing.B) { simFleetRun(b, sim.EngineClassic) }

// The heap-scale sweep pair: a million-frame bank (4 GiB of simulated
// memory) of which a sparse minority of frames holds tags — the geometry
// of a million-allocation heap whose pointer-bearing granules are rare
// relative to its data bulk. The sparse walk descends the region →
// frame-group summary tree and touches only tagged frames, O(live tags);
// the flat oracle scans every frame struct, O(bank). This is the pair
// `make hostbench` enforces the heap_sweep ≥5× floor on; the two walks
// visit identical (frame, granule) sequences (the tmem sparse-vs-flat
// equivalence suite).
const (
	heapFrames    = 1 << 20 // 4 GiB simulated memory
	heapTagStride = 128     // one tagged frame per 128 (8192 tagged frames)
)

func newHeapScaleBank() *tmem.Phys {
	p := tmem.NewPhys(heapFrames)
	for i := 0; i < heapFrames; i++ {
		f, err := p.AllocFrame()
		if err != nil {
			panic(err)
		}
		if i%heapTagStride == 0 {
			base := uint64(heapBase) + uint64(i)*tmem.PageSize
			p.StoreCap(f, i%tmem.GranulesPerPage, ca.NewRoot(base, ca.GranuleSize, ca.PermsData))
		}
	}
	return p
}

// heapSweepEpochs runs whole-bank audit sweeps (every tagged granule
// visited, read-only) under the chosen bank iterator.
func heapSweepEpochs(b *testing.B, sparse bool) {
	p := newHeapScaleBank()
	visited := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		visited = 0
		count := func(id tmem.FrameID) bool {
			p.ForEachTag(id, func(int, ca.Capability) { visited++ })
			return true
		}
		if sparse {
			p.ForEachTaggedFrame(count)
		} else {
			p.ForEachTaggedFrameFlat(count)
		}
		if visited != heapFrames/heapTagStride {
			b.Fatalf("visited %d tagged granules, want %d", visited, heapFrames/heapTagStride)
		}
	}
	sink = visited
	b.ReportMetric(float64(visited), "caps-visited")
}

// HeapSweepSparse times the whole-bank sweep through the summary tree.
func HeapSweepSparse(b *testing.B) { heapSweepEpochs(b, true) }

// HeapSweepFlat times the identical sweep through the flat frame-table
// scan, the differential oracle and perf baseline.
func HeapSweepFlat(b *testing.B) { heapSweepEpochs(b, false) }

// The fleet-setup pair: the same open-loop connection fleet as the
// SimCampaign engine pair, but allocation-bound instead of
// scheduler-bound — fewer connections, each building a large session pool
// (8 slots × 16 KiB) and churning it, with a few requests of steady
// state. Memory-model host costs dominate: data-store tag clears
// (word-masked vs per-granule), shadow paint/unpaint on session frees
// (word-masked + chunk recycling vs granule-by-granule), capability-array
// population (recycled vs fresh-and-zeroed), and the sorted vpn list
// (O(1) ascending append). Both paths compute bit-identical campaigns
// (TestFleetSetupMemPathsAgree, TestDocumentIdenticalAcrossMemPaths);
// `make hostbench` enforces the fleet_setup ≥2× floor on this pair.
func fleetSetupRun(b *testing.B, mp kernel.MemPath) {
	cond := harness.Condition{
		Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded,
		RevokerCores: []int{2},
		Policy:       quarantine.Policy{HeapFraction: 0.001, MinBytes: 1 << 20, BlockFactor: 1000},
	}
	cfg := harness.DefaultConfig()
	cfg.MemPath = mp
	cfg.AppCores = []int{0, 1, 3}
	w := fleet.New(1024, 16)
	w.SessionSlots = 8
	w.SessionBytes = 16384
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(w, cond, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if w.Messages == 0 || r.WallCycles == 0 {
			b.Fatalf("campaign degenerate: %d messages", w.Messages)
		}
	}
	b.ReportMetric(float64(w.Messages), "messages")
}

// FleetSetupFast times the setup-weighted fleet campaign under the sparse
// fast memory path.
func FleetSetupFast(b *testing.B) { fleetSetupRun(b, kernel.MemPathFast) }

// FleetSetupFlat times the identical campaign under the flat differential
// path, the perf baseline.
func FleetSetupFlat(b *testing.B) { fleetSetupRun(b, kernel.MemPathFlat) }
