package hostbench

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/kernel"
	"repro/internal/quarantine"
	"repro/internal/revoke"
	"repro/internal/sim"
	"repro/internal/tmem"
	"repro/internal/workload/fleet"
)

// Standard Benchmark* wrappers over the shared bodies, so the whole rig
// runs under plain `go test -bench .` (CI's hostbench-smoke uses
// -benchtime=1x for a liveness check; `make hostbench` drives the same
// bodies through cmd/hostbench for the committed BENCH_host.json).

func BenchmarkSweepTags(b *testing.B)            { SweepTags(b) }
func BenchmarkSweepTagsWords(b *testing.B)       { SweepTagsWords(b) }
func BenchmarkShadowTest(b *testing.B)           { ShadowTest(b) }
func BenchmarkShadowPaintedWord(b *testing.B)    { ShadowPaintedWord(b) }
func BenchmarkTmemLoadCap(b *testing.B)          { TmemLoadCap(b) }
func BenchmarkTmemTagSet(b *testing.B)           { TmemTagSet(b) }
func BenchmarkTmemClearTagStoreCap(b *testing.B) { TmemClearTagStoreCap(b) }
func BenchmarkCampaignWord(b *testing.B)         { CampaignWord(b) }
func BenchmarkCampaignGranule(b *testing.B)      { CampaignGranule(b) }
func BenchmarkSimCampaignWord(b *testing.B)      { SimCampaignWord(b) }
func BenchmarkSimCampaignGranule(b *testing.B)   { SimCampaignGranule(b) }
func BenchmarkSimCampaignFast(b *testing.B)      { SimCampaignFast(b) }
func BenchmarkSimCampaignClassic(b *testing.B)   { SimCampaignClassic(b) }
func BenchmarkHeapSweepSparse(b *testing.B)      { HeapSweepSparse(b) }
func BenchmarkHeapSweepFlat(b *testing.B)        { HeapSweepFlat(b) }
func BenchmarkFleetSetupFast(b *testing.B)       { FleetSetupFast(b) }
func BenchmarkFleetSetupFlat(b *testing.B)       { FleetSetupFlat(b) }

// TestCampaignKernelsAgree sweeps the heap-scale campaign fixture once
// under each kernel and requires identical visited/revoked counts and an
// identically restored heap, so the two Campaign benchmarks can never
// drift into timing unequal work.
func TestCampaignKernelsAgree(t *testing.T) {
	run := func(word bool) (visited, revoked, tags int) {
		h := newCampaignHeap()
		h.paintEpoch(0)
		if word {
			visited, revoked = h.sweepWord()
		} else {
			visited, revoked = h.sweepGranule()
		}
		h.restoreEpoch(0)
		for _, id := range h.ids {
			tags += h.p.TagCount(id)
		}
		return visited, revoked, tags
	}
	wv, wr, wt := run(true)
	gv, gr, gt := run(false)
	if wv != gv || wr != gr || wt != gt {
		t.Fatalf("kernels diverged: visited %d vs %d, revoked %d vs %d, tags after restore %d vs %d",
			wv, gv, wr, gr, wt, gt)
	}
	if wantTags := campFrames * (tmem.GranulesPerPage / campTagStride); wt != wantTags {
		t.Fatalf("restore left %d tags, want %d", wt, wantTags)
	}
	if wr == 0 || wv <= wr {
		t.Fatalf("campaign shape wrong: visited %d, revoked %d (want sparse quarantine within dense tags)", wv, wr)
	}
}

// TestSimCampaignKernelsAgree reruns a scaled-down simulated campaign
// under both kernels and requires identical simulated results — the same
// invariant the differential suite pins, kept here so the benchmark
// fixture itself can never drift into comparing unequal work.
func TestSimCampaignKernelsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	run := func(sk kernel.SweepKernel) (wall, visited uint64) {
		cond := harness.Condition{
			Name: "CHERIvoke", Shimmed: true, Strategy: revoke.CHERIvoke,
			RevokerCores: []int{2},
		}
		cfg := harness.DefaultConfig()
		cfg.QuarantineMin = 32 << 10
		cfg.SweepKernel = sk
		r, err := harness.Run(storm{objs: 2048, churn: 1024, size: 64}, cond, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range r.Epochs {
			visited += e.CapsVisited
		}
		return r.WallCycles, visited
	}
	ww, wv := run(kernel.SweepKernelWord)
	gw, gv := run(kernel.SweepKernelGranule)
	if ww != gw || wv != gv {
		t.Fatalf("campaign diverged between kernels: wall %d vs %d, visited %d vs %d", ww, gw, wv, gv)
	}
	if wv == 0 {
		t.Fatal("campaign visited no capabilities")
	}
}

// TestSimFleetEnginesAgree reruns a scaled-down connection-fleet campaign
// under both sim engines and requires identical simulated results, so the
// SimCampaignFast/Classic benchmarks can never drift into timing unequal
// work. (The exhaustive engine-equivalence suites live in internal/sim,
// internal/revoke and internal/expt; this pins the benchmark fixture.)
func TestSimFleetEnginesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	run := func(ek sim.EngineKind) (wall, visited, msgs uint64, epochs int) {
		cond := harness.Condition{
			Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded,
			RevokerCores: []int{2},
			Policy:       quarantine.Policy{HeapFraction: 0.001, MinBytes: 8 << 10, BlockFactor: 1000},
		}
		cfg := harness.DefaultConfig()
		cfg.SimEngine = ek
		cfg.AppCores = []int{0, 1, 3}
		w := fleet.New(64, 32)
		r, err := harness.Run(w, cond, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range r.Epochs {
			visited += e.CapsVisited
		}
		return r.WallCycles, visited, w.Messages, len(r.Epochs)
	}
	fw, fv, fm, fe := run(sim.EngineFast)
	cw, cv, cm, ce := run(sim.EngineClassic)
	if fw != cw || fv != cv || fm != cm || fe != ce {
		t.Fatalf("campaign diverged between engines: wall %d vs %d, visited %d vs %d, messages %d vs %d, epochs %d vs %d",
			fw, cw, fv, cv, fm, cm, fe, ce)
	}
	if fe == 0 || fm == 0 {
		t.Fatalf("campaign degenerate: %d epochs, %d messages", fe, fm)
	}
}

// TestFleetSetupMemPathsAgree reruns a scaled-down setup-weighted fleet
// campaign under both memory paths and requires identical simulated
// results, so the FleetSetupFast/Flat benchmarks can never drift into
// timing unequal work. (The exhaustive path-equivalence suites live in
// internal/tmem, internal/shadow and internal/expt; this pins the
// benchmark fixture.)
func TestFleetSetupMemPathsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	run := func(mp kernel.MemPath) (wall, msgs uint64) {
		cond := harness.Condition{
			Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded,
			RevokerCores: []int{2},
			Policy:       quarantine.Policy{HeapFraction: 0.001, MinBytes: 1 << 20, BlockFactor: 1000},
		}
		cfg := harness.DefaultConfig()
		cfg.MemPath = mp
		cfg.AppCores = []int{0, 1, 3}
		w := fleet.New(64, 4)
		w.SessionSlots = 8
		w.SessionBytes = 16384
		r, err := harness.Run(w, cond, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.WallCycles, w.Messages
	}
	fw, fm := run(kernel.MemPathFast)
	lw, lm := run(kernel.MemPathFlat)
	if fw != lw || fm != lm {
		t.Fatalf("campaign diverged between memory paths: wall %d vs %d, messages %d vs %d", fw, lw, fm, lm)
	}
	if fm == 0 {
		t.Fatal("campaign degenerate: no messages")
	}
}
