package telemetry

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilTelemetryIsNoOp(t *testing.T) {
	var tl *Telemetry
	if tl.Enabled() {
		t.Fatal("nil telemetry reports enabled")
	}
	// None of these may panic.
	tl.Bind(nil)
	tl.SetBase(nil, CompRevoker)
	tl.Enter(nil, CompSweep)
	tl.Exit(nil)
	tl.Source(StdEpochCounter, func() float64 { return 1 })
	tl.Observe(StdEpochCycles, 5)
	tl.Add(StdShootdownsTotal, 1)
	if tl.Snapshot() != nil {
		t.Fatal("nil Snapshot() != nil")
	}
}

// runTinySim drives a two-core engine through a deterministic schedule:
// an app thread that nests alloc→kernel frames and a revoker thread that
// sweeps, so the trie holds root, nested, and re-entered frames.
func runTinySim(t *testing.T, tl *Telemetry) *sim.Engine {
	t.Helper()
	eng := sim.New(sim.Config{Cores: 2, SkewQuantum: 1000, OSQuantum: 100_000, HzGHz: 2.5})
	tl.Bind(eng)
	app := eng.Spawn("app", []int{0}, func(th *sim.Thread) {
		th.Tick(100)
		tl.Enter(th, CompAlloc)
		th.Tick(40)
		tl.Enter(th, CompKernel)
		th.Tick(10)
		tl.Exit(th)
		th.Tick(5)
		tl.Exit(th)
		// Re-enter the same child: cycles must merge into one trie node.
		tl.Enter(th, CompAlloc)
		th.Tick(40)
		tl.Exit(th)
		th.Tick(200)
	})
	tl.SetBase(app, CompApp)
	rev := eng.Spawn("revoker", []int{1}, func(th *sim.Thread) {
		tl.Enter(th, CompSweep)
		th.Tick(60)
		tl.Exit(th)
		th.Tick(15)
	})
	tl.SetBase(rev, CompRevoker)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func stackCycles(s *Snapshot) map[string]uint64 {
	m := map[string]uint64{}
	for _, st := range s.Stacks {
		m[st.Stack] += st.Cycles
	}
	return m
}

func TestProfilerAttributionAndInterning(t *testing.T) {
	tl := New(Options{})
	runTinySim(t, tl)
	snap := tl.Snapshot()
	if err := snap.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	got := stackCycles(snap)
	want := map[string]uint64{
		"app":              300, // 100 before + 200 after the nested work
		"app;alloc":        85,  // 40 + 5 + the re-entered 40: one trie node
		"app;alloc;kernel": 10,
		"revoker":          15,
		"revoker;sweep":    60,
	}
	for stack, cyc := range want {
		if got[stack] != cyc {
			t.Errorf("stack %q = %d cycles, want %d (all: %v)", stack, got[stack], cyc, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d distinct stacks %v, want %d", len(got), got, len(want))
	}
	// The re-entered alloc frame must not mint a duplicate folded line.
	var buf bytes.Buffer
	if err := snap.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	seen := map[string]bool{}
	for _, l := range lines {
		stack := strings.Fields(l)[0]
		if seen[stack] {
			t.Errorf("folded output repeats stack %q:\n%s", stack, buf.String())
		}
		seen[stack] = true
	}
}

func TestExitUnderflowPanics(t *testing.T) {
	tl := New(Options{})
	eng := sim.New(sim.Config{Cores: 1, SkewQuantum: 1000, OSQuantum: 1000, HzGHz: 1})
	tl.Bind(eng)
	eng.Spawn("app", nil, func(th *sim.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("Exit without Enter did not panic")
			}
		}()
		th.Tick(1)
		tl.Exit(th)
	})
	_ = eng.Run()
}

func TestSeriesSamplingAndHistogram(t *testing.T) {
	tl := New(Options{SampleEvery: 100})
	var epochs float64
	tl.Source(StdEpochsTotal, func() float64 { return epochs })
	tl.Add(StdShootdownsTotal, 3)
	tl.Observe(StdEpochCycles, 5_000)
	tl.Observe(StdEpochCycles, 2_000_000)
	eng := sim.New(sim.Config{Cores: 1, SkewQuantum: 10_000, OSQuantum: 10_000, HzGHz: 1})
	tl.Bind(eng)
	eng.Spawn("app", nil, func(th *sim.Thread) {
		th.Tick(150)
		epochs = 2
		th.Tick(300)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	snap := tl.Snapshot()
	if len(snap.Rows) < 4 {
		t.Fatalf("sampled %d rows, want ≥ 4 (450 cycles at interval 100)", len(snap.Rows))
	}
	var prev uint64
	for i, rw := range snap.Rows {
		if i > 0 && rw.Cycle <= prev {
			t.Fatalf("row cycles not increasing: %d after %d", rw.Cycle, prev)
		}
		prev = rw.Cycle
	}
	series := map[string]SeriesSnap{}
	for _, ss := range snap.Series {
		series[ss.Name] = ss
	}
	if v := series["epochs_total"].Value; v != 2 {
		t.Errorf("epochs_total = %v, want 2", v)
	}
	if v := series["shootdowns_total"].Value; v != 3 {
		t.Errorf("shootdowns_total = %v, want 3", v)
	}
	h := series["epoch_cycles"]
	if h.Count != 2 || h.Sum != 2_005_000 {
		t.Errorf("epoch_cycles count/sum = %d/%v, want 2/2005000", h.Count, h.Sum)
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total != 2 {
		t.Errorf("histogram bucket counts sum to %d, want 2", total)
	}
}

func TestRowCapDownsamples(t *testing.T) {
	tl := New(Options{SampleEvery: 10, MaxRows: 8})
	eng := sim.New(sim.Config{Cores: 1, SkewQuantum: 100_000, OSQuantum: 100_000, HzGHz: 1})
	tl.Bind(eng)
	eng.Spawn("app", nil, func(th *sim.Thread) {
		for i := 0; i < 100; i++ {
			th.Tick(10)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	snap := tl.Snapshot()
	if len(snap.Rows) > 8 {
		t.Fatalf("retained %d rows, cap is 8", len(snap.Rows))
	}
	if snap.SampleEvery <= 10 {
		t.Fatalf("SampleEvery = %d, want widened beyond 10", snap.SampleEvery)
	}
}

// synthSnap builds a small synthetic snapshot keyed by seed, with a
// histogram series, for merge-determinism tests.
func synthSnap(seed uint64) *Snapshot {
	tl := New(Options{SampleEvery: 50})
	tl.Add(StdShootdownsTotal, float64(seed))
	tl.Observe(StdEpochCycles, float64(seed*1_000))
	tl.Observe(StdEpochCycles, float64(seed*100_000_000))
	tl.Busy(0, 0, 100*seed)
	tl.Idle(0, 10*seed)
	tl.Busy(1, 1, 7*seed)
	tl.Idle(1, 3*seed)
	return tl.Snapshot()
}

// TestMergeDeterministicAcrossShardOrders is the worker-count invariance
// property at the merge layer: however job shards are ordered when they
// arrive (completion order varies with -workers), Merge and every
// exporter produce byte-identical output.
func TestMergeDeterministicAcrossShardOrders(t *testing.T) {
	shards := []Keyed{
		{Key: "c", Snap: synthSnap(3)},
		{Key: "a", Snap: synthSnap(1)},
		{Key: "d", Snap: nil}, // a failed job contributes nothing
		{Key: "b", Snap: synthSnap(2)},
	}
	export := func(order []int) (folded, om, csv string) {
		perm := make([]Keyed, len(order))
		for i, idx := range order {
			perm[i] = shards[idx]
		}
		m := Merge(perm)
		var fb, ob, cb bytes.Buffer
		if err := m.WriteFolded(&fb); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteOpenMetrics(&ob, true); err != nil {
			t.Fatal(err)
		}
		if err := WriteSeriesCSV(&cb, perm); err != nil {
			t.Fatal(err)
		}
		return fb.String(), ob.String(), cb.String()
	}
	f0, o0, c0 := export([]int{0, 1, 2, 3})
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		f, o, c := export(order)
		if f != f0 {
			t.Errorf("folded output differs for order %v:\n%s\nvs\n%s", order, f, f0)
		}
		if o != o0 {
			t.Errorf("OpenMetrics output differs for order %v", order)
		}
		if c != c0 {
			t.Errorf("series CSV differs for order %v", order)
		}
	}
	// Histogram buckets must sum across shards: seeds 1+2+3 observed two
	// values each.
	m := Merge(shards)
	for _, ss := range m.Series {
		if ss.Name != "epoch_cycles" {
			continue
		}
		if ss.Count != 6 {
			t.Errorf("merged histogram count = %d, want 6", ss.Count)
		}
		var total uint64
		for _, c := range ss.Counts {
			total += c
		}
		if total != 6 {
			t.Errorf("merged bucket counts sum to %d, want 6", total)
		}
	}
}

func TestOpenMetricsShape(t *testing.T) {
	snap := synthSnap(2)
	var buf bytes.Buffer
	if err := snap.WriteOpenMetrics(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing EOF terminator:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	sampleFor := map[string]bool{}
	var curType string
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "# HELP "):
		case strings.HasPrefix(l, "# TYPE "):
			f := strings.Fields(l)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", l)
			}
			curType = f[2]
		case l == "# EOF":
		default:
			f := strings.Fields(l)
			if len(f) != 2 {
				t.Fatalf("malformed sample line %q", l)
			}
			name := f[0]
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			name = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if name == "" || curType == "" {
				t.Fatalf("sample %q precedes its TYPE line", l)
			}
			sampleFor[name] = true
		}
	}
	for _, want := range []string{"shootdowns_total", "epoch_cycles"} {
		if !sampleFor[want] {
			t.Errorf("no samples for %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and end at +Inf.
	if !strings.Contains(out, `epoch_cycles_bucket{le="+Inf"}`) {
		t.Errorf("histogram missing +Inf bucket:\n%s", out)
	}
}

func TestPprofGunzips(t *testing.T) {
	tl := New(Options{})
	runTinySim(t, tl)
	snap := tl.Snapshot()
	var buf bytes.Buffer
	if err := snap.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("pprof output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("empty profile proto")
	}
	// The string table must carry component and core names.
	for _, want := range []string{"app", "revoker", "core0", "cycles"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("profile proto missing %q", want)
		}
	}
}

func TestWriteSeriesCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "job,cycle" {
		t.Fatalf("empty-series CSV = %q", got)
	}
}
