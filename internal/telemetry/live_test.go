package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func liveGet(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestLiveEndpoints(t *testing.T) {
	l := NewLive("sweep")
	l.Observe(JobUpdate{Key: "k1", Workload: "astar", Condition: "Reloaded", Status: "ran", Attempts: 1, Done: 1, Total: 3})
	l.Observe(JobUpdate{Key: "k2", Workload: "hmmer", Condition: "Baseline", Status: "retry", Attempts: 1, Err: "timeout"})
	l.Observe(JobUpdate{Key: "k2", Workload: "hmmer", Condition: "Baseline", Status: "ran", Attempts: 2, Done: 2, Total: 3})
	l.SetMetricsSource(func() *Snapshot { return synthSnap(5) })

	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	if code, body := liveGet(t, srv, "/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := liveGet(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"sweep_jobs_total 3",
		"sweep_jobs_done 2",
		`sweep_job_events_total{status="ran"} 2`,
		`sweep_job_events_total{status="retry"} 1`,
		"shootdowns_total 5", // merged simulated families follow
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(body), "# EOF") {
		t.Errorf("/metrics not EOF-terminated:\n%s", body)
	}
	if strings.Count(body, "# EOF") != 1 {
		t.Errorf("/metrics has multiple EOF markers:\n%s", body)
	}

	code, body = liveGet(t, srv, "/jobs")
	if code != 200 {
		t.Fatalf("/jobs = %d", code)
	}
	var jobs []JobUpdate
	if err := json.Unmarshal([]byte(body), &jobs); err != nil {
		t.Fatalf("/jobs is not JSON: %v", err)
	}
	if len(jobs) != 2 {
		t.Fatalf("/jobs has %d entries, want 2 (latest state per key)", len(jobs))
	}
	if jobs[1].Key != "k2" || jobs[1].Status != "ran" || jobs[1].Attempts != 2 {
		t.Fatalf("k2 state not updated in place: %+v", jobs[1])
	}

	code, body = liveGet(t, srv, "/events")
	if code != 200 {
		t.Fatalf("/events = %d", code)
	}
	var evs []struct {
		Seq int       `json:"seq"`
		Job JobUpdate `json:"job"`
	}
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/events is not JSON: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("/events has %d entries, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	if code, body := liveGet(t, srv, "/"); code != 200 || !strings.Contains(body, "2/3 jobs done") {
		t.Fatalf("/ = %d %q", code, body)
	}
	if code, _ := liveGet(t, srv, "/nope"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

// TestLiveWorkers pins the distributed-campaign surface: /workers serves
// an empty JSON array until a source is installed, then the coordinator's
// per-worker snapshot, and /metrics grows the <tool>_dist_* families.
func TestLiveWorkers(t *testing.T) {
	l := NewLive("sweep")
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	if code, body := liveGet(t, srv, "/workers"); code != 200 || strings.TrimSpace(body) != "[]" {
		t.Fatalf("/workers before a source = %d %q, want 200 with an empty JSON array", code, body)
	}
	if _, body := liveGet(t, srv, "/metrics"); strings.Contains(body, "dist_worker") {
		t.Fatal("dist families emitted without a worker source")
	}

	l.SetWorkerSource(func() []WorkerStatus {
		return []WorkerStatus{
			{ID: "w001", Name: "alpha", Inflight: 2, Leases: 7, Results: 5, Reclaims: 1},
			{ID: "w002", Name: "beta", Leases: 3, Results: 2, Failures: 1},
		}
	})
	code, body := liveGet(t, srv, "/workers")
	if code != 200 {
		t.Fatalf("/workers = %d", code)
	}
	var ws []WorkerStatus
	if err := json.Unmarshal([]byte(body), &ws); err != nil {
		t.Fatalf("/workers is not JSON: %v", err)
	}
	if len(ws) != 2 || ws[0].ID != "w001" || ws[0].Inflight != 2 || ws[1].Failures != 1 {
		t.Fatalf("/workers = %+v", ws)
	}

	_, body = liveGet(t, srv, "/metrics")
	for _, want := range []string{
		`sweep_dist_worker_inflight{worker="w001",name="alpha"} 2`,
		`sweep_dist_worker_leases_total{worker="w001",name="alpha"} 7`,
		`sweep_dist_worker_results_total{worker="w002",name="beta"} 2`,
		`sweep_dist_worker_failures_total{worker="w002",name="beta"} 1`,
		`sweep_dist_worker_reclaims_total{worker="w001",name="alpha"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if code, body := liveGet(t, srv, "/"); code != 200 || !strings.Contains(body, "/workers") {
		t.Fatalf("/ does not advertise /workers: %d %q", code, body)
	}
}

// TestLiveDistStats pins the degraded-mode surface: /dist serves a
// zero-valued JSON object until a source is installed, then the
// coordinator's fleet-level snapshot, and /metrics grows the
// breaker/cache/fallback/netfault families.
func TestLiveDistStats(t *testing.T) {
	l := NewLive("sweep")
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	if code, body := liveGet(t, srv, "/dist"); code != 200 || !strings.Contains(body, `"workers_live": 0`) {
		t.Fatalf("/dist before a source = %d %q, want 200 with a zero snapshot", code, body)
	}
	if _, body := liveGet(t, srv, "/metrics"); strings.Contains(body, "dist_workers_live") {
		t.Fatal("dist fleet families emitted without a source")
	}

	l.SetWorkerSource(func() []WorkerStatus {
		return []WorkerStatus{
			{ID: "w001", Name: "alpha", CacheHits: 4, Discards: 1, Breaker: "open", BreakerTrips: 2},
		}
	})
	l.SetDistSource(func() DistStats {
		return DistStats{
			WorkersLive:     1,
			WorkersDeparted: 3,
			FallbackRuns:    5,
			CacheHits:       4,
			Discards:        1,
			Reclaims:        2,
			BreakerTrips:    2,
			NetfaultInjections: map[string]uint64{
				"drop": 7, "partition": 2,
			},
		}
	})

	code, body := liveGet(t, srv, "/dist")
	if code != 200 {
		t.Fatalf("/dist = %d", code)
	}
	var st DistStats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/dist is not JSON: %v", err)
	}
	if st.WorkersDeparted != 3 || st.FallbackRuns != 5 || st.NetfaultInjections["drop"] != 7 {
		t.Fatalf("/dist = %+v", st)
	}

	_, body = liveGet(t, srv, "/metrics")
	for _, want := range []string{
		`sweep_dist_worker_cache_hits_total{worker="w001",name="alpha"} 4`,
		`sweep_dist_worker_discards_total{worker="w001",name="alpha"} 1`,
		`sweep_dist_worker_breaker_trips_total{worker="w001",name="alpha"} 2`,
		`sweep_dist_worker_breaker_open{worker="w001",name="alpha"} 1`,
		`sweep_dist_workers_live 1`,
		`sweep_dist_workers_departed_total 3`,
		`sweep_dist_fallback_runs_total 5`,
		`sweep_dist_cache_hits_total 4`,
		`sweep_dist_discards_total 1`,
		`sweep_dist_breaker_trips_total 2`,
		`sweep_dist_netfault_injections_total{class="drop"} 7`,
		`sweep_dist_netfault_injections_total{class="partition"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestLiveFleet pins the fleet observability surface: /fleet serves an
// empty aggregate until a source is installed, then the merged per-worker
// view, /metrics grows the fleet_* families, and the root index
// advertises every endpoint with the right Content-Type.
func TestLiveFleet(t *testing.T) {
	l := NewLive("sweep")
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/ Content-Type = %q, want text/plain", ct)
	}
	for _, ep := range []string{"/metrics", "/jobs", "/events", "/workers", "/dist", "/fleet", "/healthz"} {
		if !strings.Contains(string(body), ep) {
			t.Errorf("/ index missing %s:\n%s", ep, body)
		}
	}
	if !strings.Contains(string(body), "inactive: campaign is not distributed") {
		t.Errorf("/ index does not mark dist-only endpoints inactive:\n%s", body)
	}

	code, fbody := liveGet(t, srv, "/fleet")
	if code != 200 || !strings.Contains(fbody, `"workers": []`) {
		t.Fatalf("/fleet before a source = %d %q, want 200 with an empty aggregate", code, fbody)
	}
	if _, mbody := liveGet(t, srv, "/metrics"); strings.Contains(mbody, "fleet_") {
		t.Fatal("fleet families emitted without a source")
	}

	l.SetFleetSource(func() FleetStats {
		return FleetStats{Workers: []FleetWorker{
			{ID: "w001", Name: "alpha", Jobs: 5, CacheHits: 1, HostMS: 120.5, SimCycles: 9000, TraceEvents: 64, TraceDropped: 3},
			{ID: "w002", Name: "beta", Jobs: 3, HostMS: 80, SimCycles: 4000, TraceEvents: 32},
		}}.Totaled()
	})
	code, fbody = liveGet(t, srv, "/fleet")
	if code != 200 {
		t.Fatalf("/fleet = %d", code)
	}
	var fs FleetStats
	if err := json.Unmarshal([]byte(fbody), &fs); err != nil {
		t.Fatalf("/fleet is not JSON: %v", err)
	}
	if len(fs.Workers) != 2 || fs.Jobs != 8 || fs.SimCycles != 13000 || fs.TraceDropped != 3 {
		t.Fatalf("/fleet totals wrong: %+v", fs)
	}

	_, mbody := liveGet(t, srv, "/metrics")
	for _, want := range []string{
		`sweep_fleet_worker_jobs_total{worker="w001",name="alpha"} 5`,
		`sweep_fleet_worker_sim_cycles_total{worker="w002",name="beta"} 4000`,
		`sweep_fleet_worker_trace_dropped_total{worker="w001",name="alpha"} 3`,
		`sweep_fleet_workers 2`,
		`sweep_fleet_jobs_total 8`,
		`sweep_fleet_sim_cycles_total 13000`,
		`sweep_fleet_trace_events_total 96`,
		`sweep_fleet_trace_dropped_total 3`,
	} {
		if !strings.Contains(mbody, want) {
			t.Errorf("/metrics missing %q:\n%s", want, mbody)
		}
	}

	// The merged-snapshot trace-loss counter is a separate satellite: the
	// end-of-run summary and scrapers both read <tool>_trace_dropped_total.
	l.SetMetricsSource(func() *Snapshot {
		s := synthSnap(1)
		s.TraceDropped = 42
		return s
	})
	if _, mbody := liveGet(t, srv, "/metrics"); !strings.Contains(mbody, "sweep_trace_dropped_total 42") {
		t.Errorf("/metrics missing merged trace-dropped counter:\n%s", mbody)
	}
}

// TestLiveConcurrentObserve hammers Observe from many goroutines while
// scraping; run with -race to catch lock violations.
func TestLiveConcurrentObserve(t *testing.T) {
	l := NewLive("chaos")
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Observe(JobUpdate{Key: "k", Status: "ran", Done: i, Total: 400})
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		if code, _ := liveGet(t, srv, "/metrics"); code != 200 {
			t.Fatalf("/metrics = %d mid-campaign", code)
		}
		if code, _ := liveGet(t, srv, "/fleet"); code != 200 {
			t.Fatalf("/fleet = %d mid-campaign", code)
		}
	}
	wg.Wait()
	if code, body := liveGet(t, srv, "/metrics"); code != 200 || !strings.Contains(body, "chaos_jobs_total 400") {
		t.Fatalf("final /metrics = %d %q", code, body)
	}
}

func TestLiveStartAndClose(t *testing.T) {
	l := NewLive("sweep")
	addr, err := l.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET bound addr: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz over real listener = %d", resp.StatusCode)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var nilLive *Live
	nilLive.Observe(JobUpdate{})
	nilLive.SetMetricsSource(nil)
	nilLive.SetWorkerSource(nil)
	nilLive.SetDistSource(nil)
	if err := nilLive.Close(); err != nil {
		t.Fatal(err)
	}
}
