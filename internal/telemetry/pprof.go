package telemetry

import (
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// WritePprof emits the profile as a gzipped pprof profile.proto, readable
// by `go tool pprof` and speedscope. The encoder hand-rolls the protobuf
// wire format — the profile schema is small and stable, and the repo
// deliberately takes no dependencies. Output is deterministic: samples
// are sorted, the string table is interned in first-use order, and the
// gzip header carries no timestamp.
//
// Schema subset (profile.proto field numbers):
//
//	Profile:  sample_type=1 sample=2 location=4 function=5
//	          string_table=6 period_type=11 period=12
//	ValueType: type=1 unit=2
//	Sample:    location_id=1 value=2
//	Location:  id=1 line=4
//	Line:      function_id=1
//	Function:  id=1 name=2
func (s *Snapshot) WritePprof(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(s.marshalPprof()); err != nil {
		return err
	}
	return zw.Close()
}

// pbuf is a minimal protobuf writer.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) tag(field, wire int) { p.varint(uint64(field<<3 | wire)) }

func (p *pbuf) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.varint(v)
}

func (p *pbuf) bytesField(field int, b []byte) {
	p.tag(field, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *pbuf) stringField(field int, s string) {
	p.tag(field, 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packedField writes a packed repeated varint field.
func (p *pbuf) packedField(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner pbuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

func (s *Snapshot) marshalPprof() []byte {
	strs := []string{""} // index 0 must be the empty string
	strIdx := map[string]uint64{"": 0}
	intern := func(str string) uint64 {
		if i, ok := strIdx[str]; ok {
			return i
		}
		strs = append(strs, str)
		strIdx[str] = uint64(len(strs) - 1)
		return uint64(len(strs) - 1)
	}

	// One function+location per unique frame name, in sorted order for
	// deterministic ids.
	frameSet := map[string]bool{}
	addFrames := func(stack string, core int) {
		frameSet[fmt.Sprintf("core%d", core)] = true
		start := 0
		for i := 0; i <= len(stack); i++ {
			if i == len(stack) || stack[i] == ';' {
				frameSet[stack[start:i]] = true
				start = i + 1
			}
		}
	}
	for _, st := range s.Stacks {
		addFrames(st.Stack, st.Core)
	}
	for c, idle := range s.Idle {
		if idle > 0 {
			addFrames(idleFrame, c)
		}
	}
	frames := make([]string, 0, len(frameSet))
	for f := range frameSet {
		frames = append(frames, f)
	}
	sort.Strings(frames)
	locID := map[string]uint64{}
	for i, f := range frames {
		locID[f] = uint64(i + 1)
	}

	var out pbuf

	// sample_type: one dimension, cycles/cycles.
	cyclesIdx := intern("cycles")
	var vt pbuf
	vt.uint64Field(1, cyclesIdx)
	vt.uint64Field(2, cyclesIdx)
	out.bytesField(1, vt.b)

	// samples: leaf-first location ids; root frame is the core.
	emit := func(core int, stack string, cycles uint64) {
		var ids []uint64
		start := 0
		var parts []string
		for i := 0; i <= len(stack); i++ {
			if i == len(stack) || stack[i] == ';' {
				parts = append(parts, stack[start:i])
				start = i + 1
			}
		}
		for i := len(parts) - 1; i >= 0; i-- {
			ids = append(ids, locID[parts[i]])
		}
		ids = append(ids, locID[fmt.Sprintf("core%d", core)])
		var sm pbuf
		sm.packedField(1, ids)
		sm.packedField(2, []uint64{cycles})
		out.bytesField(2, sm.b)
	}
	for _, st := range s.Stacks {
		emit(st.Core, st.Stack, st.Cycles)
	}
	for c, idle := range s.Idle {
		if idle > 0 {
			emit(c, idleFrame, idle)
		}
	}

	// locations and functions.
	for _, f := range frames {
		id := locID[f]
		var ln pbuf
		ln.uint64Field(1, id) // function_id == location id
		var loc pbuf
		loc.uint64Field(1, id)
		loc.bytesField(4, ln.b)
		out.bytesField(4, loc.b)
	}
	for _, f := range frames {
		var fn pbuf
		fn.uint64Field(1, locID[f])
		fn.uint64Field(2, intern(f))
		out.bytesField(5, fn.b)
	}

	// String table last: interning above decided the contents.
	var strOut pbuf
	for _, str := range strs {
		strOut.stringField(6, str)
	}

	// period_type + period: 1 cycle.
	var pt pbuf
	pt.uint64Field(1, cyclesIdx)
	pt.uint64Field(2, cyclesIdx)
	out.bytesField(11, pt.b)
	out.uint64Field(12, 1)

	return append(out.b, strOut.b...)
}
