package telemetry

// The time-series metrics registry. Series are fixed at construction (the
// StdID table below), in a fixed order, so exports are byte-identical for
// identical runs regardless of host scheduling or worker count. Counters
// and gauges are function-backed — bound with Telemetry.Source, evaluated
// only at sample boundaries — or accumulator-backed via Telemetry.Add;
// histograms take explicit Observe calls at emit sites.

// StdID indexes the standard series every recorder carries.
type StdID int

// Standard series, in export order.
const (
	// StdEpochCounter is the process revocation-epoch counter (odd while
	// a pass is in flight) — the paper's epoch-progress signal.
	StdEpochCounter StdID = iota
	// StdEpochsTotal counts completed revocation passes.
	StdEpochsTotal
	// StdQuarBytes is current quarantine occupancy (§2.2.3 mrs shim).
	StdQuarBytes
	// StdQuarBlocksTotal counts allocations that blocked on a pass.
	StdQuarBlocksTotal
	// StdCDBitSetsTotal counts capability-dirty PTE bit transitions —
	// the CD-bit set rate underlying Cornucopia's page filter.
	StdCDBitSetsTotal
	// StdGenFaultsTotal counts load-barrier generation faults (§4.3).
	StdGenFaultsTotal
	// StdGenFaultCyclesTotal is cycles spent in gen-fault handlers.
	StdGenFaultCyclesTotal
	// StdCapLoadsTotal / StdCapStoresTotal count capability memory ops.
	StdCapLoadsTotal
	StdCapStoresTotal
	// StdTLBRefillsTotal counts TLB miss refills.
	StdTLBRefillsTotal
	// StdHeapLiveBytes / heap op counters come from the allocator.
	StdHeapLiveBytes
	StdHeapAllocsTotal
	StdHeapFreesTotal
	// StdMappedPages is the address space's mapped-page count.
	StdMappedPages
	// StdFramesAllocated is physical frames in use (tmem).
	StdFramesAllocated
	// StdShootdownsTotal counts TLB shootdown broadcasts.
	StdShootdownsTotal
	// StdSweptPagesTotal / StdRevokedCapsTotal accumulate sweep output.
	StdSweptPagesTotal
	StdRevokedCapsTotal
	// StdRecoveryActionsTotal counts epoch abort-and-retry recoveries.
	StdRecoveryActionsTotal
	// StdShootdownLatencyCycles is broadcast-to-verified-complete time,
	// including fault-induced retries.
	StdShootdownLatencyCycles
	// StdSTWCycles and StdEpochCycles are per-epoch phase durations.
	StdSTWCycles
	StdEpochCycles
	// StdQuarBlockCycles is per-block malloc stall time.
	StdQuarBlockCycles

	numStd
)

type seriesKind uint8

const (
	kindCounter seriesKind = iota
	kindGauge
	kindHistogram
)

func (k seriesKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	}
	return "histogram"
}

// cycleBounds are the histogram bucket upper bounds (cycles), a 1-3-10
// ladder from 1k cycles (400 ns) to 1G cycles (0.4 s).
var cycleBounds = []float64{
	1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9,
}

type series struct {
	name string
	help string
	kind seriesKind

	fn  func() float64 // counter/gauge source
	acc float64        // accumulator for sourceless counters

	bounds []float64 // histogram: upper bounds; +Inf bucket implicit
	counts []uint64  // histogram: len(bounds)+1
	sum    float64
	count  uint64
}

func (s *series) value() float64 {
	if s.fn != nil {
		return s.fn()
	}
	return s.acc
}

func (s *series) observe(v float64) {
	i := 0
	for i < len(s.bounds) && v > s.bounds[i] {
		i++
	}
	s.counts[i]++
	s.sum += v
	s.count++
}

// stdDefs declares every standard series, in export order.
var stdDefs = [numStd]struct {
	name, help string
	kind       seriesKind
}{
	StdEpochCounter:           {"epoch", "process revocation-epoch counter (odd = pass in flight)", kindGauge},
	StdEpochsTotal:            {"epochs_total", "completed revocation passes", kindCounter},
	StdQuarBytes:              {"quarantine_bytes", "current quarantine occupancy", kindGauge},
	StdQuarBlocksTotal:        {"quarantine_blocks_total", "allocations that blocked on a revocation pass", kindCounter},
	StdCDBitSetsTotal:         {"cd_bit_sets_total", "capability-dirty PTE bit set transitions", kindCounter},
	StdGenFaultsTotal:         {"gen_faults_total", "load-barrier generation faults", kindCounter},
	StdGenFaultCyclesTotal:    {"gen_fault_cycles_total", "cycles spent in generation-fault handlers", kindCounter},
	StdCapLoadsTotal:          {"cap_loads_total", "capability loads", kindCounter},
	StdCapStoresTotal:         {"cap_stores_total", "capability stores", kindCounter},
	StdTLBRefillsTotal:        {"tlb_refills_total", "TLB miss refills", kindCounter},
	StdHeapLiveBytes:          {"heap_live_bytes", "live heap bytes", kindGauge},
	StdHeapAllocsTotal:        {"heap_allocs_total", "heap allocations", kindCounter},
	StdHeapFreesTotal:         {"heap_frees_total", "heap frees", kindCounter},
	StdMappedPages:            {"mapped_pages", "pages mapped in the address space", kindGauge},
	StdFramesAllocated:        {"frames_allocated", "physical frames in use", kindGauge},
	StdShootdownsTotal:        {"shootdowns_total", "TLB shootdown broadcasts", kindCounter},
	StdSweptPagesTotal:        {"swept_pages_total", "pages visited by revocation sweeps", kindCounter},
	StdRevokedCapsTotal:       {"revoked_caps_total", "capabilities revoked by sweeps", kindCounter},
	StdRecoveryActionsTotal:   {"recovery_actions_total", "epoch abort-and-retry recovery actions", kindCounter},
	StdShootdownLatencyCycles: {"shootdown_latency_cycles", "shootdown broadcast to verified-complete latency", kindHistogram},
	StdSTWCycles:              {"stw_cycles", "stop-the-world pause per revocation pass", kindHistogram},
	StdEpochCycles:            {"epoch_cycles", "total duration per revocation pass", kindHistogram},
	StdQuarBlockCycles:        {"quarantine_block_cycles", "malloc stall while waiting on a pass", kindHistogram},
}

type row struct {
	cycle  uint64
	values []float64
}

type registry struct {
	series [numStd]*series
	rows   []row
}

func newRegistry() *registry {
	r := &registry{}
	for id := StdID(0); id < numStd; id++ {
		d := stdDefs[id]
		s := &series{name: d.name, help: d.help, kind: d.kind}
		if d.kind == kindHistogram {
			s.bounds = cycleBounds
			s.counts = make([]uint64, len(cycleBounds)+1)
		}
		r.series[id] = s
	}
	return r
}

// sample captures one time-series row at the given simulated cycle.
// Histograms contribute their cumulative observation count.
func (r *registry) sample(cycle uint64) {
	vals := make([]float64, numStd)
	for i, s := range r.series {
		if s.kind == kindHistogram {
			vals[i] = float64(s.count)
		} else {
			vals[i] = s.value()
		}
	}
	r.rows = append(r.rows, row{cycle: cycle, values: vals})
}

// downsample drops rows not aligned to the widened interval.
func (r *registry) downsample(every uint64) {
	kept := r.rows[:0]
	for _, rw := range r.rows {
		if rw.cycle%every == 0 {
			kept = append(kept, rw)
		}
	}
	r.rows = kept
}
