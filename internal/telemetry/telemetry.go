// Package telemetry is the simulator's observability layer: a
// deterministic cycle profiler, a time-series metrics registry, and (in
// live.go) an introspection HTTP server for long campaigns.
//
// The profiler attributes every simulated cycle to a component stack
// (app, barrier-fault, sweep, shootdown, quarantine, kernel, idle) per
// core. It hangs off sim.Engine's ClockObserver hook, so attribution is
// exact by construction: for each core, attributed busy + idle cycles sum
// to that core's clock, and Snapshot.CheckConservation verifies it.
// Instrumentation never advances virtual time — enabling telemetry cannot
// change a run's results.
//
// The fast sim engine batches consecutive same-thread Busy deliveries
// between scheduling points; SetBase/Enter/Exit call Engine.FlushClock
// first so cycles ticked before an attribution change land under the old
// frame. Totals, per-component attribution, and conservation are thus
// identical under both engines — only the instants at which time-series
// samples fire within a slice can shift by at most one batch.
//
// Like trace.Tracer, a nil *Telemetry is a valid disabled instance: every
// method no-ops, so emit sites pay one branch when telemetry is off.
package telemetry

import (
	"fmt"

	"repro/internal/sim"
)

// Component identifies where a simulated cycle went. Components form the
// frames of profile stacks: each thread has a base component and emit
// sites push nested frames (Enter/Exit) around attributable work.
type Component uint8

// Profile stack components.
const (
	// CompApp is application compute and memory access (thread base).
	CompApp Component = iota
	// CompRevoker is the base of revocation service threads; epoch work
	// shows up as nested kernel/sweep/shootdown frames beneath it.
	CompRevoker
	// CompAlloc is allocator metadata work (chunk carving, free lists).
	CompAlloc
	// CompQuarantine is the mrs shim: painting, quarantine bookkeeping,
	// and allocation blocks waiting on a revocation pass.
	CompQuarantine
	// CompKernel is syscalls, traps, and stop-the-world rendezvous.
	CompKernel
	// CompBarrierFault is load-barrier fault handling (§4.3): the trap
	// plus the visit the faulting thread performs under Reloaded.
	CompBarrierFault
	// CompSweep is capability sweep visits (background or in-fault).
	CompSweep
	// CompShootdown is TLB shootdown broadcast and verification.
	CompShootdown

	numComponents
)

func (c Component) String() string {
	switch c {
	case CompApp:
		return "app"
	case CompRevoker:
		return "revoker"
	case CompAlloc:
		return "alloc"
	case CompQuarantine:
		return "quarantine"
	case CompKernel:
		return "kernel"
	case CompBarrierFault:
		return "barrier-fault"
	case CompSweep:
		return "sweep"
	case CompShootdown:
		return "shootdown"
	}
	return fmt.Sprintf("component(%d)", uint8(c))
}

// idleFrame is the pseudo-stack used for unattributed core-idle cycles in
// folded and pprof exports.
const idleFrame = "idle"

// Options configures a Telemetry instance.
type Options struct {
	// SampleEvery is the simulated-cycle interval between time-series
	// rows. Zero selects DefaultSampleEvery.
	SampleEvery uint64
	// MaxRows bounds the retained time series; when exceeded the series
	// is downsampled 2:1 and the interval doubled (deterministically).
	// Zero selects DefaultMaxRows.
	MaxRows int
	// TraceEvents, when positive, arms a per-job trace.Tracer ring of
	// that capacity; the retained events are exported into the job's
	// Snapshot (Snapshot.Trace) so traces survive manifest resume and
	// distributed shipping. Zero leaves tracing off.
	TraceEvents int
}

// Defaults for Options.
const (
	DefaultSampleEvery = 1_000_000 // 0.4 ms of simulated time at 2.5 GHz
	DefaultMaxRows     = 4096
)

func (o Options) withDefaults() Options {
	if o.SampleEvery == 0 {
		o.SampleEvery = DefaultSampleEvery
	}
	if o.MaxRows <= 0 {
		o.MaxRows = DefaultMaxRows
	}
	return o
}

// pnode is one frame-trie node. The trie is rooted per base component;
// children are keyed by component, cycles are accumulated per core.
type pnode struct {
	comp   Component
	parent int32
	child  [numComponents]int32 // -1 = absent
	cycles []uint64             // indexed by core, grown on demand
}

// tstate is a thread's profiler state: its current trie position.
type tstate struct {
	node  int32
	depth int
}

// Telemetry is a per-run recorder: profiler plus metrics registry. Create
// with New, wire with Bind before sim.Engine.Run, then call Snapshot
// after the run. All simulated-side methods are nil-safe and run on the
// engine's serialized schedule, so no locking is needed.
type Telemetry struct {
	opt Options
	eng *sim.Engine

	nodes     []pnode
	rootChild [numComponents]int32
	threads   map[int]*tstate
	base      map[int]Component

	coreClock []uint64 // per-core clock rebuilt from observed deltas
	idle      []uint64 // per-core unattributed (idle) cycles
	wall      uint64   // max over coreClock

	reg        *registry
	nextSample uint64
}

// New creates an enabled recorder.
func New(opt Options) *Telemetry {
	t := &Telemetry{
		opt:     opt.withDefaults(),
		threads: map[int]*tstate{},
		base:    map[int]Component{},
	}
	for i := range t.rootChild {
		t.rootChild[i] = -1
	}
	t.reg = newRegistry()
	t.nextSample = t.opt.SampleEvery
	return t
}

// Bind attaches the recorder to an engine: it becomes the engine's clock
// observer and reads authoritative core clocks at snapshot time.
func (t *Telemetry) Bind(eng *sim.Engine) {
	if t == nil {
		return
	}
	t.eng = eng
	eng.SetClockObserver(t)
}

// node returns the trie position for thread id, creating the base frame
// on first sight.
func (t *Telemetry) state(id int) *tstate {
	ts := t.threads[id]
	if ts == nil {
		base, ok := t.base[id]
		if !ok {
			base = CompApp
		}
		ts = &tstate{node: t.childOf(-1, base), depth: 1}
		t.threads[id] = ts
	}
	return ts
}

// childOf interns the child frame of parent (or a root frame if parent is
// -1) for component c. The child link is written by index after the
// append: appending to t.nodes may move the backing array, so a pointer
// taken before it would update the stale copy.
func (t *Telemetry) childOf(parent int32, c Component) int32 {
	if parent < 0 {
		if idx := t.rootChild[c]; idx >= 0 {
			return idx
		}
	} else if idx := t.nodes[parent].child[c]; idx >= 0 {
		return idx
	}
	n := pnode{comp: c, parent: parent}
	for i := range n.child {
		n.child[i] = -1
	}
	t.nodes = append(t.nodes, n)
	idx := int32(len(t.nodes) - 1)
	if parent < 0 {
		t.rootChild[c] = idx
	} else {
		t.nodes[parent].child[c] = idx
	}
	return idx
}

// SetBase declares the thread's bottom stack frame (default CompApp).
// Call before the thread first ticks — typically right after Spawn.
func (t *Telemetry) SetBase(th *sim.Thread, c Component) {
	if t == nil {
		return
	}
	t.eng.FlushClock()
	id := th.ID()
	t.base[id] = c
	if ts := t.threads[id]; ts != nil && ts.depth == 1 {
		ts.node = t.childOf(-1, c)
	}
}

// Enter pushes a component frame on the thread's stack. Cycles ticked
// until the matching Exit are attributed to the nested stack. Entering
// the component already on top is a no-op level (re-entered frames merge)
// but must still be balanced with Exit.
func (t *Telemetry) Enter(th *sim.Thread, c Component) {
	if t == nil {
		return
	}
	t.eng.FlushClock()
	ts := t.state(th.ID())
	ts.node = t.childOf(ts.node, c)
	ts.depth++
}

// Exit pops the frame pushed by the matching Enter.
func (t *Telemetry) Exit(th *sim.Thread) {
	if t == nil {
		return
	}
	t.eng.FlushClock()
	ts := t.state(th.ID())
	if ts.depth <= 1 {
		panic("telemetry: Exit without matching Enter")
	}
	ts.node = t.nodes[ts.node].parent
	if ts.node < 0 {
		panic("telemetry: frame stack underflow")
	}
	ts.depth--
}

// Busy implements sim.ClockObserver: cycles cycles of thread work on core.
func (t *Telemetry) Busy(core, thread int, cycles uint64) {
	ts := t.state(thread)
	n := &t.nodes[ts.node]
	for len(n.cycles) <= core {
		n.cycles = append(n.cycles, 0)
	}
	n.cycles[core] += cycles
	t.advance(core, cycles)
}

// Idle implements sim.ClockObserver: the core idled for cycles.
func (t *Telemetry) Idle(core int, cycles uint64) {
	for len(t.idle) <= core {
		t.idle = append(t.idle, 0)
	}
	t.idle[core] += cycles
	t.advance(core, cycles)
}

// advance moves the observed core clock and fires time-series samples at
// every crossed boundary. Sampling depends only on simulated time, so the
// series is identical however the host schedules the run.
func (t *Telemetry) advance(core int, cycles uint64) {
	for len(t.coreClock) <= core {
		t.coreClock = append(t.coreClock, 0)
	}
	t.coreClock[core] += cycles
	if t.coreClock[core] <= t.wall {
		return
	}
	t.wall = t.coreClock[core]
	for t.wall >= t.nextSample {
		t.reg.sample(t.nextSample)
		t.nextSample += t.opt.SampleEvery
		if len(t.reg.rows) >= t.opt.MaxRows {
			t.opt.SampleEvery *= 2
			t.reg.downsample(t.opt.SampleEvery)
			// Re-align the next boundary to the widened interval.
			t.nextSample = (t.wall/t.opt.SampleEvery + 1) * t.opt.SampleEvery
		}
	}
}

// Source binds the value source for a standard counter or gauge series.
// fn is evaluated at each sample boundary and at snapshot; it must be a
// pure read of simulated state. Counters must be monotone.
func (t *Telemetry) Source(id StdID, fn func() float64) {
	if t == nil {
		return
	}
	t.reg.series[id].fn = fn
}

// Observe records a value into a standard histogram series.
func (t *Telemetry) Observe(id StdID, v float64) {
	if t == nil {
		return
	}
	t.reg.series[id].observe(v)
}

// Add increments a standard counter series that has no bound source.
// Counters driven by Add and by Source are mutually exclusive per series.
func (t *Telemetry) Add(id StdID, n float64) {
	if t == nil {
		return
	}
	t.reg.series[id].acc += n
}

// Enabled reports whether the recorder is live (non-nil).
func (t *Telemetry) Enabled() bool { return t != nil }
