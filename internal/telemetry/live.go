package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"
)

// JobUpdate is one progress observation from an experiment pool, shaped
// after expt.Event but defined here so telemetry does not import expt.
type JobUpdate struct {
	Key       string  `json:"key"`
	Workload  string  `json:"workload"`
	Condition string  `json:"condition"`
	Seed      int64   `json:"seed"`
	Status    string  `json:"status"` // ran | cached | retry | failed
	Attempts  int     `json:"attempts"`
	Err       string  `json:"err,omitempty"`
	HostMS    float64 `json:"host_ms"`
	Done      int     `json:"done"`
	Total     int     `json:"total"`
}

// WorkerStatus is one distributed worker's lease accounting, published
// by internal/dist's coordinator through SetWorkerSource. Defined here
// (like JobUpdate) so telemetry does not import dist.
type WorkerStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Inflight int    `json:"inflight"`
	Leases   uint64 `json:"leases"`
	Results  uint64 `json:"results"`
	Failures uint64 `json:"failures"`
	Reclaims uint64 `json:"reclaims"`
	// CacheHits counts results the worker replayed from its local result
	// cache (manifest) instead of re-executing.
	CacheHits uint64 `json:"cache_hits,omitempty"`
	// Discards counts late results the coordinator rejected because the
	// lease had already been reclaimed.
	Discards uint64 `json:"discards,omitempty"`
	// Breaker is the worker's circuit-breaker state ("closed", "open",
	// "half-open"); BreakerTrips counts closed→open transitions.
	Breaker      string `json:"breaker,omitempty"`
	BreakerTrips uint64 `json:"breaker_trips,omitempty"`
	// SecondsSinceSeen is the age of the worker's last request (lease,
	// heartbeat or result) at snapshot time.
	SecondsSinceSeen float64 `json:"seconds_since_seen"`
}

// DistStats is the coordinator-level degraded-mode accounting, published
// by internal/dist through SetDistSource: fleet size (live vs evicted),
// counters that survive worker eviction, local-fallback activity, and —
// when the campaign ran under network fault injection — per-class
// injection counts.
type DistStats struct {
	WorkersLive     int    `json:"workers_live"`
	WorkersDeparted int    `json:"workers_departed"`
	FallbackRuns    uint64 `json:"fallback_runs"`
	CacheHits       uint64 `json:"cache_hits"`
	Discards        uint64 `json:"discards"`
	Reclaims        uint64 `json:"reclaims"`
	BreakerTrips    uint64 `json:"breaker_trips"`
	// NetfaultInjections maps fault class name (drop, delay, duplicate,
	// reorder, reset, throttle, partition) to injection count; nil when no
	// coordinator-side injector is armed.
	NetfaultInjections map[string]uint64 `json:"netfault_injections,omitempty"`
}

// FleetWorker is one worker's contribution to the campaign's merged
// observability view: how many jobs it completed and where its host and
// simulated time went. A local (non-distributed) campaign publishes a
// single synthetic "local" worker.
type FleetWorker struct {
	ID        string  `json:"id"`
	Name      string  `json:"name"`
	Jobs      uint64  `json:"jobs"`
	CacheHits uint64  `json:"cache_hits,omitempty"`
	HostMS    float64 `json:"host_ms"`
	SimCycles uint64  `json:"sim_cycles"`
	// TraceEvents/TraceDropped count trace-ring events shipped and
	// overwritten across the worker's jobs (Options.TraceEvents).
	TraceEvents  uint64 `json:"trace_events,omitempty"`
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
}

// FleetStats is the fleet-level aggregate served on /fleet and exported
// as the fleet_* OpenMetrics families: per-worker rows plus totals.
// Published through SetFleetSource by the dist coordinator (or a local
// pool adapter); defined here so telemetry imports neither.
type FleetStats struct {
	Workers      []FleetWorker `json:"workers"`
	Jobs         uint64        `json:"jobs"`
	HostMS       float64       `json:"host_ms"`
	SimCycles    uint64        `json:"sim_cycles"`
	TraceEvents  uint64        `json:"trace_events"`
	TraceDropped uint64        `json:"trace_dropped"`
}

// Totaled returns a copy with the totals recomputed from the per-worker
// rows, so sources only need to fill Workers.
func (f FleetStats) Totaled() FleetStats {
	f.Jobs, f.HostMS, f.SimCycles, f.TraceEvents, f.TraceDropped = 0, 0, 0, 0, 0
	for _, w := range f.Workers {
		f.Jobs += w.Jobs
		f.HostMS += w.HostMS
		f.SimCycles += w.SimCycles
		f.TraceEvents += w.TraceEvents
		f.TraceDropped += w.TraceDropped
	}
	return f
}

// liveEvent is a JobUpdate stamped with host receive order/time.
type liveEvent struct {
	Seq  int       `json:"seq"`
	At   time.Time `json:"at"`
	Job  JobUpdate `json:"job"`
}

// maxRecentEvents bounds the /events ring.
const maxRecentEvents = 256

// Live is the introspection HTTP server mounted by cmd/sweep and
// cmd/chaos under -http. It serves:
//
//	/           human-readable status summary + endpoint index
//	/metrics    OpenMetrics: host-side campaign progress counters, the
//	            fleet_* families, plus the merged simulated-metric
//	            families when a source is set
//	/jobs       JSON: last known status of every observed job
//	/events     JSON: the most recent progress events (ring of 256)
//	/workers    JSON: per-worker lease accounting (empty when local)
//	/dist       JSON: coordinator degraded-mode stats (empty when local)
//	/fleet      JSON: fleet-level merged telemetry aggregate
//	/healthz    "ok"
//
// Live runs on the host side and is the one telemetry component that is
// genuinely concurrent: Observe is called from pool worker goroutines
// while HTTP handlers read, so all state is mutex-guarded.
type Live struct {
	tool  string
	start time.Time

	mu      sync.Mutex
	updates map[string]JobUpdate
	order   []string
	recent  []liveEvent
	seq     int
	done    int
	total   int
	byStat  map[string]int
	source  func() *Snapshot
	workers func() []WorkerStatus
	dist    func() DistStats
	fleet   func() FleetStats

	srv *http.Server
	ln  net.Listener
}

// NewLive creates a server for the named tool ("sweep", "chaos").
func NewLive(tool string) *Live {
	return &Live{
		tool:    tool,
		start:   time.Now(),
		updates: map[string]JobUpdate{},
		byStat:  map[string]int{},
	}
}

// Observe records a progress event. Chain it into the pool's Progress
// callback; safe for concurrent use.
func (l *Live) Observe(u JobUpdate) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, seen := l.updates[u.Key]; !seen {
		l.order = append(l.order, u.Key)
	}
	l.updates[u.Key] = u
	l.byStat[u.Status]++
	if u.Done > 0 {
		l.done = u.Done
	}
	if u.Total > l.total {
		l.total = u.Total
	}
	l.seq++
	l.recent = append(l.recent, liveEvent{Seq: l.seq, At: time.Now(), Job: u})
	if len(l.recent) > maxRecentEvents {
		l.recent = l.recent[len(l.recent)-maxRecentEvents:]
	}
}

// SetMetricsSource installs a provider of merged simulated metrics,
// appended to /metrics after the host-side progress families. The
// function is called per scrape and must be safe for concurrent use.
func (l *Live) SetMetricsSource(fn func() *Snapshot) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.source = fn
	l.mu.Unlock()
}

// SetWorkerSource installs a provider of distributed-worker status (the
// dist coordinator's Workers method). When set, /workers serves the
// snapshot and /metrics grows per-worker lease families. Called per
// scrape; must be safe for concurrent use.
func (l *Live) SetWorkerSource(fn func() []WorkerStatus) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.workers = fn
	l.mu.Unlock()
}

// SetDistSource installs a provider of coordinator-level degraded-mode
// stats (the dist coordinator's DistStats method). When set, /dist serves
// the snapshot and /metrics grows fleet-level families. Called per
// scrape; must be safe for concurrent use.
func (l *Live) SetDistSource(fn func() DistStats) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.dist = fn
	l.mu.Unlock()
}

// SetFleetSource installs a provider of fleet-level merged telemetry
// (per-worker job/host-cost/sim-cycle/trace accounting). When set,
// /fleet serves the snapshot and /metrics grows the fleet_* families.
// Called per scrape; must be safe for concurrent use.
func (l *Live) SetFleetSource(fn func() FleetStats) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.fleet = fn
	l.mu.Unlock()
}

// Handler returns the HTTP mux.
func (l *Live) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", l.handleRoot)
	mux.HandleFunc("/metrics", l.handleMetrics)
	mux.HandleFunc("/jobs", l.handleJobs)
	mux.HandleFunc("/events", l.handleEvents)
	mux.HandleFunc("/workers", l.handleWorkers)
	mux.HandleFunc("/dist", l.handleDist)
	mux.HandleFunc("/fleet", l.handleFleet)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Start listens on addr (":0" for ephemeral) and serves in a background
// goroutine, returning the bound address.
func (l *Live) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	l.ln = ln
	l.srv = &http.Server{Handler: l.Handler()}
	go func() { _ = l.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close shuts the listener down.
func (l *Live) Close() error {
	if l == nil || l.srv == nil {
		return nil
	}
	return l.srv.Close()
}

// endpointIndex describes every endpoint the server can mount, in the
// order the root index lists them.
var endpointIndex = []struct {
	path, desc string
	distOnly   bool
}{
	{"/metrics", "OpenMetrics exposition (campaign progress, fleet, merged simulated metrics)", false},
	{"/jobs", "JSON: last known status of every observed job", false},
	{"/events", "JSON: most recent progress events (ring of 256)", false},
	{"/workers", "JSON: per-worker lease accounting (distributed campaigns)", true},
	{"/dist", "JSON: coordinator degraded-mode stats (distributed campaigns)", true},
	{"/fleet", "JSON: fleet-level merged telemetry (per-worker host/sim cost)", false},
	{"/healthz", "liveness probe", false},
}

func (l *Live) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%s: %d/%d jobs done, up %s\n", l.tool, l.done, l.total,
		time.Since(l.start).Round(time.Second))
	stats := make([]string, 0, len(l.byStat))
	for s := range l.byStat {
		stats = append(stats, s)
	}
	sort.Strings(stats)
	for _, s := range stats {
		fmt.Fprintf(w, "  %-8s %d\n", s, l.byStat[s])
	}
	fmt.Fprintln(w, "endpoints:")
	for _, ep := range endpointIndex {
		note := ""
		if ep.distOnly && l.workers == nil {
			note = " (inactive: campaign is not distributed)"
		}
		fmt.Fprintf(w, "  %-9s %s%s\n", ep.path, ep.desc, note)
	}
}

func (l *Live) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	l.WriteMetrics(w)
}

// WriteMetrics writes the full OpenMetrics exposition (the /metrics
// body, "# EOF" included) to w. Exported so -metrics FILE dumps and the
// HTTP handler share one implementation.
func (l *Live) WriteMetrics(w io.Writer) {
	l.mu.Lock()
	done, total := l.done, l.total
	byStat := map[string]int{}
	for k, v := range l.byStat {
		byStat[k] = v
	}
	source := l.source
	workers := l.workers
	dist := l.dist
	fleet := l.fleet
	l.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s_jobs_total jobs in the campaign grid\n# TYPE %s_jobs_total gauge\n%s_jobs_total %d\n",
		l.tool, l.tool, l.tool, total)
	fmt.Fprintf(w, "# HELP %s_jobs_done jobs completed (ran or cached)\n# TYPE %s_jobs_done gauge\n%s_jobs_done %d\n",
		l.tool, l.tool, l.tool, done)
	fmt.Fprintf(w, "# HELP %s_job_events_total progress events by status\n# TYPE %s_job_events_total counter\n",
		l.tool, l.tool)
	for _, s := range []string{"ran", "cached", "retry", "failed"} {
		fmt.Fprintf(w, "%s_job_events_total{status=\"%s\"} %d\n", l.tool, s, byStat[s])
	}
	if workers != nil {
		ws := workers()
		for _, fam := range []struct {
			name, help string
			value      func(WorkerStatus) uint64
		}{
			{"dist_worker_inflight", "leases currently held by the worker", func(s WorkerStatus) uint64 { return uint64(s.Inflight) }},
			{"dist_worker_leases_total", "leases ever granted to the worker", func(s WorkerStatus) uint64 { return s.Leases }},
			{"dist_worker_results_total", "successful results delivered by the worker", func(s WorkerStatus) uint64 { return s.Results }},
			{"dist_worker_failures_total", "failed results delivered by the worker", func(s WorkerStatus) uint64 { return s.Failures }},
			{"dist_worker_reclaims_total", "leases reclaimed from the worker after heartbeat or lease timeout", func(s WorkerStatus) uint64 { return s.Reclaims }},
			{"dist_worker_cache_hits_total", "results the worker replayed from its local result cache", func(s WorkerStatus) uint64 { return s.CacheHits }},
			{"dist_worker_discards_total", "late results discarded because the lease was already reclaimed", func(s WorkerStatus) uint64 { return s.Discards }},
			{"dist_worker_breaker_trips_total", "circuit-breaker trips quarantining the worker", func(s WorkerStatus) uint64 { return s.BreakerTrips }},
			{"dist_worker_breaker_open", "1 while the worker's circuit breaker is open (quarantined)", func(s WorkerStatus) uint64 {
				if s.Breaker == "open" {
					return 1
				}
				return 0
			}},
		} {
			kind := "counter"
			if fam.name == "dist_worker_inflight" || fam.name == "dist_worker_breaker_open" {
				kind = "gauge"
			}
			fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s %s\n", l.tool, fam.name, fam.help, l.tool, fam.name, kind)
			for _, s := range ws {
				fmt.Fprintf(w, "%s_%s{worker=\"%s\",name=\"%s\"} %d\n", l.tool, fam.name, s.ID, s.Name, fam.value(s))
			}
		}
	}
	if dist != nil {
		st := dist()
		for _, fam := range []struct {
			name, help, kind string
			value            uint64
		}{
			{"dist_workers_live", "workers currently in the live fleet view", "gauge", uint64(st.WorkersLive)},
			{"dist_workers_departed_total", "workers evicted from the fleet after prolonged silence", "counter", uint64(st.WorkersDeparted)},
			{"dist_fallback_runs_total", "jobs the coordinator ran locally after the fleet went silent", "counter", st.FallbackRuns},
			{"dist_cache_hits_total", "results replayed from worker result caches, fleet-wide", "counter", st.CacheHits},
			{"dist_discards_total", "late results discarded after lease reclaim, fleet-wide", "counter", st.Discards},
			{"dist_breaker_trips_total", "circuit-breaker trips, fleet-wide", "counter", st.BreakerTrips},
		} {
			fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s %s\n%s_%s %d\n",
				l.tool, fam.name, fam.help, l.tool, fam.name, fam.kind, l.tool, fam.name, fam.value)
		}
		if len(st.NetfaultInjections) > 0 {
			fmt.Fprintf(w, "# HELP %s_dist_netfault_injections_total injected network faults by class\n# TYPE %s_dist_netfault_injections_total counter\n",
				l.tool, l.tool)
			classes := make([]string, 0, len(st.NetfaultInjections))
			for c := range st.NetfaultInjections {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			for _, c := range classes {
				fmt.Fprintf(w, "%s_dist_netfault_injections_total{class=\"%s\"} %d\n", l.tool, c, st.NetfaultInjections[c])
			}
		}
	}
	if fleet != nil {
		fs := fleet()
		for _, fam := range []struct {
			name, help string
			value      func(FleetWorker) string
		}{
			{"fleet_worker_jobs_total", "jobs completed by the worker", func(s FleetWorker) string { return fmt.Sprint(s.Jobs) }},
			{"fleet_worker_host_ms_total", "host milliseconds spent by the worker", func(s FleetWorker) string { return fmtVal(s.HostMS) }},
			{"fleet_worker_sim_cycles_total", "simulated wall cycles produced by the worker", func(s FleetWorker) string { return fmt.Sprint(s.SimCycles) }},
			{"fleet_worker_trace_events_total", "trace events shipped by the worker", func(s FleetWorker) string { return fmt.Sprint(s.TraceEvents) }},
			{"fleet_worker_trace_dropped_total", "trace events lost to ring wrap on the worker", func(s FleetWorker) string { return fmt.Sprint(s.TraceDropped) }},
		} {
			fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n", l.tool, fam.name, fam.help, l.tool, fam.name)
			for _, s := range fs.Workers {
				fmt.Fprintf(w, "%s_%s{worker=\"%s\",name=\"%s\"} %s\n", l.tool, fam.name, s.ID, s.Name, fam.value(s))
			}
		}
		for _, fam := range []struct {
			name, help, kind, value string
		}{
			{"fleet_workers", "workers contributing to the fleet aggregate", "gauge", fmt.Sprint(len(fs.Workers))},
			{"fleet_jobs_total", "jobs completed fleet-wide", "counter", fmt.Sprint(fs.Jobs)},
			{"fleet_host_ms_total", "host milliseconds spent fleet-wide", "counter", fmtVal(fs.HostMS)},
			{"fleet_sim_cycles_total", "simulated wall cycles produced fleet-wide", "counter", fmt.Sprint(fs.SimCycles)},
			{"fleet_trace_events_total", "trace events shipped fleet-wide", "counter", fmt.Sprint(fs.TraceEvents)},
			{"fleet_trace_dropped_total", "trace events lost to ring wrap fleet-wide", "counter", fmt.Sprint(fs.TraceDropped)},
		} {
			fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s %s\n%s_%s %s\n",
				l.tool, fam.name, fam.help, l.tool, fam.name, fam.kind, l.tool, fam.name, fam.value)
		}
	}
	if source != nil {
		if snap := source(); snap != nil {
			fmt.Fprintf(w, "# HELP %s_trace_dropped_total trace events lost to ring wrap across merged jobs\n# TYPE %s_trace_dropped_total counter\n%s_trace_dropped_total %d\n",
				l.tool, l.tool, l.tool, snap.TraceDropped)
			_ = snap.WriteOpenMetrics(w, false)
		}
	}
	fmt.Fprintln(w, "# EOF")
}

// handleWorkers serves the distributed-worker snapshot. When the
// campaign is not distributed (no source installed) it serves an empty
// JSON array rather than a 404, so scrapers need no special-casing.
func (l *Live) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	workers := l.workers
	l.mu.Unlock()
	ws := []WorkerStatus{}
	if workers != nil {
		if got := workers(); got != nil {
			ws = got
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ws)
}

// handleDist serves the coordinator-level degraded-mode snapshot, or an
// empty JSON object when the campaign is not distributed.
func (l *Live) handleDist(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	dist := l.dist
	l.mu.Unlock()
	var st DistStats
	if dist != nil {
		st = dist()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// handleFleet serves the fleet-level merged telemetry aggregate, or an
// empty JSON object when no fleet source is installed.
func (l *Live) handleFleet(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	fleet := l.fleet
	l.mu.Unlock()
	var fs FleetStats
	if fleet != nil {
		fs = fleet()
	}
	if fs.Workers == nil {
		fs.Workers = []FleetWorker{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(fs)
}

func (l *Live) handleJobs(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	jobs := make([]JobUpdate, 0, len(l.order))
	for _, k := range l.order {
		jobs = append(jobs, l.updates[k])
	}
	l.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(jobs)
}

func (l *Live) handleEvents(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	evs := append([]liveEvent(nil), l.recent...)
	l.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(evs)
}
