package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"
)

// JobUpdate is one progress observation from an experiment pool, shaped
// after expt.Event but defined here so telemetry does not import expt.
type JobUpdate struct {
	Key       string  `json:"key"`
	Workload  string  `json:"workload"`
	Condition string  `json:"condition"`
	Seed      int64   `json:"seed"`
	Status    string  `json:"status"` // ran | cached | retry | failed
	Attempts  int     `json:"attempts"`
	Err       string  `json:"err,omitempty"`
	HostMS    float64 `json:"host_ms"`
	Done      int     `json:"done"`
	Total     int     `json:"total"`
}

// liveEvent is a JobUpdate stamped with host receive order/time.
type liveEvent struct {
	Seq  int       `json:"seq"`
	At   time.Time `json:"at"`
	Job  JobUpdate `json:"job"`
}

// maxRecentEvents bounds the /events ring.
const maxRecentEvents = 256

// Live is the introspection HTTP server mounted by cmd/sweep and
// cmd/chaos under -http. It serves:
//
//	/           human-readable status summary
//	/metrics    OpenMetrics: host-side campaign progress counters, plus
//	            the merged simulated-metric families when a source is set
//	/jobs       JSON: last known status of every observed job
//	/events     JSON: the most recent progress events (ring of 256)
//	/healthz    "ok"
//
// Live runs on the host side and is the one telemetry component that is
// genuinely concurrent: Observe is called from pool worker goroutines
// while HTTP handlers read, so all state is mutex-guarded.
type Live struct {
	tool  string
	start time.Time

	mu      sync.Mutex
	updates map[string]JobUpdate
	order   []string
	recent  []liveEvent
	seq     int
	done    int
	total   int
	byStat  map[string]int
	source  func() *Snapshot

	srv *http.Server
	ln  net.Listener
}

// NewLive creates a server for the named tool ("sweep", "chaos").
func NewLive(tool string) *Live {
	return &Live{
		tool:    tool,
		start:   time.Now(),
		updates: map[string]JobUpdate{},
		byStat:  map[string]int{},
	}
}

// Observe records a progress event. Chain it into the pool's Progress
// callback; safe for concurrent use.
func (l *Live) Observe(u JobUpdate) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, seen := l.updates[u.Key]; !seen {
		l.order = append(l.order, u.Key)
	}
	l.updates[u.Key] = u
	l.byStat[u.Status]++
	if u.Done > 0 {
		l.done = u.Done
	}
	if u.Total > l.total {
		l.total = u.Total
	}
	l.seq++
	l.recent = append(l.recent, liveEvent{Seq: l.seq, At: time.Now(), Job: u})
	if len(l.recent) > maxRecentEvents {
		l.recent = l.recent[len(l.recent)-maxRecentEvents:]
	}
}

// SetMetricsSource installs a provider of merged simulated metrics,
// appended to /metrics after the host-side progress families. The
// function is called per scrape and must be safe for concurrent use.
func (l *Live) SetMetricsSource(fn func() *Snapshot) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.source = fn
	l.mu.Unlock()
}

// Handler returns the HTTP mux.
func (l *Live) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", l.handleRoot)
	mux.HandleFunc("/metrics", l.handleMetrics)
	mux.HandleFunc("/jobs", l.handleJobs)
	mux.HandleFunc("/events", l.handleEvents)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Start listens on addr (":0" for ephemeral) and serves in a background
// goroutine, returning the bound address.
func (l *Live) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	l.ln = ln
	l.srv = &http.Server{Handler: l.Handler()}
	go func() { _ = l.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close shuts the listener down.
func (l *Live) Close() error {
	if l == nil || l.srv == nil {
		return nil
	}
	return l.srv.Close()
}

func (l *Live) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(w, "%s: %d/%d jobs done, up %s\n", l.tool, l.done, l.total,
		time.Since(l.start).Round(time.Second))
	stats := make([]string, 0, len(l.byStat))
	for s := range l.byStat {
		stats = append(stats, s)
	}
	sort.Strings(stats)
	for _, s := range stats {
		fmt.Fprintf(w, "  %-8s %d\n", s, l.byStat[s])
	}
	fmt.Fprintln(w, "endpoints: /metrics /jobs /events /healthz")
}

func (l *Live) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	done, total := l.done, l.total
	byStat := map[string]int{}
	for k, v := range l.byStat {
		byStat[k] = v
	}
	source := l.source
	l.mu.Unlock()

	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	fmt.Fprintf(w, "# HELP %s_jobs_total jobs in the campaign grid\n# TYPE %s_jobs_total gauge\n%s_jobs_total %d\n",
		l.tool, l.tool, l.tool, total)
	fmt.Fprintf(w, "# HELP %s_jobs_done jobs completed (ran or cached)\n# TYPE %s_jobs_done gauge\n%s_jobs_done %d\n",
		l.tool, l.tool, l.tool, done)
	fmt.Fprintf(w, "# HELP %s_job_events_total progress events by status\n# TYPE %s_job_events_total counter\n",
		l.tool, l.tool)
	for _, s := range []string{"ran", "cached", "retry", "failed"} {
		fmt.Fprintf(w, "%s_job_events_total{status=\"%s\"} %d\n", l.tool, s, byStat[s])
	}
	if source != nil {
		if snap := source(); snap != nil {
			_ = snap.WriteOpenMetrics(w, false)
		}
	}
	fmt.Fprintln(w, "# EOF")
}

func (l *Live) handleJobs(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	jobs := make([]JobUpdate, 0, len(l.order))
	for _, k := range l.order {
		jobs = append(jobs, l.updates[k])
	}
	l.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(jobs)
}

func (l *Live) handleEvents(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	evs := append([]liveEvent(nil), l.recent...)
	l.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(evs)
}
