package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the serializable result of a recorded run: the profile as
// folded stacks, the final metric values, and the sampled time series.
// Snapshots round-trip through JSON (manifest resume) and merge
// deterministically, so sweep-level exports are byte-identical at any
// worker count.
type Snapshot struct {
	// SampleEvery is the effective sampling interval (it doubles when the
	// row cap is hit).
	SampleEvery uint64 `json:"sample_every"`
	// Cores is the number of cores that ever ran or idled.
	Cores int `json:"cores"`
	// CoreClock is each core's final simulated clock.
	CoreClock []uint64 `json:"core_clock"`
	// Idle is each core's unattributed (idle) cycles.
	Idle []uint64 `json:"idle"`
	// Stacks holds per-core attributed cycles by component stack, sorted
	// by (stack, core).
	Stacks []StackSample `json:"stacks"`
	// Series holds the final value of every registry series.
	Series []SeriesSnap `json:"series"`
	// Rows is the sampled time series (omitted from merges).
	Rows []RowSnap `json:"rows,omitempty"`
	// Trace is the exported trace-ring contents when the run was traced
	// (Options.TraceEvents > 0); like Rows it is per-job data and is
	// dropped from merges. TraceDropped counts ring overwrites and does
	// survive merges, so silent truncation stays visible fleet-wide.
	Trace        []TraceSample `json:"trace,omitempty"`
	TraceDropped uint64        `json:"trace_dropped,omitempty"`
}

// TraceSample is one exported trace event, shaped after trace.Event but
// defined here (with the enums rendered as their export names) so
// telemetry does not import trace and snapshots stay self-describing
// across processes.
type TraceSample struct {
	Cycle uint64 `json:"cycle"`
	Core  int    `json:"core"`
	Agent string `json:"agent,omitempty"`
	Kind  string `json:"kind"`
	Phase string `json:"phase"` // B | E | i
	Epoch uint64 `json:"epoch,omitempty"`
	Arg   uint64 `json:"arg,omitempty"`
	Arg2  uint64 `json:"arg2,omitempty"`
}

// StackSample is attributed cycles for one component stack on one core.
type StackSample struct {
	Core   int    `json:"core"`
	Stack  string `json:"stack"` // "app;barrier-fault;sweep"
	Cycles uint64 `json:"cycles"`
}

// SeriesSnap is the end-of-run state of one metric series.
type SeriesSnap struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Help   string    `json:"help"`
	Value  float64   `json:"value,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	Count  uint64    `json:"count,omitempty"`
}

// RowSnap is one time-series sample: the value of every series (in
// Series order) at a simulated cycle.
type RowSnap struct {
	Cycle  uint64    `json:"cycle"`
	Values []float64 `json:"values"`
}

// Snapshot captures the recorder's state. Call after sim.Engine.Run; the
// simulated side must be quiescent.
func (t *Telemetry) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	cores := len(t.coreClock)
	if n := len(t.idle); n > cores {
		cores = n
	}
	s := &Snapshot{
		SampleEvery: t.opt.SampleEvery,
		Cores:       cores,
		CoreClock:   make([]uint64, cores),
		Idle:        make([]uint64, cores),
	}
	for i := 0; i < cores; i++ {
		if t.eng != nil {
			s.CoreClock[i] = t.eng.CoreClock(i)
		} else if i < len(t.coreClock) {
			s.CoreClock[i] = t.coreClock[i]
		}
		if i < len(t.idle) {
			s.Idle[i] = t.idle[i]
		}
	}
	for ni := range t.nodes {
		n := &t.nodes[ni]
		var any bool
		for _, c := range n.cycles {
			if c > 0 {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		stack := t.stackOf(int32(ni))
		for core, cyc := range n.cycles {
			if cyc > 0 {
				s.Stacks = append(s.Stacks, StackSample{Core: core, Stack: stack, Cycles: cyc})
			}
		}
	}
	sortStacks(s.Stacks)
	for _, sr := range t.reg.series {
		ss := SeriesSnap{Name: sr.name, Kind: sr.kind.String(), Help: sr.help}
		if sr.kind == kindHistogram {
			ss.Bounds = sr.bounds
			ss.Counts = append([]uint64(nil), sr.counts...)
			ss.Sum = sr.sum
			ss.Count = sr.count
		} else {
			ss.Value = sr.value()
		}
		s.Series = append(s.Series, ss)
	}
	for _, rw := range t.reg.rows {
		s.Rows = append(s.Rows, RowSnap{Cycle: rw.cycle, Values: append([]float64(nil), rw.values...)})
	}
	return s
}

// stackOf renders the component path from a base frame to node ni.
func (t *Telemetry) stackOf(ni int32) string {
	var parts []string
	for ni >= 0 {
		parts = append(parts, t.nodes[ni].comp.String())
		ni = t.nodes[ni].parent
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, ";")
}

func sortStacks(st []StackSample) {
	sort.Slice(st, func(i, j int) bool {
		if st[i].Stack != st[j].Stack {
			return st[i].Stack < st[j].Stack
		}
		return st[i].Core < st[j].Core
	})
}

// CheckConservation verifies the profiler's core invariant: for every
// core, attributed busy cycles plus idle cycles equal the core's clock.
func (s *Snapshot) CheckConservation() error {
	busy := make([]uint64, s.Cores)
	for _, st := range s.Stacks {
		if st.Core >= len(busy) {
			return fmt.Errorf("telemetry: stack %q on core %d beyond %d cores", st.Stack, st.Core, s.Cores)
		}
		busy[st.Core] += st.Cycles
	}
	for c := 0; c < s.Cores; c++ {
		var idle uint64
		if c < len(s.Idle) {
			idle = s.Idle[c]
		}
		if got, want := busy[c]+idle, s.CoreClock[c]; got != want {
			return fmt.Errorf("telemetry: core %d attributed %d (busy %d + idle %d) != clock %d",
				c, got, busy[c], idle, want)
		}
	}
	return nil
}

// Keyed pairs a snapshot with a stable identity (e.g. an expt job key)
// used to fix the merge order.
type Keyed struct {
	Key  string
	Snap *Snapshot
}

// Merge combines snapshots into one aggregate. Inputs are sorted by key
// first, so the result is identical regardless of the order jobs finished
// in — the property behind byte-identical exports at any -workers count.
// Counters and gauges sum; histograms sum bucket-wise; per-job time-series
// rows and trace events are dropped (use WriteSeriesCSV / the timeline
// exporter for those) while TraceDropped counts sum.
func Merge(snaps []Keyed) *Snapshot {
	sorted := append([]Keyed(nil), snaps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	out := &Snapshot{}
	type skey struct {
		stack string
		core  int
	}
	acc := map[skey]uint64{}
	for _, ks := range sorted {
		sn := ks.Snap
		if sn == nil {
			continue
		}
		if sn.Cores > out.Cores {
			out.Cores = sn.Cores
		}
		out.SampleEvery = sn.SampleEvery
		out.TraceDropped += sn.TraceDropped
		grow := func(dst []uint64, n int) []uint64 {
			for len(dst) < n {
				dst = append(dst, 0)
			}
			return dst
		}
		out.CoreClock = grow(out.CoreClock, len(sn.CoreClock))
		for i, v := range sn.CoreClock {
			out.CoreClock[i] += v
		}
		out.Idle = grow(out.Idle, len(sn.Idle))
		for i, v := range sn.Idle {
			out.Idle[i] += v
		}
		for _, st := range sn.Stacks {
			acc[skey{st.Stack, st.Core}] += st.Cycles
		}
		if out.Series == nil {
			for _, ss := range sn.Series {
				cp := ss
				cp.Counts = append([]uint64(nil), ss.Counts...)
				out.Series = append(out.Series, cp)
			}
			continue
		}
		for i, ss := range sn.Series {
			if i >= len(out.Series) || out.Series[i].Name != ss.Name {
				continue // schema drift between snapshots; keep first
			}
			dst := &out.Series[i]
			if ss.Kind == "histogram" {
				for b, c := range ss.Counts {
					if b < len(dst.Counts) {
						dst.Counts[b] += c
					}
				}
				dst.Sum += ss.Sum
				dst.Count += ss.Count
			} else {
				dst.Value += ss.Value
			}
		}
	}
	for k, cyc := range acc {
		out.Stacks = append(out.Stacks, StackSample{Core: k.core, Stack: k.stack, Cycles: cyc})
	}
	sortStacks(out.Stacks)
	return out
}

// WriteFolded emits the profile in folded flame-graph format, one stack
// per line ("core0;app;sweep 1234"), sorted, with idle pseudo-frames.
// Feed to speedscope or any FlameGraph implementation.
func (s *Snapshot) WriteFolded(w io.Writer) error {
	var lines []string
	for _, st := range s.Stacks {
		lines = append(lines, fmt.Sprintf("core%d;%s %d", st.Core, st.Stack, st.Cycles))
	}
	for c, idle := range s.Idle {
		if idle > 0 {
			lines = append(lines, fmt.Sprintf("core%d;%s %d", c, idleFrame, idle))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// fmtVal renders a metric value in shortest round-trip form.
func fmtVal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteOpenMetrics emits the final series values in OpenMetrics text
// exposition format. When eof is true a terminating "# EOF" is appended,
// making the output a complete scrape body; pass false to embed the
// families inside a larger exposition (the live server does this).
func (s *Snapshot) WriteOpenMetrics(w io.Writer, eof bool) error {
	for _, ss := range s.Series {
		name := ss.Name
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, ss.Help, name, ss.Kind); err != nil {
			return err
		}
		switch ss.Kind {
		case "histogram":
			var cum uint64
			for i, c := range ss.Counts {
				cum += c
				le := "+Inf"
				if i < len(ss.Bounds) {
					le = fmtVal(ss.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, fmtVal(ss.Sum), name, ss.Count); err != nil {
				return err
			}
		case "counter":
			// OpenMetrics counters expose a _total sample; the registry
			// names already carry the suffix.
			if _, err := fmt.Fprintf(w, "%s %s\n", name, fmtVal(ss.Value)); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", name, fmtVal(ss.Value)); err != nil {
				return err
			}
		}
	}
	if eof {
		if _, err := fmt.Fprintln(w, "# EOF"); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV emits the sampled time series of the given snapshots as
// CSV: job,cycle,<series...>, with histogram columns carrying cumulative
// observation counts. Jobs are sorted by key, so output is byte-identical
// at any worker count.
func WriteSeriesCSV(w io.Writer, snaps []Keyed) error {
	sorted := append([]Keyed(nil), snaps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var ref *Snapshot
	for _, ks := range sorted {
		if ks.Snap != nil {
			ref = ks.Snap
			break
		}
	}
	if ref == nil {
		_, err := fmt.Fprintln(w, "job,cycle")
		return err
	}
	cols := []string{"job", "cycle"}
	for _, ss := range ref.Series {
		cols = append(cols, ss.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, ks := range sorted {
		if ks.Snap == nil {
			continue
		}
		for _, rw := range ks.Snap.Rows {
			rec := make([]string, 0, len(rw.Values)+2)
			rec = append(rec, ks.Key, strconv.FormatUint(rw.Cycle, 10))
			for _, v := range rw.Values {
				rec = append(rec, fmtVal(v))
			}
			if _, err := fmt.Fprintln(w, strings.Join(rec, ",")); err != nil {
				return err
			}
		}
	}
	return nil
}
