package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// recObs records everything a ClockObserver can learn: per-(core,thread)
// busy totals, per-core idle totals, and per-core delivered sums. The
// fast engine batches Busy calls, so the call sequences differ between
// engines by construction — but every total must match exactly, and per
// core busy + idle must equal the core clock (the conservation invariant
// telemetry rests on).
type recObs struct {
	busy map[[2]int]uint64
	idle map[int]uint64
}

func newRecObs() *recObs {
	return &recObs{busy: map[[2]int]uint64{}, idle: map[int]uint64{}}
}

func (o *recObs) Busy(core, thread int, cycles uint64) { o.busy[[2]int{core, thread}] += cycles }
func (o *recObs) Idle(core int, cycles uint64)         { o.idle[core] += cycles }

func (o *recObs) coreTotal(core int) uint64 {
	t := o.idle[core]
	for k, v := range o.busy {
		if k[0] == core {
			t += v
		}
	}
	return t
}

// simOutcome is everything observable about a finished run.
type simOutcome struct {
	Err        string
	Wall, CPU  uint64
	CoreClocks []uint64
	CoreBusy   []uint64
	ThreadCPU  []uint64
	Log        []string
	Busy       map[[2]int]uint64
	Idle       map[int]uint64
}

// runBoth executes build under both engines and fails on any observable
// divergence. build spawns threads on e and may append to the shared log;
// the log is part of the compared outcome, so any difference in execution
// order or observed virtual times between engines fails the suite.
func runBoth(t *testing.T, name string, cfg Config, build func(e *Engine, logf func(string, ...interface{}))) {
	t.Helper()
	run := func(kind EngineKind) simOutcome {
		cfg := cfg
		cfg.Engine = kind
		e := New(cfg)
		obs := newRecObs()
		e.SetClockObserver(obs)
		var log []string
		logf := func(format string, args ...interface{}) {
			log = append(log, fmt.Sprintf(format, args...))
		}
		build(e, logf)
		err := e.Run()
		out := simOutcome{
			Wall: e.WallClock(), CPU: e.TotalCPU(),
			Log: log, Busy: obs.busy, Idle: obs.idle,
		}
		if err != nil {
			out.Err = err.Error()
		}
		for i := 0; i < cfg.Cores; i++ {
			out.CoreClocks = append(out.CoreClocks, e.CoreClock(i))
			out.CoreBusy = append(out.CoreBusy, e.CoreBusy(i))
			if got := obs.coreTotal(i); got != e.CoreClock(i) {
				t.Errorf("%s/%s: core %d busy+idle = %d, clock = %d (conservation violated)",
					name, kind, i, got, e.CoreClock(i))
			}
		}
		for _, th := range e.Threads() {
			out.ThreadCPU = append(out.ThreadCPU, th.CPU())
		}
		return out
	}
	fast := run(EngineFast)
	classic := run(EngineClassic)
	if !reflect.DeepEqual(fast, classic) {
		t.Errorf("%s: engines diverge\n fast:    %+v\n classic: %+v", name, fast, classic)
	}
}

// TestEngineEquivalence pins that the fast and classic engines make
// bit-identical scheduling decisions across the package's behavioral
// regimes: every virtual time observed by any thread, every final clock,
// every observer total, and every error must match.
func TestEngineEquivalence(t *testing.T) {
	base := DefaultConfig()
	base.Cores = 2

	t.Run("hot-solo", func(t *testing.T) {
		runBoth(t, "hot-solo", base, func(e *Engine, logf func(string, ...interface{})) {
			e.Spawn("w", []int{0}, func(th *Thread) {
				for i := 0; i < 5000; i++ {
					th.Tick(uint64(1 + i%97))
				}
				logf("w done at %d", th.Now())
			})
		})
	})

	t.Run("core-sharing", func(t *testing.T) {
		cfg := base
		cfg.OSQuantum = 30_000
		runBoth(t, "core-sharing", cfg, func(e *Engine, logf func(string, ...interface{})) {
			for i := 0; i < 3; i++ {
				i := i
				e.Spawn("w", []int{0}, func(th *Thread) {
					for j := 0; j < 2000; j++ {
						th.Tick(uint64(100 + i*13))
					}
					logf("w%d done at %d cpu %d", i, th.Now(), th.CPU())
				})
			}
		})
	})

	t.Run("sleep-fleet", func(t *testing.T) {
		runBoth(t, "sleep-fleet", base, func(e *Engine, logf func(string, ...interface{})) {
			for i := 0; i < 16; i++ {
				i := i
				e.Spawn("conn", []int{i % 2}, func(th *Thread) {
					for j := 0; j < 50; j++ {
						th.Tick(uint64(20 + (i*31+j*7)%111))
						th.Sleep(uint64(5_000 + (i*997+j*131)%9_000))
					}
					logf("conn%d done at %d", i, th.Now())
				})
			}
		})
	})

	t.Run("events", func(t *testing.T) {
		runBoth(t, "events", base, func(e *Engine, logf func(string, ...interface{})) {
			ev := e.NewEvent()
			queued := 0
			for i := 0; i < 4; i++ {
				i := i
				e.Spawn("consumer", nil, func(th *Thread) {
					for k := 0; k < 20; k++ {
						ev.WaitUntil(th, func() bool { return queued > 0 })
						queued--
						th.Tick(uint64(300 + i*17))
						logf("consumer%d item %d at %d", i, k, th.Now())
					}
				})
			}
			e.Spawn("producer", []int{1}, func(th *Thread) {
				for k := 0; k < 80; k++ {
					th.Tick(1_000)
					queued++
					ev.Broadcast(th)
				}
				logf("producer done at %d", th.Now())
			})
		})
	})

	t.Run("spawn-tree", func(t *testing.T) {
		runBoth(t, "spawn-tree", base, func(e *Engine, logf func(string, ...interface{})) {
			e.Spawn("root", []int{0}, func(th *Thread) {
				for i := 0; i < 4; i++ {
					i := i
					th.Tick(10_000)
					e.Spawn("child", []int{(i + 1) % 2}, func(ch *Thread) {
						logf("child%d starts at %d", i, ch.Now())
						for j := 0; j < 100; j++ {
							ch.Tick(uint64(50 + j))
						}
					})
				}
				th.Tick(100_000)
				logf("root done at %d", th.Now())
			})
		})
	})

	t.Run("migration", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Cores = 3
		cfg.OSQuantum = 8_000
		runBoth(t, "migration", cfg, func(e *Engine, logf func(string, ...interface{})) {
			e.Spawn("hog", []int{0}, func(th *Thread) {
				for i := 0; i < 3000; i++ {
					th.Tick(900)
				}
			})
			for i := 0; i < 2; i++ {
				i := i
				e.Spawn("migrant", []int{0, 1, 2}, func(th *Thread) {
					for j := 0; j < 2000; j++ {
						th.Tick(uint64(700 + i*101))
						if j%500 == 0 {
							logf("migrant%d on core %d at %d", i, th.CoreID(), th.Now())
						}
					}
				})
			}
		})
	})

	t.Run("yield-poll", func(t *testing.T) {
		runBoth(t, "yield-poll", base, func(e *Engine, logf func(string, ...interface{})) {
			var target *Thread
			target = e.Spawn("t", []int{0}, func(th *Thread) {
				th.SetPoll(func(p *Thread) { logf("polled at %d", p.Now()) })
				for i := 0; i < 300; i++ {
					th.Tick(1_000)
					if i%50 == 0 {
						th.Yield()
					}
				}
			})
			e.Spawn("peer", []int{0}, func(th *Thread) {
				for i := 0; i < 300; i++ {
					th.Tick(1_000)
				}
			})
			e.Spawn("irq", []int{1}, func(th *Thread) {
				for i := 0; i < 5; i++ {
					th.Tick(40_000)
					target.Interrupt()
				}
			})
		})
	})

	t.Run("ctx-switch", func(t *testing.T) {
		cfg := base
		cfg.OSQuantum = 20_000
		cfg.CtxSwitchCycles = 700
		runBoth(t, "ctx-switch", cfg, func(e *Engine, logf func(string, ...interface{})) {
			for i := 0; i < 3; i++ {
				i := i
				e.Spawn("w", []int{0, 1}, func(th *Thread) {
					for j := 0; j < 1500; j++ {
						th.Tick(uint64(400 + i*29))
					}
					logf("w%d done at %d cpu %d", i, th.Now(), th.CPU())
				})
			}
		})
	})

	t.Run("deadlock", func(t *testing.T) {
		runBoth(t, "deadlock", base, func(e *Engine, logf func(string, ...interface{})) {
			ev := e.NewEvent()
			e.Spawn("stuck", []int{0}, func(th *Thread) {
				th.Tick(100)
				ev.Wait(th)
			})
			e.Spawn("other", []int{1}, func(th *Thread) {
				th.Tick(5_000)
				logf("other done at %d", th.Now())
			})
		})
	})

	t.Run("random-storm", func(t *testing.T) {
		// A randomized mix of every primitive, deterministic by seed: the
		// broadest single net for divergence between the engines.
		cfg := DefaultConfig()
		cfg.Cores = 4
		cfg.OSQuantum = 25_000
		runBoth(t, "random-storm", cfg, func(e *Engine, logf func(string, ...interface{})) {
			ev := e.NewEvent()
			pending := 0
			for i := 0; i < 12; i++ {
				i := i
				rng := rand.New(rand.NewSource(int64(i)*7919 + 1))
				aff := []int{i % 4}
				if i%3 == 0 {
					aff = nil // any core
				}
				e.Spawn("storm", aff, func(th *Thread) {
					for j := 0; j < 400; j++ {
						switch rng.Intn(6) {
						case 0:
							th.Tick(uint64(rng.Intn(3000)))
						case 1:
							th.Sleep(uint64(1 + rng.Intn(20_000)))
						case 2:
							th.Yield()
						case 3:
							pending++
							ev.Broadcast(th)
							th.Tick(50)
						case 4:
							if pending > 0 {
								ev.WaitUntil(th, func() bool { return pending > 0 })
								pending--
							}
							th.Tick(10)
						default:
							th.Tick(uint64(rng.Intn(200)))
						}
					}
					pending++ // unblock any residual waiters' predicates
					ev.Broadcast(th)
					logf("storm%d done at %d cpu %d", i, th.Now(), th.CPU())
				})
			}
		})
	})
}

// TestCtxSwitchCycles pins the Config.CtxSwitchCycles satellite both
// ways: the default 0 charges nothing (preserving every committed
// baseline), and a nonzero setting charges exactly one context-switch
// cost per OS-preemption rotation, visible in wall and CPU time.
func TestCtxSwitchCycles(t *testing.T) {
	run := func(kind EngineKind, ctx uint64) (wall, cpu uint64) {
		cfg := DefaultConfig()
		cfg.Cores = 1
		cfg.OSQuantum = 50_000
		cfg.CtxSwitchCycles = ctx
		cfg.Engine = kind
		e := New(cfg)
		for i := 0; i < 2; i++ {
			e.Spawn("w", []int{0}, func(th *Thread) {
				for j := 0; j < 2000; j++ {
					th.Tick(500)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.WallClock(), e.TotalCPU()
	}
	for _, kind := range []EngineKind{EngineFast, EngineClassic} {
		// Two threads share one core for 1M cycles of work each. With the
		// 50k OS quantum they rotate exactly every 50k busy cycles; the
		// baseline (ctx=0) wall is the pre-knob value, 2M.
		wall0, cpu0 := run(kind, 0)
		if wall0 != 2_000_000 || cpu0 != 2_000_000 {
			t.Fatalf("%s: ctx=0 wall=%d cpu=%d, want 2000000/2000000 (baseline changed)", kind, wall0, cpu0)
		}
		wallC, cpuC := run(kind, 300)
		if wallC <= wall0 || cpuC <= cpu0 {
			t.Fatalf("%s: ctx=300 wall=%d cpu=%d — no context-switch cost charged", kind, wallC, cpuC)
		}
		// Each rotation charges exactly 300 cycles; the totals must agree.
		if wallC != cpuC {
			t.Fatalf("%s: ctx=300 wall=%d != cpu=%d on a single always-busy core", kind, wallC, cpuC)
		}
		if extra := cpuC - cpu0; extra%300 != 0 {
			t.Fatalf("%s: extra cycles %d not a multiple of the 300-cycle switch cost", kind, extra)
		}
	}
	// The two engines must agree on the charged schedule, too.
	wf, cf := run(EngineFast, 300)
	wc, cc := run(EngineClassic, 300)
	if wf != wc || cf != cc {
		t.Fatalf("engines diverge under ctx=300: fast=(%d,%d) classic=(%d,%d)", wf, cf, wc, cc)
	}
}

// TestConservationUnderMigrationStress is the multi-core migration stress
// of the test-coverage satellite: unpinned threads migrating across four
// cores under a small OS quantum, with sleeps and wakes mixed in, must
// deliver observer streams whose per-core busy + idle equals each core's
// clock exactly — under both engines.
func TestConservationUnderMigrationStress(t *testing.T) {
	for _, kind := range []EngineKind{EngineFast, EngineClassic} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cores = 4
			cfg.OSQuantum = 9_000
			cfg.Engine = kind
			e := New(cfg)
			obs := newRecObs()
			e.SetClockObserver(obs)
			ev := e.NewEvent()
			ready := 0
			for i := 0; i < 10; i++ {
				i := i
				e.Spawn("mig", nil, func(th *Thread) {
					for j := 0; j < 1200; j++ {
						th.Tick(uint64(300 + (i*53+j*11)%700))
						switch j % 97 {
						case 13:
							th.Sleep(uint64(2_000 + i*301))
						case 41:
							ready++
							ev.Broadcast(th)
						case 71:
							ev.WaitUntil(th, func() bool { return ready > 0 })
							ready--
						}
					}
					ready += 1000 // release any waiters at exit
					ev.Broadcast(th)
				})
			}
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			var cpu uint64
			for i := 0; i < cfg.Cores; i++ {
				if got, want := obs.coreTotal(i), e.CoreClock(i); got != want {
					t.Errorf("core %d: busy+idle = %d, clock = %d", i, got, want)
				}
			}
			for k, v := range obs.busy {
				_ = k
				cpu += v
			}
			if cpu != e.TotalCPU() {
				t.Errorf("observer busy sum %d != TotalCPU %d", cpu, e.TotalCPU())
			}
		})
	}
}
