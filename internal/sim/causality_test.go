package sim

import "testing"

// TestBroadcastNeverRewindsTime reproduces the migration time-travel bug:
// a thread that ran far ahead on one core blocks; a thread on a lagging
// core wakes it. The woken thread must resume at or after its own last
// clock, not at the (earlier) waker's clock — otherwise durations measured
// across a block underflow.
func TestBroadcastNeverRewindsTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	e := New(cfg)
	ev := e.NewEvent()
	woken := false
	var before, after uint64
	e.Spawn("ahead", nil, func(th *Thread) {
		// Run far ahead, then block.
		th.Tick(10_000_000)
		before = th.Now()
		ev.Wait(th)
		after = th.Now()
		woken = true
		th.Tick(1)
	})
	e.Spawn("behind", []int{1}, func(th *Thread) {
		// Stay far behind the first thread, broadcasting until the wake
		// lands (a broadcast with no waiters is a no-op).
		for i := 0; !woken && i < 200_000; i++ {
			th.Tick(100)
			ev.Broadcast(th)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Fatal("waiter never woke")
	}
	if after < before {
		t.Fatalf("time ran backwards across a wake: before=%d after=%d", before, after)
	}
}

// TestSleepNeverRewindsAcrossMigration checks that a thread migrating to a
// lagging core after preemption still observes monotone time.
func TestMonotoneAcrossMigration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 3
	cfg.OSQuantum = 10_000
	e := New(cfg)
	// A competitor keeps core 0 busy so the migratory thread gets rotated.
	e.Spawn("hog", []int{0}, func(th *Thread) {
		for i := 0; i < 3000; i++ {
			th.Tick(1000)
		}
	})
	var violated bool
	e.Spawn("migrant", []int{0, 1, 2}, func(th *Thread) {
		last := uint64(0)
		for i := 0; i < 3000; i++ {
			th.Tick(1000)
			now := th.Now()
			if now < last {
				violated = true
			}
			last = now
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatal("observed time decreased across migration")
	}
}
