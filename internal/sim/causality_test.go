package sim

import "testing"

// TestBroadcastNeverRewindsTime reproduces the migration time-travel bug:
// a thread that ran far ahead on one core blocks; a thread on a lagging
// core wakes it. The woken thread must resume at or after its own last
// clock, not at the (earlier) waker's clock — otherwise durations measured
// across a block underflow.
func TestBroadcastNeverRewindsTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	e := New(cfg)
	ev := e.NewEvent()
	woken := false
	var before, after uint64
	e.Spawn("ahead", nil, func(th *Thread) {
		// Run far ahead, then block.
		th.Tick(10_000_000)
		before = th.Now()
		ev.Wait(th)
		after = th.Now()
		woken = true
		th.Tick(1)
	})
	e.Spawn("behind", []int{1}, func(th *Thread) {
		// Stay far behind the first thread, broadcasting until the wake
		// lands (a broadcast with no waiters is a no-op).
		for i := 0; !woken && i < 200_000; i++ {
			th.Tick(100)
			ev.Broadcast(th)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Fatal("waiter never woke")
	}
	if after < before {
		t.Fatalf("time ran backwards across a wake: before=%d after=%d", before, after)
	}
}

// TestSleepNeverRewindsAcrossMigration checks that a thread migrating to a
// lagging core after preemption still observes monotone time.
func TestMonotoneAcrossMigration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 3
	cfg.OSQuantum = 10_000
	e := New(cfg)
	// A competitor keeps core 0 busy so the migratory thread gets rotated.
	e.Spawn("hog", []int{0}, func(th *Thread) {
		for i := 0; i < 3000; i++ {
			th.Tick(1000)
		}
	})
	var violated bool
	e.Spawn("migrant", []int{0, 1, 2}, func(th *Thread) {
		last := uint64(0)
		for i := 0; i < 3000; i++ {
			th.Tick(1000)
			now := th.Now()
			if now < last {
				violated = true
			}
			last = now
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatal("observed time decreased across migration")
	}
}

// TestRunQueueFIFOHeadOfLine pins nextEntity's intended FIFO semantics:
// run queues honor arrival order, so a woken thread whose readyAt lies in
// the core's future delays a thread queued behind it even when that
// thread is ready sooner. The scenario: a waker running far ahead on
// core 1 broadcasts, committing w to core 0's queue with readyAt
// ~795_000 while core 0's clock is still 0; the waker's next slice
// expiry then wakes sleeper z (ready at 781_000), which lands BEHIND w.
// FIFO means z does not jump the queue: core 0 idles until w's readyAt
// and z resumes only after w ran, not at its own wake time. Reordering
// by readyAt would change the model and perturb every committed baseline
// document, so both engines must exhibit exactly this behavior.
func TestRunQueueFIFOHeadOfLine(t *testing.T) {
	for _, kind := range []EngineKind{EngineFast, EngineClassic} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Cores = 2
			cfg.Engine = kind
			e := New(cfg)
			ev := e.NewEvent()
			var wResume, zResume uint64
			e.Spawn("w", []int{0}, func(th *Thread) {
				ev.Wait(th)
				wResume = th.Now()
				th.Tick(2_000)
			})
			e.Spawn("z", []int{0}, func(th *Thread) {
				th.Tick(1_000)
				th.Sleep(780_000) // wakes at 781_000, before w's readyAt
				zResume = th.Now()
			})
			e.Spawn("waker", []int{1}, func(th *Thread) {
				for th.Now() < 755_000 {
					th.Tick(5_000)
				}
				th.Yield() // fresh engine slice: next expiry is ≥ 805_000
				th.Tick(40_000)
				ev.Broadcast(th) // w -> core 0 queue head, readyAt ~795_000
				th.Tick(60_000)  // slice expiry: z (ready 781_000) woken behind w
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if wResume < 790_000 {
				t.Fatalf("w resumed at %d, want >= 790000 (broadcast time)", wResume)
			}
			if zResume < wResume {
				t.Fatalf("z (resumed %d) ran before queue head w (resumed %d): FIFO violated", zResume, wResume)
			}
			if zResume < 781_000+10_000 {
				t.Fatalf("z resumed at %d, want head-of-line delay well past its 781000 wake", zResume)
			}
		})
	}
}
