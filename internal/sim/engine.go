// Package sim is a deterministic multicore co-simulation kernel.
//
// Simulated threads are ordinary Go functions running on goroutines, but
// exactly one executes at a time: the scheduler always resumes the entity
// with the smallest virtual clock, so runs are bit-reproducible regardless
// of host parallelism. Each core has its own cycle clock; wall-clock time is
// the maximum over cores, CPU time is the sum of busy cycles.
//
// Threads advance time explicitly by calling Tick with a cycle cost. A
// thread may run at most SkewQuantum cycles past the rest of the system
// before the scheduler rotates to the globally-lagging entity, bounding
// cross-core clock skew (the conservative-window technique of parallel
// discrete-event simulation). Independently, OSQuantum models the operating
// system's preemption slice: threads sharing a core round-robin at that
// granularity, which is what lets a background revocation thread steal
// whole scheduling quanta from application threads (§7.7 of the paper).
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Config sets engine parameters.
type Config struct {
	// Cores is the number of CPU cores.
	Cores int
	// SkewQuantum bounds how far (in cycles) one core's clock may run ahead
	// of the globally minimal runnable entity.
	SkewQuantum uint64
	// OSQuantum is the preemption time slice for threads sharing a core.
	OSQuantum uint64
	// HzGHz is the clock rate used only for reporting (cycles → seconds).
	HzGHz float64
}

// DefaultConfig models a four-core, 2.5 GHz Morello-like machine with a
// 20 µs skew window and a 1 ms preemption slice.
func DefaultConfig() Config {
	return Config{Cores: 4, SkewQuantum: 50_000, OSQuantum: 2_500_000, HzGHz: 2.5}
}

// State is a thread's scheduling state.
type State int

// Thread states.
const (
	// Ready threads are on a core's run queue.
	Ready State = iota
	// Running is the single currently-executing thread.
	Running
	// Blocked threads wait on an Event.
	Blocked
	// Sleeping threads wait for a virtual deadline.
	Sleeping
	// Finished threads have returned.
	Finished
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Sleeping:
		return "sleeping"
	case Finished:
		return "finished"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

type core struct {
	id    int
	clock uint64
	busy  uint64
	runq  []*Thread
}

// Thread is a simulated thread of execution.
type Thread struct {
	id       int
	name     string
	eng      *Engine
	affinity []int
	core     *core
	state    State

	resume chan struct{}
	fn     func(*Thread)

	readyAt    uint64 // wake time carried from waker
	wakeAt     uint64 // sleep deadline
	lastClock  uint64 // thread's own clock at its last yield (monotone)
	sliceEnd   uint64 // end of current engine skew slice (core clock)
	osSliceEnd uint64 // end of current OS preemption slice (core clock)
	cpu        uint64 // busy cycles consumed

	pollPending bool
	poll        func(*Thread)

	blockedOn *Event
	started   bool
}

// ClockObserver receives every core-clock advance as it happens. Busy is
// invoked from Tick with the cycles charged by the running thread; Idle is
// invoked when a core's clock jumps forward to a waking thread's ready time
// (the core had nothing to run in the gap). For any core, the busy and idle
// cycles delivered to an observer sum exactly to that core's clock — the
// invariant the telemetry profiler's conservation check rests on.
//
// Callbacks run synchronously on the simulated thread's goroutine while it
// holds the engine (exactly one runs at a time), so observers need no
// locking and see a deterministic call order. They must not call back into
// the engine (no Tick, no blocking).
type ClockObserver interface {
	Busy(core, thread int, cycles uint64)
	Idle(core int, cycles uint64)
}

// Engine is the simulation kernel. Create with New, add threads with Spawn,
// then call Run from the host.
type Engine struct {
	cfg     Config
	cores   []core
	threads []*Thread
	schedCh chan *Thread
	current *Thread
	running bool
	obs     ClockObserver
}

// SetClockObserver installs the observer delivered every clock advance.
// Install before Run; a nil observer disables delivery.
func (e *Engine) SetClockObserver(o ClockObserver) { e.obs = o }

// New creates an engine.
func New(cfg Config) *Engine {
	if cfg.Cores <= 0 {
		panic("sim: need at least one core")
	}
	if cfg.SkewQuantum == 0 || cfg.OSQuantum == 0 {
		panic("sim: quanta must be positive")
	}
	e := &Engine{cfg: cfg, schedCh: make(chan *Thread)}
	e.cores = make([]core, cfg.Cores)
	for i := range e.cores {
		e.cores[i].id = i
	}
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Spawn creates a thread restricted to the given cores (nil means any core)
// that will execute fn. Threads may be spawned before Run or by a running
// thread.
func (e *Engine) Spawn(name string, affinity []int, fn func(*Thread)) *Thread {
	if len(affinity) == 0 {
		affinity = make([]int, len(e.cores))
		for i := range affinity {
			affinity[i] = i
		}
	}
	for _, c := range affinity {
		if c < 0 || c >= len(e.cores) {
			panic(fmt.Sprintf("sim: affinity core %d out of range", c))
		}
	}
	th := &Thread{
		id:       len(e.threads),
		name:     name,
		eng:      e,
		affinity: append([]int(nil), affinity...),
		state:    Ready,
		resume:   make(chan struct{}),
		fn:       fn,
	}
	if e.current != nil {
		th.readyAt = e.current.core.clock
	}
	e.threads = append(e.threads, th)
	e.enqueue(th, false)
	return th
}

// enqueue places a Ready thread on the min-clock core in its affinity set.
func (e *Engine) enqueue(th *Thread, front bool) {
	best := &e.cores[th.affinity[0]]
	for _, ci := range th.affinity[1:] {
		if e.cores[ci].clock < best.clock {
			best = &e.cores[ci]
		}
	}
	th.core = best
	if front {
		best.runq = append([]*Thread{th}, best.runq...)
	} else {
		best.runq = append(best.runq, th)
	}
}

// nextEntity returns the runnable or sleeping thread with the smallest
// effective virtual time, or nil if none exists.
func (e *Engine) nextEntity() *Thread {
	var best *Thread
	var bestT uint64
	consider := func(th *Thread, t uint64) {
		if best == nil || t < bestT || (t == bestT && th.id < best.id) {
			best, bestT = th, t
		}
	}
	for i := range e.cores {
		c := &e.cores[i]
		if len(c.runq) > 0 {
			t := c.clock
			if r := c.runq[0].readyAt; r > t {
				t = r
			}
			consider(c.runq[0], t)
		}
	}
	for _, th := range e.threads {
		if th.state == Sleeping {
			consider(th, th.wakeAt)
		}
	}
	return best
}

// Run executes the simulation until every thread finishes. It returns an
// error describing a deadlock if blocked threads remain with nothing
// runnable.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Run reentered")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		th := e.nextEntity()
		if th == nil {
			if e.allFinished() {
				return nil
			}
			return e.deadlockError()
		}
		if th.state == Sleeping {
			th.state = Ready
			th.readyAt = th.wakeAt
			e.enqueue(th, false)
			continue
		}
		e.dispatch(th)
	}
}

func (e *Engine) allFinished() bool {
	for _, th := range e.threads {
		if th.state != Finished {
			return false
		}
	}
	return true
}

func (e *Engine) deadlockError() error {
	var stuck []string
	for _, th := range e.threads {
		if th.state != Finished {
			stuck = append(stuck, fmt.Sprintf("%s(%s)", th.name, th.state))
		}
	}
	sort.Strings(stuck)
	return fmt.Errorf("sim: deadlock: no runnable threads; waiting: %s", strings.Join(stuck, ", "))
}

// dispatch runs th until it yields (slice expiry, block, sleep or finish).
func (e *Engine) dispatch(th *Thread) {
	c := th.core
	// Pop from the head of its core's queue.
	if len(c.runq) == 0 || c.runq[0] != th {
		panic("sim: dispatch of thread not at queue head")
	}
	c.runq = c.runq[1:]
	if th.readyAt > c.clock {
		gap := th.readyAt - c.clock
		c.clock = th.readyAt // the core was idle until the thread woke
		if e.obs != nil {
			e.obs.Idle(c.id, gap)
		}
	}
	th.state = Running
	th.sliceEnd = c.clock + e.cfg.SkewQuantum
	if th.osSliceEnd <= c.clock {
		th.osSliceEnd = c.clock + e.cfg.OSQuantum
	}
	e.current = th
	if !th.started {
		th.started = true
		go func() {
			<-th.resume
			normal := false
			defer func() {
				if !normal {
					// The thread function is exiting abnormally — a panic
					// unwinding through us, or runtime.Goexit (testing's
					// FailNow). Mark the thread finished and hand control
					// back so the engine does not hang; a panic still
					// propagates after the send.
					th.state = Finished
					th.eng.schedCh <- th
				}
			}()
			th.fn(th)
			normal = true
			th.state = Finished
			th.eng.schedCh <- th
		}()
	}
	th.resume <- struct{}{}
	<-e.schedCh
	e.current = nil
}

// yield transfers control back to the scheduler and waits to be resumed.
func (th *Thread) yield() {
	if c := th.core.clock; c > th.lastClock {
		th.lastClock = c
	}
	th.eng.schedCh <- th
	<-th.resume
}

// Tick charges cycles of work to the calling thread's core. It is the only
// way virtual time advances. If the thread exhausts its engine slice it may
// be rotated out; if it exhausts its OS slice and other threads are waiting
// for the core, it is preempted to the back of the run queue.
func (th *Thread) Tick(cycles uint64) {
	c := th.core
	c.clock += cycles
	c.busy += cycles
	th.cpu += cycles
	if cycles > 0 {
		if o := th.eng.obs; o != nil {
			o.Busy(c.id, th.id, cycles)
		}
	}
	if th.pollPending && th.poll != nil {
		th.pollPending = false
		th.poll(th)
	}
	if c.clock >= th.sliceEnd {
		th.reschedule()
	}
}

// reschedule ends the current engine slice: the thread goes back to Ready
// (front of queue if its OS slice continues, back otherwise) and control
// returns to the scheduler to run whoever is globally behind.
func (th *Thread) reschedule() {
	c := th.core
	th.state = Ready
	th.readyAt = c.clock
	if c.clock >= th.osSliceEnd && len(c.runq) > 0 {
		// OS preemption: rotate, pay a context-switch cost, allow migration.
		th.osSliceEnd = 0
		th.eng.enqueue(th, false)
	} else {
		// Engine slice only: keep the core and the OS slice.
		c.runq = append([]*Thread{th}, c.runq...)
		th.core = c
	}
	th.yield()
	th.state = Running
	c = th.core
	th.sliceEnd = c.clock + th.eng.cfg.SkewQuantum
	if th.osSliceEnd <= c.clock {
		th.osSliceEnd = c.clock + th.eng.cfg.OSQuantum
	}
}

// Yield voluntarily ends the thread's OS slice.
func (th *Thread) Yield() {
	th.osSliceEnd = 0
	th.sliceEnd = 0
	th.Tick(0)
}

// Sleep blocks the thread for the given number of cycles of virtual time.
func (th *Thread) Sleep(cycles uint64) {
	th.state = Sleeping
	th.wakeAt = th.core.clock + cycles
	th.yield()
	th.state = Running
	th.sliceEnd = th.core.clock + th.eng.cfg.SkewQuantum
	th.osSliceEnd = th.core.clock + th.eng.cfg.OSQuantum
}

// Now returns the thread's current virtual time (its core's clock).
func (th *Thread) Now() uint64 { return th.core.clock }

// CPU returns the busy cycles this thread has consumed.
func (th *Thread) CPU() uint64 { return th.cpu }

// Name returns the thread's name.
func (th *Thread) Name() string { return th.name }

// ID returns the thread's engine-wide identifier.
func (th *Thread) ID() int { return th.id }

// CoreID returns the core the thread is currently placed on.
func (th *Thread) CoreID() int { return th.core.id }

// State returns the thread's scheduling state.
func (th *Thread) State() State { return th.state }

// SetPoll installs the safepoint poll function; it runs in thread context
// at the next Tick after Interrupt is called, and may block.
func (th *Thread) SetPoll(fn func(*Thread)) { th.poll = fn }

// Interrupt requests that the thread run its poll function at its next
// safepoint. Call from any simulated thread (e.g. to begin a stop-the-world
// rendezvous).
func (th *Thread) Interrupt() { th.pollPending = true }

// Engine returns the owning engine.
func (th *Thread) Engine() *Engine { return th.eng }

// WallClock returns the maximum core clock — elapsed wall time.
func (e *Engine) WallClock() uint64 {
	var m uint64
	for i := range e.cores {
		if e.cores[i].clock > m {
			m = e.cores[i].clock
		}
	}
	return m
}

// CoreClock returns core i's clock.
func (e *Engine) CoreClock(i int) uint64 { return e.cores[i].clock }

// CoreBusy returns core i's cumulative busy cycles (CPU time).
func (e *Engine) CoreBusy(i int) uint64 { return e.cores[i].busy }

// TotalCPU returns busy cycles summed over all cores.
func (e *Engine) TotalCPU() uint64 {
	var t uint64
	for i := range e.cores {
		t += e.cores[i].busy
	}
	return t
}

// Seconds converts cycles to seconds at the configured clock rate.
func (e *Engine) Seconds(cycles uint64) float64 {
	return float64(cycles) / (e.cfg.HzGHz * 1e9)
}

// Threads returns all threads ever spawned.
func (e *Engine) Threads() []*Thread { return e.threads }

// Event is a broadcast condition in virtual time. The zero value is not
// usable; create with NewEvent.
type Event struct {
	eng     *Engine
	waiters []*Thread
}

// NewEvent creates an Event on the engine.
func (e *Engine) NewEvent() *Event { return &Event{eng: e} }

// Wait blocks th until another thread calls Broadcast. Because exactly one
// simulated thread runs at a time there are no lost-wakeup races: check
// your predicate in a loop around Wait.
func (ev *Event) Wait(th *Thread) {
	th.state = Blocked
	th.blockedOn = ev
	ev.waiters = append(ev.waiters, th)
	th.yield()
	th.state = Running
	th.sliceEnd = th.core.clock + th.eng.cfg.SkewQuantum
	th.osSliceEnd = th.core.clock + th.eng.cfg.OSQuantum
}

// Broadcast wakes all waiters at the waker's current virtual time. A
// waiter whose own clock already passed that time resumes at its own clock
// instead: causality never runs backwards, even when a lagging core's
// thread performs the wake.
func (ev *Event) Broadcast(waker *Thread) {
	now := waker.core.clock
	ws := ev.waiters
	ev.waiters = nil
	for _, th := range ws {
		th.blockedOn = nil
		th.state = Ready
		th.readyAt = now
		if th.lastClock > now {
			th.readyAt = th.lastClock
		}
		ev.eng.enqueue(th, false)
	}
}

// WaitUntil blocks th until cond() is true, re-testing after each Broadcast
// of ev.
func (ev *Event) WaitUntil(th *Thread, cond func() bool) {
	for !cond() {
		ev.Wait(th)
	}
}
