// Package sim is a deterministic multicore co-simulation kernel.
//
// Simulated threads are ordinary Go functions running on goroutines, but
// exactly one executes at a time: the scheduler always resumes the entity
// with the smallest virtual clock, so runs are bit-reproducible regardless
// of host parallelism. Each core has its own cycle clock; wall-clock time is
// the maximum over cores, CPU time is the sum of busy cycles.
//
// Threads advance time explicitly by calling Tick with a cycle cost. A
// thread may run at most SkewQuantum cycles past the rest of the system
// before the scheduler rotates to the globally-lagging entity, bounding
// cross-core clock skew (the conservative-window technique of parallel
// discrete-event simulation). Independently, OSQuantum models the operating
// system's preemption slice: threads sharing a core round-robin at that
// granularity, which is what lets a background revocation thread steal
// whole scheduling quanta from application threads (§7.7 of the paper).
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Config sets engine parameters.
type Config struct {
	// Cores is the number of CPU cores.
	Cores int
	// SkewQuantum bounds how far (in cycles) one core's clock may run ahead
	// of the globally minimal runnable entity.
	SkewQuantum uint64
	// OSQuantum is the preemption time slice for threads sharing a core.
	OSQuantum uint64
	// HzGHz is the clock rate used only for reporting (cycles → seconds).
	HzGHz float64
	// CtxSwitchCycles is the cost charged to a thread when the OS preempts
	// it at the end of its OS slice (the rotate-and-migrate path). The
	// default 0 charges nothing, preserving byte-identity of all documents
	// committed before the knob existed; omitempty keeps experiment job
	// keys for those configurations unchanged.
	CtxSwitchCycles uint64 `json:",omitempty"`
	// Engine selects the scheduler implementation (see EngineKind). Both
	// engines produce bit-identical simulated results — pinned by the
	// engine-equivalence suites — so the choice is excluded from JSON and
	// experiment job keys, like harness.Config.SweepKernel.
	Engine EngineKind `json:"-"`
}

// EngineKind selects the scheduling engine implementation. The simulated
// results are bit-identical under either; only host cost differs.
type EngineKind int

// Engine kinds.
const (
	// EngineFast (the default) schedules inline on the running thread's
	// goroutine: it skips the channel round-trips through the Run loop,
	// continues the running thread without any handoff when it is still
	// the globally-minimal entity, keeps sleepers in a min-heap instead
	// of scanning every thread, and batches ClockObserver delivery
	// between scheduling points (see fast.go).
	EngineFast EngineKind = iota
	// EngineClassic is the original two-round-trip channel scheduler,
	// kept as the differential oracle the fast engine is verified
	// against.
	EngineClassic
)

func (k EngineKind) String() string {
	switch k {
	case EngineFast:
		return "fast"
	case EngineClassic:
		return "classic"
	}
	return fmt.Sprintf("enginekind(%d)", int(k))
}

// ParseEngineKind resolves a -simengine flag value. The empty string
// selects the default (fast) engine.
func ParseEngineKind(s string) (EngineKind, error) {
	switch s {
	case "", "fast":
		return EngineFast, nil
	case "classic":
		return EngineClassic, nil
	}
	return EngineFast, fmt.Errorf("sim: unknown engine %q (want fast or classic)", s)
}

// DefaultConfig models a four-core, 2.5 GHz Morello-like machine with a
// 20 µs skew window and a 1 ms preemption slice.
func DefaultConfig() Config {
	return Config{Cores: 4, SkewQuantum: 50_000, OSQuantum: 2_500_000, HzGHz: 2.5}
}

// State is a thread's scheduling state.
type State int

// Thread states.
const (
	// Ready threads are on a core's run queue.
	Ready State = iota
	// Running is the single currently-executing thread.
	Running
	// Blocked threads wait on an Event.
	Blocked
	// Sleeping threads wait for a virtual deadline.
	Sleeping
	// Finished threads have returned.
	Finished
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Sleeping:
		return "sleeping"
	case Finished:
		return "finished"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

type core struct {
	id    int
	clock uint64
	busy  uint64
	runq  []*Thread
}

// Thread is a simulated thread of execution.
type Thread struct {
	id       int
	name     string
	eng      *Engine
	affinity []int
	core     *core
	state    State

	resume chan struct{}
	fn     func(*Thread)

	readyAt    uint64 // wake time carried from waker
	wakeAt     uint64 // sleep deadline
	lastClock  uint64 // thread's own clock at its last yield (monotone)
	sliceEnd   uint64 // end of current engine skew slice (core clock)
	osSliceEnd uint64 // end of current OS preemption slice (core clock)
	cpu        uint64 // busy cycles consumed

	pollPending bool
	poll        func(*Thread)

	blockedOn *Event
	started   bool
}

// ClockObserver receives every core-clock advance as it happens. Busy is
// invoked from Tick with the cycles charged by the running thread; Idle is
// invoked when a core's clock jumps forward to a waking thread's ready time
// (the core had nothing to run in the gap). For any core, the busy and idle
// cycles delivered to an observer sum exactly to that core's clock — the
// invariant the telemetry profiler's conservation check rests on.
//
// Under the classic engine every Tick delivers its own Busy call. The
// fast engine coalesces consecutive charges by the same thread into one
// Busy call, flushed at every scheduling point, before every Idle, and
// whenever Engine.FlushClock is called (telemetry flushes around
// attribution changes): totals, per-(core,thread) attribution and the
// conservation invariant are unaffected; only the call granularity — and
// therefore the instant at which a time-series sample boundary is
// noticed within a slice — differs.
//
// Callbacks run synchronously on the simulated thread's goroutine while it
// holds the engine (exactly one runs at a time), so observers need no
// locking and see a deterministic call order. They must not call back into
// the engine (no Tick, no blocking).
type ClockObserver interface {
	Busy(core, thread int, cycles uint64)
	Idle(core int, cycles uint64)
}

// Engine is the simulation kernel. Create with New, add threads with Spawn,
// then call Run from the host.
type Engine struct {
	cfg     Config
	cores   []core
	threads []*Thread
	schedCh chan *Thread
	current *Thread
	running bool
	obs     ClockObserver

	// fast-engine state (see fast.go). sleepers is the min-heap of
	// Sleeping threads ordered by (wakeAt, id); pend* batch consecutive
	// same-thread Busy deliveries between scheduling points.
	fast       bool
	sleepers   []*Thread
	pendCore   int
	pendThread int
	pendBusy   uint64
}

// SetClockObserver installs the observer delivered every clock advance.
// Install before Run; a nil observer disables delivery.
func (e *Engine) SetClockObserver(o ClockObserver) { e.obs = o }

// New creates an engine.
func New(cfg Config) *Engine {
	if cfg.Cores <= 0 {
		panic("sim: need at least one core")
	}
	if cfg.SkewQuantum == 0 || cfg.OSQuantum == 0 {
		panic("sim: quanta must be positive")
	}
	if cfg.Engine != EngineFast && cfg.Engine != EngineClassic {
		panic(fmt.Sprintf("sim: unknown engine kind %d", cfg.Engine))
	}
	e := &Engine{cfg: cfg, schedCh: make(chan *Thread), fast: cfg.Engine == EngineFast}
	e.cores = make([]core, cfg.Cores)
	for i := range e.cores {
		e.cores[i].id = i
	}
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Spawn creates a thread restricted to the given cores (nil means any core)
// that will execute fn. Threads may be spawned before Run or by a running
// thread.
func (e *Engine) Spawn(name string, affinity []int, fn func(*Thread)) *Thread {
	if len(affinity) == 0 {
		affinity = make([]int, len(e.cores))
		for i := range affinity {
			affinity[i] = i
		}
	}
	for _, c := range affinity {
		if c < 0 || c >= len(e.cores) {
			panic(fmt.Sprintf("sim: affinity core %d out of range", c))
		}
	}
	th := &Thread{
		id:       len(e.threads),
		name:     name,
		eng:      e,
		affinity: append([]int(nil), affinity...),
		state:    Ready,
		resume:   make(chan struct{}),
		fn:       fn,
	}
	if e.current != nil {
		th.readyAt = e.current.core.clock
	}
	e.threads = append(e.threads, th)
	e.enqueue(th)
	return th
}

// enqueue places a Ready thread at the tail of the min-clock core in its
// affinity set. This is the single insertion path for threads entering a
// run queue from outside (spawn, wake, OS-preemption rotate); a thread
// that keeps its core across an engine slice re-enters at the head via
// core.pushFront instead. Both engines share these two paths.
func (e *Engine) enqueue(th *Thread) {
	best := &e.cores[th.affinity[0]]
	for _, ci := range th.affinity[1:] {
		if e.cores[ci].clock < best.clock {
			best = &e.cores[ci]
		}
	}
	th.core = best
	best.runq = append(best.runq, th)
}

// pushFront reinserts th at the head of c's queue: its engine slice
// expired but its OS slice continues, so it keeps the core and runs again
// once it is the globally-minimal entity. The in-place shift reuses the
// queue's backing array instead of allocating per slice expiry.
func (c *core) pushFront(th *Thread) {
	c.runq = append(c.runq, nil)
	copy(c.runq[1:], c.runq[:len(c.runq)-1])
	c.runq[0] = th
	th.core = c
}

// nextEntity returns the runnable or sleeping thread with the smallest
// effective virtual time, or nil if none exists.
//
// Only each core's queue HEAD is considered: run queues are strictly FIFO,
// modeling an OS run queue with no priority reordering. A woken thread
// whose readyAt lies in the core's future therefore delays threads queued
// behind it even if they are ready sooner — its wake was already committed
// to this core, and the core honors arrival order. This head-of-line
// behavior is intended semantics (pinned by TestRunQueueFIFOHeadOfLine):
// reordering by readyAt would both change the model and perturb every
// committed baseline document. Ties on effective time go to the smaller
// thread id, so selection is deterministic regardless of scan order. The
// fast engine's pickNext (fast.go) must make the identical choice.
func (e *Engine) nextEntity() *Thread {
	var best *Thread
	var bestT uint64
	consider := func(th *Thread, t uint64) {
		if best == nil || t < bestT || (t == bestT && th.id < best.id) {
			best, bestT = th, t
		}
	}
	for i := range e.cores {
		c := &e.cores[i]
		if len(c.runq) > 0 {
			t := c.clock
			if r := c.runq[0].readyAt; r > t {
				t = r
			}
			consider(c.runq[0], t)
		}
	}
	for _, th := range e.threads {
		if th.state == Sleeping {
			consider(th, th.wakeAt)
		}
	}
	return best
}

// Run executes the simulation until every thread finishes. It returns an
// error describing a deadlock if blocked threads remain with nothing
// runnable.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Run reentered")
	}
	e.running = true
	defer func() { e.running = false }()
	if e.fast {
		return e.runFast()
	}
	for {
		th := e.nextEntity()
		if th == nil {
			if e.allFinished() {
				return nil
			}
			return e.deadlockError()
		}
		if th.state == Sleeping {
			th.state = Ready
			th.readyAt = th.wakeAt
			e.enqueue(th)
			continue
		}
		e.dispatch(th)
	}
}

func (e *Engine) allFinished() bool {
	for _, th := range e.threads {
		if th.state != Finished {
			return false
		}
	}
	return true
}

func (e *Engine) deadlockError() error {
	var stuck []string
	for _, th := range e.threads {
		if th.state != Finished {
			stuck = append(stuck, fmt.Sprintf("%s(%s)", th.name, th.state))
		}
	}
	sort.Strings(stuck)
	return fmt.Errorf("sim: deadlock: no runnable threads; waiting: %s", strings.Join(stuck, ", "))
}

// place pops th from the head of its core's queue and makes it the running
// thread: the core's clock jumps over any idle gap to the thread's ready
// time, and its engine/OS slices are refreshed. Both engines perform this
// exact mutation sequence for every dispatch decision.
func (e *Engine) place(th *Thread) {
	c := th.core
	if len(c.runq) == 0 || c.runq[0] != th {
		panic("sim: dispatch of thread not at queue head")
	}
	c.runq = c.runq[1:]
	if th.readyAt > c.clock {
		gap := th.readyAt - c.clock
		c.clock = th.readyAt // the core was idle until the thread woke
		if e.obs != nil {
			e.flushObs() // batched busy cycles precede the gap
			e.obs.Idle(c.id, gap)
		}
	}
	th.state = Running
	th.sliceEnd = c.clock + e.cfg.SkewQuantum
	if th.osSliceEnd <= c.clock {
		th.osSliceEnd = c.clock + e.cfg.OSQuantum
	}
	e.current = th
}

// start launches th's goroutine, parked until its first resume. On return
// (or abnormal exit: a panic unwinding through the frame, or
// runtime.Goexit from testing's FailNow) the thread is marked finished and
// control handed to the scheduler so the engine does not hang; a panic
// still propagates after the handoff.
func (e *Engine) start(th *Thread) {
	th.started = true
	go func() {
		<-th.resume
		normal := false
		defer func() {
			if !normal {
				th.state = Finished
				e.finish(th)
			}
		}()
		th.fn(th)
		normal = true
		th.state = Finished
		e.finish(th)
	}()
}

// finish hands control onward after th's function returned: the classic
// engine wakes the Run loop; the fast engine schedules the next entity
// directly from the dying goroutine.
func (e *Engine) finish(th *Thread) {
	if e.fast {
		e.finishFast(th)
		return
	}
	e.schedCh <- th
}

// dispatch runs th until it yields (slice expiry, block, sleep or finish).
func (e *Engine) dispatch(th *Thread) {
	e.place(th)
	if !th.started {
		e.start(th)
	}
	th.resume <- struct{}{}
	<-e.schedCh
	e.current = nil
}

// yield transfers control back to the scheduler and waits to be resumed.
func (th *Thread) yield() {
	if th.eng.fast {
		th.yieldFast()
		return
	}
	if c := th.core.clock; c > th.lastClock {
		th.lastClock = c
	}
	th.eng.schedCh <- th
	<-th.resume
}

// Tick charges cycles of work to the calling thread's core. It is the only
// way virtual time advances. If the thread exhausts its engine slice it may
// be rotated out; if it exhausts its OS slice and other threads are waiting
// for the core, it is preempted to the back of the run queue.
func (th *Thread) Tick(cycles uint64) {
	th.charge(cycles)
	if th.pollPending && th.poll != nil {
		th.pollPending = false
		th.poll(th)
	}
	if th.core.clock >= th.sliceEnd {
		th.reschedule()
	}
}

// charge is the one accounting path: cycles of work advance the core
// clock, the core's busy counter, the thread's CPU counter, and reach the
// observer (batched under the fast engine, immediate under classic).
func (th *Thread) charge(cycles uint64) {
	c := th.core
	c.clock += cycles
	c.busy += cycles
	th.cpu += cycles
	if cycles > 0 {
		if o := th.eng.obs; o != nil {
			if th.eng.fast {
				th.eng.accumBusy(c.id, th.id, cycles)
			} else {
				o.Busy(c.id, th.id, cycles)
			}
		}
	}
}

// reschedule ends the current engine slice: the thread goes back to Ready
// (front of queue if its OS slice continues, back otherwise) and control
// returns to the scheduler to run whoever is globally behind.
func (th *Thread) reschedule() {
	c := th.core
	th.state = Ready
	th.readyAt = c.clock
	if c.clock >= th.osSliceEnd && len(c.runq) > 0 {
		// OS preemption: charge the context-switch cost on the core the
		// thread is leaving, then rotate to the back of a run queue,
		// allowing migration. Config.CtxSwitchCycles defaults to 0, which
		// charges nothing (the pre-knob behavior).
		if ctx := th.eng.cfg.CtxSwitchCycles; ctx != 0 {
			th.charge(ctx)
			th.readyAt = c.clock
		}
		th.osSliceEnd = 0
		th.eng.enqueue(th)
	} else {
		// Engine slice only: keep the core and the OS slice.
		c.pushFront(th)
	}
	th.yield()
	th.state = Running
	c = th.core
	th.sliceEnd = c.clock + th.eng.cfg.SkewQuantum
	if th.osSliceEnd <= c.clock {
		th.osSliceEnd = c.clock + th.eng.cfg.OSQuantum
	}
}

// Yield voluntarily ends the thread's OS slice.
func (th *Thread) Yield() {
	th.osSliceEnd = 0
	th.sliceEnd = 0
	th.Tick(0)
}

// Sleep blocks the thread for the given number of cycles of virtual time.
func (th *Thread) Sleep(cycles uint64) {
	th.state = Sleeping
	th.wakeAt = th.core.clock + cycles
	th.yield()
	th.state = Running
	th.sliceEnd = th.core.clock + th.eng.cfg.SkewQuantum
	th.osSliceEnd = th.core.clock + th.eng.cfg.OSQuantum
}

// Now returns the thread's current virtual time (its core's clock).
func (th *Thread) Now() uint64 { return th.core.clock }

// CPU returns the busy cycles this thread has consumed.
func (th *Thread) CPU() uint64 { return th.cpu }

// Name returns the thread's name.
func (th *Thread) Name() string { return th.name }

// ID returns the thread's engine-wide identifier.
func (th *Thread) ID() int { return th.id }

// CoreID returns the core the thread is currently placed on.
func (th *Thread) CoreID() int { return th.core.id }

// State returns the thread's scheduling state.
func (th *Thread) State() State { return th.state }

// SetPoll installs the safepoint poll function; it runs in thread context
// at the next Tick after Interrupt is called, and may block.
func (th *Thread) SetPoll(fn func(*Thread)) { th.poll = fn }

// Interrupt requests that the thread run its poll function at its next
// safepoint. Call from any simulated thread (e.g. to begin a stop-the-world
// rendezvous).
func (th *Thread) Interrupt() { th.pollPending = true }

// Engine returns the owning engine.
func (th *Thread) Engine() *Engine { return th.eng }

// WallClock returns the maximum core clock — elapsed wall time.
func (e *Engine) WallClock() uint64 {
	var m uint64
	for i := range e.cores {
		if e.cores[i].clock > m {
			m = e.cores[i].clock
		}
	}
	return m
}

// CoreClock returns core i's clock.
func (e *Engine) CoreClock(i int) uint64 { return e.cores[i].clock }

// CoreBusy returns core i's cumulative busy cycles (CPU time).
func (e *Engine) CoreBusy(i int) uint64 { return e.cores[i].busy }

// TotalCPU returns busy cycles summed over all cores.
func (e *Engine) TotalCPU() uint64 {
	var t uint64
	for i := range e.cores {
		t += e.cores[i].busy
	}
	return t
}

// Seconds converts cycles to seconds at the configured clock rate.
func (e *Engine) Seconds(cycles uint64) float64 {
	return float64(cycles) / (e.cfg.HzGHz * 1e9)
}

// Threads returns all threads ever spawned.
func (e *Engine) Threads() []*Thread { return e.threads }

// Event is a broadcast condition in virtual time. The zero value is not
// usable; create with NewEvent.
type Event struct {
	eng     *Engine
	waiters []*Thread
}

// NewEvent creates an Event on the engine.
func (e *Engine) NewEvent() *Event { return &Event{eng: e} }

// Wait blocks th until another thread calls Broadcast. Because exactly one
// simulated thread runs at a time there are no lost-wakeup races: check
// your predicate in a loop around Wait.
func (ev *Event) Wait(th *Thread) {
	th.state = Blocked
	th.blockedOn = ev
	ev.waiters = append(ev.waiters, th)
	th.yield()
	th.state = Running
	th.sliceEnd = th.core.clock + th.eng.cfg.SkewQuantum
	th.osSliceEnd = th.core.clock + th.eng.cfg.OSQuantum
}

// Broadcast wakes all waiters at the waker's current virtual time. A
// waiter whose own clock already passed that time resumes at its own clock
// instead: causality never runs backwards, even when a lagging core's
// thread performs the wake.
func (ev *Event) Broadcast(waker *Thread) {
	now := waker.core.clock
	ws := ev.waiters
	ev.waiters = nil
	for _, th := range ws {
		th.blockedOn = nil
		th.state = Ready
		th.readyAt = now
		if th.lastClock > now {
			th.readyAt = th.lastClock
		}
		ev.eng.enqueue(th)
	}
}

// WaitUntil blocks th until cond() is true, re-testing after each Broadcast
// of ev.
func (ev *Event) WaitUntil(th *Thread, cond func() bool) {
	for !cond() {
		ev.Wait(th)
	}
}
