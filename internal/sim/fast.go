// The fast engine (EngineFast): the same scheduling decisions as the
// classic engine, executed inline on the running thread's goroutine.
//
// The classic engine pays two channel round-trips per scheduling point
// (yielder → Run loop → next thread) and rescans every thread for
// sleepers on each dispatch. Here the yielding thread runs the scheduler
// itself: when it remains the globally-minimal entity it simply
// continues — zero handoffs for a solo thread's slice expiries and
// sleeps — and when another thread must run it resumes that thread
// directly, halving the remaining round-trips. Sleepers live in a
// min-heap keyed (wakeAt, id) instead of being found by scanning
// e.threads, and ClockObserver Busy deliveries for consecutive work by
// the same thread are coalesced into one call, flushed at every
// scheduling point (and by Engine.FlushClock) so the per-core
// busy + idle == clock conservation invariant holds exactly.
//
// Every dispatch decision and engine-state mutation is identical to the
// classic engine's, so simulated results are bit-identical; the
// equivalence suites in this package, internal/revoke and internal/expt
// pin that. The Run loop still exists in fast mode, but only to
// bootstrap the first dispatch and to adjudicate termination/deadlock
// when a scheduling point finds nothing runnable.
package sim

// runFast is the fast-mode Run loop. After each dispatch it parks on
// schedCh; control only returns here when a scheduling point found no
// runnable entity (termination or deadlock) — thread-to-thread handoffs
// bypass the loop entirely.
func (e *Engine) runFast() error {
	for {
		th := e.pickNext()
		if th == nil {
			e.flushObs()
			if e.allFinished() {
				return nil
			}
			return e.deadlockError()
		}
		e.place(th)
		if !th.started {
			e.start(th)
		}
		th.resume <- struct{}{}
		<-e.schedCh
		e.current = nil
	}
}

// pickNext makes the classic engine's dispatch decision with fast-engine
// data structures: each core's queue head is considered (FIFO per core,
// including the intended head-of-line semantics nextEntity documents)
// against the earliest sleeper from the heap. Like the classic Run loop,
// a winning sleeper is woken onto the min-clock core of its affinity set
// and the choice re-made, since its arrival can change which head is
// globally minimal. Only the heap minimum can ever win: any other
// sleeper compares lexicographically greater on (wakeAt, id), the exact
// order nextEntity's full scan ranks sleepers by.
func (e *Engine) pickNext() *Thread {
	for {
		var best *Thread
		var bestT uint64
		for i := range e.cores {
			c := &e.cores[i]
			if len(c.runq) > 0 {
				h := c.runq[0]
				t := c.clock
				if h.readyAt > t {
					t = h.readyAt
				}
				if best == nil || t < bestT || (t == bestT && h.id < best.id) {
					best, bestT = h, t
				}
			}
		}
		if len(e.sleepers) > 0 {
			if s := e.sleepers[0]; best == nil || s.wakeAt < bestT || (s.wakeAt == bestT && s.id < best.id) {
				best = s
			}
		}
		if best == nil {
			return nil
		}
		if best.state != Sleeping {
			return best
		}
		e.popSleeper()
		best.state = Ready
		best.readyAt = best.wakeAt
		e.enqueue(best)
	}
}

// yieldFast is the fast engine's scheduling point. The caller has already
// recorded the thread's new state (requeued Ready, Sleeping, or Blocked);
// here the thread runs the scheduler inline: continue in place if it is
// still the globally-minimal entity, hand off directly to the winner
// otherwise, or wake the Run loop when nothing is runnable.
func (th *Thread) yieldFast() {
	e := th.eng
	e.flushObs() // pending busy belongs to th; deliver before scheduling
	if c := th.core.clock; c > th.lastClock {
		th.lastClock = c
	}
	if th.state == Sleeping {
		e.pushSleeper(th)
	}
	next := e.pickNext()
	if next == th {
		// Run-to-block: th remains the unique minimal entity, so it keeps
		// executing with no goroutine handoff at all.
		e.place(th)
		return
	}
	if next == nil {
		// Deadlock: adjudicated by the Run loop, exactly as when a classic
		// yield returns control there. This goroutine parks forever, like
		// any blocked thread at deadlock.
		e.schedCh <- th
		<-th.resume
		return
	}
	e.place(next)
	if !next.started {
		e.start(next)
	}
	next.resume <- struct{}{} // direct handoff: one round-trip, not two
	<-th.resume
}

// finishFast is the fast engine's end-of-thread scheduling point: the
// dying goroutine dispatches the next entity directly, or wakes the Run
// loop to decide termination versus deadlock.
func (e *Engine) finishFast(th *Thread) {
	e.flushObs()
	next := e.pickNext()
	if next == nil {
		e.schedCh <- th
		return
	}
	e.place(next)
	if !next.started {
		e.start(next)
	}
	next.resume <- struct{}{}
}

// pushSleeper adds th to the sleeper min-heap, ordered by (wakeAt, id).
func (e *Engine) pushSleeper(th *Thread) {
	h := append(e.sleepers, th)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !sleepsBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	e.sleepers = h
}

// popSleeper removes the heap minimum. Sleeping threads only ever leave
// the heap by being chosen as the globally-minimal entity, so no
// arbitrary removal is needed: Broadcast wakes Blocked threads, never
// Sleeping ones.
func (e *Engine) popSleeper() {
	h := e.sleepers
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && sleepsBefore(h[l], h[m]) {
			m = l
		}
		if r < n && sleepsBefore(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	e.sleepers = h
}

func sleepsBefore(a, b *Thread) bool {
	return a.wakeAt < b.wakeAt || (a.wakeAt == b.wakeAt && a.id < b.id)
}

// accumBusy coalesces an observer Busy delivery with the pending batch,
// flushing first if the batch belongs to a different (core, thread).
func (e *Engine) accumBusy(core, thread int, cycles uint64) {
	if e.pendBusy != 0 && (e.pendCore != core || e.pendThread != thread) {
		e.obs.Busy(e.pendCore, e.pendThread, e.pendBusy)
		e.pendBusy = 0
	}
	e.pendCore, e.pendThread = core, thread
	e.pendBusy += cycles
}

// flushObs delivers the pending batched Busy cycles, if any. A no-op
// under the classic engine, which delivers every charge immediately.
func (e *Engine) flushObs() {
	if e.pendBusy != 0 {
		e.obs.Busy(e.pendCore, e.pendThread, e.pendBusy)
		e.pendBusy = 0
	}
}

// FlushClock delivers any batched observer cycles immediately. The fast
// engine coalesces consecutive same-thread Busy deliveries between
// scheduling points; a caller about to change how cycles are attributed
// (telemetry's Enter/Exit/SetBase) flushes first so the cycles ticked
// before the change land under the old attribution. Nil-receiver safe,
// and a no-op under the classic engine.
func (e *Engine) FlushClock() {
	if e == nil {
		return
	}
	e.flushObs()
}
