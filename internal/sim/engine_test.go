package sim

import (
	"strings"
	"testing"
)

func cfg() Config {
	c := DefaultConfig()
	c.Cores = 2
	return c
}

func TestSingleThreadAdvancesClock(t *testing.T) {
	e := New(cfg())
	e.Spawn("w", []int{0}, func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.Tick(100)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.CoreClock(0); got != 100_000 {
		t.Fatalf("core 0 clock = %d, want 100000", got)
	}
	if got := e.CoreClock(1); got != 0 {
		t.Fatalf("core 1 clock = %d, want 0", got)
	}
	if e.WallClock() != 100_000 || e.TotalCPU() != 100_000 {
		t.Fatalf("wall %d cpu %d", e.WallClock(), e.TotalCPU())
	}
}

func TestTwoCoresRunInParallelVirtualTime(t *testing.T) {
	e := New(cfg())
	work := func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Tick(10_000)
		}
	}
	e.Spawn("a", []int{0}, work)
	e.Spawn("b", []int{1}, work)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Each core did 1M cycles of work; wall clock is 1M (parallel), CPU 2M.
	if e.WallClock() != 1_000_000 {
		t.Fatalf("wall = %d, want 1000000", e.WallClock())
	}
	if e.TotalCPU() != 2_000_000 {
		t.Fatalf("cpu = %d, want 2000000", e.TotalCPU())
	}
}

func TestSkewBounded(t *testing.T) {
	c := cfg()
	c.SkewQuantum = 10_000
	e := New(c)
	var maxSkew uint64
	probe := func(other int) func(*Thread) {
		return func(th *Thread) {
			for i := 0; i < 1000; i++ {
				th.Tick(500)
				mine := th.Now()
				theirs := e.CoreClock(other)
				if mine > theirs && mine-theirs > maxSkew {
					maxSkew = mine - theirs
				}
			}
		}
	}
	e.Spawn("a", []int{0}, probe(1))
	e.Spawn("b", []int{1}, probe(0))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Skew can exceed the quantum by at most one tick's worth of cycles.
	if maxSkew > c.SkewQuantum+500 {
		t.Fatalf("max skew %d exceeds quantum %d", maxSkew, c.SkewQuantum)
	}
}

func TestCoreSharingRoundRobin(t *testing.T) {
	c := cfg()
	c.OSQuantum = 50_000
	e := New(c)
	var aCPU, bCPU uint64
	mk := func(cpu *uint64) func(*Thread) {
		return func(th *Thread) {
			for i := 0; i < 2000; i++ {
				th.Tick(500)
			}
			*cpu = th.CPU()
		}
	}
	e.Spawn("a", []int{0}, mk(&aCPU))
	e.Spawn("b", []int{0}, mk(&bCPU))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if aCPU != 1_000_000 || bCPU != 1_000_000 {
		t.Fatalf("cpu a=%d b=%d", aCPU, bCPU)
	}
	// Shared core: wall clock is the sum, 2M.
	if e.WallClock() != 2_000_000 {
		t.Fatalf("wall = %d, want 2000000", e.WallClock())
	}
}

func TestSleepWakesAtDeadline(t *testing.T) {
	e := New(cfg())
	var woke uint64
	e.Spawn("s", []int{0}, func(th *Thread) {
		th.Tick(100)
		th.Sleep(10_000)
		woke = th.Now()
		th.Tick(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 10_100 {
		t.Fatalf("woke at %d, want 10100", woke)
	}
}

func TestSleepDoesNotBurnCPU(t *testing.T) {
	e := New(cfg())
	e.Spawn("s", []int{0}, func(th *Thread) {
		th.Sleep(1_000_000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.TotalCPU() != 0 {
		t.Fatalf("cpu = %d, want 0", e.TotalCPU())
	}
	if e.WallClock() != 1_000_000 {
		t.Fatalf("wall = %d", e.WallClock())
	}
}

func TestEventWaitBroadcast(t *testing.T) {
	e := New(cfg())
	ev := e.NewEvent()
	ready := false
	var waiterWoke, bcastAt uint64
	e.Spawn("waiter", []int{0}, func(th *Thread) {
		ev.WaitUntil(th, func() bool { return ready })
		waiterWoke = th.Now()
		th.Tick(1)
	})
	e.Spawn("waker", []int{1}, func(th *Thread) {
		th.Tick(777_000)
		ready = true
		bcastAt = th.Now()
		ev.Broadcast(th)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The waiter's core was idle; it must resume at the waker's time.
	if waiterWoke != bcastAt {
		t.Fatalf("waiter woke at %d, broadcast at %d", waiterWoke, bcastAt)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New(cfg())
	ev := e.NewEvent()
	e.Spawn("stuck", []int{0}, func(th *Thread) {
		ev.Wait(th)
	})
	err := e.Run()
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock error %q does not name the thread", err)
	}
}

func TestInterruptPollRunsAtSafepoint(t *testing.T) {
	e := New(cfg())
	polled := uint64(0)
	var target *Thread
	target = e.Spawn("t", []int{0}, func(th *Thread) {
		th.SetPoll(func(p *Thread) { polled = p.Now() })
		for i := 0; i < 100; i++ {
			th.Tick(1000)
		}
	})
	e.Spawn("irq", []int{1}, func(th *Thread) {
		th.Tick(5_500)
		target.Interrupt()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if polled == 0 {
		t.Fatal("poll never ran")
	}
	// Poll must run within one skew quantum + one tick of the interrupt.
	if polled > 5_500+cfg().SkewQuantum+1_000 {
		t.Fatalf("poll ran at %d, too late after interrupt at 5500", polled)
	}
}

func TestSpawnFromRunningThread(t *testing.T) {
	e := New(cfg())
	var childStart uint64
	e.Spawn("parent", []int{0}, func(th *Thread) {
		th.Tick(42_000)
		e.Spawn("child", []int{1}, func(ch *Thread) {
			childStart = ch.Now()
			ch.Tick(1)
		})
		th.Tick(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childStart < 42_000 {
		t.Fatalf("child started at %d, before parent spawned it at 42000", childStart)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		e := New(cfg())
		ev := e.NewEvent()
		n := 0
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn("w", []int{i % 2}, func(th *Thread) {
				for j := 0; j < 100; j++ {
					th.Tick(uint64(100 + i*13 + j))
					if j == 50 {
						ev.Broadcast(th)
					}
				}
				n++
				if n == 4 {
					ev.Broadcast(th)
				}
			})
		}
		e.Spawn("observer", nil, func(th *Thread) {
			ev.WaitUntil(th, func() bool { return n == 4 })
			th.Tick(5)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.WallClock(), e.TotalCPU()
	}
	w1, c1 := run()
	for i := 0; i < 3; i++ {
		w2, c2 := run()
		if w1 != w2 || c1 != c2 {
			t.Fatalf("nondeterministic: run0=(%d,%d) run%d=(%d,%d)", w1, c1, i+1, w2, c2)
		}
	}
}

func TestYieldRotates(t *testing.T) {
	e := New(cfg())
	var order []string
	e.Spawn("a", []int{0}, func(th *Thread) {
		th.Tick(10)
		order = append(order, "a1")
		th.Yield()
		order = append(order, "a2")
		th.Tick(10)
	})
	e.Spawn("b", []int{0}, func(th *Thread) {
		th.Tick(10)
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a1,b1,a2"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

func TestSecondsConversion(t *testing.T) {
	e := New(Config{Cores: 1, SkewQuantum: 1000, OSQuantum: 1000, HzGHz: 2.5})
	if s := e.Seconds(2_500_000_000); s != 1.0 {
		t.Fatalf("2.5e9 cycles = %v s, want 1", s)
	}
}

// benchEngines runs a benchmark body under both engines, so their host
// cost is directly comparable in one -bench run.
func benchEngines(b *testing.B, body func(b *testing.B, kind EngineKind)) {
	for _, kind := range []EngineKind{EngineFast, EngineClassic} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) { body(b, kind) })
	}
}

func BenchmarkTickHot(b *testing.B) {
	benchEngines(b, func(b *testing.B, kind EngineKind) {
		e := New(Config{Cores: 1, SkewQuantum: 1 << 40, OSQuantum: 1 << 40, HzGHz: 2.5, Engine: kind})
		e.Spawn("w", []int{0}, func(th *Thread) {
			for i := 0; i < b.N; i++ {
				th.Tick(1)
			}
		})
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkHandoff(b *testing.B) {
	benchEngines(b, func(b *testing.B, kind EngineKind) {
		c := DefaultConfig()
		c.Cores = 2
		c.SkewQuantum = 1
		c.Engine = kind
		e := New(c)
		for i := 0; i < 2; i++ {
			i := i
			e.Spawn("w", []int{i}, func(th *Thread) {
				for j := 0; j < b.N/2; j++ {
					th.Tick(1)
				}
			})
		}
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkSliceExpiry is the solo-thread slice-expiry regime: every tick
// ends an engine slice, but the thread is always still the minimal entity.
// The fast engine continues inline with no goroutine handoff; the classic
// engine pays two channel round-trips per slice.
func BenchmarkSliceExpiry(b *testing.B) {
	benchEngines(b, func(b *testing.B, kind EngineKind) {
		c := DefaultConfig()
		c.Cores = 1
		c.SkewQuantum = 1
		c.Engine = kind
		e := New(c)
		e.Spawn("w", []int{0}, func(th *Thread) {
			for i := 0; i < b.N; i++ {
				th.Tick(1)
			}
		})
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkSleepFleet is the open-loop fleet regime: many threads, each
// mostly asleep, waking briefly in an interleaved order. Dominated by
// sleeper selection (classic: an all-threads scan per dispatch; fast: a
// heap) and wake handoffs (classic: two round-trips; fast: one, direct).
func BenchmarkSleepFleet(b *testing.B) {
	benchEngines(b, func(b *testing.B, kind EngineKind) {
		c := DefaultConfig()
		c.Cores = 2
		c.Engine = kind
		e := New(c)
		const fleet = 64
		per := b.N/fleet + 1
		for i := 0; i < fleet; i++ {
			i := i
			e.Spawn("conn", []int{i % 2}, func(th *Thread) {
				for j := 0; j < per; j++ {
					th.Tick(50)
					th.Sleep(uint64(10_000 + i*37))
				}
			})
		}
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	})
}
