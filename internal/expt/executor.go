package expt

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Executor is the seam between campaign drivers (cmd/sweep, cmd/chaos)
// and job execution. A Pool executes locally on bounded host goroutines;
// internal/dist's Coordinator fans the same grid out to network workers.
// Both produce identical Results for identical grids, so documents built
// over an Executor are independent of where the jobs actually ran.
type Executor interface {
	Getter
	// Results returns every successfully-completed job so far, sorted by
	// key for deterministic reports.
	Results() []Completed
	// Stats snapshots the executor's lifetime counters.
	Stats() PoolStats
}

var (
	_ Executor = (*Pool)(nil)
	_ Executor = (*Planner)(nil)
)

// Planner is the -dry-run Executor: it records every job the figure
// builders request without executing any. Get hands back a synthetic
// zero-valued result so the builders run their whole grids to the end
// (their folds are float-arithmetic only and tolerate zeros); the tables
// they produce are garbage and must not be shown — the point is the
// job set, read back with Jobs.
type Planner struct {
	mu      sync.Mutex
	jobs    map[string]Job
	submits int
}

// NewPlanner returns an empty planner.
func NewPlanner() *Planner {
	return &Planner{jobs: map[string]Job{}}
}

func (p *Planner) add(j Job) {
	key := j.Key()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.submits++
	if _, ok := p.jobs[key]; !ok {
		p.jobs[key] = j
	}
}

// Prefetch records the batch without scheduling anything.
func (p *Planner) Prefetch(jobs []Job) {
	for _, j := range jobs {
		p.add(j)
	}
}

// Get records j and returns a synthetic empty result immediately. The
// result carries a zero-filled per-core DRAM vector so folds that index
// it by core number (fig6) stay in bounds.
func (p *Planner) Get(j Job) (*JobResult, error) {
	p.add(j)
	return &JobResult{
		Workload:   j.Workload.String(),
		Condition:  j.Cond.Name,
		Seed:       j.Cfg.Seed,
		DRAMByCore: make([]uint64, 64),
		HzGHz:      1,
	}, nil
}

// Results is always empty: a planner completes nothing.
func (p *Planner) Results() []Completed { return nil }

// Stats reports the planned grid: Submitted distinct jobs, Deduped
// repeat submissions.
func (p *Planner) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Submitted: len(p.jobs), Deduped: p.submits - len(p.jobs)}
}

// PlannedJob is one grid cell as resolved by a dry run.
type PlannedJob struct {
	Key      string
	Workload WorkloadRef
	Cond     string
	Seed     int64
}

// Jobs returns the recorded grid sorted by key — the exact cells a real
// run would execute (or serve from a manifest), deduplicated the way the
// pool would.
func (p *Planner) Jobs() []PlannedJob {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PlannedJob, 0, len(p.jobs))
	for key, j := range p.jobs {
		out = append(out, PlannedJob{Key: key, Workload: j.Workload, Cond: j.Cond.Name, Seed: j.Cfg.Seed})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// WriteGrid prints the planned grid, one job per line (key, workload,
// condition, seed), followed by a summary. The listing is sorted by key,
// so it is byte-identical however the figures interleaved their
// submissions.
func (p *Planner) WriteGrid(w io.Writer) error {
	jobs := p.Jobs()
	for _, j := range jobs {
		if _, err := fmt.Fprintf(w, "%s  %-14s %-22s seed=%d\n", j.Key, j.Workload, j.Cond, j.Seed); err != nil {
			return err
		}
	}
	st := p.Stats()
	_, err := fmt.Fprintf(w, "dry-run: %d distinct job(s); %d duplicate submission(s) merged\n",
		st.Submitted, st.Deduped)
	return err
}
