package expt

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func TestDocumentRoundTrip(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 2})
	p.run = func(j Job) (*JobResult, time.Duration, error) { return fakeResult(j), 0, nil }
	jobs := []Job{fakeJob("astar", 1), fakeJob("astar", 1000004), fakeJob("omnetpp", 1)}
	p.Prefetch(jobs)
	for _, j := range jobs {
		if _, err := p.Get(j); err != nil {
			t.Fatal(err)
		}
	}

	tb := &harness.Table{
		Title:  "Figure X: test",
		Header: []string{"benchmark", "value"},
	}
	tb.AddRow("astar", "+1.0%")
	tb.AddNote("a note")
	doc := BuildDocument(p, []FigureResult{NewFigureResult("figX", tb)}, 2, 2, 64)

	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var got Document
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("document does not round-trip: %v", err)
	}
	if got.Schema != Schema {
		t.Fatalf("schema = %q, want %q", got.Schema, Schema)
	}
	if got.Workers != 2 || got.Reps != 2 || got.Scale != 64 {
		t.Fatalf("invocation fields = %d/%d/%d", got.Workers, got.Reps, got.Scale)
	}
	if len(got.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(got.Jobs))
	}
	for _, js := range got.Jobs {
		if js.Key == "" || js.Workload == "" || js.Condition == "" {
			t.Fatalf("incomplete job summary: %+v", js)
		}
	}
	if len(got.Figures) != 1 || got.Figures[0].ID != "figX" {
		t.Fatalf("figures = %+v", got.Figures)
	}
	if got.Figures[0].Text != tb.String() {
		t.Fatal("rendered table text lost in round-trip")
	}
	if got.Pool.Executed != 3 {
		t.Fatalf("pool stats = %+v", got.Pool)
	}
	// Aggregates: two cells (astar and omnetpp under Reloaded), six
	// metrics each, ordered by workload.
	if len(got.Aggregates) != 2*len(aggregateMetrics) {
		t.Fatalf("aggregates = %d, want %d", len(got.Aggregates), 2*len(aggregateMetrics))
	}
	if got.Aggregates[0].Workload != "astar" || got.Aggregates[0].N != 2 {
		t.Fatalf("first aggregate = %+v", got.Aggregates[0])
	}
	// Re-marshal equality: the document is stable data, so a second encode
	// of the decoded form is byte-identical.
	var buf2 bytes.Buffer
	if err := got.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("decode+re-encode changed the document")
	}
}

func TestJobResultHarnessRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	j := Job{
		Workload: PgbenchWorkload(200),
		Cond:     harness.StandardConditions()[1],
		Cfg:      harness.PgbenchConfig(),
	}
	jr, err := RunJob(j, nil, kernel.SweepKernelWord, sim.EngineFast, kernel.MemPathFast)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(jr)
	if err != nil {
		t.Fatal(err)
	}
	var back JobResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	r1, r2 := jr.Harness(), back.Harness()
	if r1.WallCycles != r2.WallCycles || r1.CPUCycles != r2.CPUCycles ||
		r1.DRAMTotal != r2.DRAMTotal || r1.PeakRSSPages != r2.PeakRSSPages {
		t.Fatal("headline quantities changed across JSON")
	}
	if len(r1.DRAMByAgent) != len(r2.DRAMByAgent) {
		t.Fatalf("DRAMByAgent: %v vs %v", r1.DRAMByAgent, r2.DRAMByAgent)
	}
	for a, v := range r1.DRAMByAgent {
		if r2.DRAMByAgent[a] != v {
			t.Fatalf("DRAMByAgent[%v] = %d, want %d", a, r2.DRAMByAgent[a], v)
		}
	}
	if r1.Lat.N() != r2.Lat.N() {
		t.Fatalf("latency samples: %d vs %d", r1.Lat.N(), r2.Lat.N())
	}
	if r1.Lat.N() > 0 && r1.Lat.Percentile(99) != r2.Lat.Percentile(99) {
		t.Fatal("p99 changed across JSON (float64 must round-trip exactly)")
	}
	if len(r1.Epochs) != len(r2.Epochs) {
		t.Fatalf("epochs: %d vs %d", len(r1.Epochs), len(r2.Epochs))
	}
}
