package expt

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	j := fakeJob("omnetpp", 7)
	want := fakeResult(j)
	want.LatCycles = []float64{1.5, 2.25, 1e9 + 0.125}
	if err := m.Record(j.Key(), want, 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m2.Len())
	}
	got, host, ok := m2.Lookup(j.Key())
	if !ok {
		t.Fatal("recorded job missing after reload")
	}
	if host != 1500*time.Millisecond {
		t.Fatalf("host = %v after reload, want 1.5s (host_ms must round-trip)", host)
	}
	if got.Workload != want.Workload || got.Seed != want.Seed || got.WallCycles != want.WallCycles {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i, v := range want.LatCycles {
		if got.LatCycles[i] != v {
			t.Fatalf("LatCycles[%d] = %v, want %v (float64 must round-trip exactly)", i, got.LatCycles[i], v)
		}
	}
}

func TestManifestSkipsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	j := fakeJob("astar", 1)
	if err := m.Record(j.Key(), fakeResult(j), time.Second); err != nil {
		t.Fatal(err)
	}
	m.Close()
	// Simulate an interrupt mid-append: a truncated second line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"deadbeef","result":{"workload":"tru`)
	f.Close()

	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 1 {
		t.Fatalf("Len = %d after torn tail, want 1", m2.Len())
	}
	if _, _, ok := m2.Lookup(j.Key()); !ok {
		t.Fatal("intact line lost")
	}
	if _, _, ok := m2.Lookup("deadbeef"); ok {
		t.Fatal("torn line surfaced as a result")
	}
}

// TestPoolResumesFromManifest is the interrupt/resume scenario: a first
// sweep completes some jobs, a second sweep (fresh pool, reloaded manifest)
// serves those from disk and only runs the new work.
func TestPoolResumesFromManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	jobs := []Job{fakeJob("astar", 1), fakeJob("omnetpp", 2), fakeJob("xalancbmk", 3)}

	var runs atomic.Int64
	countingRun := func(j Job) (*JobResult, time.Duration, error) {
		runs.Add(1)
		return fakeResult(j), 0, nil
	}

	// First sweep: completes the first two jobs, then is "interrupted".
	m1, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewPool(PoolConfig{Workers: 2, Manifest: m1})
	p1.run = countingRun
	for _, j := range jobs[:2] {
		if _, err := p1.Get(j); err != nil {
			t.Fatal(err)
		}
	}
	m1.Close()
	if got := runs.Load(); got != 2 {
		t.Fatalf("first sweep ran %d jobs, want 2", got)
	}

	// Second sweep over the full grid: the two recorded jobs come from the
	// manifest, only the third runs.
	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	p2 := NewPool(PoolConfig{Workers: 2, Manifest: m2})
	p2.run = countingRun
	p2.Prefetch(jobs)
	for _, j := range jobs {
		r, err := p2.Get(j)
		if err != nil {
			t.Fatal(err)
		}
		if r.Seed != j.Cfg.Seed {
			t.Fatalf("seed = %d, want %d", r.Seed, j.Cfg.Seed)
		}
	}
	if got := runs.Load(); got != 3 {
		t.Fatalf("total runs = %d, want 3 (resume must not recompute)", got)
	}
	st := p2.Stats()
	if st.Cached != 2 || st.Executed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if m2.Len() != 3 {
		t.Fatalf("manifest Len = %d, want 3 (new job recorded)", m2.Len())
	}
}

// TestPoolCachedJobsCarryRecordedHost pins the host-cost plumbing for
// manifest hits: a job served from the manifest must surface the original
// run's recorded wall time — in Results() and in the "cached" progress
// event feeding /jobs — instead of the ~0 it cost to look up.
func TestPoolCachedJobsCarryRecordedHost(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	j := fakeJob("astar", 1)
	const recorded = 2500 * time.Millisecond
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Record(j.Key(), fakeResult(j), recorded); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	var events []Event
	p := NewPool(PoolConfig{
		Workers:  1,
		Manifest: m2,
		Progress: func(ev Event) { events = append(events, ev) },
	})
	p.run = func(Job) (*JobResult, time.Duration, error) {
		t.Fatal("cached job executed")
		return nil, 0, nil
	}
	if _, err := p.Get(j); err != nil {
		t.Fatal(err)
	}
	rs := p.Results()
	if len(rs) != 1 || !rs[0].Cached {
		t.Fatalf("Results() = %+v, want one cached completion", rs)
	}
	if rs[0].Host != recorded {
		t.Fatalf("cached Completed.Host = %v, want %v", rs[0].Host, recorded)
	}
	if len(events) != 1 || events[0].Status != "cached" {
		t.Fatalf("events = %+v, want one cached event", events)
	}
	if events[0].Host != recorded {
		t.Fatalf("cached event Host = %v, want %v", events[0].Host, recorded)
	}
}

func TestManifestMetaAdoptAndMatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	meta := ManifestMeta{Tool: "sweep", Grid: "fig1,fig2 reps=3 seed=1"}
	m, err := OpenManifestFor(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Record("k1", &JobResult{Workload: "w", Seed: 1}, 0); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Same meta: reopens, and the cached result is served.
	m, err = OpenManifestFor(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := m.Lookup("k1"); !ok {
		t.Fatal("matching reopen lost the cached result")
	}
	if got := m.Meta(); got == nil || got.Grid != meta.Grid || got.Schema != ManifestSchema {
		t.Fatalf("Meta() = %+v", got)
	}
	m.Close()

	// Different grid: refused with a useful message.
	_, err = OpenManifestFor(path, ManifestMeta{Tool: "sweep", Grid: "fig3 reps=1 seed=9"})
	if err == nil {
		t.Fatal("grid mismatch accepted")
	}
	if !strings.Contains(err.Error(), "different run") || !strings.Contains(err.Error(), "fig3 reps=1 seed=9") {
		t.Fatalf("mismatch error unhelpful: %v", err)
	}
	// Different tool: also refused.
	if _, err := OpenManifestFor(path, ManifestMeta{Tool: "chaos", Grid: meta.Grid}); err == nil {
		t.Fatal("tool mismatch accepted")
	}
}

func TestManifestMetaRejectsLegacy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	m, err := OpenManifest(path) // headerless
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Record("k1", &JobResult{Workload: "w"}, 0); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := OpenManifestFor(path, ManifestMeta{Tool: "sweep", Grid: "g"}); err == nil {
		t.Fatal("headerless non-empty manifest accepted")
	} else if !strings.Contains(err.Error(), "predates metadata headers") {
		t.Fatalf("legacy error unhelpful: %v", err)
	}
	// Legacy manifests still load through the legacy entry point.
	m, err = OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := m.Lookup("k1"); !ok {
		t.Fatal("legacy reopen lost the result")
	}
	m.Close()
}

// TestManifestRepairsTornTailForAppend pins the crashed-writer recovery
// end to end: a manifest whose final line was torn mid-write (no
// terminating newline) must reopen cleanly AND keep appending cleanly.
// Without the open-time truncation, O_APPEND would glue the next record
// onto the torn tail, corrupting both lines and losing the new result on
// the following resume.
func TestManifestRepairsTornTailForAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	meta := ManifestMeta{Tool: "sweep", Grid: "g"}
	m, err := OpenManifestFor(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := fakeJob("astar", 1), fakeJob("omnetpp", 2)
	if err := m.Record(j1.Key(), fakeResult(j1), time.Second); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Crash mid-Record: a partial, newline-less line at EOF.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"` + j2.Key() + `","result":{"workl`)
	f.Close()

	m2, err := OpenManifestFor(path, meta)
	if err != nil {
		t.Fatalf("resume after torn tail: %v", err)
	}
	if m2.Len() != 1 {
		t.Fatalf("Len = %d after torn tail, want 1", m2.Len())
	}
	// The torn job re-runs and re-records; the append must land on a
	// clean line boundary.
	if err := m2.Record(j2.Key(), fakeResult(j2), time.Second); err != nil {
		t.Fatal(err)
	}
	m2.Close()

	m3, err := OpenManifestFor(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if m3.Len() != 2 {
		t.Fatalf("Len = %d after re-record, want 2 (append corrupted by torn tail?)", m3.Len())
	}
	for _, j := range []Job{j1, j2} {
		if _, _, ok := m3.Lookup(j.Key()); !ok {
			t.Fatalf("job %.12s lost", j.Key())
		}
	}
}

// TestManifestRepairsTornHeader covers the nastiest torn-tail variant: the
// writer crashed while writing the metadata header itself. The repair
// truncates the file back to empty and the next open adopts a fresh
// header instead of failing validation forever.
func TestManifestRepairsTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	if err := os.WriteFile(path, []byte(`{"meta":{"schema":"cornucopia-manifest/v1","tool":"sw`), 0o644); err != nil {
		t.Fatal(err)
	}
	meta := ManifestMeta{Tool: "sweep", Grid: "g"}
	m, err := OpenManifestFor(path, meta)
	if err != nil {
		t.Fatalf("open over torn header: %v", err)
	}
	m.Close()
	m2, err := OpenManifestFor(path, meta)
	if err != nil {
		t.Fatalf("reopen after header adoption: %v", err)
	}
	m2.Close()
}

// TestManifestCompact pins rewrite-on-demand compaction: superseded
// duplicate keys are dropped, the newest entry survives, the header is
// preserved, and appends keep working on the compacted file.
func TestManifestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	meta := ManifestMeta{Tool: "sweep", Grid: "g"}
	m, err := OpenManifestFor(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	j1, j2, j3 := fakeJob("astar", 1), fakeJob("omnetpp", 2), fakeJob("sjeng", 3)
	stale := fakeResult(j1)
	stale.WallCycles = 1
	if err := m.Record(j1.Key(), stale, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Record(j2.Key(), fakeResult(j2), time.Second); err != nil {
		t.Fatal(err)
	}
	// Supersede j1 (a reclaimed-lease re-run, say).
	if err := m.Record(j1.Key(), fakeResult(j1), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	dropped, err := m.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("Compact dropped %d, want 1", dropped)
	}
	// A second compaction has nothing to do.
	if dropped, err = m.Compact(); err != nil || dropped != 0 {
		t.Fatalf("second Compact = (%d, %v), want (0, nil)", dropped, err)
	}
	// The append handle must follow the rewritten file.
	if err := m.Record(j3.Key(), fakeResult(j3), time.Second); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := OpenManifestFor(path, meta)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer m2.Close()
	if m2.Len() != 3 {
		t.Fatalf("Len = %d after compact, want 3", m2.Len())
	}
	r, host, ok := m2.Lookup(j1.Key())
	if !ok || r.WallCycles == 1 || host != 2*time.Second {
		t.Fatalf("compaction kept the superseded entry: %+v host=%v ok=%v", r, host, ok)
	}
	// File now holds exactly header + 2 compacted keys + 1 post-compact append.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(b), "\n"); got != 4 {
		t.Fatalf("compacted file has %d lines, want 4 (header + 2 keys + 1 append)", got)
	}
}
