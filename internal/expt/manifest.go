package expt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Manifest is a content-hash-keyed, append-only record of completed jobs
// on disk: one JSON line per job, `{"key": "...", "result": {...}}`. A
// pool with a manifest attached serves previously-completed jobs from it
// and appends every newly-completed one, so an interrupted or re-invoked
// sweep resumes where it left off. A line truncated by an interruption
// mid-write is skipped on load (and rewritten when its job re-runs).
type Manifest struct {
	path string

	mu   sync.Mutex
	done map[string]*JobResult
	f    *os.File
}

type manifestLine struct {
	Key    string     `json:"key"`
	Result *JobResult `json:"result"`
}

// maxManifestLine bounds one manifest line; latency-sample-heavy jobs
// (gRPC QPS) can run to several MB of JSON.
const maxManifestLine = 256 << 20

// OpenManifest loads the manifest at path (creating it if absent) and
// opens it for appending.
func OpenManifest(path string) (*Manifest, error) {
	m := &Manifest{path: path, done: map[string]*JobResult{}}
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), maxManifestLine)
		for sc.Scan() {
			var line manifestLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil || line.Key == "" || line.Result == nil {
				continue // torn tail from an interrupted write
			}
			m.done[line.Key] = line.Result
		}
		closeErr := f.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("expt: reading manifest %s: %w", path, err)
		}
		if closeErr != nil {
			return nil, closeErr
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	m.f = f
	return m, nil
}

// Lookup returns the recorded result for key, if any.
func (m *Manifest) Lookup(key string) (*JobResult, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.done[key]
	return r, ok
}

// Record appends a completed job. Each line is written atomically with
// respect to other Record calls; durability against a crash mid-line is
// handled by the torn-tail skip on load.
func (m *Manifest) Record(key string, r *JobResult) error {
	b, err := json.Marshal(manifestLine{Key: key, Result: r})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.f.Write(b); err != nil {
		return fmt.Errorf("expt: appending to manifest %s: %w", m.path, err)
	}
	m.done[key] = r
	return nil
}

// Len returns the number of completed jobs on record.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.done)
}

// Close closes the underlying file.
func (m *Manifest) Close() error { return m.f.Close() }
