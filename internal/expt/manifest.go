package expt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// Manifest is a content-hash-keyed, append-only record of completed jobs
// on disk: one JSON line per job, `{"key": "...", "host_ms": ..,
// "result": {...}}`. A pool with a manifest attached serves
// previously-completed jobs from it and appends every newly-completed
// one, so an interrupted or re-invoked sweep resumes where it left off. A
// line truncated by an interruption mid-write is skipped on load (and
// rewritten when its job re-runs).
//
// host_ms records what the job cost the host when it actually ran, so
// slow grid cells stay visible — in the manifest itself, in resumed
// documents, and on the /jobs endpoint — without profiling a rerun.
type Manifest struct {
	path string

	mu   sync.Mutex
	done map[string]manifestEntry
	meta *ManifestMeta
	f    *os.File
	// lines counts data lines on disk (loaded plus appended); when it
	// exceeds len(done), superseded duplicates are wasting space and
	// Compact can reclaim them.
	lines int
}

type manifestEntry struct {
	res  *JobResult
	host time.Duration
}

type manifestLine struct {
	Key    string        `json:"key,omitempty"`
	HostMS float64       `json:"host_ms,omitempty"`
	Result *JobResult    `json:"result,omitempty"`
	Meta   *ManifestMeta `json:"meta,omitempty"`
}

// ManifestSchema versions the manifest header line.
const ManifestSchema = "cornucopia-manifest/v1"

// ManifestMeta is the manifest's first line: which tool wrote it and the
// canonical description of the grid it caches. A resumed sweep refuses a
// manifest whose meta does not match its own request, instead of silently
// mixing results from different grids.
type ManifestMeta struct {
	Schema string `json:"schema"`
	Tool   string `json:"tool"`
	Grid   string `json:"grid"`
}

// maxManifestLine bounds one manifest line; latency-sample-heavy jobs
// (gRPC QPS) can run to several MB of JSON.
const maxManifestLine = 256 << 20

// OpenManifest loads the manifest at path (creating it if absent) and
// opens it for appending, without any metadata validation (legacy entry
// point; cmd tools should prefer OpenManifestFor).
func OpenManifest(path string) (*Manifest, error) {
	m, _, err := openManifest(path)
	return m, err
}

// OpenManifestFor opens the manifest at path for the given tool/grid
// combination. A fresh (absent or empty) manifest adopts meta as its
// header; an existing one must carry a matching header, or the open fails
// with a description of the mismatch — results cached for one grid are
// never served to another.
func OpenManifestFor(path string, meta ManifestMeta) (*Manifest, error) {
	if meta.Schema == "" {
		meta.Schema = ManifestSchema
	}
	m, got, err := openManifest(path)
	if err != nil {
		return nil, err
	}
	adopt := func() error {
		b, err := json.Marshal(manifestLine{Meta: &meta})
		if err != nil {
			return err
		}
		if _, err := m.f.Write(append(b, '\n')); err != nil {
			return fmt.Errorf("expt: writing manifest header %s: %w", path, err)
		}
		m.meta = &meta
		return nil
	}
	switch {
	case got == nil && m.Len() == 0:
		if err := adopt(); err != nil {
			m.Close()
			return nil, err
		}
	case got == nil:
		m.Close()
		return nil, fmt.Errorf(
			"expt: manifest %s predates metadata headers and cannot be validated against this request; use a fresh -resume path",
			path)
	case got.Schema != meta.Schema || got.Tool != meta.Tool || got.Grid != meta.Grid:
		m.Close()
		return nil, fmt.Errorf(
			"expt: manifest %s was written for a different run (tool %q grid %q, want tool %q grid %q); rerun with matching flags or use a fresh -resume path",
			path, got.Tool, got.Grid, meta.Tool, meta.Grid)
	}
	return m, nil
}

// repairTornTail truncates a trailing partial line (no terminating
// newline) left by a writer that crashed mid-Record. The partial line
// was never loadable, but leaving it in place would corrupt the next
// append: O_APPEND glues the new line — possibly the metadata header —
// onto the torn tail, making both unparsable and, for the header, the
// whole manifest unresumable. Truncating back to the last newline makes
// a crashed campaign resume cleanly; the torn job simply re-runs.
func repairTornTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	buf := make([]byte, 64<<10)
	end := size // offset just past the last '\n'
	for off := size; off > 0; {
		n := int64(len(buf))
		if n > off {
			n = off
		}
		off -= n
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return err
		}
		if i := bytes.LastIndexByte(buf[:n], '\n'); i >= 0 {
			end = off + int64(i) + 1
			break
		}
		end = 0 // no newline anywhere (yet): whole file is one torn line
	}
	if end == size {
		return nil
	}
	return f.Truncate(end)
}

func openManifest(path string) (*Manifest, *ManifestMeta, error) {
	m := &Manifest{path: path, done: map[string]manifestEntry{}}
	if err := repairTornTail(path); err != nil {
		return nil, nil, fmt.Errorf("expt: repairing manifest %s: %w", path, err)
	}
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), maxManifestLine)
		for sc.Scan() {
			var line manifestLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				continue // torn tail from an interrupted write
			}
			if line.Meta != nil && m.meta == nil {
				m.meta = line.Meta
				continue
			}
			if line.Key == "" || line.Result == nil {
				continue
			}
			m.lines++
			m.done[line.Key] = manifestEntry{
				res:  line.Result,
				host: time.Duration(line.HostMS * float64(time.Millisecond)),
			}
		}
		closeErr := f.Close()
		if err := sc.Err(); err != nil {
			return nil, nil, fmt.Errorf("expt: reading manifest %s: %w", path, err)
		}
		if closeErr != nil {
			return nil, nil, closeErr
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	m.f = f
	return m, m.meta, nil
}

// Meta returns the manifest's header, if it has one.
func (m *Manifest) Meta() *ManifestMeta {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.meta
}

// Lookup returns the recorded result for key, if any, along with the host
// wall-clock time the job cost when it originally ran (zero for entries
// written before host times were recorded).
func (m *Manifest) Lookup(key string) (r *JobResult, host time.Duration, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.done[key]
	return e.res, e.host, ok
}

// Record appends a completed job and the host wall-clock time its final
// attempt took. Each line is written atomically with respect to other
// Record calls; durability against a crash mid-line is handled by the
// torn-tail skip on load.
func (m *Manifest) Record(key string, r *JobResult, host time.Duration) error {
	b, err := json.Marshal(manifestLine{
		Key:    key,
		HostMS: float64(host.Microseconds()) / 1e3,
		Result: r,
	})
	if err != nil {
		return err
	}
	b = append(b, '\n')
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.f.Write(b); err != nil {
		return fmt.Errorf("expt: appending to manifest %s: %w", m.path, err)
	}
	m.lines++
	m.done[key] = manifestEntry{res: r, host: host}
	return nil
}

// Compact rewrites the manifest in place, keeping the metadata header and
// the surviving entry for each key while dropping superseded duplicates
// (jobs recorded more than once — e.g. re-run after their original line
// was torn by a crash, or re-executed when a distributed lease was
// reclaimed just before the original worker's result arrived). Long-lived
// campaigns that resume many times stay bounded by their live key count
// instead of their append history. Entries are rewritten sorted by key,
// so a compacted manifest is deterministic for a given key set. Returns
// how many duplicate lines were dropped.
func (m *Manifest) Compact() (dropped int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dropped = m.lines - len(m.done)
	if dropped <= 0 {
		return 0, nil
	}
	tmp := m.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("expt: compacting manifest %s: %w", m.path, err)
	}
	w := bufio.NewWriter(f)
	writeLine := func(line manifestLine) error {
		b, err := json.Marshal(line)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		_, err = w.Write(b)
		return err
	}
	fail := func(e error) (int, error) {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("expt: compacting manifest %s: %w", m.path, e)
	}
	if m.meta != nil {
		if err := writeLine(manifestLine{Meta: m.meta}); err != nil {
			return fail(err)
		}
	}
	keys := make([]string, 0, len(m.done))
	for k := range m.done {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := m.done[k]
		if err := writeLine(manifestLine{
			Key:    k,
			HostMS: float64(e.host.Microseconds()) / 1e3,
			Result: e.res,
		}); err != nil {
			return fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, m.path); err != nil {
		return fail(err)
	}
	// Swap the append handle onto the compacted file; the old handle
	// points at the unlinked inode.
	nf, err := os.OpenFile(m.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, fmt.Errorf("expt: reopening compacted manifest %s: %w", m.path, err)
	}
	m.f.Close()
	m.f = nf
	m.lines = len(m.done)
	return dropped, nil
}

// Len returns the number of completed jobs on record.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.done)
}

// Entries returns every completed job on record, sorted by key — the
// postmortem reader's view of a campaign (cmd/obs). Cached is true on
// every row: by definition a manifest entry was served from disk.
func (m *Manifest) Entries() []Completed {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Completed, 0, len(m.done))
	for k, e := range m.done {
		out = append(out, Completed{Key: k, Result: e.res, Cached: true, Host: e.host})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Close closes the underlying file.
func (m *Manifest) Close() error { return m.f.Close() }
