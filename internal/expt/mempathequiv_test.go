package expt

import (
	"bytes"
	"testing"

	"repro/internal/harness"
	"repro/internal/kernel"
)

// TestDocumentIdenticalAcrossMemPaths is the orchestrator-level acceptance
// check for the sparse memory representations (hierarchical tag
// summaries, chunked shadow with recycling, O(1)-append vpn list): the
// same grid run under -mempath=fast and -mempath=flat must emit
// byte-identical cornucopia-sweep/v1 documents. The grid mixes pgbench (a
// revocation-heavy server) with the heapscale workload (the
// million-allocation axis the sparse paths exist for), under the two
// sweeping strategies that exercise the load barrier and the STW sweep.
// Host wall-time is the one legitimately nondeterministic field, so it is
// zeroed before comparison.
func TestDocumentIdenticalAcrossMemPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	var jobs []Job
	for _, cond := range harness.SweepConditions()[:2] {
		cfg := harness.DefaultConfig()
		cfg.Scale = 256
		cfg.Seed = 1
		jobs = append(jobs, Job{Workload: PgbenchWorkload(200), Cond: cond, Cfg: cfg})

		hcfg := harness.DefaultConfig()
		hcfg.Scale = 128
		hcfg.Seed = 7
		jobs = append(jobs, Job{Workload: HeapScaleWorkload(1<<20, 1<<17), Cond: cond, Cfg: hcfg})
	}

	build := func(mp kernel.MemPath) []byte {
		p := NewPool(PoolConfig{Workers: 4, MemPath: mp})
		p.Prefetch(jobs)
		for _, j := range jobs {
			if _, err := p.Get(j); err != nil {
				t.Fatal(err)
			}
		}
		doc := BuildDocument(p, nil, 1, 1, 256)
		for i := range doc.Jobs {
			doc.Jobs[i].HostMillis = 0
		}
		var buf bytes.Buffer
		if err := doc.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	ref := build(kernel.MemPathFast)
	if got := build(kernel.MemPathFlat); !bytes.Equal(ref, got) {
		t.Errorf("flat mem path document differs from fast reference (%d vs %d bytes)", len(got), len(ref))
	}

	// The path choice must also be invisible to job identity: a manifest
	// entry computed under either path has to satisfy the other.
	k := jobs[0].Key()
	j2 := jobs[0]
	j2.Cfg.MemPath = kernel.MemPathFlat
	if j2.Key() != k {
		t.Fatal("MemPath leaked into the job content hash")
	}
}
