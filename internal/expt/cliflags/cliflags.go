// Package cliflags centralizes the experiment-runner flag plumbing that
// cmd/sweep and cmd/chaos share: the pool sizing flags (-workers,
// -timeout, -retries), manifest resume (-resume), per-job progress lines
// (-progress), the live introspection server (-http, -http-linger), and
// the simulation implementation seams (-sweepkernel, -simengine).
// Both commands register the same flags with the same defaults and get
// the same progress formatting, so the tools stay drop-in consistent.
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/expt"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Flags holds the shared experiment-runner flag values after Parse.
type Flags struct {
	Workers  int
	Timeout  time.Duration
	Retries  int
	Resume   string
	Progress bool
	// HTTPAddr mounts the live introspection server (telemetry.Live) when
	// non-empty; ":0" binds an ephemeral port.
	HTTPAddr string
	// HTTPLinger keeps the -http server up this long after the run
	// completes, so scrapers (and CI smoke tests) can still reach it.
	HTTPLinger time.Duration
	// SweepKernel names the page-sweep implementation ("word" or
	// "granule"); resolve it with ParseSweepKernel.
	SweepKernel string
	// SimEngine names the sim execution engine ("fast" or "classic");
	// resolve it with ParseSimEngine.
	SimEngine string
	// CPUProfile/MemProfile, when non-empty, write host-side pprof
	// profiles — the complement of the simulated-cycle profiler
	// (internal/telemetry), which attributes virtual time, not host time.
	CPUProfile string
	MemProfile string
}

// Register installs the shared flags on the process flag set with the
// canonical defaults. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.IntVar(&f.Workers, "workers", runtime.NumCPU(), "parallel jobs (grid shards across host cores)")
	flag.DurationVar(&f.Timeout, "timeout", 10*time.Minute, "per-job attempt timeout (0 = unbounded)")
	flag.IntVar(&f.Retries, "retries", 1, "extra attempts for a failed job")
	flag.StringVar(&f.Resume, "resume", "", "manifest file: record completed jobs and resume from them")
	flag.BoolVar(&f.Progress, "progress", false, "print per-job progress lines")
	flag.StringVar(&f.HTTPAddr, "http", "", "serve live introspection (/metrics, /jobs, /events) on this address (\":0\" = ephemeral)")
	flag.DurationVar(&f.HTTPLinger, "http-linger", 0, "keep the -http server up this long after the run completes")
	flag.StringVar(&f.SweepKernel, "sweepkernel", "word", "page-sweep implementation: word (batch kernel) or granule (per-granule differential oracle)")
	flag.StringVar(&f.SimEngine, "simengine", "fast", "sim execution engine: fast (inline scheduler) or classic (channel-per-slice differential oracle)")
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a host CPU profile (pprof) to this file")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write a host heap profile (pprof) to this file at exit")
	return f
}

// ParseSweepKernel resolves the -sweepkernel flag value.
func (f *Flags) ParseSweepKernel() (kernel.SweepKernel, error) {
	return kernel.ParseSweepKernel(f.SweepKernel)
}

// ParseSimEngine resolves the -simengine flag value.
func (f *Flags) ParseSimEngine() (sim.EngineKind, error) {
	return sim.ParseEngineKind(f.SimEngine)
}

// StartProfiles begins host CPU profiling if -cpuprofile was given. The
// returned stop function flushes the CPU profile and, if -memprofile was
// given, writes a post-GC heap profile; call it (once) before exit.
func (f *Flags) StartProfiles() (stop func() error, err error) {
	var cpu *os.File
	if f.CPUProfile != "" {
		cpu, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cliflags: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cliflags: -cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("cliflags: -cpuprofile: %w", err)
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				return fmt.Errorf("cliflags: -memprofile: %w", err)
			}
			runtime.GC() // materialize reachable-heap truth before the snapshot
			if err := pprof.WriteHeapProfile(mf); err != nil {
				mf.Close()
				return fmt.Errorf("cliflags: -memprofile: %w", err)
			}
			return mf.Close()
		}
		return nil
	}, nil
}

// Manifest opens the -resume manifest for the given tool and grid
// signature, or returns nil when resume is off. The caller owns Close.
func (f *Flags) Manifest(tool, grid string) (*expt.Manifest, error) {
	if f.Resume == "" {
		return nil, nil
	}
	return expt.OpenManifestFor(f.Resume, expt.ManifestMeta{Tool: tool, Grid: grid})
}

// PoolConfig assembles the pool configuration from the flags: sizing,
// the manifest, and a progress chain feeding the -progress printer and
// the -http live server. The returned Live is nil unless -http was set;
// pass it to Finish when the run completes. Callers may further adjust
// the returned config (e.g. set Telemetry) before expt.NewPool.
func (f *Flags) PoolConfig(tool string, manifest *expt.Manifest) (expt.PoolConfig, *telemetry.Live, error) {
	sk, err := f.ParseSweepKernel()
	if err != nil {
		return expt.PoolConfig{}, nil, err
	}
	ek, err := f.ParseSimEngine()
	if err != nil {
		return expt.PoolConfig{}, nil, err
	}
	cfg := expt.PoolConfig{
		Workers:     f.Workers,
		Timeout:     f.Timeout,
		Retries:     f.Retries,
		Manifest:    manifest,
		SweepKernel: sk,
		SimEngine:   ek,
	}
	var live *telemetry.Live
	if f.HTTPAddr != "" {
		live = telemetry.NewLive(tool)
		addr, err := live.Start(f.HTTPAddr)
		if err != nil {
			return cfg, nil, fmt.Errorf("cliflags: -http %s: %w", f.HTTPAddr, err)
		}
		fmt.Fprintf(os.Stderr, "%s: live introspection on http://%s/\n", tool, addr)
	}
	if f.Progress || live != nil {
		printer := f.Progress
		cfg.Progress = func(ev expt.Event) {
			live.Observe(Update(ev))
			if printer {
				fmt.Fprintln(os.Stderr, FormatEvent(ev))
			}
		}
	}
	return cfg, live, nil
}

// Finish lingers the live server for -http-linger, then shuts it down.
// Safe to call with a nil live (no -http).
func (f *Flags) Finish(live *telemetry.Live) {
	if live == nil {
		return
	}
	if f.HTTPLinger > 0 {
		fmt.Fprintf(os.Stderr, "lingering %s for late scrapes\n", f.HTTPLinger)
		time.Sleep(f.HTTPLinger)
	}
	_ = live.Close()
}

// Update converts a pool event to the live server's observation type.
func Update(ev expt.Event) telemetry.JobUpdate {
	return telemetry.JobUpdate{
		Key:       ev.Key,
		Workload:  ev.Workload,
		Condition: ev.Condition,
		Seed:      ev.Seed,
		Status:    ev.Status,
		Attempts:  ev.Attempts,
		Err:       ev.Err,
		HostMS:    float64(ev.Host) / float64(time.Millisecond),
		Done:      ev.Done,
		Total:     ev.Total,
	}
}

// FormatEvent renders the standard one-line progress format both tools
// print under -progress.
func FormatEvent(ev expt.Event) string {
	line := fmt.Sprintf("[%d/%d] %-6s %s under %s seed=%d (%d attempt(s), %.1fs)",
		ev.Done, ev.Total, ev.Status, ev.Workload, ev.Condition, ev.Seed,
		ev.Attempts, ev.Host.Seconds())
	if ev.Err != "" {
		line += fmt.Sprintf(" [%s]", ev.Err)
	}
	return line
}
