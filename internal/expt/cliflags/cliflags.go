// Package cliflags centralizes the experiment-runner flag plumbing that
// cmd/sweep and cmd/chaos share: the pool sizing flags (-workers,
// -timeout, -retries, -retry-backoff), manifest resume (-resume,
// -compact), per-job progress lines (-progress), the live introspection
// server (-http, -http-linger), the simulation implementation seams
// (-sweepkernel, -simengine, -mempath), the execution backend (-exec, -listen,
// -addr-file, -heartbeat), and the observability plane (-journal,
// -timeline, -timeline-canonical, -trace-events). Both commands register
// the same flags with the same defaults and get the same progress
// formatting, so the tools stay drop-in consistent. LiveFlags is the
// lighter -live/-live-linger/-metrics set for tools that are not
// campaign drivers (cmd/hostbench, cmd/worker).
package cliflags

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/dist/netfault"
	"repro/internal/expt"
	"repro/internal/journal"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Flags holds the shared experiment-runner flag values after Parse.
type Flags struct {
	Workers  int
	Timeout  time.Duration
	Retries  int
	// RetryBackoff spaces a failed job's attempts (attempt n+1 waits
	// n*RetryBackoff); 0 retries immediately.
	RetryBackoff time.Duration
	Resume       string
	// Compact rewrites the -resume manifest on open, dropping superseded
	// duplicate entries for the same key.
	Compact  bool
	Progress bool
	// Exec selects the execution backend: "local" runs jobs on this
	// process's pool; "net" starts internal/dist's coordinator and leases
	// jobs to cmd/worker processes.
	Exec string
	// Listen is the coordinator bind address under -exec=net (":0" for
	// ephemeral); AddrFile, when non-empty, receives the bound address —
	// scripts launching workers against an ephemeral port read it back.
	Listen   string
	AddrFile string
	// Heartbeat is the lease-renewal interval advertised to workers; a
	// worker silent for several intervals has its leases reclaimed.
	Heartbeat time.Duration
	// RetryBackoffMax and RetryJitter upgrade -retry-backoff to the
	// unified exponential policy (expt.Backoff): when either is set, a
	// failed job's attempt n waits RetryBackoff doubling per attempt,
	// capped at RetryBackoffMax, plus up to RetryJitter fraction of
	// deterministic seed-keyed jitter.
	RetryBackoffMax time.Duration
	RetryJitter     float64
	// NetFault arms coordinator-side network fault injection under
	// -exec=net: a comma-separated class list (drop, delay, partition —
	// the inbound classes; worker-side classes are armed on cmd/worker).
	// Empty = off.
	NetFault              string
	NetFaultSeed          int64
	NetFaultRate          float64
	NetFaultMax           uint64
	NetFaultDelay         time.Duration
	NetFaultPartitionFrac float64
	// BreakerFailures trips a worker's circuit breaker after that many
	// consecutive failures/reclaims (0 = off); BreakerCooldown is the
	// quarantine before a probe lease.
	BreakerFailures int
	BreakerCooldown time.Duration
	// EvictAfter folds a silent lease-free worker out of the live fleet
	// view (0 = default of 60 heartbeats; negative disables).
	EvictAfter time.Duration
	// LocalFallback degrades the coordinator to local execution when the
	// fleet has been silent this long with jobs queued (0 = off).
	LocalFallback time.Duration
	// HTTPAddr mounts the live introspection server (telemetry.Live) when
	// non-empty; ":0" binds an ephemeral port.
	HTTPAddr string
	// HTTPLinger keeps the -http server up this long after the run
	// completes, so scrapers (and CI smoke tests) can still reach it.
	HTTPLinger time.Duration
	// Journal appends the campaign journal (cornucopia-journal/v1 JSONL:
	// job lease/start/retry/result, worker join/evict, breaker trips,
	// netfault injections, recovery actions) to this file when non-empty.
	Journal string
	// Timeline writes a merged Chrome/Perfetto timeline (chrome://tracing
	// JSON) of the campaign to this file when non-empty; under -exec=net
	// each worker appears as its own named process track.
	Timeline string
	// TimelineCanonical strips host metadata from -timeline output: one
	// deterministic "campaign" track ordered by job key, byte-identical
	// between a local pool run and a distributed run of the same grid.
	TimelineCanonical bool
	// TraceEvents arms the per-job simulated-cycle tracer with a ring of
	// this many events (0 = off); the ring rides each job's telemetry
	// snapshot into manifests, dist results, and -timeline tracks.
	TraceEvents int
	// SweepKernel names the page-sweep implementation ("word" or
	// "granule"); resolve it with ParseSweepKernel.
	SweepKernel string
	// SimEngine names the sim execution engine ("fast" or "classic");
	// resolve it with ParseSimEngine.
	SimEngine string
	// MemPath names the memory-model host representation ("fast" or
	// "flat"); resolve it with ParseMemPath.
	MemPath string
	// CPUProfile/MemProfile, when non-empty, write host-side pprof
	// profiles — the complement of the simulated-cycle profiler
	// (internal/telemetry), which attributes virtual time, not host time.
	CPUProfile string
	MemProfile string
}

// Register installs the shared flags on the process flag set with the
// canonical defaults. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.IntVar(&f.Workers, "workers", runtime.NumCPU(), "parallel jobs (grid shards across host cores)")
	flag.DurationVar(&f.Timeout, "timeout", 10*time.Minute, "per-job attempt timeout (0 = unbounded)")
	flag.IntVar(&f.Retries, "retries", 1, "extra attempts for a failed job")
	flag.DurationVar(&f.RetryBackoff, "retry-backoff", 0, "delay attempt n+1 of a failed job by n times this (0 = retry immediately)")
	flag.StringVar(&f.Resume, "resume", "", "manifest file: record completed jobs and resume from them")
	flag.BoolVar(&f.Compact, "compact", false, "compact the -resume manifest on open, dropping superseded duplicate entries")
	flag.BoolVar(&f.Progress, "progress", false, "print per-job progress lines")
	flag.StringVar(&f.Exec, "exec", "local", "execution backend: local (in-process pool) or net (lease jobs to cmd/worker processes)")
	flag.StringVar(&f.Listen, "listen", "127.0.0.1:9977", "coordinator bind address under -exec=net (\":0\" = ephemeral)")
	flag.StringVar(&f.AddrFile, "addr-file", "", "write the coordinator's bound address to this file (for scripts using -listen :0)")
	flag.DurationVar(&f.Heartbeat, "heartbeat", time.Second, "worker lease-renewal interval under -exec=net")
	flag.DurationVar(&f.RetryBackoffMax, "retry-backoff-max", 0, "cap exponential retry backoff at this delay (0 with -retry-jitter 0 = legacy linear backoff)")
	flag.Float64Var(&f.RetryJitter, "retry-jitter", 0, "add up to this fraction of deterministic jitter to retry backoff (0..1)")
	flag.StringVar(&f.NetFault, "netfault", "", "coordinator-side network fault classes to inject under -exec=net (comma-separated: drop,delay,partition; empty = off)")
	flag.Int64Var(&f.NetFaultSeed, "netfault-seed", 1, "seed for the deterministic network fault decision stream")
	flag.Float64Var(&f.NetFaultRate, "netfault-rate", 0, "per-opportunity network fault probability (0 = netfault default)")
	flag.Uint64Var(&f.NetFaultMax, "netfault-max", 0, "cap injections per fault class (0 = unbounded; bounds partitions so campaigns heal)")
	flag.DurationVar(&f.NetFaultDelay, "netfault-delay", 0, "injected network delay/throttle pause (0 = netfault default)")
	flag.Float64Var(&f.NetFaultPartitionFrac, "netfault-partition-frac", 0, "fraction of workers in the injected partition (0 = netfault default)")
	flag.IntVar(&f.BreakerFailures, "breaker-failures", 0, "trip a worker's circuit breaker after this many consecutive failures/reclaims (0 = off)")
	flag.DurationVar(&f.BreakerCooldown, "breaker-cooldown", 0, "quarantine a tripped worker this long before its probe lease (0 = 2s)")
	flag.DurationVar(&f.EvictAfter, "evict-after", 0, "evict a silent lease-free worker from the live fleet view after this long (0 = 60 heartbeats; negative = never)")
	flag.DurationVar(&f.LocalFallback, "local-fallback", 0, "run queued jobs locally when the fleet has been silent this long under -exec=net (0 = wait forever)")
	flag.StringVar(&f.HTTPAddr, "http", "", "serve live introspection (/metrics, /jobs, /events) on this address (\":0\" = ephemeral)")
	flag.DurationVar(&f.HTTPLinger, "http-linger", 0, "keep the -http server up this long after the run completes")
	flag.StringVar(&f.Journal, "journal", "", "append the campaign journal (cornucopia-journal/v1 JSONL) to this file")
	flag.StringVar(&f.Timeline, "timeline", "", "write a merged Chrome/Perfetto campaign timeline (chrome://tracing JSON) to this file")
	flag.BoolVar(&f.TimelineCanonical, "timeline-canonical", false, "strip host metadata from -timeline: one deterministic campaign track, byte-identical across local and distributed runs")
	flag.IntVar(&f.TraceEvents, "trace-events", 0, "arm the per-job cycle tracer with a ring of this many events (0 = off)")
	flag.StringVar(&f.SweepKernel, "sweepkernel", "word", "page-sweep implementation: word (batch kernel) or granule (per-granule differential oracle)")
	flag.StringVar(&f.SimEngine, "simengine", "fast", "sim execution engine: fast (inline scheduler) or classic (channel-per-slice differential oracle)")
	flag.StringVar(&f.MemPath, "mempath", "fast", "memory-model host representation: fast (sparse hierarchical) or flat (differential oracle)")
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a host CPU profile (pprof) to this file")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write a host heap profile (pprof) to this file at exit")
	return f
}

// ParseSweepKernel resolves the -sweepkernel flag value.
func (f *Flags) ParseSweepKernel() (kernel.SweepKernel, error) {
	return kernel.ParseSweepKernel(f.SweepKernel)
}

// ParseSimEngine resolves the -simengine flag value.
func (f *Flags) ParseSimEngine() (sim.EngineKind, error) {
	return sim.ParseEngineKind(f.SimEngine)
}

// ParseMemPath resolves the -mempath flag value.
func (f *Flags) ParseMemPath() (kernel.MemPath, error) {
	return kernel.ParseMemPath(f.MemPath)
}

// StartProfiles begins host CPU profiling if -cpuprofile was given. The
// returned stop function flushes the CPU profile and, if -memprofile was
// given, writes a post-GC heap profile; call it (once) before exit.
func (f *Flags) StartProfiles() (stop func() error, err error) {
	var cpu *os.File
	if f.CPUProfile != "" {
		cpu, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cliflags: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cliflags: -cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("cliflags: -cpuprofile: %w", err)
			}
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				return fmt.Errorf("cliflags: -memprofile: %w", err)
			}
			runtime.GC() // materialize reachable-heap truth before the snapshot
			if err := pprof.WriteHeapProfile(mf); err != nil {
				mf.Close()
				return fmt.Errorf("cliflags: -memprofile: %w", err)
			}
			return mf.Close()
		}
		return nil
	}, nil
}

// Manifest opens the -resume manifest for the given tool and grid
// signature, or returns nil when resume is off. With -compact, the file
// is rewritten in place to drop superseded duplicate entries before use.
// The caller owns Close.
func (f *Flags) Manifest(tool, grid string) (*expt.Manifest, error) {
	if f.Resume == "" {
		if f.Compact {
			return nil, fmt.Errorf("cliflags: -compact needs -resume to name the manifest")
		}
		return nil, nil
	}
	m, err := expt.OpenManifestFor(f.Resume, expt.ManifestMeta{Tool: tool, Grid: grid})
	if err != nil {
		return nil, err
	}
	if f.Compact {
		dropped, err := m.Compact()
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("cliflags: -compact: %w", err)
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "%s: compacted %s: dropped %d superseded entr(ies)\n", tool, f.Resume, dropped)
		}
	}
	return m, nil
}

// PoolConfig assembles the pool configuration from the flags: sizing,
// the manifest, and a progress chain feeding the -progress printer and
// the -http live server. The returned Live is nil unless -http was set;
// pass it to Finish when the run completes. Callers may further adjust
// the returned config (e.g. set Telemetry) before expt.NewPool.
func (f *Flags) PoolConfig(tool string, manifest *expt.Manifest) (expt.PoolConfig, *telemetry.Live, error) {
	sk, err := f.ParseSweepKernel()
	if err != nil {
		return expt.PoolConfig{}, nil, err
	}
	ek, err := f.ParseSimEngine()
	if err != nil {
		return expt.PoolConfig{}, nil, err
	}
	mp, err := f.ParseMemPath()
	if err != nil {
		return expt.PoolConfig{}, nil, err
	}
	cfg := expt.PoolConfig{
		Workers:      f.Workers,
		Timeout:      f.Timeout,
		Retries:      f.Retries,
		RetryBackoff: f.RetryBackoff,
		Backoff:      f.Backoff(),
		Manifest:     manifest,
		SweepKernel:  sk,
		SimEngine:    ek,
		MemPath:      mp,
	}
	var live *telemetry.Live
	if f.HTTPAddr != "" {
		live = telemetry.NewLive(tool)
		addr, err := live.Start(f.HTTPAddr)
		if err != nil {
			return cfg, nil, fmt.Errorf("cliflags: -http %s: %w", f.HTTPAddr, err)
		}
		fmt.Fprintf(os.Stderr, "%s: live introspection on http://%s/\n", tool, addr)
	}
	if f.Progress || live != nil {
		printer := f.Progress
		cfg.Progress = func(ev expt.Event) {
			live.Observe(Update(ev))
			if printer {
				fmt.Fprintln(os.Stderr, FormatEvent(ev))
			}
		}
	}
	return cfg, live, nil
}

// Backoff assembles the unified retry policy from the flags, or nil when
// neither -retry-backoff-max nor -retry-jitter was given (the pool then
// keeps its legacy linear -retry-backoff spacing).
func (f *Flags) Backoff() *expt.Backoff {
	if f.RetryBackoffMax <= 0 && f.RetryJitter <= 0 {
		return nil
	}
	base := f.RetryBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	return &expt.Backoff{
		Base:   base,
		Factor: 2,
		Max:    f.RetryBackoffMax,
		Jitter: f.RetryJitter,
		Seed:   f.NetFaultSeed,
	}
}

// NetFaultSpec assembles the coordinator-side fault injection spec from
// the flags, or nil when -netfault was not given.
func (f *Flags) NetFaultSpec() *netfault.Spec {
	if f.NetFault == "" {
		return nil
	}
	return &netfault.Spec{
		Seed:          f.NetFaultSeed,
		Classes:       strings.Split(f.NetFault, ","),
		Rate:          f.NetFaultRate,
		MaxPerClass:   f.NetFaultMax,
		Delay:         f.NetFaultDelay,
		PartitionFrac: f.NetFaultPartitionFrac,
	}
}

// AtomicWriteFile writes data to path so that no concurrent reader ever
// observes a torn or partial file: the bytes land in a same-directory
// temp file first, then replace path in one rename. Scripts polling
// -addr-file depend on this.
func AtomicWriteFile(path string, data []byte, mode os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// NewExecutor builds the execution backend -exec selected: a local pool,
// or a listening dist coordinator that leases the grid to cmd/worker
// processes. The returned closer must be called after every Get has
// returned — for a coordinator it drains the worker fleet (telling each
// worker to exit) and shuts the protocol server down; for a local pool it
// is a no-op. The coordinator's per-worker accounting is wired onto live
// (/workers, /fleet and the <tool>_dist_*/fleet_* metric families) when
// both exist; a local pool serves /fleet as a single-worker fleet.
//
// With -journal, both backends emit the campaign journal through the one
// pool seam (expt.PoolConfig.Journal); the closer flushes and closes it,
// surfacing any write error the campaign would otherwise swallow.
func (f *Flags) NewExecutor(tool, grid string, pcfg expt.PoolConfig, live *telemetry.Live) (expt.Executor, func() error, error) {
	var jnl *journal.Writer
	if f.Journal != "" {
		var err error
		if jnl, err = journal.Create(f.Journal, tool, grid); err != nil {
			return nil, nil, err
		}
		pcfg.Journal = jnl
	}
	closeJournal := func() error {
		if jnl == nil {
			return nil
		}
		werr := jnl.Err()
		cerr := jnl.Close()
		if werr != nil {
			return fmt.Errorf("cliflags: -journal %s: %w", f.Journal, werr)
		}
		if cerr != nil {
			return fmt.Errorf("cliflags: -journal %s: %w", f.Journal, cerr)
		}
		return nil
	}
	switch f.Exec {
	case "", "local":
		p := expt.NewPool(pcfg)
		live.SetFleetSource(func() telemetry.FleetStats { return LocalFleet(p) })
		return p, closeJournal, nil
	case "net":
		c := dist.NewCoordinator(dist.Config{
			Tool:            tool,
			Grid:            grid,
			Pool:            pcfg,
			LeaseTimeout:    f.Timeout,
			Heartbeat:       f.Heartbeat,
			Faults:          f.NetFaultSpec(),
			BreakerFailures: f.BreakerFailures,
			BreakerCooldown: f.BreakerCooldown,
			EvictAfter:      f.EvictAfter,
			LocalFallback:   f.LocalFallback,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
			},
		})
		addr, err := c.Start(f.Listen)
		if err != nil {
			if jnl != nil {
				jnl.Close()
			}
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "%s: coordinator on %s (attach workers: worker -connect %s)\n", tool, addr, addr)
		if f.NetFault != "" {
			fmt.Fprintf(os.Stderr, "%s: coordinator-side netfault armed: classes=%s seed=%d\n", tool, f.NetFault, f.NetFaultSeed)
		}
		if f.AddrFile != "" {
			// Atomic write-then-rename so a script polling the path never
			// reads a torn address.
			if err := AtomicWriteFile(f.AddrFile, []byte(addr+"\n"), 0o644); err != nil {
				c.Close()
				if jnl != nil {
					jnl.Close()
				}
				return nil, nil, fmt.Errorf("cliflags: -addr-file: %w", err)
			}
		}
		live.SetWorkerSource(c.Workers)
		live.SetDistSource(c.DistStats)
		live.SetFleetSource(c.Fleet)
		closer := func() error {
			c.Drain()
			// Give drained workers a beat to observe the drain reply before
			// the server vanishes; their exit does not gate the campaign.
			time.Sleep(50 * time.Millisecond)
			if f.AddrFile != "" {
				_ = os.Remove(f.AddrFile)
			}
			err := c.Close()
			if jerr := closeJournal(); err == nil {
				err = jerr
			}
			return err
		}
		return c, closer, nil
	}
	if jnl != nil {
		jnl.Close()
	}
	return nil, nil, fmt.Errorf("cliflags: unknown -exec backend %q (want local or net)", f.Exec)
}

// LocalFleet summarizes a local executor as a single-worker fleet, so
// /fleet and the fleet_* metric families answer identically-shaped data
// whether or not the campaign is distributed.
func LocalFleet(ex expt.Executor) telemetry.FleetStats {
	w := telemetry.FleetWorker{ID: "local", Name: "local pool"}
	for _, c := range ex.Results() {
		w.Jobs++
		if c.Cached {
			w.CacheHits++
		}
		w.HostMS += float64(c.Host) / float64(time.Millisecond)
		if c.Result != nil {
			w.SimCycles += c.Result.WallCycles
			if c.Result.Telem != nil {
				w.TraceEvents += uint64(len(c.Result.Telem.Trace))
				w.TraceDropped += c.Result.Telem.TraceDropped
			}
		}
	}
	return telemetry.FleetStats{Workers: []telemetry.FleetWorker{w}}.Totaled()
}

// TimelineJobs assembles the -timeline rows from an executor's completed
// results. Worker attribution comes from the executor when it can name
// which worker ran each key (the dist coordinator); a local pool's jobs
// all land on the "local" track.
func TimelineJobs(ex expt.Executor) []journal.TimelineJob {
	var workers map[string]string
	if wm, ok := ex.(interface{ JobWorkers() map[string]string }); ok {
		workers = wm.JobWorkers()
	}
	var out []journal.TimelineJob
	for _, c := range ex.Results() {
		r := c.Result
		if r == nil {
			continue
		}
		tj := journal.TimelineJob{
			Key:        c.Key,
			Workload:   r.Workload,
			Condition:  r.Condition,
			Seed:       r.Seed,
			Worker:     workers[c.Key],
			HostMS:     float64(c.Host) / float64(time.Millisecond),
			WallCycles: r.WallCycles,
			HzGHz:      r.HzGHz,
		}
		if r.Telem != nil {
			tj.Trace = r.Telem.Trace
			tj.TraceDropped = r.Telem.TraceDropped
		}
		out = append(out, tj)
	}
	return out
}

// WriteTimeline writes the merged Chrome/Perfetto campaign timeline if
// -timeline was given. Call it after the closer has run (every result
// in, fleet drained); a no-op when the flag is unset.
func (f *Flags) WriteTimeline(tool string, ex expt.Executor) error {
	if f.Timeline == "" {
		return nil
	}
	out, err := os.Create(f.Timeline)
	if err != nil {
		return fmt.Errorf("cliflags: -timeline: %w", err)
	}
	if err := journal.WriteTimeline(out, TimelineJobs(ex), f.TimelineCanonical); err != nil {
		out.Close()
		return fmt.Errorf("cliflags: -timeline: %w", err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("cliflags: -timeline: %w", err)
	}
	fmt.Printf("%s: wrote %s\n", tool, f.Timeline)
	return nil
}

// LiveFlags is the live-server flag set for tools that are not campaign
// drivers (cmd/hostbench, cmd/worker): -live binds a telemetry.Live
// server, -live-linger keeps it up after the run for late scrapers, and
// -metrics writes the same OpenMetrics body to a file at exit (usable
// with or without -live).
type LiveFlags struct {
	Addr    string
	Linger  time.Duration
	Metrics string
}

// RegisterLive installs the live-server flags on the process flag set.
// Call before flag.Parse.
func RegisterLive() *LiveFlags {
	lf := &LiveFlags{}
	flag.StringVar(&lf.Addr, "live", "", "serve live introspection (/metrics, /jobs, /events) on this address (\":0\" = ephemeral)")
	flag.DurationVar(&lf.Linger, "live-linger", 0, "keep the -live server up this long after the run completes")
	flag.StringVar(&lf.Metrics, "metrics", "", "write the final OpenMetrics body to this file at exit")
	return lf
}

// Start builds the live server the flags ask for: listening under -live,
// collect-only under just -metrics, nil when neither was given (every
// telemetry.Live method is nil-safe, so callers wire sources and Observe
// unconditionally).
func (lf *LiveFlags) Start(tool string) (*telemetry.Live, error) {
	if lf.Addr == "" && lf.Metrics == "" {
		return nil, nil
	}
	live := telemetry.NewLive(tool)
	if lf.Addr != "" {
		addr, err := live.Start(lf.Addr)
		if err != nil {
			return nil, fmt.Errorf("cliflags: -live %s: %w", lf.Addr, err)
		}
		fmt.Fprintf(os.Stderr, "%s: live introspection on http://%s/\n", tool, addr)
	}
	return live, nil
}

// Finish writes -metrics, lingers the server for -live-linger, and shuts
// it down. Safe with a nil live (neither flag given).
func (lf *LiveFlags) Finish(live *telemetry.Live) error {
	if live == nil {
		return nil
	}
	if lf.Metrics != "" {
		out, err := os.Create(lf.Metrics)
		if err != nil {
			return fmt.Errorf("cliflags: -metrics: %w", err)
		}
		live.WriteMetrics(out)
		if err := out.Close(); err != nil {
			return fmt.Errorf("cliflags: -metrics: %w", err)
		}
	}
	if lf.Addr != "" && lf.Linger > 0 {
		fmt.Fprintf(os.Stderr, "lingering %s for late scrapes\n", lf.Linger)
		time.Sleep(lf.Linger)
	}
	return live.Close()
}

// Finish lingers the live server for -http-linger, then shuts it down.
// Safe to call with a nil live (no -http).
func (f *Flags) Finish(live *telemetry.Live) {
	if live == nil {
		return
	}
	if f.HTTPLinger > 0 {
		fmt.Fprintf(os.Stderr, "lingering %s for late scrapes\n", f.HTTPLinger)
		time.Sleep(f.HTTPLinger)
	}
	_ = live.Close()
}

// Update converts a pool event to the live server's observation type.
func Update(ev expt.Event) telemetry.JobUpdate {
	return telemetry.JobUpdate{
		Key:       ev.Key,
		Workload:  ev.Workload,
		Condition: ev.Condition,
		Seed:      ev.Seed,
		Status:    ev.Status,
		Attempts:  ev.Attempts,
		Err:       ev.Err,
		HostMS:    float64(ev.Host) / float64(time.Millisecond),
		Done:      ev.Done,
		Total:     ev.Total,
	}
}

// FormatEvent renders the standard one-line progress format both tools
// print under -progress.
func FormatEvent(ev expt.Event) string {
	line := fmt.Sprintf("[%d/%d] %-6s %s under %s seed=%d (%d attempt(s), %.1fs)",
		ev.Done, ev.Total, ev.Status, ev.Workload, ev.Condition, ev.Seed,
		ev.Attempts, ev.Host.Seconds())
	if ev.Err != "" {
		line += fmt.Sprintf(" [%s]", ev.Err)
	}
	return line
}
