package cliflags

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/expt"
)

// TestAtomicWriteFileNeverTorn pins the -addr-file contract scripts rely
// on: a reader polling the path must only ever observe a complete write —
// never a prefix, never a mix of two writes — no matter how the writer
// interleaves.
func TestAtomicWriteFileNeverTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coordinator.addr")
	short := []byte("127.0.0.1:9977\n")
	long := []byte("this-is-a-much-longer-host-name.example.internal:59999\n")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			data := short
			if i%2 == 1 {
				data = long
			}
			if err := AtomicWriteFile(path, data, 0o644); err != nil {
				t.Errorf("AtomicWriteFile: %v", err)
				return
			}
		}
	}()

	deadline := time.Now().Add(300 * time.Millisecond)
	reads := 0
	for time.Now().Before(deadline) {
		got, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // before the first write lands
			}
			t.Fatalf("read: %v", err)
		}
		if string(got) != string(short) && string(got) != string(long) {
			t.Fatalf("torn read: %q", got)
		}
		reads++
	}
	close(stop)
	wg.Wait()
	if reads == 0 {
		t.Fatal("reader never observed a write")
	}
	// No temp-file litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after writes, want just the target", len(entries))
	}
}

// TestAtomicWriteFileMode pins that the requested permissions land on the
// final file.
func TestAtomicWriteFileMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "addr")
	if err := AtomicWriteFile(path, []byte("x\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("mode = %v, want 0600", fi.Mode().Perm())
	}
}

// TestBackoffFlagAssembly pins the flag-to-policy translation: legacy
// linear mode when neither new knob is set, unified exponential policy
// when either is.
func TestBackoffFlagAssembly(t *testing.T) {
	f := &Flags{RetryBackoff: 50 * time.Millisecond}
	if b := f.Backoff(); b != nil {
		t.Fatalf("legacy flags produced a Backoff: %+v", b)
	}
	f = &Flags{RetryBackoff: 50 * time.Millisecond, RetryBackoffMax: time.Second, RetryJitter: 0.2, NetFaultSeed: 9}
	b := f.Backoff()
	if b == nil {
		t.Fatal("new knobs produced no Backoff")
	}
	want := expt.Backoff{Base: 50 * time.Millisecond, Factor: 2, Max: time.Second, Jitter: 0.2, Seed: 9}
	if *b != want {
		t.Fatalf("Backoff = %+v, want %+v", *b, want)
	}
	// Jitter alone also upgrades, with a sane default base.
	f = &Flags{RetryJitter: 0.5}
	if b := f.Backoff(); b == nil || b.Base <= 0 {
		t.Fatalf("jitter-only Backoff = %+v", b)
	}
}

// TestNetFaultSpecAssembly pins the -netfault flag translation.
func TestNetFaultSpecAssembly(t *testing.T) {
	f := &Flags{}
	if s := f.NetFaultSpec(); s != nil {
		t.Fatalf("empty -netfault produced a spec: %+v", s)
	}
	f = &Flags{
		NetFault:              "drop,partition",
		NetFaultSeed:          5,
		NetFaultRate:          0.25,
		NetFaultMax:           10,
		NetFaultDelay:         3 * time.Millisecond,
		NetFaultPartitionFrac: 0.5,
	}
	s := f.NetFaultSpec()
	if s == nil || s.Seed != 5 || s.Rate != 0.25 || s.MaxPerClass != 10 ||
		s.Delay != 3*time.Millisecond || s.PartitionFrac != 0.5 {
		t.Fatalf("spec = %+v", s)
	}
	if len(s.Classes) != 2 || s.Classes[0] != "drop" || s.Classes[1] != "partition" {
		t.Fatalf("classes = %v", s.Classes)
	}
}
