package expt

import (
	"errors"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPlannerResolvesFigureGrids drives real figure builders against a
// Planner and checks the dry-run contract: every grid cell is recorded
// without anything executing, duplicate submissions merge exactly as the
// pool would merge them, and the listing is deterministic.
func TestPlannerResolvesFigureGrids(t *testing.T) {
	o := DefaultOptions()
	o.Reps = 2
	p := NewPlanner()
	for _, id := range []string{"fig5", "fig6"} {
		f, ok := ByID(id)
		if !ok {
			t.Fatalf("figure %s missing", id)
		}
		if _, err := f.Build(o, p); err != nil {
			t.Fatalf("%s dry-run build: %v", id, err)
		}
	}
	jobs := p.Jobs()
	if len(jobs) == 0 {
		t.Fatal("planner recorded no jobs")
	}
	// fig5 and fig6 share the same pgbench grid (baseline + 4 conditions,
	// o.Reps seeds each): the union must dedupe to one figure's worth.
	want := 5 * o.Reps
	if len(jobs) != want {
		t.Fatalf("planned %d distinct jobs, want %d (fig5 and fig6 grids must dedupe)", len(jobs), want)
	}
	st := p.Stats()
	if st.Submitted != want {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, want)
	}
	if st.Deduped == 0 {
		t.Fatal("no duplicate submissions merged; fig6 should re-request fig5's cells")
	}
	if !sort.SliceIsSorted(jobs, func(i, j int) bool { return jobs[i].Key < jobs[j].Key }) {
		t.Fatal("Jobs() not sorted by key")
	}
	for _, j := range jobs {
		if len(j.Key) != 64 {
			t.Fatalf("job key %q is not a content hash", j.Key)
		}
		if j.Cond == "" {
			t.Fatalf("job %s lost its condition", j.Key[:12])
		}
	}
	var b strings.Builder
	if err := p.WriteGrid(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "\n"); got != want+1 {
		t.Fatalf("grid listing has %d lines, want %d jobs + summary", got, want)
	}
	if !strings.Contains(out, "dry-run: ") {
		t.Fatalf("missing summary line:\n%s", out)
	}
	// Nothing may ever execute or complete.
	if rs := p.Results(); len(rs) != 0 {
		t.Fatalf("planner completed %d jobs", len(rs))
	}
}

// TestPoolRetryBackoff pins that RetryBackoff actually separates
// attempts: with one failure and a 30ms backoff, the job cannot complete
// in under 30ms.
func TestPoolRetryBackoff(t *testing.T) {
	const backoff = 30 * time.Millisecond
	p := NewPool(PoolConfig{Workers: 1, Retries: 1, RetryBackoff: backoff})
	var runs atomic.Int64
	p.run = func(j Job) (*JobResult, time.Duration, error) {
		if runs.Add(1) == 1 {
			return nil, 0, errors.New("transient")
		}
		return fakeResult(j), 0, nil
	}
	start := time.Now()
	if _, err := p.Get(fakeJob("astar", 1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < backoff {
		t.Fatalf("retried after %v, want at least the %v backoff", elapsed, backoff)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

// TestPoolHostCostOverride pins that a backend-reported host cost (a
// remote worker's measurement) flows into events and Completed records
// instead of the pool's queue-inclusive wall clock.
func TestPoolHostCostOverride(t *testing.T) {
	const reported = 1234 * time.Millisecond
	var events []Event
	p := NewPool(PoolConfig{Workers: 1, Progress: func(ev Event) { events = append(events, ev) }})
	p.run = func(j Job) (*JobResult, time.Duration, error) {
		return fakeResult(j), reported, nil
	}
	if _, err := p.Get(fakeJob("astar", 1)); err != nil {
		t.Fatal(err)
	}
	rs := p.Results()
	if len(rs) != 1 || rs[0].Host != reported {
		t.Fatalf("Completed.Host = %v, want the reported %v", rs[0].Host, reported)
	}
	if len(events) != 1 || events[0].Host != reported {
		t.Fatalf("event Host = %v, want %v", events[0].Host, reported)
	}
}
