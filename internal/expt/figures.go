// Figure registry: one entry per table and figure of the paper's
// evaluation (§5). Each figure declares its grid of jobs against a Getter
// (prefetched as a batch, so a Pool shards it across workers) and folds
// the results into the same harness.Table the sequential drivers used to
// produce — byte-identical output at any worker count, since every job is
// deterministic per seed and the fold orders are fixed.
package expt

import (
	"fmt"
	"sort"

	"repro/internal/bus"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/revoke"
	"repro/internal/workload/heapscale"
	"repro/internal/workload/spec"
)

// Options parameterizes a sweep: repetition count, the per-suite
// configurations, and the interactive workloads' sizes. The zero value is
// not useful; start from DefaultOptions.
type Options struct {
	// Reps is the number of cold-boot repetitions per grid cell.
	Reps int
	// SpecCfg, PgCfg and QPSCfg configure the three workload suites.
	// Figure 9 and Table 2 derive their pgbench/QPS scales from
	// SpecCfg.Scale, as the paper's drivers did.
	SpecCfg harness.Config
	PgCfg   harness.Config
	QPSCfg  harness.Config
	// Txs is the pgbench transaction count per run (Figures 5-7, Table 1).
	Txs int
	// Measure and Warmup are the gRPC QPS windows in cycles (Figure 8).
	Measure, Warmup uint64
}

// DefaultOptions mirrors the figure commands' default flags.
func DefaultOptions() Options {
	qcfg := harness.QPSConfig()
	perMs := uint64(qcfg.Machine.Sim.HzGHz * 1e6)
	return Options{
		Reps:    3,
		SpecCfg: harness.SpecConfig(),
		PgCfg:   harness.PgbenchConfig(),
		QPSCfg:  qcfg,
		Txs:     6000,
		Measure: 500 * perMs,
		Warmup:  50 * perMs,
	}
}

// Figure is one regenerable artifact of the evaluation.
type Figure struct {
	// ID is the stable handle: "fig1" … "fig9", "table1", "table2".
	ID string
	// Title is a one-line description for listings.
	Title string
	// Build runs the figure's grid through g and folds the table.
	Build func(o Options, g Getter) (*harness.Table, error)
}

// Figures returns every figure in the paper's order.
func Figures() []Figure {
	return []Figure{
		{"fig1", "SPEC CPU2006 INT wall-clock overheads", fig1Build},
		{"fig2", "SPEC total CPU-time overheads", fig2Build},
		{"fig3", "SPEC peak-RSS ratios", fig3Build},
		{"fig4", "SPEC DRAM bus traffic overheads", fig4Build},
		{"fig5", "pgbench normalized time overheads", fig5Build},
		{"fig6", "pgbench bus access overheads", fig6Build},
		{"fig7", "pgbench per-transaction latency distribution", fig7Build},
		{"table1", "pgbench latency under fixed-rate schedules", table1Build},
		{"fig8", "gRPC QPS latency percentiles", fig8Build},
		{"fig9", "revocation phase time distributions", fig9Build},
		{"table2", "Reloaded revocation rate statistics", table2Build},
		{"heapscale", "heap-scale sweep and allocation costs", heapscaleBuild},
	}
}

// ByID looks a figure up by its handle.
func ByID(id string) (Figure, bool) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// Generate runs one figure end to end. A nil Getter gets a fresh
// sequential pool (workers=1, no manifest).
func Generate(id string, o Options, g Getter) (*harness.Table, error) {
	f, ok := ByID(id)
	if !ok {
		return nil, fmt.Errorf("expt: unknown figure %q", id)
	}
	if g == nil {
		g = NewPool(PoolConfig{Workers: 1})
	}
	return f.Build(o, g)
}

// Cell formatters, as the sequential drivers printed them.
func pct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }

// collect prefetches jobs and blocks for their results, in order.
func collect(g Getter, jobs []Job) ([]*harness.Result, error) {
	g.Prefetch(jobs)
	out := make([]*harness.Result, len(jobs))
	for i, j := range jobs {
		jr, err := g.Get(j)
		if err != nil {
			return nil, err
		}
		out[i] = jr.Harness()
	}
	return out, nil
}

// specMatrix schedules profiles × (baseline + conds) × reps and returns
// results keyed by profile then condition name.
func specMatrix(g Getter, profiles []spec.Profile, conds []harness.Condition,
	cfg harness.Config, reps int) (map[string]map[string][]*harness.Result, error) {
	all := append([]harness.Condition{harness.Baseline()}, conds...)
	type cell struct {
		prof, cond string
		jobs       []Job
	}
	var cells []cell
	for _, p := range profiles {
		for _, c := range all {
			jobs := repeatJobs(SpecWorkload(p.Name()), c, cfg, reps, strideRepeat)
			g.Prefetch(jobs)
			cells = append(cells, cell{p.Name(), c.Name, jobs})
		}
	}
	out := map[string]map[string][]*harness.Result{}
	for _, cl := range cells {
		if out[cl.prof] == nil {
			out[cl.prof] = map[string][]*harness.Result{}
		}
		rs := make([]*harness.Result, len(cl.jobs))
		for i, j := range cl.jobs {
			jr, err := g.Get(j)
			if err != nil {
				return nil, err
			}
			rs[i] = jr.Harness()
		}
		out[cl.prof][cl.cond] = rs
	}
	return out, nil
}

// pgbenchMatrix schedules pgbench under baseline + the standard conditions.
func pgbenchMatrix(g Getter, txs int, cfg harness.Config, reps int) (map[string][]*harness.Result, error) {
	conds := append([]harness.Condition{harness.Baseline()}, harness.StandardConditions()...)
	grids := make([][]Job, len(conds))
	for i, c := range conds {
		grids[i] = repeatJobs(PgbenchWorkload(txs), c, cfg, reps, strideRepeat)
		g.Prefetch(grids[i])
	}
	out := map[string][]*harness.Result{}
	for i, c := range conds {
		rs, err := collect(g, grids[i])
		if err != nil {
			return nil, err
		}
		out[c.Name] = rs
	}
	return out, nil
}

// benchNames returns the distinct benchmark names of profiles, in order.
func benchNames(profiles []spec.Profile) []string {
	var names []string
	seen := map[string]bool{}
	for _, p := range profiles {
		if !seen[p.Bench] {
			seen[p.Bench] = true
			names = append(names, p.Bench)
		}
	}
	return names
}

// geomeanOverheadPct computes, for one benchmark and condition, the geomean
// over its inputs of metric ratios versus baseline, as a percentage.
func geomeanOverheadPct(profiles []spec.Profile, m map[string]map[string][]*harness.Result,
	bench, cond string, metric func([]*harness.Result) float64) float64 {
	var ratios []float64
	for _, p := range profiles {
		if p.Bench != bench {
			continue
		}
		base := metric(m[p.Name()]["Baseline"])
		test := metric(m[p.Name()][cond])
		ratios = append(ratios, metrics.Ratio(test, base))
	}
	return (metrics.Geomean(ratios) - 1) * 100
}

// fig1Build reproduces Figure 1: wall-clock overheads of Reloaded,
// Cornucopia and CHERIvoke over the CHERI spatially-safe baseline, per SPEC
// benchmark (geomean over inputs).
func fig1Build(o Options, g Getter) (*harness.Table, error) {
	profiles := spec.Profiles()
	conds := harness.SweepConditions()
	m, err := specMatrix(g, profiles, conds, o.SpecCfg, o.Reps)
	if err != nil {
		return nil, err
	}
	t := &harness.Table{
		Title:  "Figure 1: SPEC CPU2006 INT wall-clock overheads vs CHERI baseline",
		Header: []string{"benchmark", "Reloaded", "Cornucopia", "CHERIvoke"},
	}
	for _, bench := range benchNames(profiles) {
		row := []string{bench}
		for _, c := range conds {
			row = append(row, pct(geomeanOverheadPct(profiles, m, bench, c.Name, harness.MeanWall)))
		}
		t.AddRow(row...)
	}
	t.AddNote("bzip2 and sjeng do not engage revocation and are excluded from subsequent figures")
	return t, nil
}

// fig2Build reproduces Figure 2: total CPU-time overheads (all cores),
// including asynchronous quarantine management (Paint+sync).
func fig2Build(o Options, g Getter) (*harness.Table, error) {
	profiles := spec.RevocationEngaging()
	conds := harness.StandardConditions()
	m, err := specMatrix(g, profiles, conds, o.SpecCfg, o.Reps)
	if err != nil {
		return nil, err
	}
	t := &harness.Table{
		Title:  "Figure 2: SPEC total CPU-time overheads (all cores)",
		Header: []string{"benchmark", "Reloaded", "Cornucopia", "CHERIvoke", "Paint+sync"},
	}
	for _, bench := range benchNames(profiles) {
		row := []string{bench}
		for _, c := range conds {
			row = append(row, pct(geomeanOverheadPct(profiles, m, bench, c.Name, harness.MeanCPU)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// fig3Build reproduces Figure 3: peak-RSS ratio between test condition and
// baseline, sorted descending by baseline RSS.
func fig3Build(o Options, g Getter) (*harness.Table, error) {
	profiles := []spec.Profile{}
	for _, name := range []string{"xalancbmk", "omnetpp", "astar", "libquantum", "gobmk", "hmmer"} {
		profiles = append(profiles, spec.ByName(name)[0])
	}
	conds := harness.StandardConditions()
	m, err := specMatrix(g, profiles, conds, o.SpecCfg, o.Reps)
	if err != nil {
		return nil, err
	}
	type row struct {
		name    string
		baseMiB float64
		ratios  []float64
	}
	var rows []row
	for _, p := range profiles {
		base := harness.MeanRSS(m[p.Name()]["Baseline"])
		r := row{name: p.Name(), baseMiB: base * 4096 / (1 << 20)}
		for _, c := range conds {
			r.ratios = append(r.ratios, metrics.Ratio(harness.MeanRSS(m[p.Name()][c.Name]), base))
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].baseMiB > rows[j].baseMiB })
	t := &harness.Table{
		Title:  "Figure 3: peak memory footprint (RSS) ratio vs baseline",
		Header: []string{"benchmark", "baseRSS", "Reloaded", "Cornucopia", "CHERIvoke", "Paint+sync"},
	}
	for _, r := range rows {
		cells := []string{r.name, fmt.Sprintf("%.1fMiB", r.baseMiB)}
		for _, v := range r.ratios {
			cells = append(cells, f3(v))
		}
		t.AddRow(cells...)
	}
	t.AddNote("policy target is 1.33x (33%% of the heap in quarantine); small-heap benchmarks are dominated by the scaled 8 MiB quarantine floor")
	return t, nil
}

// fig4Build reproduces Figure 4: DRAM bus traffic overheads, with
// Reloaded's mean traffic as a percentage of Cornucopia's.
func fig4Build(o Options, g Getter) (*harness.Table, error) {
	profiles := spec.RevocationEngaging()
	conds := harness.SweepConditions()
	m, err := specMatrix(g, profiles, conds, o.SpecCfg, o.Reps)
	if err != nil {
		return nil, err
	}
	t := &harness.Table{
		Title:  "Figure 4: SPEC DRAM bus traffic overheads",
		Header: []string{"benchmark", "baseGTx", "Reloaded", "Cornucopia", "CHERIvoke", "Rel/Cor"},
	}
	var relCorRatios []float64
	for _, bench := range benchNames(profiles) {
		var baseTx float64
		for _, p := range profiles {
			if p.Bench == bench {
				baseTx += harness.MeanDRAM(m[p.Name()]["Baseline"])
			}
		}
		row := []string{bench, fmt.Sprintf("%.2g", baseTx/1e9)}
		for _, c := range conds {
			row = append(row, pct(geomeanOverheadPct(profiles, m, bench, c.Name, harness.MeanDRAM)))
		}
		rel := geomeanOverheadPct(profiles, m, bench, "Reloaded", harness.MeanDRAM)
		cor := geomeanOverheadPct(profiles, m, bench, "Cornucopia", harness.MeanDRAM)
		ratio := metrics.Ratio(rel, cor)
		relCorRatios = append(relCorRatios, ratio)
		row = append(row, fmt.Sprintf("%.0f%%", ratio*100))
		t.AddRow(row...)
	}
	sort.Float64s(relCorRatios)
	t.AddNote("median Reloaded traffic overhead relative to Cornucopia: %.0f%% (paper: 87%%)",
		relCorRatios[len(relCorRatios)/2]*100)
	return t, nil
}

// fig5Build reproduces Figure 5: normalized time overheads for pgbench:
// wall clock, total CPU (all cores), and the server thread alone.
func fig5Build(o Options, g Getter) (*harness.Table, error) {
	m, err := pgbenchMatrix(g, o.Txs, o.PgCfg, o.Reps)
	if err != nil {
		return nil, err
	}
	t := &harness.Table{
		Title:  "Figure 5: pgbench normalized time overheads",
		Header: []string{"condition", "wall", "totalCPU", "serverCPU"},
	}
	serverCPU := func(rs []*harness.Result) float64 {
		var s metrics.Samples
		for _, r := range rs {
			s.AddU(r.AppCPUCycles)
		}
		return s.Mean()
	}
	base := m["Baseline"]
	for _, c := range harness.StandardConditions() {
		rs := m[c.Name]
		t.AddRow(c.Name,
			pct(metrics.Overhead(harness.MeanWall(rs), harness.MeanWall(base))),
			pct(metrics.Overhead(harness.MeanCPU(rs), harness.MeanCPU(base))),
			pct(metrics.Overhead(serverCPU(rs), serverCPU(base))))
	}
	t.AddNote("the workload is not steadily CPU-bound: server CPU overheads can exceed wall overheads (§5.2)")
	return t, nil
}

// fig6Build reproduces Figure 6: normalized bus access overheads for
// pgbench, total and on the application core.
func fig6Build(o Options, g Getter) (*harness.Table, error) {
	cfg := o.PgCfg
	m, err := pgbenchMatrix(g, o.Txs, cfg, o.Reps)
	if err != nil {
		return nil, err
	}
	appCore := cfg.AppCores
	if len(appCore) == 0 {
		appCore = []int{3}
	}
	coreDRAM := func(rs []*harness.Result) float64 {
		var s metrics.Samples
		for _, r := range rs {
			s.AddU(r.DRAMByCore[appCore[0]])
		}
		return s.Mean()
	}
	revokerDRAM := func(rs []*harness.Result) float64 {
		var s metrics.Samples
		for _, r := range rs {
			s.AddU(r.DRAMByAgent[bus.AgentRevoker])
		}
		return s.Mean()
	}
	t := &harness.Table{
		Title:  "Figure 6: pgbench normalized bus access overheads",
		Header: []string{"condition", "total", "appCore", "sweepTraffic"},
	}
	base := m["Baseline"]
	for _, c := range harness.StandardConditions() {
		rs := m[c.Name]
		t.AddRow(c.Name,
			pct(metrics.Overhead(harness.MeanDRAM(rs), harness.MeanDRAM(base))),
			pct(metrics.Overhead(coreDRAM(rs), coreDRAM(base))),
			fmt.Sprintf("%.1f%%", 100*revokerDRAM(rs)/harness.MeanDRAM(base)))
	}
	relOv := metrics.Overhead(harness.MeanDRAM(m["Reloaded"]), harness.MeanDRAM(base))
	corOv := metrics.Overhead(harness.MeanDRAM(m["Cornucopia"]), harness.MeanDRAM(base))
	t.AddNote("Reloaded incurs %.0f%% of Cornucopia's traffic overhead (paper: <50%%)", 100*metrics.Ratio(relOv, corOv))
	t.AddNote("at 1/8 scale, quarantine cache effects dominate both strategies' traffic and Cornucopia's STW re-sweep collapses; the paper's pgbench traffic gap does not reproduce here (it does across SPEC, Figure 4)")
	return t, nil
}

// Fig7Samples collects the per-transaction latency samples per condition
// (in milliseconds), for plotting Figure 7's CDF directly.
func Fig7Samples(o Options, g Getter) (map[string]*metrics.Samples, error) {
	m, err := pgbenchMatrix(g, o.Txs, o.PgCfg, o.Reps)
	if err != nil {
		return nil, err
	}
	out := map[string]*metrics.Samples{}
	for name, rs := range m {
		lat := &metrics.Samples{}
		for _, r := range rs {
			lat.Merge(r.Lat.Scaled(r.HzGHz * 1e6)) // cycles → ms
		}
		out[name] = lat
	}
	return out, nil
}

// fig7Build reproduces Figure 7: the per-transaction latency distribution
// per condition, with the median world-stopped durations and Reloaded's
// median cumulative fault-handling time.
func fig7Build(o Options, g Getter) (*harness.Table, error) {
	m, err := pgbenchMatrix(g, o.Txs, o.PgCfg, o.Reps)
	if err != nil {
		return nil, err
	}
	t := &harness.Table{
		Title:  "Figure 7: pgbench per-transaction latency distribution (ms)",
		Header: []string{"condition", "p50", "p85", "p90", "p95", "p99", "p99.9", "max"},
	}
	order := []string{"Paint+sync", "CHERIvoke", "Cornucopia", "Reloaded"}
	for _, name := range order {
		rs := m[name]
		lat := &metrics.Samples{}
		for _, r := range rs {
			lat.Merge(r.Lat)
		}
		hz := cyclesPerMs(rs)
		row := []string{name}
		for _, p := range []float64{50, 85, 90, 95, 99, 99.9, 100} {
			row = append(row, pctCell(lat, p, hz))
		}
		t.AddRow(row...)
	}
	// Phase medians (the dashed/dotted segments of the figure).
	for _, name := range []string{"CHERIvoke", "Cornucopia", "Reloaded"} {
		stw := &metrics.Samples{}
		faults := &metrics.Samples{}
		for _, r := range m[name] {
			for _, e := range r.Epochs {
				stw.AddU(e.STWCycles)
				faults.AddU(e.FaultCycles)
			}
		}
		hz := cyclesPerMs(m[name])
		stwMed, ok := stw.MedianOK()
		switch {
		case !ok:
			t.AddNote("%s recorded no revocation epochs", name)
		case name == "Reloaded":
			fltMed, _ := faults.MedianOK()
			t.AddNote("%s median world-stopped %.4f ms; median cumulative fault time %.4f ms",
				name, stwMed/hz, fltMed/hz)
		default:
			t.AddNote("%s median world-stopped %.4f ms", name, stwMed/hz)
		}
	}
	return t, nil
}

// cyclesPerMs reads the cell's clock rate, defaulting to the standard
// 2.5 GHz machine when the cell is empty.
func cyclesPerMs(rs []*harness.Result) float64 {
	if len(rs) > 0 && rs[0].HzGHz != 0 {
		return rs[0].HzGHz * 1e6
	}
	return 2.5e6
}

// pctCell renders percentile p of lat in milliseconds at hz cycles/ms,
// or "--" when the cell holds no samples.
func pctCell(lat *metrics.Samples, p, hz float64) string {
	v, ok := lat.PercentileOK(p)
	if !ok {
		return "--"
	}
	return f3(v / hz)
}

// table1Build reproduces Table 1: pgbench latency percentiles under
// fixed-rate schedules. Rates are chosen as the paper's fractions of the
// measured unscheduled throughput, so the rated grid is adaptive: its jobs
// are derived from the unscheduled stage's (deterministic) results, which
// keeps their content hashes stable across resumes.
func table1Build(o Options, g Getter) (*harness.Table, error) {
	cfg, txs, reps := o.PgCfg, o.Txs, o.Reps
	cond := harness.Condition{Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded, RevokerCores: []int{2}}
	un, err := collect(g, repeatJobs(PgbenchWorkload(txs), cond, cfg, reps, strideRepeat))
	if err != nil {
		return nil, err
	}
	unTPS := float64(txs) / un[0].Seconds(un[0].WallCycles)
	t := &harness.Table{
		Title:  "Table 1: pgbench latency percentiles (ms) under fixed-rate schedules (Reloaded)",
		Header: []string{"tx/sec", "p50", "p90", "p95", "p99", "p99.9"},
	}
	addRow := func(label string, rs []*harness.Result) {
		lat := &metrics.Samples{}
		for _, r := range rs {
			lat.Merge(r.Lat)
		}
		hz := cyclesPerMs(rs)
		row := []string{label}
		for _, p := range []float64{50, 90, 95, 99, 99.9} {
			row = append(row, pctCell(lat, p, hz))
		}
		t.AddRow(row...)
	}
	fracs := []float64{0.35, 0.53, 0.88}
	rated := make([][]Job, len(fracs))
	for i, frac := range fracs {
		rated[i] = repeatJobs(PgbenchRatedWorkload(txs, unTPS*frac), cond, cfg, reps, strideRepeat)
		g.Prefetch(rated[i])
	}
	for i, frac := range fracs {
		rs, err := collect(g, rated[i])
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("%.0f", unTPS*frac), rs)
	}
	addRow("unscheduled", un)
	t.AddNote("rates are 35%%/53%%/88%% of the measured unscheduled throughput (%.0f tx/s), matching the paper's 100/150/250 of ~285", unTPS)
	return t, nil
}

// fig8Build reproduces Figure 8: gRPC QPS latency percentiles normalized
// to the no-revocation baseline, plus throughput impact.
func fig8Build(o Options, g Getter) (*harness.Table, error) {
	cfg := o.QPSCfg
	pcts := []float64{50, 90, 95, 99, 99.9}
	wref := QPSWorkload(o.Measure, o.Warmup)
	conds := append([]harness.Condition{harness.Baseline()}, harness.QPSConditions()...)
	grids := make([][]Job, len(conds))
	for i, c := range conds {
		grids[i] = repeatJobs(wref, c, cfg, o.Reps, strideQPS)
		g.Prefetch(grids[i])
	}
	type cellSamples struct{ perRun map[float64]*metrics.Samples }
	runCond := func(jobs []Job) (*cellSamples, *metrics.Samples, error) {
		cs := &cellSamples{perRun: map[float64]*metrics.Samples{}}
		for _, p := range pcts {
			cs.perRun[p] = &metrics.Samples{}
		}
		tput := &metrics.Samples{}
		for _, j := range jobs {
			jr, err := g.Get(j)
			if err != nil {
				return nil, nil, err
			}
			r := jr.Harness()
			for _, p := range pcts {
				// A run with no measured events contributes no percentile
				// samples (instead of panicking the whole figure).
				if v, ok := r.Lat.PercentileOK(p); ok {
					cs.perRun[p].Add(v)
				}
			}
			tput.Add(float64(jr.Messages) / jr.Seconds(jr.MeasureCycles))
		}
		return cs, tput, nil
	}
	baseCS, baseTput, err := runCond(grids[0])
	if err != nil {
		return nil, err
	}
	t := &harness.Table{
		Title:  "Figure 8: gRPC QPS latency percentiles normalized to baseline",
		Header: []string{"condition", "p50", "p90", "p95", "p99", "p99.9", "QPS delta"},
	}
	baseRow := []string{"Baseline(ms)"}
	hz := 2.5e6 // cycles per ms at 2.5 GHz
	if cfg.Machine.Sim.HzGHz != 0 {
		hz = cfg.Machine.Sim.HzGHz * 1e6
	}
	for _, p := range pcts {
		baseRow = append(baseRow, f3(baseCS.perRun[p].Mean()/hz))
	}
	baseRow = append(baseRow, "--")
	t.AddRow(baseRow...)
	for i, c := range conds[1:] {
		cs, tput, err := runCond(grids[i+1])
		if err != nil {
			return nil, err
		}
		row := []string{c.Name}
		for _, p := range pcts {
			row = append(row, fmt.Sprintf("%.2fx", metrics.Ratio(cs.perRun[p].Mean(), baseCS.perRun[p].Mean())))
		}
		row = append(row, pct(metrics.Overhead(tput.Mean(), baseTput.Mean())))
		t.AddRow(row...)
	}
	t.AddNote("CHERIvoke is excluded, as in the paper (footnote 25); the revoker is unpinned and competes with the server")
	return t, nil
}

// phaseRows summarizes one workload's revocation phase durations under the
// three sweeping strategies (Figure 9's boxes): five-number summaries in
// milliseconds.
func phaseRows(t *harness.Table, label string, results map[string][]*harness.Result) {
	box := func(s *metrics.Samples, hz float64) string {
		if s.N() == 0 {
			return "--"
		}
		b := s.Boxplot()
		return fmt.Sprintf("%.3f/%.3f/%.3f/%.3f/%.3f", b.Min/hz, b.P25/hz, b.Median/hz, b.P75/hz, b.Max/hz)
	}
	collect := func(cond string, f func(revoke.EpochRecord) uint64) (*metrics.Samples, float64) {
		s := &metrics.Samples{}
		hz := 2.5e6
		for _, r := range results[cond] {
			hz = r.HzGHz * 1e6
			for _, e := range r.Epochs {
				s.AddU(f(e))
			}
		}
		return s, hz
	}
	stw := func(e revoke.EpochRecord) uint64 { return e.STWCycles }
	conc := func(e revoke.EpochRecord) uint64 { return e.ConcurrentCycles }
	flt := func(e revoke.EpochRecord) uint64 { return e.FaultCycles }

	s, hz := collect("CHERIvoke", stw)
	t.AddRow(label, "CHERIvoke", "stop-the-world", box(s, hz))
	s, hz = collect("Cornucopia", conc)
	t.AddRow(label, "Cornucopia", "concurrent", box(s, hz))
	s, hz = collect("Cornucopia", stw)
	t.AddRow(label, "Cornucopia", "stop-the-world", box(s, hz))
	s, hz = collect("Reloaded", stw)
	t.AddRow(label, "Reloaded", "stop-the-world", box(s, hz))
	s, hz = collect("Reloaded", conc)
	t.AddRow(label, "Reloaded", "concurrent", box(s, hz))
	s, hz = collect("Reloaded", flt)
	t.AddRow(label, "Reloaded", "faults (cum/epoch)", box(s, hz))
}

// fig9Scales derives the pgbench and gRPC configurations from the SPEC
// scale, as Figure 9 and Table 2 always have.
func fig9Scales(cfg harness.Config) (pgCfg, qpsCfg harness.Config) {
	pgCfg = harness.PgbenchConfig()
	qpsCfg = harness.QPSConfig()
	if cfg.Scale != 0 && cfg.Scale != 64 {
		pgCfg.Scale = cfg.Scale / 8
		if pgCfg.Scale == 0 {
			pgCfg.Scale = 1
		}
		qpsCfg.Scale = cfg.Scale
	}
	return pgCfg, qpsCfg
}

// fig9Build reproduces Figure 9: revocation phase time distributions for a
// representative subset of benchmarks.
func fig9Build(o Options, g Getter) (*harness.Table, error) {
	cfg := o.SpecCfg
	pgCfg, qpsCfg := fig9Scales(cfg)
	t := &harness.Table{
		Title:  "Figure 9: revocation phase times, min/p25/median/p75/max (ms)",
		Header: []string{"benchmark", "strategy", "phase", "distribution(ms)"},
	}
	subset := []string{"xalancbmk", "astar", "omnetpp", "hmmer", "gobmk", "libquantum"}
	// Schedule the entire grid before collecting any of it.
	specJobs := map[string]map[string][]Job{}
	for _, name := range subset {
		p := spec.ByName(name)[0]
		specJobs[name] = map[string][]Job{}
		for _, c := range harness.SweepConditions() {
			jobs := repeatJobs(SpecWorkload(p.Name()), c, cfg, o.Reps, strideRepeat)
			g.Prefetch(jobs)
			specJobs[name][c.Name] = jobs
		}
	}
	pgJobs := map[string][]Job{}
	for _, c := range harness.SweepConditions() {
		jobs := repeatJobs(PgbenchWorkload(3000), c, pgCfg, o.Reps, strideRepeat)
		g.Prefetch(jobs)
		pgJobs[c.Name] = jobs
	}
	// gRPC rows (revoker unpinned; CHERIvoke excluded as in the paper).
	qpsJobs := map[string][]Job{}
	for _, c := range harness.QPSConditions() {
		if !c.Shimmed || c.Strategy == revoke.PaintSync {
			continue
		}
		jobs := repeatJobs(QPSWorkload(1_000_000_000, 100_000_000), c, qpsCfg, o.Reps, strideQPS9)
		g.Prefetch(jobs)
		qpsJobs[c.Name] = jobs
	}

	collectMap := func(jobs map[string][]Job) (map[string][]*harness.Result, error) {
		out := map[string][]*harness.Result{}
		for name, js := range jobs {
			rs, err := collect(g, js)
			if err != nil {
				return nil, err
			}
			out[name] = rs
		}
		return out, nil
	}
	for _, name := range subset {
		results, err := collectMap(specJobs[name])
		if err != nil {
			return nil, err
		}
		phaseRows(t, spec.ByName(name)[0].Name(), results)
	}
	pgResults, err := collectMap(pgJobs)
	if err != nil {
		return nil, err
	}
	phaseRows(t, "pgbench", pgResults)
	qpsResults, err := collectMap(qpsJobs)
	if err != nil {
		return nil, err
	}
	phaseRows(t, "gRPC QPS", qpsResults)
	t.AddNote("gRPC QPS CHERIvoke is absent, as in the paper")
	return t, nil
}

// table2Build reproduces Table 2: Reloaded revocation-rate statistics for
// the representative subset.
func table2Build(o Options, g Getter) (*harness.Table, error) {
	cfg := o.SpecCfg
	pgCfg, qpsCfg := fig9Scales(cfg)
	t := &harness.Table{
		Title: "Table 2: Reloaded revocation rate statistics",
		Header: []string{"benchmark", "meanAlloc(MiB)", "sumFreed(MiB)", "F:A",
			"revocations", "rev/sec"},
	}
	cond := harness.Condition{Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded, RevokerCores: []int{2}}
	subset := []string{"xalancbmk", "astar", "omnetpp", "hmmer", "gobmk"}
	specJobs := make([][]Job, len(subset))
	for i, name := range subset {
		specJobs[i] = repeatJobs(SpecWorkload(spec.ByName(name)[0].Name()), cond, cfg, o.Reps, strideRepeat)
		g.Prefetch(specJobs[i])
	}
	pgJobs := repeatJobs(PgbenchWorkload(3000), cond, pgCfg, o.Reps, strideRepeat)
	g.Prefetch(pgJobs)
	qpsCond := cond
	qpsCond.RevokerCores = nil
	qpsJobs := repeatJobs(QPSWorkload(1_000_000_000, 100_000_000), qpsCond, qpsCfg, o.Reps, strideQPS2)
	g.Prefetch(qpsJobs)

	addRow := func(name string, rs []*harness.Result) {
		var alloc, freed, revs, revPerSec metrics.Samples
		for _, r := range rs {
			if r.Quar.LiveAtTriggerCount > 0 {
				alloc.Add(float64(r.Quar.LiveAtTriggerSum) / float64(r.Quar.LiveAtTriggerCount))
			}
			freed.AddU(r.Quar.TotalQuarantined)
			revs.Add(float64(len(r.Epochs)))
			revPerSec.Add(float64(len(r.Epochs)) / r.Seconds(r.WallCycles))
		}
		meanAllocMiB := 0.0
		if alloc.N() > 0 {
			meanAllocMiB = alloc.Mean() / (1 << 20)
		}
		fa := 0.0
		if alloc.N() > 0 && alloc.Mean() > 0 {
			fa = freed.Mean() / alloc.Mean()
		}
		t.AddRow(name, f2(meanAllocMiB), f1(freed.Mean()/(1<<20)), f1(fa),
			f1(revs.Mean()), f2(revPerSec.Mean()))
	}
	for i, name := range subset {
		rs, err := collect(g, specJobs[i])
		if err != nil {
			return nil, err
		}
		addRow(spec.ByName(name)[0].Name(), rs)
	}
	rs, err := collect(g, pgJobs)
	if err != nil {
		return nil, err
	}
	addRow("pgbench", rs)
	qrs, err := collect(g, qpsJobs)
	if err != nil {
		return nil, err
	}
	addRow("gRPC QPS", qrs)
	t.AddNote("footprints scaled by 1/64 (pgbench 1/8) and churn by a further 1/8; F:A orderings are preserved, absolute rev/sec compresses (see EXPERIMENTS.md)")
	return t, nil
}

// heapscaleBuild builds the heap-scale axis (not a paper figure): a
// million-allocation, GB-scale heap (at scale 1) under the three sweeping
// strategies, reporting wall, total-CPU and peak-RSS overheads plus the
// revocation count. This is the extent-stress companion to the rate-stress
// SPEC grid — the regime where sweep and allocation costs are dominated by
// how *much* memory is live rather than how fast it churns.
func heapscaleBuild(o Options, g Getter) (*harness.Table, error) {
	w := heapscale.New(1<<20, 1<<18)
	cfg := o.SpecCfg
	if cfg.Scale == 0 {
		cfg.Scale = 64
	}
	if mf := w.MaxFrames(cfg.Scale); mf > cfg.Machine.MaxFrames {
		cfg.Machine.MaxFrames = mf
	}
	wref := HeapScaleWorkload(w.LiveAllocs, w.ChurnOps)
	conds := append([]harness.Condition{harness.Baseline()}, harness.SweepConditions()...)
	grids := make([][]Job, len(conds))
	for i, c := range conds {
		grids[i] = repeatJobs(wref, c, cfg, o.Reps, strideRepeat)
		g.Prefetch(grids[i])
	}
	var base []*harness.Result
	t := &harness.Table{
		Title:  "Heap scale: million-allocation heap overheads vs CHERI baseline",
		Header: []string{"condition", "wall", "totalCPU", "peakRSS", "revocations"},
	}
	for i, c := range conds {
		rs, err := collect(g, grids[i])
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = rs
			t.AddRow("Baseline", "--", "--",
				fmt.Sprintf("%.1fMiB", harness.MeanRSS(rs)*4096/(1<<20)), "--")
			continue
		}
		var revs metrics.Samples
		for _, r := range rs {
			revs.Add(float64(len(r.Epochs)))
		}
		t.AddRow(c.Name,
			pct(metrics.Overhead(harness.MeanWall(rs), harness.MeanWall(base))),
			pct(metrics.Overhead(harness.MeanCPU(rs), harness.MeanCPU(base))),
			f3(metrics.Ratio(harness.MeanRSS(rs), harness.MeanRSS(base))),
			f1(revs.Mean()))
	}
	t.AddNote("full scale is 2^20 live allocations (~1 GiB heap); the run divides by Scale (%d here)", cfg.Scale)
	return t, nil
}
