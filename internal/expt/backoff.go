package expt

import "time"

// Backoff is the unified retry-spacing policy shared by the local pool's
// job retries and internal/dist's degraded-mode paths (worker hello,
// lease polling after transport failures, result delivery). Delays grow
// geometrically from Base by Factor, capped at Max, with deterministic
// seed-keyed jitter so a fleet of retriers spreads out without losing
// run-to-run reproducibility: the same (Seed, attempt) always yields the
// same delay.
type Backoff struct {
	// Base is the first retry's delay; zero disables backoff entirely
	// (every Delay is 0).
	Base time.Duration
	// Factor multiplies the delay per attempt (<=1 means constant Base).
	Factor float64
	// Max caps the un-jittered delay (0 = uncapped).
	Max time.Duration
	// Jitter adds up to this fraction of the computed delay, keyed by
	// (Seed, attempt) through the same splitmix avalanche the fault
	// injectors use. 0 = no jitter; values are clamped to [0, 1].
	Jitter float64
	// Seed keys the jitter stream.
	Seed int64
}

// backoffMix is the splitmix64-style avalanche shared with the fault
// injectors, duplicated here to keep expt free of fault imports.
func backoffMix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Delay returns how long to wait before the given retry attempt
// (attempt 1 = the first retry). Attempts below 1 and a zero Base yield 0.
func (b Backoff) Delay(attempt int) time.Duration {
	if attempt < 1 || b.Base <= 0 {
		return 0
	}
	d := float64(b.Base)
	if b.Factor > 1 {
		for i := 1; i < attempt; i++ {
			d *= b.Factor
			if b.Max > 0 && d >= float64(b.Max) {
				break
			}
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if j := b.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		u := float64(backoffMix(uint64(b.Seed), uint64(attempt))>>11) / float64(1<<53)
		d += d * j * u
	}
	return time.Duration(d)
}

// Sleep waits Delay(attempt), returning early (false) if stop closes.
// A nil stop channel never fires.
func (b Backoff) Sleep(attempt int, stop <-chan struct{}) bool {
	d := b.Delay(attempt)
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}
