package expt

import (
	"repro/internal/alloc"
	"repro/internal/bus"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/oracle"
	"repro/internal/quarantine"
	"repro/internal/revoke"
	"repro/internal/telemetry"
)

// agents lists the bus agents a Result reports traffic for, in a stable
// order; JSON keys use their String names so the schema outlives the
// numeric constants.
var agents = []bus.Agent{bus.AgentApp, bus.AgentAlloc, bus.AgentRevoker, bus.AgentKernel}

// JobResult is the serializable form of everything one run measured: a
// harness.Result flattened to plain data (plus the qps workload's own
// outputs), so it can live in a manifest and round-trip through JSON
// without loss. float64 fields round-trip exactly (Go emits the shortest
// representation that parses back to the same value), so tables built
// from manifest-loaded results are byte-identical to freshly-run ones.
type JobResult struct {
	Workload  string `json:"workload"`
	Condition string `json:"condition"`
	Seed      int64  `json:"seed"`

	WallCycles   uint64 `json:"wall_cycles"`
	CPUCycles    uint64 `json:"cpu_cycles"`
	AppCPUCycles uint64 `json:"app_cpu_cycles"`

	DRAMTotal   uint64            `json:"dram_total"`
	DRAMByAgent map[string]uint64 `json:"dram_by_agent,omitempty"`
	DRAMByCore  []uint64          `json:"dram_by_core,omitempty"`

	PeakRSSPages int `json:"peak_rss_pages"`

	Proc   kernel.ProcStats     `json:"proc"`
	Heap   alloc.Stats          `json:"heap"`
	Quar   quarantine.Stats     `json:"quarantine"`
	Epochs []revoke.EpochRecord `json:"epochs,omitempty"`

	// Fault, Oracle, and Recovery carry the fault-campaign outputs
	// (cmd/chaos); all nil outside campaigns.
	Fault    *fault.Report         `json:"fault,omitempty"`
	Oracle   *oracle.Report        `json:"oracle,omitempty"`
	Recovery *revoke.RecoveryStats `json:"recovery,omitempty"`

	// LatCycles holds the per-event latency samples, in cycles.
	LatCycles []float64 `json:"lat_cycles,omitempty"`

	HzGHz float64 `json:"hz_ghz"`

	// Messages and MeasureCycles are the qps workload's throughput
	// outputs (zero for other workloads).
	Messages      uint64 `json:"messages,omitempty"`
	MeasureCycles uint64 `json:"measure_cycles,omitempty"`

	// Telem is the run's telemetry snapshot (profile + metrics) when the
	// pool ran with PoolConfig.Telemetry; nil otherwise. It rides the
	// manifest, so resumed sweeps keep their profiles.
	Telem *telemetry.Snapshot `json:"telem,omitempty"`
}

// FromHarness flattens a harness result.
func FromHarness(r *harness.Result, seed int64) *JobResult {
	jr := &JobResult{
		Workload:     r.Workload,
		Condition:    r.Condition,
		Seed:         seed,
		WallCycles:   r.WallCycles,
		CPUCycles:    r.CPUCycles,
		AppCPUCycles: r.AppCPUCycles,
		DRAMTotal:    r.DRAMTotal,
		DRAMByCore:   r.DRAMByCore,
		PeakRSSPages: r.PeakRSSPages,
		Proc:         r.Proc,
		Heap:         r.Heap,
		Quar:         r.Quar,
		Epochs:       r.Epochs,
		HzGHz:        r.HzGHz,
	}
	if len(r.DRAMByAgent) > 0 {
		jr.DRAMByAgent = make(map[string]uint64, len(r.DRAMByAgent))
		for _, a := range agents {
			jr.DRAMByAgent[a.String()] = r.DRAMByAgent[a]
		}
	}
	if r.Lat != nil && r.Lat.N() > 0 {
		jr.LatCycles = append([]float64(nil), r.Lat.Values()...)
	}
	jr.Fault = r.Fault
	jr.Oracle = r.Oracle
	if r.Recovery.Total() > 0 {
		rec := r.Recovery
		jr.Recovery = &rec
	}
	return jr
}

// Harness reconstructs the harness view the figure aggregators consume.
func (jr *JobResult) Harness() *harness.Result {
	r := &harness.Result{
		Workload:     jr.Workload,
		Condition:    jr.Condition,
		WallCycles:   jr.WallCycles,
		CPUCycles:    jr.CPUCycles,
		AppCPUCycles: jr.AppCPUCycles,
		DRAMTotal:    jr.DRAMTotal,
		DRAMByCore:   jr.DRAMByCore,
		PeakRSSPages: jr.PeakRSSPages,
		Proc:         jr.Proc,
		Heap:         jr.Heap,
		Quar:         jr.Quar,
		Epochs:       jr.Epochs,
		Lat:          &metrics.Samples{},
		HzGHz:        jr.HzGHz,
	}
	r.DRAMByAgent = make(map[bus.Agent]uint64, len(agents))
	for _, a := range agents {
		r.DRAMByAgent[a] = jr.DRAMByAgent[a.String()]
	}
	for _, x := range jr.LatCycles {
		r.Lat.Add(x)
	}
	r.Fault = jr.Fault
	r.Oracle = jr.Oracle
	if jr.Recovery != nil {
		r.Recovery = *jr.Recovery
	}
	return r
}

// Seconds converts cycles to seconds at the run's clock.
func (jr *JobResult) Seconds(cycles uint64) float64 {
	return float64(cycles) / (jr.HzGHz * 1e9)
}
