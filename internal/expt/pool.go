package expt

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bus"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload/qps"
)

// Getter is how figure builders obtain results: Prefetch schedules a batch
// for parallel execution, Get blocks until one job's result is ready
// (scheduling it first if nobody has). A Pool is the canonical Getter.
type Getter interface {
	Prefetch(jobs []Job)
	Get(j Job) (*JobResult, error)
}

// Event reports one job's completion to a progress callback.
type Event struct {
	Key       string
	Workload  string
	Condition string
	Seed      int64
	// Status is "ran", "cached" (served from the manifest), "retry" (one
	// attempt failed and another is coming), or "failed".
	Status string
	// Attempts is how many times the job was started (>1 means retried).
	Attempts int
	// Err classifies what went wrong on "retry" and "failed" events:
	// "timeout", "panic: <first line>", or "error: <message>". Empty on
	// success.
	Err string
	// Host is the host wall-clock time the final attempt took; for
	// "cached" events it is the recorded cost of the original run (zero
	// if the manifest predates host-time recording).
	Host time.Duration
	// Done and Total count completed and submitted jobs at event time.
	// Zero on "retry" events, which do not complete the job.
	Done, Total int
}

// PoolStats summarizes a pool's lifetime activity.
type PoolStats struct {
	// Submitted counts distinct jobs; Deduped counts submissions that
	// merged into an already-submitted job.
	Submitted int `json:"submitted"`
	Deduped   int `json:"deduped"`
	// Executed ran to completion on this pool; Cached came from the
	// manifest; Failed exhausted their attempts.
	Executed int `json:"executed"`
	Cached   int `json:"cached"`
	Failed   int `json:"failed"`
	// Retries counts failed attempts that were retried.
	Retries int `json:"retries"`
}

// PoolConfig tunes a Pool.
type PoolConfig struct {
	// Workers bounds concurrently-running jobs (≤1 = sequential).
	Workers int
	// Timeout bounds one attempt's host wall-clock time (0 = unbounded).
	// A timed-out attempt's simulation goroutines are abandoned, not
	// killed: harness.Run has no cancellation, so the pool just stops
	// waiting and (if attempts remain) starts a fresh attempt.
	Timeout time.Duration
	// Retries is how many additional attempts a failed job gets.
	Retries int
	// RetryBackoff, when non-zero, delays attempt n+1 by n*RetryBackoff
	// of host time. Local pools default to immediate retry; the network
	// executor (internal/dist) uses it so a job whose worker vanished is
	// not re-issued into the same instant the fleet is churning.
	RetryBackoff time.Duration
	// Backoff, when non-nil, replaces the linear RetryBackoff spacing
	// with the unified geometric-plus-jitter policy shared with
	// internal/dist's degraded-mode retry paths.
	Backoff *Backoff
	// Manifest, when non-nil, serves completed jobs and records new ones.
	Manifest *Manifest
	// Progress, when non-nil, observes every job completion. Called
	// concurrently from worker goroutines; the pool serializes calls.
	Progress func(Event)
	// Telemetry, when non-nil, arms per-job telemetry recording: every
	// executed job runs with a fresh recorder, its snapshot is checked
	// for cycle conservation (a violation fails the job) and stored in
	// JobResult.Telem. Job keys are unaffected — telemetry never changes
	// what a run computes.
	Telemetry *telemetry.Options
	// SweepKernel selects the page-sweep implementation for every
	// executed job (zero value = the word-wise kernel). Both kernels are
	// simulated-identical, so — like Telemetry — the choice leaves job
	// keys untouched and manifest entries are kernel-agnostic.
	SweepKernel kernel.SweepKernel
	// SimEngine selects the sim execution engine for every executed job
	// (zero value = the fast engine). Engines are simulated-identical —
	// pinned by the engine-equivalence tests — so the choice leaves job
	// keys untouched and manifest entries are engine-agnostic.
	SimEngine sim.EngineKind
	// MemPath selects the memory-model host representation for every
	// executed job (zero value = the sparse fast path). Paths are
	// simulated-identical — pinned by the mem-path equivalence tests — so
	// the choice leaves job keys untouched and manifest entries are
	// path-agnostic.
	MemPath kernel.MemPath
	// Journal, when non-nil, receives the campaign's job lifecycle
	// (submit/start/retry/result). The pool is the one emission seam for
	// local runs; internal/dist's coordinator shares the same writer and
	// adds fleet-level events around these.
	Journal *journal.Writer
}

// Pool executes jobs on a bounded set of host goroutines, memoizing by job
// key: submitting the same job twice (even concurrently, from different
// figure builders) runs it once. Safe for concurrent use.
type Pool struct {
	cfg PoolConfig
	sem chan struct{}
	// run executes one attempt. The returned duration, when positive,
	// overrides the pool's own wall-clock measurement of the attempt —
	// a network backend reports the worker's actual run time, excluding
	// queue and transport. Swappable in tests and by internal/dist.
	run func(Job) (*JobResult, time.Duration, error)

	mu      sync.Mutex
	entries map[string]*entry
	stats   PoolStats
	done    int
}

type entry struct {
	job      Job
	key      string
	ready    chan struct{}
	res      *JobResult
	err      error
	attempts int
	cached   bool
	host     time.Duration
}

// NewPool returns a pool ready to accept jobs.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	p := &Pool{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		entries: map[string]*entry{},
	}
	p.run = func(j Job) (*JobResult, time.Duration, error) {
		r, err := RunJob(j, cfg.Telemetry, cfg.SweepKernel, cfg.SimEngine, cfg.MemPath)
		return r, 0, err
	}
	return p
}

// SetRun replaces the pool's execution backend. internal/dist installs
// its lease dispatcher here; everything else (dedup, manifest, retry,
// progress, stats) is shared, which is what keeps distributed documents
// identical to local ones. Call before the first submission.
func (p *Pool) SetRun(run func(Job) (*JobResult, time.Duration, error)) {
	p.run = run
}

// RunJob executes one job for real: instantiate the workload, cold-boot a
// machine, run, flatten. With telem set, the run is profiled and the
// snapshot must conserve cycles. This is the one true execution path —
// local pool workers and internal/dist network workers both call it, so
// a job computes the same result wherever it runs.
func RunJob(j Job, telem *telemetry.Options, sk kernel.SweepKernel, ek sim.EngineKind, mp kernel.MemPath) (*JobResult, error) {
	w, err := j.Workload.Instantiate()
	if err != nil {
		return nil, err
	}
	cfg := j.Cfg
	cfg.Trace = nil
	cfg.SweepKernel = sk
	cfg.SimEngine = ek
	cfg.MemPath = mp
	if telem != nil {
		cfg.Telem = telemetry.New(*telem)
		if telem.TraceEvents > 0 {
			// Per-job tracer, exported into the snapshot below. Tracing is
			// passive and Job.Key excludes Trace, so results and manifest
			// identity are unaffected.
			cfg.Trace = trace.New(telem.TraceEvents)
		}
	}
	r, err := harness.Run(w, j.Cond, cfg)
	if err != nil {
		return nil, err
	}
	jr := FromHarness(r, cfg.Seed)
	if q, ok := w.(*qps.QPS); ok {
		jr.Messages = q.Messages
		jr.MeasureCycles = q.MeasureCycles
	}
	if cfg.Telem.Enabled() {
		snap := cfg.Telem.Snapshot()
		if err := snap.CheckConservation(); err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		exportTrace(snap, cfg.Trace)
		jr.Telem = snap
	}
	return jr, nil
}

// exportTrace copies the tracer's retained ring into the snapshot so
// traces survive manifest resume and distributed result shipping. The
// ring is deterministic for a given job, so shipped traces are too.
func exportTrace(snap *telemetry.Snapshot, tr *trace.Tracer) {
	if !tr.Enabled() {
		return
	}
	for _, ev := range tr.Events() {
		snap.Trace = append(snap.Trace, telemetry.TraceSample{
			Cycle: ev.Cycle, Core: int(ev.Core),
			Agent: bus.Agent(ev.Agent).String(),
			Kind:  ev.Kind.String(), Phase: ev.Phase.String(),
			Epoch: ev.Epoch, Arg: ev.Arg, Arg2: ev.Arg2,
		})
	}
	snap.TraceDropped = tr.Dropped()
}

// Prefetch schedules jobs for execution without waiting for them.
func (p *Pool) Prefetch(jobs []Job) {
	for _, j := range jobs {
		p.submit(j)
	}
}

// Get returns j's result, scheduling it if needed and blocking until done.
func (p *Pool) Get(j Job) (*JobResult, error) {
	e := p.submit(j)
	<-e.ready
	return e.res, e.err
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Completed describes one finished job for reporting.
type Completed struct {
	Key      string
	Result   *JobResult
	Cached   bool
	Attempts int
	Host     time.Duration
}

// Results returns every successfully-completed job so far, sorted by key
// for deterministic reports.
func (p *Pool) Results() []Completed {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Completed
	for _, e := range p.entries {
		select {
		case <-e.ready:
		default:
			continue // still running
		}
		if e.err != nil {
			continue
		}
		out = append(out, Completed{Key: e.key, Result: e.res, Cached: e.cached, Attempts: e.attempts, Host: e.host})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// submit registers j and starts it (bounded by the worker semaphore)
// unless an identical job is already known.
func (p *Pool) submit(j Job) *entry {
	key := j.Key()
	p.mu.Lock()
	if e, ok := p.entries[key]; ok {
		p.stats.Deduped++
		p.mu.Unlock()
		return e
	}
	e := &entry{job: j, key: key, ready: make(chan struct{})}
	p.entries[key] = e
	p.stats.Submitted++
	p.cfg.Journal.Emit(journal.Event{
		Kind: journal.KindJobSubmit, Key: key,
		Workload: j.Workload.String(), Condition: j.Cond.Name, Seed: j.Cfg.Seed,
	})

	// Manifest hits complete immediately, without occupying a worker. The
	// recorded host time of the original run rides along, so slow cells
	// stay visible in resumed documents and on /jobs.
	if p.cfg.Manifest != nil {
		if r, host, ok := p.cfg.Manifest.Lookup(key); ok {
			e.res, e.cached, e.host = r, true, host
			p.stats.Cached++
			p.finishLocked(e, "cached")
			p.mu.Unlock()
			return e
		}
	}
	p.mu.Unlock()

	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		p.execute(e)
	}()
	return e
}

// ErrClass compresses an attempt error for progress display: a timeout, a
// panic (first line of the message, stack dropped), or a plain error.
func ErrClass(err error) string {
	if err == nil {
		return ""
	}
	msg := err.Error()
	if strings.Contains(msg, "timed out") {
		return "timeout"
	}
	if i := strings.Index(msg, "panic: "); i >= 0 {
		line := msg[i:]
		if j := strings.IndexByte(line, '\n'); j >= 0 {
			line = line[:j]
		}
		if len(line) > 120 {
			line = line[:120]
		}
		return line
	}
	if len(msg) > 120 {
		msg = msg[:120]
	}
	return "error: " + msg
}

// finishLocked closes the entry and emits its progress event. Caller holds
// p.mu.
func (p *Pool) finishLocked(e *entry, status string) {
	p.done++
	ev := Event{
		Key: e.key, Workload: e.job.Workload.String(), Condition: e.job.Cond.Name,
		Seed: e.job.Cfg.Seed, Status: status, Attempts: e.attempts, Host: e.host,
		Done: p.done, Total: p.stats.Submitted,
	}
	if status == "failed" {
		ev.Err = ErrClass(e.err)
	}
	jev := journal.Event{
		Kind: journal.KindJobResult, Key: e.key,
		Workload: e.job.Workload.String(), Condition: e.job.Cond.Name,
		Seed: e.job.Cfg.Seed, Status: status, Attempt: e.attempts,
		HostMS: float64(e.host.Microseconds()) / 1e3, Err: ev.Err,
	}
	if e.res != nil {
		jev.VCycles = e.res.WallCycles
	}
	p.cfg.Journal.Emit(jev)
	close(e.ready)
	if p.cfg.Progress != nil {
		p.cfg.Progress(ev)
	}
}

// execute runs e with retry, panic capture and per-attempt timeout.
func (p *Pool) execute(e *entry) {
	var lastErr error
	for attempt := 0; attempt <= p.cfg.Retries; attempt++ {
		if d := p.retryDelay(attempt); d > 0 {
			time.Sleep(d)
		}
		p.cfg.Journal.Emit(journal.Event{
			Kind: journal.KindJobStart, Key: e.key, Attempt: attempt + 1,
		})
		start := time.Now()
		res, runHost, err := p.attempt(e.job)
		host := time.Since(start)
		if runHost > 0 {
			host = runHost
		}
		if err == nil {
			// Record before publishing, outside the pool lock (the
			// manifest serializes itself, and marshal of a large result
			// is slow): once Get observes completion, the job is durably
			// on the manifest.
			if p.cfg.Manifest != nil {
				if rerr := p.cfg.Manifest.Record(e.key, res, host); rerr != nil {
					// The run succeeded; a manifest write failure only
					// costs resumability. Surface it via progress, under
					// p.mu like every other emission — callbacks must
					// never run concurrently with each other.
					if p.cfg.Progress != nil {
						p.mu.Lock()
						p.cfg.Progress(Event{Key: e.key, Status: "manifest-error: " + rerr.Error()})
						p.mu.Unlock()
					}
				}
			}
			p.mu.Lock()
			e.attempts = attempt + 1
			e.host = host
			e.res = res
			p.stats.Executed++
			p.finishLocked(e, "ran")
			p.mu.Unlock()
			return
		}
		lastErr = err
		p.mu.Lock()
		e.attempts = attempt + 1
		e.host = host
		willRetry := attempt < p.cfg.Retries
		if willRetry {
			p.stats.Retries++
			p.cfg.Journal.Emit(journal.Event{
				Kind: journal.KindJobRetry, Key: e.key, Attempt: attempt + 1,
				Err: ErrClass(err), HostMS: float64(host.Microseconds()) / 1e3,
			})
			// Emit while still holding p.mu: finishLocked emits under the
			// lock, so releasing it first would let a retry event race a
			// concurrent completion into the callback.
			if p.cfg.Progress != nil {
				p.cfg.Progress(Event{
					Key: e.key, Workload: e.job.Workload.String(), Condition: e.job.Cond.Name,
					Seed: e.job.Cfg.Seed, Status: "retry", Attempts: attempt + 1,
					Err: ErrClass(err), Host: host,
				})
			}
		}
		p.mu.Unlock()
	}
	p.mu.Lock()
	e.err = fmt.Errorf("expt: job %.12s (%s under %s, seed %d) failed after %d attempt(s): %w",
		e.key, e.job.Workload, e.job.Cond.Name, e.job.Cfg.Seed, e.attempts, lastErr)
	p.stats.Failed++
	p.finishLocked(e, "failed")
	p.mu.Unlock()
}

// retryDelay spaces retry attempt n (n >= 1): the unified Backoff policy
// when configured, else the legacy linear n*RetryBackoff spacing.
func (p *Pool) retryDelay(attempt int) time.Duration {
	if attempt < 1 {
		return 0
	}
	if p.cfg.Backoff != nil {
		return p.cfg.Backoff.Delay(attempt)
	}
	if p.cfg.RetryBackoff > 0 {
		return time.Duration(attempt) * p.cfg.RetryBackoff
	}
	return 0
}

// attempt runs the job once, converting panics to errors and enforcing the
// per-attempt timeout. The returned duration is the backend's own host
// cost measurement when it has one (see Pool.run), zero otherwise.
func (p *Pool) attempt(j Job) (*JobResult, time.Duration, error) {
	type outcome struct {
		res  *JobResult
		host time.Duration
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("panic: %v\n%s", r, debug.Stack())}
			}
		}()
		res, host, err := p.run(j)
		ch <- outcome{res: res, host: host, err: err}
	}()
	if p.cfg.Timeout <= 0 {
		o := <-ch
		return o.res, o.host, o.err
	}
	timer := time.NewTimer(p.cfg.Timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.host, o.err
	case <-timer.C:
		return nil, 0, fmt.Errorf("attempt timed out after %s (simulation goroutines abandoned)", p.cfg.Timeout)
	}
}
