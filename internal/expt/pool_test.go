package expt

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/revoke"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// fakeJob builds a distinct, cheap-to-hash job for pool-mechanics tests;
// the workload is never instantiated when the run function is injected.
func fakeJob(name string, seed int64) Job {
	cfg := harness.DefaultConfig()
	cfg.Seed = seed
	return Job{
		Workload: SpecWorkload(name),
		Cond:     harness.Condition{Name: "Reloaded"},
		Cfg:      cfg,
	}
}

// fakeResult returns a minimal result distinguishable by workload+seed.
func fakeResult(j Job) *JobResult {
	return &JobResult{
		Workload:   j.Workload.Name,
		Condition:  j.Cond.Name,
		Seed:       j.Cfg.Seed,
		WallCycles: uint64(j.Cfg.Seed) * 100,
		HzGHz:      1.2,
	}
}

func TestPoolDedupesByKey(t *testing.T) {
	var runs atomic.Int64
	p := NewPool(PoolConfig{Workers: 4})
	p.run = func(j Job) (*JobResult, time.Duration, error) {
		runs.Add(1)
		return fakeResult(j), 0, nil
	}
	j := fakeJob("omnetpp", 1)
	p.Prefetch([]Job{j, j, j})
	r, err := p.Get(j)
	if err != nil {
		t.Fatal(err)
	}
	if r.WallCycles != 100 {
		t.Fatalf("WallCycles = %d", r.WallCycles)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("job ran %d times, want 1", got)
	}
	st := p.Stats()
	if st.Submitted != 1 || st.Deduped != 3 || st.Executed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolRetriesThenSucceeds(t *testing.T) {
	var runs atomic.Int64
	p := NewPool(PoolConfig{Workers: 1, Retries: 2})
	p.run = func(j Job) (*JobResult, time.Duration, error) {
		if runs.Add(1) == 1 {
			return nil, 0, errors.New("transient")
		}
		return fakeResult(j), 0, nil
	}
	if _, err := p.Get(fakeJob("astar", 1)); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
	st := p.Stats()
	if st.Retries != 1 || st.Executed != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolExhaustsRetries(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1, Retries: 1})
	p.run = func(Job) (*JobResult, time.Duration, error) { return nil, 0, errors.New("permanent") }
	_, err := p.Get(fakeJob("astar", 1))
	if err == nil || !strings.Contains(err.Error(), "failed after 2 attempt(s)") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "permanent") {
		t.Fatalf("err lost cause: %v", err)
	}
	if st := p.Stats(); st.Failed != 1 || st.Executed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolCapturesPanics(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1})
	p.run = func(Job) (*JobResult, time.Duration, error) { panic("boom") }
	_, err := p.Get(fakeJob("gobmk", 1))
	if err == nil || !strings.Contains(err.Error(), "panic: boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestPoolTimesOut(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	p := NewPool(PoolConfig{Workers: 1, Timeout: 10 * time.Millisecond})
	p.run = func(j Job) (*JobResult, time.Duration, error) {
		<-release // simulates a stuck simulation; abandoned by the pool
		return fakeResult(j), 0, nil
	}
	_, err := p.Get(fakeJob("hmmer", 1))
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
}

func TestPoolProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	p := NewPool(PoolConfig{
		Workers: 2,
		Progress: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	p.run = func(j Job) (*JobResult, time.Duration, error) { return fakeResult(j), 0, nil }
	jobs := []Job{fakeJob("astar", 1), fakeJob("omnetpp", 2)}
	p.Prefetch(jobs)
	for _, j := range jobs {
		if _, err := p.Get(j); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	for _, ev := range events {
		if ev.Status != "ran" || ev.Attempts != 1 || ev.Total != 2 {
			t.Fatalf("event = %+v", ev)
		}
	}
	if events[1].Done != 2 {
		t.Fatalf("final Done = %d", events[1].Done)
	}
}

func TestPoolResultsSortedAndComplete(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 4})
	p.run = func(j Job) (*JobResult, time.Duration, error) { return fakeResult(j), 0, nil }
	jobs := []Job{fakeJob("xalancbmk", 3), fakeJob("astar", 1), fakeJob("sjeng", 2)}
	p.Prefetch(jobs)
	for _, j := range jobs {
		if _, err := p.Get(j); err != nil {
			t.Fatal(err)
		}
	}
	rs := p.Results()
	if len(rs) != 3 {
		t.Fatalf("results = %d, want 3", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i-1].Key >= rs[i].Key {
			t.Fatalf("results not sorted: %q then %q", rs[i-1].Key, rs[i].Key)
		}
	}
}

func TestJobKeyStable(t *testing.T) {
	a, b := fakeJob("omnetpp", 1), fakeJob("omnetpp", 1)
	if a.Key() != b.Key() {
		t.Fatal("identical jobs hash differently")
	}
	if len(a.Key()) != 64 {
		t.Fatalf("key = %q, want 64 hex chars", a.Key())
	}
	c := fakeJob("omnetpp", 2)
	if a.Key() == c.Key() {
		t.Fatal("different seeds share a key")
	}
	d := fakeJob("astar", 1)
	if a.Key() == d.Key() {
		t.Fatal("different workloads share a key")
	}
	// The tracer never affects identity: pool jobs run untraced.
	e := fakeJob("omnetpp", 1)
	e.Cfg.Trace = trace.New(16)
	if a.Key() != e.Key() {
		t.Fatal("attaching a tracer changed the key")
	}
}

func TestPoolRetryEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	var runs atomic.Int64
	p := NewPool(PoolConfig{Workers: 1, Retries: 2, Progress: func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}})
	p.run = func(j Job) (*JobResult, time.Duration, error) {
		if runs.Add(1) < 3 {
			return nil, 0, errors.New("transient fault")
		}
		return fakeResult(j), 0, nil
	}
	if _, err := p.Get(fakeJob("xalancbmk", 1)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	var retries []Event
	for _, ev := range events {
		if ev.Status == "retry" {
			retries = append(retries, ev)
		}
	}
	if len(retries) != 2 {
		t.Fatalf("want 2 retry events, got %d (%+v)", len(retries), events)
	}
	for i, ev := range retries {
		if ev.Attempts != i+1 {
			t.Fatalf("retry %d has Attempts %d", i, ev.Attempts)
		}
		if !strings.Contains(ev.Err, "transient fault") {
			t.Fatalf("retry event lost the error class: %+v", ev)
		}
	}
	last := events[len(events)-1]
	if last.Status != "ran" || last.Attempts != 3 || last.Err != "" {
		t.Fatalf("final event wrong: %+v", last)
	}
}

func TestPoolFailedEventCarriesErrClass(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	p := NewPool(PoolConfig{Workers: 1, Progress: func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}})
	p.run = func(Job) (*JobResult, time.Duration, error) { panic("sweeper exploded") }
	if _, err := p.Get(fakeJob("xalancbmk", 2)); err == nil {
		t.Fatal("want failure")
	}
	mu.Lock()
	defer mu.Unlock()
	last := events[len(events)-1]
	if last.Status != "failed" {
		t.Fatalf("final event %+v", last)
	}
	if !strings.HasPrefix(last.Err, "panic: sweeper exploded") {
		t.Fatalf("failed event Err = %q, want panic class", last.Err)
	}
	if strings.Contains(last.Err, "\n") || len(last.Err) > 120 {
		t.Fatalf("panic class not compressed: %q", last.Err)
	}
}

func TestErrClass(t *testing.T) {
	if got := ErrClass(nil); got != "" {
		t.Fatalf("ErrClass(nil) = %q", got)
	}
	if got := ErrClass(errors.New("attempt timed out after 5s (simulation goroutines abandoned)")); got != "timeout" {
		t.Fatalf("timeout class = %q", got)
	}
	if got := ErrClass(errors.New("panic: boom\ngoroutine 1 [running]")); got != "panic: boom" {
		t.Fatalf("panic class = %q", got)
	}
	if got := ErrClass(errors.New("no such profile")); got != "error: no such profile" {
		t.Fatalf("error class = %q", got)
	}
}

// TestPoolProgressSerializedUnderConcurrency runs many jobs on many
// workers and checks the Progress contract: calls are serialized (never
// overlapping), completion events carry strictly increasing Done counts
// reaching Total, and retry events never count as completions. Run with
// -race to catch callback data races.
func TestPoolProgressSerializedUnderConcurrency(t *testing.T) {
	const n = 40
	var inCallback atomic.Int32
	var mu sync.Mutex
	var events []Event
	var failedOnce sync.Map
	p := NewPool(PoolConfig{
		Workers: 8,
		Retries: 1,
		Progress: func(ev Event) {
			if inCallback.Add(1) != 1 {
				t.Error("Progress callbacks overlap")
			}
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
			inCallback.Add(-1)
		},
	})
	p.run = func(j Job) (*JobResult, time.Duration, error) {
		// Every third job fails its first attempt so retry events mix in.
		if j.Cfg.Seed%3 == 0 {
			if _, loaded := failedOnce.LoadOrStore(j.Cfg.Seed, true); !loaded {
				return nil, 0, errors.New("transient")
			}
		}
		return fakeResult(j), 0, nil
	}
	var jobs []Job
	for i := 0; i < n; i++ {
		jobs = append(jobs, fakeJob("astar", int64(i+1)))
	}
	p.Prefetch(jobs)
	for _, j := range jobs {
		if _, err := p.Get(j); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	var done int
	for _, ev := range events {
		switch ev.Status {
		case "retry":
			if ev.Done != 0 {
				t.Errorf("retry event carries Done=%d", ev.Done)
			}
		case "ran":
			done++
			if ev.Done != done {
				t.Errorf("completion %d carries Done=%d (events out of order)", done, ev.Done)
			}
			if ev.Total != n {
				t.Errorf("Total = %d, want %d", ev.Total, n)
			}
		default:
			t.Errorf("unexpected status %q", ev.Status)
		}
	}
	if done != n {
		t.Errorf("saw %d completions, want %d", done, n)
	}
}

// telemetryExports renders every sweep-level telemetry export for a
// pool's completed jobs, the way cmd/sweep does.
func telemetryExports(t *testing.T, p *Pool) (folded, om, csv string) {
	t.Helper()
	var snaps []telemetry.Keyed
	for _, c := range p.Results() {
		if c.Result.Telem != nil {
			snaps = append(snaps, telemetry.Keyed{Key: c.Key, Snap: c.Result.Telem})
		}
	}
	merged := telemetry.Merge(snaps)
	var fb, ob, cb strings.Builder
	if err := merged.WriteFolded(&fb); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteOpenMetrics(&ob, true); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteSeriesCSV(&cb, snaps); err != nil {
		t.Fatal(err)
	}
	return fb.String(), ob.String(), cb.String()
}

// TestTelemetryExportsWorkerCountInvariant runs the same telemetry-armed
// job set at -workers 1 and 8 (real harness runs, tiny scale) and
// requires byte-identical folded, OpenMetrics, and series-CSV exports —
// the ISSUE's worker-invariance acceptance criterion at the pool layer.
func TestTelemetryExportsWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulator runs; skipped under -short")
	}
	jobs := func() []Job {
		var js []Job
		for _, name := range []string{"hmmer", "astar", "sjeng"} {
			j := fakeJob(name, 1)
			j.Cfg = harness.SpecConfig()
			j.Cfg.Scale = 2048
			j.Cfg.Seed = 1
			j.Cond = harness.Condition{
				Name: "Reloaded", Shimmed: true,
				Strategy: revoke.Reloaded, RevokerCores: []int{2}, Workers: 1,
			}
			js = append(js, j)
		}
		return js
	}
	run := func(workers int) (string, string, string) {
		p := NewPool(PoolConfig{
			Workers:   workers,
			Telemetry: &telemetry.Options{SampleEvery: 500_000},
		})
		js := jobs()
		p.Prefetch(js)
		for _, j := range js {
			if _, err := p.Get(j); err != nil {
				t.Fatal(err)
			}
		}
		return telemetryExports(t, p)
	}
	f1, o1, c1 := run(1)
	f8, o8, c8 := run(8)
	if f1 != f8 {
		t.Errorf("folded exports differ between -workers 1 and 8:\n%s\nvs\n%s", f1, f8)
	}
	if o1 != o8 {
		t.Errorf("OpenMetrics exports differ between -workers 1 and 8")
	}
	if c1 != c8 {
		t.Errorf("series CSV exports differ between -workers 1 and 8")
	}
	if !strings.Contains(f1, "app") || len(c1) == 0 {
		t.Errorf("exports look empty: folded=%q", f1)
	}
}
