package expt

import (
	"bytes"
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
)

// TestDocumentIdenticalAcrossEnginesAndWorkers is the orchestrator-level
// acceptance check for the fast sim engine: the same grid, run through
// pools at -workers 1 and 8 under each -simengine, must emit
// byte-identical cornucopia-sweep/v1 documents. Host wall-time is the one
// legitimately nondeterministic field, so it is zeroed before comparison;
// everything else — job keys, headline cycles, aggregates, pool stats —
// must match exactly.
func TestDocumentIdenticalAcrossEnginesAndWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	var jobs []Job
	for _, cond := range harness.SweepConditions()[:2] {
		for _, seed := range []int64{1, 1000004} {
			cfg := harness.DefaultConfig()
			cfg.Scale = 256
			cfg.Seed = seed
			jobs = append(jobs, Job{Workload: PgbenchWorkload(200), Cond: cond, Cfg: cfg})
		}
	}

	build := func(workers int, ek sim.EngineKind) []byte {
		p := NewPool(PoolConfig{Workers: workers, SimEngine: ek})
		p.Prefetch(jobs)
		for _, j := range jobs {
			if _, err := p.Get(j); err != nil {
				t.Fatal(err)
			}
		}
		// Workers/reps/scale are invocation metadata, passed identically so
		// only computed content can differ between variants.
		doc := BuildDocument(p, nil, 1, 1, 256)
		for i := range doc.Jobs {
			doc.Jobs[i].HostMillis = 0
		}
		var buf bytes.Buffer
		if err := doc.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	ref := build(1, sim.EngineFast)
	for _, v := range []struct {
		name    string
		workers int
		ek      sim.EngineKind
	}{
		{"classic-w1", 1, sim.EngineClassic},
		{"fast-w8", 8, sim.EngineFast},
		{"classic-w8", 8, sim.EngineClassic},
	} {
		if got := build(v.workers, v.ek); !bytes.Equal(ref, got) {
			t.Errorf("%s: document differs from fast-w1 reference (%d vs %d bytes)",
				v.name, len(got), len(ref))
		}
	}

	// The engine choice must also be invisible to job identity: a manifest
	// entry computed under either engine has to satisfy the other.
	k := jobs[0].Key()
	j2 := jobs[0]
	j2.Cfg.SimEngine = sim.EngineClassic
	if j2.Key() != k {
		t.Fatal("SimEngine leaked into the job content hash")
	}
}
