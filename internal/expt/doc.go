// Package expt is the experiment-sweep orchestrator: it expands the
// paper's evaluation (§5) into a grid of independent (workload, condition,
// seed) jobs, executes them on a bounded host worker pool with per-job
// timeout, panic capture and bounded retry, and aggregates the completed
// results into the paper's tables plus a machine-readable JSON document.
//
// Because harness.Run is deterministic per seed and every job boots its own
// cold machine, the grid is embarrassingly parallel: sharding it across
// host cores preserves results exactly, so a sweep's aggregated output is
// byte-identical at any worker count.
//
// A Pool memoizes jobs by a content hash of the full job description
// (workload reference, condition, configuration, seed), so overlapping
// figure grids share runs within one sweep. Attaching a Manifest persists
// every completed job to disk under the same key; an interrupted or
// re-invoked sweep then resumes from completed jobs instead of recomputing
// them.
//
// The figure registry (Figures, Generate) holds one entry per table and
// figure of the paper's evaluation; cmd/sweep regenerates any of them (or
// the whole evaluation), and cmd/spec2006, cmd/pgbench, cmd/qps and
// cmd/phases are thin flag front-ends over the same registry.
package expt
