package expt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/harness"
	"repro/internal/workload"
	"repro/internal/workload/chaos"
	"repro/internal/workload/heapscale"
	"repro/internal/workload/pgbench"
	"repro/internal/workload/qps"
	"repro/internal/workload/spec"
)

// WorkloadRef names a workload declaratively, so a job can be hashed,
// serialized, and re-instantiated. Exactly one Kind is meaningful per ref.
type WorkloadRef struct {
	// Kind is "spec", "pgbench", "qps", "chaos" or "heapscale".
	Kind string `json:"kind"`
	// Name is the SPEC profile name ("xalancbmk", "astar lakes", …).
	Name string `json:"name,omitempty"`
	// Txs is the pgbench transaction count; Rate, when non-zero, is the
	// fixed-rate schedule in tx/sec (Table 1).
	Txs  int     `json:"txs,omitempty"`
	Rate float64 `json:"rate,omitempty"`
	// Measure and Warmup are the gRPC QPS windows, in cycles.
	Measure uint64 `json:"measure,omitempty"`
	Warmup  uint64 `json:"warmup,omitempty"`
	// Ops is the chaos workload's churn step count (also the heapscale
	// workload's full-scale churn count).
	Ops int `json:"ops,omitempty"`
	// Allocs is the heapscale workload's full-scale live allocation count.
	Allocs int `json:"allocs,omitempty"`
}

// SpecWorkload references a SPEC surrogate by profile name ("xalancbmk")
// or bench name (first matching input).
func SpecWorkload(name string) WorkloadRef { return WorkloadRef{Kind: "spec", Name: name} }

// PgbenchWorkload references an unscheduled pgbench run.
func PgbenchWorkload(txs int) WorkloadRef { return WorkloadRef{Kind: "pgbench", Txs: txs} }

// PgbenchRatedWorkload references a fixed-rate pgbench run.
func PgbenchRatedWorkload(txs int, rate float64) WorkloadRef {
	return WorkloadRef{Kind: "pgbench", Txs: txs, Rate: rate}
}

// QPSWorkload references a gRPC QPS run with the given windows (cycles).
func QPSWorkload(measure, warmup uint64) WorkloadRef {
	return WorkloadRef{Kind: "qps", Measure: measure, Warmup: warmup}
}

// ChaosWorkload references an adversarial fault-campaign run (cmd/chaos).
func ChaosWorkload(ops int) WorkloadRef { return WorkloadRef{Kind: "chaos", Ops: ops} }

// HeapScaleWorkload references a heap-scale run: allocs full-scale live
// allocations with ops full-scale churn steps (both divided by the job's
// Scale). Jobs built from this ref should size Machine.MaxFrames with
// heapscale.Workload.MaxFrames.
func HeapScaleWorkload(allocs, ops int) WorkloadRef {
	return WorkloadRef{Kind: "heapscale", Allocs: allocs, Ops: ops}
}

// Instantiate builds a fresh workload instance. Workloads are stateful
// (qps counts its measured messages), so every run needs its own.
func (w WorkloadRef) Instantiate() (workload.Workload, error) {
	switch w.Kind {
	case "spec":
		for _, p := range spec.Profiles() {
			if p.Name() == w.Name {
				return p, nil
			}
		}
		if ps := spec.ByName(w.Name); len(ps) > 0 {
			return ps[0], nil
		}
		return nil, fmt.Errorf("expt: unknown SPEC profile %q", w.Name)
	case "pgbench":
		if w.Rate != 0 {
			return pgbench.NewRated(w.Txs, w.Rate), nil
		}
		return pgbench.New(w.Txs), nil
	case "qps":
		return qps.New(w.Measure, w.Warmup), nil
	case "chaos":
		return chaos.New(w.Ops), nil
	case "heapscale":
		return heapscale.New(w.Allocs, w.Ops), nil
	}
	return nil, fmt.Errorf("expt: unknown workload kind %q", w.Kind)
}

// String names the ref for progress output.
func (w WorkloadRef) String() string {
	switch w.Kind {
	case "spec":
		return w.Name
	case "pgbench":
		if w.Rate != 0 {
			return fmt.Sprintf("pgbench@%.4g", w.Rate)
		}
		return "pgbench"
	case "qps":
		return "grpc-qps"
	case "chaos":
		return "chaos"
	case "heapscale":
		return "heapscale"
	}
	return w.Kind
}

// Job is one cell of a sweep grid: a workload under a condition with a
// fully-specified configuration (including the seed). Jobs are pure data;
// identical jobs produce identical results.
type Job struct {
	Workload WorkloadRef       `json:"workload"`
	Cond     harness.Condition `json:"condition"`
	Cfg      harness.Config    `json:"config"`
}

// Key returns the job's content hash: a hex SHA-256 over the canonical
// JSON encoding of the whole job description. Two jobs share a key exactly
// when they would produce the same result (harness.Run is deterministic
// per description), so the key doubles as the memoization and manifest
// index. The tracer field is excluded (pool jobs never trace).
func (j Job) Key() string {
	j.Cfg.Trace = nil
	b, err := json.Marshal(j)
	if err != nil {
		// Job descriptions are plain data; marshal cannot fail.
		panic(fmt.Sprintf("expt: job not serializable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// repeatJobs expands reps jobs for (w, cond, cfg) with the per-rep seed
// derivation seed+i*stride. strideRepeat matches harness.Repeat, so a
// sweep regenerates exactly the runs the sequential figure drivers did.
const (
	strideRepeat = 1000003  // harness.Repeat's cold-boot batches
	strideQPS    = 7919     // Figure 8's per-rep seeds
	strideQPS9   = 104729   // Figure 9's gRPC rows
	strideQPS2   = 15485863 // Table 2's gRPC row
)

func repeatJobs(w WorkloadRef, cond harness.Condition, cfg harness.Config, reps int, stride int64) []Job {
	jobs := make([]Job, 0, reps)
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*stride
		jobs = append(jobs, Job{Workload: w, Cond: cond, Cfg: c})
	}
	return jobs
}
