package expt

import (
	"testing"
	"time"
)

// TestBackoffGrowthAndCap pins the geometric schedule: Base doubling per
// attempt under Factor 2, clamped at Max.
func TestBackoffGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Factor: 2, Max: 500 * time.Millisecond}
	want := []time.Duration{
		0, // attempt 0: no wait before the first try
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		500 * time.Millisecond, // capped
		500 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
	if got := b.Delay(-1); got != 0 {
		t.Fatalf("Delay(-1) = %v, want 0", got)
	}
}

// TestBackoffZeroBaseDisables pins that a zero Base turns backoff off
// entirely — the pool's legacy "retry immediately" behavior.
func TestBackoffZeroBaseDisables(t *testing.T) {
	var b Backoff
	for attempt := 0; attempt < 5; attempt++ {
		if got := b.Delay(attempt); got != 0 {
			t.Fatalf("zero-value Backoff Delay(%d) = %v, want 0", attempt, got)
		}
	}
}

// TestBackoffJitterDeterministic pins the reproducibility contract: the
// same (Seed, attempt) always yields the same jittered delay, different
// seeds spread out, and jitter stays within [d, d*(1+J)].
func TestBackoffJitterDeterministic(t *testing.T) {
	b1 := Backoff{Base: 100 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: 1}
	b2 := Backoff{Base: 100 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: 1}
	b3 := Backoff{Base: 100 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: 99}
	diverged := false
	for attempt := 1; attempt <= 8; attempt++ {
		d1, d2, d3 := b1.Delay(attempt), b2.Delay(attempt), b3.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", attempt, d1, d2)
		}
		if d1 != d3 {
			diverged = true
		}
		base := Backoff{Base: 100 * time.Millisecond, Factor: 2}.Delay(attempt)
		if d1 < base || d1 > base+base/2 {
			t.Fatalf("jittered Delay(%d) = %v outside [%v, %v]", attempt, d1, base, base+base/2)
		}
	}
	if !diverged {
		t.Fatal("seeds 1 and 99 produced identical jitter at every attempt")
	}
}

// TestBackoffSleepStops pins that Sleep returns early (false) when stop
// closes — a halted worker must not sit out a long delay.
func TestBackoffSleepStops(t *testing.T) {
	b := Backoff{Base: 10 * time.Second}
	stop := make(chan struct{})
	close(stop)
	start := time.Now()
	if b.Sleep(1, stop) {
		t.Fatal("Sleep completed despite closed stop channel")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on stop")
	}
	if !b.Sleep(0, nil) {
		t.Fatal("zero-delay Sleep must report completion")
	}
}
