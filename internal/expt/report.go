package expt

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/harness"
	"repro/internal/metrics"
)

// Schema identifies the JSON results document layout. Bump on any
// backwards-incompatible change; BENCH_*.json trajectory tooling keys on
// it.
const Schema = "cornucopia-sweep/v1"

// Document is the machine-readable output of one sweep: every figure's
// table, every job's headline measurements, and per-(workload, condition)
// aggregate distributions.
type Document struct {
	Schema string `json:"schema"`
	// Workers, Reps and Scale record how the sweep was invoked.
	Workers int    `json:"workers"`
	Reps    int    `json:"reps"`
	Scale   uint64 `json:"scale"`

	Figures    []FigureResult `json:"figures"`
	Jobs       []JobSummary   `json:"jobs"`
	Aggregates []Aggregate    `json:"aggregates"`
	Pool       PoolStats      `json:"pool"`
}

// FigureResult is one regenerated table, both structured and rendered.
type FigureResult struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	Text   string     `json:"text"`
}

// NewFigureResult captures a rendered table.
func NewFigureResult(id string, t *harness.Table) FigureResult {
	return FigureResult{
		ID: id, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes,
		Text: t.String(),
	}
}

// JobSummary is one job's headline measurements plus execution metadata.
// Virtual quantities (cycles, DRAM, RSS) are deterministic per key;
// HostMillis is the host-side cost and varies run to run.
type JobSummary struct {
	Key       string `json:"key"`
	Workload  string `json:"workload"`
	Condition string `json:"condition"`
	Seed      int64  `json:"seed"`

	WallCycles   uint64 `json:"wall_cycles"`
	CPUCycles    uint64 `json:"cpu_cycles"`
	DRAMTotal    uint64 `json:"dram_total"`
	PeakRSSPages int    `json:"peak_rss_pages"`
	Epochs       int    `json:"epochs"`

	Cached     bool    `json:"cached,omitempty"`
	Attempts   int     `json:"attempts"`
	HostMillis float64 `json:"host_ms"`
}

// Aggregate is one metric's distribution over a (workload, condition)
// cell's repetitions.
type Aggregate struct {
	Workload  string  `json:"workload"`
	Condition string  `json:"condition"`
	Metric    string  `json:"metric"`
	N         int     `json:"n"`
	Mean      float64 `json:"mean"`
	CI95      float64 `json:"ci95"`
	Min       float64 `json:"min"`
	Median    float64 `json:"median"`
	Max       float64 `json:"max"`
}

// aggregateMetrics are the per-run quantities aggregated per cell.
var aggregateMetrics = []struct {
	name string
	get  func(*JobResult) float64
}{
	{"wall_cycles", func(r *JobResult) float64 { return float64(r.WallCycles) }},
	{"cpu_cycles", func(r *JobResult) float64 { return float64(r.CPUCycles) }},
	{"app_cpu_cycles", func(r *JobResult) float64 { return float64(r.AppCPUCycles) }},
	{"dram_total", func(r *JobResult) float64 { return float64(r.DRAMTotal) }},
	{"peak_rss_pages", func(r *JobResult) float64 { return float64(r.PeakRSSPages) }},
	{"epochs", func(r *JobResult) float64 { return float64(len(r.Epochs)) }},
}

// BuildAggregates folds completed jobs into per-cell distributions,
// ordered by workload, condition, metric for stable output.
func BuildAggregates(results []*JobResult) []Aggregate {
	type cellKey struct{ w, c string }
	cells := map[cellKey][]*JobResult{}
	var order []cellKey
	for _, r := range results {
		k := cellKey{r.Workload, r.Condition}
		if _, ok := cells[k]; !ok {
			order = append(order, k)
		}
		cells[k] = append(cells[k], r)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].w != order[j].w {
			return order[i].w < order[j].w
		}
		return order[i].c < order[j].c
	})
	var out []Aggregate
	for _, k := range order {
		rs := cells[k]
		for _, m := range aggregateMetrics {
			s := &metrics.Samples{}
			for _, r := range rs {
				s.Add(m.get(r))
			}
			mean, ci := s.MeanCI()
			min, _ := s.MinOK()
			med, _ := s.MedianOK()
			max, _ := s.MaxOK()
			out = append(out, Aggregate{
				Workload: k.w, Condition: k.c, Metric: m.name, N: s.N(),
				Mean: mean, CI95: ci, Min: min, Median: med, Max: max,
			})
		}
	}
	return out
}

// BuildDocument assembles the results document from an executor's
// completed jobs and the figures it regenerated. The executor may be a
// local Pool or internal/dist's network Coordinator; the document's
// simulation-derived content is identical either way.
func BuildDocument(p Executor, figures []FigureResult, workers int, reps int, scale uint64) *Document {
	completed := p.Results()
	doc := &Document{
		Schema:  Schema,
		Workers: workers,
		Reps:    reps,
		Scale:   scale,
		Figures: figures,
		Pool:    p.Stats(),
	}
	var results []*JobResult
	for _, c := range completed {
		r := c.Result
		results = append(results, r)
		doc.Jobs = append(doc.Jobs, JobSummary{
			Key: c.Key, Workload: r.Workload, Condition: r.Condition, Seed: r.Seed,
			WallCycles: r.WallCycles, CPUCycles: r.CPUCycles, DRAMTotal: r.DRAMTotal,
			PeakRSSPages: r.PeakRSSPages, Epochs: len(r.Epochs),
			Cached: c.Cached, Attempts: c.Attempts,
			HostMillis: float64(c.Host.Microseconds()) / 1e3,
		})
	}
	doc.Aggregates = BuildAggregates(results)
	return doc
}

// Canonicalize zeroes the document's host-execution metadata — per-job
// host wall times, attempt counts, cache provenance, and the pool
// counters — leaving only simulation-derived content. Two canonicalized
// documents for the same grid are byte-identical regardless of where and
// how the jobs ran: worker count, local vs. distributed execution,
// manifest resume, and mid-campaign worker crashes (which surface as
// extra attempts) all disappear. cmd/sweep -canonical applies this for
// the CI smoke diffs.
func (d *Document) Canonicalize() {
	for i := range d.Jobs {
		d.Jobs[i].HostMillis = 0
		d.Jobs[i].Attempts = 0
		d.Jobs[i].Cached = false
	}
	d.Pool = PoolStats{}
}

// Write emits the document as indented JSON.
func (d *Document) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
