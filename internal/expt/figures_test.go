package expt

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/metrics"
)

// tinyOpts keeps figure smoke tests fast: one rep, SPEC at 1/512 scale,
// pgbench at 1/64 with 300 transactions, short gRPC windows.
func tinyOpts() Options {
	o := DefaultOptions()
	o.Reps = 1
	o.SpecCfg.Scale = 512
	o.PgCfg.Scale = 64
	o.Txs = 300
	o.Measure = 100_000_000
	o.Warmup = 10_000_000
	return o
}

// expectRows asserts the table has a row starting with each given name and
// that every row has as many cells as the header.
func expectRows(t *testing.T, tb *harness.Table, names ...string) {
	t.Helper()
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Errorf("row %v has %d cells, header has %d", row, len(row), len(tb.Header))
		}
	}
	for _, n := range names {
		found := false
		for _, row := range tb.Rows {
			if row[0] == n {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("table %q missing row %q:\n%s", tb.Title, n, tb)
		}
	}
}

// leadingFloat extracts the numeric prefix of a cell like "12.3MiB".
func leadingFloat(t *testing.T, s string) float64 {
	t.Helper()
	end := 0
	for end < len(s) && (s[end] == '.' || s[end] == '-' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		t.Fatalf("cell %q has no leading float: %v", s, err)
	}
	return v
}

func TestFiguresRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, f := range Figures() {
		if f.ID == "" || f.Title == "" || f.Build == nil {
			t.Fatalf("incomplete figure entry %+v", f)
		}
		if ids[f.ID] {
			t.Fatalf("duplicate figure id %q", f.ID)
		}
		ids[f.ID] = true
		got, ok := ByID(f.ID)
		if !ok || got.ID != f.ID {
			t.Fatalf("ByID(%q) = %v, %v", f.ID, got, ok)
		}
	}
	for _, want := range []string{"fig1", "fig9", "table1", "table2"} {
		if !ids[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("ByID accepted an unknown id")
	}
	if _, err := Generate("fig99", DefaultOptions(), nil); err == nil {
		t.Fatal("Generate accepted an unknown id")
	}
}

func TestFig1Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Generate("fig1", tinyOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb, "astar", "bzip2", "gobmk", "hmmer", "libquantum", "omnetpp", "sjeng", "xalancbmk")
	if len(tb.Header) != 4 {
		t.Fatalf("header = %v", tb.Header)
	}
}

func TestFig2Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Generate("fig2", tinyOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb, "astar", "gobmk", "hmmer", "libquantum", "omnetpp", "xalancbmk")
	for _, row := range tb.Rows {
		if row[0] == "bzip2" || row[0] == "sjeng" {
			t.Fatalf("non-engaging benchmark %s in Figure 2", row[0])
		}
	}
}

func TestFig3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Generate("fig3", tinyOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	// Sorted descending by baseline RSS.
	prev := 1e18
	for _, row := range tb.Rows {
		v := leadingFloat(t, row[1])
		if v > prev {
			t.Fatalf("rows not sorted by baseline RSS: %v", tb.Rows)
		}
		prev = v
	}
}

func TestFig4Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Generate("fig4", tinyOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb, "omnetpp", "xalancbmk")
	if len(tb.Notes) == 0 || !strings.Contains(tb.Notes[0], "median") {
		t.Fatal("missing Rel/Cor median note")
	}
}

func TestFig5To7Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	o := tinyOpts()
	// The three pgbench artifacts share one memoized matrix when built on
	// the same pool.
	p := NewPool(PoolConfig{Workers: 1})
	tb5, err := Generate("fig5", o, p)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb5, "Reloaded", "Cornucopia", "CHERIvoke", "Paint+sync")
	tb6, err := Generate("fig6", o, p)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb6, "Reloaded", "Paint+sync")
	tb7, err := Generate("fig7", o, p)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb7, "Reloaded", "CHERIvoke")
	if len(tb7.Notes) < 3 {
		t.Fatalf("Figure 7 notes = %v", tb7.Notes)
	}
	if st := p.Stats(); st.Deduped == 0 {
		t.Fatalf("figures 5-7 shared no jobs: %+v", st)
	}
}

func TestTable1Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Generate("table1", tinyOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (3 rates + unscheduled)", len(tb.Rows))
	}
	expectRows(t, tb, "unscheduled")
}

func TestFig8Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Generate("fig8", tinyOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb, "Baseline(ms)", "Reloaded", "Cornucopia", "Paint+sync")
	for _, row := range tb.Rows {
		if row[0] == "CHERIvoke" {
			t.Fatal("CHERIvoke must be excluded from Figure 8")
		}
	}
}

func TestFig9AndTable2Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Generate("fig9", tinyOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb, "xalancbmk", "pgbench", "gRPC QPS")
	// Each SPEC benchmark contributes six phase rows.
	count := 0
	for _, row := range tb.Rows {
		if row[0] == "xalancbmk" {
			count++
		}
	}
	if count != 6 {
		t.Fatalf("xalancbmk phase rows = %d, want 6", count)
	}
	t2, err := Generate("table2", tinyOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, t2, "xalancbmk", "pgbench", "gRPC QPS")
}

// TestWorkerCountInvariance is the orchestrator's core guarantee: the same
// figure built sequentially and on eight workers renders byte-identically,
// because every job is deterministic per seed and the fold order is fixed.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	o := tinyOpts()
	o.Reps = 2 // exercise the per-rep seed derivation too
	for _, id := range []string{"fig5", "fig8"} {
		seq, err := Generate(id, o, NewPool(PoolConfig{Workers: 1}))
		if err != nil {
			t.Fatal(err)
		}
		par, err := Generate(id, o, NewPool(PoolConfig{Workers: 8}))
		if err != nil {
			t.Fatal(err)
		}
		if seq.String() != par.String() {
			t.Errorf("%s differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
				id, seq, par)
		}
	}
}

// TestGenerateResumesFromManifest rebuilds a real figure from a manifest
// alone: the second pool executes nothing and the rendered table is
// byte-identical, because float64 survives the JSON round-trip exactly.
func TestGenerateResumesFromManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	o := tinyOpts()
	path := filepath.Join(t.TempDir(), "manifest.jsonl")

	m1, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewPool(PoolConfig{Workers: 2, Manifest: m1})
	first, err := Generate("fig5", o, p1)
	if err != nil {
		t.Fatal(err)
	}
	if st := p1.Stats(); st.Executed == 0 || st.Cached != 0 {
		t.Fatalf("first pass stats = %+v", st)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	p2 := NewPool(PoolConfig{Workers: 2, Manifest: m2})
	second, err := Generate("fig5", o, p2)
	if err != nil {
		t.Fatal(err)
	}
	st := p2.Stats()
	if st.Executed != 0 {
		t.Fatalf("resume executed %d job(s), want 0: %+v", st.Executed, st)
	}
	if st.Cached == 0 {
		t.Fatalf("resume served nothing from the manifest: %+v", st)
	}
	if first.String() != second.String() {
		t.Errorf("resumed table differs:\n--- fresh ---\n%s\n--- resumed ---\n%s", first, second)
	}
}

// TestEmptyCellGuards pins the renderers' behavior when a figure cell
// holds no samples (all jobs failed, or a condition recorded no epochs):
// "--" cells and a fallback clock rate instead of a panic.
func TestEmptyCellGuards(t *testing.T) {
	empty := &metrics.Samples{}
	if got := pctCell(empty, 50, 2.5e6); got != "--" {
		t.Errorf("pctCell(empty) = %q, want --", got)
	}
	full := &metrics.Samples{}
	full.Add(2.5e6) // one sample of exactly 1 ms at 2.5 GHz
	if got := pctCell(full, 50, 2.5e6); got != "1.000" {
		t.Errorf("pctCell(full) = %q, want 1.000", got)
	}
	if hz := cyclesPerMs(nil); hz != 2.5e6 {
		t.Errorf("cyclesPerMs(nil) = %v, want default 2.5e6", hz)
	}
	if hz := cyclesPerMs([]*harness.Result{{HzGHz: 3}}); hz != 3e6 {
		t.Errorf("cyclesPerMs = %v, want 3e6", hz)
	}
}

// TestBuildAggregatesEmptyLat exercises BuildAggregates over a JobResult
// whose latency set is empty; the min/median/max columns must come back
// zero rather than panicking.
func TestBuildAggregatesEmptyLat(t *testing.T) {
	aggs := BuildAggregates([]*JobResult{{Workload: "w", Condition: "c"}})
	if len(aggs) == 0 {
		t.Fatal("no aggregates")
	}
	for _, a := range aggs {
		if a.Workload != "w" || a.Condition != "c" {
			t.Errorf("unexpected cell %+v", a)
		}
	}
}
