package bus

import (
	"testing"
	"testing/quick"
)

func TestHitAfterMiss(t *testing.T) {
	b := New(1, DefaultConfig())
	c1 := b.Access(0, 0x1000, AgentApp, false)
	if c1 != DefaultConfig().MissCycles {
		t.Fatalf("first access cost %d, want miss cost %d", c1, DefaultConfig().MissCycles)
	}
	c2 := b.Access(0, 0x1008, AgentApp, false) // same line
	if c2 != DefaultConfig().HitCycles {
		t.Fatalf("second access cost %d, want hit cost %d", c2, DefaultConfig().HitCycles)
	}
	s := b.Stats()
	if s.Misses != 1 || s.Accesses != 2 {
		t.Fatalf("misses=%d accesses=%d", s.Misses, s.Accesses)
	}
}

func TestPerCoreCachesIndependent(t *testing.T) {
	b := New(2, DefaultConfig())
	b.Access(0, 0x1000, AgentApp, false)
	c := b.Access(1, 0x1000, AgentRevoker, false)
	if c != DefaultConfig().MissCycles {
		t.Fatal("core 1 hit in core 0's cache")
	}
	s := b.Stats()
	if s.DRAMByCore[0] != 1 || s.DRAMByCore[1] != 1 {
		t.Fatalf("per-core DRAM = %v", s.DRAMByCore)
	}
	if s.DRAMByAgent[AgentApp] != 1 || s.DRAMByAgent[AgentRevoker] != 1 {
		t.Fatalf("per-agent DRAM = %v", s.DRAMByAgent)
	}
}

func TestDirtyEvictionCostsWriteback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sets = 1
	cfg.Ways = 1
	b := New(1, cfg)
	b.Access(0, 0, AgentApp, true) // dirty line
	cost := b.Access(0, cfg.LineSize*uint64(cfg.Sets), AgentApp, false)
	if cost != cfg.MissCycles+cfg.WritebackCycles {
		t.Fatalf("eviction cost %d, want %d", cost, cfg.MissCycles+cfg.WritebackCycles)
	}
	if got := b.Stats().TotalDRAM(); got != 3 { // miss + miss + writeback
		t.Fatalf("DRAM transactions = %d, want 3", got)
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sets = 1
	cfg.Ways = 2
	b := New(1, cfg)
	a0 := uint64(0)
	a1 := cfg.LineSize
	a2 := 2 * cfg.LineSize
	b.Access(0, a0, AgentApp, false)
	b.Access(0, a1, AgentApp, false)
	b.Access(0, a0, AgentApp, false) // a0 now MRU
	b.Access(0, a2, AgentApp, false) // evicts a1
	if c := b.Access(0, a0, AgentApp, false); c != cfg.HitCycles {
		t.Fatal("MRU line was evicted")
	}
	if c := b.Access(0, a1, AgentApp, false); c != cfg.MissCycles {
		t.Fatal("LRU line was retained")
	}
}

func TestAccessRangeChargesPerLine(t *testing.T) {
	cfg := DefaultConfig()
	b := New(1, cfg)
	cost := b.AccessRange(0, 0, 4*cfg.LineSize, AgentRevoker, false)
	if cost != 4*cfg.MissCycles {
		t.Fatalf("range cost %d, want %d", cost, 4*cfg.MissCycles)
	}
	// Unaligned range straddling an extra line.
	cost = b.AccessRange(0, cfg.LineSize*10+8, cfg.LineSize, AgentRevoker, false)
	if cost != 2*cfg.MissCycles {
		t.Fatalf("straddling cost %d, want %d", cost, 2*cfg.MissCycles)
	}
	if b.AccessRange(0, 0, 0, AgentApp, false) != 0 {
		t.Fatal("zero-size range charged")
	}
}

func TestFlushCore(t *testing.T) {
	b := New(1, DefaultConfig())
	b.Access(0, 0x40, AgentApp, true)
	pre := b.Stats().TotalDRAM()
	b.FlushCore(0)
	if got := b.Stats().TotalDRAM(); got != pre+1 {
		t.Fatalf("flush writebacks: DRAM %d, want %d", got, pre+1)
	}
	if c := b.Access(0, 0x40, AgentApp, false); c != DefaultConfig().MissCycles {
		t.Fatal("line survived flush")
	}
}

// Property: total DRAM transactions never exceed accesses*2 (each access
// causes at most a fill and one writeback), and hits cost less than misses.
func TestQuickDRAMBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sets = 16
	f := func(addrs []uint16) bool {
		b := New(1, cfg)
		for i, a := range addrs {
			b.Access(0, uint64(a), AgentApp, i%2 == 0)
		}
		s := b.Stats()
		return s.TotalDRAM() <= 2*s.Accesses && s.Misses <= s.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	bs := New(1, DefaultConfig())
	bs.Access(0, 0, AgentApp, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Access(0, 0, AgentApp, false)
	}
}

func BenchmarkAccessStream(b *testing.B) {
	bs := New(1, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Access(0, uint64(i)*64, AgentRevoker, false)
	}
}
