// Package bus models the memory hierarchy's cost: per-core set-associative
// caches in front of a shared DRAM controller.
//
// The evaluation quantities of the paper that depend on the memory system —
// "bus accesses" (Figures 4 and 6) and the cycle cost of sweeps versus
// application work — are functions of which agent misses in cache where.
// A single-level, write-back, write-allocate cache per core reproduces the
// qualitative behaviour the paper discusses in §5.6: a sequential sweep
// streams through memory and evicts the application's working set, while a
// load-barrier fault warms the application core's cache with data the
// application is about to use.
package bus

import "fmt"

// Agent attributes DRAM traffic to its architectural cause.
type Agent int

// Traffic attribution classes.
const (
	// AgentApp is ordinary application loads and stores.
	AgentApp Agent = iota
	// AgentAlloc is allocator and quarantine metadata traffic (malloc/free
	// bookkeeping, bitmap painting).
	AgentAlloc
	// AgentRevoker is revocation sweep traffic: page scans and revocation
	// bitmap probes.
	AgentRevoker
	// AgentKernel is kernel traffic (hoards, page tables, context switch).
	AgentKernel
	numAgents
)

// String names the agent.
func (a Agent) String() string {
	switch a {
	case AgentApp:
		return "app"
	case AgentAlloc:
		return "alloc"
	case AgentRevoker:
		return "revoker"
	case AgentKernel:
		return "kernel"
	}
	return fmt.Sprintf("agent(%d)", int(a))
}

// Config sets the memory hierarchy geometry and timing.
type Config struct {
	// LineSize is the cache line size in bytes. Must be a power of two.
	LineSize uint64
	// Sets and Ways give the per-core cache geometry.
	Sets, Ways int
	// HitCycles is the latency charged for a cache hit.
	HitCycles uint64
	// MissCycles is the latency charged for a miss (DRAM access).
	MissCycles uint64
	// WritebackCycles is the extra latency charged when a miss evicts a
	// dirty line (which also costs a DRAM transaction).
	WritebackCycles uint64
}

// DefaultConfig models a modest per-core cache: 64 B lines, 512 sets × 8
// ways = 256 KiB, with DRAM at 30× hit latency. The absolute values are not
// Morello's, but the hit/miss ratio structure — which drives every traffic
// figure — is scale-free.
func DefaultConfig() Config {
	return Config{
		LineSize:        64,
		Sets:            512,
		Ways:            8,
		HitCycles:       4,
		MissCycles:      120,
		WritebackCycles: 30,
	}
}

type line struct {
	tag   uint64
	lru   uint64
	valid bool
	dirty bool
}

type cache struct {
	lines []line // Sets*Ways, set-major
	tick  uint64
}

// Stats accumulates DRAM transactions by core and by agent.
type Stats struct {
	// DRAMByAgent counts DRAM transactions (misses + writebacks) caused by
	// each agent.
	DRAMByAgent [numAgents]uint64
	// DRAMByCore counts DRAM transactions by requesting core.
	DRAMByCore []uint64
	// Accesses counts all cache accesses (hit or miss).
	Accesses uint64
	// Misses counts cache misses.
	Misses uint64
}

// TotalDRAM returns total DRAM transactions across all agents.
func (s Stats) TotalDRAM() uint64 {
	var t uint64
	for _, v := range s.DRAMByAgent {
		t += v
	}
	return t
}

// Bus is the memory hierarchy model: one cache per core over shared DRAM.
type Bus struct {
	cfg       Config
	caches    []cache
	lineShift uint
	stats     Stats
}

// New creates a Bus for ncores cores.
func New(ncores int, cfg Config) *Bus {
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	if cfg.LineSize != 1<<shift {
		panic(fmt.Sprintf("bus: LineSize %d not a power of two", cfg.LineSize))
	}
	b := &Bus{cfg: cfg, lineShift: shift}
	b.caches = make([]cache, ncores)
	for i := range b.caches {
		b.caches[i].lines = make([]line, cfg.Sets*cfg.Ways)
	}
	b.stats.DRAMByCore = make([]uint64, ncores)
	return b
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Stats returns a snapshot of the accumulated statistics.
func (b *Bus) Stats() Stats {
	s := b.stats
	s.DRAMByCore = append([]uint64(nil), b.stats.DRAMByCore...)
	return s
}

// Access models a memory access of any width within one cache line at addr
// by agent on core. It returns the cycle cost. Write accesses mark the line
// dirty; evicting a dirty line costs an extra DRAM transaction.
func (b *Bus) Access(core int, addr uint64, agent Agent, write bool) uint64 {
	c := &b.caches[core]
	c.tick++
	b.stats.Accesses++
	lineAddr := addr >> b.lineShift
	set := int(lineAddr) % b.cfg.Sets
	ways := c.lines[set*b.cfg.Ways : (set+1)*b.cfg.Ways]

	// Hit?
	for i := range ways {
		if ways[i].valid && ways[i].tag == lineAddr {
			ways[i].lru = c.tick
			if write {
				ways[i].dirty = true
			}
			return b.cfg.HitCycles
		}
	}

	// Miss: choose victim (invalid first, else least-recently used).
	b.stats.Misses++
	b.stats.DRAMByAgent[agent]++
	b.stats.DRAMByCore[core]++
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	cost := b.cfg.MissCycles
	if ways[victim].valid && ways[victim].dirty {
		b.stats.DRAMByAgent[agent]++
		b.stats.DRAMByCore[core]++
		cost += b.cfg.WritebackCycles
	}
	ways[victim] = line{tag: lineAddr, lru: c.tick, valid: true, dirty: write}
	return cost
}

// AccessRange models a sequential access covering [addr, addr+size) and
// returns the total cycle cost. Each distinct line is charged once.
func (b *Bus) AccessRange(core int, addr, size uint64, agent Agent, write bool) uint64 {
	if size == 0 {
		return 0
	}
	first := addr >> b.lineShift
	last := (addr + size - 1) >> b.lineShift
	var cost uint64
	for l := first; l <= last; l++ {
		cost += b.Access(core, l<<b.lineShift, agent, write)
	}
	return cost
}

// FlushCore invalidates a core's cache (e.g. across a simulated reboot in
// batch harnesses). Dirty lines are written back and attributed to the
// kernel.
func (b *Bus) FlushCore(core int) {
	c := &b.caches[core]
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			b.stats.DRAMByAgent[AgentKernel]++
			b.stats.DRAMByCore[core]++
		}
		c.lines[i] = line{}
	}
}
