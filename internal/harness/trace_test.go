package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/revoke"
	"repro/internal/trace"
	"repro/internal/workload/pgbench"
)

// TestReloadedPgbenchTrace is the tracing acceptance check: a Reloaded
// pgbench run with tracing enabled must produce a Chrome trace_event JSON
// that shows, for at least one epoch, the STW span, concurrent sweep
// spans per worker, and at least one load-barrier fault instant carrying
// its faulting VA.
func TestReloadedPgbenchTrace(t *testing.T) {
	cfg := PgbenchConfig()
	cfg.Trace = trace.New(1 << 18)
	cond := Condition{
		Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded,
		RevokerCores: []int{2}, Workers: 2,
	}
	r, err := Run(pgbench.New(1500), cond, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace != cfg.Trace {
		t.Fatal("Result.Trace does not carry the run's tracer")
	}
	if len(r.Epochs) == 0 {
		t.Fatal("run produced no revocation epochs")
	}

	// Structural checks on the raw events: per epoch, one STW span and
	// the per-worker sweep slices; fault instants with a VA.
	type epochShape struct {
		stwBegin, stwEnd bool
		sweepWorkers     map[uint64]bool
		faults           int
	}
	shapes := map[uint64]*epochShape{}
	shape := func(e uint64) *epochShape {
		if shapes[e] == nil {
			shapes[e] = &epochShape{sweepWorkers: map[uint64]bool{}}
		}
		return shapes[e]
	}
	for _, ev := range r.Trace.Events() {
		switch ev.Kind {
		case trace.KindSTW:
			if ev.Phase == trace.PhaseBegin {
				shape(ev.Epoch).stwBegin = true
			} else {
				shape(ev.Epoch).stwEnd = true
			}
		case trace.KindSweep:
			if ev.Phase == trace.PhaseBegin {
				shape(ev.Epoch).sweepWorkers[ev.Arg] = true
			}
		case trace.KindFault:
			if ev.Arg == 0 {
				t.Error("fault instant without a faulting VA")
			}
			shape(ev.Epoch).faults++
		}
	}
	complete := 0
	for _, sh := range shapes {
		if sh.stwBegin && sh.stwEnd && len(sh.sweepWorkers) >= 2 && sh.faults >= 1 {
			complete++
		}
	}
	if complete == 0 {
		t.Fatalf("no epoch shows STW span + ≥2 worker sweep slices + ≥1 fault; epochs seen: %d", len(shapes))
	}

	// The Chrome export must be valid JSON with the same content visible:
	// X spans for stop-the-world and per-worker sweeps, fault instants
	// with a hex VA arg.
	var buf bytes.Buffer
	if err := r.Trace.WriteChrome(&buf, r.HzGHz); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var stwSpans, sweepSpans, faultVA int
	sweepByWorker := map[any]bool{}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Cat == "stop-the-world" && ev.Ph == "X":
			stwSpans++
		case ev.Cat == "sweep" && ev.Ph == "X":
			sweepSpans++
			sweepByWorker[ev.Args["worker"]] = true
		case ev.Cat == "load-barrier-fault" && ev.Ph == "i":
			if va, ok := ev.Args["va"].(string); ok && len(va) > 2 && va[:2] == "0x" {
				faultVA++
			}
		}
	}
	if stwSpans == 0 {
		t.Error("chrome export has no stop-the-world X span")
	}
	if len(sweepByWorker) < 2 {
		t.Errorf("chrome export shows %d distinct sweep workers, want ≥2", len(sweepByWorker))
	}
	if faultVA == 0 {
		t.Error("chrome export has no load-barrier fault instant with a hex VA")
	}
}

// TestTracingDisabledIsFree pins the no-op contract: a run with no tracer
// configured leaves Result.Trace nil and behaves identically.
func TestTracingDisabledIsFree(t *testing.T) {
	cfg := fastCfg()
	cond := StandardConditions()[0]
	r1, err := Run(pgbench.New(200), cond, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Trace != nil {
		t.Fatal("Result.Trace should be nil when tracing is off")
	}
	cfg2 := cfg
	cfg2.Trace = trace.New(1 << 14)
	r2, err := Run(pgbench.New(200), cond, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// Tracing must not perturb the simulation: bit-identical virtual time.
	if r1.WallCycles != r2.WallCycles || r1.CPUCycles != r2.CPUCycles {
		t.Errorf("tracing changed the run: wall %d vs %d, cpu %d vs %d",
			r1.WallCycles, r2.WallCycles, r1.CPUCycles, r2.CPUCycles)
	}
}
