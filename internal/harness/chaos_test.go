package harness

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/revoke"
	"repro/internal/workload/chaos"
)

// chaosConfig is the campaign configuration: a small quarantine floor so
// epochs are frequent, the oracle armed, and a tight scheduler skew
// quantum so application loads interleave with the concurrent sweep in
// virtual time (at the default 50k-cycle quantum a whole background pass
// fits between two application slices and mid-epoch races never occur).
func chaosConfig(seed int64, spec *fault.Spec) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Machine.Sim.SkewQuantum = 2_000
	cfg.QuarantineMin = 8 << 10
	cfg.Oracle = true
	cfg.Fault = spec
	return cfg
}

func reloadedCond() Condition {
	return Condition{Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded, Workers: 3}
}

// TestChaosMutationMatrix checks the acceptance matrix: each fault class
// injected against Reloaded is either flagged by the soundness oracle
// (detected-unsound) or absorbed by abort-and-retry with the recovery
// recorded. A class that injects but produces neither is a silent
// soundness hole.
func TestChaosMutationMatrix(t *testing.T) {
	type expect struct {
		// detected requires oracle violations; tolerated requires a recovery
		// counter. shootdown-drop may land either way (the app can race the
		// stale-TLB window before the retry heals it), so both are set.
		detected, tolerated bool
		recovered           func(r revoke.RecoveryStats) uint64
	}
	cases := map[string]expect{
		"shootdown-drop":      {detected: true, tolerated: true, recovered: func(r revoke.RecoveryStats) uint64 { return r.ShootdownRetries }},
		"cap-dirty-loss":      {detected: true},
		"barrier-suppress":    {detected: true},
		"tag-stale-read":      {detected: true},
		"worker-crash":        {tolerated: true, recovered: func(r revoke.RecoveryStats) uint64 { return r.SlicesReclaimed + r.WorkersRespawned }},
		"epoch-publish-delay": {tolerated: true, recovered: func(r revoke.RecoveryStats) uint64 { return r.PublishDelays }},
	}
	for _, cls := range fault.ClassNames() {
		exp, ok := cases[cls]
		if !ok {
			t.Fatalf("matrix has no expectation for class %q", cls)
		}
		t.Run(cls, func(t *testing.T) {
			spec := &fault.Spec{Seed: 7, Classes: []string{cls}, MaxPerClass: 8}
			res, err := Run(chaos.New(4000), reloadedCond(), chaosConfig(1, spec))
			if err != nil {
				t.Fatal(err)
			}
			if res.Fault.Injections == 0 {
				t.Fatalf("%s: no injection opportunities fired — the fault is not wired", cls)
			}
			viol := res.Oracle.ViolationCount
			var recov uint64
			if exp.recovered != nil {
				recov = exp.recovered(res.Recovery)
			}
			switch {
			case exp.detected && exp.tolerated:
				if viol == 0 && recov == 0 {
					t.Fatalf("%s: %d injections, no violation and no recovery (silent)",
						cls, res.Fault.Injections)
				}
			case exp.detected:
				if viol == 0 {
					t.Fatalf("%s: %d injections slipped past the oracle (recovery %+v)",
						cls, res.Fault.Injections, res.Recovery)
				}
			default:
				if viol != 0 {
					t.Fatalf("%s should be absorbed by recovery, oracle flagged %d violations: %+v",
						cls, viol, res.Oracle.Violations)
				}
				if recov == 0 {
					t.Fatalf("%s: %d injections tolerated but no recovery recorded (%+v)",
						cls, res.Fault.Injections, res.Recovery)
				}
			}
		})
	}
}

// TestChaosCleanRuns asserts the faults-disabled invariant: with the oracle
// armed and no injection, every strategy passes the audit with zero
// violations.
func TestChaosCleanRuns(t *testing.T) {
	for _, s := range revoke.Strategies() {
		cond := Condition{Name: s.String(), Shimmed: true, Strategy: s, Workers: 3}
		res, err := Run(chaos.New(3000), cond, chaosConfig(3, nil))
		if err != nil {
			t.Fatal(err)
		}
		if res.Oracle.ViolationCount != 0 {
			t.Fatalf("%s: clean run flagged %d violations: %+v",
				s, res.Oracle.ViolationCount, res.Oracle.Violations)
		}
		if res.Oracle.EpochsChecked == 0 {
			t.Fatalf("%s: oracle never saw an epoch boundary", s)
		}
		if res.Fault != nil {
			t.Fatalf("%s: fault report present without a spec", s)
		}
	}
}

// TestChaosDeterminism runs the same faulted campaign twice and requires
// byte-identical fault, oracle, and recovery results.
func TestChaosDeterminism(t *testing.T) {
	run := func() *Result {
		spec := &fault.Spec{Seed: 11, Rate: 0.5, DelayCycles: 50_000}
		res, err := Run(chaos.New(3000), reloadedCond(), chaosConfig(5, spec))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Fault, b.Fault) {
		t.Fatalf("fault reports diverged:\n%+v\n%+v", a.Fault, b.Fault)
	}
	if !reflect.DeepEqual(a.Oracle, b.Oracle) {
		t.Fatalf("oracle reports diverged:\n%+v\n%+v", a.Oracle, b.Oracle)
	}
	if a.Recovery != b.Recovery {
		t.Fatalf("recovery stats diverged: %+v vs %+v", a.Recovery, b.Recovery)
	}
	if a.WallCycles != b.WallCycles {
		t.Fatalf("wall clocks diverged: %d vs %d", a.WallCycles, b.WallCycles)
	}
}

// TestOracleRequiresShim pins the configuration error.
func TestOracleRequiresShim(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Oracle = true
	if _, err := Run(chaos.New(10), Baseline(), cfg); err == nil {
		t.Fatal("oracle over the bare allocator should be rejected")
	}
}
