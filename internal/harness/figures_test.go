package harness

import (
	"strings"
	"testing"
)

// tinyCfg keeps figure smoke tests fast.
func tinyCfg() Config {
	cfg := DefaultConfig()
	cfg.Scale = 512
	return cfg
}

// expectRows asserts the table has a row starting with each given name and
// that every row has as many cells as the header.
func expectRows(t *testing.T, tb *Table, names ...string) {
	t.Helper()
	for _, row := range tb.Rows {
		if len(row) != len(tb.Header) {
			t.Errorf("row %v has %d cells, header has %d", row, len(row), len(tb.Header))
		}
	}
	for _, n := range names {
		found := false
		for _, row := range tb.Rows {
			if row[0] == n {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("table %q missing row %q:\n%s", tb.Title, n, tb)
		}
	}
}

func TestFig1Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Fig1WallClock(tinyCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb, "astar", "bzip2", "gobmk", "hmmer", "libquantum", "omnetpp", "sjeng", "xalancbmk")
	if len(tb.Header) != 4 {
		t.Fatalf("header = %v", tb.Header)
	}
}

func TestFig2Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Fig2CPUTime(tinyCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb, "astar", "gobmk", "hmmer", "libquantum", "omnetpp", "xalancbmk")
	for _, row := range tb.Rows {
		if row[0] == "bzip2" || row[0] == "sjeng" {
			t.Fatalf("non-engaging benchmark %s in Figure 2", row[0])
		}
	}
}

func TestFig3Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Fig3RSS(tinyCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	// Sorted descending by baseline RSS.
	prev := 1e18
	for _, row := range tb.Rows {
		v := cellMiB(row[1])
		if v > prev {
			t.Fatalf("rows not sorted by baseline RSS: %v", tb.Rows)
		}
		prev = v
	}
}

func cellMiB(s string) float64 {
	var v float64
	_, err := sscanf(s, &v)
	if err != nil {
		return 0
	}
	return v
}

// sscanf extracts the leading float of a cell like "12.3MiB".
func sscanf(s string, v *float64) (int, error) {
	end := 0
	for end < len(s) && (s[end] == '.' || s[end] == '-' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	if end == 0 {
		return 0, nil
	}
	var x float64
	var frac, div float64 = 0, 1
	seen := false
	for i := 0; i < end; i++ {
		if s[i] == '.' {
			seen = true
			continue
		}
		d := float64(s[i] - '0')
		if seen {
			div *= 10
			frac += d / div
		} else {
			x = x*10 + d
		}
	}
	*v = x + frac
	return 1, nil
}

func TestFig4Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Fig4BusTraffic(tinyCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb, "omnetpp", "xalancbmk")
	if len(tb.Notes) == 0 || !strings.Contains(tb.Notes[0], "median") {
		t.Fatal("missing Rel/Cor median note")
	}
}

func TestFig5To7Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	cfg := PgbenchConfig()
	cfg.Scale = 64
	tb5, err := Fig5PgbenchTime(300, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb5, "Reloaded", "Cornucopia", "CHERIvoke", "Paint+sync")
	tb6, err := Fig6PgbenchBus(300, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb6, "Reloaded", "Paint+sync")
	tb7, err := Fig7PgbenchCDF(300, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb7, "Reloaded", "CHERIvoke")
	if len(tb7.Notes) < 3 {
		t.Fatalf("Figure 7 notes = %v", tb7.Notes)
	}
}

func TestTable1Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	cfg := PgbenchConfig()
	cfg.Scale = 64
	tb, err := Table1RateSchedules(300, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (3 rates + unscheduled)", len(tb.Rows))
	}
	expectRows(t, tb, "unscheduled")
}

func TestFig8Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	tb, err := Fig8QPSLatency(100_000_000, 10_000_000, QPSConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb, "Baseline(ms)", "Reloaded", "Cornucopia", "Paint+sync")
	for _, row := range tb.Rows {
		if row[0] == "CHERIvoke" {
			t.Fatal("CHERIvoke must be excluded from Figure 8")
		}
	}
}

func TestFig9AndTable2Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	cfg := tinyCfg()
	tb, err := Fig9Phases(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, tb, "xalancbmk", "pgbench", "gRPC QPS")
	// Each SPEC benchmark contributes six phase rows.
	count := 0
	for _, row := range tb.Rows {
		if row[0] == "xalancbmk" {
			count++
		}
	}
	if count != 6 {
		t.Fatalf("xalancbmk phase rows = %d, want 6", count)
	}
	t2, err := Table2RevRates(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, t2, "xalancbmk", "pgbench", "gRPC QPS")
}
