package harness

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/workload/chaos"
	"repro/internal/workload/spec"
)

// TestTelemetryConservationSPEC runs the figure-1 conditions with the
// profiler armed and checks the core invariant: per-core attributed busy
// cycles plus idle cycles equal the core's clock, exactly.
func TestTelemetryConservationSPEC(t *testing.T) {
	p := spec.ByName("hmmer")[1]
	for _, c := range append([]Condition{Baseline()}, StandardConditions()...) {
		cfg := fastCfg()
		cfg.Telem = telemetry.New(telemetry.Options{SampleEvery: 200_000})
		r, err := Run(p, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap := cfg.Telem.Snapshot()
		if err := snap.CheckConservation(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		// The profile must cover every core clock the engine reports.
		var total, clocks uint64
		for _, st := range snap.Stacks {
			total += st.Cycles
		}
		for i, cc := range snap.CoreClock {
			clocks += cc
			_ = i
		}
		for _, idle := range snap.Idle {
			total += idle
		}
		if total != clocks {
			t.Fatalf("%s: attributed %d != summed clocks %d", c.Name, total, clocks)
		}
		if r.WallCycles == 0 {
			t.Fatalf("%s: empty run", c.Name)
		}
	}
}

// TestTelemetryDoesNotPerturbRuns asserts that enabling telemetry changes
// nothing about what a run computes: wall clock, CPU, DRAM and epoch
// counts match a telemetry-free run of the same configuration.
func TestTelemetryDoesNotPerturbRuns(t *testing.T) {
	p := spec.ByName("hmmer")[1]
	cond := StandardConditions()[0] // Reloaded
	bare, err := Run(p, cond, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Telem = telemetry.New(telemetry.Options{})
	inst, err := Run(p, cond, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.WallCycles != inst.WallCycles || bare.CPUCycles != inst.CPUCycles ||
		bare.DRAMTotal != inst.DRAMTotal || len(bare.Epochs) != len(inst.Epochs) {
		t.Fatalf("telemetry perturbed the run:\nbare %+v\ninst %+v", bare, inst)
	}
}

// TestTelemetryStacksAndSeries checks that the expected component stacks
// and metric series actually show up under Reloaded: load-barrier faults
// nest sweep work under the app, the revoker sweeps and shoots down, and
// the standard counters move.
func TestTelemetryStacksAndSeries(t *testing.T) {
	p := spec.ByName("hmmer")[1]
	cfg := fastCfg()
	// Tight skew quantum and a small quarantine floor interleave epochs
	// with application loads, so Reloaded's load barrier actually fires.
	cfg.Machine.Sim.SkewQuantum = 2_000
	cfg.QuarantineMin = 8 << 10
	cfg.Telem = telemetry.New(telemetry.Options{SampleEvery: 200_000})
	if _, err := Run(p, StandardConditions()[0], cfg); err != nil {
		t.Fatal(err)
	}
	snap := cfg.Telem.Snapshot()
	got := map[string]uint64{}
	for _, st := range snap.Stacks {
		got[st.Stack] += st.Cycles
	}
	for _, want := range []string{
		"app", "app;alloc", "app;alloc;kernel", "app;quarantine",
		"app;barrier-fault", "revoker;sweep", "revoker;shootdown",
	} {
		if got[want] == 0 {
			t.Errorf("no cycles attributed to stack %q (have %v)", want, keys(got))
		}
	}
	series := map[string]telemetry.SeriesSnap{}
	for _, ss := range snap.Series {
		series[ss.Name] = ss
	}
	for _, name := range []string{
		"gen_faults_total", "epochs_total", "swept_pages_total",
		"heap_allocs_total", "quarantine_blocks_total",
	} {
		if _, ok := series[name]; !ok {
			t.Fatalf("series %q missing", name)
		}
	}
	for _, name := range []string{"gen_faults_total", "epochs_total", "swept_pages_total", "heap_allocs_total"} {
		if series[name].Value == 0 {
			t.Errorf("series %q never moved", name)
		}
	}
	if series["epoch_cycles"].Count == 0 {
		t.Error("epoch_cycles histogram has no observations")
	}
	if len(snap.Rows) == 0 {
		t.Fatal("no time-series rows sampled")
	}
	last := uint64(0)
	for _, rw := range snap.Rows {
		if rw.Cycle <= last {
			t.Fatalf("rows not strictly increasing: %d after %d", rw.Cycle, last)
		}
		last = rw.Cycle
	}
	var buf bytes.Buffer
	if err := snap.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("folded export empty")
	}
}

// TestTelemetryConservationChaos runs the chaos workload — worker crashes,
// epoch retries, concurrent sweep visits — and demands the same exact
// cycle conservation.
func TestTelemetryConservationChaos(t *testing.T) {
	cfg := chaosConfig(1, nil)
	cfg.Telem = telemetry.New(telemetry.Options{SampleEvery: 100_000})
	if _, err := Run(chaos.New(4000), reloadedCond(), cfg); err != nil {
		t.Fatal(err)
	}
	snap := cfg.Telem.Snapshot()
	if err := snap.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if len(snap.Stacks) == 0 {
		t.Fatal("no stacks recorded")
	}
}

func keys(m map[string]uint64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
