// Per-suite experiment configurations. The figure and table drivers
// themselves live in internal/expt, which expands each one into a grid of
// (workload, condition, seed) jobs over Run; these configurations are the
// shared vocabulary between the harness and that orchestrator.
package harness

import "repro/internal/revoke"

// SpecConfig returns the configuration used for SPEC experiments.
func SpecConfig() Config { return DefaultConfig() }

// PgbenchConfig returns the pgbench configuration: a larger relative scale
// so that sweep durations relate to transaction latency as on Morello.
func PgbenchConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 8
	return cfg
}

// QPSConfig returns the gRPC QPS configuration.
func QPSConfig() Config {
	cfg := DefaultConfig()
	cfg.AppCores = []int{3} // server threads use 2 and 3; Body spawns on 2
	return cfg
}

// QPSConditions returns the paper's conditions with the revoker unpinned
// (§5.3). CHERIvoke is excluded, as in the paper (footnote 25).
func QPSConditions() []Condition {
	var out []Condition
	for _, c := range StandardConditions() {
		if c.Strategy == revoke.CHERIvoke && c.Shimmed {
			continue
		}
		c.RevokerCores = nil
		out = append(out, c)
	}
	return out
}
