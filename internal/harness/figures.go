// Experiment drivers: one function per figure and table of the paper's
// evaluation (§5). Each returns a Table whose rows mirror what the paper
// plots; cmd/spec2006, cmd/pgbench, cmd/qps and cmd/phases print them, and
// bench_test.go wraps them as benchmarks.
package harness

import (
	"fmt"
	"sort"

	"repro/internal/bus"

	"repro/internal/metrics"
	"repro/internal/revoke"
	"repro/internal/workload/pgbench"
	"repro/internal/workload/qps"
	"repro/internal/workload/spec"
)

// SpecConfig returns the configuration used for SPEC experiments.
func SpecConfig() Config { return DefaultConfig() }

// PgbenchConfig returns the pgbench configuration: a larger relative scale
// so that sweep durations relate to transaction latency as on Morello.
func PgbenchConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 8
	return cfg
}

// QPSConfig returns the gRPC QPS configuration.
func QPSConfig() Config {
	cfg := DefaultConfig()
	cfg.AppCores = []int{3} // server threads use 2 and 3; Body spawns on 2
	return cfg
}

// QPSConditions returns the paper's conditions with the revoker unpinned
// (§5.3). CHERIvoke is excluded, as in the paper (footnote 25).
func QPSConditions() []Condition {
	var out []Condition
	for _, c := range StandardConditions() {
		if c.Strategy == revoke.CHERIvoke && c.Shimmed {
			continue
		}
		c.RevokerCores = nil
		out = append(out, c)
	}
	return out
}

// specRun bundles repeated runs of one profile under one condition.
type specRun struct {
	profile spec.Profile
	cond    Condition
	runs    []*Result
}

// specMatrix runs profiles × conditions (plus baseline) with reps.
func specMatrix(profiles []spec.Profile, conds []Condition, cfg Config, reps int) (map[string]map[string][]*Result, error) {
	out := map[string]map[string][]*Result{}
	all := append([]Condition{Baseline()}, conds...)
	for _, p := range profiles {
		out[p.Name()] = map[string][]*Result{}
		for _, c := range all {
			rs, err := Repeat(p, c, cfg, reps)
			if err != nil {
				return nil, err
			}
			out[p.Name()][c.Name] = rs
		}
	}
	return out, nil
}

// benchNames returns the distinct benchmark names of profiles, in order.
func benchNames(profiles []spec.Profile) []string {
	var names []string
	seen := map[string]bool{}
	for _, p := range profiles {
		if !seen[p.Bench] {
			seen[p.Bench] = true
			names = append(names, p.Bench)
		}
	}
	return names
}

// geomeanOverheadPct computes, for one benchmark and condition, the geomean
// over its inputs of metric ratios versus baseline, as a percentage.
func geomeanOverheadPct(profiles []spec.Profile, m map[string]map[string][]*Result,
	bench, cond string, metric func([]*Result) float64) float64 {
	var ratios []float64
	for _, p := range profiles {
		if p.Bench != bench {
			continue
		}
		base := metric(m[p.Name()]["Baseline"])
		test := metric(m[p.Name()][cond])
		ratios = append(ratios, metrics.Ratio(test, base))
	}
	return (metrics.Geomean(ratios) - 1) * 100
}

// Fig1WallClock reproduces Figure 1: wall-clock overheads of Reloaded,
// Cornucopia and CHERIvoke over the CHERI spatially-safe baseline, per SPEC
// benchmark (geomean over inputs).
func Fig1WallClock(cfg Config, reps int) (*Table, error) {
	profiles := spec.Profiles()
	conds := SweepConditions()
	m, err := specMatrix(profiles, conds, cfg, reps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 1: SPEC CPU2006 INT wall-clock overheads vs CHERI baseline",
		Header: []string{"benchmark", "Reloaded", "Cornucopia", "CHERIvoke"},
	}
	for _, bench := range benchNames(profiles) {
		row := []string{bench}
		for _, c := range conds {
			row = append(row, pct(geomeanOverheadPct(profiles, m, bench, c.Name, MeanWall)))
		}
		t.AddRow(row...)
	}
	t.AddNote("bzip2 and sjeng do not engage revocation and are excluded from subsequent figures")
	return t, nil
}

// Fig2CPUTime reproduces Figure 2: total CPU-time overheads (all cores),
// including asynchronous quarantine management (Paint+sync).
func Fig2CPUTime(cfg Config, reps int) (*Table, error) {
	profiles := spec.RevocationEngaging()
	conds := StandardConditions()
	m, err := specMatrix(profiles, conds, cfg, reps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 2: SPEC total CPU-time overheads (all cores)",
		Header: []string{"benchmark", "Reloaded", "Cornucopia", "CHERIvoke", "Paint+sync"},
	}
	for _, bench := range benchNames(profiles) {
		row := []string{bench}
		for _, c := range conds {
			row = append(row, pct(geomeanOverheadPct(profiles, m, bench, c.Name, MeanCPU)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig3RSS reproduces Figure 3: peak-RSS ratio between test condition and
// baseline, sorted descending by baseline RSS.
func Fig3RSS(cfg Config, reps int) (*Table, error) {
	profiles := []spec.Profile{}
	for _, name := range []string{"xalancbmk", "omnetpp", "astar", "libquantum", "gobmk", "hmmer"} {
		profiles = append(profiles, spec.ByName(name)[0])
	}
	conds := StandardConditions()
	m, err := specMatrix(profiles, conds, cfg, reps)
	if err != nil {
		return nil, err
	}
	type row struct {
		name    string
		baseMiB float64
		ratios  []float64
	}
	var rows []row
	for _, p := range profiles {
		base := MeanRSS(m[p.Name()]["Baseline"])
		r := row{name: p.Name(), baseMiB: base * 4096 / (1 << 20)}
		for _, c := range conds {
			r.ratios = append(r.ratios, metrics.Ratio(MeanRSS(m[p.Name()][c.Name]), base))
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].baseMiB > rows[j].baseMiB })
	t := &Table{
		Title:  "Figure 3: peak memory footprint (RSS) ratio vs baseline",
		Header: []string{"benchmark", "baseRSS", "Reloaded", "Cornucopia", "CHERIvoke", "Paint+sync"},
	}
	for _, r := range rows {
		cells := []string{r.name, fmt.Sprintf("%.1fMiB", r.baseMiB)}
		for _, v := range r.ratios {
			cells = append(cells, f3(v))
		}
		t.AddRow(cells...)
	}
	t.AddNote("policy target is 1.33x (33%% of the heap in quarantine); small-heap benchmarks are dominated by the scaled 8 MiB quarantine floor")
	return t, nil
}

// Fig4BusTraffic reproduces Figure 4: DRAM bus traffic overheads, with
// Reloaded's mean traffic as a percentage of Cornucopia's.
func Fig4BusTraffic(cfg Config, reps int) (*Table, error) {
	profiles := spec.RevocationEngaging()
	conds := SweepConditions()
	m, err := specMatrix(profiles, conds, cfg, reps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 4: SPEC DRAM bus traffic overheads",
		Header: []string{"benchmark", "baseGTx", "Reloaded", "Cornucopia", "CHERIvoke", "Rel/Cor"},
	}
	var relCorRatios []float64
	for _, bench := range benchNames(profiles) {
		var baseTx float64
		for _, p := range profiles {
			if p.Bench == bench {
				baseTx += MeanDRAM(m[p.Name()]["Baseline"])
			}
		}
		row := []string{bench, fmt.Sprintf("%.2g", baseTx/1e9)}
		for _, c := range conds {
			row = append(row, pct(geomeanOverheadPct(profiles, m, bench, c.Name, MeanDRAM)))
		}
		rel := geomeanOverheadPct(profiles, m, bench, "Reloaded", MeanDRAM)
		cor := geomeanOverheadPct(profiles, m, bench, "Cornucopia", MeanDRAM)
		ratio := metrics.Ratio(rel, cor)
		relCorRatios = append(relCorRatios, ratio)
		row = append(row, fmt.Sprintf("%.0f%%", ratio*100))
		t.AddRow(row...)
	}
	sort.Float64s(relCorRatios)
	t.AddNote("median Reloaded traffic overhead relative to Cornucopia: %.0f%% (paper: 87%%)",
		relCorRatios[len(relCorRatios)/2]*100)
	return t, nil
}

// pgbenchMatrix runs pgbench under baseline + the standard conditions.
func pgbenchMatrix(txs int, cfg Config, reps int) (map[string][]*Result, error) {
	out := map[string][]*Result{}
	for _, c := range append([]Condition{Baseline()}, StandardConditions()...) {
		rs, err := Repeat(pgbench.New(txs), c, cfg, reps)
		if err != nil {
			return nil, err
		}
		out[c.Name] = rs
	}
	return out, nil
}

// Fig5PgbenchTime reproduces Figure 5: normalized time overheads for
// pgbench: wall clock, total CPU (all cores), and the server thread alone.
func Fig5PgbenchTime(txs int, cfg Config, reps int) (*Table, error) {
	m, err := pgbenchMatrix(txs, cfg, reps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 5: pgbench normalized time overheads",
		Header: []string{"condition", "wall", "totalCPU", "serverCPU"},
	}
	serverCPU := func(rs []*Result) float64 {
		var s metrics.Samples
		for _, r := range rs {
			s.AddU(r.AppCPUCycles)
		}
		return s.Mean()
	}
	base := m["Baseline"]
	for _, c := range StandardConditions() {
		rs := m[c.Name]
		t.AddRow(c.Name,
			pct(metrics.Overhead(MeanWall(rs), MeanWall(base))),
			pct(metrics.Overhead(MeanCPU(rs), MeanCPU(base))),
			pct(metrics.Overhead(serverCPU(rs), serverCPU(base))))
	}
	t.AddNote("the workload is not steadily CPU-bound: server CPU overheads can exceed wall overheads (§5.2)")
	return t, nil
}

// Fig6PgbenchBus reproduces Figure 6: normalized bus access overheads for
// pgbench, total and on the application core.
func Fig6PgbenchBus(txs int, cfg Config, reps int) (*Table, error) {
	m, err := pgbenchMatrix(txs, cfg, reps)
	if err != nil {
		return nil, err
	}
	appCore := cfg.AppCores
	if len(appCore) == 0 {
		appCore = []int{3}
	}
	coreDRAM := func(rs []*Result) float64 {
		var s metrics.Samples
		for _, r := range rs {
			s.AddU(r.DRAMByCore[appCore[0]])
		}
		return s.Mean()
	}
	revokerDRAM := func(rs []*Result) float64 {
		var s metrics.Samples
		for _, r := range rs {
			s.AddU(r.DRAMByAgent[bus.AgentRevoker])
		}
		return s.Mean()
	}
	t := &Table{
		Title:  "Figure 6: pgbench normalized bus access overheads",
		Header: []string{"condition", "total", "appCore", "sweepTraffic"},
	}
	base := m["Baseline"]
	for _, c := range StandardConditions() {
		rs := m[c.Name]
		t.AddRow(c.Name,
			pct(metrics.Overhead(MeanDRAM(rs), MeanDRAM(base))),
			pct(metrics.Overhead(coreDRAM(rs), coreDRAM(base))),
			fmt.Sprintf("%.1f%%", 100*revokerDRAM(rs)/MeanDRAM(base)))
	}
	relOv := metrics.Overhead(MeanDRAM(m["Reloaded"]), MeanDRAM(base))
	corOv := metrics.Overhead(MeanDRAM(m["Cornucopia"]), MeanDRAM(base))
	t.AddNote("Reloaded incurs %.0f%% of Cornucopia's traffic overhead (paper: <50%%)", 100*metrics.Ratio(relOv, corOv))
	t.AddNote("at 1/8 scale, quarantine cache effects dominate both strategies' traffic and Cornucopia's STW re-sweep collapses; the paper's pgbench traffic gap does not reproduce here (it does across SPEC, Figure 4)")
	return t, nil
}

// Fig7Samples collects the per-transaction latency samples per condition
// (in milliseconds), for plotting Figure 7's CDF directly.
func Fig7Samples(txs int, cfg Config, reps int) (map[string]*metrics.Samples, error) {
	m, err := pgbenchMatrix(txs, cfg, reps)
	if err != nil {
		return nil, err
	}
	out := map[string]*metrics.Samples{}
	for name, rs := range m {
		lat := &metrics.Samples{}
		for _, r := range rs {
			lat.Merge(r.Lat.Scaled(r.HzGHz * 1e6)) // cycles → ms
		}
		out[name] = lat
	}
	return out, nil
}

// Fig7PgbenchCDF reproduces Figure 7: the per-transaction latency
// distribution per condition, with the median world-stopped durations and
// Reloaded's median cumulative fault-handling time.
func Fig7PgbenchCDF(txs int, cfg Config, reps int) (*Table, error) {
	m, err := pgbenchMatrix(txs, cfg, reps)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 7: pgbench per-transaction latency distribution (ms)",
		Header: []string{"condition", "p50", "p85", "p90", "p95", "p99", "p99.9", "max"},
	}
	order := []string{"Paint+sync", "CHERIvoke", "Cornucopia", "Reloaded"}
	for _, name := range order {
		rs := m[name]
		lat := &metrics.Samples{}
		for _, r := range rs {
			lat.Merge(r.Lat)
		}
		hz := rs[0].HzGHz * 1e6 // cycles per ms
		row := []string{name}
		for _, p := range []float64{50, 85, 90, 95, 99, 99.9, 100} {
			row = append(row, f3(lat.Percentile(p)/hz))
		}
		t.AddRow(row...)
	}
	// Phase medians (the dashed/dotted segments of the figure).
	for _, name := range []string{"CHERIvoke", "Cornucopia", "Reloaded"} {
		stw := &metrics.Samples{}
		faults := &metrics.Samples{}
		for _, r := range m[name] {
			for _, e := range r.Epochs {
				stw.AddU(e.STWCycles)
				faults.AddU(e.FaultCycles)
			}
		}
		hz := m[name][0].HzGHz * 1e6
		if name == "Reloaded" {
			t.AddNote("%s median world-stopped %.4f ms; median cumulative fault time %.4f ms",
				name, stw.Median()/hz, faults.Median()/hz)
		} else {
			t.AddNote("%s median world-stopped %.4f ms", name, stw.Median()/hz)
		}
	}
	return t, nil
}

// Table1RateSchedules reproduces Table 1: pgbench latency percentiles under
// fixed-rate schedules. Rates are chosen as the paper's fractions of the
// unscheduled throughput (100/150/250 out of ~285 tx/s at full scale).
func Table1RateSchedules(txs int, cfg Config, reps int) (*Table, error) {
	// First measure unscheduled throughput under Reloaded.
	cond := Condition{Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded, RevokerCores: []int{2}}
	un, err := Repeat(pgbench.New(txs), cond, cfg, reps)
	if err != nil {
		return nil, err
	}
	unTPS := float64(txs) / un[0].Seconds(un[0].WallCycles)
	t := &Table{
		Title:  "Table 1: pgbench latency percentiles (ms) under fixed-rate schedules (Reloaded)",
		Header: []string{"tx/sec", "p50", "p90", "p95", "p99", "p99.9"},
	}
	addRow := func(label string, rs []*Result) {
		lat := &metrics.Samples{}
		for _, r := range rs {
			lat.Merge(r.Lat)
		}
		hz := rs[0].HzGHz * 1e6
		row := []string{label}
		for _, p := range []float64{50, 90, 95, 99, 99.9} {
			row = append(row, f3(lat.Percentile(p)/hz))
		}
		t.AddRow(row...)
	}
	for _, frac := range []float64{0.35, 0.53, 0.88} {
		rate := unTPS * frac
		rs, err := Repeat(pgbench.NewRated(txs, rate), cond, cfg, reps)
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("%.0f", rate), rs)
	}
	addRow("unscheduled", un)
	t.AddNote("rates are 35%%/53%%/88%% of the measured unscheduled throughput (%.0f tx/s), matching the paper's 100/150/250 of ~285", unTPS)
	return t, nil
}

// Fig8QPSLatency reproduces Figure 8: gRPC QPS latency percentiles
// normalized to the no-revocation baseline, plus throughput impact.
func Fig8QPSLatency(measure, warmup uint64, cfg Config, reps int) (*Table, error) {
	type cellSamples struct{ perRun map[float64]*metrics.Samples }
	pcts := []float64{50, 90, 95, 99, 99.9}
	runCond := func(c Condition) (*cellSamples, *metrics.Samples, error) {
		cs := &cellSamples{perRun: map[float64]*metrics.Samples{}}
		for _, p := range pcts {
			cs.perRun[p] = &metrics.Samples{}
		}
		tput := &metrics.Samples{}
		for i := 0; i < reps; i++ {
			w := qps.New(measure, warmup)
			c2 := cfg
			c2.Seed = cfg.Seed + int64(i)*7919
			r, err := Run(w, c, c2)
			if err != nil {
				return nil, nil, err
			}
			for _, p := range pcts {
				cs.perRun[p].Add(r.Lat.Percentile(p))
			}
			tput.Add(float64(w.Messages) / r.Seconds(w.MeasureCycles))
		}
		return cs, tput, nil
	}
	baseCS, baseTput, err := runCond(Baseline())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 8: gRPC QPS latency percentiles normalized to baseline",
		Header: []string{"condition", "p50", "p90", "p95", "p99", "p99.9", "QPS delta"},
	}
	baseRow := []string{"Baseline(ms)"}
	hz := 2.5e6 // cycles per ms at 2.5 GHz
	if cfg.Machine.Sim.HzGHz != 0 {
		hz = cfg.Machine.Sim.HzGHz * 1e6
	}
	for _, p := range pcts {
		baseRow = append(baseRow, f3(baseCS.perRun[p].Mean()/hz))
	}
	baseRow = append(baseRow, "--")
	t.AddRow(baseRow...)
	for _, c := range QPSConditions() {
		cs, tput, err := runCond(c)
		if err != nil {
			return nil, err
		}
		row := []string{c.Name}
		for _, p := range pcts {
			row = append(row, fmt.Sprintf("%.2fx", metrics.Ratio(cs.perRun[p].Mean(), baseCS.perRun[p].Mean())))
		}
		row = append(row, pct(metrics.Overhead(tput.Mean(), baseTput.Mean())))
		t.AddRow(row...)
	}
	t.AddNote("CHERIvoke is excluded, as in the paper (footnote 25); the revoker is unpinned and competes with the server")
	return t, nil
}

// PhaseRows summarizes one workload's revocation phase durations under the
// three sweeping strategies (Figure 9's boxes). It runs each condition once
// per rep and reports five-number summaries in milliseconds.
func PhaseRows(t *Table, label string, results map[string][]*Result) {
	box := func(s *metrics.Samples, hz float64) string {
		if s.N() == 0 {
			return "--"
		}
		b := s.Boxplot()
		return fmt.Sprintf("%.3f/%.3f/%.3f/%.3f/%.3f", b.Min/hz, b.P25/hz, b.Median/hz, b.P75/hz, b.Max/hz)
	}
	collect := func(cond string, f func(revoke.EpochRecord) uint64) (*metrics.Samples, float64) {
		s := &metrics.Samples{}
		hz := 2.5e6
		for _, r := range results[cond] {
			hz = r.HzGHz * 1e6
			for _, e := range r.Epochs {
				s.AddU(f(e))
			}
		}
		return s, hz
	}
	stw := func(e revoke.EpochRecord) uint64 { return e.STWCycles }
	conc := func(e revoke.EpochRecord) uint64 { return e.ConcurrentCycles }
	flt := func(e revoke.EpochRecord) uint64 { return e.FaultCycles }

	s, hz := collect("CHERIvoke", stw)
	t.AddRow(label, "CHERIvoke", "stop-the-world", box(s, hz))
	s, hz = collect("Cornucopia", conc)
	t.AddRow(label, "Cornucopia", "concurrent", box(s, hz))
	s, hz = collect("Cornucopia", stw)
	t.AddRow(label, "Cornucopia", "stop-the-world", box(s, hz))
	s, hz = collect("Reloaded", stw)
	t.AddRow(label, "Reloaded", "stop-the-world", box(s, hz))
	s, hz = collect("Reloaded", conc)
	t.AddRow(label, "Reloaded", "concurrent", box(s, hz))
	s, hz = collect("Reloaded", flt)
	t.AddRow(label, "Reloaded", "faults (cum/epoch)", box(s, hz))
}

// Fig9Phases reproduces Figure 9: revocation phase time distributions for a
// representative subset of benchmarks. cfg scales the SPEC surrogates; the
// pgbench and gRPC parts derive proportional scales from it.
func Fig9Phases(cfg Config, reps int) (*Table, error) {
	pgCfg := PgbenchConfig()
	qpsCfg := QPSConfig()
	if cfg.Scale != 0 && cfg.Scale != 64 {
		pgCfg.Scale = cfg.Scale / 8
		if pgCfg.Scale == 0 {
			pgCfg.Scale = 1
		}
		qpsCfg.Scale = cfg.Scale
	}
	t := &Table{
		Title:  "Figure 9: revocation phase times, min/p25/median/p75/max (ms)",
		Header: []string{"benchmark", "strategy", "phase", "distribution(ms)"},
	}
	subset := []string{"xalancbmk", "astar", "omnetpp", "hmmer", "gobmk", "libquantum"}
	for _, name := range subset {
		p := spec.ByName(name)[0]
		results := map[string][]*Result{}
		for _, c := range SweepConditions() {
			rs, err := Repeat(p, c, cfg, reps)
			if err != nil {
				return nil, err
			}
			results[c.Name] = rs
		}
		PhaseRows(t, p.Name(), results)
	}
	// pgbench rows.
	pgResults := map[string][]*Result{}
	for _, c := range SweepConditions() {
		rs, err := Repeat(pgbench.New(3000), c, pgCfg, reps)
		if err != nil {
			return nil, err
		}
		pgResults[c.Name] = rs
	}
	PhaseRows(t, "pgbench", pgResults)
	// gRPC rows (revoker unpinned; CHERIvoke excluded as in the paper).
	qpsResults := map[string][]*Result{}
	for _, c := range QPSConditions() {
		if !c.Shimmed || c.Strategy == revoke.PaintSync {
			continue
		}
		var rs []*Result
		for i := 0; i < reps; i++ {
			w := qps.New(1_000_000_000, 100_000_000)
			rcfg := qpsCfg
			rcfg.Seed += int64(i) * 104729
			r, err := Run(w, c, rcfg)
			if err != nil {
				return nil, err
			}
			rs = append(rs, r)
		}
		qpsResults[c.Name] = rs
	}
	PhaseRows(t, "gRPC QPS", qpsResults)
	t.AddNote("gRPC QPS CHERIvoke is absent, as in the paper")
	return t, nil
}

// Table2RevRates reproduces Table 2: Reloaded revocation-rate statistics
// for the representative subset. cfg scales the SPEC surrogates as in
// Fig9Phases.
func Table2RevRates(cfg Config, reps int) (*Table, error) {
	pgCfg := PgbenchConfig()
	qpsCfg := QPSConfig()
	if cfg.Scale != 0 && cfg.Scale != 64 {
		pgCfg.Scale = cfg.Scale / 8
		if pgCfg.Scale == 0 {
			pgCfg.Scale = 1
		}
		qpsCfg.Scale = cfg.Scale
	}
	t := &Table{
		Title: "Table 2: Reloaded revocation rate statistics",
		Header: []string{"benchmark", "meanAlloc(MiB)", "sumFreed(MiB)", "F:A",
			"revocations", "rev/sec"},
	}
	cond := Condition{Name: "Reloaded", Shimmed: true, Strategy: revoke.Reloaded, RevokerCores: []int{2}}
	addRow := func(name string, rs []*Result) {
		var alloc, freed, revs, revPerSec metrics.Samples
		for _, r := range rs {
			if r.Quar.LiveAtTriggerCount > 0 {
				alloc.Add(float64(r.Quar.LiveAtTriggerSum) / float64(r.Quar.LiveAtTriggerCount))
			}
			freed.AddU(r.Quar.TotalQuarantined)
			revs.Add(float64(len(r.Epochs)))
			revPerSec.Add(float64(len(r.Epochs)) / r.Seconds(r.WallCycles))
		}
		meanAllocMiB := 0.0
		if alloc.N() > 0 {
			meanAllocMiB = alloc.Mean() / (1 << 20)
		}
		fa := 0.0
		if alloc.N() > 0 && alloc.Mean() > 0 {
			fa = freed.Mean() / alloc.Mean()
		}
		t.AddRow(name, f2(meanAllocMiB), f1(freed.Mean()/(1<<20)), f1(fa),
			f1(revs.Mean()), f2(revPerSec.Mean()))
	}
	for _, name := range []string{"xalancbmk", "astar", "omnetpp", "hmmer", "gobmk"} {
		p := spec.ByName(name)[0]
		rs, err := Repeat(p, cond, cfg, reps)
		if err != nil {
			return nil, err
		}
		addRow(p.Name(), rs)
	}
	rs, err := Repeat(pgbench.New(3000), cond, pgCfg, reps)
	if err != nil {
		return nil, err
	}
	addRow("pgbench", rs)
	{
		var qrs []*Result
		c := cond
		c.RevokerCores = nil
		for i := 0; i < reps; i++ {
			w := qps.New(1_000_000_000, 100_000_000)
			rcfg := qpsCfg
			rcfg.Seed += int64(i) * 15485863
			r, err := Run(w, c, rcfg)
			if err != nil {
				return nil, err
			}
			qrs = append(qrs, r)
		}
		addRow("gRPC QPS", qrs)
	}
	t.AddNote("footprints scaled by 1/64 (pgbench 1/8) and churn by a further 1/8; F:A orderings are preserved, absolute rev/sec compresses (see EXPERIMENTS.md)")
	return t, nil
}
