package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows of one of the paper's
// figures or tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

