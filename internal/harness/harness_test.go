package harness

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/revoke"
	"repro/internal/workload/pgbench"
	"repro/internal/workload/spec"
)

// fastCfg shrinks footprints so integration tests stay quick.
func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.Scale = 256
	return cfg
}

func TestRunBaselineProducesMetrics(t *testing.T) {
	p := spec.ByName("hmmer")[1] // retro: the smallest engaging profile
	r, err := Run(p, Baseline(), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.WallCycles == 0 || r.CPUCycles == 0 || r.DRAMTotal == 0 {
		t.Fatalf("empty metrics: %+v", r)
	}
	if r.PeakRSSPages == 0 {
		t.Fatal("no RSS recorded")
	}
	if len(r.Epochs) != 0 {
		t.Fatal("baseline ran revocation epochs")
	}
	if r.Heap.Allocs == 0 || r.Heap.Frees == 0 {
		t.Fatal("no allocator activity")
	}
}

func TestRunShimmedTriggersRevocation(t *testing.T) {
	p := spec.ByName("hmmer")[1]
	for _, c := range SweepConditions() {
		r, err := Run(p, c, fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Epochs) == 0 {
			t.Fatalf("%s: no revocation epochs", c.Name)
		}
		if r.Quar.Triggers == 0 {
			t.Fatalf("%s: policy never triggered", c.Name)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	p := spec.ByName("gobmk")[1]
	cfg := fastCfg()
	r1, err := Run(p, StandardConditions()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p, StandardConditions()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.WallCycles != r2.WallCycles || r1.CPUCycles != r2.CPUCycles ||
		r1.DRAMTotal != r2.DRAMTotal || len(r1.Epochs) != len(r2.Epochs) {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", r1, r2)
	}
}

func TestRepeatVariesSeeds(t *testing.T) {
	p := spec.ByName("hmmer")[1]
	rs, err := Repeat(p, Baseline(), fastCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	if rs[0].WallCycles == rs[1].WallCycles && rs[1].WallCycles == rs[2].WallCycles {
		t.Fatal("all repeats identical; seeds not varied")
	}
}

// TestShapeSPEC asserts the headline shape of the paper on one
// memory-intensive benchmark: wall-clock Reloaded ≈ Cornucopia < CHERIvoke;
// DRAM traffic Reloaded < Cornucopia; Reloaded's stop-the-world pauses are
// orders of magnitude below the others'.
func TestShapeSPEC(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs a full benchmark matrix")
	}
	p := spec.ByName("xalancbmk")[0]
	cfg := DefaultConfig()
	cfg.Scale = 256
	res := map[string]*Result{}
	for _, c := range append([]Condition{Baseline()}, SweepConditions()...) {
		r, err := Run(p, c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res[c.Name] = r
	}
	base := res["Baseline"]
	rel, cor, chv := res["Reloaded"], res["Cornucopia"], res["CHERIvoke"]

	relOv := metrics.Overhead(float64(rel.WallCycles), float64(base.WallCycles))
	corOv := metrics.Overhead(float64(cor.WallCycles), float64(base.WallCycles))
	chvOv := metrics.Overhead(float64(chv.WallCycles), float64(base.WallCycles))
	if relOv <= 0 || corOv <= 0 || chvOv <= 0 {
		t.Fatalf("overheads not positive: rel=%.1f cor=%.1f chv=%.1f", relOv, corOv, chvOv)
	}
	if chvOv <= corOv || chvOv <= relOv {
		t.Errorf("CHERIvoke (%.1f%%) should exceed concurrent strategies (rel %.1f%%, cor %.1f%%)",
			chvOv, relOv, corOv)
	}
	if relOv > 2*corOv+5 {
		t.Errorf("Reloaded wall overhead %.1f%% should be comparable to Cornucopia's %.1f%%", relOv, corOv)
	}
	if rel.DRAMTotal >= cor.DRAMTotal {
		t.Errorf("Reloaded DRAM %d should be below Cornucopia's %d", rel.DRAMTotal, cor.DRAMTotal)
	}
	stwMed := func(r *Result) float64 {
		s := &metrics.Samples{}
		for _, e := range r.Epochs {
			s.AddU(e.STWCycles)
		}
		return s.Median()
	}
	if stwMed(rel)*5 > stwMed(cor) {
		t.Errorf("Reloaded STW median %.0f should be ≪ Cornucopia's %.0f", stwMed(rel), stwMed(cor))
	}
	if stwMed(cor) >= stwMed(chv) {
		t.Errorf("Cornucopia STW %.0f should be < CHERIvoke's %.0f", stwMed(cor), stwMed(chv))
	}
	if rel.Proc.GenFaults == 0 {
		t.Error("Reloaded took no load-barrier faults")
	}
	if cor.Proc.GenFaults != 0 || chv.Proc.GenFaults != 0 {
		t.Error("non-Reloaded strategies took load-barrier faults")
	}
}

// TestShapePgbench asserts the tail-latency story: the conditions are
// similar at the median and CHERIvoke is worst at the 99th percentile.
func TestShapePgbench(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs a transaction matrix")
	}
	cfg := PgbenchConfig()
	res := map[string]*Result{}
	for _, c := range StandardConditions() {
		r, err := Run(pgbench.New(2500), c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res[c.Name] = r
	}
	p50 := func(n string) float64 { return res[n].Lat.Percentile(50) }
	p99 := func(n string) float64 { return res[n].Lat.Percentile(99) }
	for _, n := range []string{"Reloaded", "Cornucopia", "CHERIvoke"} {
		if r := p50(n) / p50("Paint+sync"); r > 1.25 {
			t.Errorf("%s median %.2fx Paint+sync's; conditions should be similar at p50", n, r)
		}
	}
	if p99("CHERIvoke") <= p99("Reloaded") {
		t.Errorf("CHERIvoke p99 %.0f should exceed Reloaded's %.0f", p99("CHERIvoke"), p99("Reloaded"))
	}
}

func TestColoringConditionRuns(t *testing.T) {
	p := spec.ByName("hmmer")[1]
	r, err := Run(p, ColoringCondition(revoke.Reloaded), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(p, StandardConditions()[0], fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Quar.TotalQuarantined*4 > plain.Quar.TotalQuarantined {
		t.Errorf("coloring quarantined %d, plain %d; expected large reduction",
			r.Quar.TotalQuarantined, plain.Quar.TotalQuarantined)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("x", "y")
	tb.AddRow("longer", "z")
	tb.AddNote("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"== T ==", "longer", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(s, "\n")
	if len(lines) < 6 {
		t.Fatalf("short rendering:\n%s", s)
	}
}

func TestConditionSets(t *testing.T) {
	std := StandardConditions()
	if len(std) != 4 {
		t.Fatalf("standard conditions = %d", len(std))
	}
	for _, c := range std {
		if !c.Shimmed {
			t.Fatalf("%s not shimmed", c.Name)
		}
	}
	if len(SweepConditions()) != 3 {
		t.Fatal("sweep conditions != 3")
	}
	qc := QPSConditions()
	for _, c := range qc {
		if c.Strategy == revoke.CHERIvoke {
			t.Fatal("QPS conditions include CHERIvoke")
		}
		if c.RevokerCores != nil {
			t.Fatal("QPS revoker pinned")
		}
	}
}
