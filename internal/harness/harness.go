// Package harness assembles experiments: one Run boots a fresh simulated
// machine ("cold boot"), installs the heap, the chosen temporal-safety
// condition, and the revocation service, executes a workload, and collects
// every quantity the paper's figures report — wall and CPU cycles, DRAM
// traffic by agent and core, peak RSS, quarantine behaviour, per-epoch
// phase timings, and per-event latencies.
package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/bus"
	"repro/internal/color"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/oracle"
	"repro/internal/quarantine"
	"repro/internal/revoke"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Condition is one temporal-safety configuration of §5's evaluation.
type Condition struct {
	// Name is the condition's display name.
	Name string
	// Shimmed selects whether the mrs quarantine shim is interposed; the
	// baseline runs the bare allocator.
	Shimmed bool
	// Strategy is the revocation strategy (meaningful when Shimmed).
	Strategy revoke.Strategy
	// Workers configures §7.1 parallel background revocation.
	Workers int
	// RevokerCores pins the revoker thread (nil = unpinned).
	RevokerCores []int
	// Policy is the quarantine policy (zero value = scaled default).
	Policy quarantine.Policy
	// Coloring layers the §7.3 memory-coloring composition over the shim:
	// frees recolor and reuse immediately; revocation runs only when a
	// span exhausts its colors.
	Coloring bool
	// AlwaysTrap enables the §7.6 always-trap PTE disposition for clean
	// pages (Reloaded only).
	AlwaysTrap bool
}

// Baseline is the no-temporal-safety condition every overhead is relative
// to: the same allocator, no shim, no revoker.
func Baseline() Condition {
	return Condition{Name: "Baseline"}
}

// StandardConditions returns the paper's four test conditions with the
// revoker pinned to core 2 (the SPEC and pgbench regime).
func StandardConditions() []Condition {
	mk := func(s revoke.Strategy) Condition {
		return Condition{Name: s.String(), Shimmed: true, Strategy: s, RevokerCores: []int{2}}
	}
	return []Condition{mk(revoke.Reloaded), mk(revoke.Cornucopia), mk(revoke.CHERIvoke), mk(revoke.PaintSync)}
}

// SweepConditions returns just the three sweeping strategies.
func SweepConditions() []Condition {
	all := StandardConditions()
	return all[:3]
}

// ColoringCondition returns the §7.3 composition over the given strategy.
func ColoringCondition(s revoke.Strategy) Condition {
	return Condition{
		Name: s.String() + "+colors", Shimmed: true, Strategy: s,
		RevokerCores: []int{2}, Coloring: true,
	}
}

// Result carries everything measured in one run.
type Result struct {
	Workload  string
	Condition string

	WallCycles uint64
	// CPUCycles is busy cycles summed over all cores ("total CPU time,
	// both cores" in Figure 2).
	CPUCycles uint64
	// AppCPUCycles is the primary application thread's busy cycles.
	AppCPUCycles uint64

	DRAMTotal   uint64
	DRAMByAgent map[bus.Agent]uint64
	DRAMByCore  []uint64

	// PeakRSSPages is the process's peak resident set, in pages.
	PeakRSSPages int
	// BaselineRSS-style accounting for Figure 3 comes from comparing runs.

	Proc   kernel.ProcStats
	Heap   alloc.Stats
	Quar   quarantine.Stats
	Epochs []revoke.EpochRecord

	// Recovery counts the revoker's abort-and-retry actions (all zero
	// outside fault campaigns).
	Recovery revoke.RecoveryStats
	// Fault and Oracle report the injection campaign and soundness audit
	// when Config.Fault / Config.Oracle were set (nil otherwise).
	Fault  *fault.Report
	Oracle *oracle.Report

	// Lat holds per-event latencies (cycles) for interactive workloads.
	Lat *metrics.Samples

	// HzGHz converts cycles to seconds for reporting.
	HzGHz float64

	// Trace is the run's tracer when Config.Trace was set (nil otherwise);
	// export with Trace.WriteChrome or Trace.WriteCSV.
	Trace *trace.Tracer
}

// Seconds converts cycles to seconds at the machine's clock.
func (r *Result) Seconds(cycles uint64) float64 { return float64(cycles) / (r.HzGHz * 1e9) }

// Millis converts cycles to milliseconds.
func (r *Result) Millis(cycles uint64) float64 { return r.Seconds(cycles) * 1e3 }

// Config tunes a run.
type Config struct {
	// Machine is the hardware model; zero value = default.
	Machine kernel.MachineConfig
	// Seed drives all randomness in the run.
	Seed int64
	// Scale divides full-size footprints (default 64).
	Scale uint64
	// AppCores is where application threads are pinned (default {3}).
	AppCores []int
	// QuarantineMin is the scaled mrs minimum-quarantine floor (default
	// 8 MiB / Scale).
	QuarantineMin uint64
	// Trace, when non-nil, records structured events from every layer of
	// the run (see internal/trace). The same tracer is returned in
	// Result.Trace. Nil disables tracing at no cost.
	Trace *trace.Tracer
	// Fault, when non-nil, arms deterministic fault injection
	// (internal/fault) for this run. The omitempty tags keep pre-campaign
	// experiment job keys stable.
	Fault *fault.Spec `json:"Fault,omitempty"`
	// Oracle installs the end-to-end soundness oracle (internal/oracle);
	// requires a shimmed condition.
	Oracle bool `json:"Oracle,omitempty"`
	// Telem, when non-nil, records the run's cycle profile and metrics
	// time series (see internal/telemetry); snapshot it after Run
	// returns. Excluded from JSON so experiment job keys stay stable —
	// enabling telemetry never changes what a run computes.
	Telem *telemetry.Telemetry `json:"-"`
	// SweepKernel selects the page-sweep implementation (zero value =
	// word-wise). Both kernels produce identical simulated results —
	// pinned by the kernel-equivalence tests — so, like Telem, the choice
	// is excluded from JSON: job keys stay stable and a manifest entry
	// computed under either kernel satisfies the other.
	SweepKernel kernel.SweepKernel `json:"-"`
	// SimEngine selects the sim execution engine (zero value = fast).
	// Both engines make bit-identical scheduling decisions — pinned by
	// the engine-equivalence tests — so, like SweepKernel, the choice is
	// excluded from JSON and job keys stay stable.
	SimEngine sim.EngineKind `json:"-"`
	// MemPath selects the memory-model host representation (zero value =
	// sparse fast path). Both paths produce identical simulated results —
	// pinned by the mem-path equivalence tests — so, like SweepKernel, the
	// choice is excluded from JSON and job keys stay stable.
	MemPath kernel.MemPath `json:"-"`
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{
		Machine:  kernel.DefaultMachineConfig(),
		Seed:     1,
		Scale:    64,
		AppCores: []int{3},
	}
}

// Run executes workload w under condition cond.
func Run(w workload.Workload, cond Condition, cfg Config) (*Result, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 64
	}
	if len(cfg.AppCores) == 0 {
		cfg.AppCores = []int{3}
	}
	if cfg.Machine.MaxFrames == 0 {
		cfg.Machine = kernel.DefaultMachineConfig()
	}
	cfg.Machine.Sim.Engine = cfg.SimEngine
	m := kernel.NewMachine(cfg.Machine)
	m.Trace = cfg.Trace // before NewProcess: wires the MMU shootdown hook
	m.Telem = cfg.Telem
	m.Sweep = cfg.SweepKernel
	m.Mem = cfg.MemPath
	cfg.Telem.Bind(m.Eng)
	p := m.NewProcess(cfg.Seed)
	h := alloc.NewHeap(p)

	rig := &workload.Rig{
		M:        m,
		P:        p,
		Lat:      &metrics.Samples{},
		RNG:      rand.New(rand.NewSource(cfg.Seed)),
		AppCores: cfg.AppCores,
		Scale:    cfg.Scale,
	}

	var svc *revoke.Service
	var shim *quarantine.Shim
	var orc *oracle.Oracle
	if cond.Shimmed {
		rcfg := revoke.Config{
			Strategy:             cond.Strategy,
			RevokerCores:         cond.RevokerCores,
			Workers:              cond.Workers,
			AlwaysTrapCleanPages: cond.AlwaysTrap,
		}
		if err := rcfg.Validate(); err != nil {
			return nil, fmt.Errorf("harness: %s: %w", cond.Name, err)
		}
		svc = revoke.NewService(p, rcfg)
		pol := cond.Policy
		if pol.HeapFraction == 0 {
			pol = quarantine.DefaultPolicy()
			pol.MinBytes = pol.MinBytes / cfg.Scale
			if cfg.QuarantineMin != 0 {
				pol.MinBytes = cfg.QuarantineMin
			}
		}
		shim = quarantine.New(h, svc, pol)
		rig.Mem = shim
		if cond.Coloring {
			p.SetColorMode(true)
			h.SetColoring(true)
			rig.Mem = color.New(h, shim)
		}
		if cfg.Oracle {
			orc = oracle.New(p, h, svc)
			svc.SetObserver(orc)
			shim.SetDrainObserver(orc.ObserveDrain)
		}
		svc.Start()
	} else {
		if cfg.Oracle {
			return nil, fmt.Errorf("harness: %s: the soundness oracle requires a shimmed condition", cond.Name)
		}
		rig.Mem = h
	}

	bindTelemetrySources(cfg.Telem, m, p, h, shim, svc)

	var inj *fault.Injector
	if cfg.Fault != nil {
		var err error
		inj, err = fault.New(*cfg.Fault)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		fault.Wire(inj, p, svc)
	}

	var appTh *kernel.Thread
	appTh = p.Spawn(w.Name(), cfg.AppCores, func(th *kernel.Thread) {
		w.Body(rig, th)
		if svc != nil {
			svc.Shutdown(th)
		}
	})

	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("harness: %s under %s: %w", w.Name(), cond.Name, err)
	}

	bs := m.Bus.Stats()
	res := &Result{
		Workload:     w.Name(),
		Condition:    cond.Name,
		WallCycles:   m.Eng.WallClock(),
		CPUCycles:    m.Eng.TotalCPU(),
		AppCPUCycles: appTh.Sim.CPU(),
		DRAMTotal:    bs.TotalDRAM(),
		DRAMByAgent: map[bus.Agent]uint64{
			bus.AgentApp:     bs.DRAMByAgent[bus.AgentApp],
			bus.AgentAlloc:   bs.DRAMByAgent[bus.AgentAlloc],
			bus.AgentRevoker: bs.DRAMByAgent[bus.AgentRevoker],
			bus.AgentKernel:  bs.DRAMByAgent[bus.AgentKernel],
		},
		DRAMByCore:   bs.DRAMByCore,
		PeakRSSPages: p.AS.Stats().PeakMappedPages,
		Proc:         p.Stats(),
		Heap:         h.Stats(),
		Lat:          rig.Lat,
		HzGHz:        cfg.Machine.Sim.HzGHz,
		Trace:        cfg.Trace,
	}
	if shim != nil {
		res.Quar = shim.Stats()
	}
	if svc != nil {
		res.Epochs = svc.Records()
		res.Recovery = svc.Recovery()
	}
	if inj != nil {
		rep := inj.Report()
		res.Fault = &rep
	}
	if orc != nil {
		rep := orc.Report()
		res.Oracle = &rep
	}
	return res, nil
}

// bindTelemetrySources wires the standard metric series to their state
// readers. Sources are pure reads evaluated only at sample boundaries and
// snapshot time, so the bindings cost nothing on the simulated hot path.
func bindTelemetrySources(tl *telemetry.Telemetry, m *kernel.Machine, p *kernel.Process,
	h *alloc.Heap, shim *quarantine.Shim, svc *revoke.Service) {
	if !tl.Enabled() {
		return
	}
	tl.Source(telemetry.StdEpochCounter, func() float64 { return float64(p.Epoch()) })
	tl.Source(telemetry.StdCDBitSetsTotal, func() float64 { return float64(p.Stats().CDBitSets) })
	tl.Source(telemetry.StdGenFaultsTotal, func() float64 { return float64(p.Stats().GenFaults) })
	tl.Source(telemetry.StdGenFaultCyclesTotal, func() float64 { return float64(p.Stats().GenFaultCycles) })
	tl.Source(telemetry.StdCapLoadsTotal, func() float64 { return float64(p.Stats().CapLoads) })
	tl.Source(telemetry.StdCapStoresTotal, func() float64 { return float64(p.Stats().CapStores) })
	tl.Source(telemetry.StdTLBRefillsTotal, func() float64 { return float64(p.Stats().TLBRefills) })
	tl.Source(telemetry.StdHeapLiveBytes, func() float64 { return float64(h.LiveBytes()) })
	tl.Source(telemetry.StdHeapAllocsTotal, func() float64 { return float64(h.Stats().Allocs) })
	tl.Source(telemetry.StdHeapFreesTotal, func() float64 { return float64(h.Stats().Frees) })
	tl.Source(telemetry.StdMappedPages, func() float64 { return float64(p.AS.Stats().MappedPages) })
	tl.Source(telemetry.StdFramesAllocated, func() float64 { return float64(m.Phys.Allocated()) })
	if shim != nil {
		tl.Source(telemetry.StdQuarBytes, func() float64 { return float64(shim.Stats().QuarantinedBytes) })
		tl.Source(telemetry.StdQuarBlocksTotal, func() float64 { return float64(shim.Stats().Blocks) })
	}
	if svc != nil {
		tl.Source(telemetry.StdRecoveryActionsTotal, func() float64 { return float64(svc.Recovery().Total()) })
	}
}

// Repeat runs (w, cond) reps times with distinct seeds ("batches" with a
// cold boot each, as §5.1 does) and returns all results.
func Repeat(w workload.Workload, cond Condition, cfg Config, reps int) ([]*Result, error) {
	var out []*Result
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1000003
		r, err := Run(w, cond, c)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MeanWall returns the mean wall-clock cycles over results.
func MeanWall(rs []*Result) float64 {
	var s metrics.Samples
	for _, r := range rs {
		s.AddU(r.WallCycles)
	}
	return s.Mean()
}

// MeanCPU returns the mean total CPU cycles over results.
func MeanCPU(rs []*Result) float64 {
	var s metrics.Samples
	for _, r := range rs {
		s.AddU(r.CPUCycles)
	}
	return s.Mean()
}

// MeanDRAM returns the mean DRAM transactions over results.
func MeanDRAM(rs []*Result) float64 {
	var s metrics.Samples
	for _, r := range rs {
		s.AddU(r.DRAMTotal)
	}
	return s.Mean()
}

// MeanRSS returns the mean peak RSS in pages.
func MeanRSS(rs []*Result) float64 {
	var s metrics.Samples
	for _, r := range rs {
		s.AddU(uint64(r.PeakRSSPages))
	}
	return s.Mean()
}
