package color

import (
	"errors"
	"testing"

	"repro/internal/alloc"
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/quarantine"
	"repro/internal/revoke"
)

type rig struct {
	m *kernel.Machine
	p *kernel.Process
	h *alloc.Heap
	s *revoke.Service
	c *Shim
}

func newRig() *rig {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(3)
	p.SetColorMode(true)
	h := alloc.NewHeap(p)
	h.SetColoring(true)
	s := revoke.NewService(p, revoke.Config{Strategy: revoke.Reloaded, RevokerCores: []int{2}})
	q := quarantine.New(h, s, quarantine.Policy{HeapFraction: 0.25, MinBytes: 4 << 10, BlockFactor: 2})
	return &rig{m: m, p: p, h: h, s: s, c: New(h, q)}
}

func (r *rig) runApp(t *testing.T, fn func(th *kernel.Thread)) {
	t.Helper()
	r.s.Start()
	r.p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		fn(th)
		r.s.Shutdown(th)
	})
	if err := r.m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFastFreeReusesImmediately(t *testing.T) {
	r := newRig()
	r.runApp(t, func(th *kernel.Thread) {
		c1, err := r.c.Malloc(th, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.Store(c1, 0, 32); err != nil {
			t.Fatal(err)
		}
		if err := r.c.Free(th, c1); err != nil {
			t.Fatal(err)
		}
		// Storage reused immediately — no epoch needed.
		c2, err := r.c.Malloc(th, 64)
		if err != nil {
			t.Fatal(err)
		}
		if c2.Base() != c1.Base() {
			t.Fatalf("recolored storage not reused: %#x vs %#x", c2.Base(), c1.Base())
		}
		if c2.Color() == c1.Color() {
			t.Fatal("reused storage kept the old color")
		}
		// The new owner works; the stale capability traps.
		if err := th.Store(c2, 0, 32); err != nil {
			t.Fatalf("new owner store failed: %v", err)
		}
		if err := th.Load(c1, 0, 16); err == nil {
			t.Fatal("UAR through stale-colored capability succeeded")
		}
	})
	if st := r.c.Stats(); st.FastFrees != 1 || st.ExhaustedFrees != 0 {
		t.Fatalf("stats = %+v", r.c.Stats())
	}
	if len(r.s.Records()) != 0 {
		t.Fatal("fast-path free triggered revocation")
	}
}

func TestStaleColoredCapFilteredOnLoad(t *testing.T) {
	r := newRig()
	r.runApp(t, func(th *kernel.Thread) {
		holder, _ := r.c.Malloc(th, 64)
		victim, _ := r.c.Malloc(th, 64)
		if err := th.StoreCap(holder, 0, victim); err != nil {
			t.Fatal(err)
		}
		if err := r.c.Free(th, victim); err != nil {
			t.Fatal(err)
		}
		// CHERIoT-style load filter (§6.3/§7.3): loading the stale
		// capability strips its tag on the way into the register file.
		got, err := th.LoadCap(holder, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag() {
			t.Fatal("stale-colored capability loaded with tag intact")
		}
	})
}

func TestDoubleFreeDetectedByColor(t *testing.T) {
	r := newRig()
	r.runApp(t, func(th *kernel.Thread) {
		c1, _ := r.c.Malloc(th, 64)
		if err := r.c.Free(th, c1); err != nil {
			t.Fatal(err)
		}
		// Reallocate the same storage, then double-free via the stale cap.
		c2, _ := r.c.Malloc(th, 64)
		if c2.Base() != c1.Base() {
			t.Fatalf("expected reuse")
		}
		if err := r.c.Free(th, c1); !errors.Is(err, alloc.ErrDoubleFree) {
			t.Fatalf("double free via stale color: err = %v", err)
		}
		// The live allocation is unharmed.
		if err := th.Store(c2, 0, 16); err != nil {
			t.Fatal(err)
		}
	})
}

func TestColorExhaustionFallsBackToRevocation(t *testing.T) {
	r := newRig()
	r.runApp(t, func(th *kernel.Thread) {
		// Churn one address MaxColors times: the last free must quarantine.
		var base uint64
		for i := 0; i < MaxColors; i++ {
			c, err := r.c.Malloc(th, 64)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				base = c.Base()
			} else if c.Base() != base {
				t.Fatalf("iteration %d did not reuse %#x (got %#x)", i, base, c.Base())
			}
			if want := uint8(i); c.Color() != want {
				t.Fatalf("iteration %d color = %d, want %d", i, c.Color(), want)
			}
			if err := r.c.Free(th, c); err != nil {
				t.Fatal(err)
			}
		}
		st := r.c.Stats()
		if st.FastFrees != MaxColors-1 || st.ExhaustedFrees != 1 {
			t.Fatalf("stats = %+v", st)
		}
		// The exhausted span is quarantined: not immediately reusable.
		c, err := r.c.Malloc(th, 64)
		if err != nil {
			t.Fatal(err)
		}
		if c.Base() == base {
			t.Fatal("exhausted span reused before revocation")
		}
	})
}

func TestColoringReducesRevocationPressure(t *testing.T) {
	// The same churn volume under plain mrs vs the coloring composition:
	// quarantine pressure (painted volume) must fall by roughly the color
	// count, since only every MaxColors-th free of a span quarantines
	// (§7.3: "quarantine ... grows at a rate inversely proportional to the
	// number of colors available").
	churn := func(coloring bool) uint64 {
		m := kernel.NewMachine(kernel.DefaultMachineConfig())
		p := m.NewProcess(3)
		h := alloc.NewHeap(p)
		s := revoke.NewService(p, revoke.Config{Strategy: revoke.Reloaded, RevokerCores: []int{2}})
		q := quarantine.New(h, s, quarantine.Policy{HeapFraction: 0.25, MinBytes: 8 << 10, BlockFactor: 2})
		var mem alloc.API = q
		if coloring {
			p.SetColorMode(true)
			h.SetColoring(true)
			mem = New(h, q)
		}
		s.Start()
		p.Spawn("app", []int{3}, func(th *kernel.Thread) {
			var keep []ca.Capability
			for i := 0; i < 16; i++ {
				c, _ := mem.Malloc(th, 2048)
				keep = append(keep, c)
			}
			for i := 0; i < 4000; i++ {
				c, err := mem.Malloc(th, 512)
				if err != nil {
					panic(err)
				}
				if err := mem.Free(th, c); err != nil {
					panic(err)
				}
			}
			_ = keep
			s.Shutdown(th)
		})
		if err := m.Run(); err != nil {
			panic(err)
		}
		return q.Stats().TotalQuarantined
	}
	plain := churn(false)
	colored := churn(true)
	if plain == 0 {
		t.Fatal("plain mrs never quarantined; test underpowered")
	}
	if colored*8 > plain {
		t.Fatalf("coloring did not reduce quarantine pressure: %d vs %d bytes", colored, plain)
	}
}
