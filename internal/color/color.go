// Package color implements the paper's §7.3 proposal: a non-orthogonal
// composition of CHERI and memory coloring. Capabilities carry a small
// version color under the tag's integrity protection; memory carries a
// matching color per granule, changeable only with PermRecolor authority.
//
// free() recolors the object's memory immediately, so stale capabilities
// become permanently useless the moment the storage is reused — closing the
// UAF/UAR gap — and the address space can be recycled at once, without
// waiting for a revocation epoch. Because the color space is finite,
// sweeping revocation is still required, but only when a span has exhausted
// its colors: quarantine pressure grows at a rate inversely proportional to
// the number of colors.
package color

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/quarantine"
)

// MaxColors is the number of version colors per span (a 4-bit field, as in
// Arm MTE).
const MaxColors = 16

// Stats counts the shim's activity.
type Stats struct {
	// FastFrees released storage immediately via recoloring.
	FastFrees uint64
	// ExhaustedFrees hit the end of the color space and fell back to
	// quarantine + revocation.
	ExhaustedFrees uint64
	// RecoloredBytes accumulates recolored volume.
	RecoloredBytes uint64
}

// Shim is the coloring allocator shim. It implements alloc.API. The heap
// must have coloring enabled (Heap.SetColoring) and the process must be in
// color mode (Process.SetColorMode), or stale capabilities would retain
// access between free and reuse.
type Shim struct {
	H *alloc.Heap
	// Q is the quarantine shim used for the color-exhausted slow path.
	Q     *quarantine.Shim
	stats Stats
}

// New creates a coloring shim over heap h, falling back to mrs shim q when
// a span exhausts its colors.
func New(h *alloc.Heap, q *quarantine.Shim) *Shim {
	return &Shim{H: h, Q: q}
}

// Stats returns a snapshot of shim counters.
func (s *Shim) Stats() Stats { return s.stats }

// Malloc allocates through the underlying heap (which stamps the returned
// capability with its memory's current color) after letting the quarantine
// shim drain and apply policy for the slow-path spans.
func (s *Shim) Malloc(th *kernel.Thread, size uint64) (ca.Capability, error) {
	return s.Q.Malloc(th, size)
}

// Free releases an allocation. Fast path: bump the memory's color and
// return the storage immediately — every existing capability to it is now
// permanently mis-colored (they can never be "read back", so discarding
// them is sound, §7.3). Slow path (color space exhausted): reset the color
// and route through quarantine, so a revocation epoch scrubs all stale
// capabilities of every color before reuse.
func (s *Shim) Free(th *kernel.Thread, c ca.Capability) error {
	if !c.Tag() {
		return fmt.Errorf("%w: untagged capability", alloc.ErrBadFree)
	}
	base, size, ok := s.H.Lookup(c.Base())
	if !ok {
		return alloc.ErrDoubleFree
	}
	if base != c.Base() {
		return alloc.ErrWildFree
	}
	cur := s.colorAt(th, base)
	if c.Color() != cur {
		// The freeing capability is itself stale.
		return alloc.ErrDoubleFree
	}
	if cur < MaxColors-1 {
		if err := s.H.RecolorRange(th, base, size, cur+1); err != nil {
			return err
		}
		s.stats.FastFrees++
		s.stats.RecoloredBytes += size
		return s.H.Release(th, base, size)
	}
	// Exhausted: reset to color zero and quarantine until revocation has
	// destroyed every capability to the span (mis-colored or not).
	if err := s.H.RecolorRange(th, base, size, 0); err != nil {
		return err
	}
	s.stats.ExhaustedFrees++
	return s.Q.Free(th, c)
}

// colorAt reads the current memory color at base.
func (s *Shim) colorAt(th *kernel.Thread, base uint64) uint8 {
	pte, ok := th.P.AS.Lookup(base)
	if !ok {
		return 0
	}
	g := int(base%4096) / ca.GranuleSize
	return th.P.M.Phys.ColorOf(pte.Frame, g)
}
