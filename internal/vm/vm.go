// Package vm models per-process virtual memory: reservations, page tables,
// per-core TLBs, and the two PTE mechanisms this paper's revokers are built
// on — per-PTE capability load generations (§4.1) and hardware-assisted
// capability-dirty tracking (§4.2).
//
// The package is purely functional state: it performs translations and
// raises faults but charges no cycles. The kernel layer charges costs for
// TLB misses, PTE updates and fault handling.
package vm

import (
	"fmt"
	"sort"

	"repro/internal/ca"
	"repro/internal/tmem"
)

// PageSize is the virtual page size.
const PageSize = tmem.PageSize

// PageShift is log2(PageSize).
const PageShift = 12

// PTEBits is the flag set of a page table entry.
type PTEBits uint16

const (
	// PTEValid marks a present mapping.
	PTEValid PTEBits = 1 << iota
	// PTERead permits user loads.
	PTERead
	// PTEWrite permits user stores.
	PTEWrite
	// PTECapWrite permits tagged capability stores (cleared on mappings,
	// such as shared file pages, that must not carry capabilities).
	PTECapWrite
	// PTECapDirty is set by hardware on every tagged capability store; the
	// revoker clears it when it scans the page. This is Cornucopia's store
	// barrier (§4.2).
	PTECapDirty
	// PTEEverCapDirty is the software summary "this page must be visited
	// by revocation": sticky once a capability store occurs. Our
	// re-implementation of Cornucopia never clears it (§4.5); Reloaded may
	// clear it when a sweep finds the page holds no capabilities.
	PTEEverCapDirty
	// PTEGuard marks a guard page backing unmapped holes in a reservation
	// (§6.2); all access faults.
	PTEGuard
	// PTECapLoadTrap is the §7.6 proposal: a disposition under which any
	// tagged capability load traps regardless of generation. The revoker
	// sets it on capability-clean pages instead of maintaining their
	// generation bits every epoch; the trap is resolved by installing a
	// PTE with the current generation.
	PTECapLoadTrap
	// PTECOW marks a page whose frame is shared copy-on-write with another
	// address space (fork, §4.3): the first write resolves it to a private
	// copy. Aliased frames are exactly the case the paper's implementation
	// mishandled (footnote 20); here every mutation — including a
	// revocation write — must break the sharing first.
	PTECOW
)

// FaultKind classifies memory faults.
type FaultKind int

// Fault kinds raised by translation.
const (
	// FaultUnmapped is an access to an unmapped or guard page.
	FaultUnmapped FaultKind = iota
	// FaultPerm is a permission violation at the PTE level.
	FaultPerm
	// FaultCapLoadGen is the per-page capability load barrier trap: a
	// tagged load from a page whose generation differs from the core's.
	FaultCapLoadGen
	// FaultCapStore is a tagged store to a page without PTECapWrite.
	FaultCapStore
)

func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultPerm:
		return "perm"
	case FaultCapLoadGen:
		return "cap-load-gen"
	case FaultCapStore:
		return "cap-store"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault describes a memory access fault.
type Fault struct {
	Kind FaultKind
	VA   uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vm: %s fault at 0x%x", f.Kind, f.VA)
}

// PTE is a page table entry.
type PTE struct {
	Frame tmem.FrameID
	Bits  PTEBits
	// Gen is the page's capability load generation bit. A tagged capability
	// load traps unless Gen equals the loading core's generation (§4.1).
	Gen uint8
}

// tlbEntry caches a PTE snapshot, including its generation bit.
type tlbEntry struct {
	pte   PTE
	valid bool
}

// Reservation is a kernel mmap reservation (§6.2): a naturally-padded span
// of address space that is never partially reused. Unmapping part of it
// leaves guard pages; only once the whole reservation is unmapped (and, with
// revocation enabled, swept) can the span be recycled.
type Reservation struct {
	Base   uint64
	Length uint64
	// Root is the capability returned by mmap, spanning the reservation.
	Root ca.Capability
	// Dead is set once the reservation has been fully unmapped.
	Dead bool
	// NoCaps marks a mapping prohibited from carrying tagged capabilities
	// (shared file mappings; footnote 13).
	NoCaps bool
}

// Stats tracks address-space accounting.
type Stats struct {
	// MappedPages is the number of resident pages (RSS, in pages).
	MappedPages int
	// PeakMappedPages is the RSS high-water mark.
	PeakMappedPages int
	// SoftFaults counts demand-zero page materializations.
	SoftFaults uint64
	// Shootdowns counts TLB shootdown operations.
	Shootdowns uint64
}

// AddressSpace is one process's virtual memory map.
type AddressSpace struct {
	phys  *tmem.Phys
	pages map[uint64]*PTE // keyed by vpn
	vpns  []uint64        // sorted; mirrors pages for deterministic sweeps
	ptes  []*PTE          // parallel to vpns, so page walks skip the map
	resv  []*Reservation
	next  uint64 // bump pointer for reservations

	// coreGen is the per-core in-core "capability load generation" control
	// register value for this address space (§4.1).
	coreGen []uint8
	tlbs    []map[uint64]tlbEntry

	// FlatVPNs selects the flat differential vpn-list maintenance path
	// (the kernel's MemPathFlat): every insert does the original
	// copy-shift into the sorted slice, O(pages) per mapping. The fast
	// path appends in O(1) when the new vpn is above the current maximum
	// — the overwhelmingly common case, since reservations are carved
	// from a monotone bump pointer — turning sequential heap growth from
	// O(pages²) into O(pages). Both paths maintain an identical sorted
	// list.
	FlatVPNs bool

	// OnShootdown, when non-nil, is invoked once per ShootdownAll — vm has
	// no clock of its own, so the kernel layer hooks this to timestamp and
	// trace shootdowns.
	OnShootdown func()

	// ShootdownFilter, when non-nil, is consulted once per core on every
	// ShootdownAll; returning true drops that core's invalidation IPI, so
	// its TLB keeps (possibly stale) entries. Fault injection only
	// (internal/fault).
	ShootdownFilter func(core int) bool
	// incomplete records whether the most recent ShootdownAll dropped any
	// core's IPI.
	incomplete bool

	stats Stats
}

// HeapBase is where reservations begin. The low 4 GiB is left unused so
// that stray small integers never alias heap addresses.
const HeapBase = 0x1_0000_0000

// NewAddressSpace creates an address space over phys for a machine with
// ncores cores.
func NewAddressSpace(phys *tmem.Phys, ncores int) *AddressSpace {
	as := &AddressSpace{
		phys:    phys,
		pages:   make(map[uint64]*PTE),
		next:    HeapBase,
		coreGen: make([]uint8, ncores),
		tlbs:    make([]map[uint64]tlbEntry, ncores),
	}
	for i := range as.tlbs {
		as.tlbs[i] = make(map[uint64]tlbEntry)
	}
	return as
}

// Phys returns the backing physical memory.
func (as *AddressSpace) Phys() *tmem.Phys { return as.phys }

// Stats returns a snapshot of accounting counters.
func (as *AddressSpace) Stats() Stats { return as.stats }

// Reserve creates a reservation of at least length bytes, padded to whole
// pages and to CHERI-representable bounds, separated from its neighbours by
// a guard page. It returns the reservation carrying the root capability a
// CheriABI mmap would return.
func (as *AddressSpace) Reserve(length uint64, perms ca.Perms) (*Reservation, error) {
	if length == 0 {
		return nil, fmt.Errorf("vm: zero-length reservation")
	}
	padded := ca.RepresentableLength((length + PageSize - 1) &^ (PageSize - 1))
	align := ca.RepresentableAlign(padded)
	if align < PageSize {
		align = PageSize
	}
	base := (as.next + align - 1) &^ (align - 1)
	as.next = base + padded + PageSize // guard page between reservations
	r := &Reservation{
		Base:   base,
		Length: padded,
		Root:   ca.NewRoot(base, padded, perms),
	}
	as.resv = append(as.resv, r)
	return r, nil
}

// insertVPN keeps the sorted vpn list (and its parallel PTE slice) in
// sync with the page map.
func (as *AddressSpace) insertVPN(vpn uint64, pte *PTE) {
	if !as.FlatVPNs {
		if n := len(as.vpns); n == 0 || as.vpns[n-1] < vpn {
			as.vpns = append(as.vpns, vpn)
			as.ptes = append(as.ptes, pte)
			return
		}
	}
	i := sort.Search(len(as.vpns), func(i int) bool { return as.vpns[i] >= vpn })
	as.vpns = append(as.vpns, 0)
	copy(as.vpns[i+1:], as.vpns[i:])
	as.vpns[i] = vpn
	as.ptes = append(as.ptes, nil)
	copy(as.ptes[i+1:], as.ptes[i:])
	as.ptes[i] = pte
}

func (as *AddressSpace) removeVPN(vpn uint64) {
	i := sort.Search(len(as.vpns), func(i int) bool { return as.vpns[i] >= vpn })
	if i < len(as.vpns) && as.vpns[i] == vpn {
		as.vpns = append(as.vpns[:i], as.vpns[i+1:]...)
		as.ptes = append(as.ptes[:i], as.ptes[i+1:]...)
	}
}

// reservationOf returns the reservation containing va, or nil. The list is
// sorted by base (reservations are carved from a monotone bump pointer), so
// this is a binary search.
func (as *AddressSpace) reservationOf(va uint64) *Reservation {
	i := sort.Search(len(as.resv), func(i int) bool { return as.resv[i].Base > va })
	if i == 0 {
		return nil
	}
	r := as.resv[i-1]
	if va < r.Base+r.Length {
		return r
	}
	return nil
}

// EnsureMapped materializes the page containing va on demand (demand-zero),
// if va lies within a live reservation. It reports whether a soft fault
// (new frame) occurred.
func (as *AddressSpace) EnsureMapped(va uint64) (*PTE, bool, error) {
	vpn := va >> PageShift
	if pte, ok := as.pages[vpn]; ok {
		if pte.Bits&PTEGuard != 0 {
			return nil, false, &Fault{Kind: FaultUnmapped, VA: va}
		}
		return pte, false, nil
	}
	r := as.reservationOf(va)
	if r == nil || r.Dead {
		return nil, false, &Fault{Kind: FaultUnmapped, VA: va}
	}
	frame, err := as.phys.AllocFrame()
	if err != nil {
		return nil, false, err
	}
	bits := PTEValid | PTERead | PTEWrite | PTECapWrite
	if r.NoCaps {
		bits &^= PTECapWrite
	}
	pte := &PTE{
		Frame: frame,
		Bits:  bits,
		// New pages adopt the current generation of core 0's view; all
		// cores agree outside of revocation, and during revocation the
		// revoker owns generation maintenance for fresh pages.
		Gen: as.coreGen[0],
	}
	as.pages[vpn] = pte
	as.insertVPN(vpn, pte)
	as.stats.SoftFaults++
	as.stats.MappedPages++
	if as.stats.MappedPages > as.stats.PeakMappedPages {
		as.stats.PeakMappedPages = as.stats.MappedPages
	}
	return pte, true, nil
}

// Lookup returns the PTE for va without materializing anything.
func (as *AddressSpace) Lookup(va uint64) (*PTE, bool) {
	pte, ok := as.pages[va>>PageShift]
	if !ok || pte.Bits&PTEGuard != 0 {
		return nil, false
	}
	return pte, true
}

// UnmapRange unmaps [va, va+length) within a reservation, freeing frames
// and leaving guard entries so the span cannot be re-filled (§6.2). If the
// entire reservation ends up unmapped it is marked Dead and true is
// returned; the caller (the kernel) is then responsible for quarantining
// the reservation until a revocation pass completes.
func (as *AddressSpace) UnmapRange(va, length uint64) (*Reservation, bool, error) {
	r := as.reservationOf(va)
	if r == nil {
		return nil, false, &Fault{Kind: FaultUnmapped, VA: va}
	}
	if va+length > r.Base+r.Length {
		return nil, false, fmt.Errorf("vm: unmap range escapes reservation")
	}
	start := va >> PageShift
	end := (va + length + PageSize - 1) >> PageShift
	for vpn := start; vpn < end; vpn++ {
		if pte, ok := as.pages[vpn]; ok {
			if pte.Bits&PTEGuard == 0 {
				as.phys.FreeFrame(pte.Frame)
				as.stats.MappedPages--
			}
			pte.Bits = PTEGuard
			pte.Frame = tmem.NoFrame
		} else {
			g := &PTE{Frame: tmem.NoFrame, Bits: PTEGuard}
			as.pages[vpn] = g
			as.insertVPN(vpn, g)
		}
	}
	as.ShootdownAll()
	// Dead if every page of the reservation is a guard (or never touched
	// but covered by explicit guards).
	allGone := true
	for vpn := r.Base >> PageShift; vpn < (r.Base+r.Length)>>PageShift; vpn++ {
		pte, ok := as.pages[vpn]
		if ok && pte.Bits&PTEGuard == 0 {
			allGone = false
			break
		}
		if !ok {
			allGone = false // untouched pages are still mappable
			break
		}
	}
	if allGone {
		r.Dead = true
	}
	return r, allGone, nil
}

// MarkNoCaps registers the reservation as capability-prohibited: pages
// materialized within it never get PTECapWrite (shared file mappings,
// footnote 13 of the paper).
func (as *AddressSpace) MarkNoCaps(r *Reservation) {
	r.NoCaps = true
}

// ReleaseReservation recycles a Dead reservation's guard entries. Only safe
// after revocation has swept stale capabilities to it.
func (as *AddressSpace) ReleaseReservation(r *Reservation) {
	if !r.Dead {
		panic("vm: releasing live reservation")
	}
	for vpn := r.Base >> PageShift; vpn < (r.Base+r.Length)>>PageShift; vpn++ {
		if _, ok := as.pages[vpn]; ok {
			delete(as.pages, vpn)
			as.removeVPN(vpn)
		}
	}
	for i, rr := range as.resv {
		if rr == r {
			as.resv = append(as.resv[:i], as.resv[i+1:]...)
			break
		}
	}
}

// Reservations returns the live reservations in creation order.
func (as *AddressSpace) Reservations() []*Reservation { return as.resv }

// ForEachMappedPage visits every resident page in ascending VA order. fn
// may mutate the PTE; it must not map or unmap pages.
func (as *AddressSpace) ForEachMappedPage(fn func(vpn uint64, pte *PTE) bool) {
	for i, vpn := range as.vpns {
		pte := as.ptes[i]
		if pte.Bits&PTEGuard != 0 {
			continue
		}
		if !fn(vpn, pte) {
			return
		}
	}
}

// MappedPageCount returns the number of resident pages.
func (as *AddressSpace) MappedPageCount() int { return as.stats.MappedPages }

// --- capability load generations (§4.1) ---------------------------------

// CoreGen returns the in-core capability load generation for core.
func (as *AddressSpace) CoreGen(core int) uint8 { return as.coreGen[core] }

// BumpCoreGen toggles core's in-core generation bit. Called with the world
// stopped at the start of a Reloaded epoch; any core later entering this
// address space adopts the new value (we model that by bumping all cores).
func (as *AddressSpace) BumpCoreGen(core int) { as.coreGen[core] ^= 1 }

// GenMismatch reports whether a tagged capability load by core from the
// page would trap (PTE generation differs from the in-core generation).
func (as *AddressSpace) GenMismatch(core int, pte *PTE) bool {
	return pte.Gen != as.coreGen[core]
}

// --- TLBs ----------------------------------------------------------------

// TLBLookup consults core's TLB for va's page, returning the cached PTE
// snapshot.
func (as *AddressSpace) TLBLookup(core int, va uint64) (PTE, bool) {
	e, ok := as.tlbs[core][va>>PageShift]
	if !ok || !e.valid {
		return PTE{}, false
	}
	return e.pte, true
}

// TLBFill caches the current PTE (including its generation) in core's TLB.
func (as *AddressSpace) TLBFill(core int, va uint64, pte *PTE) {
	as.tlbs[core][va>>PageShift] = tlbEntry{pte: *pte, valid: true}
}

// TLBInvalidate removes va's page from core's TLB.
func (as *AddressSpace) TLBInvalidate(core int, va uint64) {
	delete(as.tlbs[core], va>>PageShift)
}

// ShootdownAll flushes every core's TLB for this address space (an IPI
// broadcast in hardware). The cycle cost is charged by the kernel layer.
func (as *AddressSpace) ShootdownAll() {
	dropped := false
	for i := range as.tlbs {
		if as.ShootdownFilter != nil && as.ShootdownFilter(i) {
			dropped = true
			continue
		}
		as.tlbs[i] = make(map[uint64]tlbEntry)
	}
	as.incomplete = dropped
	as.stats.Shootdowns++
	if as.OnShootdown != nil {
		as.OnShootdown()
	}
}

// ShootdownIncomplete reports whether the most recent ShootdownAll left
// any core's TLB stale (a dropped IPI). The revoker verifies this after
// arming the load barrier and re-issues the broadcast (abort-and-retry).
func (as *AddressSpace) ShootdownIncomplete() bool { return as.incomplete }

// CloneCOW clones the address space for fork with copy-on-write sharing:
// resident pages share their frames (reference counted); both sides'
// PTEs are marked PTECOW so the first write by either resolves to a
// private copy. Dirty-summary bits are inherited, so the child's revoker
// never skips a page whose shared frame carries capabilities.
func (as *AddressSpace) CloneCOW() *AddressSpace {
	c := NewAddressSpace(as.phys, len(as.coreGen))
	c.FlatVPNs = as.FlatVPNs
	c.next = as.next
	copy(c.coreGen, as.coreGen)
	for _, r := range as.resv {
		nr := *r
		c.resv = append(c.resv, &nr)
	}
	for i, vpn := range as.vpns {
		pte := as.ptes[i]
		np := &PTE{Frame: pte.Frame, Bits: pte.Bits, Gen: as.coreGen[0]}
		np.Bits &^= PTECapLoadTrap
		if pte.Bits&PTEGuard == 0 {
			as.phys.Ref(pte.Frame)
			pte.Bits |= PTECOW
			np.Bits |= PTECOW
			c.stats.MappedPages++
		}
		c.pages[vpn] = np
		c.vpns = append(c.vpns, vpn)
		c.ptes = append(c.ptes, np)
	}
	as.ShootdownAll() // parents' cached writable translations are stale
	c.stats.PeakMappedPages = c.stats.MappedPages
	return c
}

// ResolveCOW gives the page a private frame: if the frame is still shared,
// its contents (tags, capabilities, colors) are copied into a fresh frame
// and the sharing reference dropped. Idempotent; reports whether a copy
// happened.
func (as *AddressSpace) ResolveCOW(pte *PTE) (bool, error) {
	if pte.Bits&PTECOW == 0 {
		return false, nil
	}
	if !as.phys.Shared(pte.Frame) {
		// Last sharer: the frame is already effectively private.
		pte.Bits &^= PTECOW
		return false, nil
	}
	nf, err := as.phys.AllocFrame()
	if err != nil {
		return false, err
	}
	as.phys.CopyFrame(nf, pte.Frame)
	as.phys.FreeFrame(pte.Frame) // drops our shared reference
	pte.Frame = nf
	pte.Bits &^= PTECOW
	return true, nil
}

// Clone eagerly copies the address space for fork: same reservations and
// virtual layout, fresh frames holding copies of every resident page's
// tags, capabilities and colors. Guard entries are preserved. The clone's
// in-core generations start from the parent's current values and all PTEs
// are stamped with them, so the child begins at a steady state (no stale
// generations; the paper's implementation must instead propagate pending
// load traps into the child, footnote 21).
func (as *AddressSpace) Clone() (*AddressSpace, error) {
	c := NewAddressSpace(as.phys, len(as.coreGen))
	c.FlatVPNs = as.FlatVPNs
	c.next = as.next
	copy(c.coreGen, as.coreGen)
	for _, r := range as.resv {
		nr := *r
		c.resv = append(c.resv, &nr)
	}
	for i, vpn := range as.vpns {
		pte := as.ptes[i]
		np := &PTE{Frame: tmem.NoFrame, Bits: pte.Bits, Gen: as.coreGen[0]}
		if pte.Bits&PTEGuard == 0 {
			f, err := as.phys.AllocFrame()
			if err != nil {
				return nil, err
			}
			as.phys.CopyFrame(f, pte.Frame)
			np.Frame = f
			c.stats.MappedPages++
		}
		np.Bits &^= PTECapLoadTrap
		c.pages[vpn] = np
		c.vpns = append(c.vpns, vpn)
		c.ptes = append(c.ptes, np)
	}
	c.stats.PeakMappedPages = c.stats.MappedPages
	return c, nil
}

// GranuleOf converts a VA to its (vpn, granule index) coordinates.
func GranuleOf(va uint64) (vpn uint64, g int) {
	return va >> PageShift, int(va%PageSize) / ca.GranuleSize
}

// TagWordSpan is the address-space span covered by one 64-bit tag word: 64
// capability granules, i.e. 1 KiB. Tag words and shadow-bitmap words tile
// the address space at this alignment, which is what lets a word-wise
// sweep intersect them directly.
const TagWordSpan = 64 * ca.GranuleSize

// TagWordVA returns the VA of the first granule covered by tag word w of
// page vpn — the inverse of GranuleWordOf for a word's base.
func TagWordVA(vpn uint64, w int) uint64 {
	return vpn<<PageShift + uint64(w)*TagWordSpan
}

// GranuleWordOf converts a VA to its (vpn, tag word, bit) coordinates: the
// page, the 64-bit tag word within the page's tag bitmap, and the
// granule's bit within that word.
func GranuleWordOf(va uint64) (vpn uint64, w int, bit uint) {
	vpn, g := GranuleOf(va)
	return vpn, g >> 6, uint(g) & 63
}
