package vm

import (
	"errors"
	"testing"

	"repro/internal/ca"
	"repro/internal/tmem"
)

func newAS(t *testing.T) *AddressSpace {
	t.Helper()
	return NewAddressSpace(tmem.NewPhys(1<<16), 4)
}

func TestReserveReturnsBoundedRoot(t *testing.T) {
	as := newAS(t)
	r, err := as.Reserve(10_000, ca.PermsData)
	if err != nil {
		t.Fatal(err)
	}
	if r.Length < 10_000 || r.Length%PageSize != 0 {
		t.Fatalf("reservation length %d", r.Length)
	}
	if !r.Root.Tag() || r.Root.Base() != r.Base || r.Root.Len() != r.Length {
		t.Fatalf("root %v does not span reservation [%#x,+%d)", r.Root, r.Base, r.Length)
	}
}

func TestReservationsDoNotOverlap(t *testing.T) {
	as := newAS(t)
	var prev *Reservation
	for i := 0; i < 20; i++ {
		r, err := as.Reserve(uint64(1000*(i+1)), ca.PermsData)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && r.Base < prev.Base+prev.Length+PageSize {
			t.Fatalf("reservation %d at %#x overlaps/abuts previous end %#x (no guard)",
				i, r.Base, prev.Base+prev.Length)
		}
		prev = r
	}
}

func TestDemandPaging(t *testing.T) {
	as := newAS(t)
	r, _ := as.Reserve(8*PageSize, ca.PermsData)
	pte, faulted, err := as.EnsureMapped(r.Base + 5*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !faulted {
		t.Fatal("first touch did not soft-fault")
	}
	if pte.Bits&PTEValid == 0 || pte.Frame == tmem.NoFrame {
		t.Fatal("PTE not materialized")
	}
	if as.MappedPageCount() != 1 {
		t.Fatalf("RSS = %d pages, want 1", as.MappedPageCount())
	}
	_, faulted2, _ := as.EnsureMapped(r.Base + 5*PageSize)
	if faulted2 {
		t.Fatal("second touch soft-faulted")
	}
	if got := as.Stats().SoftFaults; got != 1 {
		t.Fatalf("soft faults = %d, want 1", got)
	}
}

func TestAccessOutsideReservationFaults(t *testing.T) {
	as := newAS(t)
	_, _, err := as.EnsureMapped(0x42)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultUnmapped {
		t.Fatalf("err = %v, want unmapped fault", err)
	}
}

func TestUnmapLeavesGuards(t *testing.T) {
	as := newAS(t)
	r, _ := as.Reserve(4*PageSize, ca.PermsData)
	for i := uint64(0); i < 4; i++ {
		if _, _, err := as.EnsureMapped(r.Base + i*PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if _, dead, err := as.UnmapRange(r.Base+PageSize, PageSize); err != nil || dead {
		t.Fatalf("partial unmap: dead=%v err=%v", dead, err)
	}
	// The hole must not be re-mappable.
	if _, _, err := as.EnsureMapped(r.Base + PageSize); err == nil {
		t.Fatal("guard page re-materialized")
	}
	if as.MappedPageCount() != 3 {
		t.Fatalf("RSS = %d, want 3", as.MappedPageCount())
	}
	// Other pages still fine.
	if _, _, err := as.EnsureMapped(r.Base + 2*PageSize); err != nil {
		t.Fatal(err)
	}
}

func TestFullUnmapMarksReservationDead(t *testing.T) {
	as := newAS(t)
	r, _ := as.Reserve(2*PageSize, ca.PermsData)
	as.EnsureMapped(r.Base)
	_, dead, err := as.UnmapRange(r.Base, r.Length)
	if err != nil {
		t.Fatal(err)
	}
	if !dead || !r.Dead {
		t.Fatal("full unmap did not mark reservation dead")
	}
	// New reservations must not reuse the dead span before release.
	r2, _ := as.Reserve(PageSize, ca.PermsData)
	if r2.Base < r.Base+r.Length {
		t.Fatalf("new reservation at %#x reuses dead span at %#x", r2.Base, r.Base)
	}
	as.ReleaseReservation(r)
	if _, ok := as.Lookup(r.Base); ok {
		t.Fatal("released reservation still mapped")
	}
}

func TestForEachMappedPageOrderedDeterministic(t *testing.T) {
	as := newAS(t)
	r, _ := as.Reserve(64*PageSize, ca.PermsData)
	// Touch pages out of order.
	for _, i := range []uint64{30, 2, 55, 7, 41} {
		as.EnsureMapped(r.Base + i*PageSize)
	}
	var got []uint64
	as.ForEachMappedPage(func(vpn uint64, pte *PTE) bool {
		got = append(got, vpn)
		return true
	})
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("pages not in ascending order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("visited %d pages, want 5", len(got))
	}
}

func TestGenerationProtocol(t *testing.T) {
	as := newAS(t)
	r, _ := as.Reserve(PageSize, ca.PermsData)
	pte, _, _ := as.EnsureMapped(r.Base)
	if as.GenMismatch(0, pte) {
		t.Fatal("fresh page mismatches at steady state")
	}
	// Epoch start: bump every core's in-core generation. PTEs untouched.
	for c := 0; c < 4; c++ {
		as.BumpCoreGen(c)
	}
	if !as.GenMismatch(0, pte) {
		t.Fatal("no mismatch after generation bump")
	}
	// Revoker visits the page: update the PTE to the new generation.
	pte.Gen = as.CoreGen(0)
	if as.GenMismatch(2, pte) {
		t.Fatal("mismatch after revoker updated PTE")
	}
}

func TestTLBCachesStaleGeneration(t *testing.T) {
	as := newAS(t)
	r, _ := as.Reserve(PageSize, ca.PermsData)
	pte, _, _ := as.EnsureMapped(r.Base)
	as.TLBFill(1, r.Base, pte)
	// Revoker sweeps: bump gens, update PTE, but core 1's TLB still holds
	// the old snapshot.
	for c := 0; c < 4; c++ {
		as.BumpCoreGen(c)
	}
	pte.Gen = as.CoreGen(0)
	cached, ok := as.TLBLookup(1, r.Base)
	if !ok {
		t.Fatal("TLB entry lost")
	}
	if cached.Gen == as.CoreGen(1) {
		t.Fatal("TLB magically saw the new generation")
	}
	// After a shootdown the stale entry is gone.
	as.ShootdownAll()
	if _, ok := as.TLBLookup(1, r.Base); ok {
		t.Fatal("TLB entry survived shootdown")
	}
	if as.Stats().Shootdowns == 0 {
		t.Fatal("shootdown not counted")
	}
}

// TestShootdownAllCountsOperationsNotCores pins the Shootdowns stat's unit:
// one ShootdownAll is one operation (one IPI broadcast), regardless of how
// many cores held entries — and every per-core TLB is invalidated, including
// cores that never cached anything.
func TestShootdownAllCountsOperationsNotCores(t *testing.T) {
	as := newAS(t) // 4 cores
	r, _ := as.Reserve(4*PageSize, ca.PermsData)
	pte, _, err := as.EnsureMapped(r.Base)
	if err != nil {
		t.Fatal(err)
	}
	// Fill TLBs on cores 0 and 2 only; cores 1 and 3 stay empty.
	as.TLBFill(0, r.Base, pte)
	as.TLBFill(2, r.Base, pte)

	as.ShootdownAll()
	if got := as.Stats().Shootdowns; got != 1 {
		t.Fatalf("Shootdowns = %d after one ShootdownAll, want 1 (operations, not cores)", got)
	}
	for core := 0; core < 4; core++ {
		if _, ok := as.TLBLookup(core, r.Base); ok {
			t.Errorf("core %d TLB still holds an entry after ShootdownAll", core)
		}
	}

	// A second shootdown — with every TLB already empty — still counts as
	// one more operation.
	as.ShootdownAll()
	if got := as.Stats().Shootdowns; got != 2 {
		t.Fatalf("Shootdowns = %d after two ShootdownAll calls, want 2", got)
	}

	// Refilled entries are gone again after a further shootdown, and the
	// OnShootdown hook fires once per operation.
	fired := 0
	as.OnShootdown = func() { fired++ }
	as.TLBFill(1, r.Base, pte)
	as.TLBFill(3, r.Base, pte)
	as.ShootdownAll()
	if fired != 1 {
		t.Fatalf("OnShootdown fired %d times for one operation, want 1", fired)
	}
	if got := as.Stats().Shootdowns; got != 3 {
		t.Fatalf("Shootdowns = %d after three ShootdownAll calls, want 3", got)
	}
	for _, core := range []int{1, 3} {
		if _, ok := as.TLBLookup(core, r.Base); ok {
			t.Errorf("core %d TLB survived the third shootdown", core)
		}
	}
}

func TestCapDirtyBits(t *testing.T) {
	as := newAS(t)
	r, _ := as.Reserve(PageSize, ca.PermsData)
	pte, _, _ := as.EnsureMapped(r.Base)
	if pte.Bits&PTECapDirty != 0 {
		t.Fatal("fresh page capability-dirty")
	}
	pte.Bits |= PTECapDirty | PTEEverCapDirty
	pte.Bits &^= PTECapDirty // revoker cleans
	if pte.Bits&PTEEverCapDirty == 0 {
		t.Fatal("ever-dirty flag lost on clean")
	}
}

func TestGranuleOf(t *testing.T) {
	vpn, g := GranuleOf(0x12345)
	if vpn != 0x12 || g != (0x345)/16 {
		t.Fatalf("GranuleOf = (%#x,%d)", vpn, g)
	}
}

func TestUnmapEscapingReservationRejected(t *testing.T) {
	as := newAS(t)
	r, _ := as.Reserve(2*PageSize, ca.PermsData)
	if _, _, err := as.UnmapRange(r.Base, r.Length+PageSize); err == nil {
		t.Fatal("unmap escaping reservation accepted")
	}
}

func TestUnmapFreesFrames(t *testing.T) {
	phys := tmem.NewPhys(8)
	as := NewAddressSpace(phys, 1)
	r, _ := as.Reserve(4*PageSize, ca.PermsData)
	for i := uint64(0); i < 4; i++ {
		as.EnsureMapped(r.Base + i*PageSize)
	}
	if phys.Allocated() != 4 {
		t.Fatalf("frames = %d", phys.Allocated())
	}
	as.UnmapRange(r.Base, r.Length)
	if phys.Allocated() != 0 {
		t.Fatalf("frames after unmap = %d, want 0", phys.Allocated())
	}
}
