// Package qps is a surrogate for the gRPC QPS client/server experiment
// (§5.3): a two-thread asynchronous server pinned to cores 2 and 3, fed by
// 20 channels with 4 outstanding messages each, measuring throughput and
// per-message latency percentiles. The revoker is deliberately NOT pinned
// in this experiment, so background revocation competes with the server
// for CPU — the source of the paper's 99.9th-percentile pathology (§7.7).
//
// The client is modelled as a closed loop: each completed reply schedules
// the credit's next arrival one round trip later. Latency is measured from
// arrival to reply, so queueing delay incurred while the server is paused
// or preempted is included.
package qps

import (
	"container/heap"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/workload"
)

// QPS is the workload.
type QPS struct {
	// MeasureCycles is the measurement window after warmup.
	MeasureCycles uint64
	// WarmupCycles precede measurement (discarded).
	WarmupCycles uint64
	// ChannelsPerThread and Outstanding shape the closed loop: credits =
	// channels × outstanding per server thread.
	ChannelsPerThread, Outstanding int

	// Messages counts measured messages (for throughput).
	Messages uint64
}

// New returns the paper's scenario scaled to a short window: 10 channels ×
// 4 outstanding per each of two threads.
func New(measure, warmup uint64) *QPS {
	return &QPS{
		MeasureCycles:     measure,
		WarmupCycles:      warmup,
		ChannelsPerThread: 10,
		Outstanding:       4,
	}
}

// Name implements workload.Workload.
func (w *QPS) Name() string { return "grpc-qps" }

// Full-scale calibration constants.
const (
	// dataPoolBytes models the server's live message/session state
	// (Table 2: 340 MiB mean heap).
	dataPoolBytes = 340 << 20
	// scratchPerMsg is the full-scale per-message allocation churn.
	scratchPerMsg = 56 << 10
	// rttCycles is the client round trip (~24 µs).
	rttCycles = 60_000
)

// arrivalHeap is a min-heap of message arrival times.
type arrivalHeap []uint64

func (h arrivalHeap) Len() int            { return len(h) }
func (h arrivalHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Body implements workload.Workload: the primary thread runs one server
// loop on core 3 and spawns the second on core 2.
func (w *QPS) Body(rig *workload.Rig, th *kernel.Thread) {
	rig.SpawnApp("qps-server-1", []int{2}, func(th2 *kernel.Thread) {
		w.serve(rig, th2, 1)
	})
	w.serve(rig, th, 0)
	rig.Join(th)
}

// serve is one server thread's loop.
func (w *QPS) serve(rig *workload.Rig, th *kernel.Thread, idx int) {
	rng := rig.RNG
	sizes := workload.NewSizeDist([]uint64{1024, 4096, 16384}, []int{4, 2, 1})
	poolBytes := rig.ScaleBytes(dataPoolBytes) / 2 // split across threads
	slots := int(poolBytes / sizes.Mean())
	if slots < 16 {
		slots = 16
	}
	data, err := workload.NewPool(rig, th, slots, sizes, 0.3)
	if err != nil {
		panic(fmt.Sprintf("qps: %v", err))
	}
	scratchSizes := workload.NewSizeDist([]uint64{128, 512, 2048}, []int{3, 2, 1})
	scratchObjs := int(rig.ScaleBytes(scratchPerMsg) / scratchSizes.Mean())
	if scratchObjs < 2 {
		scratchObjs = 2
	}
	scratch, err := workload.NewPool(rig, th, scratchObjs, scratchSizes, 0.2)
	if err != nil {
		panic(fmt.Sprintf("qps: %v", err))
	}

	// Seed the closed loop: all credits arrive staggered across one RTT.
	credits := w.ChannelsPerThread * w.Outstanding
	arr := make(arrivalHeap, 0, credits)
	start := th.Sim.Now()
	for i := 0; i < credits; i++ {
		arr = append(arr, start+uint64(i)*rttCycles/uint64(credits))
	}
	heap.Init(&arr)

	measureStart := start + w.WarmupCycles
	end := measureStart + w.MeasureCycles
	for {
		now := th.Sim.Now()
		if now >= end {
			return
		}
		arrival := arr[0]
		if arrival > now {
			th.Idle(arrival - now)
		}
		heap.Pop(&arr)
		// Unmarshal, handle, marshal, reply.
		th.Syscall(900) // recv
		th.Work(2_500)
		if err := data.Access(rng.Intn(data.Slots()), 1024, 1); err != nil {
			panic(fmt.Sprintf("qps: access: %v", err))
		}
		if err := data.Mutate(rng.Intn(data.Slots()), 512, 0.05); err != nil {
			panic(fmt.Sprintf("qps: mutate: %v", err))
		}
		for i := 0; i < scratch.Slots(); i++ {
			if err := scratch.Replace(i); err != nil {
				panic(fmt.Sprintf("qps: scratch: %v", err))
			}
		}
		th.Work(1_800)
		th.Syscall(900) // send
		done := th.Sim.Now()
		if done >= measureStart && done < end {
			rig.Lat.AddU(done - arrival)
			w.Messages++
		}
		// The client sends this credit's next message one RTT later.
		heap.Push(&arr, done+rttCycles)
	}
}
