package qps

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func runQPS(t *testing.T, w *QPS) *workload.Rig {
	t.Helper()
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(6)
	h := alloc.NewHeap(p)
	rig := &workload.Rig{
		M: m, P: p, Mem: h,
		Lat:      &metrics.Samples{},
		RNG:      rand.New(rand.NewSource(6)),
		AppCores: []int{3},
		Scale:    64,
	}
	p.Spawn("server-0", []int{3}, func(th *kernel.Thread) { w.Body(rig, th) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return rig
}

func TestTwoServerThreadsRun(t *testing.T) {
	w := New(100_000_000, 10_000_000)
	rig := runQPS(t, w)
	// Both server cores must have been busy.
	if rig.M.Eng.CoreBusy(2) == 0 || rig.M.Eng.CoreBusy(3) == 0 {
		t.Fatalf("core busy: c2=%d c3=%d", rig.M.Eng.CoreBusy(2), rig.M.Eng.CoreBusy(3))
	}
}

func TestMessagesAndLatenciesRecorded(t *testing.T) {
	w := New(100_000_000, 10_000_000)
	rig := runQPS(t, w)
	if w.Messages == 0 {
		t.Fatal("no messages measured")
	}
	if uint64(rig.Lat.N()) != w.Messages {
		t.Fatalf("latencies %d != messages %d", rig.Lat.N(), w.Messages)
	}
	// Closed loop: latency at least includes some queueing/service.
	if rig.Lat.Min() <= 0 {
		t.Fatal("nonpositive latency")
	}
}

func TestWarmupDiscarded(t *testing.T) {
	short := New(50_000_000, 50_000_000)
	rig := runQPS(t, short)
	// Messages completing inside warmup must not be measured; with warmup
	// == measure the counted messages are roughly half of all replies.
	if short.Messages == 0 {
		t.Fatal("no measured messages")
	}
	_ = rig
}

func TestThroughputSaturates(t *testing.T) {
	// Doubling the measurement window should roughly double message count
	// (the server is load-bound, not client-bound).
	w1 := New(60_000_000, 10_000_000)
	runQPS(t, w1)
	w2 := New(120_000_000, 10_000_000)
	runQPS(t, w2)
	ratio := float64(w2.Messages) / float64(w1.Messages)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("throughput not stable: %d vs %d (ratio %.2f)", w1.Messages, w2.Messages, ratio)
	}
}
