// Package heapscale is the memory-scale stress axis: a GB-scale heap of a
// million-plus live allocations (at scale 1) with modest churn. Where the
// SPEC surrogates and server workloads stress revocation *rate*, heapscale
// stresses revocation *extent* — the sheer number of live allocations,
// mapped pages and tagged granules a sweep must cover — which is exactly
// the regime the sparse hierarchical tag and shadow representations (and
// the O(1)-append vpn path) exist for. Host-side, a heapscale run is
// dominated by allocation-path and sweep-iteration costs; simulated
// results are identical under every kernel.MemPath, pinned by the
// mem-path equivalence tests.
package heapscale

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/workload"
)

// Workload builds a pool of LiveAllocs/Scale small objects, churns a
// fraction of it, and sweeps the survivors with a round of accesses.
type Workload struct {
	// LiveAllocs is the full-scale live allocation count, divided by the
	// rig's Scale. The shipped grid uses 1<<20 (a million live
	// allocations, ~1 GiB of heap at scale 1).
	LiveAllocs int
	// ChurnOps is the full-scale replace count, also divided by Scale.
	// Kept small relative to LiveAllocs: heapscale measures scale, not
	// churn rate.
	ChurnOps int
}

// New returns a heapscale workload with full-scale parameters.
func New(liveAllocs, churnOps int) Workload {
	return Workload{LiveAllocs: liveAllocs, ChurnOps: churnOps}
}

// Name implements workload.Workload.
func (Workload) Name() string { return "heapscale" }

// sizes is the allocation mixture: small-object heavy (mean 1 KiB), so a
// million allocations is about a gigabyte of heap.
func sizes() workload.SizeDist {
	return workload.NewSizeDist([]uint64{256, 1024, 4096}, []int{4, 3, 1})
}

// ptrFrac keeps object pages sparsely tagged: most granules of the heap
// hold plain data, so live tags are far rarer than live bytes — the
// distribution the hierarchical summaries exploit.
const ptrFrac = 0.05

// Body implements workload.Workload.
func (h Workload) Body(rig *workload.Rig, th *kernel.Thread) {
	slots := h.LiveAllocs / int(rig.Scale)
	if slots < 64 {
		slots = 64
	}
	ops := h.ChurnOps / int(rig.Scale)
	pool, err := workload.NewPool(rig, th, slots, sizes(), ptrFrac)
	if err != nil {
		panic(fmt.Sprintf("heapscale: %v", err))
	}
	for op := 0; op < ops; op++ {
		if err := pool.Replace(pool.PickSlot(0.05, 0.9)); err != nil {
			panic(fmt.Sprintf("heapscale: replace: %v", err))
		}
		if op%4 == 3 {
			if err := pool.Access(pool.PickSlot(0, 0), 128, 1); err != nil {
				panic(fmt.Sprintf("heapscale: access: %v", err))
			}
		}
	}
	// A final pass over the whole pool: every live object is touched once,
	// so the run's cost reflects the full extent of the heap, not only the
	// churned fraction.
	for i := 0; i < slots; i++ {
		if err := pool.Access(i, 64, 0); err != nil {
			panic(fmt.Sprintf("heapscale: final access: %v", err))
		}
	}
	if err := pool.Drain(); err != nil {
		panic(fmt.Sprintf("heapscale: drain: %v", err))
	}
}

// MaxFrames returns a physical-memory bound (in 4 KiB frames) sufficient
// for the workload at the given scale: live bytes plus root array,
// allocator slack and a safety margin. Callers building heapscale jobs use
// this to size Machine.MaxFrames, since the default 1 GiB board is too
// small for a full-scale heapscale run.
func (h Workload) MaxFrames(scale uint64) int {
	live := uint64(h.LiveAllocs) / scale * sizes().Mean()
	frames := int(live/4096) * 2 // 2×: allocator slack, root, quarantine
	if frames < 1<<18 {
		frames = 1 << 18
	}
	return frames
}
