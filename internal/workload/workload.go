// Package workload is the framework the benchmark surrogates are written
// against. A Workload runs application code on simulated threads against a
// malloc/free API (the bare heap, the mrs quarantine shim, or the coloring
// shim), keeping all long-lived pointers in simulated memory or thread
// registers so revocation semantics are fully exercised.
package workload

import (
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Rig is the execution context the harness hands a workload.
type Rig struct {
	M   *kernel.Machine
	P   *kernel.Process
	Mem alloc.API
	// Lat collects per-event latencies (transactions, messages) in cycles.
	Lat *metrics.Samples
	// RNG drives all workload randomness; seeded by the harness for
	// reproducibility.
	RNG *rand.Rand
	// AppCores is where application threads are pinned.
	AppCores []int
	// Scale divides the paper's full-size footprints (64 in the shipped
	// experiments; see DESIGN.md).
	Scale uint64

	running int
	doneEv  *sim.Event
}

// Workload is a benchmark surrogate.
type Workload interface {
	// Name identifies the workload in reports ("omnetpp", "pgbench", ...).
	Name() string
	// Body runs the workload's primary application thread. Additional
	// threads are spawned through rig.SpawnApp; Body must rig.Join before
	// returning.
	Body(rig *Rig, th *kernel.Thread)
}

// SpawnApp starts an additional application thread on the given cores.
// Join waits for all threads spawned this way.
func (r *Rig) SpawnApp(name string, cores []int, fn func(th *kernel.Thread)) {
	if r.doneEv == nil {
		r.doneEv = r.M.Eng.NewEvent()
	}
	r.running++
	r.P.Spawn(name, cores, func(th *kernel.Thread) {
		fn(th)
		r.running--
		r.doneEv.Broadcast(th.Sim)
	})
}

// Join blocks th until all SpawnApp threads have finished.
func (r *Rig) Join(th *kernel.Thread) {
	if r.doneEv == nil {
		return
	}
	th.WaitOn(r.doneEv, func() bool { return r.running == 0 })
}

// ScaleBytes converts a full-scale byte count to this rig's scale.
func (r *Rig) ScaleBytes(full uint64) uint64 {
	v := full / r.Scale
	if v == 0 {
		v = 1
	}
	return v
}
