package workload

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/kernel"
	"repro/internal/metrics"
)

// withRig runs fn as the app thread of a bare-heap rig.
func withRig(t *testing.T, fn func(rig *Rig, th *kernel.Thread)) {
	t.Helper()
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(5)
	h := alloc.NewHeap(p)
	rig := &Rig{
		M: m, P: p, Mem: h,
		Lat:      &metrics.Samples{},
		RNG:      rand.New(rand.NewSource(5)),
		AppCores: []int{3},
		Scale:    64,
	}
	p.Spawn("app", []int{3}, func(th *kernel.Thread) { fn(rig, th) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSizeDist(t *testing.T) {
	d := NewSizeDist([]uint64{16, 32, 64}, []int{1, 2, 1})
	if d.Mean() != (16+64+64)/4 {
		t.Fatalf("mean = %d", d.Mean())
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[uint64]int{}
	for i := 0; i < 4000; i++ {
		counts[d.Sample(rng)]++
	}
	if counts[16] == 0 || counts[32] == 0 || counts[64] == 0 {
		t.Fatalf("sampling missed a size: %v", counts)
	}
	if counts[32] < counts[16] || counts[32] < counts[64] {
		t.Fatalf("weights not respected: %v", counts)
	}
	if Uniform(128).Sample(rng) != 128 {
		t.Fatal("uniform dist broken")
	}
}

func TestPoolFillAndAccess(t *testing.T) {
	withRig(t, func(rig *Rig, th *kernel.Thread) {
		pool, err := NewPool(rig, th, 64, Uniform(128), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if pool.Slots() != 64 {
			t.Fatalf("slots = %d", pool.Slots())
		}
		for i := 0; i < 64; i++ {
			c, err := pool.Get(i)
			if err != nil {
				t.Fatal(err)
			}
			if !c.Tag() || c.Len() != 128 {
				t.Fatalf("slot %d holds %v", i, c)
			}
			if err := pool.Access(i, 64, 3); err != nil {
				t.Fatalf("access %d: %v", i, err)
			}
		}
	})
}

func TestPoolReplaceChurns(t *testing.T) {
	withRig(t, func(rig *Rig, th *kernel.Thread) {
		pool, err := NewPool(rig, th, 16, Uniform(256), 0.3)
		if err != nil {
			t.Fatal(err)
		}
		before, _ := pool.Get(3)
		heap := rig.Mem.(*alloc.Heap)
		frees := heap.Stats().Frees
		for i := 0; i < 50; i++ {
			if err := pool.Replace(3); err != nil {
				t.Fatal(err)
			}
		}
		after, _ := pool.Get(3)
		if !after.Tag() {
			t.Fatal("slot empty after churn")
		}
		if heap.Stats().Frees != frees+50 {
			t.Fatalf("frees = %d, want %d", heap.Stats().Frees, frees+50)
		}
		_ = before
	})
}

func TestPoolMutateAndLinks(t *testing.T) {
	withRig(t, func(rig *Rig, th *kernel.Thread) {
		pool, err := NewPool(rig, th, 32, Uniform(256), 1.0)
		if err != nil {
			t.Fatal(err)
		}
		pool.Links = 4
		// Refill everything so multi-link objects exist.
		for i := 0; i < 32; i++ {
			if err := pool.Replace(i); err != nil {
				t.Fatal(err)
			}
		}
		// Each 256 B object has room for 4 links at granules 1-4; with
		// PtrFrac 1 every link slot should be populated.
		obj, _ := pool.Get(0)
		links := 0
		for l := 1; l <= 4; l++ {
			c, err := th.LoadCap(obj, uint64(l)*16)
			if err != nil {
				t.Fatal(err)
			}
			if c.Tag() {
				links++
			}
		}
		if links != 4 {
			t.Fatalf("object has %d links, want 4", links)
		}
		if err := pool.Mutate(0, 64, 1.0); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPoolChaseEndsAtStaleLink(t *testing.T) {
	withRig(t, func(rig *Rig, th *kernel.Thread) {
		pool, err := NewPool(rig, th, 8, Uniform(128), 1.0)
		if err != nil {
			t.Fatal(err)
		}
		// Break a link by overwriting it with data, then chase through it:
		// must terminate without error.
		obj, _ := pool.Get(0)
		if err := th.Store(obj, 16, 16); err != nil {
			t.Fatal(err)
		}
		if err := pool.Access(0, 32, 5); err != nil {
			t.Fatalf("chase across broken link: %v", err)
		}
	})
}

func TestPoolPickSlotSkew(t *testing.T) {
	withRig(t, func(rig *Rig, th *kernel.Thread) {
		pool, err := NewPool(rig, th, 100, Uniform(64), 0)
		if err != nil {
			t.Fatal(err)
		}
		hot := 0
		for i := 0; i < 2000; i++ {
			if pool.PickSlot(0.1, 0.9) < 10 {
				hot++
			}
		}
		if hot < 1600 {
			t.Fatalf("hot picks = %d/2000, want ≥ 1600", hot)
		}
		// Degenerate parameters are uniform.
		low := 0
		for i := 0; i < 2000; i++ {
			if pool.PickSlot(0, 0.9) < 10 {
				low++
			}
		}
		if low > 400 {
			t.Fatalf("uniform picks skewed: %d/2000 in first decile", low)
		}
	})
}

func TestPoolDrain(t *testing.T) {
	withRig(t, func(rig *Rig, th *kernel.Thread) {
		heap := rig.Mem.(*alloc.Heap)
		pool, err := NewPool(rig, th, 16, Uniform(128), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Drain(); err != nil {
			t.Fatal(err)
		}
		if live := heap.LiveBytes(); live != 0 {
			t.Fatalf("live bytes after drain = %d", live)
		}
	})
}

func TestRigSpawnJoin(t *testing.T) {
	withRig(t, func(rig *Rig, th *kernel.Thread) {
		done := 0
		rig.SpawnApp("w1", []int{2}, func(t2 *kernel.Thread) {
			t2.Work(10_000)
			done++
		})
		rig.SpawnApp("w2", []int{1}, func(t2 *kernel.Thread) {
			t2.Work(20_000)
			done++
		})
		rig.Join(th)
		if done != 2 {
			t.Fatalf("join returned with %d/2 workers done", done)
		}
	})
}

func TestScaleBytes(t *testing.T) {
	r := &Rig{Scale: 64}
	if r.ScaleBytes(640) != 10 {
		t.Fatal("scale wrong")
	}
	if r.ScaleBytes(1) != 1 {
		t.Fatal("scale floor wrong")
	}
}
