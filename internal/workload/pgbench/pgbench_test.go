package pgbench

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func runTx(t *testing.T, w *PGBench, scale uint64) (*workload.Rig, *kernel.Process) {
	t.Helper()
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(4)
	h := alloc.NewHeap(p)
	rig := &workload.Rig{
		M: m, P: p, Mem: h,
		Lat:      &metrics.Samples{},
		RNG:      rand.New(rand.NewSource(4)),
		AppCores: []int{3},
		Scale:    scale,
	}
	p.Spawn("server", []int{3}, func(th *kernel.Thread) { w.Body(rig, th) })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return rig, p
}

func TestRecordsOneLatencyPerTransaction(t *testing.T) {
	w := New(100)
	rig, _ := runTx(t, w, 64)
	if rig.Lat.N() != 100 {
		t.Fatalf("latencies = %d, want 100", rig.Lat.N())
	}
	if rig.Lat.Min() <= 0 {
		t.Fatal("zero latency recorded")
	}
}

func TestServerIdlesBetweenTransactions(t *testing.T) {
	w := New(200)
	rig, _ := runTx(t, w, 64)
	// The client round trip keeps the server off-core part of the time
	// (§5.2: the workload is not steadily CPU bound).
	wall := rig.M.Eng.WallClock()
	busy := rig.M.Eng.CoreBusy(3)
	if busy >= wall {
		t.Fatalf("server core busy %d ≥ wall %d; no idle time", busy, wall)
	}
	if float64(busy)/float64(wall) > 0.95 {
		t.Fatalf("server %0.f%% busy; expected idle gaps", 100*float64(busy)/float64(wall))
	}
}

func TestRateScheduleSlowsThroughput(t *testing.T) {
	unsched := New(300)
	rigU, _ := runTx(t, unsched, 64)
	unTPS := 300 / rigU.M.Eng.Seconds(rigU.M.Eng.WallClock())

	rated := NewRated(300, unTPS/3)
	rigR, _ := runTx(t, rated, 64)
	ratedTPS := 300 / rigR.M.Eng.Seconds(rigR.M.Eng.WallClock())
	if ratedTPS > unTPS/2 {
		t.Fatalf("rated throughput %.0f not limited below unscheduled %.0f", ratedTPS, unTPS)
	}
	if got := rated.Name(); got == unsched.Name() {
		t.Fatal("rated workload shares a name with unscheduled")
	}
}

func TestTransactionsChurnHeap(t *testing.T) {
	w := New(150)
	rig, p := runTx(t, w, 64)
	h := rig.Mem.(*alloc.Heap)
	st := h.Stats()
	// Every transaction replaces the whole scratch pool.
	if st.Frees < 150 {
		t.Fatalf("frees = %d; transactions did not churn", st.Frees)
	}
	if p.Stats().CapStores == 0 {
		t.Fatal("no capability stores")
	}
	if st.TotalFreed == 0 {
		t.Fatal("no freed volume")
	}
}
