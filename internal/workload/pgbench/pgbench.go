// Package pgbench is a surrogate for the paper's PostgreSQL pgbench
// experiment (§5.2): a server thread processing a long serial stream of
// small transactions against a buffer pool, with client round-trip idle
// time between transactions. Per-transaction latencies are recorded for
// the CDF of Figure 7; the --rate schedules of Table 1 are supported.
//
// Calibration targets from §5.2 and Table 2 (full scale): ~22 MiB worker
// heap, ~340 KiB freed per transaction (freed:allocated ≈ 2534), a
// revocation roughly every 17 transactions, and a server thread on-core
// for roughly half of wall-clock time.
package pgbench

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/workload"
)

// PGBench is the workload. The zero value is not valid; use New.
type PGBench struct {
	// Transactions is the number of transactions to run.
	Transactions int
	// Rate, if non-zero, imposes an a-priori arrival schedule in
	// transactions per virtual second (pgbench --rate, §5.2.1).
	Rate float64
	// name allows distinguishing rate-scheduled variants in reports.
	name string
}

// New returns the standard serial (unscheduled) pgbench workload.
func New(transactions int) *PGBench {
	return &PGBench{Transactions: transactions, name: "pgbench"}
}

// NewRated returns a rate-scheduled pgbench (Table 1).
func NewRated(transactions int, rate float64) *PGBench {
	return &PGBench{Transactions: transactions, Rate: rate,
		name: fmt.Sprintf("pgbench@%g", rate)}
}

// Name implements workload.Workload.
func (w *PGBench) Name() string { return w.name }

// Full-scale calibration constants.
const (
	// dataPoolBytes models the worker-resident table/buffer working set.
	dataPoolBytes = 16 << 20
	// scratchPerTx is the full-scale per-transaction allocation churn
	// (parse trees, plan nodes, tuples).
	scratchPerTx = 340 << 10
	// clientRTTCycles is the client round trip between serial
	// transactions (~26 µs at 2.5 GHz), the source of the server's idle
	// time.
	clientRTTCycles = 64_000
	// walRingBytes is the full-scale WAL buffer ring; each transaction
	// streams a record into it, giving the baseline its realistic write
	// traffic.
	walRingBytes = 2 << 20
	// walRecordBytes is the WAL volume written per transaction.
	walRecordBytes = 2048
)

// Body implements workload.Workload.
func (w *PGBench) Body(rig *workload.Rig, th *kernel.Thread) {
	rng := rig.RNG
	// The buffer pool: mid-sized tuples with moderate pointer linking
	// (index nodes referencing heap tuples).
	poolBytes := rig.ScaleBytes(dataPoolBytes)
	sizes := workload.NewSizeDist([]uint64{512, 2048, 8192}, []int{4, 2, 1})
	slots := int(poolBytes / sizes.Mean())
	if slots < 16 {
		slots = 16
	}
	data, err := workload.NewPool(rig, th, slots, sizes, 0.35)
	if err != nil {
		panic(fmt.Sprintf("pgbench: %v", err))
	}
	// Scratch pool: per-transaction allocations, fully churned each tx.
	scratchSizes := workload.NewSizeDist([]uint64{256, 512, 1024}, []int{2, 2, 1})
	scratchPer := rig.ScaleBytes(scratchPerTx)
	scratchObjs := int(scratchPer / scratchSizes.Mean())
	if scratchObjs < 4 {
		scratchObjs = 4
	}
	scratch, err := workload.NewPool(rig, th, scratchObjs, scratchSizes, 0.25)
	if err != nil {
		panic(fmt.Sprintf("pgbench: %v", err))
	}
	// The WAL ring: sequential streaming writes, one record per commit.
	wal, err := rig.Mem.Malloc(th, rig.ScaleBytes(walRingBytes))
	if err != nil {
		panic(fmt.Sprintf("pgbench: wal: %v", err))
	}
	walOff := uint64(0)

	// The server registers long-lived session state with the kernel
	// (kqueue-style), exercising the §4.4 hoard-scanning path: these
	// capabilities live inside the kernel and must be visited during every
	// revocation's stop-the-world phase.
	hoard := rig.P.NewHoard("pgbench-sessions")
	for i := 0; i < 8; i++ {
		c, err := rig.Mem.Malloc(th, 512)
		if err != nil {
			panic(fmt.Sprintf("pgbench: session alloc: %v", err))
		}
		hoard.Put(i, c)
		th.SetReg(8+i, c) // the server also keeps them reachable
	}

	var nextArrival uint64
	if w.Rate > 0 {
		nextArrival = th.Sim.Now()
	}
	interval := uint64(0)
	if w.Rate > 0 {
		interval = uint64(rig.M.Eng.Config().HzGHz * 1e9 / w.Rate)
	}

	for tx := 0; tx < w.Transactions; tx++ {
		// Client round trip (serial mode) or schedule wait (rate mode).
		if w.Rate > 0 {
			if now := th.Sim.Now(); nextArrival > now {
				th.Idle(nextArrival - now)
			}
			// Exponential-ish jitter around the schedule via two draws.
			nextArrival += interval/2 + uint64(rng.Int63n(int64(interval)))
		} else {
			th.Idle(clientRTTCycles)
		}

		start := th.Sim.Now()
		// BEGIN; parse and plan.
		th.Syscall(1_500) // client read
		th.Work(14_000)
		// Data phase: index walks and tuple reads (SELECT/UPDATE mix of
		// the default TPC-B-like script: 3 updates, 1 select, 1 insert).
		// Reads range over the whole buffer pool, so the baseline carries
		// realistic miss traffic.
		for i := 0; i < 8; i++ {
			if err := data.Access(data.PickSlot(0.25, 0.6), 1536, 2); err != nil {
				panic(fmt.Sprintf("pgbench: data access: %v", err))
			}
		}
		for i := 0; i < 3; i++ {
			if err := data.Mutate(data.PickSlot(0.2, 0.9), 256, 0.1); err != nil {
				panic(fmt.Sprintf("pgbench: data mutate: %v", err))
			}
		}
		// Scratch churn: allocate and free the transaction-local memory.
		for i := 0; i < scratch.Slots(); i++ {
			if err := scratch.Replace(i); err != nil {
				panic(fmt.Sprintf("pgbench: scratch: %v", err))
			}
		}
		// Executor work, WAL record, COMMIT, client reply.
		th.Work(16_000)
		rec := uint64(walRecordBytes)
		if walOff+rec > wal.Len() {
			walOff = 0
		}
		if err := th.Store(wal, walOff, rec); err != nil {
			panic(fmt.Sprintf("pgbench: wal write: %v", err))
		}
		walOff += rec
		th.Syscall(4_000) // WAL fsync (modelled flat)
		th.Syscall(1_200) // client write
		rig.Lat.AddU(th.Sim.Now() - start)
	}
}
