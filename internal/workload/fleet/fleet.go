// Package fleet is an open-loop connection-fleet surrogate: many
// mostly-idle connection threads, each cycling think-time → request →
// think-time against a small per-connection session pool. It models the
// regime the paper's service experiments (§5.3) scale toward — thousands
// of open-loop connections where almost every thread is asleep at any
// instant — and is deliberately scheduler-bound: per-request compute is
// tiny, so host time goes to the simulator's sleep/wake machinery, not to
// the swept heap. hostbench's SimCampaignFast/Classic pair times a full
// revocation campaign over this fleet to measure the sim-engine speedup
// end to end.
//
// Determinism: every connection derives its think times from its own
// splitmix-style counter seeded by (Seed, conn index), so the virtual-time
// schedule is a pure function of the workload parameters regardless of
// host interleaving or engine choice.
package fleet

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/workload"
)

// Fleet is the workload.
type Fleet struct {
	// Conns is the number of open-loop connection threads.
	Conns int
	// RequestsPerConn is each connection's fixed request count.
	RequestsPerConn int
	// MeanThink is the mean think time between a connection's requests,
	// in cycles. Actual think times vary per connection and per request
	// across [MeanThink/2, 3·MeanThink/2).
	MeanThink uint64
	// Seed perturbs the per-connection think-time streams.
	Seed uint64

	// SessionSlots and SessionBytes size each connection's session pool;
	// zero means the scheduler-bound defaults (sessionSlots ×
	// sessionBytes). hostbench's FleetSetup pair raises them to make the
	// fleet allocation-bound instead: large sessions shift host time from
	// the simulator's sleep/wake machinery into the memory-model paths
	// (frame and shadow-chunk population, capability-array clears, vpn
	// appends) that the -mempath seam selects between.
	SessionSlots int
	SessionBytes uint64

	// Messages counts completed requests across the fleet.
	Messages uint64
}

// New returns a fleet sized for the hostbench campaign: conns open-loop
// connections issuing reqs requests each with ~100k-cycle think times.
func New(conns, reqs int) *Fleet {
	return &Fleet{Conns: conns, RequestsPerConn: reqs, MeanThink: 100_000, Seed: 1}
}

// Name implements workload.Workload.
func (w *Fleet) Name() string { return "conn-fleet" }

// sessionSlots × sessionBytes is each connection's live session state —
// kept small on purpose: the fleet exists to exercise the scheduler, and
// the quarantine the sessions' churn feeds is what keeps revocation
// epochs coming.
const (
	sessionSlots = 6
	sessionBytes = 256
)

// Body implements workload.Workload: spawn the fleet, join it.
func (w *Fleet) Body(rig *workload.Rig, th *kernel.Thread) {
	w.Messages = 0
	done := make([]uint64, w.Conns)
	for i := 0; i < w.Conns; i++ {
		i := i
		rig.SpawnApp(fmt.Sprintf("conn%d", i), rig.AppCores, func(ct *kernel.Thread) {
			done[i] = w.serve(rig, ct, i)
		})
	}
	rig.Join(th)
	for _, n := range done {
		w.Messages += n
	}
}

// serve runs one connection: an open-loop think/request cycle.
func (w *Fleet) serve(rig *workload.Rig, th *kernel.Thread, idx int) uint64 {
	// Per-connection deterministic think-time stream (splitmix64-style).
	x := w.Seed*0x9E3779B97F4A7C15 + uint64(idx+1)*0xBF58476D1CE4E5B9
	next := func() uint64 {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	slots, bytes := w.SessionSlots, w.SessionBytes
	if slots <= 0 {
		slots = sessionSlots
	}
	if bytes == 0 {
		bytes = sessionBytes
	}
	sizes := workload.NewSizeDist([]uint64{bytes}, []int{1})
	sess, err := workload.NewPool(rig, th, slots, sizes, 0.25)
	if err != nil {
		panic(fmt.Sprintf("fleet: %v", err))
	}
	// Stagger connection starts across one mean think time.
	th.Idle(1 + uint64(idx)*w.MeanThink/uint64(w.Conns))
	msgs := uint64(0)
	for r := 0; r < w.RequestsPerConn; r++ {
		think := w.MeanThink/2 + next()%w.MeanThink
		th.Idle(think)
		arrival := th.Sim.Now()
		th.Syscall(300) // recv + send, coalesced
		th.Work(600)    // parse + handle
		if r%8 == 0 {
			// Touch session state on a quarter of requests: enough load
			// traffic to exercise the condition's barriers without the
			// memory system dominating the scheduler this workload times.
			if err := sess.Access(int(next()%uint64(slots)), 128, 1); err != nil {
				panic(fmt.Sprintf("fleet: access: %v", err))
			}
		}
		if r%16 == 15 {
			// Session churn: the frees feed the quarantine, which is what
			// drives revocation epochs during the campaign.
			if err := sess.Replace(int(next() % uint64(slots))); err != nil {
				panic(fmt.Sprintf("fleet: replace: %v", err))
			}
		}
		rig.Lat.AddU(th.Sim.Now() - arrival)
		msgs++
	}
	if err := sess.Drain(); err != nil {
		panic(fmt.Sprintf("fleet: drain: %v", err))
	}
	return msgs
}
