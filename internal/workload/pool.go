package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/ca"
	"repro/internal/kernel"
)

// SizeDist is a discrete allocation-size distribution.
type SizeDist struct {
	Sizes   []uint64
	Weights []int
	total   int
}

// NewSizeDist builds a distribution; weights need not be normalized.
func NewSizeDist(sizes []uint64, weights []int) SizeDist {
	if len(sizes) != len(weights) || len(sizes) == 0 {
		panic("workload: bad size distribution")
	}
	d := SizeDist{Sizes: sizes, Weights: weights}
	for _, w := range weights {
		d.total += w
	}
	return d
}

// Uniform returns a single-size distribution.
func Uniform(size uint64) SizeDist {
	return NewSizeDist([]uint64{size}, []int{1})
}

// Sample draws a size.
func (d SizeDist) Sample(rng *rand.Rand) uint64 {
	n := rng.Intn(d.total)
	for i, w := range d.Weights {
		if n < w {
			return d.Sizes[i]
		}
		n -= w
	}
	return d.Sizes[len(d.Sizes)-1]
}

// Mean returns the expected size.
func (d SizeDist) Mean() uint64 {
	var sum uint64
	for i, w := range d.Weights {
		sum += d.Sizes[i] * uint64(w)
	}
	return sum / uint64(d.total)
}

// Pool is the churn engine: a root array in simulated memory whose slots
// hold capabilities to live heap objects. All pointers live in simulated
// memory, so every replace, access and chase flows through the capability
// load/store paths (and therefore through the revokers' barriers). With a
// pointer fraction, objects also hold capabilities to other objects,
// creating the pointer-dense pages that dominate the paper's
// memory-intensive workloads.
type Pool struct {
	rig   *Rig
	th    *kernel.Thread
	root  ca.Capability
	slots int
	sizes SizeDist
	// PtrFrac is the probability each link slot of a new object stores a
	// capability to a random pool object.
	PtrFrac float64
	// Links is the number of link slots per object (granules 1..Links),
	// bounded by the object's size. Real pointer-rich heaps (DOM trees,
	// event graphs) hold several capabilities per object, which is what
	// makes their pages expensive to sweep.
	Links int
}

// NewPool allocates the root array and fills every slot.
func NewPool(rig *Rig, th *kernel.Thread, slots int, sizes SizeDist, ptrFrac float64) (*Pool, error) {
	if slots <= 0 {
		panic("workload: pool needs slots")
	}
	root, err := rig.Mem.Malloc(th, uint64(slots)*ca.GranuleSize)
	if err != nil {
		return nil, fmt.Errorf("pool root: %w", err)
	}
	p := &Pool{rig: rig, th: th, root: root, slots: slots, sizes: sizes, PtrFrac: ptrFrac, Links: 1}
	for i := 0; i < slots; i++ {
		if err := p.fill(i); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Slots returns the pool capacity.
func (p *Pool) Slots() int { return p.slots }

// PickSlot draws a slot index with hot/cold skew: with probability hotProb
// the slot comes from the first hotFrac of the pool. hotFrac ≤ 0 or ≥ 1
// degenerates to uniform. Skewed picks model the generational locality of
// real heaps: most frees and accesses hit recently-allocated objects, so
// only a fraction of pages is re-dirtied while a revocation pass runs.
func (p *Pool) PickSlot(hotFrac, hotProb float64) int {
	if hotFrac > 0 && hotFrac < 1 && p.rig.RNG.Float64() < hotProb {
		n := int(float64(p.slots) * hotFrac)
		if n < 1 {
			n = 1
		}
		return p.rig.RNG.Intn(n)
	}
	return p.rig.RNG.Intn(p.slots)
}

// slotOff returns the root-array offset of slot i.
func (p *Pool) slotOff(i int) uint64 { return uint64(i) * ca.GranuleSize }

// Get loads the capability in slot i (a capability load, subject to the
// load barrier).
func (p *Pool) Get(i int) (ca.Capability, error) {
	return p.th.LoadCap(p.root, p.slotOff(i))
}

// fill allocates a fresh object into slot i and links a random neighbour.
func (p *Pool) fill(i int) error {
	size := p.sizes.Sample(p.rig.RNG)
	obj, err := p.rig.Mem.Malloc(p.th, size)
	if err != nil {
		return err
	}
	// Initialize the object (data store over its first bytes).
	n := obj.Len()
	if n > 256 {
		n = 256
	}
	if err := p.th.Store(obj, 0, n); err != nil {
		return err
	}
	if err := p.th.StoreCap(p.root, p.slotOff(i), obj); err != nil {
		return err
	}
	for l := 0; l < p.Links; l++ {
		off := uint64(1+l) * ca.GranuleSize
		if obj.Len() < off+ca.GranuleSize || p.rig.RNG.Float64() >= p.PtrFrac {
			continue
		}
		// Link to a random other object: load its capability from the
		// root array and store it inside this object.
		j := p.rig.RNG.Intn(p.slots)
		other, err := p.th.LoadCap(p.root, p.slotOff(j))
		if err != nil {
			return err
		}
		if other.Tag() {
			if err := p.th.StoreCap(obj, off, other); err != nil {
				return err
			}
		}
	}
	return nil
}

// Replace frees the object in slot i (through the configured malloc API —
// quarantining under mrs) and allocates a replacement. This is the pool's
// churn step.
func (p *Pool) Replace(i int) error {
	old, err := p.Get(i)
	if err != nil {
		return fmt.Errorf("pool get slot %d: %w", i, err)
	}
	if old.Tag() {
		if err := p.rig.Mem.Free(p.th, old); err != nil {
			return fmt.Errorf("pool free slot %d: %w", i, err)
		}
	}
	if err := p.fill(i); err != nil {
		return fmt.Errorf("pool fill slot %d: %w", i, err)
	}
	return nil
}

// Access touches the object in slot i: loads touch bytes of its data, then
// follows up to chase internal capability links, touching each object on
// the way. Stale links (revoked or overwritten) end the chase.
func (p *Pool) Access(i int, touch uint64, chase int) error {
	obj, err := p.Get(i)
	if err != nil {
		return err
	}
	for {
		if !obj.Tag() {
			return nil
		}
		n := touch
		if n > obj.Len() {
			n = obj.Len()
		}
		if n > 0 {
			if err := p.th.Load(obj, 0, n); err != nil {
				return err
			}
		}
		if chase == 0 || obj.Len() < 2*ca.GranuleSize {
			return nil
		}
		chase--
		next, err := p.th.LoadCap(obj, ca.GranuleSize)
		if err != nil {
			return err
		}
		obj = next
	}
}

// Mutate stores size bytes into slot i's object (dirtying data), and with
// probability relink stores a fresh capability link (dirtying the page for
// capability tracking).
func (p *Pool) Mutate(i int, size uint64, relink float64) error {
	obj, err := p.Get(i)
	if err != nil {
		return err
	}
	if !obj.Tag() {
		return nil
	}
	if size > obj.Len() {
		size = obj.Len()
	}
	if size > 0 {
		if err := p.th.Store(obj, 0, size); err != nil {
			return err
		}
	}
	if obj.Len() >= 2*ca.GranuleSize && p.rig.RNG.Float64() < relink {
		j := p.rig.RNG.Intn(p.slots)
		other, err := p.Get(j)
		if err != nil {
			return err
		}
		if other.Tag() {
			if err := p.th.StoreCap(obj, ca.GranuleSize, other); err != nil {
				return err
			}
		}
	}
	return nil
}

// Drain frees every live object (end-of-run teardown).
func (p *Pool) Drain() error {
	for i := 0; i < p.slots; i++ {
		obj, err := p.Get(i)
		if err != nil {
			return fmt.Errorf("pool drain slot %d: %w", i, err)
		}
		if obj.Tag() {
			if err := p.rig.Mem.Free(p.th, obj); err != nil {
				return fmt.Errorf("pool drain free slot %d: %w", i, err)
			}
			if err := p.th.StoreCap(p.root, p.slotOff(i), ca.Null(0)); err != nil {
				return fmt.Errorf("pool drain clear slot %d: %w", i, err)
			}
		}
	}
	if err := p.rig.Mem.Free(p.th, p.root); err != nil {
		return fmt.Errorf("pool drain root: %w", err)
	}
	return nil
}

var _ alloc.API = (*alloc.Heap)(nil)
