// Package spec provides synthetic surrogates for the eight SPEC CPU2006
// INT benchmarks that compile as pure-capability CHERI programs (§5.1):
// astar, bzip2, gobmk, hmmer, libquantum, omnetpp, sjeng and xalancbmk.
//
// SPEC's sources and inputs are proprietary, so each surrogate is a
// parameterized churn program calibrated to the paper's Table 2: mean
// allocated heap, total freed volume (and hence freed:allocated ratio and
// revocation rate under the mrs policy), allocation-size mixture, pointer
// density and pointer-chase depth. Footprints are divided by the rig's
// Scale (64 in the shipped experiments) and churn volume by a further 4×,
// which scales revocation counts to roughly a quarter of the paper's;
// DESIGN.md discusses why overhead ratios survive this scaling.
package spec

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/workload"
)

// churnDiv is the extra divisor applied to churn volume beyond the rig
// scale.
const churnDiv = 8

// Profile parameterizes one benchmark surrogate with full-scale values.
type Profile struct {
	// Bench and Input name the benchmark and its workload input (astar,
	// bzip2, gobmk and hmmer have multiple inputs, aggregated by geomean
	// in Figure 1).
	Bench, Input string
	// LiveBytes is the full-scale mean allocated heap (Table 2 "Mean
	// Alloc").
	LiveBytes uint64
	// ChurnBytes is the full-scale total freed volume (Table 2 "Sum
	// Freed").
	ChurnBytes uint64
	// Sizes is the allocation-size mixture.
	Sizes workload.SizeDist
	// PtrFrac is the per-link probability of holding a capability to
	// another object; Links is the number of link slots per object.
	PtrFrac float64
	Links   int
	// ChaseDepth is the pointer-chase length per access.
	ChaseDepth int
	// AccessPerChurn and MutatePerChurn set how many reads and writes
	// accompany each allocate/free step.
	AccessPerChurn, MutatePerChurn int
	// TouchBytes is the data volume touched per access.
	TouchBytes uint64
	// WorkPerOp is pure compute per op, in cycles.
	WorkPerOp uint64
	// HotFrac/HotProb skew churn and accesses toward a hot subset of the
	// pool (generational locality); zero means uniform. WriteHotProb, if
	// non-zero, applies a (typically much stronger) skew to frees and
	// stores: young objects die young, and stores concentrate in the
	// nursery, so only a small fraction of pages is re-dirtied while a
	// revocation pass runs.
	HotFrac, HotProb, WriteHotProb float64
	// SyscallEvery sprinkles a system call every N ops (0 = never).
	SyscallEvery int
	// ChurnDivOverride replaces the default churn divisor (8) for
	// benchmarks whose freed:allocated ratio is so low that dividing churn
	// would eliminate revocation entirely (gobmk: 7 revocations per run at
	// full scale must not round to zero).
	ChurnDivOverride uint64
}

// Name returns "bench" or "bench input".
func (p Profile) Name() string {
	if p.Input == "" {
		return p.Bench
	}
	return p.Bench + " " + p.Input
}

// Body implements workload.Workload.
func (p Profile) Body(rig *workload.Rig, th *kernel.Thread) {
	live := rig.ScaleBytes(p.LiveBytes)
	div := uint64(churnDiv)
	if p.ChurnDivOverride != 0 {
		div = p.ChurnDivOverride
	}
	churn := rig.ScaleBytes(p.ChurnBytes) / div
	mean := p.Sizes.Mean()
	slots := int(live / mean)
	if slots < 8 {
		slots = 8
	}
	ops := int(churn / mean)

	pool, err := workload.NewPool(rig, th, slots, p.Sizes, p.PtrFrac)
	if err != nil {
		panic(fmt.Sprintf("spec %s: %v", p.Name(), err))
	}
	if p.Links > 1 {
		pool.Links = p.Links
	}
	writeProb := p.WriteHotProb
	if writeProb == 0 {
		writeProb = p.HotProb
	}
	for op := 0; op < ops; op++ {
		if err := pool.Replace(pool.PickSlot(p.HotFrac, writeProb)); err != nil {
			panic(fmt.Sprintf("spec %s: replace: %v", p.Name(), err))
		}
		for a := 0; a < p.AccessPerChurn; a++ {
			if err := pool.Access(pool.PickSlot(p.HotFrac, p.HotProb), p.TouchBytes, p.ChaseDepth); err != nil {
				panic(fmt.Sprintf("spec %s: access: %v", p.Name(), err))
			}
		}
		for m := 0; m < p.MutatePerChurn; m++ {
			if err := pool.Mutate(pool.PickSlot(p.HotFrac, writeProb), p.TouchBytes/2, p.PtrFrac/2); err != nil {
				panic(fmt.Sprintf("spec %s: mutate: %v", p.Name(), err))
			}
		}
		if p.WorkPerOp > 0 {
			th.Work(p.WorkPerOp)
		}
		if p.SyscallEvery > 0 && op%p.SyscallEvery == p.SyscallEvery-1 {
			th.Syscall(2_000)
		}
	}
}

// dist is shorthand for NewSizeDist.
func dist(sizes []uint64, weights []int) workload.SizeDist {
	return workload.NewSizeDist(sizes, weights)
}

// Profiles returns every SPEC surrogate, one Profile per (benchmark,
// input) pair, in the paper's presentation order.
func Profiles() []Profile {
	return []Profile{
		// astar: pathfinding over pointer-linked map graphs; two inputs.
		{
			Bench: "astar", Input: "lakes",
			LiveBytes: 235 << 20, ChurnBytes: 3_610 << 20,
			Sizes:   dist([]uint64{32, 64, 1024}, []int{2, 4, 1}),
			PtrFrac: 0.6, Links: 3, ChaseDepth: 3,
			AccessPerChurn: 6, MutatePerChurn: 2, TouchBytes: 96, WorkPerOp: 260,
			SyscallEvery: 4096,
			HotFrac:      0.15, HotProb: 0.7,
		},
		{
			Bench: "astar", Input: "rivers",
			LiveBytes: 150 << 20, ChurnBytes: 2_300 << 20,
			Sizes:   dist([]uint64{32, 64, 1024}, []int{2, 4, 1}),
			PtrFrac: 0.6, Links: 3, ChaseDepth: 3,
			AccessPerChurn: 6, MutatePerChurn: 2, TouchBytes: 96, WorkPerOp: 260,
			SyscallEvery: 4096,
			HotFrac:      0.15, HotProb: 0.7,
		},
		// bzip2: large block buffers allocated up front, negligible churn —
		// never engages revocation (excluded after Figure 1, as in §5.1).
		{
			Bench: "bzip2", Input: "input",
			LiveBytes: 190 << 20, ChurnBytes: 24 << 20,
			Sizes:   dist([]uint64{1 << 20, 64 << 10}, []int{1, 2}),
			PtrFrac: 0.02, ChaseDepth: 0,
			AccessPerChurn: 40, MutatePerChurn: 20, TouchBytes: 4096, WorkPerOp: 2_000,
		},
		// gobmk: board-state tree search; modest churn; two inputs.
		{
			Bench: "gobmk", Input: "trevord",
			LiveBytes: 124 << 20, ChurnBytes: 217 << 20, ChurnDivOverride: 1,
			Sizes:   dist([]uint64{128, 2048}, []int{2, 1}),
			PtrFrac: 0.4, Links: 2, ChaseDepth: 1,
			AccessPerChurn: 10, MutatePerChurn: 4, TouchBytes: 256, WorkPerOp: 900,
			SyscallEvery: 2048,
			HotFrac:      0.2, HotProb: 0.8,
		},
		{
			Bench: "gobmk", Input: "13x13",
			LiveBytes: 100 << 20, ChurnBytes: 160 << 20, ChurnDivOverride: 1,
			Sizes:   dist([]uint64{128, 2048}, []int{2, 1}),
			PtrFrac: 0.4, Links: 2, ChaseDepth: 1,
			AccessPerChurn: 10, MutatePerChurn: 4, TouchBytes: 256, WorkPerOp: 900,
			SyscallEvery: 2048,
			HotFrac:      0.2, HotProb: 0.8,
		},
		// hmmer: profile HMM search: data-heavy scoring matrices, small
		// heap, churn dominated by the 8 MiB quarantine floor (Figure 3).
		{
			Bench: "hmmer", Input: "nph3",
			LiveBytes: 49_449 << 10, ChurnBytes: 2_110 << 20,
			Sizes:   dist([]uint64{256, 4096}, []int{2, 1}),
			PtrFrac: 0.08, ChaseDepth: 0,
			AccessPerChurn: 6, MutatePerChurn: 3, TouchBytes: 1024, WorkPerOp: 800,
			HotFrac: 0.3, HotProb: 0.8, WriteHotProb: 0.95,
		},
		{
			Bench: "hmmer", Input: "retro",
			LiveBytes: 20_890 << 10, ChurnBytes: 593 << 20,
			Sizes:   dist([]uint64{256, 4096}, []int{2, 1}),
			PtrFrac: 0.08, ChaseDepth: 0,
			AccessPerChurn: 6, MutatePerChurn: 3, TouchBytes: 1024, WorkPerOp: 800,
			HotFrac: 0.3, HotProb: 0.8, WriteHotProb: 0.95,
		},
		// libquantum: a few very large state vectors reallocated as the
		// register grows; streaming touch; quarantine overshoots the
		// policy target because huge frees land mid-revocation (Figure 3).
		{
			Bench: "libquantum", Input: "",
			LiveBytes: 96 << 20, ChurnBytes: 6_100 << 20,
			Sizes:   dist([]uint64{128 << 10, 16 << 10}, []int{1, 2}),
			PtrFrac: 0.0, ChaseDepth: 0,
			AccessPerChurn: 3, MutatePerChurn: 2, TouchBytes: 32 << 10, WorkPerOp: 5_000,
		},
		// omnetpp: discrete-event simulation: tiny event objects, extreme
		// churn, pointer-chase everywhere — the paper's worst DRAM case.
		{
			Bench: "omnetpp", Input: "",
			LiveBytes: 365 << 20, ChurnBytes: 75_571 << 20,
			Sizes:   dist([]uint64{64, 128, 256}, []int{5, 3, 2}),
			PtrFrac: 0.8, Links: 4, ChaseDepth: 3,
			AccessPerChurn: 2, MutatePerChurn: 1, TouchBytes: 128, WorkPerOp: 300,
			HotFrac: 0.12, HotProb: 0.65, WriteHotProb: 0.96,
		},
		// sjeng: chess with fixed hash tables; effectively no churn —
		// never engages revocation.
		{
			Bench: "sjeng", Input: "",
			LiveBytes: 172 << 20, ChurnBytes: 10 << 20,
			Sizes:   dist([]uint64{16 << 10}, []int{1}),
			PtrFrac: 0.02, ChaseDepth: 0,
			AccessPerChurn: 50, MutatePerChurn: 25, TouchBytes: 2048, WorkPerOp: 2_500,
		},
		// xalancbmk: XSLT over DOM trees: mid-size pointer-rich nodes,
		// the paper's largest heap and worst wall-clock case.
		{
			Bench: "xalancbmk", Input: "",
			LiveBytes: 625 << 20, ChurnBytes: 68_506 << 20,
			Sizes:   dist([]uint64{128, 256, 512, 1024, 4096}, []int{3, 3, 3, 2, 1}),
			PtrFrac: 0.9, Links: 6, ChaseDepth: 2,
			AccessPerChurn: 3, MutatePerChurn: 1, TouchBytes: 256, WorkPerOp: 160,
			SyscallEvery: 8192,
			HotFrac:      0.12, HotProb: 0.65,
		},
	}
}

// ByName returns the profile(s) whose benchmark name matches.
func ByName(bench string) []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Bench == bench {
			out = append(out, p)
		}
	}
	return out
}

// RevocationEngaging returns the profiles that trigger revocation (all but
// bzip2 and sjeng), used by Figures 2-4 and 9.
func RevocationEngaging() []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Bench != "bzip2" && p.Bench != "sjeng" {
			out = append(out, p)
		}
	}
	return out
}
