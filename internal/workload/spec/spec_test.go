package spec

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestProfilesCoverTheEightBenchmarks(t *testing.T) {
	want := map[string]bool{
		"astar": true, "bzip2": true, "gobmk": true, "hmmer": true,
		"libquantum": true, "omnetpp": true, "sjeng": true, "xalancbmk": true,
	}
	seen := map[string]bool{}
	for _, p := range Profiles() {
		seen[p.Bench] = true
		if !want[p.Bench] {
			t.Errorf("unexpected benchmark %q", p.Bench)
		}
		if p.LiveBytes == 0 || p.ChurnBytes == 0 {
			t.Errorf("%s: zero footprint", p.Name())
		}
	}
	for b := range want {
		if !seen[b] {
			t.Errorf("missing benchmark %q", b)
		}
	}
	// Multi-input benchmarks have two profiles each.
	for _, b := range []string{"astar", "gobmk", "hmmer"} {
		if len(ByName(b)) != 2 {
			t.Errorf("%s: %d inputs, want 2", b, len(ByName(b)))
		}
	}
}

func TestRevocationEngagingExcludesBzip2Sjeng(t *testing.T) {
	for _, p := range RevocationEngaging() {
		if p.Bench == "bzip2" || p.Bench == "sjeng" {
			t.Fatalf("%s should be excluded", p.Bench)
		}
	}
	if len(RevocationEngaging()) != len(Profiles())-2 {
		t.Fatal("wrong exclusion count")
	}
}

func TestFreedToAllocRatiosOrdered(t *testing.T) {
	// Table 2's freed:allocated orderings that drive revocation behavior:
	// omnetpp > xalancbmk > hmmer > astar > gobmk.
	fa := func(name string) float64 {
		p := ByName(name)[0]
		return float64(p.ChurnBytes) / float64(p.LiveBytes)
	}
	order := []string{"omnetpp", "xalancbmk", "hmmer", "astar", "gobmk"}
	for i := 1; i < len(order); i++ {
		if fa(order[i-1]) <= fa(order[i]) {
			t.Errorf("F:A(%s)=%.1f should exceed F:A(%s)=%.1f",
				order[i-1], fa(order[i-1]), order[i], fa(order[i]))
		}
	}
}

func TestNameFormatting(t *testing.T) {
	if got := ByName("astar")[0].Name(); got != "astar lakes" {
		t.Fatalf("name = %q", got)
	}
	if got := ByName("omnetpp")[0].Name(); got != "omnetpp" {
		t.Fatalf("name = %q", got)
	}
}

// TestProfileRunsToCompletion executes the smallest profile end-to-end on a
// bare heap at a tiny scale.
func TestProfileRunsToCompletion(t *testing.T) {
	p := ByName("gobmk")[1]
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	proc := m.NewProcess(2)
	h := alloc.NewHeap(proc)
	rig := &workload.Rig{
		M: m, P: proc, Mem: h,
		Lat:      &metrics.Samples{},
		RNG:      rand.New(rand.NewSource(2)),
		AppCores: []int{3},
		Scale:    512,
	}
	proc.Spawn("app", []int{3}, func(th *kernel.Thread) {
		p.Body(rig, th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Allocs == 0 || st.Frees == 0 {
		t.Fatalf("no churn: %+v", st)
	}
	if proc.Stats().CapLoads == 0 || proc.Stats().CapStores == 0 {
		t.Fatal("no capability traffic")
	}
}
