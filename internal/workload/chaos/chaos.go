// Package chaos is the adversarial workload for fault campaigns
// (cmd/chaos). It is not a benchmark surrogate: instead of matching a
// paper profile it maximizes the surface the soundness oracle audits —
// rapid allocate/free churn through the quarantine shim, deliberately
// dangling register copies of freed capabilities, capability stores that
// dirty pages mid-epoch, kernel-hoard stashes, and loads through parked
// capabilities that exercise the load barrier after every epoch.
package chaos

import (
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/quarantine"
	"repro/internal/workload"
)

// regSlots is how many registers park live (and dangling) capabilities.
const regSlots = 48

// Chaos is the campaign workload; Ops churn steps run on one thread.
type Chaos struct {
	Ops int
}

// New builds the workload.
func New(ops int) Chaos { return Chaos{Ops: ops} }

// Name implements workload.Workload.
func (c Chaos) Name() string { return "chaos" }

// Body implements workload.Workload.
func (c Chaos) Body(rig *workload.Rig, th *kernel.Thread) {
	rng := rig.RNG
	hoard := th.P.NewHoard("chaos-stash")
	var live []ca.Capability
	slot := 0
	for op := 0; op < c.Ops; op++ {
		if th.P.Epoch()%2 == 1 && len(live) > 0 && rng.Intn(2) == 0 {
			// An epoch is in flight: race the background sweep. Loads of
			// link fields during the window between the generation bump
			// and the page's visit are exactly where the load barrier
			// must catch dangling capabilities.
			v := live[rng.Intn(len(live))]
			got, err := th.LoadCap(v, 0)
			if err != nil {
				panic(err)
			}
			if got.Tag() {
				th.SetReg(slot%regSlots, got)
				slot++
			}
		}
		switch rng.Intn(12) {
		case 0, 1, 2, 3: // allocate, park in a register
			size := uint64(32 + rng.Intn(1200))
			v, err := rig.Mem.Malloc(th, size)
			if err != nil {
				// Out of simulated memory: shed half the pool and retry
				// next op.
				c.freeSome(rig, th, &live, len(live)/2)
				continue
			}
			live = append(live, v)
			th.SetReg(slot%regSlots, v)
			slot++
		case 4, 5, 6: // free a random object, keep the dangling register copy
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			v := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := rig.Mem.Free(th, v); err != nil {
				panic(err)
			}
			// The capability stays parked in whatever register (and
			// memory, and hoard slot) it reached: revocation must find
			// every copy.
		case 7, 8: // store a capability into another object's interior
			if len(live) < 2 {
				continue
			}
			src := live[rng.Intn(len(live))]
			dst := live[rng.Intn(len(live))]
			slots := int(dst.Len() / ca.GranuleSize)
			if slots < 1 {
				continue
			}
			// Half the stores land in slot 0 — the "link field" every
			// later load probes first — so capability density is high
			// where loads look.
			off := uint64(0)
			if rng.Intn(2) == 0 {
				off = uint64(rng.Intn(slots)) * ca.GranuleSize
			}
			if err := th.StoreCap(dst, off, src); err != nil {
				panic(err)
			}
		case 9: // stash a capability in a kernel hoard
			if len(live) == 0 {
				continue
			}
			hoard.Put(rng.Intn(16), live[rng.Intn(len(live))])
		case 10, 11: // load back through a parked capability
			if len(live) == 0 {
				continue
			}
			v := live[rng.Intn(len(live))]
			slots := int(v.Len() / ca.GranuleSize)
			if slots < 1 {
				continue
			}
			off := uint64(0)
			if rng.Intn(2) == 0 {
				off = uint64(rng.Intn(slots)) * ca.GranuleSize
			}
			got, err := th.LoadCap(v, off)
			if err != nil {
				panic(err)
			}
			// Park whatever came back, exactly as an application keeps
			// using a pointer read out of a structure. A stale capability
			// handed over by a suppressed load barrier lands in a
			// register here, where the soundness oracle must find it.
			if got.Tag() {
				th.SetReg(slot%regSlots, got)
				slot++
			}
			th.Work(150)
		}
	}
	c.freeSome(rig, th, &live, len(live))
	if shim, ok := rig.Mem.(*quarantine.Shim); ok {
		shim.Flush(th)
	}
	rig.Join(th)
}

// freeSome frees n objects off the back of live (dangling copies remain
// wherever they were parked).
func (c Chaos) freeSome(rig *workload.Rig, th *kernel.Thread, live *[]ca.Capability, n int) {
	for i := 0; i < n && len(*live) > 0; i++ {
		v := (*live)[len(*live)-1]
		*live = (*live)[:len(*live)-1]
		if err := rig.Mem.Free(th, v); err != nil {
			panic(err)
		}
	}
}
