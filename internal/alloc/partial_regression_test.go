package alloc

import (
	"testing"

	"repro/internal/ca"
	"repro/internal/kernel"
)

// TestPartialListNoDuplicateAfterRefillCycle is the regression test for a
// bug found by the gRPC workload: a slab that filled while buried in the
// partial list (only end-of-list slabs are popped) and later freed an
// object used to be appended a second time; when the slab emptied and its
// span was reclaimed, the surviving duplicate reference handed out
// addresses inside a span that now backed a different size class.
func TestPartialListNoDuplicateAfterRefillCycle(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		const size = 4096
		perSlab := SlabSize / size

		// Fill slab S completely.
		var inS []ca.Capability
		for i := 0; i < perSlab; i++ {
			c, err := h.Alloc(th, size)
			if err != nil {
				t.Fatal(err)
			}
			inS = append(inS, c)
		}
		// Allocate once more: a new slab T is created and appended after
		// S, burying the (full) S in the partial list.
		extra, err := h.Alloc(th, size)
		if err != nil {
			t.Fatal(err)
		}
		// Free one object of S: S regains space and must be re-listed
		// exactly once.
		if err := h.Free(th, inS[0]); err != nil {
			t.Fatal(err)
		}
		// Now empty S entirely so its span is reclaimed...
		for _, c := range inS[1:] {
			if err := h.Free(th, c); err != nil {
				t.Fatal(err)
			}
		}
		// ...and let another size class take the span.
		var small []ca.Capability
		for i := 0; i < 32; i++ {
			c, err := h.Alloc(th, 64)
			if err != nil {
				t.Fatal(err)
			}
			small = append(small, c)
		}
		// Allocating from S's class again must NOT resurrect the zombie:
		// every new object must be disjoint from every live one.
		for i := 0; i < perSlab; i++ {
			c, err := h.Alloc(th, size)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range small {
				if c.Base() < o.Top() && o.Base() < c.Top() {
					t.Fatalf("allocation %v overlaps live small object %v (zombie slab)", c, o)
				}
			}
			if c.Base() < extra.Top() && extra.Base() < c.Top() {
				t.Fatalf("allocation %v overlaps %v", c, extra)
			}
			// Freeing must validate cleanly, too.
			if err := h.Free(th, c); err != nil {
				t.Fatalf("free of fresh object: %v", err)
			}
		}
	})
}
