package alloc

import (
	"testing"

	"repro/internal/ca"
	"repro/internal/kernel"
)

func TestReallocSameClassReturnsSame(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		c, _ := h.Alloc(th, 100)
		n, err := Realloc(h, th, c, 110) // same 112-byte class
		if err != nil {
			t.Fatal(err)
		}
		if n.Base() != c.Base() || n.Len() != c.Len() {
			t.Fatalf("in-place realloc moved: %v -> %v", c, n)
		}
	})
}

func TestReallocGrowsAndPreservesCapabilities(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		c, _ := h.Alloc(th, 64)
		inner, _ := h.Alloc(th, 32)
		if err := th.StoreCap(c, 16, inner); err != nil {
			t.Fatal(err)
		}
		n, err := Realloc(h, th, c, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if n.Len() < 4096 {
			t.Fatalf("realloc did not grow: %v", n)
		}
		// The embedded capability survived the copy with its tag.
		got, err := th.LoadCap(n, 16)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Tag() || got.Base() != inner.Base() {
			t.Fatalf("capability lost in realloc copy: %v", got)
		}
		// The old object was freed: its storage is reusable.
		c2, _ := h.Alloc(th, 64)
		if c2.Base() != c.Base() {
			t.Fatalf("old storage not recycled: %#x vs %#x", c2.Base(), c.Base())
		}
	})
}

func TestReallocShrinks(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		c, _ := h.Alloc(th, 2048)
		n, err := Realloc(h, th, c, 64)
		if err != nil {
			t.Fatal(err)
		}
		if n.Len() != RoundAlloc(64) {
			t.Fatalf("shrunk bounds %d", n.Len())
		}
	})
}

func TestReallocUntaggedAllocatesFresh(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		c, _ := h.Alloc(th, 64)
		n, err := Realloc(h, th, c.ClearTag(), 128)
		if err != nil {
			t.Fatal(err)
		}
		if !n.Tag() || n.Len() != 128 {
			t.Fatalf("fresh alloc wrong: %v", n)
		}
	})
}

func TestEmptySlabReclaimedAcrossClasses(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		// Fill an entire 64 KiB slab with 4096-byte objects, then free
		// them all: the emptied span must back a different class's slab
		// without growing the chunk count.
		n := SlabSize / 4096
		objs := make([]ca.Capability, 0, n)
		for i := 0; i < n; i++ {
			c, err := h.Alloc(th, 4096)
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, c)
		}
		chunksBefore := h.Chunks()
		for _, c := range objs {
			if err := h.Free(th, c); err != nil {
				t.Fatal(err)
			}
		}
		// Allocate a different small class heavily; a fresh slab is
		// needed and should come from the reclaimed span.
		for i := 0; i < 64; i++ {
			if _, err := h.Alloc(th, 48); err != nil {
				t.Fatal(err)
			}
		}
		if h.Chunks() != chunksBefore {
			t.Fatalf("chunks grew %d -> %d despite a reclaimable span", chunksBefore, h.Chunks())
		}
	})
}
