// Package alloc is an snmalloc-inspired CHERI-aware heap allocator
// (snmalloc is the allocator the paper's evaluation shims in, §5).
//
// Structure: each thread owns an Allocator; Allocators carve 1 MiB chunks
// from kernel reservations, slabs of 64 KiB per size class from chunks, and
// objects from slabs via in-band free lists. Frees from a different thread
// are routed to the owner through a remote-free message queue, drained at
// the owner's next allocation — snmalloc's message-passing design. Returned
// capabilities have exact bounds equal to the (representable) class size.
//
// The allocator itself never quarantines: temporal safety is layered on by
// the mrs shim in package quarantine, which interposes on free. To support
// it, Heap exposes Lookup (address → live allocation), Release (return
// storage to free lists after revocation), and the paint authority covering
// each address.
package alloc

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bus"
	"repro/internal/ca"
	"repro/internal/kernel"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Errors reported by heap operations.
var (
	ErrBadFree    = errors.New("alloc: free of address not owned by the heap")
	ErrDoubleFree = errors.New("alloc: double free")
	ErrWildFree   = errors.New("alloc: free of interior or misaligned pointer")
)

// slab serves one size class from a 64 KiB span.
type slab struct {
	class    int
	base     uint64
	capacity int
	used     int
	free     []uint64 // LIFO free list of object addresses
	next     uint64   // bump pointer for never-used space
	live     map[uint64]bool
	// inPartial tracks membership in the owner's partial list, preventing
	// duplicate entries (a slab that filled while buried in the list and
	// later frees an object would otherwise be appended a second time,
	// leaving a dangling reference when the slab is reclaimed).
	inPartial bool
}

// chunk is a 1 MiB reservation: one metadata page followed by data pages.
type chunk struct {
	owner *Allocator
	res   *vm.Reservation
	root  ca.Capability
	// bump is the offset of the next uncarved byte (starts after metadata).
	bump uint64
	// slabs maps span base offsets to slabs (for small classes).
	slabs map[uint64]*slab
	// mediumLive maps live medium allocation addresses to sizes.
	mediumLive map[uint64]uint64
	// mediumFree holds freed medium extents keyed by size.
	mediumFree map[uint64][]uint64
	// freeSpans holds slab-sized spans reclaimed from emptied slabs,
	// available to back a new slab of any size class.
	freeSpans []uint64
}

// metaVA returns the metadata address charged for bookkeeping touching the
// given data address.
func (c *chunk) metaVA(addr uint64) uint64 {
	return c.res.Base + (addr-c.res.Base)/SlabSize*64%vm.PageSize
}

// large is an allocation with its own reservation.
type large struct {
	owner *Allocator
	res   *vm.Reservation
	size  uint64
}

// Allocator is one thread's allocator.
type Allocator struct {
	heap    *Heap
	th      *kernel.Thread
	partial [][]*slab // per class: slabs with space
	remote  []remoteFree
	// cur is the chunk currently being carved.
	cur *chunk
}

type remoteFree struct {
	addr uint64
	size uint64
}

// Stats aggregates heap counters.
type Stats struct {
	// LiveBytes is currently-allocated payload.
	LiveBytes uint64
	// PeakLiveBytes is the high-water mark of LiveBytes.
	PeakLiveBytes uint64
	// TotalAllocated and TotalFreed accumulate payload volume.
	TotalAllocated, TotalFreed uint64
	// Allocs and Frees count operations.
	Allocs, Frees uint64
	// RemoteFrees counts frees routed cross-thread.
	RemoteFrees uint64
	// Chunks counts chunk reservations created.
	Chunks uint64
}

// Heap is a process-wide view over per-thread Allocators.
type Heap struct {
	P *kernel.Process
	// allocs in creation order; threads map into it.
	allocs   []*Allocator
	byTh     map[*kernel.Thread]*Allocator
	chunks   []*chunk // sorted by reservation base
	larges   map[uint64]*large
	stats    Stats
	coloring bool
}

// NewHeap creates an empty heap for the process.
func NewHeap(p *kernel.Process) *Heap {
	return &Heap{
		P:      p,
		byTh:   make(map[*kernel.Thread]*Allocator),
		larges: make(map[uint64]*large),
	}
}

// SetColoring enables §7.3 color stamping: allocations return capabilities
// colored to match their memory.
func (h *Heap) SetColoring(on bool) { h.coloring = on }

// Stats returns a snapshot of heap counters.
func (h *Heap) Stats() Stats { return h.stats }

// LiveBytes returns currently-allocated payload bytes.
func (h *Heap) LiveBytes() uint64 { return h.stats.LiveBytes }

// AllocatorFor returns (creating on demand) th's allocator.
func (h *Heap) AllocatorFor(th *kernel.Thread) *Allocator {
	if a, ok := h.byTh[th]; ok {
		return a
	}
	a := &Allocator{heap: h, th: th, partial: make([][]*slab, NumClasses())}
	h.byTh[th] = a
	h.allocs = append(h.allocs, a)
	return a
}

// asAllocator runs f with th's traffic attributed to the allocator agent.
func asAllocator(th *kernel.Thread, f func()) {
	prev := th.Agent
	th.Agent = bus.AgentAlloc
	f()
	th.Agent = prev
}

// Alloc allocates size bytes on behalf of th, returning a capability with
// exact bounds over the rounded size.
func (h *Heap) Alloc(th *kernel.Thread, size uint64) (ca.Capability, error) {
	th.P.M.Telem.Enter(th.Sim, telemetry.CompAlloc)
	defer th.P.M.Telem.Exit(th.Sim)
	var c ca.Capability
	var err error
	asAllocator(th, func() {
		a := h.AllocatorFor(th)
		a.drainRemote()
		c, err = a.alloc(size)
	})
	return c, err
}

// alloc is the owner-thread allocation path.
func (a *Allocator) alloc(size uint64) (ca.Capability, error) {
	h := a.heap
	th := a.th
	th.Work(30) // malloc fast-path instructions
	rounded := RoundAlloc(size)
	var addr uint64
	var root ca.Capability
	switch {
	case size <= MaxSmall:
		cl := SizeToClass(size)
		s, ch, err := a.slabFor(cl)
		if err != nil {
			return ca.Capability{}, err
		}
		if n := len(s.free); n > 0 {
			addr = s.free[n-1]
			s.free = s.free[:n-1]
			// Read the in-band freelist node.
			if err := th.Load(ch.root.WithAddr(addr), 0, MinAlloc); err != nil {
				return ca.Capability{}, err
			}
		} else {
			addr = s.next
			s.next += ClassSize(cl)
		}
		s.used++
		s.live[addr] = true
		root = ch.root
		// Touch the slab's metadata line.
		th.Work(th.P.M.Bus.Access(th.Sim.CoreID(), ch.metaVA(addr), th.Agent, true))
	case rounded <= MaxMedium:
		var ch *chunk
		var err error
		addr, ch, err = a.allocMedium(rounded)
		if err != nil {
			return ca.Capability{}, err
		}
		root = ch.root
	default:
		l, err := a.allocLarge(rounded)
		if err != nil {
			return ca.Capability{}, err
		}
		addr = l.res.Base
		root = l.res.Root
	}
	h.stats.Allocs++
	h.stats.LiveBytes += rounded
	h.stats.TotalAllocated += rounded
	if h.stats.LiveBytes > h.stats.PeakLiveBytes {
		h.stats.PeakLiveBytes = h.stats.LiveBytes
	}
	c, err := root.WithAddr(addr).SetBoundsExact(rounded)
	if err != nil {
		return ca.Capability{}, fmt.Errorf("alloc: bounds derivation: %w", err)
	}
	if h.coloring {
		// While the derived capability still carries the chunk root's
		// PermRecolor, stamp it with its memory's current color (§7.3).
		if c, err = c.WithColor(a.colorAt(addr)); err != nil {
			return ca.Capability{}, err
		}
	}
	return c.ClearPerms(ca.PermPaint | ca.PermRecolor), nil
}

// colorAt returns the memory color at addr (zero for unmaterialized pages).
func (a *Allocator) colorAt(addr uint64) uint8 {
	pte, ok := a.th.P.AS.Lookup(addr)
	if !ok {
		return 0
	}
	_, g := vm.GranuleOf(addr)
	return a.th.P.M.Phys.ColorOf(pte.Frame, g)
}

// hasSpace reports whether the slab can serve another object.
func (s *slab) hasSpace() bool {
	return len(s.free) > 0 || s.next+ClassSize(s.class) <= s.base+SlabSize
}

// slabFor returns a slab with space for class cl, carving a new one as
// needed. Full slabs are dropped from the partial list as they are found;
// release re-inserts them when an object comes back.
func (a *Allocator) slabFor(cl int) (*slab, *chunk, error) {
	lst := a.partial[cl]
	for len(lst) > 0 {
		s := lst[len(lst)-1]
		if s.hasSpace() {
			a.partial[cl] = lst
			return s, a.chunkOf(s.base), nil
		}
		s.inPartial = false
		lst = lst[:len(lst)-1]
	}
	a.partial[cl] = lst
	// Prefer a span reclaimed from an emptied slab.
	for _, ch := range a.heap.chunks {
		if ch.owner != a || len(ch.freeSpans) == 0 {
			continue
		}
		base := ch.freeSpans[len(ch.freeSpans)-1]
		ch.freeSpans = ch.freeSpans[:len(ch.freeSpans)-1]
		s := &slab{
			class:     cl,
			base:      base,
			capacity:  int(SlabSize / ClassSize(cl)),
			next:      base,
			live:      make(map[uint64]bool),
			inPartial: true,
		}
		ch.slabs[base-ch.res.Base] = s
		a.partial[cl] = append(a.partial[cl], s)
		a.th.Work(200)
		return s, ch, nil
	}
	ch, off, err := a.carve(SlabSize, SlabSize)
	if err != nil {
		return nil, nil, err
	}
	s := &slab{
		class:     cl,
		base:      ch.res.Base + off,
		capacity:  int(SlabSize / ClassSize(cl)),
		next:      ch.res.Base + off,
		live:      make(map[uint64]bool),
		inPartial: true,
	}
	ch.slabs[off] = s
	a.partial[cl] = append(a.partial[cl], s)
	// Initialize slab metadata.
	a.th.Work(200)
	return s, ch, nil
}

// chunkOf finds the chunk containing addr; addr must be heap-owned.
func (a *Allocator) chunkOf(addr uint64) *chunk {
	ch, _, _ := a.heap.find(addr)
	return ch
}

// carve takes size bytes (aligned to align) from the allocator's current
// chunk, reserving a fresh chunk when exhausted.
func (a *Allocator) carve(size, align uint64) (*chunk, uint64, error) {
	if a.cur != nil {
		off := (a.cur.bump + align - 1) &^ (align - 1)
		if off+size <= chunkSize {
			a.cur.bump = off + size
			return a.cur, off, nil
		}
	}
	res, err := a.th.Mmap(chunkSize, ca.PermsData|ca.PermPaint|ca.PermRecolor)
	if err != nil {
		return nil, 0, err
	}
	ch := &chunk{
		owner:      a,
		res:        res,
		root:       res.Root,
		bump:       vm.PageSize, // first page is metadata
		slabs:      make(map[uint64]*slab),
		mediumLive: make(map[uint64]uint64),
		mediumFree: make(map[uint64][]uint64),
	}
	a.heap.insertChunk(ch)
	a.heap.stats.Chunks++
	a.th.P.M.Trace.Instant(a.th.Sim.Now(), a.th.Sim.CoreID(), bus.AgentAlloc,
		trace.KindChunk, a.th.P.Epoch(), res.Base, res.Length)
	a.cur = ch
	off := (ch.bump + align - 1) &^ (align - 1)
	ch.bump = off + size
	return ch, off, nil
}

// allocMedium serves page-granular allocations from chunk space.
func (a *Allocator) allocMedium(rounded uint64) (uint64, *chunk, error) {
	// Reuse a freed extent of the same size if available.
	for _, ch := range a.heap.chunks {
		if ch.owner != a {
			continue
		}
		if lst := ch.mediumFree[rounded]; len(lst) > 0 {
			addr := lst[len(lst)-1]
			ch.mediumFree[rounded] = lst[:len(lst)-1]
			ch.mediumLive[addr] = rounded
			a.th.Work(60)
			return addr, ch, nil
		}
	}
	align := ca.RepresentableAlign(rounded)
	if align < vm.PageSize {
		align = vm.PageSize
	}
	ch, off, err := a.carve(rounded, align)
	if err != nil {
		return 0, nil, err
	}
	addr := ch.res.Base + off
	ch.mediumLive[addr] = rounded
	a.th.Work(100)
	return addr, ch, nil
}

// allocLarge gives the allocation its own reservation.
func (a *Allocator) allocLarge(rounded uint64) (*large, error) {
	res, err := a.th.Mmap(rounded, ca.PermsData|ca.PermPaint|ca.PermRecolor)
	if err != nil {
		return nil, err
	}
	l := &large{owner: a, res: res, size: rounded}
	a.heap.larges[res.Base] = l
	return l, nil
}

// insertChunk keeps the chunk list sorted by base.
func (h *Heap) insertChunk(ch *chunk) {
	i := sort.Search(len(h.chunks), func(i int) bool { return h.chunks[i].res.Base >= ch.res.Base })
	h.chunks = append(h.chunks, nil)
	copy(h.chunks[i+1:], h.chunks[i:])
	h.chunks[i] = ch
}

// find locates the owner of addr: its chunk (or nil) and large record (or
// nil).
func (h *Heap) find(addr uint64) (*chunk, *large, bool) {
	if l, ok := h.larges[addr]; ok {
		return nil, l, true
	}
	i := sort.Search(len(h.chunks), func(i int) bool { return h.chunks[i].res.Base > addr })
	if i > 0 {
		ch := h.chunks[i-1]
		if addr < ch.res.Base+ch.res.Length {
			return ch, nil, true
		}
	}
	return nil, nil, false
}

// Lookup resolves addr to its live allocation: (base, size, ok). Interior
// pointers resolve to their containing object.
func (h *Heap) Lookup(addr uint64) (uint64, uint64, bool) {
	ch, l, ok := h.find(addr)
	if !ok {
		return 0, 0, false
	}
	if l != nil {
		return l.res.Base, l.size, true
	}
	off := addr - ch.res.Base
	if s, ok := ch.slabs[off/SlabSize*SlabSize]; ok {
		base := s.base + (addr-s.base)/ClassSize(s.class)*ClassSize(s.class)
		if s.live[base] {
			return base, ClassSize(s.class), true
		}
		return 0, 0, false
	}
	// Medium: scan the live map (medium allocations are few and aligned).
	for base, size := range ch.mediumLive {
		if addr >= base && addr < base+size {
			return base, size, true
		}
	}
	return 0, 0, false
}

// PaintAuth returns the capability with painting authority over addr
// (the owning chunk's or reservation's root).
func (h *Heap) PaintAuth(addr uint64) (ca.Capability, bool) {
	ch, l, ok := h.find(addr)
	if !ok {
		return ca.Capability{}, false
	}
	if l != nil {
		return l.res.Root, true
	}
	return ch.root, true
}

// Free validates and releases an allocation immediately (no quarantine).
// Baseline (non-temporal-safety) configurations use this; mrs replaces it
// with quarantine + deferred Release.
func (h *Heap) Free(th *kernel.Thread, c ca.Capability) error {
	th.P.M.Telem.Enter(th.Sim, telemetry.CompAlloc)
	defer th.P.M.Telem.Exit(th.Sim)
	if !c.Tag() {
		return fmt.Errorf("%w: untagged capability", ErrBadFree)
	}
	base, size, ok := h.Lookup(c.Base())
	if !ok {
		return ErrDoubleFree
	}
	if base != c.Base() {
		return ErrWildFree
	}
	return h.Release(th, base, size)
}

// Release returns storage at (base, size) to the free lists. With mrs
// layered on top this happens only after revocation dequarantines the
// span. Cross-thread releases go through the owner's remote queue.
func (h *Heap) Release(th *kernel.Thread, base, size uint64) error {
	var err error
	asAllocator(th, func() {
		ch, l, ok := h.find(base)
		if !ok {
			err = ErrBadFree
			return
		}
		var owner *Allocator
		if l != nil {
			owner = l.owner
		} else {
			owner = ch.owner
		}
		mine := h.byTh[th]
		if owner != mine {
			// snmalloc message passing: enqueue on the owner's remote
			// queue; the owner drains at its next allocation.
			owner.remote = append(owner.remote, remoteFree{addr: base, size: size})
			h.stats.RemoteFrees++
			th.Work(40)
			return
		}
		err = owner.release(base, size)
	})
	return err
}

// reclaimSlab removes an emptied slab and recycles its span.
func (a *Allocator) reclaimSlab(ch *chunk, s *slab) {
	delete(ch.slabs, s.base-ch.res.Base)
	kept := a.partial[s.class][:0]
	for _, ps := range a.partial[s.class] {
		if ps != s {
			kept = append(kept, ps)
		}
	}
	a.partial[s.class] = kept
	s.inPartial = false
	ch.freeSpans = append(ch.freeSpans, s.base)
	a.th.Work(120)
}

// drainRemote processes pending cross-thread frees.
func (a *Allocator) drainRemote() {
	for _, rf := range a.remote {
		a.th.Work(25)
		if err := a.release(rf.addr, rf.size); err != nil {
			panic(fmt.Sprintf("alloc: remote free: %v", err))
		}
	}
	a.remote = a.remote[:0]
}

// release is the owner-thread free path.
func (a *Allocator) release(base, size uint64) error {
	h := a.heap
	th := a.th
	th.Work(25)
	ch, l, ok := h.find(base)
	if !ok {
		return ErrBadFree
	}
	switch {
	case l != nil:
		// Large: unmap the whole reservation; the dead reservation is the
		// caller's to quarantine at the mmap level (§6.2). Without mrs the
		// address space is recycled only when the reservation is released,
		// which never aliases: fresh reservations come from the bump.
		delete(h.larges, base)
		if _, _, err := th.Munmap(l.res.Base, l.res.Length); err != nil {
			return err
		}
	case ch.slabs[(base-ch.res.Base)/SlabSize*SlabSize] != nil:
		s := ch.slabs[(base-ch.res.Base)/SlabSize*SlabSize]
		if !s.live[base] {
			return ErrDoubleFree
		}
		if (base-s.base)%ClassSize(s.class) != 0 {
			return ErrWildFree
		}
		delete(s.live, base)
		s.used--
		s.free = append(s.free, base)
		if !s.inPartial {
			a.partial[s.class] = append(a.partial[s.class], s)
			s.inPartial = true
		}
		if s.used == 0 && s.next == s.base+SlabSize {
			// The slab emptied after being fully carved: return its span
			// to the chunk so another size class can reuse it (snmalloc's
			// slab recycling).
			a.reclaimSlab(ch, s)
		}
		// Write the in-band freelist node over the object's first granule
		// (clears any capability there, as snmalloc's write does).
		if err := th.Store(ch.root.WithAddr(base), 0, MinAlloc); err != nil {
			return err
		}
		th.Work(th.P.M.Bus.Access(th.Sim.CoreID(), ch.metaVA(base), th.Agent, true))
	default:
		sz, ok := ch.mediumLive[base]
		if !ok {
			return ErrDoubleFree
		}
		delete(ch.mediumLive, base)
		ch.mediumFree[sz] = append(ch.mediumFree[sz], base)
		th.Work(60)
	}
	h.stats.Frees++
	h.stats.LiveBytes -= size
	h.stats.TotalFreed += size
	return nil
}

// RecolorRange bumps the memory color of [base, base+size) to next (§7.3),
// charging color-store traffic at a quarter of data-write cost (colors are
// 4-bit metadata).
func (h *Heap) RecolorRange(th *kernel.Thread, base, size uint64, next uint8) error {
	auth, ok := h.PaintAuth(base)
	if !ok {
		return ErrBadFree
	}
	if !auth.HasPerms(ca.PermRecolor) {
		return ca.ErrPermEscalation
	}
	va := base
	end := base + size
	for va < end {
		pte, _, err := th.P.AS.EnsureMapped(va)
		if err != nil {
			return err
		}
		pageEnd := (va &^ (vm.PageSize - 1)) + vm.PageSize
		n := end
		if n > pageEnd {
			n = pageEnd
		}
		gFirst := int(va%vm.PageSize) / ca.GranuleSize
		gLast := int((n-1)%vm.PageSize) / ca.GranuleSize
		th.P.M.Phys.SetColor(pte.Frame, gFirst, gLast-gFirst+1, next)
		va = n
	}
	th.Work(th.P.M.Bus.AccessRange(th.Sim.CoreID(), base, size/4+1, th.Agent, true))
	return nil
}

// Chunks returns the number of chunks owned by the heap.
func (h *Heap) Chunks() int { return len(h.chunks) }
