package alloc

import "repro/internal/ca"

// Size-class geometry, after snmalloc: multiples of 16 bytes up to 128,
// then four classes per power of two. Every class size is exactly
// CHERI-representable, so returned capabilities never carry slack.
const (
	// MinAlloc is the smallest allocation unit (one capability granule).
	MinAlloc = 16
	// MaxSmall is the largest size served from slabs.
	MaxSmall = 4096
	// SlabSize is the span carved per size class.
	SlabSize = 64 << 10
	// ChunkDataPages is the number of usable pages per chunk after the
	// metadata page.
	chunkPages = chunkSize / 4096
	// chunkSize is the reservation unit requested from the kernel.
	chunkSize = 1 << 20
	// MaxMedium is the largest size served page-granularly from chunks;
	// bigger allocations get their own reservation.
	MaxMedium = 256 << 10
)

// classSizes lists the small size classes in ascending order.
var classSizes []uint64

// classIndexBySize maps ceil(size/16) to a class index, for sizes ≤ MaxSmall.
var classIndexBySize [MaxSmall/MinAlloc + 1]uint8

func init() {
	for s := uint64(MinAlloc); s <= 128; s += 16 {
		classSizes = append(classSizes, s)
	}
	for base := uint64(128); base < MaxSmall; base *= 2 {
		for i := uint64(1); i <= 4; i++ {
			s := base + i*base/4
			if s > MaxSmall {
				break
			}
			if s != ca.RepresentableLength(s) {
				panic("alloc: non-representable size class")
			}
			classSizes = append(classSizes, s)
		}
	}
	ci := 0
	for u := 1; u <= MaxSmall/MinAlloc; u++ {
		size := uint64(u) * MinAlloc
		for classSizes[ci] < size {
			ci++
		}
		classIndexBySize[u] = uint8(ci)
	}
}

// NumClasses returns the number of small size classes.
func NumClasses() int { return len(classSizes) }

// ClassSize returns the object size of class c.
func ClassSize(c int) uint64 { return classSizes[c] }

// SizeToClass returns the smallest class index serving size (≤ MaxSmall).
func SizeToClass(size uint64) int {
	if size == 0 {
		size = 1
	}
	return int(classIndexBySize[(size+MinAlloc-1)/MinAlloc])
}

// RoundAlloc returns the usable size a request of size bytes receives:
// the class size for small requests, page-and-representability rounded
// otherwise.
func RoundAlloc(size uint64) uint64 {
	if size <= MaxSmall {
		return ClassSize(SizeToClass(size))
	}
	pages := (size + 4095) &^ 4095
	return ca.RepresentableLength(pages)
}
