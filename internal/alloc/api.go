package alloc

import (
	"repro/internal/ca"
	"repro/internal/kernel"
)

// API is the malloc/free interface workloads program against. The bare
// Heap implements it (no temporal safety: freed storage is reused
// immediately); the quarantine shim and the coloring shim wrap a Heap to
// add temporal safety.
type API interface {
	Malloc(th *kernel.Thread, size uint64) (ca.Capability, error)
	Free(th *kernel.Thread, c ca.Capability) error
}

// Malloc implements API for the bare heap.
func (h *Heap) Malloc(th *kernel.Thread, size uint64) (ca.Capability, error) {
	return h.Alloc(th, size)
}

// Realloc resizes an allocation through any API (so quarantine semantics
// apply to the old storage under mrs): if the rounded size is unchanged the
// capability is returned as-is; otherwise a new object is allocated, the
// contents copied tag-preservingly, and the old object freed.
func Realloc(mem API, th *kernel.Thread, c ca.Capability, size uint64) (ca.Capability, error) {
	if !c.Tag() {
		return mem.Malloc(th, size)
	}
	if RoundAlloc(size) == c.Len() {
		return c, nil
	}
	n, err := mem.Malloc(th, size)
	if err != nil {
		return ca.Capability{}, err
	}
	copyLen := c.Len()
	if n.Len() < copyLen {
		copyLen = n.Len()
	}
	if err := th.CopyRange(n, c, copyLen); err != nil {
		return ca.Capability{}, err
	}
	if err := mem.Free(th, c); err != nil {
		return ca.Capability{}, err
	}
	return n, nil
}
