package alloc

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ca"
	"repro/internal/kernel"
)

// withHeap runs fn on an app thread with a fresh heap.
func withHeap(t *testing.T, fn func(h *Heap, th *kernel.Thread)) {
	t.Helper()
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(1)
	h := NewHeap(p)
	p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		fn(h, th)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSizeClassesAscendingRepresentable(t *testing.T) {
	prev := uint64(0)
	for c := 0; c < NumClasses(); c++ {
		s := ClassSize(c)
		if s <= prev {
			t.Fatalf("class %d size %d not ascending", c, s)
		}
		if s != ca.RepresentableLength(s) {
			t.Fatalf("class size %d not representable", s)
		}
		if s%MinAlloc != 0 {
			t.Fatalf("class size %d not granule-aligned", s)
		}
		prev = s
	}
	if ClassSize(NumClasses()-1) != MaxSmall {
		t.Fatalf("largest class %d != MaxSmall", ClassSize(NumClasses()-1))
	}
}

func TestSizeToClassCovers(t *testing.T) {
	for size := uint64(1); size <= MaxSmall; size++ {
		c := SizeToClass(size)
		if ClassSize(c) < size {
			t.Fatalf("class %d (%d) too small for %d", c, ClassSize(c), size)
		}
		if c > 0 && ClassSize(c-1) >= size {
			t.Fatalf("size %d not in smallest class", size)
		}
	}
}

func TestAllocReturnsExactBounds(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		for _, size := range []uint64{1, 16, 17, 100, 4096, 8192, 300 << 10} {
			c, err := h.Alloc(th, size)
			if err != nil {
				t.Fatalf("alloc(%d): %v", size, err)
			}
			if !c.Tag() {
				t.Fatalf("alloc(%d) returned untagged capability", size)
			}
			if c.Len() != RoundAlloc(size) {
				t.Fatalf("alloc(%d) bounds %d, want %d", size, c.Len(), RoundAlloc(size))
			}
			if c.Len() < size {
				t.Fatalf("alloc(%d) bounds %d too small", size, c.Len())
			}
			if c.HasPerms(ca.PermPaint) || c.HasPerms(ca.PermRecolor) {
				t.Fatal("returned capability carries allocator-only permissions")
			}
		}
	})
}

func TestAllocationsDisjoint(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		type span struct{ base, end uint64 }
		var spans []span
		for i := 0; i < 500; i++ {
			size := uint64(16 + (i*37)%3000)
			c, err := h.Alloc(th, size)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range spans {
				if c.Base() < s.end && s.base < c.Top() {
					t.Fatalf("allocation [%#x,%#x) overlaps [%#x,%#x)", c.Base(), c.Top(), s.base, s.end)
				}
			}
			spans = append(spans, span{c.Base(), c.Top()})
		}
	})
}

func TestFreeAndReuse(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		c1, _ := h.Alloc(th, 64)
		if err := h.Free(th, c1); err != nil {
			t.Fatal(err)
		}
		c2, _ := h.Alloc(th, 64)
		if c2.Base() != c1.Base() {
			t.Fatalf("LIFO reuse expected: got %#x want %#x", c2.Base(), c1.Base())
		}
		if h.Stats().LiveBytes != c2.Len() {
			t.Fatalf("live bytes = %d", h.Stats().LiveBytes)
		}
	})
}

func TestDoubleFreeDetected(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		c, _ := h.Alloc(th, 64)
		if err := h.Free(th, c); err != nil {
			t.Fatal(err)
		}
		err := h.Free(th, c)
		if !errors.Is(err, ErrDoubleFree) {
			t.Fatalf("double free err = %v", err)
		}
	})
}

func TestWildFreeDetected(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		c, _ := h.Alloc(th, 256)
		interior := c.AddAddr(32)
		// A capability whose base is interior (simulating a sub-object
		// pointer) must be rejected.
		sub, err := interior.SetBounds(16)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(th, sub); !errors.Is(err, ErrWildFree) {
			t.Fatalf("interior free err = %v", err)
		}
	})
}

func TestFreeUntaggedRejected(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		c, _ := h.Alloc(th, 64)
		if err := h.Free(th, c.ClearTag()); err == nil {
			t.Fatal("free of untagged capability accepted")
		}
	})
}

func TestLookupInterior(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		c, _ := h.Alloc(th, 200)
		base, size, ok := h.Lookup(c.Base() + 100)
		if !ok || base != c.Base() || size != c.Len() {
			t.Fatalf("Lookup interior = (%#x,%d,%v), want (%#x,%d,true)", base, size, ok, c.Base(), c.Len())
		}
		if _, _, ok := h.Lookup(0xdead); ok {
			t.Fatal("Lookup of foreign address succeeded")
		}
	})
}

func TestMediumAndLargeLifecycle(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		med, err := h.Alloc(th, 32<<10)
		if err != nil {
			t.Fatal(err)
		}
		lg, err := h.Alloc(th, 512<<10)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(th, med); err != nil {
			t.Fatal(err)
		}
		// Medium extents are reused exactly.
		med2, _ := h.Alloc(th, 32<<10)
		if med2.Base() != med.Base() {
			t.Fatalf("medium reuse: got %#x want %#x", med2.Base(), med.Base())
		}
		if err := h.Free(th, lg); err != nil {
			t.Fatal(err)
		}
		// The large allocation's reservation is dead after free.
		if _, _, ok := h.Lookup(lg.Base()); ok {
			t.Fatal("large allocation still resolvable after free")
		}
	})
}

func TestPaintAuthCoversAllocation(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		c, _ := h.Alloc(th, 64)
		auth, ok := h.PaintAuth(c.Base())
		if !ok {
			t.Fatal("no paint authority")
		}
		if !auth.HasPerms(ca.PermPaint) {
			t.Fatal("authority lacks PermPaint")
		}
		if c.Base() < auth.Base() || c.Top() > auth.Top() {
			t.Fatal("authority does not cover allocation")
		}
	})
}

func TestRemoteFreeRouted(t *testing.T) {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(1)
	h := NewHeap(p)
	done := m.Eng.NewEvent()
	var c ca.Capability
	allocated := false
	owner := p.Spawn("owner", []int{3}, func(th *kernel.Thread) {
		var err error
		c, err = h.Alloc(th, 64)
		if err != nil {
			t.Error(err)
		}
		allocated = true
		done.Broadcast(th.Sim)
		// Wait for the other thread to free, then allocate: the remote
		// queue must drain and hand the object back.
		th.Idle(3_000_000)
		c2, err := h.Alloc(th, 64)
		if err != nil {
			t.Error(err)
		}
		if c2.Base() != c.Base() {
			t.Errorf("remote-freed object not reused: %#x vs %#x", c2.Base(), c.Base())
		}
	})
	_ = owner
	p.Spawn("other", []int{2}, func(th *kernel.Thread) {
		done.WaitUntil(th.Sim, func() bool { return allocated })
		if err := h.Free(th, c); err != nil {
			t.Error(err)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if h.Stats().RemoteFrees != 1 {
		t.Fatalf("remote frees = %d, want 1", h.Stats().RemoteFrees)
	}
}

func TestStatsAccounting(t *testing.T) {
	withHeap(t, func(h *Heap, th *kernel.Thread) {
		var caps []ca.Capability
		for i := 0; i < 100; i++ {
			c, _ := h.Alloc(th, 128)
			caps = append(caps, c)
		}
		peak := h.Stats().PeakLiveBytes
		for _, c := range caps {
			h.Free(th, c)
		}
		s := h.Stats()
		if s.LiveBytes != 0 {
			t.Fatalf("live = %d after freeing all", s.LiveBytes)
		}
		if s.PeakLiveBytes != peak || peak != 100*128 {
			t.Fatalf("peak = %d, want %d", s.PeakLiveBytes, 100*128)
		}
		if s.Allocs != 100 || s.Frees != 100 {
			t.Fatalf("allocs=%d frees=%d", s.Allocs, s.Frees)
		}
		if s.TotalAllocated != s.TotalFreed {
			t.Fatalf("allocated %d != freed %d", s.TotalAllocated, s.TotalFreed)
		}
	})
}

func TestColoringStampsCapabilities(t *testing.T) {
	m := kernel.NewMachine(kernel.DefaultMachineConfig())
	p := m.NewProcess(1)
	p.SetColorMode(true)
	h := NewHeap(p)
	h.SetColoring(true)
	p.Spawn("app", []int{3}, func(th *kernel.Thread) {
		c, err := h.Alloc(th, 64)
		if err != nil {
			t.Fatal(err)
		}
		// Fresh memory has color 0; accesses must succeed.
		if err := th.Store(c, 0, 16); err != nil {
			t.Fatalf("store through fresh colored cap: %v", err)
		}
		// Recolor the object's memory; the stale capability must now trap.
		if err := h.RecolorRange(th, c.Base(), c.Len(), 1); err != nil {
			t.Fatal(err)
		}
		if err := th.Load(c, 0, 16); err == nil {
			t.Fatal("load through stale-colored capability allowed")
		}
		// A fresh allocation of the same storage gets the new color.
		// (Direct reuse here, bypassing quarantine, models the §7.3 fast
		// path where colors substitute for revocation.)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: for random alloc/free sequences the allocator never hands out
// overlapping live objects and accounting stays consistent.
func TestQuickAllocFreeConsistent(t *testing.T) {
	f := func(ops []uint16) bool {
		okAll := true
		withHeap(t, func(h *Heap, th *kernel.Thread) {
			type liveObj struct{ c ca.Capability }
			var live []liveObj
			var liveBytes uint64
			for _, op := range ops {
				if op%3 != 0 || len(live) == 0 {
					size := uint64(op%2048 + 1)
					c, err := h.Alloc(th, size)
					if err != nil {
						okAll = false
						return
					}
					for _, l := range live {
						if c.Base() < l.c.Top() && l.c.Base() < c.Top() {
							okAll = false
							return
						}
					}
					live = append(live, liveObj{c})
					liveBytes += c.Len()
				} else {
					i := int(op) % len(live)
					if err := h.Free(th, live[i].c); err != nil {
						okAll = false
						return
					}
					liveBytes -= live[i].c.Len()
					live = append(live[:i], live[i+1:]...)
				}
			}
			if h.LiveBytes() != liveBytes {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
