// Package metrics provides the statistics the paper's evaluation reports:
// exact percentiles and CDFs of latency samples (Figures 7 and 8, Table 1),
// five-number boxplot summaries (Figures 8 and 9), geometric means (Figure
// 1's multi-workload aggregation), and mean ± confidence intervals.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Samples accumulates observations (any unit; experiments use cycles).
type Samples struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Samples) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddU adds an unsigned integer observation.
func (s *Samples) AddU(x uint64) { s.Add(float64(x)) }

// Merge appends all of o's observations.
func (s *Samples) Merge(o *Samples) {
	s.xs = append(s.xs, o.xs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Samples) N() int { return len(s.xs) }

// Values returns the observations (sorted ascending). The returned slice
// is shared; do not mutate it.
func (s *Samples) Values() []float64 {
	s.sort()
	return s.xs
}

// Scaled returns a new sample set with every observation divided by d.
func (s *Samples) Scaled(d float64) *Samples {
	out := &Samples{xs: make([]float64, 0, len(s.xs))}
	for _, x := range s.xs {
		out.xs = append(out.xs, x/d)
	}
	return out
}

func (s *Samples) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics. Panics on an empty sample set.
func (s *Samples) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		panic("metrics: percentile of empty samples")
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// PercentileOK is Percentile for callers that may hold an empty set (a
// figure cell whose jobs all failed, a condition with no epochs): it
// reports ok=false instead of panicking, so renderers can emit "--".
func (s *Samples) PercentileOK(p float64) (float64, bool) {
	if s == nil || len(s.xs) == 0 {
		return 0, false
	}
	return s.Percentile(p), true
}

// Median returns the 50th percentile.
func (s *Samples) Median() float64 { return s.Percentile(50) }

// MedianOK is Median with the empty set reported, not panicked.
func (s *Samples) MedianOK() (float64, bool) { return s.PercentileOK(50) }

// Min and Max return the extrema.
func (s *Samples) Min() float64 { s.sort(); return s.xs[0] }

// Max returns the largest observation.
func (s *Samples) Max() float64 { s.sort(); return s.xs[len(s.xs)-1] }

// MinOK and MaxOK report the extrema of a possibly-empty set.
func (s *Samples) MinOK() (float64, bool) {
	if s == nil || len(s.xs) == 0 {
		return 0, false
	}
	return s.Min(), true
}

// MaxOK returns the largest observation and whether the set is non-empty.
func (s *Samples) MaxOK() (float64, bool) {
	if s == nil || len(s.xs) == 0 {
		return 0, false
	}
	return s.Max(), true
}

// Mean returns the arithmetic mean.
func (s *Samples) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the sample standard deviation.
func (s *Samples) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// MeanCI returns the mean and its 95% confidence half-interval (normal
// approximation).
func (s *Samples) MeanCI() (mean, halfCI float64) {
	mean = s.Mean()
	if n := len(s.xs); n > 1 {
		halfCI = 1.96 * s.Stddev() / math.Sqrt(float64(n))
	}
	return mean, halfCI
}

// Sum returns the total of all observations.
func (s *Samples) Sum() float64 {
	var t float64
	for _, x := range s.xs {
		t += x
	}
	return t
}

// Box is the five-number summary plus extrema used by the paper's boxplots.
type Box struct {
	Min, P25, Median, P75, Max float64
	N                          int
}

// Boxplot computes the five-number summary.
func (s *Samples) Boxplot() Box {
	return Box{
		Min:    s.Min(),
		P25:    s.Percentile(25),
		Median: s.Median(),
		P75:    s.Percentile(75),
		Max:    s.Max(),
		N:      s.N(),
	}
}

// String renders the box as "min/p25/med/p75/max".
func (b Box) String() string {
	return fmt.Sprintf("%.3g/%.3g/%.3g/%.3g/%.3g (n=%d)", b.Min, b.P25, b.Median, b.P75, b.Max, b.N)
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X        float64 // value
	Fraction float64 // fraction of samples ≤ X
}

// CDF returns the empirical CDF downsampled to at most points entries
// (always including the extremes).
func (s *Samples) CDF(points int) []CDFPoint {
	s.sort()
	n := len(s.xs)
	if n == 0 {
		return nil
	}
	if points < 2 {
		points = 2
	}
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := i * (n - 1) / (points - 1)
		out = append(out, CDFPoint{X: s.xs[idx], Fraction: float64(idx+1) / float64(n)})
	}
	return out
}

// Geomean returns the geometric mean of xs; zero and negative inputs are
// invalid.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("metrics: geomean of non-positive value %v", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Overhead expresses test relative to baseline as a percentage increase
// (e.g. 1.23 vs 1.00 → 23%).
func Overhead(test, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (test/baseline - 1) * 100
}

// Ratio returns test/baseline, guarding zero baselines.
func Ratio(test, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return test / baseline
}

// Counter is one named tally, the serializable element of a Counters
// snapshot.
type Counter struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Counters is an ordered bag of named uint64 tallies: fault-campaign
// aggregation (injections, violations, recoveries per class) and similar
// event accounting. Names keep first-insertion order so snapshots are
// deterministic without callers sorting.
type Counters struct {
	names []string
	vals  map[string]uint64
}

// Add increases the named counter by n, creating it at zero first.
func (c *Counters) Add(name string, n uint64) {
	if c.vals == nil {
		c.vals = make(map[string]uint64)
	}
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] += n
}

// Get returns the named counter's value (zero if never added).
func (c *Counters) Get(name string) uint64 { return c.vals[name] }

// Names returns the counter names in first-insertion order.
func (c *Counters) Names() []string { return append([]string(nil), c.names...) }

// Snapshot returns all counters in first-insertion order.
func (c *Counters) Snapshot() []Counter {
	out := make([]Counter, 0, len(c.names))
	for _, n := range c.names {
		out = append(out, Counter{Name: n, Value: c.vals[n]})
	}
	return out
}
