package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func samplesOf(xs ...float64) *Samples {
	s := &Samples{}
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

func TestPercentileExact(t *testing.T) {
	s := samplesOf(1, 2, 3, 4, 5)
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {90, 4.6},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	s := samplesOf(7)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := s.Percentile(p); got != 7 {
			t.Fatalf("P%v = %v", p, got)
		}
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Samples{}).Percentile(50)
}

func TestMeanStddevCI(t *testing.T) {
	s := samplesOf(2, 4, 4, 4, 5, 5, 7, 9)
	if m := s.Mean(); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if sd := s.Stddev(); math.Abs(sd-2.13809) > 1e-4 {
		t.Fatalf("stddev = %v", sd)
	}
	m, ci := s.MeanCI()
	if m != 5 || ci <= 0 {
		t.Fatalf("mean ci = %v ± %v", m, ci)
	}
}

func TestBoxplot(t *testing.T) {
	s := &Samples{}
	for i := 1; i <= 101; i++ {
		s.Add(float64(i))
	}
	b := s.Boxplot()
	if b.Min != 1 || b.Max != 101 || b.Median != 51 || b.P25 != 26 || b.P75 != 76 {
		t.Fatalf("box = %+v", b)
	}
	if b.N != 101 {
		t.Fatalf("n = %d", b.N)
	}
}

func TestCDFMonotone(t *testing.T) {
	s := &Samples{}
	for i := 0; i < 1000; i++ {
		s.Add(float64((i * 7919) % 1000))
	}
	cdf := s.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("len = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X || cdf[i].Fraction < cdf[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Fatalf("final fraction = %v", cdf[len(cdf)-1].Fraction)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); g != 2 {
		t.Fatalf("geomean = %v", g)
	}
	if g := Geomean([]float64{2, 2, 2}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean = %v", g)
	}
}

func TestOverheadRatio(t *testing.T) {
	if o := Overhead(1.25, 1.0); math.Abs(o-25) > 1e-9 {
		t.Fatalf("overhead = %v", o)
	}
	if r := Ratio(3, 2); r != 1.5 {
		t.Fatalf("ratio = %v", r)
	}
	if Ratio(3, 0) != 0 || Overhead(3, 0) != 0 {
		t.Fatal("zero baseline not guarded")
	}
}

func TestMerge(t *testing.T) {
	a := samplesOf(1, 2)
	b := samplesOf(3, 4)
	a.Merge(b)
	if a.N() != 4 || a.Max() != 4 {
		t.Fatalf("merge: n=%d max=%v", a.N(), a.Max())
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := &Samples{}
		for _, x := range raw {
			s.AddU(uint64(x))
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		return pa <= pb && pa >= s.Min() && pb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOKVariantsEmpty(t *testing.T) {
	empty := &Samples{}
	var nilSet *Samples
	for name, s := range map[string]*Samples{"empty": empty, "nil": nilSet} {
		if v, ok := s.PercentileOK(50); ok || v != 0 {
			t.Errorf("%s: PercentileOK = %v, %v", name, v, ok)
		}
		if v, ok := s.MedianOK(); ok || v != 0 {
			t.Errorf("%s: MedianOK = %v, %v", name, v, ok)
		}
		if v, ok := s.MinOK(); ok || v != 0 {
			t.Errorf("%s: MinOK = %v, %v", name, v, ok)
		}
		if v, ok := s.MaxOK(); ok || v != 0 {
			t.Errorf("%s: MaxOK = %v, %v", name, v, ok)
		}
	}
}

func TestOKVariantsMatchPanicking(t *testing.T) {
	s := samplesOf(5, 1, 9, 3)
	if v, ok := s.PercentileOK(90); !ok || v != s.Percentile(90) {
		t.Errorf("PercentileOK = %v, %v; want %v, true", v, ok, s.Percentile(90))
	}
	if v, ok := s.MedianOK(); !ok || v != s.Median() {
		t.Errorf("MedianOK = %v, %v", v, ok)
	}
	if v, ok := s.MinOK(); !ok || v != 1 {
		t.Errorf("MinOK = %v, %v", v, ok)
	}
	if v, ok := s.MaxOK(); !ok || v != 9 {
		t.Errorf("MaxOK = %v, %v", v, ok)
	}
}
