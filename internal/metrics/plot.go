package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Terminal plotting for the paper's figure styles: cumulative distribution
// functions (Figure 7) and boxplot strips (Figures 8 and 9). Pure text,
// suitable for piping; deterministic given the same samples.

// CDFPlot renders named sample sets as an ASCII CDF: x is the value (log
// scale when the data spans decades), y the cumulative fraction. Each
// series draws with its own rune.
type CDFPlot struct {
	Title  string
	XLabel string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 18)

	names   []string
	series  []*Samples
	symbols []rune
}

// seriesRunes cycle across added series.
var seriesRunes = []rune{'*', 'o', '+', 'x', '#', '@'}

// Add appends a named series.
func (p *CDFPlot) Add(name string, s *Samples) {
	p.names = append(p.names, name)
	p.series = append(p.series, s)
	p.symbols = append(p.symbols, seriesRunes[len(p.symbols)%len(seriesRunes)])
}

// Render draws the plot.
func (p *CDFPlot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 18
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		if s.N() == 0 {
			continue
		}
		lo = math.Min(lo, s.Min())
		hi = math.Max(hi, s.Max())
	}
	if math.IsInf(lo, 1) || hi <= lo {
		return p.Title + ": no data\n"
	}
	logScale := lo > 0 && hi/lo > 20
	xpos := func(v float64) int {
		var f float64
		if logScale {
			f = (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
		} else {
			f = (v - lo) / (hi - lo)
		}
		x := int(f * float64(w-1))
		if x < 0 {
			x = 0
		}
		if x > w-1 {
			x = w - 1
		}
		return x
	}

	grid := make([][]rune, h)
	for y := range grid {
		grid[y] = []rune(strings.Repeat(" ", w))
	}
	for si, s := range p.series {
		if s.N() == 0 {
			continue
		}
		for _, pt := range s.CDF(4 * w) {
			y := int(pt.Fraction * float64(h-1))
			if y > h-1 {
				y = h - 1
			}
			grid[h-1-y][xpos(pt.X)] = p.symbols[si]
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for y := 0; y < h; y++ {
		frac := float64(h-1-y) / float64(h-1)
		fmt.Fprintf(&b, "%5.2f |%s|\n", frac, string(grid[y]))
	}
	fmt.Fprintf(&b, "      +%s+\n", strings.Repeat("-", w))
	scale := "linear"
	if logScale {
		scale = "log"
	}
	fmt.Fprintf(&b, "      %-*s%s\n", w-len(fmt.Sprint(hi))+1, fmt.Sprintf("%.4g", lo), fmt.Sprintf("%.4g", hi))
	if p.XLabel != "" {
		fmt.Fprintf(&b, "      x: %s (%s scale)\n", p.XLabel, scale)
	}
	for i, n := range p.names {
		fmt.Fprintf(&b, "      %c %s\n", p.symbols[i], n)
	}
	return b.String()
}

// BoxStrip renders labelled boxplots on a shared horizontal axis, one row
// per entry, in the style of Figure 9.
type BoxStrip struct {
	Title  string
	XLabel string
	Width  int

	labels []string
	boxes  []Box
}

// Add appends a labelled box.
func (p *BoxStrip) Add(label string, b Box) {
	p.labels = append(p.labels, label)
	p.boxes = append(p.boxes, b)
}

// Render draws the strip.
func (p *BoxStrip) Render() string {
	w := p.Width
	if w <= 0 {
		w = 60
	}
	if len(p.boxes) == 0 {
		return p.Title + ": no data\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range p.boxes {
		lo = math.Min(lo, b.Min)
		hi = math.Max(hi, b.Max)
	}
	if hi <= lo {
		hi = lo + 1
	}
	logScale := lo > 0 && hi/lo > 20
	xpos := func(v float64) int {
		var f float64
		if logScale {
			f = (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
		} else {
			f = (v - lo) / (hi - lo)
		}
		x := int(f * float64(w-1))
		if x < 0 {
			x = 0
		}
		if x > w-1 {
			x = w - 1
		}
		return x
	}
	labelW := 0
	for _, l := range p.labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for i, box := range p.boxes {
		row := []rune(strings.Repeat(" ", w))
		l, q1, med, q3, r := xpos(box.Min), xpos(box.P25), xpos(box.Median), xpos(box.P75), xpos(box.Max)
		for x := l; x <= r; x++ {
			row[x] = '-'
		}
		for x := q1; x <= q3; x++ {
			row[x] = '='
		}
		row[l], row[r] = '|', '|'
		row[med] = 'M'
		fmt.Fprintf(&b, "  %-*s |%s|\n", labelW, p.labels[i], string(row))
	}
	scale := "linear"
	if logScale {
		scale = "log"
	}
	fmt.Fprintf(&b, "  %-*s +%s+\n", labelW, "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "  %-*s %.4g .. %.4g", labelW, "", lo, hi)
	if p.XLabel != "" {
		fmt.Fprintf(&b, "  (%s, %s scale)", p.XLabel, scale)
	}
	b.WriteString("\n")
	return b.String()
}

// sortFloats is kept for future plot helpers; exported sorting lives in
// Samples.
var _ = sort.Float64s
