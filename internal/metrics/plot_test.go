package metrics

import (
	"strings"
	"testing"
)

func TestCDFPlotRenders(t *testing.T) {
	p := &CDFPlot{Title: "latency", XLabel: "ms", Width: 40, Height: 8}
	a := &Samples{}
	bSer := &Samples{}
	for i := 1; i <= 500; i++ {
		a.Add(float64(i))
		bSer.Add(float64(i * 3))
	}
	p.Add("fast", a)
	p.Add("slow", bSer)
	out := p.Render()
	for _, want := range []string{"latency", "* fast", "o slow", "x: ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("plot too short:\n%s", out)
	}
	// Top row corresponds to fraction 1.00, bottom to 0.00.
	if !strings.HasPrefix(lines[1], " 1.00") {
		t.Fatalf("first data row %q", lines[1])
	}
}

func TestCDFPlotLogScaleKicksIn(t *testing.T) {
	p := &CDFPlot{Width: 30, Height: 6}
	s := &Samples{}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i * i * i)) // spans decades
	}
	p.Add("x", s)
	if out := p.Render(); !strings.Contains(out, "log scale") && !strings.Contains(out, "(log") {
		// XLabel empty: scale note only printed with label; re-render with label.
		p.XLabel = "v"
		out = p.Render()
		if !strings.Contains(out, "log scale") {
			t.Fatalf("log scale not engaged:\n%s", out)
		}
	}
}

func TestCDFPlotEmpty(t *testing.T) {
	p := &CDFPlot{Title: "t"}
	p.Add("none", &Samples{})
	if out := p.Render(); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot rendered: %q", out)
	}
}

func TestBoxStripRenders(t *testing.T) {
	p := &BoxStrip{Title: "phases", XLabel: "ms", Width: 40}
	p.Add("stw", Box{Min: 1, P25: 2, Median: 3, P75: 4, Max: 5, N: 10})
	p.Add("concurrent", Box{Min: 2, P25: 3, Median: 4, P75: 4.5, Max: 5, N: 10})
	out := p.Render()
	for _, want := range []string{"phases", "stw", "concurrent", "M", "=", "(ms,"} {
		if !strings.Contains(out, want) {
			t.Fatalf("strip missing %q:\n%s", want, out)
		}
	}
	// Median marker between the box ends on each row.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "M") {
			if !strings.Contains(line, "|") {
				t.Fatalf("box row malformed: %q", line)
			}
		}
	}
}

func TestBoxStripDegenerate(t *testing.T) {
	p := &BoxStrip{Width: 20}
	p.Add("flat", Box{Min: 7, P25: 7, Median: 7, P75: 7, Max: 7, N: 3})
	out := p.Render()
	if !strings.Contains(out, "flat") {
		t.Fatalf("degenerate box missing:\n%s", out)
	}
}
