package dist

import "time"

// Breaker state names, surfaced on /workers and in telemetry.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breaker is the per-worker circuit breaker: a worker that keeps failing
// (failed results, reclaimed leases) is quarantined — its lease requests
// are answered with waits — for a cooldown, then allowed exactly one
// probe lease. A successful probe closes the breaker; a failed one
// re-opens it. This keeps a flapping worker (bad hardware, hostile
// network segment) from churning the retry budget of every job it
// touches, while still letting it rejoin once it heals.
//
// All methods are called with the coordinator's mutex held.
type breaker struct {
	state    string // "" means closed
	fails    int    // consecutive failures
	openedAt time.Time
	trips    uint64
	probing  bool // half-open with the probe lease outstanding
}

// String names the current state.
func (b *breaker) String() string {
	if b.state == "" {
		return BreakerClosed
	}
	return b.state
}

// allow reports whether a lease may be granted now. When quarantined it
// returns the remaining cooldown so the worker's poll can be paced.
func (b *breaker) allow(now time.Time, cooldown time.Duration) (ok bool, wait time.Duration) {
	switch b.state {
	case BreakerOpen:
		if left := cooldown - now.Sub(b.openedAt); left > 0 {
			return false, left
		}
		b.state = BreakerHalfOpen
		b.probing = false
		return true, 0
	case BreakerHalfOpen:
		if b.probing {
			return false, 0
		}
		return true, 0
	}
	return true, 0
}

// granted marks a lease handed to the worker (the probe, when half-open).
func (b *breaker) granted() {
	if b.state == BreakerHalfOpen {
		b.probing = true
	}
}

// success records a delivered result: the streak resets and a half-open
// breaker closes.
func (b *breaker) success() {
	b.fails = 0
	b.state = BreakerClosed
	b.probing = false
}

// failure records a failed result or reclaimed lease; the breaker trips
// when the streak reaches threshold (or immediately on a failed probe).
// Returns true when this failure tripped it.
func (b *breaker) failure(now time.Time, threshold int) bool {
	b.fails++
	if threshold <= 0 {
		return false // breaker disabled; streak still tracked for telemetry
	}
	if b.state == BreakerHalfOpen || b.fails >= threshold {
		if b.state != BreakerOpen {
			b.trips++
		}
		b.state = BreakerOpen
		b.openedAt = now
		b.probing = false
		return true
	}
	return false
}
