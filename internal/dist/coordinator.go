package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/dist/netfault"
	"repro/internal/expt"
	"repro/internal/journal"
	"repro/internal/kernel"
	"repro/internal/telemetry"
)

// Config tunes a Coordinator.
type Config struct {
	// Tool and Grid identify the campaign ("sweep"/"chaos" plus the grid
	// signature the manifest header pins); echoed to workers at hello.
	Tool string
	Grid string
	// Pool configures the embedded expt.Pool: Workers bounds in-flight
	// leases, Manifest/Retries/RetryBackoff/Progress work exactly as in a
	// local run, and SweepKernel/SimEngine/Telemetry are forwarded to
	// workers instead of being applied locally. Pool.Timeout is ignored —
	// LeaseTimeout is its distributed equivalent, enforced by lease
	// reclaim so the queue never double-issues a live attempt.
	Pool expt.PoolConfig
	// LeaseTimeout bounds one lease's lifetime regardless of heartbeats
	// (a wedged worker heartbeats forever); 0 = unbounded.
	LeaseTimeout time.Duration
	// Heartbeat is the renewal interval advertised to workers (default
	// 1s); a lease missing HeartbeatMiss consecutive intervals (default
	// 4) is reclaimed and its job re-issued through the pool's bounded
	// retry machinery.
	Heartbeat     time.Duration
	HeartbeatMiss int
	// WaitMS is the poll delay suggested to idle workers (default 100).
	WaitMS int64
	// Faults, when non-nil, arms coordinator-side network fault injection
	// over the protocol endpoints (netfault.Handler): inbound drop and
	// delay, plus partition of a deterministic worker subset. Worker-side
	// classes (drop/delay/duplicate/reorder/reset/throttle) are armed on
	// the workers themselves.
	Faults *netfault.Spec
	// BreakerFailures trips a worker's circuit breaker after this many
	// consecutive failures or reclaims (0 = breaker off). A tripped
	// worker is quarantined — lease requests answered with waits — for
	// BreakerCooldown (default 2s), then allowed one probe lease.
	BreakerFailures int
	BreakerCooldown time.Duration
	// EvictAfter removes a worker holding no leases from the live fleet
	// view once it has been silent this long; its counters fold into the
	// departed aggregate (DistStats) instead of being reported live
	// forever. Default 60 heartbeat intervals; negative disables.
	EvictAfter time.Duration
	// LocalFallback, when > 0, degrades the coordinator to local
	// execution: if the fleet has been silent (no worker request at all)
	// for this long while jobs are queued and no leases are outstanding,
	// queued jobs run on the coordinator itself through the same
	// expt.RunJob path a worker would use. 0 = wait for workers forever.
	LocalFallback time.Duration
	// Logf, when set, receives degraded-mode notices (breaker trips,
	// evictions, local-fallback activation).
	Logf func(format string, args ...any)
}

// task is one pool attempt awaiting a worker.
type task struct {
	key  string
	job  expt.Job
	done chan taskOutcome // buffered 1; exactly one delivery
}

type taskOutcome struct {
	res  *expt.JobResult
	host time.Duration
	err  error
}

// lease is a task checked out to a worker.
type lease struct {
	id       string
	t        *task
	worker   string // worker id
	granted  time.Time
	lastBeat time.Time
}

// workerState is the coordinator's per-worker accounting, surfaced on the
// live introspection server.
type workerState struct {
	id, name  string
	inflight  int
	leases    uint64
	results   uint64
	failures  uint64
	reclaims  uint64
	cacheHits uint64
	discards  uint64
	brk       breaker
	lastSeen  time.Time
	// Fleet-observability accounting, accumulated from accepted results:
	// host cost reported by the worker, simulated cycles produced, and
	// trace-ring events shipped/overwritten (Snapshot.Trace).
	hostMS       float64
	simCycles    uint64
	traceEvents  uint64
	traceDropped uint64
}

// departed aggregates the counters of evicted workers so fleet totals
// survive eviction.
type departed struct {
	count        int
	leases       uint64
	results      uint64
	failures     uint64
	reclaims     uint64
	cacheHits    uint64
	discards     uint64
	trips        uint64
	hostMS       float64
	simCycles    uint64
	traceEvents  uint64
	traceDropped uint64
}

// Coordinator owns a campaign's job grid and leases it out to network
// workers. It is an expt.Executor: cmd/sweep and cmd/chaos drive it
// exactly as they drive a local Pool, and the embedded Pool supplies
// dedup, manifest resume, retry and progress — only the execution backend
// differs, which is what keeps distributed documents identical to local
// ones.
type Coordinator struct {
	cfg        Config
	pool       *expt.Pool
	hbEvery    time.Duration
	hbMiss     int
	waitMS     int64
	evictAfter time.Duration
	brkCool    time.Duration
	faults     *netfault.Injector
	// localRun executes one job on the coordinator itself when the
	// LocalFallback deadline fires (tests inject fakes; default RunJob).
	localRun func(expt.Job) (*expt.JobResult, time.Duration, error)

	mu         sync.Mutex
	queue      []*task
	leases     map[string]*lease
	workers    map[string]*workerState
	gone       departed
	jobWorkers map[string]string // job key -> worker name, for timeline attribution
	seq        int
	wseq       int
	lastWorker time.Time // most recent request from any worker
	fallbacks  uint64    // jobs run locally by the fallback path
	draining   bool
	closed     bool

	srv      *http.Server
	ln       net.Listener
	reapStop chan struct{}
	reapDone chan struct{}
}

var _ expt.Executor = (*Coordinator)(nil)

// NewCoordinator builds a coordinator around cfg. Call Start before
// submitting jobs.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.HeartbeatMiss <= 0 {
		cfg.HeartbeatMiss = 4
	}
	if cfg.WaitMS <= 0 {
		cfg.WaitMS = 100
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	evict := cfg.EvictAfter
	if evict == 0 {
		// Default: long enough that campaigns with fast test heartbeats
		// never lose a crashed worker's counters mid-run, short enough
		// that a long-lived coordinator's /workers view stays honest.
		evict = 60 * cfg.Heartbeat
		if evict < time.Minute {
			evict = time.Minute
		}
	}
	c := &Coordinator{
		cfg:        cfg,
		hbEvery:    cfg.Heartbeat,
		hbMiss:     cfg.HeartbeatMiss,
		waitMS:     cfg.WaitMS,
		evictAfter: evict,
		brkCool:    cfg.BreakerCooldown,
		leases:     map[string]*lease{},
		workers:    map[string]*workerState{},
		jobWorkers: map[string]string{},
		lastWorker: time.Now(),
		reapStop:   make(chan struct{}),
		reapDone:   make(chan struct{}),
	}
	pcfg := cfg.Pool
	// Lease reclaim is the distributed timeout: it fails the attempt AND
	// retires the queue entry, so the pool-level abandonment timeout must
	// stay off or a slow lease would be double-issued.
	pcfg.Timeout = 0
	c.pool = expt.NewPool(pcfg)
	c.pool.SetRun(c.runRemote)
	c.localRun = func(j expt.Job) (res *expt.JobResult, host time.Duration, err error) {
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, fmt.Errorf("panic: %v", r)
			}
		}()
		start := time.Now()
		res, err = expt.RunJob(j, cfg.Pool.Telemetry, cfg.Pool.SweepKernel, cfg.Pool.SimEngine, cfg.Pool.MemPath)
		return res, time.Since(start), err
	}
	return c
}

// SetLocalRun replaces the local-fallback execution seam (tests only).
func (c *Coordinator) SetLocalRun(run func(expt.Job) (*expt.JobResult, time.Duration, error)) {
	c.localRun = run
}

// logf emits a degraded-mode notice when the coordinator has a logger.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// jnl is the campaign journal shared with the embedded pool (nil-safe:
// a nil writer swallows every emission).
func (c *Coordinator) jnl() *journal.Writer { return c.cfg.Pool.Journal }

// Prefetch, Get, Results and Stats make the coordinator an expt.Executor.
func (c *Coordinator) Prefetch(jobs []expt.Job) { c.pool.Prefetch(jobs) }

// Get returns j's result, leasing it to a worker as one becomes free.
func (c *Coordinator) Get(j expt.Job) (*expt.JobResult, error) { return c.pool.Get(j) }

// Results returns every completed job, sorted by key.
func (c *Coordinator) Results() []expt.Completed { return c.pool.Results() }

// Stats snapshots the embedded pool's counters.
func (c *Coordinator) Stats() expt.PoolStats { return c.pool.Stats() }

// runRemote is the pool's execution backend: enqueue the attempt and wait
// for a worker to lease, run, and report it (or for its lease to be
// reclaimed, which surfaces as a retryable error).
func (c *Coordinator) runRemote(j expt.Job) (*expt.JobResult, time.Duration, error) {
	t := &task{key: j.Key(), job: j, done: make(chan taskOutcome, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("dist: coordinator closed before job %.12s could run", t.key)
	}
	c.queue = append(c.queue, t)
	c.mu.Unlock()
	o := <-t.done
	return o.res, o.host, o.err
}

// Start listens on addr (":0" for ephemeral), serves the protocol in a
// background goroutine, and begins lease reaping. Returns the bound
// address for workers to -connect to.
func (c *Coordinator) Start(addr string) (string, error) {
	var handler http.Handler
	mux := http.NewServeMux()
	mux.HandleFunc(PathHello, c.handleHello)
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc(PathResult, c.handleResult)
	handler = mux
	if c.cfg.Faults != nil {
		in, err := netfault.New(*c.cfg.Faults)
		if err != nil {
			return "", fmt.Errorf("dist: %w", err)
		}
		c.faults = in
		handler = in.Handler(mux)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	c.ln = ln
	c.srv = &http.Server{Handler: handler}
	go func() { _ = c.srv.Serve(ln) }()
	go c.reap()
	return ln.Addr().String(), nil
}

// Addr returns the bound address after Start.
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Drain marks the campaign complete: every subsequent lease request is
// answered with StatusDrain so workers exit cleanly. Call once all Gets
// have returned. The first Drain also journals the netfault injection
// summary — the campaign's faults are final once no more work can run.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	already := c.draining
	c.draining = true
	c.mu.Unlock()
	if already {
		return
	}
	if rep := c.faults.Report(); rep.Injections > 0 {
		classes := make([]string, 0, len(rep.ByClass))
		for class := range rep.ByClass {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			c.jnl().Emit(journal.Event{
				Kind: journal.KindNetFault, Detail: class, Count: rep.ByClass[class],
			})
		}
	}
}

// Close drains, stops the reaper and the server, and fails any queued or
// leased attempts so no pool goroutine is left waiting.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.draining = true
	c.closed = true
	queued := c.queue
	c.queue = nil
	for _, l := range c.leases {
		l.t.done <- taskOutcome{err: fmt.Errorf("dist: coordinator closed with lease %s outstanding on worker %s", l.id, l.worker)}
	}
	c.leases = map[string]*lease{}
	c.mu.Unlock()
	for _, t := range queued {
		t.done <- taskOutcome{err: fmt.Errorf("dist: coordinator closed before job %.12s was leased", t.key)}
	}
	close(c.reapStop)
	<-c.reapDone
	if c.srv != nil {
		return c.srv.Close()
	}
	return nil
}

// Workers snapshots per-worker lease accounting for the live
// introspection server, sorted by worker id. Only live workers appear;
// evicted ones are folded into DistStats' departed aggregate.
func (c *Coordinator) Workers() []telemetry.WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]telemetry.WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, telemetry.WorkerStatus{
			ID:               w.id,
			Name:             w.name,
			Inflight:         w.inflight,
			Leases:           w.leases,
			Results:          w.results,
			Failures:         w.failures,
			Reclaims:         w.reclaims,
			CacheHits:        w.cacheHits,
			Discards:         w.discards,
			Breaker:          w.brk.String(),
			BreakerTrips:     w.brk.trips,
			SecondsSinceSeen: time.Since(w.lastSeen).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DistStats snapshots the coordinator-level degraded-mode accounting:
// live/departed fleet size, aggregate counters surviving eviction, local
// fallback activity, and the coordinator-side fault injector's report.
func (c *Coordinator) DistStats() telemetry.DistStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := telemetry.DistStats{
		WorkersLive:     len(c.workers),
		WorkersDeparted: c.gone.count,
		FallbackRuns:    c.fallbacks,
		CacheHits:       c.gone.cacheHits,
		Discards:        c.gone.discards,
		Reclaims:        c.gone.reclaims,
		BreakerTrips:    c.gone.trips,
	}
	for _, w := range c.workers {
		st.CacheHits += w.cacheHits
		st.Discards += w.discards
		st.Reclaims += w.reclaims
		st.BreakerTrips += w.brk.trips
	}
	if rep := c.faults.Report(); rep.Injections > 0 {
		st.NetfaultInjections = rep.ByClass
	}
	return st
}

// Fleet snapshots the fleet-level merged telemetry for the live
// introspection server's /fleet endpoint and the fleet_* OpenMetrics
// families: one row per live worker (accepted results, host cost,
// simulated cycles, shipped trace volume) plus a synthetic row carrying
// the departed aggregate so totals survive eviction.
func (c *Coordinator) Fleet() telemetry.FleetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var fs telemetry.FleetStats
	for _, w := range c.workers {
		fs.Workers = append(fs.Workers, telemetry.FleetWorker{
			ID: w.id, Name: w.name,
			Jobs: w.results, CacheHits: w.cacheHits, HostMS: w.hostMS,
			SimCycles: w.simCycles, TraceEvents: w.traceEvents, TraceDropped: w.traceDropped,
		})
	}
	sort.Slice(fs.Workers, func(i, j int) bool { return fs.Workers[i].ID < fs.Workers[j].ID })
	if c.gone.count > 0 {
		fs.Workers = append(fs.Workers, telemetry.FleetWorker{
			ID: "departed", Name: fmt.Sprintf("%d evicted worker(s)", c.gone.count),
			Jobs: c.gone.results, CacheHits: c.gone.cacheHits, HostMS: c.gone.hostMS,
			SimCycles: c.gone.simCycles, TraceEvents: c.gone.traceEvents, TraceDropped: c.gone.traceDropped,
		})
	}
	return fs.Totaled()
}

// JobWorkers snapshots which worker delivered each accepted job result
// (job key -> worker name), for per-worker timeline attribution. Jobs
// run by the local-fallback path are absent and render as "local".
func (c *Coordinator) JobWorkers() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.jobWorkers))
	for k, v := range c.jobWorkers {
		out[k] = v
	}
	return out
}

// reap reclaims dead leases: heartbeat silence for hbMiss intervals, or
// total lease age beyond LeaseTimeout. The reclaimed attempt fails with a
// "timed out" error, so expt.ErrClass files it with local timeouts and
// the pool re-issues it (bounded by Retries, spaced by RetryBackoff).
func (c *Coordinator) reap() {
	defer close(c.reapDone)
	tick := time.NewTicker(c.hbEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.reapStop:
			return
		case now := <-tick.C:
			c.mu.Lock()
			for id, l := range c.leases {
				var err error
				if silent := now.Sub(l.lastBeat); silent > time.Duration(c.hbMiss)*c.hbEvery {
					err = fmt.Errorf("lease %s: worker %s heartbeat lost; lease timed out after %s silence (re-issuing)",
						id, l.worker, silent.Round(time.Millisecond))
				} else if c.cfg.LeaseTimeout > 0 && now.Sub(l.granted) > c.cfg.LeaseTimeout {
					err = fmt.Errorf("lease %s: job %.12s on worker %s timed out after %s (lease abandoned)",
						id, l.t.key, l.worker, c.cfg.LeaseTimeout)
				}
				if err == nil {
					continue
				}
				delete(c.leases, id)
				c.jnl().Emit(journal.Event{
					Kind: journal.KindLeaseReclaim, Key: l.t.key,
					Worker: l.worker, Detail: id, Err: err.Error(),
				})
				if w := c.workers[l.worker]; w != nil {
					w.inflight--
					w.reclaims++
					if w.brk.failure(now, c.cfg.BreakerFailures) {
						c.logf("dist: breaker open for worker %s (%s): %d consecutive failures/reclaims", w.id, w.name, w.brk.fails)
						c.jnl().Emit(journal.Event{
							Kind: journal.KindBreakerTrip, Worker: w.id,
							Detail: w.name, Count: uint64(w.brk.fails),
						})
					}
				}
				l.t.done <- taskOutcome{err: err}
			}
			c.evictSilent(now)
			fallback := c.takeFallback(now)
			c.mu.Unlock()
			for _, t := range fallback {
				go c.runFallback(t)
			}
		}
	}
}

// evictSilent removes workers that hold no leases and have been silent
// past EvictAfter from the live fleet view, folding their counters into
// the departed aggregate so campaign totals survive. Called under c.mu.
func (c *Coordinator) evictSilent(now time.Time) {
	if c.evictAfter <= 0 {
		return
	}
	for id, w := range c.workers {
		if w.inflight > 0 || now.Sub(w.lastSeen) <= c.evictAfter {
			continue
		}
		delete(c.workers, id)
		c.gone.count++
		c.gone.leases += w.leases
		c.gone.results += w.results
		c.gone.failures += w.failures
		c.gone.reclaims += w.reclaims
		c.gone.cacheHits += w.cacheHits
		c.gone.discards += w.discards
		c.gone.trips += w.brk.trips
		c.gone.hostMS += w.hostMS
		c.gone.simCycles += w.simCycles
		c.gone.traceEvents += w.traceEvents
		c.gone.traceDropped += w.traceDropped
		c.logf("dist: evicted worker %s (%s) after %s silence (leases=%d results=%d)",
			w.id, w.name, now.Sub(w.lastSeen).Round(time.Second), w.leases, w.results)
		c.jnl().Emit(journal.Event{Kind: journal.KindWorkerEvict, Worker: w.id, Detail: w.name})
	}
}

// takeFallback pops the queue for local execution when the fleet has
// been silent past the LocalFallback deadline while jobs are stuck
// queued with no leases outstanding. Called under c.mu; the caller runs
// the returned tasks outside the lock.
func (c *Coordinator) takeFallback(now time.Time) []*task {
	if c.cfg.LocalFallback <= 0 || len(c.queue) == 0 || len(c.leases) > 0 {
		return nil
	}
	if now.Sub(c.lastWorker) <= c.cfg.LocalFallback {
		return nil
	}
	tasks := c.queue
	c.queue = nil
	c.fallbacks += uint64(len(tasks))
	c.logf("dist: no worker contact for %s; running %d queued job(s) locally on the coordinator",
		now.Sub(c.lastWorker).Round(time.Second), len(tasks))
	c.jnl().Emit(journal.Event{Kind: journal.KindLocalFallback, Count: uint64(len(tasks))})
	return tasks
}

// runFallback executes one queued task on the coordinator itself through
// the same RunJob path a worker would use (degraded mode: the fleet never
// showed up or vanished entirely).
func (c *Coordinator) runFallback(t *task) {
	res, host, err := c.localRun(t.job)
	t.done <- taskOutcome{res: res, host: host, err: err}
}

// decode parses a JSON request body, answering 400 on malformed input.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleHello(w http.ResponseWriter, r *http.Request) {
	var req Hello
	if !decode(w, r, &req) {
		return
	}
	if req.Proto != Proto {
		reply(w, HelloReply{OK: false, Reason: fmt.Sprintf(
			"protocol mismatch: worker speaks %q, coordinator %q", req.Proto, Proto)})
		return
	}
	// Capability validation, in the spirit of the manifest grid header:
	// refuse up front rather than let an incompatible worker compute
	// results the campaign cannot use.
	sk := c.cfg.Pool.SweepKernel.String()
	ek := c.cfg.Pool.SimEngine.String()
	if !contains(req.SweepKernels, sk) {
		reply(w, HelloReply{OK: false, Reason: fmt.Sprintf(
			"campaign requires sweep kernel %q; worker supports %v", sk, req.SweepKernels)})
		return
	}
	if !contains(req.SimEngines, ek) {
		reply(w, HelloReply{OK: false, Reason: fmt.Sprintf(
			"campaign requires sim engine %q; worker supports %v", ek, req.SimEngines)})
		return
	}
	// Mem-path support is a protocol extension: workers predating it omit
	// MemPaths and implicitly run the fast path, so only a non-default
	// campaign path needs explicit support.
	mp := c.cfg.Pool.MemPath.String()
	if c.cfg.Pool.MemPath != kernel.MemPathFast && !contains(req.MemPaths, mp) {
		reply(w, HelloReply{OK: false, Reason: fmt.Sprintf(
			"campaign requires mem path %q; worker supports %v", mp, req.MemPaths)})
		return
	}
	name := req.Name
	if name == "" {
		name = "anonymous"
	}
	c.mu.Lock()
	c.wseq++
	id := fmt.Sprintf("w%03d", c.wseq)
	c.workers[id] = &workerState{id: id, name: name, lastSeen: time.Now()}
	c.lastWorker = time.Now()
	c.mu.Unlock()
	c.jnl().Emit(journal.Event{Kind: journal.KindWorkerJoin, Worker: id, Detail: name})
	rep := HelloReply{
		OK:          true,
		WorkerID:    id,
		Tool:        c.cfg.Tool,
		Grid:        c.cfg.Grid,
		SweepKernel: sk,
		SimEngine:   ek,
		MemPath:     mp,
		HeartbeatMS: c.hbEvery.Milliseconds(),
	}
	if t := c.cfg.Pool.Telemetry; t != nil {
		rep.Telemetry = &TelemetryOptions{
			SampleEvery: t.SampleEvery, MaxRows: t.MaxRows, TraceEvents: t.TraceEvents,
		}
	}
	reply(w, rep)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[req.WorkerID]
	if ws == nil {
		http.Error(w, "unknown worker (hello first)", http.StatusConflict)
		return
	}
	now := time.Now()
	ws.lastSeen = now
	c.lastWorker = now
	if ok, wait := ws.brk.allow(now, c.brkCool); !ok {
		// Quarantined: answer with a wait sized to the remaining cooldown
		// (or one poll interval while a half-open probe is outstanding) so
		// the worker paces itself without being drained.
		ms := wait.Milliseconds()
		if ms <= 0 || ms > c.waitMS {
			ms = c.waitMS
		}
		reply(w, LeaseReply{Status: StatusWait, WaitMS: ms})
		return
	}
	if len(c.queue) == 0 {
		if c.draining {
			reply(w, LeaseReply{Status: StatusDrain})
			return
		}
		reply(w, LeaseReply{Status: StatusWait, WaitMS: c.waitMS})
		return
	}
	t := c.queue[0]
	c.queue = c.queue[1:]
	c.seq++
	l := &lease{
		id:       fmt.Sprintf("lease-%06d", c.seq),
		t:        t,
		worker:   req.WorkerID,
		granted:  now,
		lastBeat: now,
	}
	c.leases[l.id] = l
	ws.leases++
	ws.inflight++
	ws.brk.granted()
	c.jnl().Emit(journal.Event{
		Kind: journal.KindJobLease, Key: t.key, Worker: req.WorkerID, Detail: l.id,
	})
	job := t.job
	reply(w, LeaseReply{Status: StatusJob, LeaseID: l.id, Key: t.key, Job: &job})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ws := c.workers[req.WorkerID]; ws != nil {
		ws.lastSeen = time.Now()
		c.lastWorker = ws.lastSeen
	}
	l := c.leases[req.LeaseID]
	if l == nil || l.worker != req.WorkerID {
		reply(w, HeartbeatReply{OK: false, Reason: "lease not held (reclaimed or resolved)"})
		return
	}
	l.lastBeat = time.Now()
	reply(w, HeartbeatReply{OK: true})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	ws := c.workers[req.WorkerID]
	if ws != nil {
		ws.lastSeen = now
		c.lastWorker = now
	}
	l := c.leases[req.LeaseID]
	if l == nil || l.worker != req.WorkerID {
		// The lease was reclaimed (and possibly re-issued) before this
		// result arrived; the late result is discarded so the campaign
		// has exactly one authoritative execution per attempt.
		if ws != nil {
			ws.discards++
		}
		c.jnl().Emit(journal.Event{
			Kind: journal.KindJobReport, Key: req.Key, Worker: req.WorkerID,
			Status: "discarded", Detail: req.LeaseID, HostMS: req.HostMS,
		})
		reply(w, ResultReply{OK: false, Reason: "lease not held; result discarded"})
		return
	}
	delete(c.leases, req.LeaseID)
	if ws != nil {
		ws.inflight--
	}
	name := req.WorkerID
	if ws != nil {
		name = fmt.Sprintf("%s (%s)", ws.name, ws.id)
	}
	o := taskOutcome{host: time.Duration(req.HostMS * float64(time.Millisecond))}
	switch {
	case req.Err != "":
		o.err = fmt.Errorf("worker %s: %s", name, req.Err)
	case req.Key != l.t.key:
		o.err = fmt.Errorf("worker %s: result key %.12s does not match lease key %.12s (schema skew?)",
			name, req.Key, l.t.key)
	case req.Result == nil:
		o.err = fmt.Errorf("worker %s: result missing from report", name)
	default:
		o.res = req.Result
	}
	status := "ran"
	switch {
	case o.err != nil:
		status = "failed"
	case req.Cached:
		status = "cached"
	}
	if ws != nil {
		if o.err != nil {
			ws.failures++
			if ws.brk.failure(now, c.cfg.BreakerFailures) {
				c.logf("dist: breaker open for worker %s (%s): %d consecutive failures", ws.id, ws.name, ws.brk.fails)
				c.jnl().Emit(journal.Event{
					Kind: journal.KindBreakerTrip, Worker: ws.id,
					Detail: ws.name, Count: uint64(ws.brk.fails),
				})
			}
		} else {
			ws.results++
			if req.Cached {
				ws.cacheHits++
			}
			ws.brk.success()
			// Fleet-observability accounting and timeline attribution:
			// only accepted results count, so utilization reflects work
			// the campaign actually used.
			ws.hostMS += req.HostMS
			ws.simCycles += o.res.WallCycles
			if o.res.Telem != nil {
				ws.traceEvents += uint64(len(o.res.Telem.Trace))
				ws.traceDropped += o.res.Telem.TraceDropped
			}
			c.jobWorkers[req.Key] = ws.name
		}
	}
	jev := journal.Event{
		Kind: journal.KindJobReport, Key: req.Key, Worker: req.WorkerID,
		Status: status, Detail: req.LeaseID, HostMS: req.HostMS,
	}
	if o.err != nil {
		jev.Err = expt.ErrClass(o.err)
	}
	c.jnl().Emit(jev)
	l.t.done <- o
	reply(w, ResultReply{OK: true})
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
