package dist

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist/netfault"
	"repro/internal/expt"
)

// TestNetfaultTransportFaultsAreSurvived runs a fake-execution campaign
// with every worker-side fault class armed at a rate that guarantees hits,
// and requires the campaign to complete with correct results anyway —
// the tentpole resilience property at protocol granularity.
func TestNetfaultTransportFaultsAreSurvived(t *testing.T) {
	c := startCoordinator(t, Config{
		Heartbeat:     20 * time.Millisecond,
		HeartbeatMiss: 3,
		WaitMS:        10,
		Pool:          expt.PoolConfig{Workers: 2, Retries: 4},
	})
	var runs atomic.Int64
	run := func(j expt.Job) (*expt.JobResult, error) {
		runs.Add(1)
		return testResult(j), nil
	}
	faults := &netfault.Spec{
		Seed:        11,
		Classes:     []string{"drop", "delay", "duplicate", "reorder", "reset", "throttle"},
		Rate:        0.25,
		Delay:       2 * time.Millisecond,
		MaxPerClass: 8,
	}
	_, done1 := startWorker(t, c, WorkerConfig{Name: "chaotic-a", Faults: faults}, run)
	_, done2 := startWorker(t, c, WorkerConfig{Name: "chaotic-b", Faults: faults}, run)

	jobs := make([]expt.Job, 0, 8)
	for seed := int64(1); seed <= 8; seed++ {
		jobs = append(jobs, testJob("astar", seed))
	}
	c.Prefetch(jobs)
	for _, j := range jobs {
		r, err := c.Get(j)
		if err != nil {
			t.Fatalf("job seed %d failed under faults: %v", j.Cfg.Seed, err)
		}
		if r.Seed != j.Cfg.Seed {
			t.Fatalf("job seed %d came back as %d", j.Cfg.Seed, r.Seed)
		}
	}
	c.Drain()
	waitWorker(t, done1, nil)
	waitWorker(t, done2, nil)
	if rs := c.Results(); len(rs) != 8 {
		t.Fatalf("Results returned %d jobs, want 8", len(rs))
	}
}

// TestDistErrClassThroughNetfaultRetries is the satellite pin for error
// classification: with injected connection resets in the path, a worker
// panic must still classify as a panic, a dead lease as a timeout, and an
// unreachable coordinator as a plain connection error — netfault's own
// error strings must never masquerade as any of them.
func TestDistErrClassThroughNetfaultRetries(t *testing.T) {
	// One deterministic reset, spent on the first request (the opening
	// hello): the fault is guaranteed to fire in every case, and the lease
	// grant itself is never orphaned — so the error under test, not a
	// reclaim, is always what surfaces.
	resets := func(seed int64) *netfault.Spec {
		return &netfault.Spec{Seed: seed, Classes: []string{"reset"}, MaxPerClass: 1}
	}
	for _, tc := range []struct {
		name  string
		setup func(t *testing.T) error // returns the attempt error to classify
		check func(t *testing.T, cls string, err error)
	}{
		{
			name: "worker panic survives resets",
			setup: func(t *testing.T) error {
				c := startCoordinator(t, Config{Pool: expt.PoolConfig{Workers: 1}})
				_, done := startWorker(t, c, WorkerConfig{Name: "panicky", Faults: resets(21)},
					func(j expt.Job) (*expt.JobResult, error) { panic("shadow map desynced") })
				_, err := c.Get(testJob("astar", 1))
				c.Drain()
				waitWorker(t, done, nil)
				return err
			},
			check: func(t *testing.T, cls string, err error) {
				if !strings.HasPrefix(cls, "panic: ") || !strings.Contains(cls, "shadow map desynced") {
					t.Fatalf("ErrClass = %q (err %v), want the worker panic", cls, err)
				}
			},
		},
		{
			name: "reclaimed lease classifies as timeout",
			setup: func(t *testing.T) error {
				c := startCoordinator(t, Config{
					Heartbeat:     20 * time.Millisecond,
					HeartbeatMiss: 2,
					WaitMS:        10,
					Pool:          expt.PoolConfig{Workers: 1},
				})
				// The worker crashes holding its lease; with resets in the
				// path the reclaim error must still say "timed out".
				_, crashDone := startWorker(t, c,
					WorkerConfig{Name: "crasher", CrashAfterLease: 1, Faults: resets(22)}, nil)
				errCh := make(chan error, 1)
				go func() {
					_, err := c.Get(testJob("astar", 2))
					errCh <- err
				}()
				defer waitWorker(t, crashDone, ErrCrashed)
				select {
				case err := <-errCh:
					return err
				case <-time.After(10 * time.Second):
					t.Fatal("reclaim never fired")
					return nil
				}
			},
			check: func(t *testing.T, cls string, err error) {
				if cls != "timeout" {
					t.Fatalf("ErrClass = %q (err %v), want timeout", cls, err)
				}
			},
		},
		{
			name: "connection refused stays a plain error",
			setup: func(t *testing.T) error {
				w := NewWorker(WorkerConfig{
					Connect:      "127.0.0.1:1", // reserved port; nothing listens
					HelloTimeout: 300 * time.Millisecond,
					Faults:       &netfault.Spec{Seed: 23, Classes: []string{"reset"}, MaxPerClass: 1},
					Backoff:      &expt.Backoff{Base: 10 * time.Millisecond, Factor: 2, Max: 50 * time.Millisecond},
				})
				return w.Run()
			},
			check: func(t *testing.T, cls string, err error) {
				if !strings.HasPrefix(cls, "error: ") || !strings.Contains(err.Error(), "unreachable") {
					t.Fatalf("ErrClass = %q (err %v), want a plain unreachable-coordinator error", cls, err)
				}
				if strings.Contains(cls, "timed out") || strings.Contains(cls, "panic") {
					t.Fatalf("netfault text leaked a sentinel into ErrClass %q", cls)
				}
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.setup(t)
			if err == nil {
				t.Fatal("want an error to classify")
			}
			tc.check(t, expt.ErrClass(err), err)
		})
	}
}

// TestDistReclaimRaceDiscardsLateResultOnce is the satellite pin for the
// heartbeat-timeout reclaim racing a late result: the reclaimed lease's
// result must be discarded (never double-resolving the attempt) and the
// discard must be counted exactly once.
func TestDistReclaimRaceDiscardsLateResultOnce(t *testing.T) {
	c := startCoordinator(t, Config{
		Heartbeat:     20 * time.Millisecond,
		HeartbeatMiss: 2,
		WaitMS:        10,
		Pool:          expt.PoolConfig{Workers: 1, Retries: 0},
	})
	w := NewWorker(WorkerConfig{Connect: c.Addr(), HelloTimeout: 5 * time.Second})
	if err := w.hello(); err != nil {
		t.Fatal(err)
	}
	j := testJob("astar", 9)
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Get(j)
		errCh <- err
	}()
	var rep LeaseReply
	for {
		if err := w.post(PathLease, LeaseRequest{WorkerID: w.id}, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Status == StatusJob {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Hold the lease silently (no heartbeats) until reclaim fires and the
	// attempt fails as a timeout.
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("attempt resolved without a result")
		}
		if cls := expt.ErrClass(err); cls != "timeout" {
			t.Fatalf("reclaim classified as %q, want timeout", cls)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reclaim never fired")
	}
	// Now the result arrives late. Exactly one discard; the resolved
	// attempt must not be disturbed.
	res := ResultRequest{WorkerID: w.id, LeaseID: rep.LeaseID, Key: rep.Key, Result: testResult(j)}
	var rr ResultReply
	if err := w.post(PathResult, res, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.OK {
		t.Fatal("late result for a reclaimed lease was accepted")
	}
	st := c.DistStats()
	if st.Discards != 1 {
		t.Fatalf("discards = %d, want exactly 1", st.Discards)
	}
	if st.Reclaims != 1 {
		t.Fatalf("reclaims = %d, want 1", st.Reclaims)
	}
}

// TestDistWorkerEviction is the satellite pin for fleet-view hygiene: a
// worker that joined, finished, and went silent must leave the /workers
// view after EvictAfter, with its counters folded into the departed
// aggregate rather than lost.
func TestDistWorkerEviction(t *testing.T) {
	c := startCoordinator(t, Config{
		Heartbeat:  10 * time.Millisecond,
		EvictAfter: 150 * time.Millisecond,
		Pool:       expt.PoolConfig{Workers: 1},
	})
	var runs atomic.Int64
	_, done := startWorker(t, c, WorkerConfig{Name: "ghost", MaxJobs: 1}, func(j expt.Job) (*expt.JobResult, error) {
		runs.Add(1)
		return testResult(j), nil
	})
	if _, err := c.Get(testJob("astar", 3)); err != nil {
		t.Fatal(err)
	}
	waitWorker(t, done, nil) // MaxJobs reached; the worker exits and goes silent
	if len(c.Workers()) != 1 {
		t.Fatalf("worker missing from live view before eviction: %+v", c.Workers())
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(c.Workers()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never evicted; live view %+v", c.Workers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := c.DistStats()
	if st.WorkersLive != 0 || st.WorkersDeparted != 1 {
		t.Fatalf("DistStats after eviction = %+v", st)
	}
	// The departed worker's work survives in the aggregate.
	c.mu.Lock()
	g := c.gone
	c.mu.Unlock()
	if g.results != 1 || g.leases != 1 {
		t.Fatalf("departed aggregate lost counters: %+v", g)
	}
}

// TestDistBreakerQuarantinesFlappingWorker pins the circuit breaker: a
// worker failing every job trips after BreakerFailures consecutive
// failures, sits out the cooldown, probes half-open, and closes again
// once it heals — and the campaign completes through the flap.
func TestDistBreakerQuarantinesFlappingWorker(t *testing.T) {
	c := startCoordinator(t, Config{
		Heartbeat:       20 * time.Millisecond,
		WaitMS:          10,
		BreakerFailures: 2,
		BreakerCooldown: 100 * time.Millisecond,
		Pool:            expt.PoolConfig{Workers: 1, Retries: 4},
	})
	var calls atomic.Int64
	_, done := startWorker(t, c, WorkerConfig{Name: "flapper"}, func(j expt.Job) (*expt.JobResult, error) {
		if calls.Add(1) <= 2 {
			return nil, fmt.Errorf("transient tag-cache corruption")
		}
		return testResult(j), nil
	})
	start := time.Now()
	r, err := c.Get(testJob("astar", 5))
	if err != nil {
		t.Fatalf("campaign failed through the flap: %v", err)
	}
	if r.Seed != 5 {
		t.Fatalf("wrong result %+v", r)
	}
	// The third attempt had to wait out the breaker cooldown.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("healed in %v — the quarantine never held", elapsed)
	}
	c.Drain()
	waitWorker(t, done, nil)
	st := c.DistStats()
	if st.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].Breaker != BreakerClosed {
		t.Fatalf("healed worker's breaker = %+v, want closed", ws)
	}
}

// TestDistWorkerCacheReplay pins the worker-side result cache: a worker
// that rejoins a campaign (same tool/grid) with its cache file serves
// every completed key from cache — zero re-executions, results intact.
func TestDistWorkerCacheReplay(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "worker-cache.jsonl")
	var runs atomic.Int64
	run := func(j expt.Job) (*expt.JobResult, error) {
		runs.Add(1)
		return testResult(j), nil
	}
	jobs := make([]expt.Job, 0, 4)
	for seed := int64(1); seed <= 4; seed++ {
		jobs = append(jobs, testJob("astar", seed))
	}

	// First campaign populates the cache.
	c1 := startCoordinator(t, Config{Pool: expt.PoolConfig{Workers: 2}})
	_, done1 := startWorker(t, c1, WorkerConfig{Name: "original", CachePath: cachePath}, run)
	for _, j := range jobs {
		if _, err := c1.Get(j); err != nil {
			t.Fatal(err)
		}
	}
	c1.Drain()
	waitWorker(t, done1, nil)
	if got := runs.Load(); got != 4 {
		t.Fatalf("first campaign ran %d jobs, want 4", got)
	}

	// The worker "rejoins" (a fresh process with the same cache file) a
	// fresh coordinator for the same campaign: every key replays.
	c2 := startCoordinator(t, Config{Pool: expt.PoolConfig{Workers: 2}})
	w2, done2 := startWorker(t, c2, WorkerConfig{Name: "rejoiner", CachePath: cachePath}, run)
	for _, j := range jobs {
		r, err := c2.Get(j)
		if err != nil {
			t.Fatal(err)
		}
		if r.Seed != j.Cfg.Seed || r.WallCycles != uint64(j.Cfg.Seed)*100 {
			t.Fatalf("cached replay corrupted job seed %d: %+v", j.Cfg.Seed, r)
		}
	}
	c2.Drain()
	waitWorker(t, done2, nil)
	if got := runs.Load(); got != 4 {
		t.Fatalf("rejoin re-executed: %d total runs, want the original 4", got)
	}
	if got := w2.CacheHits(); got != 4 {
		t.Fatalf("worker counted %d cache hits, want 4", got)
	}
	if st := c2.DistStats(); st.CacheHits != 4 {
		t.Fatalf("coordinator counted %d cache hits, want 4 (stats %+v)", st.CacheHits, st)
	}
}

// TestDistCacheRefusesForeignGrid pins the cache's safety valve: a cache
// written for one campaign must not be replayed into another — the worker
// logs, drops the cache, and runs everything fresh.
func TestDistCacheRefusesForeignGrid(t *testing.T) {
	cachePath := filepath.Join(t.TempDir(), "worker-cache.jsonl")
	m, err := expt.OpenManifestFor(cachePath, expt.ManifestMeta{Tool: "sweep", Grid: "some-other-grid"})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()

	c := startCoordinator(t, Config{Pool: expt.PoolConfig{Workers: 1}})
	var runs atomic.Int64
	_, done := startWorker(t, c, WorkerConfig{Name: "mismatched", CachePath: cachePath},
		func(j expt.Job) (*expt.JobResult, error) {
			runs.Add(1)
			return testResult(j), nil
		})
	if _, err := c.Get(testJob("astar", 1)); err != nil {
		t.Fatal(err)
	}
	c.Drain()
	waitWorker(t, done, nil)
	if runs.Load() != 1 {
		t.Fatalf("ran %d jobs, want 1 fresh execution (foreign cache must be ignored)", runs.Load())
	}
	if st := c.DistStats(); st.CacheHits != 0 {
		t.Fatalf("foreign cache produced %d hits", st.CacheHits)
	}
}

// TestDistLocalFallbackWhenFleetEmpty pins the last-resort degraded mode:
// with jobs queued, no leases outstanding, and no worker contact past the
// deadline, the coordinator runs the queue itself.
func TestDistLocalFallbackWhenFleetEmpty(t *testing.T) {
	c := startCoordinator(t, Config{
		Heartbeat:     10 * time.Millisecond,
		LocalFallback: 60 * time.Millisecond,
		Pool:          expt.PoolConfig{Workers: 2},
	})
	var localRuns atomic.Int64
	c.SetLocalRun(func(j expt.Job) (*expt.JobResult, time.Duration, error) {
		localRuns.Add(1)
		return testResult(j), 3 * time.Millisecond, nil
	})
	jobs := []expt.Job{testJob("astar", 1), testJob("astar", 2), testJob("astar", 3)}
	c.Prefetch(jobs)
	for _, j := range jobs {
		r, err := c.Get(j)
		if err != nil {
			t.Fatalf("fallback failed job seed %d: %v", j.Cfg.Seed, err)
		}
		if r.Seed != j.Cfg.Seed {
			t.Fatalf("fallback corrupted job seed %d: %+v", j.Cfg.Seed, r)
		}
	}
	if got := localRuns.Load(); got != 3 {
		t.Fatalf("local fallback ran %d jobs, want 3", got)
	}
	st := c.DistStats()
	if st.FallbackRuns != 3 {
		t.Fatalf("FallbackRuns = %d, want 3 (stats %+v)", st.FallbackRuns, st)
	}
}

// TestDistDocumentsByteIdenticalUnderNetChaos is the tentpole acceptance
// test for the cornucopia-netchaos/v1 campaign mode: the same real
// simulation grid, run under every fault scenario, must produce canonical
// documents byte-identical to an undisturbed local run.
func TestDistDocumentsByteIdenticalUnderNetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation campaign; skipped in -short")
	}
	local := expt.NewPool(expt.PoolConfig{Workers: 2})
	want := runRealCampaign(t, local, 2)

	type scenario struct {
		name     string
		worker   *netfault.Spec // worker-side faults (both workers)
		coord    *netfault.Spec // coordinator-side faults
		crasher  bool
		useCache bool // run the campaign twice through one cache file
	}
	for _, sc := range []scenario{
		{
			name:    "drop+crash",
			worker:  &netfault.Spec{Seed: 31, Classes: []string{"drop"}, Rate: 0.3, MaxPerClass: 10},
			crasher: true,
		},
		{
			name: "delay+duplicate+reorder",
			worker: &netfault.Spec{Seed: 32, Classes: []string{"delay", "duplicate", "reorder"},
				Rate: 0.4, Delay: 2 * time.Millisecond, MaxPerClass: 10},
		},
		{
			name: "reset+throttle",
			worker: &netfault.Spec{Seed: 33, Classes: []string{"reset", "throttle"},
				Rate: 0.3, Delay: 2 * time.Millisecond, MaxPerClass: 10},
		},
		{
			name:  "coordinator partition",
			coord: &netfault.Spec{Seed: 34, Classes: []string{"partition"}, PartitionFrac: 1, MaxPerClass: 6},
		},
		{
			name:     "rejoin replays cache",
			useCache: true,
		},
	} {
		t.Run(sc.name, func(t *testing.T) {
			runOnce := func(cachePath string) ([]byte, *Coordinator) {
				cfg := Config{
					Heartbeat:     20 * time.Millisecond,
					HeartbeatMiss: 3,
					WaitMS:        10,
					Faults:        sc.coord,
					Pool:          expt.PoolConfig{Workers: 2, Retries: 4},
				}
				c := startCoordinator(t, cfg)
				if sc.crasher {
					c.Prefetch(realGrid())
					_, crashDone := startWorker(t, c, WorkerConfig{Name: "crasher", CrashAfterLease: 1}, nil)
					waitWorker(t, crashDone, ErrCrashed)
				}
				var dones []<-chan error
				for i := 0; i < 2; i++ {
					wcfg := WorkerConfig{Name: fmt.Sprintf("w%d", i), Faults: sc.worker}
					// One cache per worker process: only worker 0 carries the
					// rejoin cache across the two runs.
					if cachePath != "" && i == 0 {
						wcfg.CachePath = cachePath
					}
					_, done := startWorker(t, c, wcfg, nil)
					dones = append(dones, done)
				}
				got := runRealCampaign(t, c, 2)
				c.Drain()
				for _, done := range dones {
					waitWorker(t, done, nil)
				}
				return got, c
			}
			if sc.useCache {
				cachePath := filepath.Join(t.TempDir(), "rejoin-cache.jsonl")
				first, _ := runOnce(cachePath)
				if !bytes.Equal(first, want) {
					t.Fatalf("cache-populating run differs from local:\n%s", first)
				}
				// The fleet "rejoins" with the populated cache: identical
				// document, zero re-executions of cached keys.
				second, c2 := runOnce(cachePath)
				if !bytes.Equal(second, want) {
					t.Fatalf("rejoin run differs from local:\n%s", second)
				}
				if st := c2.DistStats(); st.CacheHits == 0 {
					t.Fatalf("rejoin served no keys from cache (stats %+v)", st)
				}
				return
			}
			got, c := runOnce("")
			if !bytes.Equal(got, want) {
				t.Fatalf("scenario %s: distributed document differs from local run:\nlocal:\n%s\ndist:\n%s",
					sc.name, want, got)
			}
			if sc.coord != nil {
				if st := c.DistStats(); len(st.NetfaultInjections) == 0 {
					t.Fatalf("coordinator-side faults armed but nothing injected: %+v", st)
				}
			}
		})
	}
}
