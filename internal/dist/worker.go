package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist/netfault"
	"repro/internal/expt"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ErrCrashed reports that the CrashAfterLease fault-injection hook fired:
// the worker stopped dead mid-lease — no result, no further heartbeats —
// exactly as a killed process would. Tests and the CI smoke use it to
// prove lease reclaim re-issues the job elsewhere.
var ErrCrashed = errors.New("dist: worker crashed by fault-injection hook")

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// Connect is the coordinator address (host:port, or a full http://
	// base URL).
	Connect string
	// Name labels this worker in coordinator output ("host:pid" style);
	// identity comes from the coordinator-assigned worker id.
	Name string
	// Parallel is how many leases to hold concurrently (default 1; the
	// coordinator's pool width bounds the fleet-wide total anyway).
	Parallel int
	// MaxJobs stops the worker after reporting that many results
	// (0 = run until drained).
	MaxJobs int
	// HelloTimeout bounds how long the worker retries its opening hello
	// while the coordinator is still coming up (default 10s).
	HelloTimeout time.Duration
	// CrashAfterLease > 0 makes the worker die (see ErrCrashed) upon
	// taking its Nth lease, before running or reporting it.
	CrashAfterLease int
	// Faults, when non-nil, arms worker-side network fault injection on
	// every protocol request (netfault.Transport): drop, delay, duplicate,
	// reorder, reset and throttle, decided deterministically per request.
	Faults *netfault.Spec
	// CachePath, when set, opens a worker-side result cache (an
	// expt.Manifest keyed by job content hash, validated against the
	// campaign's tool/grid at join). Completed keys leased again — e.g. to
	// a worker rejoining after a crash, when the coordinator's retry
	// re-issues a reclaimed job — are replayed from the cache instead of
	// re-executed, reported with Cached=true and the original run's cost.
	CachePath string
	// ReconnectTimeout bounds how long the lease loop retries transport
	// failures (with backoff) before concluding the coordinator is gone
	// and exiting cleanly (default 5s).
	ReconnectTimeout time.Duration
	// Backoff spaces hello/lease/report retries; nil uses a default
	// (100ms base, x2, 1s cap, 25% jitter).
	Backoff *expt.Backoff
	// Logf, when set, receives progress lines (cmd/worker wires stderr).
	Logf func(format string, args ...any)
	// Observe, when set, receives one update per leased job outcome
	// (ran/cached/failed) for host-side introspection — cmd/worker's
	// -live server chains it into telemetry.Live.Observe. Called from
	// lease-serving goroutines; the receiver must be concurrency-safe.
	Observe func(telemetry.JobUpdate)
}

// Worker pulls leases from a coordinator and runs them through the same
// expt.RunJob path a local pool uses, under the kernel/engine/telemetry
// configuration the coordinator dictated at hello.
type Worker struct {
	cfg    WorkerConfig
	base   string
	client *http.Client

	id         string
	hb         time.Duration
	telem      *telemetry.Options
	sk         kernel.SweepKernel
	ek         sim.EngineKind
	mp         kernel.MemPath
	tool, grid string
	cache      *expt.Manifest
	backoff    expt.Backoff

	// run is the execution seam (tests inject fakes; default expt.RunJob).
	run func(expt.Job) (*expt.JobResult, error)

	leased    atomic.Int64
	reported  atomic.Int64
	cacheHits atomic.Int64
	stopOnce  sync.Once
	stop      chan struct{}

	snapMu sync.Mutex
	snaps  []telemetry.Keyed // telemetry shipped with results, for -live /metrics
}

// NewWorker builds a worker; call Run to serve.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 10 * time.Second
	}
	if cfg.ReconnectTimeout <= 0 {
		cfg.ReconnectTimeout = 5 * time.Second
	}
	base := cfg.Connect
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	w := &Worker{
		cfg:    cfg,
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
		stop:   make(chan struct{}),
	}
	if cfg.Backoff != nil {
		w.backoff = *cfg.Backoff
	} else {
		w.backoff = expt.Backoff{
			Base: 100 * time.Millisecond, Factor: 2, Max: time.Second, Jitter: 0.25,
		}
		if cfg.Faults != nil {
			w.backoff.Seed = cfg.Faults.Seed
		}
	}
	w.run = func(j expt.Job) (*expt.JobResult, error) {
		return expt.RunJob(j, w.telem, w.sk, w.ek, w.mp)
	}
	return w
}

// SetRun replaces the job execution seam (tests only).
func (w *Worker) SetRun(run func(expt.Job) (*expt.JobResult, error)) { w.run = run }

// Reported returns how many results this worker has delivered.
func (w *Worker) Reported() int { return int(w.reported.Load()) }

// CacheHits returns how many results were replayed from the local cache.
func (w *Worker) CacheHits() int { return int(w.cacheHits.Load()) }

// Snapshots returns the telemetry snapshots of every job this worker has
// completed so far, keyed by job for deterministic merging — the
// metrics source behind cmd/worker's -live server. Safe for concurrent
// use.
func (w *Worker) Snapshots() []telemetry.Keyed {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	return append([]telemetry.Keyed(nil), w.snaps...)
}

// observe reports one job outcome to the configured Observe hook and
// retains its telemetry snapshot for Snapshots.
func (w *Worker) observe(rep LeaseReply, res ResultRequest, status string) {
	if res.Result != nil && res.Result.Telem != nil {
		w.snapMu.Lock()
		w.snaps = append(w.snaps, telemetry.Keyed{Key: res.Key, Snap: res.Result.Telem})
		w.snapMu.Unlock()
	}
	if w.cfg.Observe == nil {
		return
	}
	u := telemetry.JobUpdate{Key: res.Key, Status: status, HostMS: res.HostMS, Err: res.Err}
	if rep.Job != nil {
		u.Workload = rep.Job.Workload.String()
		u.Condition = rep.Job.Cond.Name
		u.Seed = rep.Job.Cfg.Seed
	}
	w.cfg.Observe(u)
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// post sends one protocol request and decodes the reply into out.
func (w *Worker) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("dist: encoding %s request: %w", path, err)
	}
	resp, err := w.client.Post(w.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: %s: coordinator answered %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("dist: decoding %s reply: %w", path, err)
	}
	return nil
}

// hello announces the worker, retrying while the coordinator comes up,
// and adopts the campaign configuration from the reply.
func (w *Worker) hello() error {
	req := Hello{
		Proto: Proto,
		Name:  w.cfg.Name,
		SweepKernels: []string{
			kernel.SweepKernelWord.String(), kernel.SweepKernelGranule.String(),
		},
		SimEngines: []string{
			sim.EngineFast.String(), sim.EngineClassic.String(),
		},
		MemPaths: []string{
			kernel.MemPathFast.String(), kernel.MemPathFlat.String(),
		},
	}
	deadline := time.Now().Add(w.cfg.HelloTimeout)
	for attempt := 1; ; attempt++ {
		var rep HelloReply
		err := w.post(PathHello, req, &rep)
		if err == nil && !rep.OK {
			return fmt.Errorf("dist: coordinator refused worker: %s", rep.Reason)
		}
		if err == nil {
			w.id = rep.WorkerID
			w.tool, w.grid = rep.Tool, rep.Grid
			w.hb = time.Duration(rep.HeartbeatMS) * time.Millisecond
			if w.hb <= 0 {
				w.hb = time.Second
			}
			if rep.Telemetry != nil {
				w.telem = &telemetry.Options{
					SampleEvery: rep.Telemetry.SampleEvery, MaxRows: rep.Telemetry.MaxRows,
					TraceEvents: rep.Telemetry.TraceEvents,
				}
			}
			if w.sk, err = kernel.ParseSweepKernel(rep.SweepKernel); err != nil {
				return fmt.Errorf("dist: coordinator sent unusable kernel: %w", err)
			}
			if w.ek, err = sim.ParseEngineKind(rep.SimEngine); err != nil {
				return fmt.Errorf("dist: coordinator sent unusable engine: %w", err)
			}
			if w.mp, err = kernel.ParseMemPath(rep.MemPath); err != nil {
				return fmt.Errorf("dist: coordinator sent unusable mem path: %w", err)
			}
			w.logf("worker %s joined %s campaign %q (kernel=%s engine=%s mempath=%s heartbeat=%s)",
				w.id, rep.Tool, rep.Grid, w.sk, w.ek, w.mp, w.hb)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dist: coordinator unreachable after %s: %w", w.cfg.HelloTimeout, err)
		}
		if !w.backoff.Sleep(attempt, w.stop) {
			return fmt.Errorf("dist: worker stopped while joining: %w", err)
		}
	}
}

// Run serves leases until the coordinator drains the campaign, MaxJobs is
// reached, or a fatal error (protocol refusal, coordinator vanishing,
// crash hook) stops the worker.
func (w *Worker) Run() error {
	if w.cfg.Faults != nil {
		in, err := netfault.New(*w.cfg.Faults)
		if err != nil {
			return fmt.Errorf("dist: %w", err)
		}
		w.client.Transport = netfault.NewTransport(in, nil)
	}
	if err := w.hello(); err != nil {
		return err
	}
	if w.cfg.CachePath != "" {
		m, err := expt.OpenManifestFor(w.cfg.CachePath, expt.ManifestMeta{Tool: w.tool, Grid: w.grid})
		if err != nil {
			// A broken or mismatched cache must not stop a healthy worker;
			// run uncached.
			w.logf("worker %s: result cache %s unusable (%v); running uncached", w.id, w.cfg.CachePath, err)
		} else {
			w.cache = m
			defer m.Close()
			if n := m.Len(); n > 0 {
				w.logf("worker %s: result cache %s holds %d completed job(s)", w.id, w.cfg.CachePath, n)
			}
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, w.cfg.Parallel)
	for i := 0; i < w.cfg.Parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- w.serve()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// halt stops every serving goroutine and heartbeater (crash hook,
// MaxJobs).
func (w *Worker) halt() { w.stopOnce.Do(func() { close(w.stop) }) }

func (w *Worker) stopped() bool {
	select {
	case <-w.stop:
		return true
	default:
		return false
	}
}

// serve is one lease loop: lease, run, report, repeat. Transport failures
// (dropped requests, injected resets, a coordinator restarting) are
// retried with backoff; only ReconnectTimeout of unbroken failure is
// treated as the campaign's end.
func (w *Worker) serve() error {
	var fails int
	var firstFail time.Time
	for {
		if w.stopped() {
			return nil
		}
		var rep LeaseReply
		if err := w.post(PathLease, LeaseRequest{WorkerID: w.id}, &rep); err != nil {
			fails++
			if fails == 1 {
				firstFail = time.Now()
			}
			// The coordinator exits as soon as its document is written, so
			// losing it for good after joining is the normal end of a
			// campaign from the worker's side — but one failed request is
			// just as likely a fault in the path, so keep trying first.
			if time.Since(firstFail) > w.cfg.ReconnectTimeout {
				w.logf("worker %s: coordinator gone after %s of lease retries (%v); exiting",
					w.id, w.cfg.ReconnectTimeout, err)
				return nil
			}
			if !w.backoff.Sleep(fails, w.stop) {
				return nil
			}
			continue
		}
		fails = 0
		switch rep.Status {
		case StatusDrain:
			w.logf("worker %s drained after %d job(s) (%d from cache)",
				w.id, w.reported.Load(), w.cacheHits.Load())
			return nil
		case StatusWait:
			wait := time.Duration(rep.WaitMS) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			select {
			case <-w.stop:
				return nil
			case <-time.After(wait):
			}
			continue
		case StatusJob:
			// fall through
		default:
			return fmt.Errorf("dist: unknown lease status %q", rep.Status)
		}
		if n := w.leased.Add(1); w.cfg.CrashAfterLease > 0 && int(n) >= w.cfg.CrashAfterLease {
			// Die holding the lease: no result, no heartbeat — the
			// coordinator must notice via heartbeat timeout and re-issue.
			w.logf("worker %s: crash hook fired on lease %s", w.id, rep.LeaseID)
			w.halt()
			return ErrCrashed
		}
		w.execute(rep)
		if w.cfg.MaxJobs > 0 && int(w.reported.Load()) >= w.cfg.MaxJobs {
			w.logf("worker %s reached max-jobs=%d", w.id, w.cfg.MaxJobs)
			w.halt()
			return nil
		}
	}
}

// execute runs one leased job under a heartbeater and reports the
// outcome. Worker-side panics are captured into the error string with the
// same "panic: " prefix the local pool uses, so expt.ErrClass classifies
// them identically.
func (w *Worker) execute(rep LeaseReply) {
	res := ResultRequest{WorkerID: w.id, LeaseID: rep.LeaseID, Key: rep.Key}
	if rep.Job == nil {
		res.Err = "lease granted without a job body"
		w.observe(rep, res, "failed")
		w.report(res)
		return
	}
	job := *rep.Job
	if derived := job.Key(); derived != rep.Key {
		// Coordinator and worker disagree on what this job IS; running it
		// would poison the campaign with a result filed under the wrong
		// cell.
		res.Err = fmt.Sprintf("job schema skew: leased key %.12s, worker derives %.12s", rep.Key, derived)
		w.observe(rep, res, "failed")
		w.report(res)
		return
	}
	if w.cache != nil {
		if out, host, ok := w.cache.Lookup(rep.Key); ok {
			// Replay from the local result cache: a rejoining worker serves
			// keys it already completed without re-executing, reporting the
			// original run's cost exactly as a pool manifest hit does.
			res.Result = out
			res.HostMS = float64(host) / float64(time.Millisecond)
			res.Cached = true
			w.cacheHits.Add(1)
			w.logf("worker %s: lease %s served from cache (key %.12s)", w.id, rep.LeaseID, rep.Key)
			w.observe(rep, res, "cached")
			w.report(res)
			return
		}
	}
	hbDone := make(chan struct{})
	go w.heartbeat(rep.LeaseID, hbDone)
	start := time.Now()
	out, err := w.runCaptured(job)
	host := time.Since(start)
	res.HostMS = float64(host) / float64(time.Millisecond)
	close(hbDone)
	if err != nil {
		res.Err = err.Error()
		w.observe(rep, res, "failed")
	} else {
		res.Result = out
		if w.cache != nil {
			if cerr := w.cache.Record(rep.Key, out, host); cerr != nil {
				w.logf("worker %s: result cache write failed (%v); continuing uncached", w.id, cerr)
			}
		}
		w.observe(rep, res, "ran")
	}
	w.report(res)
}

// runCaptured invokes the run seam with panic containment.
func (w *Worker) runCaptured(j expt.Job) (out *expt.JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	return w.run(j)
}

// heartbeat renews the lease until done closes. A not-OK reply means the
// lease was reclaimed; the run finishes anyway and its report is
// discarded coordinator-side.
func (w *Worker) heartbeat(leaseID string, done <-chan struct{}) {
	t := time.NewTicker(w.hb)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-w.stop:
			return
		case <-t.C:
			var rep HeartbeatReply
			if err := w.post(PathHeartbeat, HeartbeatRequest{WorkerID: w.id, LeaseID: leaseID}, &rep); err != nil {
				continue // transient; result delivery is what matters
			}
			if !rep.OK {
				w.logf("worker %s: lease %s reclaimed (%s)", w.id, leaseID, rep.Reason)
				return
			}
		}
	}
}

// report delivers a result with a little persistence (backoff-spaced
// retries); a lost report is recovered by lease reclaim, so giving up is
// safe.
func (w *Worker) report(res ResultRequest) {
	const attempts = 4
	for attempt := 1; attempt <= attempts; attempt++ {
		var rep ResultReply
		if err := w.post(PathResult, res, &rep); err == nil {
			if !rep.OK {
				w.logf("worker %s: result for lease %s discarded (%s)", w.id, res.LeaseID, rep.Reason)
			}
			w.reported.Add(1)
			return
		}
		if attempt < attempts && !w.backoff.Sleep(attempt, w.stop) {
			break
		}
	}
	w.logf("worker %s: could not deliver result for lease %s", w.id, res.LeaseID)
}
